(* The experiment harness: regenerates every table of the paper's
   evaluation (Tables I-VII) on the simulated A100/MI100 devices, the
   compile-time overhead observation of section V-D, and a set of
   Bechamel micro-benchmarks of the compiler itself (the non-overlap
   test, the short-circuiting pass, the polynomial prover).

   Absolute milliseconds come from the GPU cost model (see DESIGN.md,
   substitution 1); the paper's published numbers are printed alongside
   for shape comparison.  Run with

     dune exec bench/main.exe              # all tables + microbenches
     dune exec bench/main.exe -- tables    # tables only
     dune exec bench/main.exe -- micro     # microbenchmarks only
*)

module P = Symalg.Poly
module Pr = Symalg.Prover

let hr = String.make 100 '='

let sc_summary name (c : Core.Pipeline.compiled) =
  let st = c.Core.Pipeline.stats in
  Printf.printf
    "  [%s] short-circuiting: %d/%d candidates rebased (%d vars, %d \
     non-overlap checks)\n"
    name st.Core.Shortcircuit.succeeded st.Core.Shortcircuit.candidates
    st.Core.Shortcircuit.rebased_vars st.Core.Shortcircuit.overlap_checks

let run_tables () =
  let benches =
    [
      ("NW", fun () -> Benchsuite.Nw.table ());
      ("LUD", fun () -> Benchsuite.Lud.table ());
      ("Hotspot", fun () -> Benchsuite.Hotspot.table ());
      ("LBM", fun () -> Benchsuite.Lbm.table ());
      ("OptionPricing", fun () -> Benchsuite.Option_pricing.table ());
      ("LocVolCalib", fun () -> Benchsuite.Locvolcalib.table ());
      ("NN", fun () -> Benchsuite.Nn.table ());
    ]
  in
  let overheads = ref [] in
  let footprints = ref [] in
  List.iter
    (fun (name, f) ->
      Printf.printf "%s\n" hr;
      let t0 = Unix.gettimeofday () in
      let o = f () in
      let compiled = o.Benchsuite.Runner.compiled in
      let elapsed = Unix.gettimeofday () -. t0 in
      print_string (Benchsuite.Table.to_string o.Benchsuite.Runner.table);
      sc_summary name compiled;
      Printf.printf "  (table regenerated in %.1fs)\n\n" elapsed;
      footprints :=
        ( name,
          compiled.Core.Pipeline.dead_allocs,
          compiled.Core.Pipeline.reuse_dead_allocs,
          compiled.Core.Pipeline.pack_dead_allocs,
          o.Benchsuite.Runner.footprints )
        :: !footprints;
      overheads :=
        (name, compiled.Core.Pipeline.time_base, compiled.Core.Pipeline.time_sc)
        :: !overheads)
    benches;
  (* Memory footprint: the paper's second motivation (section I). *)
  Printf.printf "%s\n" hr;
  Printf.printf
    "Memory footprint: peak live bytes, unoptimized / short-circuited / \
     reused / packed\n";
  Printf.printf "%-15s %-10s %12s %12s %12s %12s %9s %s\n" "Benchmark"
    "dataset" "unopt (MB)" "opt (MB)" "reuse (MB)" "pack (MB)" "saved"
    "dead allocs (sc+reuse+pack)";
  List.iter
    (fun (name, dead, rdead, pdead, fps) ->
      List.iter
        (fun (ds, u, o, r, p) ->
          let open Benchsuite.Runner in
          Printf.printf
            "%-15s %-10s %12.1f %12.1f %12.1f %12.1f %8.0f%% %5d+%d+%d\n"
            name ds (u.f_peak_bytes /. 1e6) (o.f_peak_bytes /. 1e6)
            (r.f_peak_bytes /. 1e6) (p.f_peak_bytes /. 1e6)
            (100.
            *. (u.f_peak_bytes -. p.f_peak_bytes)
            /. Float.max 1.0 u.f_peak_bytes)
            dead rdead pdead)
        fps)
    (List.rev !footprints);
  Printf.printf "\n";
  (* Section V-D: compile-time overhead of short-circuiting. *)
  Printf.printf "%s\n" hr;
  Printf.printf
    "Section V-D: compile-time overhead of the short-circuiting pass\n";
  Printf.printf "%-15s %12s %14s %10s\n" "Benchmark" "base (ms)"
    "+short-circ." "overhead";
  List.iter
    (fun (name, base, sc) ->
      Printf.printf "%-15s %10.2fms %12.2fms %9.0f%%\n" name (base *. 1e3)
        ((base +. sc) *. 1e3)
        (100. *. sc /. Float.max 1e-9 base))
    (List.rev !overheads);
  Printf.printf
    "(paper: ~10%% for most benchmarks; NW/LUD larger because of the\n\
    \ non-overlap proofs - NW took 17s with the external SMT solver,\n\
    \ which our built-in algebraic prover replaces)\n\n"

(* ---------------------------------------------------------------- *)
(* Ablation study: which design choices earn the circuits            *)
(* ---------------------------------------------------------------- *)

(* Re-run the short-circuiting pass with individual analysis features
   disabled, counting the circuit points that still fire:
   - "no dim splitting": the non-overlap test without the Fig. 8
     dimension-splitting heuristic (the plain Hoeflinger condition) -
     this is what kills NW's Fig. 9 obligation;
   - "no refinement": whole-loop / whole-nest unions only, without the
     per-iteration U^{>i} and per-thread conditions of section V-B -
     this is what kills the read-write-mixing cases (Fig. 1 left,
     LUD's in-place perimeter and interior). *)
let run_ablation () =
  Printf.printf "%s\nAblation: circuit points rebased under disabled features\n%s\n"
    hr hr;
  Printf.printf "%-15s %12s %18s %16s %10s\n" "Benchmark" "full"
    "no dim splitting" "no refinement" "neither";
  let count options prog =
    let c = Core.Pipeline.compile ~options prog in
    let st = c.Core.Pipeline.stats in
    (st.Core.Shortcircuit.succeeded, st.Core.Shortcircuit.candidates)
  in
  let full = Core.Shortcircuit.default_options in
  let configs =
    [
      ("full", full);
      ("nosplit", { full with Core.Shortcircuit.split_depth = 0 });
      ("norefine", { full with Core.Shortcircuit.enable_refinement = false });
      ( "neither",
        {
          full with
          Core.Shortcircuit.split_depth = 0;
          enable_refinement = false;
        } );
    ]
  in
  List.iter
    (fun (name, prog) ->
      let results = List.map (fun (_, opts) -> count opts prog) configs in
      match results with
      | [ (f, tot); (ns, _); (nr, _); (nb, _) ] ->
          Printf.printf "%-15s %8d/%-3d %14d/%-3d %12d/%-3d %6d/%-3d\n" name f
            tot ns tot nr tot nb tot
      | _ -> ())
    [
      ("NW", Benchsuite.Nw.prog);
      ("LUD", Benchsuite.Lud.prog);
      ("Hotspot", Benchsuite.Hotspot.prog);
      ("LBM", Benchsuite.Lbm.prog);
    ];
  Printf.printf
    "\n(NW's Fig. 9 obligation is carried by either route alone - the\n\
    \ whole-wavefront proof via dimension splitting, or the per-thread\n\
    \ refinement whose point-vs-bar checks need no splits - and only\n\
    \ disabling both loses it; LUD's in-place perimeter and interior\n\
    \ need the refinements (each thread reads the block it rewrites);\n\
    \ Hotspot/LBM need neither because their reads target the\n\
    \ double-buffered previous grid)\n\n"

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks of the compiler itself                   *)
(* ---------------------------------------------------------------- *)

let nw_ctx () =
  let c = P.const in
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "i" ~lo:(c 0) ~hi:(P.sub (P.var "q") P.one) () in
  Pr.add_eq ctx "n" (P.add (P.mul (P.var "q") (P.var "b")) P.one)

let nw_lmads () =
  let v = P.var in
  let n = v "n" and b = v "b" and i = v "i" in
  let nb_b = P.sub (P.mul n b) b in
  let w =
    Lmads.Lmad.make
      (P.sum [ P.mul i b; n; P.one ])
      [
        Lmads.Lmad.dim (P.add i P.one) nb_b;
        Lmads.Lmad.dim b n;
        Lmads.Lmad.dim b P.one;
      ]
  in
  let rvert =
    Lmads.Lmad.make (P.mul i b)
      [ Lmads.Lmad.dim (P.add i P.one) nb_b; Lmads.Lmad.dim (P.add b P.one) n ]
  in
  (w, rvert)

let micro_tests () =
  let open Bechamel in
  let ctx = nw_ctx () in
  let w, rvert = nw_lmads () in
  let test_nonoverlap =
    Test.make ~name:"nonoverlap: NW Fig.9 proof"
      (Staged.stage (fun () -> ignore (Lmads.Nonoverlap.disjoint ctx w rvert)))
  in
  let test_prover =
    Test.make ~name:"prover: qb^2 - 2b - 1 >= 0"
      (Staged.stage (fun () ->
           let b = P.var "b" and q = P.var "q" in
           ignore
             (Pr.prove_nonneg ctx
                (P.sub (P.mul q (P.mul b b)) (P.add (P.scale 2 b) P.one)))))
  in
  let test_sc_nw =
    Test.make ~name:"pass: compile NW (memory + short-circuit)"
      (Staged.stage (fun () -> ignore (Core.Pipeline.compile Benchsuite.Nw.prog)))
  in
  let test_sc_hotspot =
    Test.make ~name:"pass: compile Hotspot"
      (Staged.stage (fun () ->
           ignore (Core.Pipeline.compile Benchsuite.Hotspot.prog)))
  in
  let test_interp =
    let args = Benchsuite.Nw.small_args ~q:2 ~b:4 in
    Test.make ~name:"interp: NW q=2 b=4"
      (Staged.stage (fun () -> ignore (Ir.Interp.run Benchsuite.Nw.prog args)))
  in
  [ test_nonoverlap; test_prover; test_sc_nw; test_sc_hotspot; test_interp ]

let run_micro () =
  let open Bechamel in
  Printf.printf "%s\nCompiler micro-benchmarks (Bechamel)\n%s\n" hr hr;
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"compiler" (micro_tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-45s %14.0f ns/run\n" name est
      | _ -> Printf.printf "%-45s (no estimate)\n" name)
    results

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  if what = "tables" || what = "all" then run_tables ();
  if what = "ablation" || what = "all" then run_ablation ();
  if what = "micro" || what = "all" then run_micro ()
