(* The `repro` command-line driver.

     repro table <1..7|all>     regenerate the paper's tables (four
                                variants: unoptimized, short-circuited,
                                memory-reused, arena-packed);
                                --bench-json writes a machine-readable
                                perf record
     repro validate [bench]     full-mode validation at reduced sizes
     repro lint [bench]         static memory-IR verification (memlint)
     repro trace [bench]        traced execution + dynamic cross-check
                                (memtrace); --json dumps the event log,
                                --diff compares the variants' logical
                                event skeletons
     repro dump <bench> [-O|-R] print the (memory-annotated) IR
     repro bench [--check]      emit the BENCH.json performance record;
                                with --check, gate it against the
                                committed bench/baseline.json and exit
                                nonzero on regression
     repro chaos <bench|all>    seeded fault-injection campaign: inject
                                all five fault classes into each
                                benchmark and check the fail-safe
                                invariants (--json writes the campaign
                                record); exits nonzero on any violation
     repro prove-nw             show the Fig. 9 non-overlap proof

   Exit-code contract (see README): 0 = clean; 1 = a gate failed, a
   benchmark degraded through the fail-safe ladder, or a chaos
   invariant was violated; 124/125 = cmdliner usage/internal errors.
   `repro table all` never dies on the first fault: it aggregates
   per-benchmark faults and names every degraded or failed benchmark
   in a final summary line.
*)

open Cmdliner

type bench = {
  name : string;
  table_no : int;
  table :
    ?options:Core.Shortcircuit.options ->
    ?reuse:Core.Reuse.options ->
    ?pack:Core.Pack.options ->
    ?pool:bool ->
    ?pool_cap:int ->
    ?fail_safe:bool ->
    unit ->
    Benchsuite.Runner.outcome;
  prog : Ir.Ast.prog;
  small_args : Ir.Value.t list Lazy.t;
}

let benches : bench list =
  [
    {
      name = "nw";
      table_no = 1;
      table = Benchsuite.Nw.table;
      prog = Benchsuite.Nw.prog;
      small_args = lazy (Benchsuite.Nw.small_args ~q:3 ~b:4);
    };
    {
      name = "lud";
      table_no = 2;
      table = Benchsuite.Lud.table;
      prog = Benchsuite.Lud.prog;
      small_args = lazy (Benchsuite.Lud.small_args ~q:3 ~b:4);
    };
    {
      name = "hotspot";
      table_no = 3;
      table = Benchsuite.Hotspot.table;
      prog = Benchsuite.Hotspot.prog;
      small_args = lazy (Benchsuite.Hotspot.small_args ~n:16 ~steps:3);
    };
    {
      name = "lbm";
      table_no = 4;
      table = Benchsuite.Lbm.table;
      prog = Benchsuite.Lbm.prog;
      small_args = lazy (Benchsuite.Lbm.small_args ~n:8 ~steps:3);
    };
    {
      name = "optionpricing";
      table_no = 5;
      table = Benchsuite.Option_pricing.table;
      prog = Benchsuite.Option_pricing.prog;
      small_args =
        lazy (Benchsuite.Option_pricing.small_args ~npaths:64 ~nsteps:16);
    };
    {
      name = "locvolcalib";
      table_no = 6;
      table = Benchsuite.Locvolcalib.table;
      prog = Benchsuite.Locvolcalib.prog;
      small_args =
        lazy (Benchsuite.Locvolcalib.small_args ~numo:6 ~numx:12 ~numt:4);
    };
    {
      name = "nn";
      table_no = 7;
      table = Benchsuite.Nn.table;
      prog = Benchsuite.Nn.prog;
      small_args = lazy (Benchsuite.Nn.small_args ~nrec:100 ~nbatch:4 ~bsz:8);
    };
  ]

let find_bench s =
  match
    List.find_opt
      (fun b ->
        b.name = String.lowercase_ascii s
        || string_of_int b.table_no = s)
      benches
  with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown benchmark %S (try: %s)" s
           (String.concat ", " (List.map (fun b -> b.name) benches)))

(* ---- table ----------------------------------------------------- *)

let pp_footprints ?(verbose = false) (o : Benchsuite.Runner.outcome) =
  let holes =
    o.Benchsuite.Runner.compiled.Core.Pipeline.pack_stats.Core.Pack.holes
  in
  List.iter
    (fun (label, u, p, r, pk_) ->
      let a (f : Benchsuite.Runner.footprint) =
        let base =
          if f.Benchsuite.Runner.f_scratch = 0 then
            string_of_int f.Benchsuite.Runner.f_allocs
          else
            Printf.sprintf "%d+%ds" f.Benchsuite.Runner.f_allocs
              f.Benchsuite.Runner.f_scratch
        in
        if f.Benchsuite.Runner.f_arena_allocs = 0 then base
        else if holes = 0 then
          Printf.sprintf "%s(%da)" base f.Benchsuite.Runner.f_arena_allocs
        else
          Printf.sprintf "%s(%da,%dh)" base
            f.Benchsuite.Runner.f_arena_allocs holes
      in
      let pk (f : Benchsuite.Runner.footprint) =
        f.Benchsuite.Runner.f_peak_bytes
      in
      Printf.printf
        "  footprint %-9s allocs %s -> %s -> %s -> %s | peak %.3g -> %.3g \
         -> %.3g -> %.3g B (unopt/opt/reuse/pack)\n"
        label (a u) (a p) (a r) (a pk_) (pk u) (pk p) (pk r) (pk pk_);
      let hm (f : Benchsuite.Runner.footprint) =
        Printf.sprintf "%d/%d" f.Benchsuite.Runner.f_pool_hits
          f.Benchsuite.Runner.f_pool_misses
      in
      match (u.Benchsuite.Runner.f_pool, p.Benchsuite.Runner.f_pool,
             r.Benchsuite.Runner.f_pool, pk_.Benchsuite.Runner.f_pool)
      with
      | Some pu, Some pp_, Some pr, Some ppk ->
          Printf.printf "  pool      %-9s hit/miss %s -> %s -> %s -> %s\n"
            label (hm u) (hm p) (hm r) (hm pk_);
          if verbose then
            Printf.printf
              "  pool      %-9s high-water %.3g -> %.3g -> %.3g -> %.3g B | \
               fragmentation %.0f%% -> %.0f%% -> %.0f%% -> %.0f%%\n"
              label pu.Gpu.Device.Pool.p_high_water
              pp_.Gpu.Device.Pool.p_high_water pr.Gpu.Device.Pool.p_high_water
              ppk.Gpu.Device.Pool.p_high_water
              (100. *. pu.Gpu.Device.Pool.p_fragmentation)
              (100. *. pp_.Gpu.Device.Pool.p_fragmentation)
              (100. *. pr.Gpu.Device.Pool.p_fragmentation)
              (100. *. ppk.Gpu.Device.Pool.p_fragmentation)
      | _ -> ())
    o.Benchsuite.Runner.footprints

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(* The prover's memoization effectiveness and budget pressure, shared
   by BENCH.json and the combined certificate document.  A nonzero
   [budget_exhausted] means some nonnegativity queries were truncated
   by the step/memo budget or deadline - sound (the affected rewrites
   were skipped) but a signal the budget is too tight for the suite. *)
let prover_json (p : Symalg.Prover.stats) =
  let rate h m =
    if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)
  in
  Printf.sprintf
    "\"prover\":{\"sat_hits\":%d,\"sat_misses\":%d,\"sat_resets\":%d,\"sat_hit_rate\":%.4f,\"nonneg_hits\":%d,\"nonneg_misses\":%d,\"nonneg_resets\":%d,\"nonneg_hit_rate\":%.4f,\"budget_exhausted\":%d}"
    p.Symalg.Prover.sat_hits p.Symalg.Prover.sat_misses
    p.Symalg.Prover.sat_resets
    (rate p.Symalg.Prover.sat_hits p.Symalg.Prover.sat_misses)
    p.Symalg.Prover.nonneg_hits p.Symalg.Prover.nonneg_misses
    p.Symalg.Prover.nonneg_resets
    (rate p.Symalg.Prover.nonneg_hits p.Symalg.Prover.nonneg_misses)
    p.Symalg.Prover.budget_exhausted

(* One machine-readable performance record for the whole suite:
   per-benchmark modeled times and impacts per (device, dataset),
   memory footprints of the three variants, compile times, reuse-pass
   statistics, and the prover's memoization effectiveness. *)
let bench_json_of (outcomes : (bench * Benchsuite.Runner.outcome) list)
    (pstats : Symalg.Prover.stats) : string =
  let buf = Buffer.create 8192 in
  let bench_obj (b, (o : Benchsuite.Runner.outcome)) =
    let c = o.Benchsuite.Runner.compiled in
    let rows =
      String.concat ","
        (List.map
           (fun (r : Benchsuite.Table.row) ->
             Printf.sprintf
               "{\"device\":\"%s\",\"dataset\":\"%s\",\"ref_ms\":%g,\"unopt_ms\":%g,\"opt_ms\":%g,\"reuse_ms\":%g,\"pack_ms\":%g,\"impact\":%g,\"reuse_impact\":%g,\"pack_impact\":%g}"
               (json_escape r.Benchsuite.Table.device)
               (json_escape r.Benchsuite.Table.dataset)
               r.Benchsuite.Table.ref_ms r.Benchsuite.Table.unopt_ms
               r.Benchsuite.Table.opt_ms r.Benchsuite.Table.reuse_ms
               r.Benchsuite.Table.pack_ms r.Benchsuite.Table.impact
               r.Benchsuite.Table.reuse_impact
               r.Benchsuite.Table.pack_impact)
           o.Benchsuite.Runner.table.Benchsuite.Table.rows)
    in
    let fp (f : Benchsuite.Runner.footprint) =
      let pool =
        match f.Benchsuite.Runner.f_pool with
        | Some ps ->
            let cap =
              match ps.Gpu.Device.Pool.p_cap with
              | Some c ->
                  Printf.sprintf ",\"cap\":%g,\"evictions\":%d" c
                    ps.Gpu.Device.Pool.p_evictions
              | None -> ""
            in
            Printf.sprintf
              ",\"pool\":{\"hits\":%d,\"misses\":%d,\"device_bytes\":%g,\"high_water_bytes\":%g,\"fragmentation\":%.4f%s}"
              f.Benchsuite.Runner.f_pool_hits
              f.Benchsuite.Runner.f_pool_misses
              ps.Gpu.Device.Pool.p_device_bytes
              ps.Gpu.Device.Pool.p_high_water
              ps.Gpu.Device.Pool.p_fragmentation cap
        | None -> ""
      in
      Printf.sprintf
        "{\"allocs\":%d,\"arena_allocs\":%d,\"arena_bytes\":%g,\"scratch\":%d,\"alloc_bytes\":%g,\"peak_bytes\":%g,\"traffic_bytes\":%g%s}"
        f.Benchsuite.Runner.f_allocs f.Benchsuite.Runner.f_arena_allocs
        f.Benchsuite.Runner.f_arena_bytes f.Benchsuite.Runner.f_scratch
        f.Benchsuite.Runner.f_alloc_bytes f.Benchsuite.Runner.f_peak_bytes
        f.Benchsuite.Runner.f_traffic_bytes pool
    in
    let fps =
      String.concat ","
        (List.map
           (fun (label, u, p, r, pk) ->
             Printf.sprintf
               "{\"dataset\":\"%s\",\"unopt\":%s,\"opt\":%s,\"reuse\":%s,\"pack\":%s}"
               (json_escape label) (fp u) (fp p) (fp r) (fp pk))
           o.Benchsuite.Runner.footprints)
    in
    let rst = c.Core.Pipeline.reuse_stats in
    let pst = c.Core.Pipeline.pack_stats in
    (* per-pass obligation counts of the translation-validation run that
       rides along with every table compile *)
    let certify =
      String.concat ","
        (List.map
           (fun (pass, (r : Core.Certify.report)) ->
             Printf.sprintf
               "\"%s\":{\"emitted\":%d,\"proved\":%d,\"concretized\":%d,\"failed\":%d}"
               (json_escape pass) r.Core.Certify.emitted
               r.Core.Certify.proved r.Core.Certify.concretized
               r.Core.Certify.failed)
           c.Core.Pipeline.certs)
    in
    Printf.sprintf
      "{\"name\":\"%s\",\"table\":%d,\"rows\":[%s],\"footprints\":[%s],\"compile_s\":{\"base\":%g,\"shortcircuit\":%g,\"reuse\":%g,\"pack\":%g},\"dead_allocs\":%d,\"reuse_dead_allocs\":%d,\"pack_dead_allocs\":%d,\"reuse_stats\":{\"candidates\":%d,\"coalesced\":%d,\"size_proofs\":%d,\"chain_links\":%d,\"rotated\":%d,\"hoisted\":%d},\"pack_stats\":{\"arenas\":%d,\"packed\":%d,\"unpacked\":%d,\"offset_proofs\":%d,\"holes\":%d,\"promoted\":%d},\"certify\":{%s}}"
      (json_escape b.name) b.table_no rows fps c.Core.Pipeline.time_base
      c.Core.Pipeline.time_sc c.Core.Pipeline.time_reuse
      c.Core.Pipeline.time_pack c.Core.Pipeline.dead_allocs
      c.Core.Pipeline.reuse_dead_allocs c.Core.Pipeline.pack_dead_allocs
      rst.Core.Reuse.candidates rst.Core.Reuse.coalesced
      rst.Core.Reuse.size_proofs rst.Core.Reuse.chain_links
      rst.Core.Reuse.rotated rst.Core.Reuse.hoisted pst.Core.Pack.arenas
      pst.Core.Pack.packed pst.Core.Pack.unpacked
      pst.Core.Pack.offset_proofs pst.Core.Pack.holes
      pst.Core.Pack.promoted certify
  in
  let date =
    let t = Unix.localtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02d" (t.Unix.tm_year + 1900)
      (t.Unix.tm_mon + 1) t.Unix.tm_mday
  in
  Buffer.add_string buf
    (Printf.sprintf "{\"date\":\"%s\",\"benchmarks\":[%s],"
       date
       (String.concat "," (List.map bench_obj outcomes)));
  Buffer.add_string buf (prover_json pstats ^ "}");
  Buffer.contents buf

let default_bench_json_name () =
  let t = Unix.localtime (Unix.time ()) in
  Printf.sprintf "BENCH_%04d-%02d-%02d.json" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday

let run_table which options reuse pack pool pool_cap fail_safe budget
    bench_json out =
  Symalg.Prover.set_budget budget;
  Symalg.Prover.reset_stats ();
  let run b =
    let o = b.table ~options ~reuse ~pack ~pool ?pool_cap ~fail_safe () in
    print_string (Benchsuite.Table.to_string o.Benchsuite.Runner.table);
    let st = o.Benchsuite.Runner.compiled.Core.Pipeline.stats in
    let rst = o.Benchsuite.Runner.compiled.Core.Pipeline.reuse_stats in
    let pst = o.Benchsuite.Runner.compiled.Core.Pipeline.pack_stats in
    if options.Core.Shortcircuit.verbose then begin
      Fmt.pr "%a@.@." Core.Shortcircuit.pp_stats st;
      Fmt.pr "%a@.@." Core.Reuse.pp_stats rst;
      Fmt.pr "%a@.@." Core.Pack.pp_stats pst;
      Fmt.pr "%a@.@." Symalg.Prover.pp_stats (Symalg.Prover.stats ())
    end
    else begin
      Printf.printf "  short-circuiting: %d/%d candidates, %d vars rebased\n"
        st.Core.Shortcircuit.succeeded st.Core.Shortcircuit.candidates
        st.Core.Shortcircuit.rebased_vars;
      Printf.printf
        "  memory reuse: %d chain links, %d rotated, %d hoisted, %d/%d \
         coalesced (%d more allocs dropped)\n"
        rst.Core.Reuse.chain_links rst.Core.Reuse.rotated
        rst.Core.Reuse.hoisted rst.Core.Reuse.coalesced
        rst.Core.Reuse.candidates
        o.Benchsuite.Runner.compiled.Core.Pipeline.reuse_dead_allocs;
      Printf.printf
        "  packing: %d arenas, %d placed (%d promoted), %d unpacked, %d \
         holes, %d offset proofs (%d member allocs absorbed)\n"
        pst.Core.Pack.arenas pst.Core.Pack.packed pst.Core.Pack.promoted
        pst.Core.Pack.unpacked pst.Core.Pack.holes
        pst.Core.Pack.offset_proofs
        o.Benchsuite.Runner.compiled.Core.Pipeline.pack_dead_allocs
    end;
    pp_footprints ~verbose:options.Core.Shortcircuit.verbose o;
    List.iter
      (fun (r : Core.Pipeline.recovery) ->
        Printf.printf "  RECOVERED fault in %s: %s -> fell back to %s\n"
          r.Core.Pipeline.r_pass
          (Core.Fault.to_string r.Core.Pipeline.r_fault)
          r.Core.Pipeline.r_fallback)
      o.Benchsuite.Runner.compiled.Core.Pipeline.recovery;
    (match o.Benchsuite.Runner.traffic with
    | None -> ()
    | Some t ->
        let mb x = x /. 1e6 in
        let dev m m' = if m' = 0. then 0. else 100. *. (m -. m') /. m' in
        Printf.printf
          "  traffic @ reduced size: kernels %.3f MB measured vs %.3f MB \
           modeled (%+.1f%%), copies %.3f vs %.3f MB | memtrace %s\n"
          (mb t.Benchsuite.Runner.measured_rw)
          (mb t.Benchsuite.Runner.modeled_rw)
          (dev t.Benchsuite.Runner.modeled_rw t.Benchsuite.Runner.measured_rw)
          (mb t.Benchsuite.Runner.measured_copy)
          (mb t.Benchsuite.Runner.modeled_copy)
          (if Core.Memtrace.ok t.Benchsuite.Runner.check then "clean"
           else "VIOLATIONS"));
    print_newline ();
    o
  in
  let finish outcomes =
    if bench_json then begin
      let path = Option.value out ~default:(default_bench_json_name ()) in
      let json = bench_json_of outcomes (Symalg.Prover.stats ()) in
      let oc = open_out path in
      output_string oc json;
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n" path
    end
  in
  let degraded b (o : Benchsuite.Runner.outcome) =
    match o.Benchsuite.Runner.compiled.Core.Pipeline.recovery with
    | [] -> None
    | r :: _ ->
        Some
          (Printf.sprintf "%s degraded (%s)" b.name
             (Core.Fault.layer r.Core.Pipeline.r_fault))
  in
  match which with
  | "all" ->
      (* Aggregate faults across the suite instead of dying on the
         first one: every benchmark runs, every fault is named, and
         any degradation or failure makes the exit nonzero. *)
      let results =
        List.map
          (fun b ->
            match run b with
            | o -> (b, Ok o)
            | exception e ->
                Printf.printf "bench %-14s FAILED: %s\n\n" b.name
                  (Printexc.to_string e);
                (b, Error (Printexc.to_string e)))
          benches
      in
      let outcomes =
        List.filter_map
          (function b, Ok o -> Some (b, o) | _, Error _ -> None)
          results
      in
      finish outcomes;
      let faulted =
        List.filter_map
          (fun (b, r) ->
            match r with
            | Error e -> Some (Printf.sprintf "%s failed (%s)" b.name e)
            | Ok o -> degraded b o)
          results
      in
      if faulted = [] then Ok ()
      else Error ("degraded/failed benchmarks: " ^ String.concat "; " faulted)
  | s ->
      Result.bind (find_bench s) (fun b ->
          let o = run b in
          finish [ (b, o) ];
          match degraded b o with None -> Ok () | Some msg -> Error msg)

(* ---- validate --------------------------------------------------- *)

let run_validate which =
  let validate b =
    let v = Benchsuite.Runner.validate b.prog (Lazy.force b.small_args) in
    Printf.printf
      "%-14s interp-match: unopt=%b opt=%b reuse=%b pack=%b | copies %d -> \
       %d (%d elided) | circuits %d\n"
      b.name v.Benchsuite.Runner.ok_unopt v.Benchsuite.Runner.ok_opt
      v.Benchsuite.Runner.ok_reuse v.Benchsuite.Runner.ok_pack
      v.Benchsuite.Runner.copies_unopt v.Benchsuite.Runner.copies_opt
      v.Benchsuite.Runner.elided v.Benchsuite.Runner.sc_succeeded;
    v.Benchsuite.Runner.ok_unopt && v.Benchsuite.Runner.ok_opt
    && v.Benchsuite.Runner.ok_reuse && v.Benchsuite.Runner.ok_pack
  in
  match which with
  | "all" ->
      let ok = List.for_all validate benches in
      if ok then Ok () else Error "validation failed"
  | s ->
      Result.bind (find_bench s) (fun b ->
          if validate b then Ok () else Error "validation failed")

(* ---- lint -------------------------------------------------------- *)

let run_lint which options pack verbose_reports =
  let lint b =
    let c = Core.Pipeline.compile ~options ~pack ~lint:true b.prog in
    List.iter
      (fun (_, r) ->
        if verbose_reports || not (Core.Memlint.ok r) then
          Fmt.pr "%a@.@." Core.Memlint.pp_report r)
      c.Core.Pipeline.lint;
    match Core.Pipeline.first_lint_error c.Core.Pipeline.lint with
    | None ->
        let warns =
          List.fold_left
            (fun n (_, r) -> n + List.length (Core.Memlint.warnings r))
            0 c.Core.Pipeline.lint
        in
        Printf.printf "%-14s %d stages clean (%d warnings)\n" b.name
          (List.length c.Core.Pipeline.lint)
          warns;
        true
    | Some (stage, v) ->
        Fmt.epr "%-14s violation introduced by %s: %a@." b.name stage
          Core.Memlint.pp_violation v;
        false
  in
  match which with
  | "all" ->
      let ok = List.fold_left (fun ok b -> lint b && ok) true benches in
      if ok then Ok () else Error "lint failed"
  | s ->
      Result.bind (find_bench s) (fun b ->
          if lint b then Ok () else Error "lint failed")

(* ---- trace ------------------------------------------------------- *)

(* Full-mode traced execution of both pipeline variants at the reduced
   size, cross-checked by memtrace.  Human output shows the checker's
   verdict and the per-kernel traffic histogram of the optimized run;
   [--json] emits the raw event logs instead (to stdout, or to
   <out>/<bench>.json per benchmark when [-o] is given). *)

let print_histogram t =
  let tr = Core.Trace.traffic t in
  Printf.printf "  %-18s %8s %12s %12s\n" "kernel" "launches" "read MB"
    "write MB";
  List.iter
    (fun (label, launches, r, w) ->
      Printf.printf "  %-18s %8d %12.4f %12.4f\n" label launches (r /. 1e6)
        (w /. 1e6))
    (Core.Trace.histogram t);
  Printf.printf
    "  total: %.4f MB read, %.4f MB written, %.4f MB copied (%.4f MB \
     elided)\n"
    (tr.Core.Trace.t_kernel_reads /. 1e6)
    (tr.Core.Trace.t_kernel_writes /. 1e6)
    (tr.Core.Trace.t_copy_bytes /. 1e6)
    (tr.Core.Trace.t_elided_bytes /. 1e6)

let bench_json (u : Benchsuite.Runner.traced) (o : Benchsuite.Runner.traced)
    (r : Benchsuite.Runner.traced) (p : Benchsuite.Runner.traced) =
  let clean =
    Core.Memtrace.ok u.Benchsuite.Runner.check
    && Core.Memtrace.ok o.Benchsuite.Runner.check
    && Core.Memtrace.ok r.Benchsuite.Runner.check
    && Core.Memtrace.ok p.Benchsuite.Runner.check
  in
  Printf.sprintf
    "{\"clean\": %b, \"unopt\": %s, \"opt\": %s, \"reuse\": %s, \"pack\": %s}"
    clean
    (Core.Trace.to_json u.Benchsuite.Runner.trace)
    (Core.Trace.to_json o.Benchsuite.Runner.trace)
    (Core.Trace.to_json r.Benchsuite.Runner.trace)
    (Core.Trace.to_json p.Benchsuite.Runner.trace)

(* --diff: the optimizations may move and elide storage but must not
   change the logical event sequence.  Compare the variants' trace
   skeletons pairwise; any divergence is a failure. *)
let diff_traces b (u : Benchsuite.Runner.traced)
    (o : Benchsuite.Runner.traced) (r : Benchsuite.Runner.traced)
    (p : Benchsuite.Runner.traced) : bool =
  let pair ta tb =
    match Core.Trace.diff ta tb with
    | [] -> true
    | ds ->
        Printf.printf "%-14s %s vs %s: %d divergence(s)\n" b.name
          (Core.Trace.variant ta) (Core.Trace.variant tb) (List.length ds);
        List.iter (fun d -> Printf.printf "  %s\n" d) ds;
        false
  in
  let ok_uo = pair u.Benchsuite.Runner.trace o.Benchsuite.Runner.trace in
  let ok_or = pair o.Benchsuite.Runner.trace r.Benchsuite.Runner.trace in
  let ok_rp = pair r.Benchsuite.Runner.trace p.Benchsuite.Runner.trace in
  if ok_uo && ok_or && ok_rp then
    Printf.printf
      "%-14s skeletons agree across unopt/opt/reuse/pack (%d logical \
       events)\n"
      b.name
      (List.length (Core.Trace.skeleton u.Benchsuite.Runner.trace));
  ok_uo && ok_or && ok_rp

let run_trace which json diff out =
  let trace b =
    let u, o, r, p =
      Benchsuite.Runner.trace_check4 b.prog (Lazy.force b.small_args)
    in
    let clean =
      Core.Memtrace.ok u.Benchsuite.Runner.check
      && Core.Memtrace.ok o.Benchsuite.Runner.check
      && Core.Memtrace.ok r.Benchsuite.Runner.check
      && Core.Memtrace.ok p.Benchsuite.Runner.check
    in
    if diff then diff_traces b u o r p && clean
    else begin
      if json then (
        let s = bench_json u o r p in
        match out with
        | None -> print_endline s
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let path = Filename.concat dir (b.name ^ ".json") in
            let oc = open_out path in
            output_string oc s;
            output_char oc '\n';
            close_out oc;
            Printf.printf "%-14s wrote %s (%s)\n" b.name path
              (if clean then "clean" else "VIOLATIONS"))
      else begin
        List.iter
          (fun (t : Benchsuite.Runner.traced) ->
            Fmt.pr "%a@." Core.Memtrace.pp_report t.Benchsuite.Runner.check)
          [ u; o; r; p ];
        print_histogram o.Benchsuite.Runner.trace;
        print_newline ()
      end;
      clean
    end
  in
  match which with
  | "all" ->
      let ok = List.fold_left (fun ok b -> trace b && ok) true benches in
      if ok then Ok () else Error "memtrace cross-check failed"
  | s ->
      Result.bind (find_bench s) (fun b ->
          if trace b then Ok () else Error "memtrace cross-check failed")

(* ---- dump -------------------------------------------------------- *)

let run_dump which opt reuse pack =
  Result.map
    (fun b ->
      let c = Core.Pipeline.compile b.prog in
      let p =
        if pack then c.Core.Pipeline.pack
        else if reuse then c.Core.Pipeline.reuse
        else if opt then c.Core.Pipeline.opt
        else c.Core.Pipeline.unopt
      in
      print_endline (Ir.Pretty.prog_to_string p))
    (find_bench which)

(* ---- bench ------------------------------------------------------- *)

(* The bench-trajectory gate: emit a fresh BENCH.json (or reuse one via
   [--current]) and, with [--check], compare it against the committed
   baseline.  Regressions - modeled times above tolerance, growing
   allocation counts or peak footprints - exit nonzero; the textual
   diff report goes to stdout and, with [--report], to a file CI can
   upload as an artifact.  Refresh the baseline with
   `repro bench -o bench/baseline.json`. *)

let read_file path =
  try
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Ok s
  with Sys_error e -> Error e

let run_bench options reuse pack pool pool_cap fail_safe budget check
    baseline tolerance out current report order_check =
  Symalg.Prover.set_budget budget;
  let obtain_current () =
    match current with
    | Some path -> read_file path
    | None ->
        Symalg.Prover.reset_stats ();
        let outcomes =
          List.map
            (fun b ->
              Printf.printf "bench %-14s running...\n%!" b.name;
              (b, b.table ~options ~reuse ~pack ~pool ?pool_cap ~fail_safe ()))
            benches
        in
        let json = bench_json_of outcomes (Symalg.Prover.stats ()) in
        (match out with
        | Some path ->
            let oc = open_out path in
            output_string oc json;
            output_char oc '\n';
            close_out oc;
            Printf.printf "wrote %s\n" path
        | None ->
            if not check then begin
              let path = default_bench_json_name () in
              let oc = open_out path in
              output_string oc json;
              output_char oc '\n';
              close_out oc;
              Printf.printf "wrote %s\n" path
            end);
        Ok json
  in
  (* the pack-order A/B: the record at hand is the colour run; the
     [--order-check] file is the first-fit run of the same tree *)
  let order_gate cur_s =
    match order_check with
    | None -> Ok ()
    | Some ff_path ->
        Result.bind
          (Result.map_error
             (fun e -> Printf.sprintf "firstfit record %s: %s" ff_path e)
             (read_file ff_path))
          (fun ff_s ->
            Result.bind
              (Result.map_error
                 (fun e -> "firstfit parse error: " ^ e)
                 (Benchsuite.Benchjson.parse ff_s))
              (fun ff ->
                Result.bind
                  (Result.map_error
                     (fun e -> "current parse error: " ^ e)
                     (Benchsuite.Benchjson.parse cur_s))
                  (fun cur ->
                    let g =
                      Benchsuite.Benchjson.pack_order_gate ~firstfit:ff
                        ~colour:cur ()
                    in
                    let rep =
                      Benchsuite.Benchjson.report ~label:"pack-order gate" g
                    in
                    print_string rep;
                    (match report with
                    | Some path ->
                        let oc = open_out path in
                        output_string oc rep;
                        close_out oc;
                        Printf.printf "wrote %s\n" path
                    | None -> ());
                    if Benchsuite.Benchjson.ok g then Ok ()
                    else
                      Error
                        (Printf.sprintf
                           "pack-order gate failed: %d regression(s)"
                           (List.length g.Benchsuite.Benchjson.regressions)))))
  in
  Result.bind (obtain_current ()) (fun cur_s ->
      if order_check <> None then order_gate cur_s
      else if not check then Ok ()
      else
        Result.bind
          (Result.map_error
             (fun e -> Printf.sprintf "baseline %s: %s" baseline e)
             (read_file baseline))
          (fun base_s ->
            Result.bind
              (Result.map_error
                 (fun e -> "baseline parse error: " ^ e)
                 (Benchsuite.Benchjson.parse base_s))
              (fun base ->
                Result.bind
                  (Result.map_error
                     (fun e -> "current parse error: " ^ e)
                     (Benchsuite.Benchjson.parse cur_s))
                  (fun cur ->
                    let g =
                      Benchsuite.Benchjson.gate ~tolerance ~baseline:base
                        ~current:cur ()
                    in
                    let rep = Benchsuite.Benchjson.report g in
                    print_string rep;
                    (match report with
                    | Some path ->
                        let oc = open_out path in
                        output_string oc rep;
                        close_out oc;
                        Printf.printf "wrote %s\n" path
                    | None -> ());
                    if Benchsuite.Benchjson.ok g then Ok ()
                    else
                      Error
                        (Printf.sprintf "bench gate failed: %d regression(s)"
                           (List.length g.Benchsuite.Benchjson.regressions))))))

(* ---- certify ----------------------------------------------------- *)

(* Translation validation of the optimization pipeline: compile with
   ~certify:true so both rewriting passes emit per-rewrite proof
   obligations, then report what the independent checker re-derived.
   Any refuted obligation exits nonzero, attributed to its pass and
   rewrite like a lint error. *)

let cert_json_of name (certs : (string * Core.Certify.report) list) =
  Printf.sprintf "{\"name\":\"%s\",\"passes\":[%s]}" (json_escape name)
    (String.concat ","
       (List.map (fun (_, r) -> Core.Certify.json_of_report r) certs))

(* The combined certificate document carries the prover's memo-cache
   effectiveness over the whole certification run, mirroring the
   "prover" object of BENCH.json: the checker leans on the same
   memoized satisfiability/nonnegativity queries, so a cache collapse
   shows up here first. *)
let cert_doc_of (docs : string list) =
  Printf.sprintf "{\"benchmarks\":[%s],%s}" (String.concat "," docs)
    (prover_json (Symalg.Prover.stats ()))

let run_certify which options reuse pack verbose_reports json out check
    baseline current report_path =
  Symalg.Prover.reset_stats ();
  let selected =
    match which with
    | "all" -> Ok benches
    | s -> Result.map (fun b -> [ b ]) (find_bench s)
  in
  Result.bind selected (fun bs ->
      (* With --json to stdout, keep stdout pure JSON (pipeable into
         bench/certs-baseline.json): every human-readable line -
         summaries, -r reports, "wrote" confirmations - goes to
         stderr.  With --check, stdout carries the gate report
         instead. *)
      let stdout_is_json = json && out = None && not check in
      let human : ('a, out_channel, unit) format -> 'a =
        if stdout_is_json then Printf.eprintf else Printf.printf
      in
      (* Compile + check every selected benchmark, returning the
         per-benchmark JSON documents.  With [strict], the first
         refuted obligation is an error; under --check the gate
         attributes failures instead, so generation never aborts. *)
      let certify_docs ~strict () =
        let all_ok = ref true in
        let docs =
          List.map
            (fun b ->
              let c =
                Core.Pipeline.compile ~options ~reuse ~pack ~certify:true
                  b.prog
              in
              let certs = c.Core.Pipeline.certs in
              List.iter
                (fun (_, r) ->
                  if verbose_reports || not (Core.Certify.ok r) then
                    if json || check then
                      Fmt.epr "%a@.@." Core.Certify.pp_report r
                    else Fmt.pr "%a@.@." Core.Certify.pp_report r)
                certs;
              (match Core.Pipeline.first_cert_failure certs with
              | None ->
                  let tally f =
                    List.fold_left (fun n (_, r) -> n + f r) 0 certs
                  in
                  human
                    "%-14s %d obligations: %d proved, %d concretized, 0 \
                     failed\n"
                    b.name
                    (tally (fun (r : Core.Certify.report) ->
                         r.Core.Certify.emitted))
                    (tally (fun r -> r.Core.Certify.proved))
                    (tally (fun r -> r.Core.Certify.concretized))
              | Some (pass, ch) ->
                  Fmt.epr "%-14s refuted obligation in %s: %a@." b.name pass
                    Core.Certify.pp_checked ch;
                  all_ok := false);
              cert_json_of b.name certs)
            bs
        in
        if !all_ok || not strict then Ok docs
        else Error "certification failed"
      in
      if check then
        let obtain_current () =
          match current with
          | Some path -> read_file path
          | None -> Result.map cert_doc_of (certify_docs ~strict:false ())
        in
        Result.bind (obtain_current ()) (fun cur_s ->
            Result.bind
              (Result.map_error
                 (fun e -> Printf.sprintf "baseline %s: %s" baseline e)
                 (read_file baseline))
              (fun base_s ->
                Result.bind
                  (Result.map_error
                     (fun e -> "baseline parse error: " ^ e)
                     (Benchsuite.Benchjson.parse base_s))
                  (fun base ->
                    Result.bind
                      (Result.map_error
                         (fun e -> "current parse error: " ^ e)
                         (Benchsuite.Benchjson.parse cur_s))
                      (fun cur ->
                        let g =
                          Benchsuite.Benchjson.cert_gate ~baseline:base
                            ~current:cur ()
                        in
                        let rep =
                          Benchsuite.Benchjson.report ~label:"cert gate" g
                        in
                        print_string rep;
                        if g.Benchsuite.Benchjson.notes <> [] then
                          print_string
                            "refresh with: dune exec bin/repro.exe -- \
                             certify all --json > bench/certs-baseline.json\n";
                        (match report_path with
                        | Some path ->
                            let oc = open_out path in
                            output_string oc rep;
                            close_out oc;
                            Printf.printf "wrote %s\n" path
                        | None -> ());
                        if Benchsuite.Benchjson.ok g then Ok ()
                        else
                          Error
                            (Printf.sprintf
                               "cert gate failed: %d regression(s)"
                               (List.length
                                  g.Benchsuite.Benchjson.regressions))))))
      else
        Result.bind (certify_docs ~strict:true ()) (fun docs ->
            (if json then
               match out with
               | None -> print_endline (cert_doc_of docs)
               | Some dir ->
                   if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                   List.iter2
                     (fun b doc ->
                       let path =
                         Filename.concat dir (b.name ^ ".cert.json")
                       in
                       let oc = open_out path in
                       output_string oc doc;
                       output_char oc '\n';
                       close_out oc;
                       Printf.eprintf "%-14s wrote %s\n" b.name path)
                     bs docs);
            Ok ()))

(* ---- chaos ------------------------------------------------------- *)

(* The seeded fault-injection campaign (Benchsuite.Chaosdrive): inject
   every fault class of the taxonomy into each selected benchmark and
   check the three fail-safe invariants - no crash, bit-equal results,
   every degraded run blames its fault and names its fallback.  Any
   violation exits nonzero; --json writes the campaign record CI
   archives. *)

let run_chaos which seed rounds json out =
  let selected =
    match which with
    | "all" -> Ok benches
    | s -> Result.map (fun b -> [ b ]) (find_bench s)
  in
  Result.bind selected (fun bs ->
      let targets =
        List.map (fun b -> (b.name, b.prog, Lazy.force b.small_args)) bs
      in
      let c = Benchsuite.Chaosdrive.run ~seed ~rounds targets in
      (* keep stdout pure JSON when the record goes there *)
      let human = if json && out = None then prerr_string else print_string in
      human (Benchsuite.Chaosdrive.report c);
      (if json then
         match out with
         | None -> print_string (Benchsuite.Chaosdrive.json c)
         | Some dir ->
             if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
             let path = Filename.concat dir "campaign.json" in
             let oc = open_out path in
             output_string oc (Benchsuite.Chaosdrive.json c);
             close_out oc;
             Printf.printf "wrote %s\n" path);
      if Benchsuite.Chaosdrive.ok c then Ok ()
      else
        Error
          (Printf.sprintf "chaos campaign: %d invariant violation(s)"
             (List.length (Benchsuite.Chaosdrive.violations c))))

(* ---- prove-nw ---------------------------------------------------- *)

let run_prove_nw () =
  let module P = Symalg.Poly in
  let module Pr = Symalg.Prover in
  let c = P.const in
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "i" ~lo:(c 0) ~hi:(P.sub (P.var "q") P.one) () in
  let ctx = Pr.add_eq ctx "n" (P.add (P.mul (P.var "q") (P.var "b")) P.one) in
  let n = P.var "n" and b = P.var "b" and i = P.var "i" in
  let nb_b = P.sub (P.mul n b) b in
  let dim = Lmads.Lmad.dim in
  let w =
    Lmads.Lmad.make
      (P.sum [ P.mul i b; n; P.one ])
      [ dim (P.add i P.one) nb_b; dim b n; dim b P.one ]
  in
  let rv =
    Lmads.Lmad.make (P.mul i b) [ dim (P.add i P.one) nb_b; dim (P.add b P.one) n ]
  in
  let rh =
    Lmads.Lmad.make (P.add (P.mul i b) P.one)
      [ dim (P.add i P.one) nb_b; dim b P.one ]
  in
  Fmt.pr "Assumptions: n = q*b + 1, q >= 2, b >= 2, 0 <= i <= q-1@.";
  Fmt.pr "W      = %a@." Lmads.Lmad.pp w;
  Fmt.pr "Rvert  = %a@." Lmads.Lmad.pp rv;
  Fmt.pr "Rhoriz = %a@.@." Lmads.Lmad.pp rh;
  Fmt.pr "W  # Rvert : %b@." (Lmads.Nonoverlap.disjoint ctx w rv);
  Fmt.pr "W  # Rhoriz: %b@." (Lmads.Nonoverlap.disjoint ctx w rh);
  Fmt.pr "W  # W     : %b (must stay unproven)@."
    (Lmads.Nonoverlap.disjoint ctx w w);
  Ok ()

(* ---- cmdliner ---------------------------------------------------- *)

let to_exit = function
  | Ok () -> 0
  | Error e ->
      prerr_endline ("error: " ^ e);
      1

let bench_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"BENCH")

(* Short-circuiting options as CLI flags, shared by the subcommands
   that run the pipeline. *)
let options_term =
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Trace circuit attempts and print full pass statistics.")
  in
  let no_refinement =
    Arg.(
      value & flag
      & info [ "no-refinement" ]
          ~doc:
            "Disable the per-iteration / per-thread refinements of \
             section V-B (ablation).")
  in
  let split_depth =
    Arg.(
      value
      & opt int Core.Shortcircuit.default_options.Core.Shortcircuit.split_depth
      & info [ "split-depth" ] ~docv:"N"
          ~doc:
            "Recursion budget of the dimension-splitting heuristic in the \
             non-overlap test (0 disables splitting).")
  in
  Term.(
    const (fun verbose no_refinement split_depth ->
        {
          Core.Shortcircuit.verbose;
          enable_refinement = not no_refinement;
          split_depth;
        })
    $ verbose $ no_refinement $ split_depth)

(* Memory-reuse options: [--no-reuse] disables the pass (the reuse
   variant then degenerates to a clone of the short-circuited one);
   the pass's trace output follows the global verbosity. *)
let reuse_term =
  let no_reuse =
    Arg.(
      value & flag
      & info [ "no-reuse" ]
          ~doc:
            "Disable the memory-block reuse pass (the third pipeline \
             variant becomes a copy of the short-circuited one).")
  in
  Term.(
    const (fun no_reuse (options : Core.Shortcircuit.options) ->
        if no_reuse then Core.Reuse.disabled
        else
          {
            Core.Reuse.default_options with
            Core.Reuse.verbose = options.Core.Shortcircuit.verbose;
          })
    $ no_reuse $ options_term)

(* [--no-pack] disables the offset-based arena packing pass (the
   fourth pipeline variant then degenerates to a clone of the reused
   one) - the A/B baseline for the packing effect. *)
let pack_term =
  let no_pack =
    Arg.(
      value & flag
      & info [ "no-pack" ]
          ~doc:
            "Disable the offset-based arena packing pass (the fourth \
             pipeline variant becomes a copy of the memory-reused one).")
  in
  let pack_order =
    let order =
      Arg.enum
        [ ("colour", Core.Pack.Colour); ("firstfit", Core.Pack.Firstfit) ]
    in
    Arg.(
      value
      & opt order Core.Pack.Colour
      & info [ "pack-order" ] ~docv:"ORDER"
          ~doc:
            "Arena placement order: $(b,colour) (interval-graph colouring \
             with size-sorted tie-breaking; falls back to first-fit unless \
             provably no larger) or $(b,firstfit) (emission order).")
  in
  Term.(
    const (fun no_pack order (options : Core.Shortcircuit.options) ->
        if no_pack then Core.Pack.disabled
        else
          {
            Core.Pack.default_options with
            Core.Pack.verbose = options.Core.Shortcircuit.verbose;
            Core.Pack.order;
          })
    $ no_pack $ pack_order $ options_term)

(* [--no-pool] reverts the allocator model to all-miss: every top-level
   allocation is charged [alloc_miss_cost], as before the pool existed
   (the A/B baseline for the pool's latency effect). *)
let pool_term =
  let no_pool =
    Arg.(
      value & flag
      & info [ "no-pool" ]
          ~doc:
            "Disable the size-class allocation pool: every top-level \
             allocation is charged the full device-allocation cost \
             (A/B baseline).")
  in
  Term.(const (fun no_pool -> not no_pool) $ no_pool)

(* [--pool-cap BYTES] bounds the pool's device footprint: a miss that
   would grow past the cap first evicts cached free blocks, each priced
   as a synchronizing device free.  The bench gate additionally checks
   high_water <= cap on every recorded pool. *)
let pool_cap_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "pool-cap" ] ~docv:"BYTES"
        ~doc:
          "Cap the allocation pool's total device memory at $(docv): \
           cache evictions forced by the cap are priced as \
           synchronizing device frees.  Live memory is never refused.")

(* The degradation ladder is on by default for table/bench runs: a
   crashing pass, lint error, or refuted certificate degrades the
   affected variant (recorded in the recovery report, nonzero exit)
   instead of aborting the whole run.  [--no-fail-safe] restores
   fail-fast aborts for debugging a fault at its source. *)
let fail_safe_term =
  Arg.(
    value
    & vflag true
        [
          ( true,
            info [ "fail-safe" ]
              ~doc:
                "Contain pass crashes, lint errors, and refuted \
                 certificates by degrading to the last good pipeline \
                 variant (the default)." );
          ( false,
            info [ "no-fail-safe" ]
              ~doc:
                "Abort on the first pipeline fault instead of degrading \
                 (fail-fast debugging)." );
        ])

(* [--prover-budget N] bounds the symbolic prover's work per public
   query; exhausted queries return Undecided, so the affected rewrite
   is skipped - never an abort.  Exhaustion counts land in the stats
   and in BENCH.json's prover object. *)
let prover_budget_term =
  let steps =
    Arg.(
      value
      & opt int (-1)
      & info [ "prover-budget" ] ~docv:"STEPS"
          ~doc:
            "Bound the prover's nonnegativity eliminations per query at \
             $(docv) (-1 = unlimited, 0 = every obligation Undecided).  \
             Exhaustion soundly skips the rewrite and is counted in the \
             prover stats.")
  in
  let deadline =
    Arg.(
      value
      & opt float 0.
      & info [ "prover-deadline" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock deadline per prover query (0 = none); expiring \
             counts as budget exhaustion.")
  in
  Term.(
    const (fun s d ->
        {
          Symalg.Prover.unlimited with
          Symalg.Prover.b_steps = s;
          Symalg.Prover.b_deadline = d;
        })
    $ steps $ deadline)

let table_cmd =
  let bench_json =
    Arg.(
      value & flag
      & info [ "bench-json" ]
          ~doc:
            "Write a machine-readable performance record (modeled times, \
             impacts, footprints, pool behaviour, compile times, reuse \
             statistics, prover cache rates) after the tables.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "With $(b,--bench-json): target file (default \
             BENCH_<date>.json).")
  in
  Cmd.v (Cmd.info "table" ~doc:"Regenerate a paper table (1-7 or name or all)")
    Term.(
      const (fun w o r pk p pc fs pb bj out ->
          to_exit (run_table w o r pk p pc fs pb bj out))
      $ bench_arg $ options_term $ reuse_term $ pack_term $ pool_term
      $ pool_cap_term $ fail_safe_term $ prover_budget_term $ bench_json
      $ out)

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Full-mode validation against the reference interpreter")
    Term.(const (fun w -> to_exit (run_validate w)) $ bench_arg)

let dump_cmd =
  let opt =
    Arg.(value & flag & info [ "O"; "optimized" ] ~doc:"Dump the optimized IR.")
  in
  let reuse =
    Arg.(
      value & flag
      & info [ "R"; "reuse" ] ~doc:"Dump the memory-reused IR.")
  in
  let pack =
    Arg.(
      value & flag
      & info [ "P"; "pack" ] ~doc:"Dump the arena-packed IR.")
  in
  Cmd.v (Cmd.info "dump" ~doc:"Print a benchmark's memory-annotated IR")
    Term.(
      const (fun w o r p -> to_exit (run_dump w o r p))
      $ bench_arg $ opt $ reuse $ pack)

let lint_cmd =
  let reports =
    Arg.(
      value & flag
      & info [ "r"; "reports" ]
          ~doc:"Print the full per-stage report even when clean.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Verify the memory IR of a benchmark (or all) after every \
          pipeline pass")
    Term.(
      const (fun w o p r -> to_exit (run_lint w o p r))
      $ bench_arg $ options_term $ pack_term $ reports)

let trace_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the raw event logs as JSON instead of the summary.")
  in
  let diff =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Compare the unopt/opt/reuse/pack traces' logical event \
             skeletons; the optimizations may move or elide storage but \
             must not change the event sequence.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:
            "With $(b,--json): write one $(i,BENCH).json per benchmark into \
             $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Execute a benchmark (or all) in full mode with event tracing and \
          cross-check the dynamic footprints against the static LMAD \
          annotations")
    Term.(
      const (fun w j d o -> to_exit (run_trace w j d o))
      $ bench_arg $ json $ diff $ out)

let bench_cmd =
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Compare the performance record against $(b,--baseline) and \
             exit nonzero on any regression (time above tolerance, \
             growing allocation count or peak footprint).")
  in
  let baseline =
    Arg.(
      value
      & opt string "bench/baseline.json"
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed baseline record to gate against.")
  in
  let tolerance =
    Arg.(
      value
      & opt float Benchsuite.Benchjson.default_tolerance
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Relative tolerance for modeled times (default 0.05 = 5%). \
             Footprint counters are exact and get no tolerance.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the fresh record to $(docv) (default BENCH_<date>.json \
             when run without $(b,--check); refresh the baseline with \
             -o bench/baseline.json).")
  in
  let current =
    Arg.(
      value
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE"
          ~doc:
            "Gate an existing record instead of re-running the suite \
             (e.g. the BENCH.json a previous CI step emitted).")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the gate's diff report to $(docv).")
  in
  let order_check =
    Arg.(
      value
      & opt (some string) None
      & info [ "order-check" ] ~docv:"FILE"
          ~doc:
            "Pack-order A/B gate: treat the record at hand (fresh or \
             $(b,--current)) as the $(b,colour) run and compare it against \
             the $(b,firstfit) record in $(docv) - colour's executed arena \
             extent may never exceed first-fit's, and its planner coverage \
             may not shrink.  Exits nonzero on any breach.")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Emit the machine-readable performance record and optionally gate \
          it against a committed baseline")
    Term.(
      const (fun o r pk p pc fs pb c b t out cur rep oc ->
          to_exit (run_bench o r pk p pc fs pb c b t out cur rep oc))
      $ options_term $ reuse_term $ pack_term $ pool_term $ pool_cap_term
      $ fail_safe_term $ prover_budget_term $ check $ baseline $ tolerance
      $ out $ current $ report $ order_check)

let certify_cmd =
  let reports =
    Arg.(
      value & flag
      & info [ "r"; "reports" ]
          ~doc:"Print the full per-pass certificate even when clean.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the checked certificates as JSON instead of a summary.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:
            "With $(b,--json): write one $(i,BENCH).cert.json per benchmark \
             into $(docv) instead of stdout.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Compare the certificates against $(b,--baseline) and exit \
             nonzero on any regression (lost obligation, weakened verdict, \
             dropped emitted/proved count, or any currently failed \
             obligation).")
  in
  let baseline =
    Arg.(
      value
      & opt string "bench/certs-baseline.json"
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Committed certificate baseline to gate against.")
  in
  let current =
    Arg.(
      value
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE"
          ~doc:
            "Gate an existing combined certificate document instead of \
             re-certifying (e.g. the output a previous CI step emitted).")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the gate's diff report to $(docv).")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Re-derive every optimization rewrite's proof obligations with the \
          independent certificate checker (translation validation); exit \
          nonzero on any refuted obligation")
    Term.(
      const (fun w o ru pk r j out c b cur rep ->
          to_exit (run_certify w o ru pk r j out c b cur rep))
      $ bench_arg $ options_term $ reuse_term $ pack_term $ reports $ json
      $ out $ check $ baseline $ current $ report)

let chaos_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "PRNG seed for the injection sites; the campaign is \
             reproducible from its seed.")
  in
  let rounds =
    Arg.(
      value & opt int 1
      & info [ "rounds" ] ~docv:"N"
          ~doc:
            "Repeat the per-benchmark injection draws $(docv) times for \
             wider site coverage.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the campaign record as JSON (the CI artifact).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:
            "With $(b,--json): write campaign.json into $(docv) instead \
             of stdout.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Seeded fault-injection campaign: inject prover exhaustion, pass \
          crashes, forged certificates, device OOM, and pool-cap pressure \
          into each benchmark; exit nonzero unless every run stays \
          crash-free, bit-equal to the reference, and blames its fault")
    Term.(
      const (fun w s r j o -> to_exit (run_chaos w s r j o))
      $ bench_arg $ seed $ rounds $ json $ out)

let prove_cmd =
  Cmd.v (Cmd.info "prove-nw" ~doc:"Discharge the Fig. 9 proof obligation")
    Term.(const (fun () -> to_exit (run_prove_nw ())) $ const ())

let () =
  let doc = "Memory Optimizations in an Array Language (SC22) - reproduction" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "repro" ~doc)
          [
            table_cmd; validate_cmd; lint_cmd; trace_cmd; dump_cmd; bench_cmd;
            certify_cmd; chaos_cmd; prove_cmd;
          ]))
