(* The `repro` command-line driver.

     repro table <1..7|all>     regenerate the paper's tables
     repro validate [bench]     full-mode validation at reduced sizes
     repro lint [bench]         static memory-IR verification (memlint)
     repro trace [bench]        traced execution + dynamic cross-check
                                (memtrace); --json dumps the event log
     repro dump <bench> [-O]    print the (memory-annotated) IR
     repro prove-nw             show the Fig. 9 non-overlap proof
*)

open Cmdliner

type bench = {
  name : string;
  table_no : int;
  table :
    ?options:Core.Shortcircuit.options -> unit -> Benchsuite.Runner.outcome;
  prog : Ir.Ast.prog;
  small_args : Ir.Value.t list Lazy.t;
}

let benches : bench list =
  [
    {
      name = "nw";
      table_no = 1;
      table = Benchsuite.Nw.table;
      prog = Benchsuite.Nw.prog;
      small_args = lazy (Benchsuite.Nw.small_args ~q:3 ~b:4);
    };
    {
      name = "lud";
      table_no = 2;
      table = Benchsuite.Lud.table;
      prog = Benchsuite.Lud.prog;
      small_args = lazy (Benchsuite.Lud.small_args ~q:3 ~b:4);
    };
    {
      name = "hotspot";
      table_no = 3;
      table = Benchsuite.Hotspot.table;
      prog = Benchsuite.Hotspot.prog;
      small_args = lazy (Benchsuite.Hotspot.small_args ~n:16 ~steps:3);
    };
    {
      name = "lbm";
      table_no = 4;
      table = Benchsuite.Lbm.table;
      prog = Benchsuite.Lbm.prog;
      small_args = lazy (Benchsuite.Lbm.small_args ~n:8 ~steps:3);
    };
    {
      name = "optionpricing";
      table_no = 5;
      table = Benchsuite.Option_pricing.table;
      prog = Benchsuite.Option_pricing.prog;
      small_args =
        lazy (Benchsuite.Option_pricing.small_args ~npaths:64 ~nsteps:16);
    };
    {
      name = "locvolcalib";
      table_no = 6;
      table = Benchsuite.Locvolcalib.table;
      prog = Benchsuite.Locvolcalib.prog;
      small_args =
        lazy (Benchsuite.Locvolcalib.small_args ~numo:6 ~numx:12 ~numt:4);
    };
    {
      name = "nn";
      table_no = 7;
      table = Benchsuite.Nn.table;
      prog = Benchsuite.Nn.prog;
      small_args = lazy (Benchsuite.Nn.small_args ~nrec:100 ~nbatch:4 ~bsz:8);
    };
  ]

let find_bench s =
  match
    List.find_opt
      (fun b ->
        b.name = String.lowercase_ascii s
        || string_of_int b.table_no = s)
      benches
  with
  | Some b -> Ok b
  | None ->
      Error
        (Printf.sprintf "unknown benchmark %S (try: %s)" s
           (String.concat ", " (List.map (fun b -> b.name) benches)))

(* ---- table ----------------------------------------------------- *)

let run_table which options =
  let run b =
    let o = b.table ~options () in
    print_string (Benchsuite.Table.to_string o.Benchsuite.Runner.table);
    let st = o.Benchsuite.Runner.compiled.Core.Pipeline.stats in
    if options.Core.Shortcircuit.verbose then
      Fmt.pr "%a@.@." Core.Shortcircuit.pp_stats st
    else
      Printf.printf "  short-circuiting: %d/%d candidates, %d vars rebased\n"
        st.Core.Shortcircuit.succeeded st.Core.Shortcircuit.candidates
        st.Core.Shortcircuit.rebased_vars;
    (match o.Benchsuite.Runner.traffic with
    | None -> ()
    | Some t ->
        let mb x = x /. 1e6 in
        let dev m m' = if m' = 0. then 0. else 100. *. (m -. m') /. m' in
        Printf.printf
          "  traffic @ reduced size: kernels %.3f MB measured vs %.3f MB \
           modeled (%+.1f%%), copies %.3f vs %.3f MB | memtrace %s\n"
          (mb t.Benchsuite.Runner.measured_rw)
          (mb t.Benchsuite.Runner.modeled_rw)
          (dev t.Benchsuite.Runner.modeled_rw t.Benchsuite.Runner.measured_rw)
          (mb t.Benchsuite.Runner.measured_copy)
          (mb t.Benchsuite.Runner.modeled_copy)
          (if Core.Memtrace.ok t.Benchsuite.Runner.check then "clean"
           else "VIOLATIONS"));
    print_newline ()
  in
  match which with
  | "all" ->
      List.iter run benches;
      Ok ()
  | s -> Result.map run (find_bench s)

(* ---- validate --------------------------------------------------- *)

let run_validate which =
  let validate b =
    let v = Benchsuite.Runner.validate b.prog (Lazy.force b.small_args) in
    Printf.printf
      "%-14s interp-match: unopt=%b opt=%b | copies %d -> %d (%d elided) | \
       circuits %d\n"
      b.name v.Benchsuite.Runner.ok_unopt v.Benchsuite.Runner.ok_opt
      v.Benchsuite.Runner.copies_unopt v.Benchsuite.Runner.copies_opt
      v.Benchsuite.Runner.elided v.Benchsuite.Runner.sc_succeeded;
    v.Benchsuite.Runner.ok_unopt && v.Benchsuite.Runner.ok_opt
  in
  match which with
  | "all" ->
      let ok = List.for_all validate benches in
      if ok then Ok () else Error "validation failed"
  | s ->
      Result.bind (find_bench s) (fun b ->
          if validate b then Ok () else Error "validation failed")

(* ---- lint -------------------------------------------------------- *)

let run_lint which options verbose_reports =
  let lint b =
    let c = Core.Pipeline.compile ~options ~lint:true b.prog in
    List.iter
      (fun (_, r) ->
        if verbose_reports || not (Core.Memlint.ok r) then
          Fmt.pr "%a@.@." Core.Memlint.pp_report r)
      c.Core.Pipeline.lint;
    match Core.Pipeline.first_lint_error c.Core.Pipeline.lint with
    | None ->
        let warns =
          List.fold_left
            (fun n (_, r) -> n + List.length (Core.Memlint.warnings r))
            0 c.Core.Pipeline.lint
        in
        Printf.printf "%-14s %d stages clean (%d warnings)\n" b.name
          (List.length c.Core.Pipeline.lint)
          warns;
        true
    | Some (stage, v) ->
        Fmt.epr "%-14s violation introduced by %s: %a@." b.name stage
          Core.Memlint.pp_violation v;
        false
  in
  match which with
  | "all" ->
      let ok = List.fold_left (fun ok b -> lint b && ok) true benches in
      if ok then Ok () else Error "lint failed"
  | s ->
      Result.bind (find_bench s) (fun b ->
          if lint b then Ok () else Error "lint failed")

(* ---- trace ------------------------------------------------------- *)

(* Full-mode traced execution of both pipeline variants at the reduced
   size, cross-checked by memtrace.  Human output shows the checker's
   verdict and the per-kernel traffic histogram of the optimized run;
   [--json] emits the raw event logs instead (to stdout, or to
   <out>/<bench>.json per benchmark when [-o] is given). *)

let print_histogram t =
  let tr = Core.Trace.traffic t in
  Printf.printf "  %-18s %8s %12s %12s\n" "kernel" "launches" "read MB"
    "write MB";
  List.iter
    (fun (label, launches, r, w) ->
      Printf.printf "  %-18s %8d %12.4f %12.4f\n" label launches (r /. 1e6)
        (w /. 1e6))
    (Core.Trace.histogram t);
  Printf.printf
    "  total: %.4f MB read, %.4f MB written, %.4f MB copied (%.4f MB \
     elided)\n"
    (tr.Core.Trace.t_kernel_reads /. 1e6)
    (tr.Core.Trace.t_kernel_writes /. 1e6)
    (tr.Core.Trace.t_copy_bytes /. 1e6)
    (tr.Core.Trace.t_elided_bytes /. 1e6)

let bench_json (u : Benchsuite.Runner.traced)
    (o : Benchsuite.Runner.traced) =
  let clean =
    Core.Memtrace.ok u.Benchsuite.Runner.check
    && Core.Memtrace.ok o.Benchsuite.Runner.check
  in
  Printf.sprintf "{\"clean\": %b, \"unopt\": %s, \"opt\": %s}" clean
    (Core.Trace.to_json u.Benchsuite.Runner.trace)
    (Core.Trace.to_json o.Benchsuite.Runner.trace)

let run_trace which json out =
  let trace b =
    let u, o =
      Benchsuite.Runner.trace_check b.prog (Lazy.force b.small_args)
    in
    let clean =
      Core.Memtrace.ok u.Benchsuite.Runner.check
      && Core.Memtrace.ok o.Benchsuite.Runner.check
    in
    if json then (
      let s = bench_json u o in
      match out with
      | None -> print_endline s
      | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let path = Filename.concat dir (b.name ^ ".json") in
          let oc = open_out path in
          output_string oc s;
          output_char oc '\n';
          close_out oc;
          Printf.printf "%-14s wrote %s (%s)\n" b.name path
            (if clean then "clean" else "VIOLATIONS"))
    else begin
      List.iter
        (fun (t : Benchsuite.Runner.traced) ->
          Fmt.pr "%a@." Core.Memtrace.pp_report t.Benchsuite.Runner.check)
        [ u; o ];
      print_histogram o.Benchsuite.Runner.trace;
      print_newline ()
    end;
    clean
  in
  match which with
  | "all" ->
      let ok = List.fold_left (fun ok b -> trace b && ok) true benches in
      if ok then Ok () else Error "memtrace cross-check failed"
  | s ->
      Result.bind (find_bench s) (fun b ->
          if trace b then Ok () else Error "memtrace cross-check failed")

(* ---- dump -------------------------------------------------------- *)

let run_dump which opt =
  Result.map
    (fun b ->
      let c = Core.Pipeline.compile b.prog in
      let p = if opt then c.Core.Pipeline.opt else c.Core.Pipeline.unopt in
      print_endline (Ir.Pretty.prog_to_string p))
    (find_bench which)

(* ---- prove-nw ---------------------------------------------------- *)

let run_prove_nw () =
  let module P = Symalg.Poly in
  let module Pr = Symalg.Prover in
  let c = P.const in
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "i" ~lo:(c 0) ~hi:(P.sub (P.var "q") P.one) () in
  let ctx = Pr.add_eq ctx "n" (P.add (P.mul (P.var "q") (P.var "b")) P.one) in
  let n = P.var "n" and b = P.var "b" and i = P.var "i" in
  let nb_b = P.sub (P.mul n b) b in
  let dim = Lmads.Lmad.dim in
  let w =
    Lmads.Lmad.make
      (P.sum [ P.mul i b; n; P.one ])
      [ dim (P.add i P.one) nb_b; dim b n; dim b P.one ]
  in
  let rv =
    Lmads.Lmad.make (P.mul i b) [ dim (P.add i P.one) nb_b; dim (P.add b P.one) n ]
  in
  let rh =
    Lmads.Lmad.make (P.add (P.mul i b) P.one)
      [ dim (P.add i P.one) nb_b; dim b P.one ]
  in
  Fmt.pr "Assumptions: n = q*b + 1, q >= 2, b >= 2, 0 <= i <= q-1@.";
  Fmt.pr "W      = %a@." Lmads.Lmad.pp w;
  Fmt.pr "Rvert  = %a@." Lmads.Lmad.pp rv;
  Fmt.pr "Rhoriz = %a@.@." Lmads.Lmad.pp rh;
  Fmt.pr "W  # Rvert : %b@." (Lmads.Nonoverlap.disjoint ctx w rv);
  Fmt.pr "W  # Rhoriz: %b@." (Lmads.Nonoverlap.disjoint ctx w rh);
  Fmt.pr "W  # W     : %b (must stay unproven)@."
    (Lmads.Nonoverlap.disjoint ctx w w);
  Ok ()

(* ---- cmdliner ---------------------------------------------------- *)

let to_exit = function
  | Ok () -> 0
  | Error e ->
      prerr_endline ("error: " ^ e);
      1

let bench_arg =
  Arg.(value & pos 0 string "all" & info [] ~docv:"BENCH")

(* Short-circuiting options as CLI flags, shared by the subcommands
   that run the pipeline. *)
let options_term =
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Trace circuit attempts and print full pass statistics.")
  in
  let no_refinement =
    Arg.(
      value & flag
      & info [ "no-refinement" ]
          ~doc:
            "Disable the per-iteration / per-thread refinements of \
             section V-B (ablation).")
  in
  let split_depth =
    Arg.(
      value
      & opt int Core.Shortcircuit.default_options.Core.Shortcircuit.split_depth
      & info [ "split-depth" ] ~docv:"N"
          ~doc:
            "Recursion budget of the dimension-splitting heuristic in the \
             non-overlap test (0 disables splitting).")
  in
  Term.(
    const (fun verbose no_refinement split_depth ->
        {
          Core.Shortcircuit.verbose;
          enable_refinement = not no_refinement;
          split_depth;
        })
    $ verbose $ no_refinement $ split_depth)

let table_cmd =
  Cmd.v (Cmd.info "table" ~doc:"Regenerate a paper table (1-7 or name or all)")
    Term.(const (fun w o -> to_exit (run_table w o)) $ bench_arg $ options_term)

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Full-mode validation against the reference interpreter")
    Term.(const (fun w -> to_exit (run_validate w)) $ bench_arg)

let dump_cmd =
  let opt =
    Arg.(value & flag & info [ "O"; "optimized" ] ~doc:"Dump the optimized IR.")
  in
  Cmd.v (Cmd.info "dump" ~doc:"Print a benchmark's memory-annotated IR")
    Term.(const (fun w o -> to_exit (run_dump w o)) $ bench_arg $ opt)

let lint_cmd =
  let reports =
    Arg.(
      value & flag
      & info [ "r"; "reports" ]
          ~doc:"Print the full per-stage report even when clean.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Verify the memory IR of a benchmark (or all) after every \
          pipeline pass")
    Term.(
      const (fun w o r -> to_exit (run_lint w o r))
      $ bench_arg $ options_term $ reports)

let trace_cmd =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the raw event logs as JSON instead of the summary.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:
            "With $(b,--json): write one $(i,BENCH).json per benchmark into \
             $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Execute a benchmark (or all) in full mode with event tracing and \
          cross-check the dynamic footprints against the static LMAD \
          annotations")
    Term.(
      const (fun w j o -> to_exit (run_trace w j o))
      $ bench_arg $ json $ out)

let prove_cmd =
  Cmd.v (Cmd.info "prove-nw" ~doc:"Discharge the Fig. 9 proof obligation")
    Term.(const (fun () -> to_exit (run_prove_nw ())) $ const ())

let () =
  let doc = "Memory Optimizations in an Array Language (SC22) - reproduction" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "repro" ~doc)
          [ table_cmd; validate_cmd; lint_cmd; trace_cmd; dump_cmd; prove_cmd ]))
