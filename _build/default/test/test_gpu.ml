(* Tests for the GPU cost-model executor: copy elision, location
   equality, cost-only vs full-mode counter agreement, the device time
   model, and the perfect-L2 read capping. *)

open Ir
open Ast
module P = Symalg.Poly
module B = Build
module Exec = Gpu.Exec
module Device = Gpu.Device

let c = P.const
let n = P.var "n"
let ctx_n = Symalg.Prover.add_range Symalg.Prover.empty "n" ~lo:(c 1) ()
let farr xs = Value.VArr (Value.of_floats [ Array.length xs ] xs)

(* A program with one deliberate copy (a view manifested with ECopy). *)
let copy_prog =
  B.prog "cp" ~ctx:ctx_n
    ~params:[ pat_elem "n" i64; pat_elem "a" (arr F64 [ n ]) ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let r = B.bind b "r" (EReverse ("a", 0)) in
      [ Var (B.bind b "m" (ECopy r)) ])

let test_copy_counted () =
  let compiled = Core.Pipeline.compile copy_prog in
  let args = [ Value.VInt 8; farr (Array.init 8 float_of_int) ] in
  let r = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt args in
  Alcotest.(check int) "one copy" 1 r.Exec.counters.Device.copies;
  Alcotest.(check (float 1.0)) "64 bytes" 64.0 r.Exec.counters.Device.copy_bytes;
  (* reversal itself is free: only the copy moves data *)
  match r.Exec.results with
  | [ Value.VArr out ] ->
      Alcotest.(check (list (float 0.)))
        "reversed data" [ 7.; 6.; 5.; 4.; 3.; 2.; 1.; 0. ]
        (Array.to_list (Value.float_data out))
  | _ -> Alcotest.fail "bad result"

let test_views_are_free () =
  let prog =
    B.prog "vw" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "a" (arr F64 [ n; n ]) ]
      ~ret:[ f64 ]
      (fun b ->
        let t = B.bind b "t" (ETranspose ("a", [ 1; 0 ])) in
        let s =
          B.bind b "s" (ESlice (t, STriplet [ SFix P.one; B.all n ]))
        in
        [ B.index b s [ P.zero ] ])
  in
  let compiled = Core.Pipeline.compile prog in
  let args = [ Value.VInt 4; farr (Array.init 16 float_of_int) ] in
  let r = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt args in
  (* one element read; no copies; no kernels *)
  Alcotest.(check int) "no copies" 0 r.Exec.counters.Device.copies;
  Alcotest.(check int) "no kernels" 0 r.Exec.counters.Device.kernels;
  (* transpose(a)[1][0] = a[0][1] = 1.0 *)
  Alcotest.(check bool) "value through views" true
    (r.Exec.results = [ Value.VFloat 1.0 ])

let test_cost_only_matches_full_bytes () =
  (* on a uniform mapnest, cost-only sampling must reproduce full-mode
     byte counts exactly *)
  let prog =
    B.prog "cm" ~ctx:ctx_n ~params:[ pat_elem "n" i64; pat_elem "a" (arr F64 [ n ]) ]
      ~ret:[ arr F64 [ n ] ]
      (fun b ->
        let iv = Ir.Names.fresh "i" in
        let ys =
          B.mapnest b "ys" [ (iv, n) ] (fun bb ->
              let x = B.index bb "a" [ P.var iv ] in
              [ B.fmul bb x x ])
        in
        [ Var ys ])
  in
  let compiled = Core.Pipeline.compile prog in
  let full =
    Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt
      [ Value.VInt 32; farr (Array.init 32 float_of_int) ]
  in
  let cost =
    Exec.run ~mode:Exec.Cost_only compiled.Core.Pipeline.unopt
      [ Value.VInt 32; Value.VArr (Value.shell F64 [ 32 ]) ]
  in
  Alcotest.(check (float 1.))
    "reads agree" full.Exec.counters.Device.kernel_reads
    cost.Exec.counters.Device.kernel_reads;
  Alcotest.(check (float 1.))
    "writes agree" full.Exec.counters.Device.kernel_writes
    cost.Exec.counters.Device.kernel_writes;
  Alcotest.(check (float 1.))
    "flops agree" full.Exec.counters.Device.flops
    cost.Exec.counters.Device.flops

let test_l2_cap () =
  (* a kernel reading the same small array from every thread must be
     charged at most the array's footprint *)
  let prog =
    B.prog "l2" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "small" (arr F64 [ c 4 ]) ]
      ~ret:[ arr F64 [ n ] ]
      (fun b ->
        let iv = Ir.Names.fresh "i" in
        let ys =
          B.mapnest b "ys" [ (iv, n) ] (fun bb ->
              let a = B.index bb "small" [ P.zero ] in
              let d = B.index bb "small" [ P.one ] in
              [ B.fadd bb a d ])
        in
        [ Var ys ])
  in
  let compiled = Core.Pipeline.compile prog in
  let r =
    Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt
      [ Value.VInt 100; farr [| 1.; 2.; 3.; 4. |] ]
  in
  (* 200 reads issued, but the block holds only 4 elements: <= 32 B *)
  Alcotest.(check bool) "reads capped at footprint" true
    (r.Exec.counters.Device.kernel_reads <= 32.0)

let test_time_model_monotone () =
  let c1 = Device.fresh_counters () in
  c1.Device.kernels <- 1;
  c1.Device.kernel_reads <- 1e6;
  let c2 = Device.clone c1 in
  c2.Device.copies <- 1;
  c2.Device.copy_bytes <- 1e6;
  let t1 = Device.time Device.a100 c1 and t2 = Device.time Device.a100 c2 in
  Alcotest.(check bool) "copies cost time" true (t2 > t1);
  Alcotest.(check bool) "A100 faster than MI100" true
    (Device.time Device.a100 c2 < Device.time Device.mi100 c2)

let test_elision_requires_same_location () =
  (* an update whose source was NOT rebased must copy *)
  let prog =
    B.prog "el" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "a" (arr F64 [ n ]); pat_elem "x" (arr F64 [ n ]) ]
      ~ret:[ arr F64 [ n ] ]
      (fun b ->
        [
          Var
            (B.bind b "r"
               (EUpdate { dst = "a"; slc = STriplet [ B.all n ]; src = SrcArr "x" }));
        ])
  in
  let compiled = Core.Pipeline.compile prog in
  (* x is a parameter: it cannot be rebased, so the copy stays *)
  let r =
    Exec.run ~mode:Exec.Full compiled.Core.Pipeline.opt
      [ Value.VInt 4; farr [| 0.; 0.; 0.; 0. |]; farr [| 1.; 2.; 3.; 4. |] ]
  in
  Alcotest.(check int) "copy performed" 1 r.Exec.counters.Device.copies;
  match r.Exec.results with
  | [ Value.VArr out ] ->
      Alcotest.(check (list (float 0.))) "copied data" [ 1.; 2.; 3.; 4. ]
        (Array.to_list (Value.float_data out))
  | _ -> Alcotest.fail "bad result"

(* A reshape of a transposed (column-major) matrix cannot be expressed
   with one LMAD: the executor must unrank through the chained index
   function (Fig. 3's run-time divisions). *)
let test_multi_lmad_execution () =
  let prog =
    B.prog "ml" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "a" (arr F64 [ n; n ]) ]
      ~ret:[ arr F64 [ P.mul n n ] ]
      (fun b ->
        let t = B.bind b "t" (ETranspose ("a", [ 1; 0 ])) in
        [ Var (B.bind b "flat" (EReshape (t, [ P.mul n n ]))) ])
  in
  let compiled = Core.Pipeline.compile prog in
  let args =
    [ Value.VInt 3; Value.VArr (Value.of_floats [ 3; 3 ] (Array.init 9 float_of_int)) ]
  in
  let expect = Interp.run compiled.Core.Pipeline.source args in
  let r = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt args in
  Alcotest.(check bool) "unranked reads agree with interpreter" true
    (List.for_all2 Value.approx_equal expect r.Exec.results);
  (* the view itself must still be free *)
  Alcotest.(check int) "no copies" 0 r.Exec.counters.Device.copies

(* Simpson-sampled loops (cost-only, bound >= 24) must reproduce the
   exact counters of a full execution when per-iteration costs are (at
   most) quadratic in the index - NW's wavefront is linear. *)
let test_simpson_loop_sampling () =
  let q = 26 and b = 2 in
  let compiled = Core.Pipeline.compile Benchsuite.Nw.prog in
  let full =
    Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt
      (Benchsuite.Nw.small_args ~q ~b)
  in
  let cost =
    Exec.run ~mode:Exec.Cost_only compiled.Core.Pipeline.unopt
      (Benchsuite.Nw.args ~q ~b ~penalty:10.0 ~shell:true)
  in
  let fc = full.Exec.counters and cc = cost.Exec.counters in
  Alcotest.(check int) "kernels agree" fc.Device.kernels cc.Device.kernels;
  Alcotest.(check int) "copies agree" fc.Device.copies cc.Device.copies;
  let close msg a bexp =
    let rel = Float.abs (a -. bexp) /. Float.max 1.0 bexp in
    if rel > 0.02 then Alcotest.failf "%s: %g vs %g (%.1f%%)" msg a bexp (100. *. rel)
  in
  close "copy bytes" cc.Device.copy_bytes fc.Device.copy_bytes;
  close "kernel writes" cc.Device.kernel_writes fc.Device.kernel_writes;
  close "flops" cc.Device.flops fc.Device.flops

let tests =
  [
    Alcotest.test_case "multi-LMAD execution" `Quick test_multi_lmad_execution;
    Alcotest.test_case "Simpson loop sampling = full" `Quick
      test_simpson_loop_sampling;
    Alcotest.test_case "copies counted and performed" `Quick test_copy_counted;
    Alcotest.test_case "views are free" `Quick test_views_are_free;
    Alcotest.test_case "cost-only = full (uniform kernel)" `Quick
      test_cost_only_matches_full_bytes;
    Alcotest.test_case "perfect-L2 read cap" `Quick test_l2_cap;
    Alcotest.test_case "time model monotone" `Quick test_time_model_monotone;
    Alcotest.test_case "elision requires same location" `Quick
      test_elision_requires_same_location;
  ]
