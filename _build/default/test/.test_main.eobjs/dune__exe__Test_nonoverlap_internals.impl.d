test/test_nonoverlap_internals.ml: Alcotest Array List Lmad Lmads Nonoverlap Symalg
