test/test_main.ml: Alcotest Test_bench Test_core Test_frontend Test_gpu Test_ir Test_lmad Test_nonoverlap_internals Test_symalg
