test/test_ir.ml: Alcotest Array Ast Build Check Fun Interp Ir List Lmads Printf QCheck QCheck_alcotest Symalg Value
