test/test_lmad.ml: Alcotest Antiunify Fun Int Ixfn List Lmad Lmads Nonoverlap Printf QCheck QCheck_alcotest Set Symalg
