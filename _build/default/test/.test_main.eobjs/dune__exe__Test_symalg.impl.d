test/test_symalg.ml: Alcotest List QCheck QCheck_alcotest Random Symalg
