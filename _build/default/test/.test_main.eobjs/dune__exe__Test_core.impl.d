test/test_core.ml: Alcotest Array Ast Benchsuite Build Clone Core Gpu Interp Ir List Lmads Printf QCheck QCheck_alcotest Symalg Value
