test/test_gpu.ml: Alcotest Array Ast Benchsuite Build Core Float Gpu Interp Ir List Symalg Value
