test/test_bench.ml: Alcotest Array Benchsuite Core Float Ir List
