test/test_frontend.ml: Alcotest Array Benchsuite Core Frontend Gpu Ir List Symalg
