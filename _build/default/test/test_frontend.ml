(* Tests for the surface-language front end: lexing, parsing,
   elaboration into the IR, and the full source-to-optimized-memory
   pipeline (the Fig. 1 example written as text). *)

module P = Symalg.Poly
module Pr = Symalg.Prover
module V = Ir.Value

let parse_ok src =
  try Frontend.Elab.compile_string src
  with
  | Frontend.Parser.Parse_error (m, p) ->
      Alcotest.failf "parse error at %d: %s" p m
  | Frontend.Lexer.Lex_error (m, p) ->
      Alcotest.failf "lex error at %d: %s" p m
  | Frontend.Elab.Elab_error m -> Alcotest.failf "elab error: %s" m

let run p args = Ir.Interp.run p args

let test_scalar_program () =
  let p =
    parse_ok
      {| def poly (x: i64): i64 =
           let y = x * x + 3 * x + 1 in
           y |}
  in
  Alcotest.(check bool) "p(5)=41" true (run p [ V.VInt 5 ] = [ V.VInt 41 ])

let test_map_program () =
  let p =
    parse_ok
      {| def squares (n: i64): [n]i64 =
           map (i < n) { i * i } |}
  in
  match run p [ V.VInt 5 ] with
  | [ V.VArr a ] ->
      Alcotest.(check (list int)) "squares" [ 0; 1; 4; 9; 16 ]
        (Array.to_list (V.int_data a))
  | _ -> Alcotest.fail "bad result"

let test_loop_if () =
  let p =
    parse_ok
      {| def collatzish (n: i64): i64 =
           loop (x = n) for i < 10 do {
             if x % 2 == 0 then x / 2 else 3 * x + 1
           } |}
  in
  (* follow 7 for ten steps by hand: 7,22,11,34,17,52,26,13,40,20,10 *)
  Alcotest.(check bool) "ten steps from 7" true
    (run p [ V.VInt 7 ] = [ V.VInt 10 ])

let test_slices_and_update () =
  let p =
    parse_ok
      {| def shift (n: i64, a: [n]f64): [n]f64 =
           let front = a[0 : n - 1 : 1] in
           let out = a with [1 : n - 1 : 1] = front in
           out |}
  in
  match
    run p
      [ V.VInt 4; V.VArr (V.of_floats [ 4 ] [| 1.; 2.; 3.; 4. |]) ]
  with
  | [ V.VArr a ] ->
      Alcotest.(check (list (float 0.))) "shifted" [ 1.; 1.; 2.; 3. ]
        (Array.to_list (V.float_data a))
  | _ -> Alcotest.fail "bad result"

(* The paper's Fig. 1 (left), as source text, through the whole
   pipeline: the LMAD-slice update short-circuits. *)
let fig1_src =
  {| def diag (n: i64, a: [n*n]f64): [n*n]f64 =
       let x = map (i < n) { a[i*n + i] + a[i] } in
       let a2 = a with [0; (n : n + 1)] = x in
       a2 |}

let test_fig1_pipeline () =
  let ctx = Pr.add_range Pr.empty "n" ~lo:P.one () in
  let p = Frontend.Elab.compile_string ~ctx fig1_src in
  let compiled = Core.Pipeline.compile p in
  Alcotest.(check bool) "short-circuits" true
    (compiled.Core.Pipeline.stats.Core.Shortcircuit.succeeded > 0);
  let nv = 5 in
  let args =
    [
      V.VInt nv;
      V.VArr (V.of_floats [ nv * nv ] (Array.init (nv * nv) float_of_int));
    ]
  in
  let expect = Ir.Interp.run compiled.Core.Pipeline.source args in
  let r = Gpu.Exec.run ~mode:Gpu.Exec.Full compiled.Core.Pipeline.opt args in
  Alcotest.(check bool) "optimized run agrees" true
    (List.for_all2 V.approx_equal expect r.Gpu.Exec.results);
  Alcotest.(check int) "copy elided" 0 r.Gpu.Exec.counters.Gpu.Device.copies

(* Data-dependent indexing parses but must stay unanalyzable. *)
let test_fig1_right_source () =
  let ctx = Pr.add_range Pr.empty "n" ~lo:P.one () in
  let p =
    Frontend.Elab.compile_string ~ctx
      {| def diagjs (n: i64, a: [n*n]f64, js: [n]i64): [n*n]f64 =
           let x = map (i < n) { a[i*n + i] + a[js[i]*n + js[i]] } in
           let a2 = a with [0; (n : n + 1)] = x in
           a2 |}
  in
  let compiled = Core.Pipeline.compile p in
  Alcotest.(check int) "must not short-circuit" 0
    compiled.Core.Pipeline.stats.Core.Shortcircuit.succeeded

let test_builtins () =
  let p =
    parse_ok
      {| def builtins (n: i64, a: [n]f64): f64 =
           let r = reverse(a) in
           let s = reduce_add(concat(a, r)) in
           s |}
  in
  match run p [ V.VInt 3; V.VArr (V.of_floats [ 3 ] [| 1.; 2.; 3. |]) ] with
  | [ V.VFloat s ] -> Alcotest.(check (float 1e-9)) "sum twice" 12.0 s
  | _ -> Alcotest.fail "bad result"

let test_parse_errors () =
  let bad src =
    match Frontend.Elab.compile_string src with
    | exception Frontend.Parser.Parse_error _ -> ()
    | exception Frontend.Lexer.Lex_error _ -> ()
    | exception Frontend.Elab.Elab_error _ -> ()
    | _ -> Alcotest.failf "accepted bad program: %s" src
  in
  bad "def f (x: i64): i64 = let y = in y";
  bad "def f (x: i64): i64 = x +";
  bad "def f (x: i64): i64 = map (i < x) { i";
  bad "def f (x: i64): i64 = y";
  bad "def f (x: @): i64 = x"

let test_comments_and_floats () =
  let p =
    parse_ok
      {| -- a comment
         def f (x: f64): f64 =
           -- another comment
           let y = x * 2.5 in
           y + 0.5 |}
  in
  Alcotest.(check bool) "floats" true
    (run p [ V.VFloat 2.0 ] = [ V.VFloat 5.5 ])

let tests =
  [
    Alcotest.test_case "scalar program" `Quick test_scalar_program;
    Alcotest.test_case "map" `Quick test_map_program;
    Alcotest.test_case "loop + if" `Quick test_loop_if;
    Alcotest.test_case "slices and update" `Quick test_slices_and_update;
    Alcotest.test_case "Fig. 1 from source text" `Quick test_fig1_pipeline;
    Alcotest.test_case "Fig. 1 right from source (negative)" `Quick
      test_fig1_right_source;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and floats" `Quick test_comments_and_floats;
  ]

(* The complete NW benchmark from source text: parses, elaborates,
   short-circuits both wavefront halves, and matches the golden
   sequential DP. *)
let test_nw_from_source () =
  let p = Benchsuite.Nw_source.prog () in
  let compiled = Core.Pipeline.compile p in
  let st = compiled.Core.Pipeline.stats in
  Alcotest.(check bool) "both halves circuit" true
    (st.Core.Shortcircuit.succeeded >= 2);
  let q = 3 and b = 4 in
  let args = Benchsuite.Nw.small_args ~q ~b in
  let expect = Benchsuite.Nw.small_direct ~q ~b in
  (match Ir.Interp.run p args with
  | [ V.VArr out ] ->
      let d = V.float_data out in
      Array.iteri
        (fun i x ->
          if abs_float (x -. expect.(i)) > 1e-9 then
            Alcotest.failf "mismatch at %d: %g vs %g" i x expect.(i))
        d
  | _ -> Alcotest.fail "bad result shape");
  let r = Gpu.Exec.run ~mode:Gpu.Exec.Full compiled.Core.Pipeline.opt args in
  Alcotest.(check int) "opt copy-free" 0 r.Gpu.Exec.counters.Gpu.Device.copies

let tests =
  tests @ [ Alcotest.test_case "NW from source text" `Quick test_nw_from_source ]
