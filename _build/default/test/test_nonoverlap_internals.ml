(* White-box tests of the non-overlap machinery: the sum-of-intervals
   conversion, offset distribution (footnote 27), the per-set dimension
   condition, the splitting heuristic (Fig. 8), the residue rule, and
   the prover's proof deadline. *)

module P = Symalg.Poly
module Pr = Symalg.Prover
open Lmads

let v = P.var
let c = P.const

let nw_ctx () =
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "i" ~lo:(c 0) ~hi:(P.sub (v "q") P.one) () in
  Pr.add_eq ctx "n" (P.add (P.mul (v "q") (v "b")) P.one)

(* ---------------------------------------------------------------- *)
(* Stride bases                                                      *)
(* ---------------------------------------------------------------- *)

let test_merge_bases () =
  let ctx = nw_ctx () in
  (* n*b - b and q*b^2 are the same stride under n = q*b + 1 *)
  let nb_b = P.sub (P.mul (v "n") (v "b")) (v "b") in
  let qb2 = P.mul (v "q") (P.mul (v "b") (v "b")) in
  match Nonoverlap.merge_bases ctx [ nb_b; v "n" ] [ qb2; P.one ] with
  | Some basis ->
      Alcotest.(check int) "three distinct strides" 3 (List.length basis)
  | None -> Alcotest.fail "basis merge failed"

let test_sort_strides_incomparable () =
  (* two free variables cannot be ordered *)
  let ctx = Pr.empty in
  Alcotest.(check bool) "incomparable" true
    (Nonoverlap.sort_strides ctx [ v "x"; v "y" ] = None)

(* ---------------------------------------------------------------- *)
(* Distribution                                                      *)
(* ---------------------------------------------------------------- *)

let test_distribute_nw_offsets () =
  (* Fig. 9: d = (W offset) - (Rvert offset) = n + 1 distributes as
     1*n + 1*1, shifting W's inner intervals to [1..b] *)
  let ctx = nw_ctx () in
  let nb_b = P.sub (P.mul (v "n") (v "b")) (v "b") in
  let mk hi stride = { Nonoverlap.lo = P.zero; hi; stride } in
  let i1 =
    [ mk (v "i") nb_b; mk (P.sub (v "b") P.one) (v "n"); mk (P.sub (v "b") P.one) P.one ]
  in
  let i2 = [ mk (v "i") nb_b; mk (v "b") (v "n"); mk P.zero P.one ] in
  match
    Nonoverlap.distribute ctx (Pr.rewrite ctx (P.add (v "n") P.one)) i1 i2
  with
  | Nonoverlap.Distributed (i1', _) ->
      let ivs = Array.of_list i1' in
      Alcotest.(check bool) "n-interval shifted to [1..b]" true
        (P.equal ivs.(1).Nonoverlap.lo P.one
        && P.equal ivs.(1).Nonoverlap.hi (v "b"));
      Alcotest.(check bool) "1-interval shifted to [1..b]" true
        (P.equal ivs.(2).Nonoverlap.lo P.one)
  | _ -> Alcotest.fail "distribution failed"

let test_residue_rule () =
  (* offsets differing by 1 with all strides even: disjoint by residue *)
  let ctx = Pr.add_range Pr.empty "n" ~lo:(c 1) () in
  let evens = Lmad.make P.zero [ Lmad.dim (v "n") (c 4) ] in
  let shifted = Lmad.make (c 2) [ Lmad.dim (v "n") (c 4) ] in
  let odd = Lmad.make P.one [ Lmad.dim (v "n") (c 4) ] in
  Alcotest.(check bool) "stride-4 sets offset by 1: disjoint" true
    (Nonoverlap.disjoint ctx evens odd);
  Alcotest.(check bool) "stride-4 sets offset by 2: disjoint" true
    (Nonoverlap.disjoint ctx evens shifted);
  (* but offset by 4 overlaps (same residue class) *)
  let four = Lmad.make (c 4) [ Lmad.dim (v "n") (c 4) ] in
  Alcotest.(check bool) "same residue not claimed disjoint" false
    (Nonoverlap.disjoint ctx evens four)

(* ---------------------------------------------------------------- *)
(* Dimension conditions and splitting                                *)
(* ---------------------------------------------------------------- *)

let test_dims_condition () =
  let ctx = nw_ctx () in
  let mk lo hi stride = { Nonoverlap.lo; hi; stride } in
  (* descending stride order: [(nb-b), (n), (1)] with u = b-1 on the
     inner dims: non-overlapping under n = qb+1 *)
  let nb_b = P.sub (P.mul (v "n") (v "b")) (v "b") in
  let good =
    [
      mk P.zero (v "i") nb_b;
      mk P.zero (P.sub (v "b") P.one) (v "n");
      mk P.zero (P.sub (v "b") P.one) P.one;
    ]
  in
  Alcotest.(check bool) "non-overlapping dims" true
    (Nonoverlap.dims_nonoverlapping ctx good);
  (* widen the middle interval to [0..b]: the nb-b stride now overflows *)
  let bad =
    [
      mk P.zero (v "i") nb_b;
      mk P.zero (v "b") (v "n");
      mk P.zero (P.sub (v "b") P.one) P.one;
    ]
  in
  Alcotest.(check bool) "overflow detected" false
    (Nonoverlap.dims_nonoverlapping ctx bad);
  Alcotest.(check (option int)) "at the outermost dim" (Some 2)
    (Nonoverlap.first_overlapping_dim ctx bad)

let test_split_overlapping () =
  let ctx = nw_ctx () in
  let mk lo hi stride = { Nonoverlap.lo; hi; stride } in
  let nb_b = P.sub (P.mul (v "n") (v "b")) (v "b") in
  let bad =
    [
      mk P.zero (v "i") nb_b;
      mk P.zero (v "b") (v "n");
      mk P.zero P.zero P.one;
    ]
  in
  match Nonoverlap.split_overlapping ctx bad with
  | Some [ a; b ] ->
      (* part A: the offending interval loses its last point *)
      let a2 = List.nth a 1 in
      Alcotest.(check bool) "A keeps [0..b-1]" true
        (P.equal a2.Nonoverlap.hi (P.sub (v "b") P.one));
      (* part B: fixed at the last point, contribution redistributed *)
      let b1 = List.nth b 0 and b2 = List.nth b 1 in
      Alcotest.(check bool) "B fixes the dim" true
        (P.is_zero b2.Nonoverlap.hi);
      Alcotest.(check bool) "B shifts the outer dim" true
        (P.equal b1.Nonoverlap.lo P.one)
  | _ -> Alcotest.fail "split failed"

let test_split_depth_zero () =
  (* Fig. 9 needs splitting: with depth 0 the proof must fail (but stay
     sound), with the default depth it succeeds *)
  let ctx = nw_ctx () in
  let n = v "n" and b = v "b" and i = v "i" in
  let nb_b = P.sub (P.mul n b) b in
  let w =
    Lmad.make
      (P.sum [ P.mul i b; n; P.one ])
      [ Lmad.dim (P.add i P.one) nb_b; Lmad.dim b n; Lmad.dim b P.one ]
  in
  let rv =
    Lmad.make (P.mul i b)
      [ Lmad.dim (P.add i P.one) nb_b; Lmad.dim (P.add b P.one) n ]
  in
  Alcotest.(check bool) "depth 0 fails" false
    (Nonoverlap.disjoint ~depth:0 ctx w rv);
  Alcotest.(check bool) "default depth succeeds" true
    (Nonoverlap.disjoint ctx w rv)

(* ---------------------------------------------------------------- *)
(* Prover deadline                                                   *)
(* ---------------------------------------------------------------- *)

let test_deadline_soundness () =
  (* under an absurdly small budget the test gives up (false), never
     claims disjointness it cannot prove *)
  let ctx = nw_ctx () in
  let n = v "n" and b = v "b" and i = v "i" in
  let nb_b = P.sub (P.mul n b) b in
  let w =
    Lmad.make
      (P.sum [ P.mul i b; n; P.one ])
      [ Lmad.dim (P.add i P.one) nb_b; Lmad.dim b n; Lmad.dim b P.one ]
  in
  let rv =
    Lmad.make (P.mul i b)
      [ Lmad.dim (P.add i P.one) nb_b; Lmad.dim (P.add b P.one) n ]
  in
  (* cannot assert failure deterministically (fast machines might finish)
     but the call must return a bool without raising *)
  let r = Nonoverlap.disjoint ~budget:1e-9 ctx w rv in
  Alcotest.(check bool) "returns a boolean" true (r = true || r = false);
  (* and a nested budget does not clobber an outer one *)
  Pr.with_deadline 10.0 (fun () ->
      Alcotest.(check bool) "nested budget still proves" true
        (Nonoverlap.disjoint ctx w rv))

let tests =
  [
    Alcotest.test_case "merge bases under rewrites" `Quick test_merge_bases;
    Alcotest.test_case "incomparable strides" `Quick
      test_sort_strides_incomparable;
    Alcotest.test_case "offset distribution (Fig. 9)" `Quick
      test_distribute_nw_offsets;
    Alcotest.test_case "residue rule" `Quick test_residue_rule;
    Alcotest.test_case "dimension conditions" `Quick test_dims_condition;
    Alcotest.test_case "splitting heuristic (Fig. 8)" `Quick
      test_split_overlapping;
    Alcotest.test_case "Fig. 9 needs splitting" `Quick test_split_depth_zero;
    Alcotest.test_case "proof deadline" `Quick test_deadline_soundness;
  ]
