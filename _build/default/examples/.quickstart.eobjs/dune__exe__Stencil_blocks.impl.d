examples/stencil_blocks.ml: Benchsuite Core Fmt Gpu Ir List Lmads
