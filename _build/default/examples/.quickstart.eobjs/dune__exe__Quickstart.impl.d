examples/quickstart.ml: Array Ast Build Core Gpu Interp Ir List Lmads Printf Symalg Value
