examples/nw_wavefront.mli:
