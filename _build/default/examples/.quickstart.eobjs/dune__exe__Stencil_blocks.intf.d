examples/stencil_blocks.mli:
