examples/nw_wavefront.ml: Array Benchsuite Core Fmt Gpu Ir Lmads Symalg
