examples/quickstart.mli:
