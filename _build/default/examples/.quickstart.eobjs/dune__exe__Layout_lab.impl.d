examples/layout_lab.ml: Fmt Ixfn Lmad Lmads Symalg
