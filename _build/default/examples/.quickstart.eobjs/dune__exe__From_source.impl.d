examples/from_source.ml: Array Core Fmt Frontend Gpu Ir List Symalg
