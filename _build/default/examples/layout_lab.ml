(* Layout lab: index functions as O(1) change-of-layout machinery.

   Reproduces the paper's Fig. 3 step by step - a chain of unflatten,
   transpose, slice, flatten and slice again, none of which touches
   memory - and shows the resulting index functions, including the
   point where a single LMAD no longer suffices and the compiler chains
   a second one (paying unranking divisions at run time).

   Run with: dune exec examples/layout_lab.exe *)

module P = Symalg.Poly
module Pr = Symalg.Prover
open Lmads

let c = P.const

let show name ix =
  Fmt.pr "%-28s %a   (single LMAD: %b)@." name Ixfn.pp ix (Ixfn.is_single ix)

let () =
  let ctx = Pr.empty in
  Fmt.pr "Fig. 3: none of these operations manifests an array in memory@.@.";
  (* let as = 0..63 *)
  let as_ = Ixfn.row_major [ c 64 ] in
  show "as = iota 64" as_;
  (* let bs = unflatten 8 8 as *)
  let bs = Ixfn.reshape ctx [ c 8; c 8 ] as_ in
  show "bs = unflatten 8 8 as" bs;
  (* let cs = transpose bs *)
  let cs = Ixfn.transpose bs in
  show "cs = transpose bs" cs;
  (* let ds = cs[1:3:2, 4:8:1] *)
  let ds =
    Ixfn.slice
      [
        Lmad.Range { start = c 1; len = c 2; step = c 2 };
        Lmad.Range { start = c 4; len = c 4; step = c 1 };
      ]
      cs
  in
  show "ds = cs[1:3:2, 4:8:1]" ds;
  (* let es = (flatten ds)[2:] *)
  let flat = Ixfn.reshape ctx [ c 8 ] ds in
  show "flatten ds" flat;
  let es = Ixfn.slice [ Lmad.Range { start = c 2; len = c 6; step = c 1 } ] flat in
  show "es = (flatten ds)[2:]" es;
  let env _ = 0 in
  Fmt.pr "@.es[5] resolves to flat offset %d of as's memory (paper: 59)@."
    (Ixfn.apply_int env es [ 5 ]);
  (* beyond Fig. 3: symbolic layouts *)
  Fmt.pr "@.Symbolic layouts work the same way:@.";
  let m = Ixfn.row_major [ P.var "n"; P.var "m" ] in
  show "A : [n][m] row-major" m;
  show "transpose A" (Ixfn.transpose m);
  show "reverse (rows) A" (Ixfn.reverse 0 m);
  let col =
    Ixfn.slice
      [
        Lmad.Range { start = P.zero; len = P.var "n"; step = P.one };
        Lmad.Fix (P.var "j");
      ]
      m
  in
  show "A[:, j] (column j)" col;
  (* generalized LMAD slicing: the blocked diagonal of a flat matrix *)
  let nsq = Ixfn.row_major [ P.mul (P.var "n") (P.var "n") ] in
  let diag_blocks =
    Lmad.make P.zero
      [
        Lmad.dim (P.var "q") (P.mul (P.var "b") (P.add (P.var "n") P.one));
        Lmad.dim (P.var "b") (P.var "n");
        Lmad.dim (P.var "b") P.one;
      ]
  in
  (match Ixfn.lmad_slice ctx ~slc:diag_blocks nsq with
  | Some ix -> show "blocked diagonal (LMAD slice)" ix
  | None -> assert false);
  Fmt.pr
    "@.The last one cannot be written with triplet notation at all@.\
     (section III-B): LMAD slices create new dimensions.@."
