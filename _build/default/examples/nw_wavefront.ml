(* NW wavefront walkthrough: the paper's running example end to end.

   Builds the blocked Needleman-Wunsch program (section III-A), runs
   the memory pipeline, shows the Fig. 9 non-overlap obligation being
   discharged, validates the result against the sequential golden
   implementation, and compares the simulated A100 cost of the
   unoptimized and short-circuited binaries.

   Run with: dune exec examples/nw_wavefront.exe *)

module P = Symalg.Poly
module Pr = Symalg.Prover
module Device = Gpu.Device
module Exec = Gpu.Exec

let () =
  (* 1. the static proof of Fig. 9, in isolation *)
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(P.const 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(P.const 2) () in
  let ctx = Pr.add_range ctx "i" ~lo:P.zero ~hi:(P.sub (P.var "q") P.one) () in
  let ctx = Pr.add_eq ctx "n" (P.add (P.mul (P.var "q") (P.var "b")) P.one) in
  let n = P.var "n" and b = P.var "b" and i = P.var "i" in
  let nb_b = P.sub (P.mul n b) b in
  let w =
    Lmads.Lmad.make
      (P.sum [ P.mul i b; n; P.one ])
      [ Lmads.Lmad.dim (P.add i P.one) nb_b;
        Lmads.Lmad.dim b n;
        Lmads.Lmad.dim b P.one ]
  in
  let rvert =
    Lmads.Lmad.make (P.mul i b)
      [ Lmads.Lmad.dim (P.add i P.one) nb_b;
        Lmads.Lmad.dim (P.add b P.one) n ]
  in
  Fmt.pr "W      = %a@." Lmads.Lmad.pp w;
  Fmt.pr "Rvert  = %a@." Lmads.Lmad.pp rvert;
  Fmt.pr "W # Rvert proven disjoint (Fig. 9): %b@.@."
    (Lmads.Nonoverlap.disjoint ctx w rvert);

  (* 2. the full benchmark program through the pipeline *)
  let compiled = Core.Pipeline.compile Benchsuite.Nw.prog in
  let st = compiled.Core.Pipeline.stats in
  Fmt.pr
    "pipeline: %d/%d circuit candidates succeeded, %d variables rebased,@.\
    \          %d LMAD non-overlap checks discharged@.@."
    st.Core.Shortcircuit.succeeded st.Core.Shortcircuit.candidates
    st.Core.Shortcircuit.rebased_vars st.Core.Shortcircuit.overlap_checks;

  (* 3. validation on a small instance against the golden sequential DP *)
  let q = 4 and bsz = 4 in
  let args = Benchsuite.Nw.small_args ~q ~b:bsz in
  let expect = Benchsuite.Nw.small_direct ~q ~b:bsz in
  (match Ir.Interp.run compiled.Core.Pipeline.source args with
  | [ Ir.Value.VArr out ] ->
      let d = Ir.Value.float_data out in
      let ok = Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-9) d expect in
      Fmt.pr "blocked wavefront = sequential DP (q=%d, b=%d): %b@." q bsz ok
  | _ -> assert false);
  let r_unopt = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt args in
  let r_opt = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.opt args in
  Fmt.pr "unopt copies: %d (%.0f B) | opt copies: %d, elided: %d (%.0f B)@.@."
    r_unopt.Exec.counters.Device.copies
    r_unopt.Exec.counters.Device.copy_bytes
    r_opt.Exec.counters.Device.copies r_opt.Exec.counters.Device.copies_elided
    r_opt.Exec.counters.Device.elided_bytes;

  (* 4. simulated cost at a paper-scale size *)
  let big = Benchsuite.Nw.args ~q:512 ~b:16 ~penalty:10.0 ~shell:true in
  let cu = Exec.run ~mode:Exec.Cost_only compiled.Core.Pipeline.unopt big in
  let co = Exec.run ~mode:Exec.Cost_only compiled.Core.Pipeline.opt big in
  let tu = Device.time Device.a100 cu.Exec.counters in
  let to_ = Device.time Device.a100 co.Exec.counters in
  Fmt.pr "simulated A100, 8192x8192: unopt %.2f ms, opt %.2f ms -> impact %.2fx@."
    (tu *. 1e3) (to_ *. 1e3) (tu /. to_)
