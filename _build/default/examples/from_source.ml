(* From source text to optimized memory IR.

   The surface language implements the paper's section III-B claim that
   LMAD slicing exists "in both the source and IR languages": the
   wavefront-ish program below uses an LMAD-slice update written as
   [offset; (count : stride)] and flows through parsing, elaboration,
   memory introduction, and short-circuiting.

   Run with: dune exec examples/from_source.exe *)

module P = Symalg.Poly
module Pr = Symalg.Prover
module V = Ir.Value

let src =
  {| -- add the first row to the diagonal of a flat n*n matrix
     -- (the paper's Fig. 1, left)
     def diag (n: i64, a: [n*n]f64): [n*n]f64 =
       let x = map (i < n) { a[i*n + i] + a[i] } in
       let a2 = a with [0; (n : n + 1)] = x in
       a2 |}

let () =
  print_endline "source:";
  print_endline src;
  let ctx = Pr.add_range Pr.empty "n" ~lo:P.one () in
  let prog = Frontend.Elab.compile_string ~ctx src in
  print_endline "\nelaborated core IR:";
  print_endline (Ir.Pretty.prog_to_string prog);
  let compiled = Core.Pipeline.compile prog in
  Fmt.pr "@.optimized memory IR (note x's memory annotation):@.";
  print_endline (Ir.Pretty.prog_to_string compiled.Core.Pipeline.opt);
  let st = compiled.Core.Pipeline.stats in
  Fmt.pr "@.short-circuiting: %d/%d candidates rebased@."
    st.Core.Shortcircuit.succeeded st.Core.Shortcircuit.candidates;
  (* and it computes the right thing *)
  let n = 5 in
  let args =
    [
      V.VInt n;
      V.VArr (V.of_floats [ n * n ] (Array.init (n * n) float_of_int));
    ]
  in
  let expect = Ir.Interp.run prog args in
  let r = Gpu.Exec.run ~mode:Gpu.Exec.Full compiled.Core.Pipeline.opt args in
  Fmt.pr "optimized executor agrees with the interpreter: %b (0 copies: %b)@."
    (List.for_all2 V.approx_equal expect r.Gpu.Exec.results)
    (r.Gpu.Exec.counters.Gpu.Device.copies = 0)
