(* Stencil boundary decomposition: the Hotspot pattern (Fig. 10b).

   A timestep computes the top row, interior and bottom row of the new
   grid as three separate parallel kernels and concatenates them; the
   concat is a circuit point (section V, Fig. 4a) whose operands all
   short-circuit into the result, so the concatenation becomes free.

   This example shows the memory-annotated IR before and after the
   pass: watch the three part arrays move from their own blocks into
   the result block at their row offsets.

   Run with: dune exec examples/stencil_blocks.exe *)

module Device = Gpu.Device
module Exec = Gpu.Exec

(* Extract the concat statement's operand annotations for display. *)
let concat_annotations (p : Ir.Ast.prog) =
  List.filter_map
    (fun (s : Ir.Ast.stm) ->
      match s.Ir.Ast.exp with
      | Ir.Ast.EConcat ops -> Some ops
      | _ -> None)
    (Ir.Ast.all_stms_block p.Ir.Ast.body)
  |> List.concat

let annotation_of (p : Ir.Ast.prog) v =
  let found = ref None in
  List.iter
    (fun (s : Ir.Ast.stm) ->
      List.iter
        (fun (pe : Ir.Ast.pat_elem) ->
          if pe.Ir.Ast.pv = v then found := pe.Ir.Ast.pmem)
        s.Ir.Ast.pat)
    (Ir.Ast.all_stms_block p.Ir.Ast.body);
  !found

let show_parts title p =
  Fmt.pr "%s:@." title;
  List.iter
    (fun v ->
      match annotation_of p v with
      | Some m ->
          Fmt.pr "  %-8s @@ %-14s -> %a@." v m.Ir.Ast.block Lmads.Ixfn.pp
            m.Ir.Ast.ixfn
      | None -> Fmt.pr "  %-8s (no annotation)@." v)
    (concat_annotations p)

let () =
  let compiled = Core.Pipeline.compile Benchsuite.Hotspot.prog in
  show_parts "before short-circuiting (unopt)" compiled.Core.Pipeline.unopt;
  Fmt.pr "@.";
  show_parts "after short-circuiting (opt)" compiled.Core.Pipeline.opt;
  Fmt.pr
    "@.All three parts now live in the concat result's block at their@.\
     row offsets; the executor skips the copies:@.@.";
  let args = Benchsuite.Hotspot.small_args ~n:32 ~steps:4 in
  let expect = Ir.Interp.run compiled.Core.Pipeline.source args in
  let ru = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt args in
  let ro = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.opt args in
  assert (List.for_all2 Ir.Value.approx_equal expect ru.Exec.results);
  assert (List.for_all2 Ir.Value.approx_equal expect ro.Exec.results);
  Fmt.pr "n=32, 4 steps:  unopt %d copies (%.0f B)   opt %d copies, %d elided@."
    ru.Exec.counters.Device.copies ru.Exec.counters.Device.copy_bytes
    ro.Exec.counters.Device.copies ro.Exec.counters.Device.copies_elided;
  let tu = Device.time Device.a100 ru.Exec.counters in
  let to_ = Device.time Device.a100 ro.Exec.counters in
  Fmt.pr "simulated A100 time: %.3f us -> %.3f us (%.2fx)@." (tu *. 1e6)
    (to_ *. 1e6) (tu /. to_)
