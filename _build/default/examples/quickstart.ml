(* Quickstart: the paper's Fig. 1 in twenty lines.

   Left side: add to each diagonal element of an n x n matrix the
   corresponding element of the first row.  The functional program
   needs a map producing a fresh array X plus an update A[diag] = X;
   short-circuiting proves X can be computed directly into the
   diagonal, so the update costs nothing.

   Right side: add to each diagonal element the diagonal element at
   position js[i] - data-dependent reads.  The analysis must NOT fire
   (a thread might read a location another thread writes), and indeed
   it conservatively keeps the copy.

   Run with: dune exec examples/quickstart.exe *)

open Ir
open Ast
module P = Symalg.Poly
module B = Build

let n = P.var "n"
let diag_slice = SLmad (Lmads.Lmad.make P.zero [ Lmads.Lmad.dim n (P.add n P.one) ])

(* let X = map (\i -> A[i*(n+1)] + A[i]) (iota n)
   let A[0 : n : n+1] = X *)
let fig1_left =
  B.prog "fig1_left"
    ~ctx:(Symalg.Prover.add_range Symalg.Prover.empty "n" ~lo:P.one ())
    ~params:[ pat_elem "n" i64; pat_elem "a" (arr F64 [ P.mul n n ]) ]
    ~ret:[ arr F64 [ P.mul n n ] ]
    (fun b ->
      let x =
        B.mapnest b "x" [ ("i", n) ] (fun bb ->
            let i = P.var "i" in
            let d = B.index bb "a" [ P.mul i (P.add n P.one) ] in
            let r = B.index bb "a" [ i ] in
            [ B.fadd bb d r ])
      in
      [ Var (B.bind b "a2" (EUpdate { dst = "a"; slc = diag_slice; src = SrcArr x })) ])

(* let X = map (\i -> A[i*(n+1)] + A[js[i]*(n+1)]) (iota n)
   let A[0 : n : n+1] = X      -- must NOT short-circuit *)
let fig1_right =
  B.prog "fig1_right"
    ~ctx:(Symalg.Prover.add_range Symalg.Prover.empty "n" ~lo:P.one ())
    ~params:
      [
        pat_elem "n" i64;
        pat_elem "a" (arr F64 [ P.mul n n ]);
        pat_elem "js" (arr I64 [ n ]);
      ]
    ~ret:[ arr F64 [ P.mul n n ] ]
    (fun b ->
      let x =
        B.mapnest b "x" [ ("i", n) ] (fun bb ->
            let i = P.var "i" in
            let d = B.index bb "a" [ P.mul i (P.add n P.one) ] in
            let j = B.bind bb "j" (EIndex ("js", [ i ])) in
            let other =
              B.index bb "a" [ P.mul (P.var j) (P.add n P.one) ]
            in
            [ B.fadd bb d other ])
      in
      [ Var (B.bind b "a2" (EUpdate { dst = "a"; slc = diag_slice; src = SrcArr x })) ])

let show name prog expect_fires =
  let c = Core.Pipeline.compile prog in
  let st = c.Core.Pipeline.stats in
  let fired = st.Core.Shortcircuit.succeeded > 0 in
  Printf.printf "%-11s short-circuited: %-5b (expected %b)  %s\n" name fired
    expect_fires
    (if fired = expect_fires then "OK" else "UNEXPECTED!");
  (* run both variants on a concrete input and compare traffic *)
  let nv = 8 in
  let a0 =
    Value.VArr (Value.of_floats [ nv * nv ] (Array.init (nv * nv) float_of_int))
  in
  let js =
    Value.VArr (Value.of_ints [ nv ] (Array.init nv (fun i -> (i + 3) mod nv)))
  in
  let args =
    if List.length prog.params = 3 then [ Value.VInt nv; a0; js ]
    else [ Value.VInt nv; a0 ]
  in
  let expect = Interp.run c.Core.Pipeline.source args in
  let ru = Gpu.Exec.run ~mode:Gpu.Exec.Full c.Core.Pipeline.unopt args in
  let ro = Gpu.Exec.run ~mode:Gpu.Exec.Full c.Core.Pipeline.opt args in
  assert (List.for_all2 Value.approx_equal expect ru.Gpu.Exec.results);
  assert (List.for_all2 Value.approx_equal expect ro.Gpu.Exec.results);
  Printf.printf
    "            unopt: %d copies (%.0f B)   opt: %d copies (%.0f B), %d \
     elided\n"
    ru.Gpu.Exec.counters.Gpu.Device.copies
    ru.Gpu.Exec.counters.Gpu.Device.copy_bytes
    ro.Gpu.Exec.counters.Gpu.Device.copies
    ro.Gpu.Exec.counters.Gpu.Device.copy_bytes
    ro.Gpu.Exec.counters.Gpu.Device.copies_elided

let () =
  print_endline "Fig. 1: diagonal updates (paper, section I)";
  show "left " fig1_left true;
  show "right" fig1_right false;
  print_endline "\nBoth versions compute correct results either way;";
  print_endline
    "short-circuiting only changes where the intermediate array lives."
