(* The NW benchmark written in the *surface language* - the complete
   paper pipeline from text: LMAD slices for the anti-diagonal bars and
   blocks (section III-B), per-block computation with sequential loops,
   and the in-place wavefront update that short-circuiting recovers.

   The program is semantically identical to [Nw.prog] (same score hash,
   same blocking); the test suite checks it against the same golden
   sequential implementation and that the same circuit points fire. *)

let source =
  {|
-- Needleman-Wunsch, blocked wavefront (paper, section III).
-- n = q*b + 1; the flat matrix has its first row/column pre-initialized.
def nw (q: i64, b: i64, n: i64, penalty: f64, a0: [n*n]f64): [n*n]f64 =
  let h1 = loop (am = a0) for i < q do {
    -- first half: anti-diagonal i has i+1 blocks
    let woff = i*b + n + 1 in
    let rv = am[woff - n - 1; (i + 1 : n*b - b), (b + 1 : n)] in
    let rh = am[woff - n; (i + 1 : n*b - b), (b : 1)] in
    let x = map (k < i + 1) {
      let blk0 = scratch(b, b) in
      loop (blkr = blk0) for r < b do {
        loop (blkc = blkr) for c < b do {
          let up      = if r == 0 then rh[k, c] else blkc[r - 1, c] in
          let left    = if c == 0 then rv[k, r + 1] else blkc[r, c - 1] in
          let upleft  = if r == 0
                        then (if c == 0 then rv[k, 0] else rh[k, c - 1])
                        else (if c == 0 then rv[k, r]
                              else blkc[r - 1, c - 1]) in
          let flat  = woff + k*(n*b - b) + r*n + c in
          let score = f64((flat * 31 + 7) % 19) - 9.0 in
          let cell  = max(upleft + score,
                          max(up - penalty, left - penalty)) in
          blkc with [r, c] = cell
        }
      }
    } in
    am with [woff; (i + 1 : n*b - b), (b : n), (b : 1)] = x
  } in
  loop (am = h1) for s < q - 1 do {
    -- second half: anti-diagonal q+s has q-1-s blocks
    let m = q - 1 - s in
    let woff = (s + 1)*b*n + (q - 1)*b + n + 1 in
    let rv = am[woff - n - 1; (m : n*b - b), (b + 1 : n)] in
    let rh = am[woff - n; (m : n*b - b), (b : 1)] in
    let x = map (k < m) {
      let blk0 = scratch(b, b) in
      loop (blkr = blk0) for r < b do {
        loop (blkc = blkr) for c < b do {
          let up      = if r == 0 then rh[k, c] else blkc[r - 1, c] in
          let left    = if c == 0 then rv[k, r + 1] else blkc[r, c - 1] in
          let upleft  = if r == 0
                        then (if c == 0 then rv[k, 0] else rh[k, c - 1])
                        else (if c == 0 then rv[k, r]
                              else blkc[r - 1, c - 1]) in
          let flat  = woff + k*(n*b - b) + r*n + c in
          let score = f64((flat * 31 + 7) % 19) - 9.0 in
          let cell  = max(upleft + score,
                          max(up - penalty, left - penalty)) in
          blkc with [r, c] = cell
        }
      }
    } in
    am with [woff; (m : n*b - b), (b : n), (b : 1)] = x
  }
|}

(* Same size assumptions as the builder version. *)
let prog () : Ir.Ast.prog = Frontend.Elab.compile_string ~ctx:Nw.ctx0 source
