lib/benchsuite/nw.ml: Array Float Gpu Ir List Lmads Runner Symalg
