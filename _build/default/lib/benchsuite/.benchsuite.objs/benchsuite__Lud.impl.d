lib/benchsuite/lud.ml: Array Gpu Ir List Lmads Runner Symalg
