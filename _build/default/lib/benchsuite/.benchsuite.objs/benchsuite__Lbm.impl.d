lib/benchsuite/lbm.ml: Array Gpu Ir List Runner Symalg
