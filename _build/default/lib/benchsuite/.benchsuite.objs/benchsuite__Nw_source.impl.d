lib/benchsuite/nw_source.ml: Frontend Ir Nw
