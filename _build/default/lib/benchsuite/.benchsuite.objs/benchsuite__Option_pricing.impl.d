lib/benchsuite/option_pricing.ml: Float Gpu Ir List Runner Symalg
