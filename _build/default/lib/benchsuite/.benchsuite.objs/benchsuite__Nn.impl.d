lib/benchsuite/nn.ml: Array Float Gpu Ir List Runner Symalg
