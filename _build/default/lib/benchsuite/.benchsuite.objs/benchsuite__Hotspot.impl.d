lib/benchsuite/hotspot.ml: Array Gpu Ir List Runner Symalg
