lib/benchsuite/table.ml: Float Fmt List Printf String
