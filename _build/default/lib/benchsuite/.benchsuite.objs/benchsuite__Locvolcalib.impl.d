lib/benchsuite/locvolcalib.ml: Array Gpu Ir List Runner Symalg
