lib/benchsuite/runner.ml: Core Gpu Hashtbl Ir List Table
