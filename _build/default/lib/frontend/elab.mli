(** Elaboration of the surface language into the core IR.

    Integer expressions over in-scope [i64] variables, constants and
    [+ - *] become index polynomials - the form the LMAD machinery can
    analyze; anything else (divisions, data-loaded values) is bound as
    an ordinary scalar whose opaque name then blocks the analysis,
    which is exactly the conservative behaviour of Fig. 1 (right). *)

exception Elab_error of string

val elab_prog : ?ctx:Symalg.Prover.t -> Parser.sprog -> Ir.Ast.prog
(** Elaborate a parsed program into a checked IR program; [ctx] carries
    size assumptions for the short-circuiting analysis.
    @raise Elab_error on scope/shape violations. *)

val compile_string : ?ctx:Symalg.Prover.t -> string -> Ir.Ast.prog
(** Parse ({!Parser.parse}) then elaborate. *)
