(* Lexer for the surface language (section II-C / III-B).

   The token set covers the informally specified language of the paper:
   lets, maps (mapnests), loops, ifs, slicing (triplet and LMAD forms),
   in-place updates with [with], and the usual scalar operators. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | DEF
  | LET
  | IN
  | IF
  | THEN
  | ELSE
  | LOOP
  | FOR
  | DO
  | MAP
  | WITH
  | TRUE
  | FALSE
  | I64
  | F64
  | BOOL
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COMMA
  | COLON
  | SEMI
  | EQ
  | EQEQ
  | LT
  | LE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | ANDAND
  | OROR
  | BANG
  | ARROW
  | EOF

exception Lex_error of string * int (* message, position *)

let keyword = function
  | "def" -> DEF
  | "let" -> LET
  | "in" -> IN
  | "if" -> IF
  | "then" -> THEN
  | "else" -> ELSE
  | "loop" -> LOOP
  | "for" -> FOR
  | "do" -> DO
  | "map" -> MAP
  | "with" -> WITH
  | "true" -> TRUE
  | "false" -> FALSE
  | "i64" -> I64
  | "f64" -> F64
  | "bool" -> BOOL
  | s -> IDENT s

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* Tokenize a whole string; comments run from "--" to end of line. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let emit t pos = toks := (t, pos) :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      if
        !j < n && src.[!j] = '.'
        && !j + 1 < n
        && is_digit src.[!j + 1]
      then begin
        incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        emit (FLOAT (float_of_string (String.sub src !i (!j - !i)))) pos
      end
      else emit (INT (int_of_string (String.sub src !i (!j - !i)))) pos;
      i := !j
    end
    else if is_alpha c then begin
      let j = ref !i in
      while !j < n && (is_alpha src.[!j] || is_digit src.[!j]) do
        incr j
      done;
      emit (keyword (String.sub src !i (!j - !i))) pos;
      i := !j
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "==" ->
          emit EQEQ pos;
          i := !i + 2
      | Some "<=" ->
          emit LE pos;
          i := !i + 2
      | Some "&&" ->
          emit ANDAND pos;
          i := !i + 2
      | Some "||" ->
          emit OROR pos;
          i := !i + 2
      | Some "->" ->
          emit ARROW pos;
          i := !i + 2
      | _ -> (
          (match c with
          | '(' -> emit LPAREN pos
          | ')' -> emit RPAREN pos
          | '[' -> emit LBRACKET pos
          | ']' -> emit RBRACKET pos
          | '{' -> emit LBRACE pos
          | '}' -> emit RBRACE pos
          | ',' -> emit COMMA pos
          | ':' -> emit COLON pos
          | ';' -> emit SEMI pos
          | '=' -> emit EQ pos
          | '<' -> emit LT pos
          | '+' -> emit PLUS pos
          | '-' -> emit MINUS pos
          | '*' -> emit STAR pos
          | '/' -> emit SLASH pos
          | '%' -> emit PERCENT pos
          | '!' -> emit BANG pos
          | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, pos)));
          incr i)
    end
  done;
  emit EOF n;
  List.rev !toks

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | DEF -> "def"
  | LET -> "let"
  | IN -> "in"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | LOOP -> "loop"
  | FOR -> "for"
  | DO -> "do"
  | MAP -> "map"
  | WITH -> "with"
  | TRUE -> "true"
  | FALSE -> "false"
  | I64 -> "i64"
  | F64 -> "f64"
  | BOOL -> "bool"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | COLON -> ":"
  | SEMI -> ";"
  | EQ -> "="
  | EQEQ -> "=="
  | LT -> "<"
  | LE -> "<="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | ARROW -> "->"
  | EOF -> "end of input"
