lib/frontend/elab.mli: Ir Parser Symalg
