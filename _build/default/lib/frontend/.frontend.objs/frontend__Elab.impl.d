lib/frontend/elab.ml: Fmt Ir List Lmads Map Option Parser String Symalg
