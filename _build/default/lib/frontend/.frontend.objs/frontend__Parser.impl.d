lib/frontend/parser.ml: Lexer List Printf
