(* Recursive-descent parser for the surface language.

   The concrete syntax mirrors the paper's informal notation:

     def diag (n: i64, a: [n*n]f64): [n*n]f64 =
       let x = map (i < n) { a[i*n + i] + a[i] } in
       let a2 = a with [0; (n : n + 1)] = x in    -- LMAD slice update
       a2

   Slices come in the two forms of section III-B:
   - triplet, one component per dimension: [start : count : stride, ...]
     (a bare expression fixes the dimension);
   - LMAD, over the flat index space: [offset; (n1 : s1), ..., (nq : sq)].
*)

open Lexer

type sexpr =
  | SVar of string
  | SInt of int
  | SFloat of float
  | SBool of bool
  | SBin of string * sexpr * sexpr
  | SUn of string * sexpr
  | SCall of string * sexpr list
  | SIndex of sexpr * sslice
      (* a[...]: a fully-fixed triplet is an element read, anything else
         (ranges, LMAD form) is an O(1) slice *)
  | SLet of string * sexpr * sexpr
  | SMap of (string * sexpr) list * sexpr
  | SLoop of {
      acc : string;
      init : sexpr;
      var : string;
      bound : sexpr;
      body : sexpr;
    }
  | SIf of sexpr * sexpr * sexpr
  | SWith of sexpr * sslice * sexpr (* a with [slice] = e *)

and sdim =
  | DFix of sexpr
  | DRange of sexpr * sexpr * sexpr option (* start : count (: stride) *)

and sslice = Striplet of sdim list | Slmad of sexpr * (sexpr * sexpr) list

type stype =
  | TyI64
  | TyF64
  | TyBool
  | TyArr of sexpr list * stype (* dims, element type *)

type sprog = {
  pname : string;
  pparams : (string * stype) list;
  pret : stype;
  pbody : sexpr;
}

exception Parse_error of string * int

(* ---------------------------------------------------------------- *)
(* Token-stream state                                                *)
(* ---------------------------------------------------------------- *)

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> EOF
let pos st = match st.toks with (_, p) :: _ -> p | [] -> -1

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let expect st t =
  if peek st = t then advance st
  else
    raise
      (Parse_error
         ( Printf.sprintf "expected %s but found %s" (token_name t)
             (token_name (peek st)),
           pos st ))

let ident st =
  match peek st with
  | IDENT s ->
      advance st;
      s
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected an identifier, found %s" (token_name t), pos st))

(* ---------------------------------------------------------------- *)
(* Types                                                             *)
(* ---------------------------------------------------------------- *)

let rec parse_type st =
  match peek st with
  | I64 ->
      advance st;
      TyI64
  | F64 ->
      advance st;
      TyF64
  | BOOL ->
      advance st;
      TyBool
  | LBRACKET ->
      let rec dims acc =
        if peek st = LBRACKET then begin
          advance st;
          let d = parse_expr st in
          expect st RBRACKET;
          dims (d :: acc)
        end
        else List.rev acc
      in
      let ds = dims [] in
      let elt = parse_type st in
      (match elt with
      | TyArr _ ->
          raise (Parse_error ("nested array type syntax", pos st))
      | _ -> ());
      TyArr (ds, elt)
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "expected a type, found %s" (token_name t), pos st))

(* ---------------------------------------------------------------- *)
(* Expressions (precedence climbing)                                 *)
(* ---------------------------------------------------------------- *)

and parse_expr st : sexpr =
  match peek st with
  | LET ->
      advance st;
      let name = ident st in
      expect st EQ;
      let rhs = parse_expr st in
      expect st IN;
      let body = parse_expr st in
      SLet (name, rhs, body)
  | IF ->
      advance st;
      let c = parse_expr st in
      expect st THEN;
      let t = parse_expr st in
      expect st ELSE;
      let e = parse_expr st in
      SIf (c, t, e)
  | MAP ->
      advance st;
      expect st LPAREN;
      let rec nest acc =
        let v = ident st in
        expect st LT;
        let bound = parse_expr st in
        if peek st = COMMA then begin
          advance st;
          nest ((v, bound) :: acc)
        end
        else List.rev ((v, bound) :: acc)
      in
      let ns = nest [] in
      expect st RPAREN;
      expect st LBRACE;
      let body = parse_expr st in
      expect st RBRACE;
      SMap (ns, body)
  | LOOP ->
      advance st;
      expect st LPAREN;
      let acc = ident st in
      expect st EQ;
      let init = parse_expr st in
      expect st RPAREN;
      expect st FOR;
      let var = ident st in
      expect st LT;
      let bound = parse_expr st in
      expect st DO;
      expect st LBRACE;
      let body = parse_expr st in
      expect st RBRACE;
      SLoop { acc; init; var; bound; body }
  | _ -> parse_with st

(* a with [slice] = e *)
and parse_with st =
  let lhs = parse_or st in
  if peek st = WITH then begin
    advance st;
    expect st LBRACKET;
    let slc = parse_slice st in
    expect st RBRACKET;
    expect st EQ;
    let rhs = parse_expr st in
    SWith (lhs, slc, rhs)
  end
  else lhs

and parse_or st =
  let rec go acc =
    if peek st = OROR then begin
      advance st;
      go (SBin ("||", acc, parse_and st))
    end
    else acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    if peek st = ANDAND then begin
      advance st;
      go (SBin ("&&", acc, parse_cmp st))
    end
    else acc
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  match peek st with
  | EQEQ ->
      advance st;
      SBin ("==", lhs, parse_add st)
  | LT ->
      advance st;
      SBin ("<", lhs, parse_add st)
  | LE ->
      advance st;
      SBin ("<=", lhs, parse_add st)
  | _ -> lhs

and parse_add st =
  let rec go acc =
    match peek st with
    | PLUS ->
        advance st;
        go (SBin ("+", acc, parse_mul st))
    | MINUS ->
        advance st;
        go (SBin ("-", acc, parse_mul st))
    | _ -> acc
  in
  go (parse_mul st)

and parse_mul st =
  let rec go acc =
    match peek st with
    | STAR ->
        advance st;
        go (SBin ("*", acc, parse_unary st))
    | SLASH ->
        advance st;
        go (SBin ("/", acc, parse_unary st))
    | PERCENT ->
        advance st;
        go (SBin ("%", acc, parse_unary st))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | MINUS ->
      advance st;
      SUn ("-", parse_unary st)
  | BANG ->
      advance st;
      SUn ("!", parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go acc =
    if peek st = LBRACKET then begin
      advance st;
      let slc = parse_slice st in
      expect st RBRACKET;
      go (SIndex (acc, slc))
    end
    else acc
  in
  go (parse_atom st)

and parse_dim st =
  let e = parse_add st in
  if peek st = COLON then begin
    advance st;
    let count = parse_add st in
    if peek st = COLON then begin
      advance st;
      let stride = parse_add st in
      DRange (e, count, Some stride)
    end
    else DRange (e, count, None)
  end
  else DFix e

(* slice := LMAD ( off ; (n : s), ... ) or triplet dims *)
and parse_slice st =
  let first = parse_add st in
  if peek st = SEMI then begin
    advance st;
    let rec dims acc =
      expect st LPAREN;
      let n = parse_add st in
      expect st COLON;
      let s = parse_add st in
      expect st RPAREN;
      if peek st = COMMA then begin
        advance st;
        dims ((n, s) :: acc)
      end
      else List.rev ((n, s) :: acc)
    in
    Slmad (first, dims [])
  end
  else if peek st = COLON then begin
    advance st;
    let count = parse_add st in
    let stride =
      if peek st = COLON then begin
        advance st;
        Some (parse_add st)
      end
      else None
    in
    let rec rest acc =
      if peek st = COMMA then begin
        advance st;
        rest (parse_dim st :: acc)
      end
      else List.rev acc
    in
    Striplet (DRange (first, count, stride) :: rest [])
  end
  else begin
    (* a list of fixed/sliced dimensions starting with a fix *)
    let rec rest acc =
      if peek st = COMMA then begin
        advance st;
        rest (parse_dim st :: acc)
      end
      else List.rev acc
    in
    Striplet (DFix first :: rest [])
  end

and parse_atom st =
  match peek st with
  | INT i ->
      advance st;
      SInt i
  | FLOAT f ->
      advance st;
      SFloat f
  | TRUE ->
      advance st;
      SBool true
  | FALSE ->
      advance st;
      SBool false
  | F64 ->
      (* f64(e): conversion *)
      advance st;
      expect st LPAREN;
      let e = parse_expr st in
      expect st RPAREN;
      SUn ("f64", e)
  | I64 ->
      advance st;
      expect st LPAREN;
      let e = parse_expr st in
      expect st RPAREN;
      SUn ("i64", e)
  | IDENT name ->
      advance st;
      if peek st = LPAREN then begin
        advance st;
        let rec args acc =
          if peek st = RPAREN then List.rev acc
          else
            let a = parse_expr st in
            if peek st = COMMA then begin
              advance st;
              args (a :: acc)
            end
            else List.rev (a :: acc)
        in
        let a = args [] in
        expect st RPAREN;
        SCall (name, a)
      end
      else SVar name
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN;
      e
  | t ->
      raise
        (Parse_error
           (Printf.sprintf "unexpected %s in expression" (token_name t), pos st))

(* ---------------------------------------------------------------- *)
(* Programs                                                          *)
(* ---------------------------------------------------------------- *)

let parse_program st : sprog =
  expect st DEF;
  let pname = ident st in
  expect st LPAREN;
  let rec params acc =
    if peek st = RPAREN then List.rev acc
    else
      let v = ident st in
      expect st COLON;
      let t = parse_type st in
      if peek st = COMMA then begin
        advance st;
        params ((v, t) :: acc)
      end
      else List.rev ((v, t) :: acc)
  in
  let pparams = params [] in
  expect st RPAREN;
  expect st COLON;
  let pret = parse_type st in
  expect st EQ;
  let pbody = parse_expr st in
  expect st EOF;
  { pname; pparams; pret; pbody }

let parse (src : string) : sprog =
  parse_program { toks = tokenize src }
