(* Elaboration of the surface language into the core IR.

   The interesting part is the treatment of *index expressions*: any
   integer expression built from in-scope i64 variables, constants and
   + - * elaborates to a polynomial (the IR's index language), which is
   what lets the compiler's LMAD machinery see through the program's
   indexing.  Anything else - divisions, data-loaded values - falls
   back to an ordinary scalar binding whose *name* then appears as an
   opaque polynomial variable, exactly the conservative treatment that
   makes the Fig. 1-right example unanalyzable. *)

open Parser
open Ir.Ast
module P = Symalg.Poly
module B = Ir.Build
module Lmad = Lmads.Lmad

exception Elab_error of string

let err fmt = Fmt.kstr (fun s -> raise (Elab_error s)) fmt

(* Surface names are made unique per binding; [env] maps them to the
   generated IR names, and separately to inlined index polynomials:
   a [let] whose right-hand side is an index expression is not bound as
   an opaque scalar but carried symbolically, so downstream slices stay
   fully analyzable (e.g. NW's [woff]). *)
module SM = Map.Make (String)

type env = { names : string SM.t; polys : P.t SM.t }

let env0_of names = { names; polys = SM.empty }

let lookup env v =
  match SM.find_opt v env.names with
  | Some x -> x
  | None -> err "unbound %s" v

let is_i64 b name =
  match B.typ_of b name with TScalar I64 -> true | _ -> false

(* ---------------------------------------------------------------- *)
(* Index polynomials                                                 *)
(* ---------------------------------------------------------------- *)

(* Try to read a surface expression as a polynomial over in-scope i64
   variables. *)
let rec to_poly b env (e : sexpr) : P.t option =
  match e with
  | SInt i -> Some (P.const i)
  | SVar v -> (
      match SM.find_opt v env.polys with
      | Some p -> Some p
      | None ->
          let v' = lookup env v in
          if is_i64 b v' then Some (P.var v') else None)
  | SBin ("+", a, c) -> map2 P.add (to_poly b env a) (to_poly b env c)
  | SBin ("-", a, c) -> map2 P.sub (to_poly b env a) (to_poly b env c)
  | SBin ("*", a, c) -> map2 P.mul (to_poly b env a) (to_poly b env c)
  | SUn ("-", a) -> Option.map P.neg (to_poly b env a)
  | _ -> None

and map2 f a b =
  match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

(* ---------------------------------------------------------------- *)
(* Expressions                                                       *)
(* ---------------------------------------------------------------- *)

let binop_of = function
  | "+" -> Add
  | "-" -> Sub
  | "*" -> Mul
  | "/" -> Div
  | "%" -> Rem
  | "&&" -> And
  | "||" -> Or
  | op -> err "unknown binary operator %s" op

(* Elaborate to an atom, emitting statements into the builder. *)
let rec elab b env (e : sexpr) : atom =
  match e with
  | SInt i -> Int i
  | SFloat f -> Float f
  | SBool v -> Bool v
  | SVar v -> (
      match SM.find_opt v env.polys with
      | Some p -> B.idx b p (* materialize an inlined index let *)
      | None -> Var (lookup env v))
  | SBin (("==" | "<" | "<=") as op, a, c) ->
      let cmp = match op with "==" -> CEq | "<" -> CLt | _ -> CLe in
      B.cmp b cmp (elab b env a) (elab b env c)
  | SBin (op, a, c) -> B.binop b (binop_of op) (elab b env a) (elab b env c)
  | SUn ("-", a) -> B.unop b Neg (elab b env a)
  | SUn ("!", a) -> B.unop b Not (elab b env a)
  | SUn ("f64", a) -> B.unop b ToF64 (elab b env a)
  | SUn ("i64", a) -> B.unop b ToI64 (elab b env a)
  | SUn (op, _) -> err "unknown unary operator %s" op
  | SCall (f, args) -> elab_call b env f args
  | SIndex (arr, dims) -> elab_index b env arr dims
  | SLet (name, rhs, body) -> (
      (* index-expression lets are inlined symbolically *)
      match to_poly b env rhs with
      | Some p -> elab b { env with polys = SM.add name p env.polys } body
      | None ->
          let a = elab b env rhs in
          let env' =
            match a with
            | Var v -> { env with names = SM.add name v env.names }
            | a ->
                let v = B.bind b name (EAtom a) in
                { env with names = SM.add name v env.names }
          in
          elab b env' body)
  | SMap (nest, body) ->
      let nest' =
        List.map
          (fun (v, bound) -> (Ir.Names.fresh v, elab_idx b env bound))
          nest
      in
      let env' =
        List.fold_left2
          (fun env (v, _) (v', _) ->
            { env with names = SM.add v v' env.names })
          env nest nest'
      in
      Var
        (B.mapnest b "map" nest' (fun bb -> [ elab bb env' body ]))
  | SLoop { acc; init; var; bound; body } ->
      let init' = elab b env init in
      let acc' = Ir.Names.fresh acc and var' = Ir.Names.fresh var in
      let bound' = elab_idx b env bound in
      let acc_t =
        match init' with
        | Var v -> B.typ_of b v
        | Int _ -> TScalar I64
        | Float _ -> TScalar F64
        | Bool _ -> TScalar Bool
      in
      let env' =
        {
          env with
          names = SM.add acc acc' (SM.add var var' env.names);
        }
      in
      let rs =
        B.loop b "loop"
          [ (acc', acc_t, init') ]
          ~var:var' ~bound:bound'
          (fun bb -> [ elab bb env' body ])
      in
      Var (List.hd rs)
  | SIf (c, t, e) ->
      let c' = elab b env c in
      let rs =
        B.if_ b "if" c'
          (fun bb -> [ elab bb env t ])
          (fun bb -> [ elab bb env e ])
      in
      Var (List.hd rs)
  | SWith (lhs, slc, rhs) ->
      let dst =
        match elab b env lhs with
        | Var v -> v
        | _ -> err "update destination must be an array variable"
      in
      let slc' = elab_slice b env slc in
      let src =
        match elab b env rhs with
        | Var v when is_array_typ (B.typ_of b v) -> SrcArr v
        | a -> SrcScalar a
      in
      Var (B.bind b "upd" (EUpdate { dst; slc = slc'; src }))

(* An index expression: a polynomial when possible, otherwise the value
   is bound as a scalar and its (opaque) name used. *)
and elab_idx b env (e : sexpr) : idx =
  match to_poly b env e with
  | Some p -> p
  | None -> (
      match elab b env e with
      | Var v when is_i64 b v -> P.var v
      | Int i -> P.const i
      | _ -> err "index expression is not an integer")

and elab_dim b env = function
  | DFix e -> SFix (elab_idx b env e)
  | DRange (start, count, stride) ->
      SRange
        {
          start = elab_idx b env start;
          len = elab_idx b env count;
          step =
            (match stride with
            | Some s -> elab_idx b env s
            | None -> P.one);
        }

and elab_slice b env = function
  | Striplet dims -> STriplet (List.map (elab_dim b env) dims)
  | Slmad (off, dims) ->
      SLmad
        (Lmad.make (elab_idx b env off)
           (List.map
              (fun (n, s) -> Lmad.dim (elab_idx b env n) (elab_idx b env s))
              dims))

and elab_index b env arr (slc : sslice) : atom =
  let v =
    match elab b env arr with
    | Var v -> v
    | _ -> err "indexed expression must be an array variable"
  in
  match slc with
  | Striplet dims
    when List.for_all (function DFix _ -> true | DRange _ -> false) dims ->
      B.index b v
        (List.map
           (function DFix e -> elab_idx b env e | DRange _ -> assert false)
           dims)
  | slc -> Var (B.bind b (v ^ "_slc") (ESlice (v, elab_slice b env slc)))

and elab_call b env f args : atom =
  let scalar1 op =
    match args with
    | [ a ] -> B.unop b op (elab b env a)
    | _ -> err "%s expects one argument" f
  in
  let arr_arg e =
    match elab b env e with
    | Var v when is_array_typ (B.typ_of b v) -> v
    | _ -> err "%s expects an array argument" f
  in
  match (f, args) with
  | "sqrt", _ -> scalar1 Sqrt
  | "exp", _ -> scalar1 Exp
  | "log", _ -> scalar1 Log
  | "abs", _ -> scalar1 Abs
  | "min", [ a; c ] -> B.binop b Min (elab b env a) (elab b env c)
  | "max", [ a; c ] -> B.binop b Max (elab b env a) (elab b env c)
  | "iota", [ e ] -> Var (B.bind b "iota" (EIota (elab_idx b env e)))
  | "copy", [ e ] -> Var (B.bind b "copy" (ECopy (arr_arg e)))
  | "transpose", [ e ] ->
      Var (B.bind b "transp" (ETranspose (arr_arg e, [ 1; 0 ])))
  | "reverse", [ e ] -> Var (B.bind b "rev" (EReverse (arr_arg e, 0)))
  | "concat", (_ :: _ :: _ as es) ->
      Var (B.bind b "concat" (EConcat (List.map arr_arg es)))
  | "scratch", dims when dims <> [] ->
      Var
        (B.bind b "scratch"
           (EScratch (F64, List.map (elab_idx b env) dims)))
  | "replicate", [ d; v ] ->
      Var
        (B.bind b "repl"
           (EReplicate ([ elab_idx b env d ], elab b env v)))
  | "reduce_add", [ e ] ->
      Var
        (B.bind b "red" (EReduce { op = Add; ne = Float 0.0; arr = arr_arg e }))
  | "reduce_max", [ e ] ->
      Var
        (B.bind b "red"
           (EReduce { op = Max; ne = Float neg_infinity; arr = arr_arg e }))
  | _ -> err "unknown function %s/%d" f (List.length args)

(* ---------------------------------------------------------------- *)
(* Types and programs                                                *)
(* ---------------------------------------------------------------- *)

let elab_type b env = function
  | TyI64 -> i64
  | TyF64 -> f64
  | TyBool -> boolt
  | TyArr (dims, elt) ->
      let sct =
        match elt with
        | TyI64 -> I64
        | TyF64 -> F64
        | TyBool -> Bool
        | TyArr _ -> err "nested array types are not supported"
      in
      arr sct
        (List.map
           (fun d ->
             match to_poly b env d with
             | Some p -> p
             | None -> err "array dimension must be an index expression")
           dims)

(* Elaborate a parsed program into a checked IR program.  [ctx] carries
   the size assumptions for the short-circuiting analysis. *)
let elab_prog ?(ctx = Symalg.Prover.empty) (sp : sprog) : prog =
  (* Parameters keep their surface names (they are globally unique). *)
  let env0 =
    env0_of
      (List.fold_left
         (fun env (v, _) -> SM.add v v env)
         SM.empty sp.pparams)
  in
  (* A scratch builder provides typing context for parameter types. *)
  let params =
    let tmp = B.make () in
    List.map
      (fun (v, t) ->
        let pt = elab_type tmp env0 t in
        B.declare tmp v pt;
        pat_elem v pt)
      sp.pparams
  in
  B.prog ~ctx sp.pname ~params
    ~ret:
      [
        (let tmp = B.make () in
         List.iter (fun pe -> B.declare tmp pe.pv pe.pt) params;
         elab_type tmp env0 sp.pret);
      ]
    (fun b -> [ elab b env0 sp.pbody ])

(* One-step convenience: parse then elaborate. *)
let compile_string ?ctx (src : string) : prog =
  elab_prog ?ctx (Parser.parse src)
