(** Multivariate integer polynomials in normal form.

    This is the term language in which LMAD offsets, strides and cardinals
    are expressed (paper, eq. (1)), and in which the inequalities of the
    non-overlap test (section V-C) are stated before being discharged by
    {!Prover}.  Polynomials are kept in a canonical sorted representation,
    so structural equality of the normal forms decides semantic equality. *)

type mono = {
  coeff : int;  (** nonzero integer coefficient *)
  pows : (string * int) list;
      (** power product: variables sorted by name, exponents >= 1 *)
}
(** A monomial [coeff * v1^e1 * ... * vk^ek]. *)

type t
(** A polynomial: monomials in decreasing graded-lexicographic order. *)

(** {1 Construction} *)

val zero : t
val one : t

val const : int -> t
(** [const c] is the constant polynomial [c]. *)

val var : string -> t
(** [var v] is the polynomial [v]. *)

val var_pow : string -> int -> t
(** [var_pow v e] is [v^e]; [var_pow v 0] is {!one}. *)

val of_monos : mono list -> t
(** Normalize an arbitrary monomial list (merging duplicates, dropping
    zero coefficients) into a polynomial. *)

val monos : t -> mono list
(** The monomials of the normal form, largest first. *)

(** {1 Arithmetic} *)

val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val scale : int -> t -> t
(** [scale c p] is [c * p]. *)

val pow : t -> int -> t
(** [pow p n] for [n >= 0].  @raise Invalid_argument on negative [n]. *)

val sum : t list -> t
val prod : t list -> t

(** Infix aliases for {!add}, {!sub}, {!mul}, {!neg}. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( ~- ) : t -> t
end

(** {1 Queries} *)

val is_zero : t -> bool
val equal : t -> t -> bool

val compare : t -> t -> int
(** A total order compatible with {!equal} (graded-lexicographic). *)

val to_const_opt : t -> int option
(** [Some c] iff the polynomial is the constant [c]. *)

val is_const : t -> bool

val degree : t -> int
(** Total degree; 0 for constants (including zero). *)

val leading : t -> mono option
(** Largest monomial under the graded-lexicographic order. *)

val vars : t -> string list
(** Variables occurring, sorted, without duplicates. *)

val mem_var : string -> t -> bool

val degree_in : string -> t -> int
(** Maximum exponent of the given variable. *)

(** {1 Substitution and evaluation} *)

module SM : Map.S with type key = string

val subst : string -> t -> t -> t
(** [subst v by p] replaces every occurrence of [v] in [p] by [by]. *)

val subst_map : t SM.t -> t -> t
(** Simultaneous-ish substitution (applied in key order, once). *)

val subst_fixpoint : ?fuel:int -> t SM.t -> t -> t
(** Substitute repeatedly until no key of the map occurs in the result;
    this is the index-function translation step of section V-A(b).
    @raise Failure if no fixpoint is reached (substitution cycle). *)

val eval : (string -> int) -> t -> int
(** Evaluate under a concrete integer environment. *)

val rename : (string -> string) -> t -> t
(** Rename variables. *)

(** {1 Structure} *)

val linear_in : string -> t -> (t * t) option
(** [linear_in v p] is [Some (a, b)] when [p = a*v + b] with [v] free in
    neither [a] nor [b]; [None] when [p] is nonlinear in [v].  This is
    the decomposition behind LMAD aggregation across loop indices
    (section II-B): [a] becomes the stride of the promoted dimension. *)

val coeffs_in : string -> t -> t array
(** [coeffs_in v p] is the array [c] with [p = sum_k c.(k) * v^k]. *)

val div_mono : mono -> mono -> mono option
(** Exact monomial division, if coefficient and power product divide. *)

val div_rem : t -> t -> t * t
(** [div_rem p d] is [(q, r)] with [p = q*d + r] and no monomial of [r]
    divisible by the leading monomial of [d].  Used to distribute offset
    terms over strides in the non-overlap test (section V-C, footnote
    27).  @raise Invalid_argument if [d] is zero. *)

(** {1 Printing} *)

val pp_mono : Format.formatter -> mono -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
