(* Multivariate integer polynomials in normal form.

   A polynomial is a sorted list of monomials; a monomial is an integer
   coefficient together with a sorted power-product of named variables.
   This is the term language in which LMAD offsets, strides and cardinals
   are expressed, and in which the non-overlap inequalities of the paper
   (section V-C) are stated and discharged by [Prover].

   The normal form invariants are:
   - no monomial has coefficient 0;
   - within a monomial, variables are sorted by name and exponents are >= 1;
   - monomials are sorted in decreasing graded-lexicographic order;
   - no two monomials share a power-product. *)

module SM = Map.Make (String)

type mono = {
  coeff : int;
  pows : (string * int) list; (* sorted by variable name, exponents >= 1 *)
}

type t = mono list (* sorted by [compare_pows] descending, coeffs nonzero *)

(* ---------------------------------------------------------------- *)
(* Monomial ordering: graded lexicographic on power products.        *)
(* ---------------------------------------------------------------- *)

let degree_pows pows = List.fold_left (fun acc (_, e) -> acc + e) 0 pows

let rec lex_pows p1 p2 =
  match (p1, p2) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (v1, e1) :: r1, (v2, e2) :: r2 ->
      (* Earlier variable names are "bigger" lexicographically. *)
      let c = compare v1 v2 in
      if c <> 0 then -c
      else
        let c = compare e1 e2 in
        if c <> 0 then c else lex_pows r1 r2

let compare_pows p1 p2 =
  let c = compare (degree_pows p1) (degree_pows p2) in
  if c <> 0 then c else lex_pows p1 p2

(* ---------------------------------------------------------------- *)
(* Construction                                                      *)
(* ---------------------------------------------------------------- *)

let zero : t = []
let is_zero (p : t) = p = []

let const c : t = if c = 0 then [] else [ { coeff = c; pows = [] } ]
let one = const 1

let var v : t = [ { coeff = 1; pows = [ (v, 1) ] } ]

let var_pow v e : t =
  if e = 0 then one else [ { coeff = 1; pows = [ (v, e) ] } ]

(* Merge a list of monomials that may contain duplicates or zeros into
   normal form. *)
let normalize (ms : mono list) : t =
  let sorted =
    List.sort (fun m1 m2 -> compare_pows m2.pows m1.pows) ms
  in
  let rec merge = function
    | [] -> []
    | [ m ] -> if m.coeff = 0 then [] else [ m ]
    | m1 :: m2 :: rest ->
        if compare_pows m1.pows m2.pows = 0 then
          merge ({ m1 with coeff = m1.coeff + m2.coeff } :: rest)
        else if m1.coeff = 0 then merge (m2 :: rest)
        else m1 :: merge (m2 :: rest)
  in
  merge sorted

let of_monos = normalize
let monos (p : t) = p

(* ---------------------------------------------------------------- *)
(* Arithmetic                                                        *)
(* ---------------------------------------------------------------- *)

let neg (p : t) : t = List.map (fun m -> { m with coeff = -m.coeff }) p

let add (p : t) (q : t) : t =
  let rec go p q =
    match (p, q) with
    | [], q -> q
    | p, [] -> p
    | m1 :: r1, m2 :: r2 ->
        let c = compare_pows m1.pows m2.pows in
        if c > 0 then m1 :: go r1 q
        else if c < 0 then m2 :: go p r2
        else
          let coeff = m1.coeff + m2.coeff in
          if coeff = 0 then go r1 r2
          else { m1 with coeff } :: go r1 r2
  in
  go p q

let sub p q = add p (neg q)

let mul_pows pw1 pw2 =
  let rec go pw1 pw2 =
    match (pw1, pw2) with
    | [], pw | pw, [] -> pw
    | (v1, e1) :: r1, (v2, e2) :: r2 ->
        let c = compare v1 v2 in
        if c < 0 then (v1, e1) :: go r1 pw2
        else if c > 0 then (v2, e2) :: go pw1 r2
        else (v1, e1 + e2) :: go r1 r2
  in
  go pw1 pw2

let mul_mono m1 m2 =
  { coeff = m1.coeff * m2.coeff; pows = mul_pows m1.pows m2.pows }

let mul (p : t) (q : t) : t =
  normalize (List.concat_map (fun m1 -> List.map (mul_mono m1) q) p)

let scale c (p : t) : t =
  if c = 0 then []
  else List.map (fun m -> { m with coeff = c * m.coeff }) p

let rec pow (p : t) n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent"
  else if n = 0 then one
  else mul p (pow p (n - 1))

let sum = List.fold_left add zero
let prod = List.fold_left mul one

(* Convenience infix module for building polynomials in client code. *)
module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( ~- ) = neg
end

(* ---------------------------------------------------------------- *)
(* Queries                                                           *)
(* ---------------------------------------------------------------- *)

let equal (p : t) (q : t) = is_zero (sub p q)

let compare (p : t) (q : t) : int =
  let rec go p q =
    match (p, q) with
    | [], [] -> 0
    | [], _ -> -1
    | _, [] -> 1
    | m1 :: r1, m2 :: r2 ->
        let c = compare_pows m1.pows m2.pows in
        if c <> 0 then c
        else
          let c = Stdlib.compare m1.coeff m2.coeff in
          if c <> 0 then c else go r1 r2
  in
  go p q

let to_const_opt = function
  | [] -> Some 0
  | [ { coeff; pows = [] } ] -> Some coeff
  | _ -> None

let is_const p = to_const_opt p <> None

let degree = function [] -> 0 | m :: _ -> degree_pows m.pows

let leading = function [] -> None | m :: _ -> Some m

let vars (p : t) : string list =
  List.sort_uniq String.compare
    (List.concat_map (fun m -> List.map fst m.pows) p)

let mem_var v (p : t) =
  List.exists (fun m -> List.mem_assoc v m.pows) p

(* Maximum exponent of [v] in [p]. *)
let degree_in v (p : t) =
  List.fold_left
    (fun acc m ->
      match List.assoc_opt v m.pows with
      | Some e -> max acc e
      | None -> acc)
    0 p

(* ---------------------------------------------------------------- *)
(* Substitution and evaluation                                       *)
(* ---------------------------------------------------------------- *)

let subst (v : string) (by : t) (p : t) : t =
  let subst_mono m =
    match List.assoc_opt v m.pows with
    | None -> [ m ]
    | Some e ->
        let rest = List.remove_assoc v m.pows in
        mul [ { coeff = m.coeff; pows = rest } ] (pow by e)
  in
  normalize (List.concat_map subst_mono p)

let subst_map (env : t SM.t) (p : t) : t =
  SM.fold subst env p

(* Substitute to a fixpoint: keys of [env] may appear in the images of
   other keys.  Used by the index-function translation of section V-A(b).
   Raises [Failure] if no fixpoint is reached within [fuel] rounds,
   which indicates a substitution cycle. *)
let subst_fixpoint ?(fuel = 32) (env : t SM.t) (p : t) : t =
  let keys = SM.bindings env |> List.map fst in
  let rec go fuel p =
    if fuel = 0 then failwith "Poly.subst_fixpoint: no fixpoint (cycle?)"
    else
      let p' = subst_map env p in
      if equal p p' then p
      else if List.exists (fun k -> mem_var k p') keys then go (fuel - 1) p'
      else p'
  in
  go fuel p

let eval (env : string -> int) (p : t) : int =
  List.fold_left
    (fun acc m ->
      let v =
        List.fold_left
          (fun acc (x, e) ->
            let xv = env x in
            let rec pw acc e = if e = 0 then acc else pw (acc * xv) (e - 1) in
            pw acc e)
          m.coeff m.pows
      in
      acc + v)
    0 p

let rename (f : string -> string) (p : t) : t =
  normalize
    (List.map
       (fun m ->
         {
           m with
           pows =
             List.sort
               (fun (a, _) (b, _) -> String.compare a b)
               (List.map (fun (v, e) -> (f v, e)) m.pows);
         })
       p)

(* ---------------------------------------------------------------- *)
(* Linear decomposition                                              *)
(* ---------------------------------------------------------------- *)

(* Decompose [p] as [a * v + b] where neither [a] nor [b] mentions [v].
   Returns [None] when [p] is not linear in [v]. Central to LMAD
   aggregation across loops (section II-B): the coefficient [a] becomes
   the stride of the promoted dimension. *)
let linear_in (v : string) (p : t) : (t * t) option =
  if degree_in v p > 1 then None
  else
    let coef, rest =
      List.partition (fun m -> List.mem_assoc v m.pows) p
    in
    let a =
      List.map
        (fun m -> { m with pows = List.remove_assoc v m.pows })
        coef
      |> normalize
    in
    if mem_var v a then None else Some (a, rest)

(* Coefficient polynomials of each power of [v]: result.(k) multiplies
   v^k.  Used by the prover's variable-elimination step. *)
let coeffs_in (v : string) (p : t) : t array =
  let d = degree_in v p in
  let cs = Array.make (d + 1) zero in
  List.iter
    (fun m ->
      let e = Option.value ~default:0 (List.assoc_opt v m.pows) in
      let m' = { m with pows = List.remove_assoc v m.pows } in
      cs.(e) <- add cs.(e) [ m' ])
    p;
  Array.map normalize (Array.map (fun x -> x) cs)

(* ---------------------------------------------------------------- *)
(* Monomial division (used by the non-overlap offset distribution)    *)
(* ---------------------------------------------------------------- *)

(* [div_mono m1 m2] is [Some q] with [m1 = q * m2] when the power
   product and coefficient of [m2] divide those of [m1]. *)
let div_mono (m1 : mono) (m2 : mono) : mono option =
  if m2.coeff = 0 || m1.coeff mod m2.coeff <> 0 then None
  else
    let rec div_pows p1 p2 =
      match p2 with
      | [] -> Some p1
      | (v, e2) :: r2 -> (
          match List.assoc_opt v p1 with
          | Some e1 when e1 > e2 ->
              Option.map
                (fun rest ->
                  List.sort
                    (fun (a, _) (b, _) -> String.compare a b)
                    ((v, e1 - e2) :: rest))
                (div_pows (List.remove_assoc v p1) r2)
          | Some e1 when e1 = e2 -> div_pows (List.remove_assoc v p1) r2
          | _ -> None)
    in
    Option.map
      (fun pows -> { coeff = m1.coeff / m2.coeff; pows })
      (div_pows m1.pows m2.pows)

(* Multivariate division of [p] by [d]: returns [(q, r)] with
   [p = q*d + r] where no monomial of [r] is divisible by the leading
   monomial of [d].  Standard single-divisor reduction. *)
let div_rem (p : t) (d : t) : t * t =
  match d with
  | [] -> invalid_arg "Poly.div_rem: division by zero"
  | lead_d :: _ ->
      let rec go p q r fuel =
        if fuel = 0 then (q, add r p)
        else
          match p with
          | [] -> (q, r)
          | m :: rest -> (
              match div_mono m lead_d with
              | Some qm ->
                  let qp = [ qm ] in
                  go (sub rest (mul qp (List.tl d))) (add q qp) r (fuel - 1)
              | None -> go rest q (add r [ m ]) (fuel - 1))
      in
      let q, r = go p zero zero 200 in
      (normalize q, normalize r)

(* ---------------------------------------------------------------- *)
(* Printing                                                          *)
(* ---------------------------------------------------------------- *)

let pp_mono ppf (m : mono) =
  let pp_pows ppf pows =
    Fmt.(list ~sep:(any "*"))
      (fun ppf (v, e) ->
        if e = 1 then Fmt.string ppf v else Fmt.pf ppf "%s^%d" v e)
      ppf pows
  in
  match (m.coeff, m.pows) with
  | c, [] -> Fmt.int ppf c
  | 1, pows -> pp_pows ppf pows
  | -1, pows -> Fmt.pf ppf "-%a" pp_pows pows
  | c, pows -> Fmt.pf ppf "%d*%a" c pp_pows pows

let pp ppf (p : t) =
  match p with
  | [] -> Fmt.string ppf "0"
  | m :: rest ->
      pp_mono ppf m;
      List.iter
        (fun m ->
          if m.coeff >= 0 then Fmt.pf ppf " + %a" pp_mono m
          else Fmt.pf ppf " - %a" pp_mono { m with coeff = -m.coeff })
        rest

let to_string p = Fmt.str "%a" pp p
