lib/symalg/prover.ml: Array Fmt Fun Hashtbl List Option Poly Set Stdlib String Sys
