lib/symalg/prover.mli: Format Poly
