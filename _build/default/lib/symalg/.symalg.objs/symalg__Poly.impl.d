lib/symalg/poly.ml: Array Fmt List Map Option Stdlib String
