lib/symalg/poly.mli: Format Map
