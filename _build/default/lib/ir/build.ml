(* Builder combinators for constructing IR programs.

   The benchmarks and tests author programs through this module rather
   than raw AST constructors: a builder carries a typing environment so
   statement result types are inferred, and fresh names are generated
   automatically.  Usage:

     let prog =
       Build.prog "nw" ~params:[...] ~ret:[...] (fun b ->
         let a = Build.bind b "a" (EIota n) in
         ...;
         [ Ast.Var a ])
*)

open Ast
module P = Symalg.Poly
module SM = Map.Make (String)

type t = {
  mutable stms : stm list; (* reversed *)
  mutable types : typ SM.t;
  parent : t option;
}

let make ?parent () =
  {
    stms = [];
    types = (match parent with Some p -> p.types | None -> SM.empty);
    parent;
  }

let declare b v t = b.types <- SM.add v t b.types

let typ_of b v =
  match SM.find_opt v b.types with
  | Some t -> t
  | None -> invalid_arg ("Build.typ_of: unbound " ^ v)

let infer b (e : exp) : typ list = Check.infer_pure b.types e

(* Append a statement binding fresh names for each result; returns the
   names.  [names] optionally suggests base names. *)
let bind_multi ?names b (e : exp) : string list =
  let typs = infer b e in
  let bases =
    match names with
    | Some ns when List.length ns = List.length typs -> ns
    | _ -> List.map (fun _ -> "t") typs
  in
  let pes =
    List.map2 (fun base t -> pat_elem (Names.fresh base) t) bases typs
  in
  List.iter (fun pe -> declare b pe.pv pe.pt) pes;
  b.stms <- stm pes e :: b.stms;
  List.map (fun pe -> pe.pv) pes

let bind b name (e : exp) : string =
  match bind_multi ~names:[ name ] b e with
  | [ v ] -> v
  | _ -> invalid_arg "Build.bind: expression has multiple results"

(* Bind with an exact (non-fresh) name; used by tests that want
   predictable output. *)
let bind_exact b name (e : exp) : string =
  match infer b e with
  | [ t ] ->
      declare b name t;
      b.stms <- stm [ pat_elem name t ] e :: b.stms;
      name
  | _ -> invalid_arg "Build.bind_exact: multiple results"

(* Build a sub-block in a child builder. *)
let subblock b ?(binds = []) (f : t -> atom list) : block =
  let child = make ~parent:b () in
  List.iter (fun (v, t) -> declare child v t) binds;
  let res = f child in
  block (List.rev child.stms) res

(* ---------------------------------------------------------------- *)
(* Convenience wrappers for common expressions                        *)
(* ---------------------------------------------------------------- *)

let mapnest b name (nest : (string * idx) list) (f : t -> atom list) : string
    =
  let body =
    subblock b ~binds:(List.map (fun (v, _) -> (v, TScalar I64)) nest) f
  in
  bind b name (EMap { nest; body })

let mapnest_multi ?names b (nest : (string * idx) list) (f : t -> atom list)
    : string list =
  let body =
    subblock b ~binds:(List.map (fun (v, _) -> (v, TScalar I64)) nest) f
  in
  bind_multi ?names b (EMap { nest; body })

(* loop over accumulators: [params] are (name, type, init). *)
let loop b name (params : (string * typ * atom) list) ~(var : string)
    ~(bound : idx) (f : t -> atom list) : string list =
  let pes = List.map (fun (v, t, init) -> (pat_elem v t, init)) params in
  let binds =
    (var, TScalar I64) :: List.map (fun (v, t, _) -> (v, t)) params
  in
  let body = subblock b ~binds f in
  bind_multi
    ~names:(List.map (fun (v, _, _) -> name ^ "_" ^ v) params)
    b
    (ELoop { params = pes; var; bound; body })

(* Single-accumulator loop with generated parameter/index names; the
   body callback receives them, which keeps nested instantiations of
   the same template unique program-wide. *)
let loop1 b name (init_t : typ) (init : atom) ~(bound : idx)
    (f : t -> param:string -> i:P.t -> atom) : string =
  let pv = Names.fresh (name ^ "_acc") in
  let iv = Names.fresh (name ^ "_i") in
  match
    loop b name
      [ (pv, init_t, init) ]
      ~var:iv ~bound
      (fun bb -> [ f bb ~param:pv ~i:(P.var iv) ])
  with
  | [ r ] -> r
  | _ -> invalid_arg "Build.loop1"

let if_ b name cond (ft : t -> atom list) (ff : t -> atom list) : string list
    =
  let tb = subblock b ft and fb = subblock b ff in
  bind_multi ~names:[ name ] b (EIf { cond; tb; fb })

(* Scalar helpers producing atoms directly. *)
let idx b (i : idx) : atom =
  match P.to_const_opt i with
  | Some c -> Int c
  | None -> (
      match P.monos i with
      | [ { coeff = 1; pows = [ (v, 1) ] } ] -> Var v
      | _ -> Var (bind b "ix" (EIdx i)))

let binop b op a1 a2 : atom = Var (bind b "v" (EBin (op, a1, a2)))
let unop b op a : atom = Var (bind b "v" (EUn (op, a)))
let cmp b op a1 a2 : atom = Var (bind b "c" (ECmp (op, a1, a2)))
let index b arr idxs : atom = Var (bind b (arr ^ "_elem") (EIndex (arr, idxs)))

let fadd b a1 a2 = binop b Add a1 a2
let fsub b a1 a2 = binop b Sub a1 a2
let fmul b a1 a2 = binop b Mul a1 a2
let fdiv b a1 a2 = binop b Div a1 a2
let fmax b a1 a2 = binop b Max a1 a2
let fmin b a1 a2 = binop b Min a1 a2

(* ---------------------------------------------------------------- *)
(* Programs                                                          *)
(* ---------------------------------------------------------------- *)

let prog ?(ctx = Symalg.Prover.empty) name ~params ~ret (f : t -> atom list)
    : prog =
  let b = make () in
  List.iter (fun pe -> declare b pe.pv pe.pt) params;
  let res = f b in
  let body = block (List.rev b.stms) res in
  let p = { name; params; body; ret; ctx } in
  Check.check_prog p;
  p

(* Convenient triplet-slice constructors. *)
let range ?(step = P.one) start len = SRange { start; len; step }
let fix i = SFix i
let all n = SRange { start = P.zero; len = n; step = P.one }
