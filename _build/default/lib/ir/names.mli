(** Fresh name generation.  All compiler passes assume binder names are
    unique program-wide; [fresh] guarantees it with a global counter. *)

val fresh : string -> string
(** [fresh base] is [base ^ "_" ^ counter]. *)

val reset : unit -> unit
(** Reset the counter (deterministic tests only). *)

val base : string -> string
(** Strip a generated name back to its base. *)
