(** Builder combinators for constructing IR programs.

    A builder carries a typing environment (result types of statements
    are inferred with {!Check.infer_pure}) and generates fresh binder
    names; the benchmark programs and tests author IR through this
    module rather than raw constructors. *)

open Ast
module P = Symalg.Poly
module SM : Map.S with type key = string

type t = {
  mutable stms : stm list;  (** accumulated statements, reversed *)
  mutable types : typ SM.t;
  parent : t option;
}

val make : ?parent:t -> unit -> t

val declare : t -> string -> typ -> unit
(** Register an externally-bound variable (e.g. a parameter). *)

val typ_of : t -> string -> typ
(** @raise Invalid_argument when unbound. *)

val infer : t -> exp -> typ list

val bind_multi : ?names:string list -> t -> exp -> string list
(** Append a statement binding fresh names for each result. *)

val bind : t -> string -> exp -> string
(** Single-result {!bind_multi}; the string seeds the fresh name. *)

val bind_exact : t -> string -> exp -> string
(** Bind with the exact (non-freshened) name; for tests wanting
    predictable output. *)

val subblock : t -> ?binds:(string * typ) list -> (t -> atom list) -> block
(** Build a nested block in a child builder, pre-declaring [binds]. *)

(** {1 Structured statements} *)

val mapnest : t -> string -> (string * idx) list -> (t -> atom list) -> string
(** [mapnest b name nest body]: a parallel nest; the nest variables are
    declared [i64] in the body builder. *)

val mapnest_multi :
  ?names:string list -> t -> (string * idx) list -> (t -> atom list) ->
  string list

val loop :
  t -> string -> (string * typ * atom) list -> var:string -> bound:idx ->
  (t -> atom list) -> string list
(** Sequential loop over accumulators [(name, type, init)]. *)

val loop1 :
  t -> string -> typ -> atom -> bound:idx ->
  (t -> param:string -> i:P.t -> atom) -> string
(** Single-accumulator loop with generated parameter/index names,
    handed to the body callback - keeps repeated instantiations of one
    template unique program-wide. *)

val if_ : t -> string -> atom -> (t -> atom list) -> (t -> atom list) ->
  string list

(** {1 Scalar conveniences (each may emit a statement)} *)

val idx : t -> idx -> atom
(** Materialize an index polynomial as an atom (constant, variable, or
    a fresh [EIdx] binding). *)

val binop : t -> binop -> atom -> atom -> atom
val unop : t -> unop -> atom -> atom
val cmp : t -> cmpop -> atom -> atom -> atom
val index : t -> string -> idx list -> atom
val fadd : t -> atom -> atom -> atom
val fsub : t -> atom -> atom -> atom
val fmul : t -> atom -> atom -> atom
val fdiv : t -> atom -> atom -> atom
val fmax : t -> atom -> atom -> atom
val fmin : t -> atom -> atom -> atom

(** {1 Programs and slices} *)

val prog :
  ?ctx:Symalg.Prover.t -> string -> params:pat_elem list -> ret:typ list ->
  (t -> atom list) -> prog
(** Build and type/uniqueness-check a program; [ctx] records the size
    assumptions available to the short-circuiting analysis. *)

val range : ?step:idx -> idx -> idx -> slice_dim
(** [range start len] = the triplet component [start :+ len : step]. *)

val fix : idx -> slice_dim
val all : idx -> slice_dim
(** The full dimension [0 :+ n : 1]. *)
