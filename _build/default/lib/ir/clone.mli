(** Deep copies of programs.  Pattern elements carry mutable memory
    annotations, so in-place passes would otherwise leak changes into
    the caller's copy; the pipeline clones before annotating. *)

val clone_pat_elem : Ast.pat_elem -> Ast.pat_elem
val clone_exp : Ast.exp -> Ast.exp
val clone_stm : Ast.stm -> Ast.stm
val clone_block : Ast.block -> Ast.block
val clone_prog : Ast.prog -> Ast.prog
