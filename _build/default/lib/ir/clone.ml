(* Deep copy of programs.

   Pattern elements carry mutable memory annotations, so passes that
   annotate in place (memory introduction, short-circuiting) would
   otherwise leak changes into the caller's copy.  Cloning lets the
   pipeline keep pristine, unoptimized and optimized variants of the
   same source program side by side. *)

open Ast

let clone_pat_elem pe = { pv = pe.pv; pt = pe.pt; pmem = pe.pmem }

let rec clone_exp = function
  | ( EAtom _ | EBin _ | ECmp _ | EUn _ | EIdx _ | EIndex _ | ESlice _
    | ETranspose _ | EReshape _ | EReverse _ | EIota _ | EReplicate _
    | EScratch _ | ECopy _ | EConcat _ | EUpdate _ | EReduce _ | EArgmin _
    | EAlloc _ ) as e ->
      e
  | EMap { nest; body } -> EMap { nest; body = clone_block body }
  | ELoop { params; var; bound; body } ->
      ELoop
        {
          params = List.map (fun (pe, a) -> (clone_pat_elem pe, a)) params;
          var;
          bound;
          body = clone_block body;
        }
  | EIf { cond; tb; fb } ->
      EIf { cond; tb = clone_block tb; fb = clone_block fb }

and clone_stm s =
  {
    pat = List.map clone_pat_elem s.pat;
    exp = clone_exp s.exp;
    last_uses = s.last_uses;
  }

and clone_block b = { stms = List.map clone_stm b.stms; res = b.res }

let clone_prog (p : prog) : prog =
  { p with params = List.map clone_pat_elem p.params; body = clone_block p.body }
