lib/ir/build.ml: Ast Check List Map Names String Symalg
