lib/ir/interp.mli: Ast Value
