lib/ir/interp.ml: Array Ast Float Fmt Fun Hashtbl List Lmads Map Pretty String Symalg Value
