lib/ir/build.mli: Ast Map Symalg
