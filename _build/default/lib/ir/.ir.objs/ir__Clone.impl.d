lib/ir/clone.ml: Ast List
