lib/ir/check.mli: Ast Map String
