lib/ir/pretty.ml: Ast Fmt List Lmads String Symalg
