lib/ir/ast.ml: List Lmads Set String Symalg
