lib/ir/names.ml: Printf String
