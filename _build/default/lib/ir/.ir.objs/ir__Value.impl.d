lib/ir/value.ml: Array Ast Float Fmt List
