lib/ir/names.mli:
