lib/ir/value.mli: Ast Format
