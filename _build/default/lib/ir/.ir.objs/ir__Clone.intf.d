lib/ir/clone.mli: Ast
