lib/ir/check.ml: Ast Fmt Fun List Lmads Map Pretty String Symalg
