(* Runtime values for the reference interpreter.

   Arrays are always materialized flat in row-major order: the reference
   semantics is purely functional and memory-agnostic, so change-of-
   layout operations copy eagerly.  The memory-aware executor in the
   [gpu] library is the one that honours index functions. *)

open Ast

type data =
  | DF of float array
  | DI of int array
  | DB of bool array

type arr = { elt : sct; shape : int list; data : data }

type t =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VArr of arr
  | VMem of int (* opaque memory-block token; semantically inert *)

let count shape = List.fold_left ( * ) 1 shape

let zeros elt shape =
  let n = count shape in
  let data =
    match elt with
    | F64 -> DF (Array.make n 0.0)
    | I64 -> DI (Array.make n 0)
    | Bool -> DB (Array.make n false)
  in
  { elt; shape; data }

let of_floats shape xs = { elt = F64; shape; data = DF xs }
let of_ints shape xs = { elt = I64; shape; data = DI xs }

(* A shape-only array carrying no payload: used as input to cost-only
   executions at paper-scale sizes, where materializing the data (tens
   of gigabytes) would be pointless. *)
let shell elt shape =
  let data =
    match elt with F64 -> DF [||] | I64 -> DI [||] | Bool -> DB [||]
  in
  { elt; shape; data }

let get_flat a i =
  match a.data with
  | DF d -> VFloat d.(i)
  | DI d -> VInt d.(i)
  | DB d -> VBool d.(i)

let set_flat a i v =
  match (a.data, v) with
  | DF d, VFloat x -> d.(i) <- x
  | DI d, VInt x -> d.(i) <- x
  | DB d, VBool x -> d.(i) <- x
  | _ -> invalid_arg "Value.set_flat: element type mismatch"

let copy_arr a =
  let data =
    match a.data with
    | DF d -> DF (Array.copy d)
    | DI d -> DI (Array.copy d)
    | DB d -> DB (Array.copy d)
  in
  { a with data }

(* Row-major rank of a multi-index. *)
let flatten_index shape idxs =
  List.fold_left2 (fun acc n i -> (acc * n) + i) 0 shape idxs

(* All multi-indices of [shape] in row-major order. *)
let indices shape =
  let rec go = function
    | [] -> [ [] ]
    | n :: rest ->
        let inner = go rest in
        List.concat (List.init n (fun i -> List.map (fun t -> i :: t) inner))
  in
  go shape

let to_float = function
  | VFloat f -> f
  | VInt i -> float_of_int i
  | _ -> invalid_arg "Value.to_float"

let to_int = function VInt i -> i | _ -> invalid_arg "Value.to_int"
let to_bool = function VBool b -> b | _ -> invalid_arg "Value.to_bool"

let float_data a =
  match a.data with DF d -> d | _ -> invalid_arg "Value.float_data"

let int_data a =
  match a.data with DI d -> d | _ -> invalid_arg "Value.int_data"

(* Structural equality with a tolerance for floats (used to compare the
   output of the optimized pipeline against the reference). *)
let rec approx_equal ?(eps = 1e-9) v1 v2 =
  match (v1, v2) with
  | VInt a, VInt b -> a = b
  | VBool a, VBool b -> a = b
  | VFloat a, VFloat b ->
      let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
      Float.abs (a -. b) <= eps *. scale
  | VArr a, VArr b ->
      a.elt = b.elt && a.shape = b.shape
      &&
      let n = count a.shape in
      let rec go i =
        i >= n || (approx_equal ~eps (get_flat a i) (get_flat b i) && go (i + 1))
      in
      go 0
  | VMem _, VMem _ -> true
  | _ -> false

let pp ppf = function
  | VInt i -> Fmt.int ppf i
  | VFloat f -> Fmt.float ppf f
  | VBool b -> Fmt.bool ppf b
  | VMem i -> Fmt.pf ppf "<mem%d>" i
  | VArr a ->
      let n = count a.shape in
      let elems = List.init (min n 16) (fun i -> get_flat a i) in
      Fmt.pf ppf "[%dd array %a%s]" (List.length a.shape)
        Fmt.(list ~sep:comma (fun ppf v ->
            match v with
            | VFloat f -> Fmt.float ppf f
            | VInt i -> Fmt.int ppf i
            | VBool b -> Fmt.bool ppf b
            | _ -> Fmt.string ppf "?"))
        elems
        (if n > 16 then ", ..." else "")
