(** Runtime values for the reference interpreter.

    Arrays are always materialized flat in row-major order: the
    reference semantics is purely functional and memory-agnostic (views
    copy eagerly); only the executor in [Gpu] honours index functions. *)

open Ast

type data = DF of float array | DI of int array | DB of bool array

type arr = { elt : sct; shape : int list; data : data }

type t =
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VArr of arr
  | VMem of int  (** opaque memory-block token; semantically inert *)

val count : int list -> int
(** Element count of a shape. *)

val zeros : sct -> int list -> arr
val of_floats : int list -> float array -> arr
val of_ints : int list -> int array -> arr

val shell : sct -> int list -> arr
(** A shape-only array with no payload, for cost-only executions at
    paper-scale sizes (materializing tens of GB would be pointless). *)

val get_flat : arr -> int -> t
val set_flat : arr -> int -> t -> unit
val copy_arr : arr -> arr

val flatten_index : int list -> int list -> int
(** Row-major rank of a multi-index. *)

val indices : int list -> int list list
(** All multi-indices of a shape, row-major order. *)

val to_float : t -> float
val to_int : t -> int
val to_bool : t -> bool
val float_data : arr -> float array
val int_data : arr -> int array

val approx_equal : ?eps:float -> t -> t -> bool
(** Structural equality with a relative tolerance on floats; used to
    compare optimized output against the reference. *)

val pp : Format.formatter -> t -> unit
