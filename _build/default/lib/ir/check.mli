(** Type, shape and consumption checking.

    Shapes are symbolic polynomials compared by normal form.  The
    uniqueness discipline of section II-C is enforced in simplified
    form: an array consumed by an in-place update (or passed as a
    loop-carried array) must not be used - directly or through a view
    alias - by any later statement; the update's {e result} is a fresh
    unique value and does not alias the consumed operand (their shared
    memory is the business of the memory passes, not the type system). *)

exception Type_error of string

val check_prog : Ast.prog -> unit
(** @raise Type_error on scope, type, shape, or consumption errors. *)

val infer_pure : Ast.typ Map.Make(String).t -> Ast.exp -> Ast.typ list
(** Result types of an expression under a typing environment, without
    consumption effects; used by the {!Build} combinators.
    @raise Type_error when ill-typed. *)
