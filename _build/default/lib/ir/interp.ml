(* The reference interpreter: purely functional semantics, memory
   annotations ignored.

   This is the ground truth against which all compiler passes are
   validated: a transformed program must produce [Value.approx_equal]
   results on the reference interpreter AND on the memory-aware
   executor.  Performance is irrelevant here; every view materializes. *)

open Ast
module P = Symalg.Poly
module SM = Map.Make (String)

exception Runtime_error of string

let err fmt = Fmt.kstr (fun s -> raise (Runtime_error s)) fmt

type _env = Value.t SM.t

let lookup env v =
  match SM.find_opt v env with
  | Some x -> x
  | None -> err "interp: unbound variable %s" v

let lookup_arr env v =
  match lookup env v with
  | Value.VArr a -> a
  | _ -> err "interp: %s is not an array" v

let eval_atom env = function
  | Var v -> lookup env v
  | Int i -> Value.VInt i
  | Float f -> Value.VFloat f
  | Bool b -> Value.VBool b

let eval_idx env (i : idx) : int =
  P.eval
    (fun v ->
      match lookup env v with
      | Value.VInt x -> x
      | _ -> err "interp: index variable %s is not an integer" v)
    i

(* ---------------------------------------------------------------- *)
(* Scalar operations                                                 *)
(* ---------------------------------------------------------------- *)

let eval_bin op v1 v2 =
  let open Value in
  match (op, v1, v2) with
  | Add, VInt a, VInt b -> VInt (a + b)
  | Sub, VInt a, VInt b -> VInt (a - b)
  | Mul, VInt a, VInt b -> VInt (a * b)
  | Div, VInt a, VInt b -> VInt (a / b)
  | Rem, VInt a, VInt b -> VInt (a mod b)
  | Min, VInt a, VInt b -> VInt (min a b)
  | Max, VInt a, VInt b -> VInt (max a b)
  | Add, VFloat a, VFloat b -> VFloat (a +. b)
  | Sub, VFloat a, VFloat b -> VFloat (a -. b)
  | Mul, VFloat a, VFloat b -> VFloat (a *. b)
  | Div, VFloat a, VFloat b -> VFloat (a /. b)
  | Rem, VFloat a, VFloat b -> VFloat (Float.rem a b)
  | Min, VFloat a, VFloat b -> VFloat (Float.min a b)
  | Max, VFloat a, VFloat b -> VFloat (Float.max a b)
  | And, VBool a, VBool b -> VBool (a && b)
  | Or, VBool a, VBool b -> VBool (a || b)
  | _ -> err "interp: ill-typed binary operation"

let eval_cmp op v1 v2 =
  let open Value in
  match (op, v1, v2) with
  | CEq, VInt a, VInt b -> VBool (a = b)
  | CLt, VInt a, VInt b -> VBool (a < b)
  | CLe, VInt a, VInt b -> VBool (a <= b)
  | CEq, VFloat a, VFloat b -> VBool (a = b)
  | CLt, VFloat a, VFloat b -> VBool (a < b)
  | CLe, VFloat a, VFloat b -> VBool (a <= b)
  | CEq, VBool a, VBool b -> VBool (a = b)
  | _ -> err "interp: ill-typed comparison"

let eval_un op v =
  let open Value in
  match (op, v) with
  | Neg, VInt a -> VInt (-a)
  | Neg, VFloat a -> VFloat (-.a)
  | Abs, VInt a -> VInt (abs a)
  | Abs, VFloat a -> VFloat (Float.abs a)
  | Sqrt, VFloat a -> VFloat (sqrt a)
  | Exp, VFloat a -> VFloat (exp a)
  | Log, VFloat a -> VFloat (log a)
  | Not, VBool a -> VBool (not a)
  | ToF64, VInt a -> VFloat (float_of_int a)
  | ToI64, VFloat a -> VInt (int_of_float a)
  | _ -> err "interp: ill-typed unary operation"

(* ---------------------------------------------------------------- *)
(* Slices                                                            *)
(* ---------------------------------------------------------------- *)

(* The flat destination offsets and logical (cardinal-space) shape
   denoted by a slice of an array with concrete [shape].  Offsets are
   produced in row-major order of the slice's logical index space. *)
let slice_offsets env slc shape : int list * int list =
  match slc with
  | STriplet sds ->
      let per_dim =
        List.map
          (function
            | SFix i -> [ eval_idx env i ]
            | SRange { start; len; step } ->
                let s = eval_idx env start
                and n = eval_idx env len
                and k = eval_idx env step in
                List.init n (fun j -> s + (j * k)))
          sds
      in
      let logical_shape =
        List.concat
          (List.map2
             (fun sd coords ->
               match sd with SFix _ -> [] | SRange _ -> [ List.length coords ])
             sds per_dim)
      in
      let rec cart = function
        | [] -> [ [] ]
        | cs :: rest ->
            let inner = cart rest in
            List.concat
              (List.map (fun c -> List.map (fun t -> c :: t) inner) cs)
      in
      let offsets =
        List.map (Value.flatten_index shape) (cart per_dim)
      in
      (offsets, logical_shape)
  | SLmad l ->
      let envf v = Value.to_int (lookup env v) in
      let offsets = Lmads.Lmad.eval_points envf l in
      let logical_shape =
        List.map (P.eval envf) (Lmads.Lmad.shape l)
      in
      (offsets, logical_shape)

let check_slice_bounds name offsets total =
  List.iter
    (fun o ->
      if o < 0 || o >= total then
        err "interp: slice offset %d out of bounds for %s (size %d)" o name
          total)
    offsets

(* Dynamic check from section III-B: an LMAD update must touch distinct
   locations, otherwise it would have output dependences. *)
let check_disjoint_offsets name offsets =
  let tbl = Hashtbl.create (List.length offsets) in
  List.iter
    (fun o ->
      if Hashtbl.mem tbl o then
        err "interp: LMAD update on %s writes offset %d twice" name o;
      Hashtbl.add tbl o ())
    offsets

(* ---------------------------------------------------------------- *)
(* Expressions                                                       *)
(* ---------------------------------------------------------------- *)

let mem_counter = ref 0

let rec eval_exp env (e : exp) : Value.t list =
  match e with
  | EAtom a -> [ eval_atom env a ]
  | EBin (op, a, b) -> [ eval_bin op (eval_atom env a) (eval_atom env b) ]
  | ECmp (op, a, b) -> [ eval_cmp op (eval_atom env a) (eval_atom env b) ]
  | EUn (op, a) -> [ eval_un op (eval_atom env a) ]
  | EIdx i -> [ Value.VInt (eval_idx env i) ]
  | EIndex (v, idxs) ->
      let a = lookup_arr env v in
      let is = List.map (eval_idx env) idxs in
      List.iter2
        (fun i n -> if i < 0 || i >= n then err "interp: %s[%d] out of bounds (dim %d)" v i n)
        is a.shape;
      [ Value.get_flat a (Value.flatten_index a.shape is) ]
  | ESlice (v, slc) ->
      let a = lookup_arr env v in
      let offsets, logical_shape = slice_offsets env slc a.shape in
      check_slice_bounds v offsets (Value.count a.shape);
      let out = Value.zeros a.elt logical_shape in
      List.iteri (fun i o -> Value.set_flat out i (Value.get_flat a o)) offsets;
      [ Value.VArr out ]
  | ETranspose (v, perm) ->
      let a = lookup_arr env v in
      let new_shape = List.map (List.nth a.shape) perm in
      let out = Value.zeros a.elt new_shape in
      (* transpose by iterating over the destination index space *)
      List.iteri
        (fun i idxs ->
          let src_idxs_arr = Array.make (List.length a.shape) 0 in
          List.iteri (fun k p -> src_idxs_arr.(p) <- List.nth idxs k) perm;
          Value.set_flat out i
            (Value.get_flat a
               (Value.flatten_index a.shape (Array.to_list src_idxs_arr))))
        (Value.indices new_shape);
      [ Value.VArr out ]
  | EReshape (v, new_shape) ->
      let a = lookup_arr env v in
      let shape = List.map (eval_idx env) new_shape in
      if Value.count shape <> Value.count a.shape then
        err "interp: reshape size mismatch on %s" v;
      [ Value.VArr { (Value.copy_arr a) with shape } ]
  | EReverse (v, d) ->
      let a = lookup_arr env v in
      let out = Value.zeros a.elt a.shape in
      let nd = List.nth a.shape d in
      List.iteri
        (fun i idxs ->
          let src = List.mapi (fun k x -> if k = d then nd - 1 - x else x) idxs in
          Value.set_flat out i
            (Value.get_flat a (Value.flatten_index a.shape src)))
        (Value.indices a.shape);
      [ Value.VArr out ]
  | EIota n ->
      let n = eval_idx env n in
      [ Value.VArr (Value.of_ints [ n ] (Array.init n Fun.id)) ]
  | EReplicate (shape, a) ->
      let shape = List.map (eval_idx env) shape in
      let v = eval_atom env a in
      let elt =
        match v with
        | Value.VInt _ -> I64
        | Value.VFloat _ -> F64
        | Value.VBool _ -> Bool
        | _ -> err "interp: replicate of non-scalar"
      in
      let out = Value.zeros elt shape in
      for i = 0 to Value.count shape - 1 do
        Value.set_flat out i v
      done;
      [ Value.VArr out ]
  | EScratch (s, shape) ->
      [ Value.VArr (Value.zeros s (List.map (eval_idx env) shape)) ]
  | ECopy v -> [ Value.VArr (Value.copy_arr (lookup_arr env v)) ]
  | EConcat vs ->
      let arrs = List.map (lookup_arr env) vs in
      let first = List.hd arrs in
      let inner = List.tl first.shape in
      let total =
        List.fold_left (fun acc (a : Value.arr) -> acc + List.hd a.shape) 0 arrs
      in
      let out = Value.zeros first.elt (total :: inner) in
      let pos = ref 0 in
      List.iter
        (fun (a : Value.arr) ->
          let n = Value.count a.shape in
          for i = 0 to n - 1 do
            Value.set_flat out (!pos + i) (Value.get_flat a i)
          done;
          pos := !pos + n)
        arrs;
      [ Value.VArr out ]
  | EUpdate { dst; slc; src } -> (
      let a = Value.copy_arr (lookup_arr env dst) in
      let offsets, logical_shape = slice_offsets env slc a.shape in
      check_slice_bounds dst offsets (Value.count a.shape);
      (match slc with
      | SLmad _ -> check_disjoint_offsets dst offsets
      | STriplet _ -> ());
      match src with
      | SrcScalar s ->
          let v = eval_atom env s in
          List.iter (fun o -> Value.set_flat a o v) offsets;
          [ Value.VArr a ]
      | SrcArr sv ->
          let s = lookup_arr env sv in
          if Value.count s.shape <> List.length offsets then
            err "interp: update size mismatch on %s (%d vs %d)" dst
              (Value.count s.shape) (List.length offsets);
          ignore logical_shape;
          List.iteri (fun i o -> Value.set_flat a o (Value.get_flat s i)) offsets;
          [ Value.VArr a ])
  | EMap { nest; body } ->
      let dims = List.map (fun (_, n) -> eval_idx env n) nest in
      let points = Value.indices dims in
      let results =
        List.map
          (fun point ->
            let env' =
              List.fold_left2
                (fun acc (v, _) i -> SM.add v (Value.VInt i) acc)
                env nest point
            in
            eval_block env' body)
          points
      in
      (* Assemble one output array per body result. *)
      let arity =
        match results with
        | r :: _ -> List.length r
        | [] -> (
            (* empty index space: infer arity from the body result list *)
            List.length body.res)
      in
      List.init arity (fun k ->
          let kth = List.map (fun r -> List.nth r k) results in
          match kth with
          | [] -> Value.VArr (Value.zeros F64 (dims @ [ 0 ]))
          | first :: _ ->
              let inner_shape, elt =
                match first with
                | Value.VArr a -> (a.shape, a.elt)
                | Value.VInt _ -> ([], I64)
                | Value.VFloat _ -> ([], F64)
                | Value.VBool _ -> ([], Bool)
                | Value.VMem _ -> err "interp: mapnest returning memory"
              in
              let out = Value.zeros elt (dims @ inner_shape) in
              let inner_count = Value.count inner_shape in
              List.iteri
                (fun i v ->
                  match v with
                  | Value.VArr a ->
                      for j = 0 to inner_count - 1 do
                        Value.set_flat out ((i * inner_count) + j)
                          (Value.get_flat a j)
                      done
                  | v -> Value.set_flat out i v)
                kth;
              Value.VArr out)
  | EReduce { op; ne; arr } ->
      let a = lookup_arr env arr in
      let acc = ref (eval_atom env ne) in
      for i = 0 to Value.count a.shape - 1 do
        acc := eval_bin op !acc (Value.get_flat a i)
      done;
      [ !acc ]
  | EArgmin arr ->
      let a = lookup_arr env arr in
      let n = Value.count a.shape in
      if n = 0 then err "interp: argmin of empty array";
      let best = ref (Value.to_float (Value.get_flat a 0)) in
      let besti = ref 0 in
      for i = 1 to n - 1 do
        let x = Value.to_float (Value.get_flat a i) in
        if x < !best then (
          best := x;
          besti := i)
      done;
      [ Value.VFloat !best; Value.VInt !besti ]
  | ELoop { params; var; bound; body } ->
      let n = eval_idx env bound in
      let init = List.map (fun (_, a) -> eval_atom env a) params in
      let rec go i vals =
        if i >= n then vals
        else
          let env' =
            List.fold_left2
              (fun acc (pe, _) v -> SM.add pe.pv v acc)
              env params vals
          in
          let env' = SM.add var (Value.VInt i) env' in
          go (i + 1) (eval_block env' body)
      in
      go 0 init
  | EIf { cond; tb; fb } ->
      if Value.to_bool (eval_atom env cond) then eval_block env tb
      else eval_block env fb
  | EAlloc _ ->
      incr mem_counter;
      [ Value.VMem !mem_counter ]

and eval_block env (b : block) : Value.t list =
  let env =
    List.fold_left
      (fun env s ->
        let vals = eval_exp env s.exp in
        if List.length vals <> List.length s.pat then
          err "interp: arity mismatch in %s" (Pretty.exp_to_string s.exp);
        List.fold_left2 (fun env pe v -> SM.add pe.pv v env) env s.pat vals)
      env b.stms
  in
  List.map (eval_atom env) b.res

(* Run a program on the given argument values (in parameter order). *)
let run (p : prog) (args : Value.t list) : Value.t list =
  if List.length args <> List.length p.params then
    err "interp: %s expects %d arguments" p.name (List.length p.params);
  let env =
    List.fold_left2
      (fun env pe v -> SM.add pe.pv v env)
      SM.empty p.params args
  in
  eval_block env p.body
