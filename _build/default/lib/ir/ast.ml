(* The core IR: a functional array language equivalent to the subset of
   Futhark's core IR used by the paper (section II-C).

   Parallelism is expressed with [EMap] ("mapnest": a perfect nest of
   parallel loops over an index space); sequencing with [ELoop]; arrays
   are created fresh by map, copy, iota, scratch, replicate and concat,
   and transformed for free (O(1)) by slicing, transposition, reshaping
   and reversal.  In-place updates [EUpdate] are the functional
   "A with [W] = X" form: semantically a copy of A with the slice
   replaced, operationally an in-place write justified by uniqueness.

   Memory is an *add-on* (section IV): statements may allocate memory
   blocks ([EAlloc]), and every array-typed pattern element may carry a
   memory annotation (block name + index function).  Deleting all
   [pmem] annotations and [EAlloc] statements leaves a valid purely
   functional program; the interpreter ignores them entirely. *)

module P = Symalg.Poly
module Ixfn = Lmads.Ixfn

type sct = I64 | F64 | Bool

type idx = P.t
(* Index/size expressions: polynomials over in-scope i64 variables. *)

type typ =
  | TScalar of sct
  | TArr of sct * idx list (* element type, symbolic shape *)
  | TMem (* a memory block *)

type atom = Var of string | Int of int | Float of float | Bool of bool

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Min
  | Max
  | And
  | Or

type cmpop = CEq | CLt | CLe

type unop = Neg | Sqrt | Exp | Log | Abs | Not | ToF64 | ToI64

(* ---------------------------------------------------------------- *)
(* Slices                                                            *)
(* ---------------------------------------------------------------- *)

type slice_dim =
  | SFix of idx (* fix the index: the dimension disappears *)
  | SRange of { start : idx; len : idx; step : idx }

type slice =
  | STriplet of slice_dim list (* per-dimension triplet slicing *)
  | SLmad of Lmads.Lmad.t
    (* generalized LMAD slice into the flat (row-major) index space of
       the array (section III-B) *)

(* ---------------------------------------------------------------- *)
(* Expressions, statements, blocks                                   *)
(* ---------------------------------------------------------------- *)

type update_src = SrcArr of string | SrcScalar of atom

type exp =
  | EAtom of atom
  | EBin of binop * atom * atom
  | ECmp of cmpop * atom * atom
  | EUn of unop * atom
  | EIdx of idx (* evaluate an index polynomial to an i64 *)
  | EIndex of string * idx list (* scalar array read *)
  | ESlice of string * slice (* O(1) change-of-layout view *)
  | ETranspose of string * int list (* dimension permutation *)
  | EReshape of string * idx list (* target shape *)
  | EReverse of string * int (* reverse one dimension *)
  | EIota of idx
  | EReplicate of idx list * atom
  | EScratch of sct * idx list (* fresh uninitialized array *)
  | ECopy of string (* fresh manifestation *)
  | EConcat of string list (* along dimension 0 *)
  | EUpdate of { dst : string; slc : slice; src : update_src }
  | EMap of { nest : (string * idx) list; body : block }
  | EReduce of { op : binop; ne : atom; arr : string }
  | EArgmin of string (* (value, index) of 1-D minimum *)
  | ELoop of {
      params : (pat_elem * atom) list; (* loop-carried values *)
      var : string; (* iteration variable *)
      bound : idx; (* iterates 0 .. bound-1 *)
      body : block;
    }
  | EIf of { cond : atom; tb : block; fb : block }
  | EAlloc of idx (* memory: size in elements (annotation-level) *)

and block = { stms : stm list; res : atom list }

and pat_elem = {
  pv : string;
  pt : typ;
  mutable pmem : mem_info option; (* memory add-on; None pre-memory *)
}

and mem_info = { block : string; ixfn : Ixfn.t }

and stm = {
  pat : pat_elem list;
  exp : exp;
  mutable last_uses : string list;
      (* arrays whose last (transitive) use is this statement; filled in
         by the last-use analysis, consumed by short-circuiting *)
}

type prog = {
  name : string;
  params : pat_elem list; (* scalars first by convention *)
  body : block;
  ret : typ list;
  ctx : Symalg.Prover.t;
      (* size assumptions (e.g. n = q*b + 1, q >= 2) available to the
         index analysis; dynamically checked by callers of the program *)
}

(* ---------------------------------------------------------------- *)
(* Constructors                                                      *)
(* ---------------------------------------------------------------- *)

let pat_elem ?mem pv pt = { pv; pt; pmem = mem }
let stm pat exp = { pat; exp; last_uses = [] }
let block stms res = { stms; res }

let i64 = TScalar I64
let f64 = TScalar F64
let boolt = TScalar Bool
let arr elt shape = TArr (elt, shape)

let var v = Var v

(* ---------------------------------------------------------------- *)
(* Small queries                                                     *)
(* ---------------------------------------------------------------- *)

let typ_rank = function TArr (_, shape) -> List.length shape | _ -> 0

let typ_shape = function TArr (_, shape) -> shape | _ -> []

let typ_elt = function
  | TArr (elt, _) -> Some elt
  | TScalar s -> Some s
  | TMem -> None

let is_array_typ = function TArr _ -> true | _ -> false

let atom_var = function Var v -> Some v | _ -> None

(* The logical shape produced by a slice of an array of [shape]. *)
let slice_shape slc shape =
  match slc with
  | STriplet sds ->
      assert (List.length sds = List.length shape);
      List.filter_map
        (function SFix _ -> None | SRange { len; _ } -> Some len)
        sds
  | SLmad l -> Lmads.Lmad.shape l

(* ---------------------------------------------------------------- *)
(* Free variables                                                    *)
(* ---------------------------------------------------------------- *)

module SS = Set.Make (String)

let fv_atom = function Var v -> SS.singleton v | _ -> SS.empty

let fv_idx (i : idx) = SS.of_list (P.vars i)

let fv_slice = function
  | STriplet sds ->
      List.fold_left
        (fun acc sd ->
          match sd with
          | SFix i -> SS.union acc (fv_idx i)
          | SRange { start; len; step } ->
              SS.union acc
                (SS.union (fv_idx start) (SS.union (fv_idx len) (fv_idx step))))
        SS.empty sds
  | SLmad l -> SS.of_list (Lmads.Lmad.vars l)

let rec fv_exp (e : exp) : SS.t =
  match e with
  | EAtom a -> fv_atom a
  | EBin (_, a, b) | ECmp (_, a, b) -> SS.union (fv_atom a) (fv_atom b)
  | EUn (_, a) -> fv_atom a
  | EIdx i -> fv_idx i
  | EIndex (v, idxs) ->
      List.fold_left
        (fun acc i -> SS.union acc (fv_idx i))
        (SS.singleton v) idxs
  | ESlice (v, slc) -> SS.add v (fv_slice slc)
  | ETranspose (v, _) | EReverse (v, _) | ECopy v | EArgmin v ->
      SS.singleton v
  | EReshape (v, shape) ->
      List.fold_left
        (fun acc i -> SS.union acc (fv_idx i))
        (SS.singleton v) shape
  | EIota i -> fv_idx i
  | EReplicate (shape, a) ->
      List.fold_left
        (fun acc i -> SS.union acc (fv_idx i))
        (fv_atom a) shape
  | EScratch (_, shape) ->
      List.fold_left (fun acc i -> SS.union acc (fv_idx i)) SS.empty shape
  | EConcat vs -> SS.of_list vs
  | EUpdate { dst; slc; src } ->
      let s =
        match src with SrcArr v -> SS.singleton v | SrcScalar a -> fv_atom a
      in
      SS.add dst (SS.union s (fv_slice slc))
  | EMap { nest; body } ->
      let bound = SS.of_list (List.map fst nest) in
      let counts =
        List.fold_left (fun acc (_, n) -> SS.union acc (fv_idx n)) SS.empty nest
      in
      SS.union counts (SS.diff (fv_block body) bound)
  | EReduce { ne; arr; _ } -> SS.add arr (fv_atom ne)
  | ELoop { params; var; bound; body } ->
      let inits =
        List.fold_left (fun acc (_, a) -> SS.union acc (fv_atom a)) SS.empty params
      in
      let bound_vars =
        SS.add var (SS.of_list (List.map (fun (pe, _) -> pe.pv) params))
      in
      SS.union inits (SS.union (fv_idx bound) (SS.diff (fv_block body) bound_vars))
  | EIf { cond; tb; fb } ->
      SS.union (fv_atom cond) (SS.union (fv_block tb) (fv_block fb))
  | EAlloc i -> fv_idx i

and fv_block (b : block) : SS.t =
  let bound, free =
    List.fold_left
      (fun (bound, free) s ->
        let f = SS.diff (fv_stm s) bound in
        (SS.union bound (SS.of_list (List.map (fun pe -> pe.pv) s.pat)),
         SS.union free f))
      (SS.empty, SS.empty) b.stms
  in
  let res =
    List.fold_left (fun acc a -> SS.union acc (fv_atom a)) SS.empty b.res
  in
  SS.union free (SS.diff res bound)

and fv_stm (s : stm) : SS.t =
  let mem_fv =
    List.fold_left
      (fun acc pe ->
        match pe.pmem with
        | None -> acc
        | Some { block; ixfn } ->
            SS.add block (SS.union acc (SS.of_list (Ixfn.vars ixfn))))
      SS.empty s.pat
  in
  SS.union (fv_exp s.exp) mem_fv

(* Variables *read* by an expression, excluding the update destination
   (which is consumed, not read, for liveness purposes)... the
   destination is in fact read too (unwritten elements persist), so it
   is included; callers that need the distinction use [consumed_by]. *)
let consumed_by = function
  | EUpdate { dst; _ } -> SS.singleton dst
  | ELoop { params; _ } ->
      (* loop-carried arrays are consumed (rebound each iteration) *)
      List.fold_left
        (fun acc (pe, a) ->
          match (pe.pt, a) with
          | TArr _, Var v -> SS.add v acc
          | _ -> acc)
        SS.empty params
  | _ -> SS.empty

(* ---------------------------------------------------------------- *)
(* Traversal: rewrite sub-blocks of an expression                     *)
(* ---------------------------------------------------------------- *)

let map_exp_blocks (f : block -> block) (e : exp) : exp =
  match e with
  | EMap m -> EMap { m with body = f m.body }
  | ELoop l -> ELoop { l with body = f l.body }
  | EIf i -> EIf { i with tb = f i.tb; fb = f i.fb }
  | e -> e

let rec map_blocks_stm (f : block -> block) (s : stm) : stm =
  { s with exp = map_exp_blocks (fun b -> f (map_blocks_block f b)) s.exp }

and map_blocks_block (f : block -> block) (b : block) : block =
  { b with stms = List.map (map_blocks_stm f) b.stms }

(* All statements, recursively (pre-order). *)
let rec all_stms_block (b : block) : stm list =
  List.concat_map
    (fun s ->
      s
      ::
      (match s.exp with
      | EMap { body; _ } -> all_stms_block body
      | ELoop { body; _ } -> all_stms_block body
      | EIf { tb; fb; _ } -> all_stms_block tb @ all_stms_block fb
      | _ -> []))
    b.stms

(* Count of statements (a proxy for program size in tests/benches). *)
let size_block b = List.length (all_stms_block b)
