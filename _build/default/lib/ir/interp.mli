(** The reference interpreter: purely functional semantics, memory
    annotations ignored.

    This is the ground truth all compiler passes are validated against:
    a transformed program must produce {!Value.approx_equal} results
    here AND on the memory-aware executor ({!Gpu.Exec}).  Every view
    materializes eagerly; performance is irrelevant.

    Dynamic checks: array accesses are bounds-checked, and LMAD-slice
    updates verify that their index sets are duplicate-free (the
    output-dependence check of section III-B). *)

exception Runtime_error of string

val run : Ast.prog -> Value.t list -> Value.t list
(** Evaluate a program on argument values in parameter order.
    @raise Runtime_error on arity/bounds/type violations. *)
