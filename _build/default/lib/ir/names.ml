(* Fresh name generation for IR variables.

   All compiler passes assume distinct binder names program-wide;
   [fresh] guarantees this by suffixing a global counter. *)

let counter = ref 0

let fresh base =
  incr counter;
  Printf.sprintf "%s_%d" base !counter

(* Reset for deterministic tests. *)
let reset () = counter := 0

(* The base of a generated name (text before the trailing counter). *)
let base name =
  match String.rindex_opt name '_' with
  | Some i when i > 0 && i < String.length name - 1 ->
      let suffix = String.sub name (i + 1) (String.length name - i - 1) in
      if String.for_all (fun c -> c >= '0' && c <= '9') suffix then
        String.sub name 0 i
      else name
  | _ -> name
