(* Pretty-printing of the IR, in a notation close to the paper's:

     let (x : [n][m]f64 @ x_mem -> 0 + {(n : m), (m : 1)}) = copy y

   Memory annotations print only when present, so the same printer
   serves the pure and the memory-augmented stages. *)

open Ast
module P = Symalg.Poly

let pp_sct ppf = function
  | I64 -> Fmt.string ppf "i64"
  | F64 -> Fmt.string ppf "f64"
  | Bool -> Fmt.string ppf "bool"

let pp_idx = P.pp

let pp_typ ppf = function
  | TScalar s -> pp_sct ppf s
  | TArr (s, shape) ->
      List.iter (fun d -> Fmt.pf ppf "[%a]" pp_idx d) shape;
      pp_sct ppf s
  | TMem -> Fmt.string ppf "mem"

let pp_atom ppf = function
  | Var v -> Fmt.string ppf v
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%gf" f
  | Bool b -> Fmt.bool ppf b

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Min -> "`min`"
  | Max -> "`max`"
  | And -> "&&"
  | Or -> "||"

let cmpop_str = function CEq -> "==" | CLt -> "<" | CLe -> "<="

let unop_str = function
  | Neg -> "neg"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Abs -> "abs"
  | Not -> "!"
  | ToF64 -> "f64"
  | ToI64 -> "i64"

let pp_slice_dim ppf = function
  | SFix i -> pp_idx ppf i
  | SRange { start; len; step } ->
      Fmt.pf ppf "%a :+ %a : %a" pp_idx start pp_idx len pp_idx step

let pp_slice ppf = function
  | STriplet sds -> Fmt.(list ~sep:comma pp_slice_dim) ppf sds
  | SLmad l -> Lmads.Lmad.pp ppf l

let pp_mem ppf = function
  | None -> ()
  | Some { block; ixfn } ->
      Fmt.pf ppf " @ %s -> %a" block Lmads.Ixfn.pp ixfn

let pp_pat_elem ppf pe =
  Fmt.pf ppf "%s : %a%a" pe.pv pp_typ pe.pt pp_mem pe.pmem

let pp_pat ppf = function
  | [ pe ] -> pp_pat_elem ppf pe
  | pes -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_pat_elem) pes

let rec pp_exp ppf = function
  | EAtom a -> pp_atom ppf a
  | EBin (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_atom a (binop_str op) pp_atom b
  | ECmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_atom a (cmpop_str op) pp_atom b
  | EUn (op, a) -> Fmt.pf ppf "%s %a" (unop_str op) pp_atom a
  | EIdx i -> Fmt.pf ppf "idx(%a)" pp_idx i
  | EIndex (v, idxs) -> Fmt.pf ppf "%s[%a]" v Fmt.(list ~sep:comma pp_idx) idxs
  | ESlice (v, slc) -> Fmt.pf ppf "%s[%a]" v pp_slice slc
  | ETranspose (v, perm) ->
      Fmt.pf ppf "transpose(%s, [%a])" v Fmt.(list ~sep:comma int) perm
  | EReshape (v, shape) ->
      Fmt.pf ppf "reshape(%s, [%a])" v Fmt.(list ~sep:comma pp_idx) shape
  | EReverse (v, d) -> Fmt.pf ppf "reverse(%s, %d)" v d
  | EIota i -> Fmt.pf ppf "iota %a" pp_idx i
  | EReplicate (shape, a) ->
      Fmt.pf ppf "replicate [%a] %a" Fmt.(list ~sep:comma pp_idx) shape pp_atom a
  | EScratch (s, shape) ->
      Fmt.pf ppf "scratch %a [%a]" pp_sct s Fmt.(list ~sep:comma pp_idx) shape
  | ECopy v -> Fmt.pf ppf "copy %s" v
  | EConcat vs -> Fmt.pf ppf "concat %a" Fmt.(list ~sep:sp string) vs
  | EUpdate { dst; slc; src } ->
      let pp_src ppf = function
        | SrcArr v -> Fmt.string ppf v
        | SrcScalar a -> pp_atom ppf a
      in
      Fmt.pf ppf "%s with [%a] = %a" dst pp_slice slc pp_src src
  | EMap { nest; body } ->
      Fmt.pf ppf "@[<v 2>mapnest (%a)@,%a@]"
        Fmt.(
          list ~sep:comma (fun ppf (v, n) -> pf ppf "%s < %a" v pp_idx n))
        nest pp_block body
  | EReduce { op; ne; arr } ->
      Fmt.pf ppf "reduce (%s) %a %s" (binop_str op) pp_atom ne arr
  | EArgmin v -> Fmt.pf ppf "argmin %s" v
  | ELoop { params; var; bound; body } ->
      Fmt.pf ppf "@[<v 2>loop (%a) = (%a) for %s < %a do@,%a@]"
        Fmt.(list ~sep:comma (fun ppf (pe, _) -> pp_pat_elem ppf pe))
        params
        Fmt.(list ~sep:comma (fun ppf (_, a) -> pp_atom ppf a))
        params var pp_idx bound pp_block body
  | EIf { cond; tb; fb } ->
      Fmt.pf ppf "@[<v 2>if %a@,@[<v 2>then@,%a@]@,@[<v 2>else@,%a@]@]"
        pp_atom cond pp_block tb pp_block fb
  | EAlloc size -> Fmt.pf ppf "alloc(%a)" pp_idx size

and pp_stm ppf s =
  let lu =
    if s.last_uses = [] then ""
    else Fmt.str " -- last use of: %s" (String.concat ", " s.last_uses)
  in
  Fmt.pf ppf "@[<hv 2>let %a =@ %a@]%s" pp_pat s.pat pp_exp s.exp lu

and pp_block ppf b =
  Fmt.pf ppf "@[<v>%a@,in (%a)@]"
    Fmt.(list ~sep:cut pp_stm)
    b.stms
    Fmt.(list ~sep:comma pp_atom)
    b.res

let pp_prog ppf (p : prog) =
  Fmt.pf ppf "@[<v 2>def %s (%a) : (%a) =@,%a@]" p.name
    Fmt.(list ~sep:comma pp_pat_elem)
    p.params
    Fmt.(list ~sep:comma pp_typ)
    p.ret pp_block p.body

let prog_to_string p = Fmt.str "%a" pp_prog p
let block_to_string b = Fmt.str "%a" pp_block b
let exp_to_string e = Fmt.str "%a" pp_exp e
