(** The compilation pipeline: memory introduction (section IV),
    allocation hoisting, last-use analysis, array short-circuiting
    (section V), and dead-allocation cleanup. *)

type compiled = {
  source : Ir.Ast.prog;  (** pristine, memory-agnostic *)
  unopt : Ir.Ast.prog;  (** memory-introduced + hoisted *)
  opt : Ir.Ast.prog;
      (** additionally short-circuited, dead allocations removed *)
  stats : Shortcircuit.stats;
  dead_allocs : int;  (** allocations eliminated by short-circuiting *)
  time_base : float;  (** seconds: memory introduction + hoisting *)
  time_sc : float;  (** seconds: the short-circuiting pass alone *)
}

val to_memory_ir : Ir.Ast.prog -> Ir.Ast.prog
(** Memory introduction + hoisting + last-use only (the "unoptimized"
    configuration of the paper's tables). *)

val compile : ?rounds:int -> Ir.Ast.prog -> compiled
(** Produce both configurations from a source program (which is cloned,
    never mutated), timing the passes for the section V-D comparison. *)
