(* Alias analysis: which array variables may share memory.

   Two flavours are needed by the paper's passes:

   - *value aliasing* (used by last-use, footnote 18): slicing,
     transposition, reshaping, reversing and variable copies alias their
     operand; [EUpdate] results alias the consumed destination (same
     memory); [EIf]/[ELoop] results alias whatever the branches/body
     return.  Fresh-array constructors (map, copy, iota, scratch,
     replicate, concat) alias nothing.

   The analysis computes, per block, a map var -> alias class (a set of
   variables, closed transitively).  Classes are global across nested
   blocks, which is conservative and sound. *)

open Ir.Ast
module SM = Map.Make (String)
module SS = Ir.Ast.SS

type t = SS.t SM.t

let closure (m : t) v =
  match SM.find_opt v m with Some s -> SS.add v s | None -> SS.singleton v

let add_alias (m : t) v targets =
  let cls =
    SS.fold (fun w acc -> SS.union acc (closure m w)) targets (SS.singleton v)
  in
  (* register the extended class for every member *)
  SS.fold
    (fun w acc -> SM.add w (SS.remove w cls) acc)
    cls m

(* Variables the results of [e] alias (one set per result). *)
let result_aliases (e : exp) : SS.t list option =
  match e with
  | EAtom (Var v) -> Some [ SS.singleton v ]
  | ESlice (v, _) | ETranspose (v, _) | EReshape (v, _) | EReverse (v, _) ->
      Some [ SS.singleton v ]
  | EUpdate { dst; _ } -> Some [ SS.singleton dst ]
  | EIf { tb; fb; _ } ->
      Some
        (List.map2
           (fun a b ->
             SS.union
               (Option.fold ~none:SS.empty ~some:SS.singleton (atom_var a))
               (Option.fold ~none:SS.empty ~some:SS.singleton (atom_var b)))
           tb.res fb.res)
  | ELoop { params; body; _ } ->
      (* The loop result aliases the initial value and whatever the body
         returns (conservatively). *)
      Some
        (List.map2
           (fun (_, init) r ->
             SS.union
               (Option.fold ~none:SS.empty ~some:SS.singleton (atom_var init))
               (Option.fold ~none:SS.empty ~some:SS.singleton (atom_var r)))
           params body.res)
  | _ -> None

let rec analyze_block (m : t) (b : block) : t =
  List.fold_left analyze_stm m b.stms

and analyze_stm (m : t) (s : stm) : t =
  (* descend first so inner aliases (loop body results) are known *)
  let m =
    match s.exp with
    | EMap { body; _ } -> analyze_block m body
    | ELoop { params; body; _ } ->
        (* loop params alias their inits and the body results *)
        let m = analyze_block m body in
        List.fold_left
          (fun m ((pe, init), r) ->
            if is_array_typ pe.pt then
              let tgts =
                SS.union
                  (Option.fold ~none:SS.empty ~some:SS.singleton
                     (atom_var init))
                  (Option.fold ~none:SS.empty ~some:SS.singleton (atom_var r))
              in
              add_alias m pe.pv tgts
            else m)
          m
          (List.combine params body.res)
    | EIf { tb; fb; _ } -> analyze_block (analyze_block m tb) fb
    | _ -> m
  in
  match result_aliases s.exp with
  | None -> m
  | Some sets ->
      if List.length sets <> List.length s.pat then m
      else
        List.fold_left2
          (fun m pe tgts ->
            if is_array_typ pe.pt && not (SS.is_empty tgts) then
              add_alias m pe.pv tgts
            else m)
          m s.pat sets

(* Alias classes for a whole program. *)
let of_prog (p : prog) : t = analyze_block SM.empty p.body
