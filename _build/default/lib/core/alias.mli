(** Value-alias analysis: which array variables may share memory.

    Views (slices, transposition, reshaping, reversal) alias their
    operand; update results alias the consumed destination; [if]/[loop]
    results alias what the branches/body return.  Classes are closed
    transitively and global across nested blocks (conservative). *)

module SM : Map.S with type key = string

type t = Ir.Ast.SS.t SM.t

val closure : t -> string -> Ir.Ast.SS.t
(** The full alias class of a variable (including itself). *)

val of_prog : Ir.Ast.prog -> t
