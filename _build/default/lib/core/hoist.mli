(** Allocation hoisting (property 2 of section V).

    Short-circuiting needs the destination block to be allocated (in
    scope) at the candidate's creation point.  This pass floats
    [EAlloc] statements - with the pure scalar statements their sizes
    depend on - to the top of their blocks, and out of [if] branches.
    Allocations are deliberately {e not} hoisted out of loop bodies: a
    loop parameter carrying the previous iteration's result requires a
    fresh block per iteration (double buffering, footnote 23). *)

val hoist : Ir.Ast.prog -> Ir.Ast.prog
