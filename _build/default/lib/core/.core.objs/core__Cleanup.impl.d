lib/core/cleanup.ml: Ir List
