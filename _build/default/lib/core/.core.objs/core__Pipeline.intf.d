lib/core/pipeline.mli: Ir Shortcircuit
