lib/core/cleanup.mli: Ir
