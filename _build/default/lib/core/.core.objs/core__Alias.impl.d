lib/core/alias.ml: Ir List Map Option String
