lib/core/memintro.mli: Ir
