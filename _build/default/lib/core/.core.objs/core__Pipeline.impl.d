lib/core/pipeline.ml: Cleanup Hoist Ir Lastuse Memintro Shortcircuit Unix
