lib/core/memintro.ml: Fmt Fun Ir List Lmads Map String Symalg
