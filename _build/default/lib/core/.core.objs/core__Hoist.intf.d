lib/core/hoist.mli: Ir
