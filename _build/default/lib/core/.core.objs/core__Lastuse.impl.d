lib/core/lastuse.ml: Alias Hashtbl Ir List
