lib/core/lastuse.mli: Alias Ir
