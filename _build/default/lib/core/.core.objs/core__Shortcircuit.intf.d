lib/core/shortcircuit.mli: Ir
