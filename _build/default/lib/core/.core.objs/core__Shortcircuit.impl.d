lib/core/shortcircuit.ml: Alias Array Fmt Hashtbl Ir Lastuse List Lmads Map Option String Symalg Sys
