lib/core/alias.mli: Ir Map
