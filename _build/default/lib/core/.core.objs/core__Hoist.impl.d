lib/core/hoist.ml: Ir List
