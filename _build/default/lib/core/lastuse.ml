(* Last-use analysis (section V, footnote 18).

   Annotates each statement with the arrays whose last use it is: after
   a statement marked [last_uses = [b]], neither [b] nor any array in an
   alias relation with [b] is used on any execution path.

   The analysis walks each block backwards, carrying the set of
   variables used later.  Uses inside a compound statement (if, loop,
   mapnest) count as uses at the compound statement itself; in addition,
   inside loop and mapnest bodies every array that is free in the body
   (or a loop parameter) is conservatively treated as used-after at all
   points of the body, because another iteration may read it - while
   body-local arrays still get precise last-use points (paper Fig. 5b:
   the iteration input [as] is lastly used at [f as] inside the body). *)

open Ir.Ast
module SS = Ir.Ast.SS

(* All array variables used (read) by a statement, including uses in
   nested blocks, with aliasing applied. *)
let uses_of_stm aliases (s : stm) : SS.t =
  let raw = fv_stm s in
  SS.fold (fun v acc -> SS.union acc (Alias.closure aliases v)) raw SS.empty

let restrict_arrays types (ss : SS.t) =
  SS.filter
    (fun v ->
      match Hashtbl.find_opt types v with
      | Some t -> is_array_typ t
      | None -> false)
    ss

(* Record binder types for array filtering. *)
let rec record_types types (b : block) =
  List.iter
    (fun s ->
      List.iter (fun pe -> Hashtbl.replace types pe.pv pe.pt) s.pat;
      match s.exp with
      | EMap { body; nest } ->
          List.iter
            (fun (v, _) -> Hashtbl.replace types v (TScalar I64))
            nest;
          record_types types body
      | ELoop { params; body; var; _ } ->
          Hashtbl.replace types var (TScalar I64);
          List.iter (fun (pe, _) -> Hashtbl.replace types pe.pv pe.pt) params;
          record_types types body
      | EIf { tb; fb; _ } ->
          record_types types tb;
          record_types types fb
      | _ -> ())
    b.stms

(* Annotate [b] in place.  [used_after] is the set of (alias-closed)
   array variables used after the block.  Returns the set of arrays the
   block itself uses (alias-closed). *)
let rec annotate_block aliases types ~used_after (b : block) : SS.t =
  let res_uses =
    restrict_arrays types
      (List.fold_left
         (fun acc a ->
           match atom_var a with
           | Some v -> SS.union acc (Alias.closure aliases v)
           | None -> acc)
         SS.empty b.res)
  in
  let rec go later = function
    | [] -> later
    | s :: above_rev ->
        (* [later] = arrays used strictly after s (within or after the
           block).  Process s: descend, then compute its last uses. *)
        let uses = restrict_arrays types (uses_of_stm aliases s) in
        annotate_sub aliases types ~used_after:later s;
        s.last_uses <- SS.elements (SS.diff uses later);
        go (SS.union later uses) above_rev
  in
  go (SS.union used_after res_uses) (List.rev b.stms)

and annotate_sub aliases types ~used_after (s : stm) : unit =
  match s.exp with
  | EIf { tb; fb; _ } ->
      ignore (annotate_block aliases types ~used_after tb);
      ignore (annotate_block aliases types ~used_after fb)
  | ELoop { params; body; _ } ->
      (* Arrays free in the body or loop-carried are used by subsequent
         iterations: conservatively used-after everywhere inside. *)
      let free =
        restrict_arrays types
          (SS.fold
             (fun v acc -> SS.union acc (Alias.closure aliases v))
             (fv_block body) SS.empty)
      in
      let carried =
        restrict_arrays types
          (List.fold_left
             (fun acc (pe, _) ->
               SS.union acc (Alias.closure aliases pe.pv))
             SS.empty params)
      in
      ignore
        (annotate_block aliases types
           ~used_after:(SS.union used_after (SS.union free carried))
           body)
  | EMap { body; _ } ->
      (* Parallel iterations: free arrays are used by sibling threads. *)
      let free =
        restrict_arrays types
          (SS.fold
             (fun v acc -> SS.union acc (Alias.closure aliases v))
             (fv_block body) SS.empty)
      in
      ignore
        (annotate_block aliases types ~used_after:(SS.union used_after free)
           body)
  | _ -> ()

(* Annotate a whole program in place; returns the alias map used. *)
let annotate (p : prog) : Alias.t =
  let aliases = Alias.of_prog p in
  let types = Hashtbl.create 64 in
  List.iter (fun pe -> Hashtbl.replace types pe.pv pe.pt) p.params;
  record_types types p.body;
  ignore (annotate_block aliases types ~used_after:SS.empty p.body);
  aliases
