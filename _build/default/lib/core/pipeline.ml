(* The compilation pipeline, mirroring the memory stages of the paper's
   Futhark fork:

     source IR
       -> memory introduction (section IV)
       -> allocation hoisting (property 2 of section V)
       -> last-use analysis (footnote 18)
       -> array short-circuiting (section V)

   [compile] produces both the unoptimized (memory-introduced, hoisted)
   and the optimized (short-circuited) variants of a program, plus pass
   statistics and compile times, so benchmarks can compare the two and
   reproduce the compile-time-overhead observation of section V-D. *)

open Ir.Ast

type compiled = {
  source : prog; (* pristine, memory-agnostic *)
  unopt : prog; (* memory-introduced + hoisted *)
  opt : prog; (* additionally short-circuited + dead allocs removed *)
  stats : Shortcircuit.stats;
  dead_allocs : int; (* allocations eliminated by short-circuiting *)
  time_base : float; (* seconds: memory intro + hoisting *)
  time_sc : float; (* seconds: short-circuiting pass alone *)
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Memory introduction + hoisting, no short-circuiting. *)
let to_memory_ir (p : prog) : prog =
  let p = Memintro.introduce (Ir.Clone.clone_prog p) in
  let p = Hoist.hoist p in
  ignore (Lastuse.annotate p);
  p

let compile ?(rounds = 2) (p : prog) : compiled =
  let unopt, time_base = timed (fun () -> to_memory_ir p) in
  let opt_base, _ = timed (fun () -> to_memory_ir p) in
  let (opt, stats), time_sc =
    timed (fun () -> Shortcircuit.optimize ~rounds opt_base)
  in
  let opt, dead_allocs = Cleanup.run opt in
  { source = p; unopt; opt; stats; dead_allocs; time_base; time_sc }
