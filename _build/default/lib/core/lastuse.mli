(** Last-use analysis (section V, footnote 18).

    Annotates each statement (its mutable [last_uses] field) with the
    arrays whose last use it is: after such a statement, neither the
    array nor anything in an alias relation with it is used on any
    execution path.  Uses inside compound statements count at the
    compound statement; arrays free in loop/mapnest bodies are
    conservatively alive throughout the body (another iteration may
    read them), while body-local arrays get precise in-body points
    (Fig. 5b's [as] is lastly used at [f as] inside the loop). *)

val annotate : Ir.Ast.prog -> Alias.t
(** Annotate in place; returns the alias classes used. *)
