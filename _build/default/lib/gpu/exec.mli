(** The memory-aware executor: runs memory-annotated programs against
    the GPU cost model.

    Arrays are (block, concrete index function) pairs; change-of-layout
    operations are free; copies at updates, concats, [copy] and mapnest
    result writes are {e elided} whenever the source already lives at
    the destination location - precisely what short-circuiting arranges.
    Full mode computes real values (validated against the reference
    interpreter); cost-only mode runs control flow and sizes exactly but
    samples mapnest bodies at the index-space midpoint and long loops at
    Simpson points, enabling paper-scale datasets.

    The traffic model charges every in-kernel read/write 8 bytes, with
    two locality refinements: a thread's re-reads of locations it wrote
    itself are free (registers/shared memory), and a kernel's total DRAM
    reads from one block are capped at the block's footprint (perfect
    L2 within a launch). *)

exception Exec_error of string

type mode = Full | Cost_only

type report = {
  results : Ir.Value.t list;
      (** program results; shape-only shells in cost-only mode *)
  counters : Device.counters;
}

val run : ?mode:mode -> Ir.Ast.prog -> Ir.Value.t list -> report
(** Execute a memory-annotated program on the given arguments.
    @raise Exec_error on missing annotations or out-of-bounds accesses
    (full mode checks bounds on every access). *)

val time : Device.t -> report -> float
(** Simulated time of a completed run on a device profile. *)
