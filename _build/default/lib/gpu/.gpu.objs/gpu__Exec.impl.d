lib/gpu/exec.ml: Array Device Float Fmt Hashtbl Ir List Lmads Map Printf String Symalg
