lib/gpu/device.ml: Float Fmt
