lib/gpu/exec.mli: Device Ir
