(** Anti-unification (least general generalization) of index functions
    (section IV-C).

    When the branches of an [if] (or a loop's initializer and body
    result) return arrays with different index functions, the enclosing
    binding takes their lgg: components on which the two sides agree
    are kept, every disagreement becomes a fresh existential variable,
    and each side additionally returns its witnesses.

    The paper's example: the lgg of [R(n,m) = 0 + {(n:m)(m:1)}] and
    [C(n,m) = 0 + {(n:1)(m:n)}] is [0 + {(n:a)(m:b)}] with
    [(a,b) = (m,1)] resp. [(1,n)]. *)

module P = Symalg.Poly

type binding = {
  exist : string;  (** the fresh existential variable *)
  left : P.t;  (** its witness in the left input *)
  right : P.t;  (** its witness in the right input *)
}

type result = { ixfn : Ixfn.t; bindings : binding list }

val ixfns : ?prefix:string -> Ixfn.t -> Ixfn.t -> result option
(** The lgg of two index functions; [None] when their chains have
    different lengths or ranks disagree (the caller then normalizes
    with copies, as the paper does).  Equal (left, right) disagreement
    pairs share one existential. *)
