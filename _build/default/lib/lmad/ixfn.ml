(* Index functions: the mapping from array indices to flat offsets in a
   memory block (section IV-A/IV-B).

   An index function is a nonempty chain of LMADs.  The head is the
   index-space side: its rank and cardinals are the logical shape of the
   array.  Applying an index works as in Fig. 3 of the paper: apply the
   head to the index to obtain an intermediate flat offset, unrank that
   offset with respect to the next LMAD's cardinals (row-major), apply
   that LMAD, and so on; the final result is the offset into memory.

   Most arrays have a single-LMAD index function; extra links appear
   only for reshapes that a single LMAD cannot express (e.g. flattening
   a column-major matrix), and unranking then costs a division and a
   modulo per link at run time - which is why the compiler avoids them. *)

module P = Symalg.Poly
module Pr = Symalg.Prover

type t = { chain : Lmad.t list (* nonempty; head = index-space side *) }

let of_lmad l = { chain = [ l ] }

let of_chain = function
  | [] -> invalid_arg "Ixfn.of_chain: empty chain"
  | ls -> { chain = ls }

let chain t = t.chain

let head t =
  match t.chain with l :: _ -> l | [] -> assert false

let is_single t = match t.chain with [ _ ] -> true | _ -> false

let as_single t = match t.chain with [ l ] -> Some l | _ -> None

let row_major ?off shp = of_lmad (Lmad.row_major ?off shp)
let col_major ?off shp = of_lmad (Lmad.col_major ?off shp)

let rank t = Lmad.rank (head t)
let shape t = Lmad.shape (head t)

let map_head f t =
  match t.chain with
  | l :: rest -> { chain = f l :: rest }
  | [] -> assert false

(* ---------------------------------------------------------------- *)
(* Change-of-layout operations: all act on the head LMAD.            *)
(* ---------------------------------------------------------------- *)

let permute perm t = map_head (Lmad.permute perm) t
let transpose t = map_head Lmad.transpose t
let reverse k t = map_head (Lmad.reverse k) t
let slice sl t = map_head (Lmad.slice sl) t

(* A generalized LMAD slice applies to the *flat* view of the array:
   flatten the head first (possible iff the head is flattenable; if the
   array is fresh/row-major it always is), then compose. *)
let lmad_slice ctx ~slc t =
  match Lmad.flatten_all ctx (head t) with
  | Some flat -> Some (map_head (fun _ -> Lmad.lmad_slice ~slc flat) t)
  | None -> None

(* Reshape to [new_shape].  First try to express the reshape on the head
   LMAD itself (merging/splitting dimensions); if impossible, prepend a
   fresh row-major LMAD over the new shape, whose application is
   unranked into the old head (Fig. 3). *)
let reshape ctx new_shape t =
  let hd = head t in
  let direct =
    (* A reshape is expressible on one LMAD iff the head fully flattens
       (row-major-compatible layout); the flat dimension is then split
       back into the new shape from the left. *)
    match Lmad.flatten_all ctx hd with
    | Some flat ->
        let rec build l = function
          | [] | [ _ ] -> l
          | outer :: rest ->
              let inner_total = P.prod rest in
              let k = Lmad.rank l - 1 in
              build (Lmad.unflatten_dim k ~outer ~inner:inner_total l) rest
        in
        Some (build flat new_shape)
    | None -> None
  in
  match direct with
  | Some l -> { chain = l :: List.tl t.chain }
  | None ->
      (* Fall back to a multi-LMAD chain. *)
      let fresh = Lmad.row_major new_shape in
      { chain = fresh :: t.chain }

(* ---------------------------------------------------------------- *)
(* Application                                                       *)
(* ---------------------------------------------------------------- *)

(* Symbolic application is only defined for single-LMAD index functions
   (unranking needs division, which polynomials lack). *)
let apply_sym t idxs =
  match t.chain with
  | [ l ] -> Some (Lmad.apply l idxs)
  | _ -> None

(* Row-major unranking of flat offset [o] w.r.t. concrete [shape]. *)
let unrank o shape =
  let rec go o = function
    | [] -> []
    | [ _ ] -> [ o ]
    | _ :: rest ->
        let inner = List.fold_left ( * ) 1 rest in
        (o / inner) :: go (o mod inner) rest
  in
  go o shape

let apply_int (env : string -> int) t (idxs : int list) : int =
  match t.chain with
  | [] -> assert false
  | first :: rest ->
      let o = ref (Lmad.apply_int env first idxs) in
      List.iter
        (fun l ->
          let shp = List.map (P.eval env) (Lmad.shape l) in
          let digits = unrank !o shp in
          o := Lmad.apply_int env l digits)
        rest;
      !o

(* ---------------------------------------------------------------- *)
(* Queries, substitution                                             *)
(* ---------------------------------------------------------------- *)

let equal t1 t2 =
  List.length t1.chain = List.length t2.chain
  && List.for_all2 Lmad.equal t1.chain t2.chain

let is_direct ctx t =
  match t.chain with [ l ] -> Lmad.is_direct ctx l | _ -> false

(* Contiguity: the index function touches a dense interval of memory
   starting at its offset.  Sufficient check: single row-major LMAD. *)
let is_contiguous ctx t =
  match t.chain with
  | [ l ] -> (
      match Lmad.flatten_all ctx l with
      | Some flat -> (
          match Lmad.dims flat with
          | [ d ] -> Pr.prove_eq ctx d.Lmad.s P.one
          | [] -> true
          | _ -> false)
      | None -> false)
  | _ -> false

let map_polys f t = { chain = List.map (Lmad.map_polys f) t.chain }
let subst v by t = map_polys (P.subst v by) t
let subst_map env t = map_polys (P.subst_map env) t

let subst_fixpoint env t =
  { chain = List.map (Lmad.subst_fixpoint env) t.chain }

let vars t =
  List.sort_uniq String.compare (List.concat_map Lmad.vars t.chain)

(* Number of elements addressed (product of head cardinals). *)
let card t = Lmad.card (head t)

(* ---------------------------------------------------------------- *)
(* The abstract set of memory offsets this index function (optionally
   restricted by a slice) can touch; Top when inexpressible
   (footnote 26: multi-LMAD index functions are overestimated).       *)
(* ---------------------------------------------------------------- *)

let accessed_set t : Lmad.t option =
  match t.chain with [ l ] -> Some l | _ -> None

let pp ppf t =
  match t.chain with
  | [ l ] -> Lmad.pp ppf l
  | ls -> Fmt.pf ppf "@[<h>%a@]" Fmt.(list ~sep:(any " o ") Lmad.pp) (List.rev ls)

let to_string t = Fmt.str "%a" pp t
