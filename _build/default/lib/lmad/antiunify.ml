(* Anti-unification (least general generalization) of index functions
   (section IV-C).

   When the two branches of an [if] (or the initializer and body result
   of a [loop]) return arrays with different index functions, the
   pattern of the enclosing statement must bind a single index function
   valid for both.  The lgg keeps the components on which the two sides
   agree and replaces every disagreement with a fresh existential
   variable; the branches then additionally return the concrete values
   of those variables.

   Example (the paper's):
     lgg of  0 + {(n : m)(m : 1)}  and  0 + {(n : 1)(m : n)}
     is      0 + {(n : a)(m : b)}  with (a, b) = (m, 1) resp. (1, n). *)

module P = Symalg.Poly

type binding = {
  exist : string; (* the fresh existential variable *)
  left : P.t; (* its value in the left branch *)
  right : P.t; (* its value in the right branch *)
}

type result = { ixfn : Ixfn.t; bindings : binding list }

let counter = ref 0

let fresh_name prefix =
  incr counter;
  Printf.sprintf "%s%d" prefix !counter

(* Anti-unify two polynomials: equal ones generalize to themselves,
   different ones to a fresh variable.  Reuses an existing binding when
   the same (left, right) pair was seen before, so e.g. two dimensions
   that differ in the same way share one existential. *)
let au_poly ~prefix bindings (p1 : P.t) (p2 : P.t) =
  if P.equal p1 p2 then (p1, bindings)
  else
    match
      List.find_opt
        (fun b -> P.equal b.left p1 && P.equal b.right p2)
        bindings
    with
    | Some b -> (P.var b.exist, bindings)
    | None ->
        let v = fresh_name prefix in
        (P.var v, { exist = v; left = p1; right = p2 } :: bindings)

let au_lmad ~prefix bindings (l1 : Lmad.t) (l2 : Lmad.t) :
    (Lmad.t * binding list) option =
  if Lmad.rank l1 <> Lmad.rank l2 then None
  else
    let off, bindings =
      au_poly ~prefix bindings (Lmad.offset l1) (Lmad.offset l2)
    in
    let dims, bindings =
      List.fold_left2
        (fun (acc, bindings) d1 d2 ->
          let n, bindings = au_poly ~prefix bindings d1.Lmad.n d2.Lmad.n in
          let s, bindings = au_poly ~prefix bindings d1.Lmad.s d2.Lmad.s in
          (Lmad.dim n s :: acc, bindings))
        ([], bindings) (Lmad.dims l1) (Lmad.dims l2)
    in
    Some (Lmad.make off (List.rev dims), bindings)

(* Anti-unify two index functions.  Fails (None) when the chains have
   different lengths (the paper inserts copies to normalize in that
   case) or ranks disagree. *)
let ixfns ?(prefix = "ext_") (t1 : Ixfn.t) (t2 : Ixfn.t) : result option =
  let c1 = Ixfn.chain t1 and c2 = Ixfn.chain t2 in
  if List.length c1 <> List.length c2 then None
  else
    let rec go bindings acc = function
      | [] -> Some (List.rev acc, bindings)
      | (l1, l2) :: rest -> (
          match au_lmad ~prefix bindings l1 l2 with
          | Some (l, bindings) -> go bindings (l :: acc) rest
          | None -> None)
    in
    match go [] [] (List.combine c1 c2) with
    | Some (chain, bindings) ->
        Some { ixfn = Ixfn.of_chain chain; bindings = List.rev bindings }
    | None -> None
