(** Index functions: the map from array indices to flat memory offsets
    (section IV-A/IV-B).

    An index function is a nonempty chain of LMADs, head = index-space
    side.  Application follows Fig. 3: apply the head, unrank the result
    (row-major) with respect to the next LMAD's cardinals, apply it, and
    so on.  Most arrays have single-LMAD index functions; extra links
    appear only for reshapes a single LMAD cannot express (e.g.
    flattening a column-major matrix) and cost a division per link at
    run time. *)

module P = Symalg.Poly
module Pr = Symalg.Prover

type t

val of_lmad : Lmad.t -> t

val of_chain : Lmad.t list -> t
(** Head first.  @raise Invalid_argument on the empty list. *)

val chain : t -> Lmad.t list
val head : t -> Lmad.t
val is_single : t -> bool
val as_single : t -> Lmad.t option

val row_major : ?off:P.t -> P.t list -> t
val col_major : ?off:P.t -> P.t list -> t
val rank : t -> int
val shape : t -> P.t list

(** {1 Change-of-layout operations (act on the head)} *)

val permute : int list -> t -> t
val transpose : t -> t
val reverse : int -> t -> t
val slice : Lmad.slice_dim list -> t -> t

val lmad_slice : Pr.t -> slc:Lmad.t -> t -> t option
(** Generalized slice over the flat view of the array; requires the head
    to flatten (always true for fresh row-major arrays). *)

val reshape : Pr.t -> P.t list -> t -> t
(** Reshape to the given shape, on the head LMAD when its layout
    permits, otherwise by prepending a fresh row-major link (Fig. 3's
    multi-LMAD case). *)

(** {1 Application} *)

val apply_sym : t -> P.t list -> P.t option
(** Symbolic application; defined only for single-LMAD chains. *)

val apply_int : (string -> int) -> t -> int list -> int
(** Concrete application with unranking across the chain. *)

val unrank : int -> int list -> int list
(** Row-major unranking of a flat offset w.r.t. a concrete shape. *)

(** {1 Queries and substitution} *)

val equal : t -> t -> bool
val is_direct : Pr.t -> t -> bool
val is_contiguous : Pr.t -> t -> bool
val map_polys : (P.t -> P.t) -> t -> t
val subst : string -> P.t -> t -> t
val subst_map : P.t P.SM.t -> t -> t
val subst_fixpoint : P.t P.SM.t -> t -> t
val vars : t -> string list
val card : t -> P.t

val accessed_set : t -> Lmad.t option
(** The abstract set of offsets this index function can address: its
    LMAD when single, [None] for chains (overestimated to Top by
    clients, footnote 26). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
