(** Statically checking non-overlap of a pair of LMADs (section V-C).

    Implements the paper's Non-Overlap theorem: both LMADs are converted
    to sums of strided intervals over a matching stride basis by
    distributing the terms of the offset difference positively across
    dimensions (footnote 27); the sets are disjoint when both sums have
    pairwise non-overlapping dimensions and some dimension's intervals
    are provably disjoint.  Overlapping dimensions are handled by the
    splitting heuristic of Fig. 8 (last point peeled off and
    redistributed), recursively over the cross product of the splits.

    The test is {e sufficient}: [true] implies the point sets are
    disjoint under every assignment satisfying the prover context;
    [false] means "could not prove". *)

module P = Symalg.Poly
module Pr = Symalg.Prover

type interval = { lo : P.t; hi : P.t; stride : P.t }
(** A strided interval [\[lo..hi\] * stride] with [lo >= 0] invariant. *)

type sum_of_intervals = interval list

val disjoint : ?depth:int -> ?budget:float -> Pr.t -> Lmad.t -> Lmad.t -> bool
(** [disjoint ctx l1 l2] - the sufficient non-overlap test.  [depth]
    bounds the Fig. 8 splitting recursion (default 3; 0 disables
    splitting, leaving the plain per-set condition); [budget] is the
    proof deadline in CPU seconds handed to {!Symalg.Prover} (timeouts
    answer [false], conservatively). *)

(**/**)

(* Exposed for white-box tests. *)
val sort_strides : Pr.t -> P.t list -> P.t list option
val find_stride : Pr.t -> P.t -> P.t list -> P.t option
val merge_bases : Pr.t -> P.t list -> P.t list -> P.t list option
val to_intervals : Pr.t -> Lmad.t -> P.t list -> sum_of_intervals option

type distribution =
  | Distributed of sum_of_intervals * sum_of_intervals
  | Residue_disjoint
  | Dist_fail

val strides_gcd : sum_of_intervals -> int
val distribute :
  Pr.t -> P.t -> sum_of_intervals -> sum_of_intervals -> distribution

val first_overlapping_dim : Pr.t -> sum_of_intervals -> int option
val dims_nonoverlapping : Pr.t -> sum_of_intervals -> bool
val exists_disjoint_dim : Pr.t -> sum_of_intervals -> sum_of_intervals -> bool
val is_empty : Pr.t -> sum_of_intervals -> bool
val split_overlapping : Pr.t -> sum_of_intervals -> sum_of_intervals list option
val disjoint_sums : Pr.t -> int -> sum_of_intervals -> sum_of_intervals -> bool
val ascending : sum_of_intervals -> sum_of_intervals
val pp_interval : Format.formatter -> interval -> unit
val pp_sum : Format.formatter -> sum_of_intervals -> unit
