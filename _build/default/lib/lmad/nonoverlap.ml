(* Statically checking non-overlap of a pair of LMADs (section V-C).

   The test follows the paper's Non-Overlap theorem: convert both LMADs
   to sums of strided intervals over a *matching* stride basis, with all
   lower bounds nonnegative, by distributing the terms of the offset
   difference positively across the dimensions (footnote 27).  Then

     I1 cap I2 = empty

   holds if (a) both sums have pairwise "non-overlapping dimensions",
   i.e. for every i (ascending stride order)

     s_i > sum_{j<i} u_j * s_j          (checked per set)

   and (b) some dimension has disjoint intervals.  When (a) fails, the
   offending inner dimension is split into "all but the last point" and
   "the last point" (whose contribution is redistributed across the
   other dimensions), and the test recurses on the cross product of the
   splits (Fig. 8), up to a fixed depth.

   Soundness argument for (a)+(b): if x lies in both sets, subtract the
   two digit decompositions and consider the highest differing digit d;
   per-set condition (a) bounds the carry from lower digits of either
   decomposition strictly below s_d (using l_j >= 0), contradicting
   equality; hence decompositions agree digit-wise, contradicting (b).

   The test is *sufficient*: [true] implies disjointness under every
   assignment satisfying the prover context; [false] means unknown. *)

module P = Symalg.Poly
module Pr = Symalg.Prover

type interval = {
  lo : P.t; (* inclusive; invariant: provably >= 0 *)
  hi : P.t; (* inclusive *)
  stride : P.t; (* provably > 0, or exactly 1 *)
}

type sum_of_intervals = interval list (* sorted by descending stride *)

let pp_interval ppf iv =
  Fmt.pf ppf "[%a..%a]*%a" P.pp iv.lo P.pp iv.hi P.pp iv.stride

let pp_sum ppf s = Fmt.(list ~sep:(any " + ") pp_interval) ppf s

(* ---------------------------------------------------------------- *)
(* Stride bases                                                      *)
(* ---------------------------------------------------------------- *)

(* Sort strides descending; requires the prover to order each adjacent
   pair.  Returns None when two strides are incomparable. *)
let sort_strides ctx (ss : P.t list) : P.t list option =
  let exception Incomparable in
  try
    Some
      (List.sort
         (fun a b ->
           if Pr.prove_eq ctx a b then 0
           else if Pr.prove_gt ctx a b then -1
           else if Pr.prove_lt ctx a b then 1
           else raise Incomparable)
         ss)
  with Incomparable -> None

let find_stride ctx s basis =
  List.find_opt (fun s' -> Pr.prove_eq ctx s s') basis

(* The union of the strides of both LMADs, deduplicated by provable
   equality, sorted descending.  All strides are rewritten with the
   context equalities first so that syntactically different but equal
   strides (e.g. [n*b - b] vs [q*b^2] under [n = q*b + 1]) coincide. *)
let merge_bases ctx ss1 ss2 =
  let add acc s =
    if List.exists (fun s' -> Pr.prove_eq ctx s s') acc then acc
    else s :: acc
  in
  sort_strides ctx (List.fold_left add [] (ss1 @ ss2))

(* ---------------------------------------------------------------- *)
(* Conversion of an LMAD to intervals over a given basis              *)
(* ---------------------------------------------------------------- *)

(* Intervals for LMAD dims over [basis]; dims absent from the LMAD get
   the degenerate interval [0..0].  Fails if the LMAD has two dims with
   the same stride (their points interact and cannot be treated as
   independent digits). *)
let to_intervals ctx (l : Lmad.t) (basis : P.t list) :
    sum_of_intervals option =
  let rec go remaining = function
    | [] -> if remaining = [] then Some [] else None
    | s :: rest -> (
        let matching, others =
          List.partition (fun d -> Pr.prove_eq ctx d.Lmad.s s) remaining
        in
        match matching with
        | [] ->
            Option.map
              (fun ivs -> { lo = P.zero; hi = P.zero; stride = s } :: ivs)
              (go remaining rest)
        | [ d ] ->
            Option.map
              (fun ivs ->
                { lo = P.zero; hi = P.sub d.Lmad.n P.one; stride = s } :: ivs)
              (go others rest)
        | _ -> None (* two dims with equal strides: give up *))
  in
  go (Lmad.dims l) basis

(* ---------------------------------------------------------------- *)
(* Offset-difference distribution (footnote 27)                       *)
(* ---------------------------------------------------------------- *)

(* Distribute polynomial [d] as sum_j delta_j * s_j with each delta_j of
   provable sign, shifting I1's interval j up by positive deltas and
   I2's by the negated negative deltas, so both keep lo >= 0.  The
   strides are visited in descending order so the most complex terms
   are consumed first.  Returns None if a nonzero remainder survives. *)
type distribution =
  | Distributed of sum_of_intervals * sum_of_intervals
  | Residue_disjoint
      (* a nonzero constant remainder survived that no combination of
         strides can cancel: every point of I1 differs from every point
         of I2 modulo the gcd of the strides, so the sets are disjoint *)
  | Dist_fail

(* gcd of the integer contents of the strides: every value of a stride
   polynomial is divisible by the gcd of its coefficients. *)
let strides_gcd (ivs : sum_of_intervals) =
  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
  List.fold_left
    (fun acc iv ->
      let content =
        List.fold_left
          (fun acc (m : P.mono) -> gcd acc m.P.coeff)
          0 (P.monos iv.stride)
      in
      gcd acc content)
    0 ivs

let distribute ctx d (i1 : sum_of_intervals) (i2 : sum_of_intervals) :
    distribution =
  let shift iv delta =
    { iv with lo = P.add iv.lo delta; hi = P.add iv.hi delta }
  in
  let rec go d acc1 acc2 = function
    | [] -> (
        let d = Pr.rewrite ctx d in
        if P.is_zero d then Distributed (List.rev acc1, List.rev acc2)
        else
          match P.to_const_opt d with
          | Some c ->
              let g = strides_gcd i1 in
              if g > 1 && c mod g <> 0 then Residue_disjoint else Dist_fail
          | None -> Dist_fail)
    | (iv1, iv2) :: rest -> (
        let q, r = P.div_rem (Pr.rewrite ctx d) (Pr.rewrite ctx iv1.stride) in
        if P.is_zero q then go d (iv1 :: acc1) (iv2 :: acc2) rest
        else
          match Pr.sign ctx q with
          | Pr.Pos -> go r (shift iv1 q :: acc1) (iv2 :: acc2) rest
          | Pr.Neg -> go r (iv1 :: acc1) (shift iv2 (P.neg q) :: acc2) rest
          | Pr.Zero -> go d (iv1 :: acc1) (iv2 :: acc2) rest
          | Pr.Unknown -> Dist_fail)
  in
  go d [] [] (List.combine i1 i2)

(* ---------------------------------------------------------------- *)
(* The theorem's two conditions                                       *)
(* ---------------------------------------------------------------- *)

(* Ascending order helper: intervals are stored descending by stride. *)
let ascending ivs = List.rev ivs

(* Per-set condition: s_i > sum_{j<i} u_j * s_j for all i >= 2.
   Returns the index (in ascending order) of the first violating
   dimension, or None when the condition holds. *)
let first_overlapping_dim ctx (ivs : sum_of_intervals) : int option =
  let asc = ascending ivs in
  let rec go i acc = function
    | [] -> None
    | iv :: rest ->
        if i > 0 && not (Pr.prove_gt ctx iv.stride acc) then Some i
        else go (i + 1) (P.add acc (P.mul iv.hi iv.stride)) rest
  in
  go 0 P.zero asc

let dims_nonoverlapping ctx ivs = first_overlapping_dim ctx ivs = None

(* Does some dimension have provably disjoint intervals? *)
let exists_disjoint_dim ctx (i1 : sum_of_intervals) (i2 : sum_of_intervals) =
  List.exists2
    (fun a b -> Pr.prove_lt ctx a.hi b.lo || Pr.prove_lt ctx b.hi a.lo)
    i1 i2

(* A set is empty when some interval has hi < lo (a cardinal <= 0). *)
let is_empty ctx (ivs : sum_of_intervals) =
  List.exists (fun iv -> Pr.prove_lt ctx iv.hi iv.lo) ivs

(* ---------------------------------------------------------------- *)
(* Splitting an overlapping dimension (Fig. 8)                        *)
(* ---------------------------------------------------------------- *)

(* Split the sum at the dimension just inside the first violating one:
   [l..u]*s becomes the union of [l..u-1]*s and the single point u*s,
   the latter's contribution redistributed positively across the other
   dimensions.  Returns the list of resulting sums (possibly just the
   original when no dimension overlaps), or None for Fail. *)
let split_overlapping ctx (ivs : sum_of_intervals) :
    sum_of_intervals list option =
  match first_overlapping_dim ctx ivs with
  | None -> Some [ ivs ]
  | Some i_asc ->
      (* The offending carry comes from dimensions j < i_asc; split the
         widest inner one, which is the immediate inner dim (j = i_asc-1)
         in the cases of interest (Fig. 9 splits the 2nd of 3 dims). *)
      let n = List.length ivs in
      let j_desc = n - i_asc in
      (* index in the descending-order list of the dim to split *)
      let arr = Array.of_list ivs in
      if j_desc < 0 || j_desc >= n then None
      else
        let target = arr.(j_desc) in
        (* Part A: drop the last point. *)
        let part_a =
          Array.to_list
            (Array.mapi
               (fun k iv ->
                 if k = j_desc then { iv with hi = P.sub iv.hi P.one }
                 else iv)
               arr)
        in
        (* Part B: fix the dim at its last point and redistribute
           u*s across the other dimensions. *)
        let contribution = P.mul target.hi target.stride in
        let rest_b =
          Array.to_list
            (Array.mapi
               (fun k iv ->
                 if k = j_desc then { iv with lo = P.zero; hi = P.zero }
                 else iv)
               arr)
        in
        let rec redistribute d acc = function
          | [] -> if P.is_zero (Pr.rewrite ctx d) then Some (List.rev acc) else None
          | iv :: rest ->
              if P.equal iv.stride target.stride && P.is_zero iv.lo && P.is_zero iv.hi
              then redistribute d (iv :: acc) rest
              else
                let q, r =
                  P.div_rem (Pr.rewrite ctx d) (Pr.rewrite ctx iv.stride)
                in
                if P.is_zero q then redistribute d (iv :: acc) rest
                else if Pr.prove_nonneg ctx q then
                  redistribute r
                    ({ iv with lo = P.add iv.lo q; hi = P.add iv.hi q } :: acc)
                    rest
                else None
        in
        (match redistribute (Pr.rewrite ctx contribution) [] rest_b with
        | Some part_b -> Some [ part_a; part_b ]
        | None ->
            (* Could not redistribute: fall back to just part A if the
               last point is already outside the other set; impossible
               to know here, so Fail. *)
            None)

(* ---------------------------------------------------------------- *)
(* Main entry points                                                  *)
(* ---------------------------------------------------------------- *)

let rec disjoint_sums ctx depth (i1 : sum_of_intervals)
    (i2 : sum_of_intervals) : bool =
  is_empty ctx i1 || is_empty ctx i2
  ||
  if dims_nonoverlapping ctx i1 && dims_nonoverlapping ctx i2 then
    exists_disjoint_dim ctx i1 i2
  else if depth = 0 then false
  else
    match (split_overlapping ctx i1, split_overlapping ctx i2) with
    | Some parts1, Some parts2 ->
        List.for_all
          (fun p1 ->
            List.for_all (fun p2 -> disjoint_sums ctx (depth - 1) p1 p2) parts2)
          parts1
    | _ -> false

(* [disjoint ctx l1 l2] - sufficient test that the point sets of the two
   LMADs do not intersect, under the context's assumptions. *)
let disjoint ?(depth = 3) ?(budget = 4.0) ctx (l1 : Lmad.t) (l2 : Lmad.t) :
    bool =
  Pr.with_deadline budget @@ fun () ->
  let l1 = Lmad.map_polys (Pr.rewrite ctx) l1 in
  let l2 = Lmad.map_polys (Pr.rewrite ctx) l2 in
  if Lmad.is_empty_set ctx l1 || Lmad.is_empty_set ctx l2 then true
  else
    match (Lmad.normalize_set ctx l1, Lmad.normalize_set ctx l2) with
    | Some n1, Some n2 when Lmad.dims n1 = [] && Lmad.dims n2 = [] ->
        (* two single points: disjoint iff the offsets provably differ *)
        Pr.prove_nonzero ctx (P.sub (Lmad.offset n1) (Lmad.offset n2))
    | Some n1, Some n2 -> (
        let ss1 = List.map (fun d -> d.Lmad.s) (Lmad.dims n1) in
        let ss2 = List.map (fun d -> d.Lmad.s) (Lmad.dims n2) in
        match merge_bases ctx ss1 ss2 with
        | None -> false
        | Some basis -> (
            match (to_intervals ctx n1 basis, to_intervals ctx n2 basis) with
            | Some i1, Some i2 -> (
                let d = P.sub (Lmad.offset n1) (Lmad.offset n2) in
                match distribute ctx (Pr.rewrite ctx d) i1 i2 with
                | Distributed (i1, i2) -> disjoint_sums ctx depth i1 i2
                | Residue_disjoint -> true
                | Dist_fail -> false)
            | _ -> false))
    | _ -> false
