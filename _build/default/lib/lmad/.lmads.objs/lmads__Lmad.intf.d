lib/lmad/lmad.mli: Format Symalg
