lib/lmad/lmad.ml: Array Fmt List Option String Symalg
