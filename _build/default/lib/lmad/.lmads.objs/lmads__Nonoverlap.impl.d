lib/lmad/nonoverlap.ml: Array Fmt List Lmad Option Symalg
