lib/lmad/ixfn.ml: Fmt List Lmad String Symalg
