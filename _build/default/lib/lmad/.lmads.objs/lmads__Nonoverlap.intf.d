lib/lmad/nonoverlap.mli: Format Lmad Symalg
