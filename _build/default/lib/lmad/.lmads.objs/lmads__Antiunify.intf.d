lib/lmad/antiunify.mli: Ixfn Symalg
