lib/lmad/ixfn.mli: Format Lmad Symalg
