lib/lmad/refset.ml: Fmt List Lmad Nonoverlap String Symalg
