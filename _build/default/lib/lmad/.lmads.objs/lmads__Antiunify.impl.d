lib/lmad/antiunify.ml: Ixfn List Lmad Printf Symalg
