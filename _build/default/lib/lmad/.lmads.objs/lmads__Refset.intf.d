lib/lmad/refset.mli: Format Lmad Symalg
