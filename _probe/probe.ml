module Device = Gpu.Device
module Exec = Gpu.Exec

let () =
  let args = Benchsuite.Lud.small_args ~q:3 ~b:4 in
  let cpl = Core.Pipeline.compile Benchsuite.Lud.prog in
  List.iter
    (fun (label, p) ->
      let r = Exec.run ~mode:Exec.Cost_only ~pool:false p args in
      let c = r.Exec.counters in
      Printf.printf "%-6s allocs=%d frees=%d\n" label c.Device.allocs c.Device.frees)
    [ ("unopt", cpl.Core.Pipeline.unopt);
      ("opt", cpl.Core.Pipeline.opt);
      ("reuse", cpl.Core.Pipeline.reuse) ]
