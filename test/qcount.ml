(* Deep-verify support for the qcheck properties.

   The weekly scheduled CI run multiplies every property's trial count
   by [QCHECK_COUNT] (an integer factor; unset - or 1 - on the
   per-push runs, 10 on the weekly deep verify).  Reproducibility
   comes from [QCHECK_SEED], which qcheck-alcotest reads and prints at
   startup ("qcheck random seed: %d"); the weekly job pins it so a
   failure replays locally with the same two variables. *)

let factor =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

let count base = base * factor
