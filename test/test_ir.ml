(* Tests for the array IR: interpreter semantics, the type/uniqueness
   checker, and qcheck properties relating change-of-layout operations
   to their index-function counterparts. *)

open Ir
open Ast
module P = Symalg.Poly
module B = Build

let c = P.const
let vint i = Value.VInt i

let farr xs = Value.VArr (Value.of_floats [ Array.length xs ] xs)

let run1 p args =
  match Interp.run p args with [ v ] -> v | _ -> Alcotest.fail "arity"

let check_floats msg expected v =
  match v with
  | Value.VArr a ->
      Alcotest.(check (list (float 1e-9))) msg expected
        (Array.to_list (Value.float_data a))
  | _ -> Alcotest.fail "not an array"

(* ---------------------------------------------------------------- *)
(* Interpreter basics                                                *)
(* ---------------------------------------------------------------- *)

let test_map_iota () =
  let n = P.var "n" in
  let p =
    B.prog "sq" ~params:[ pat_elem "n" i64 ] ~ret:[ arr I64 [ n ] ]
      (fun b ->
        let xs = B.bind b "xs" (EIota n) in
        let ys =
          B.mapnest b "ys" [ ("i", n) ] (fun bb ->
              let x = B.index bb xs [ P.var "i" ] in
              [ B.binop bb Mul x x ])
        in
        [ Var ys ])
  in
  match run1 p [ vint 5 ] with
  | Value.VArr a ->
      Alcotest.(check (list int)) "squares" [ 0; 1; 4; 9; 16 ]
        (Array.to_list (Value.int_data a))
  | _ -> Alcotest.fail "not an array"

let test_loop_factorial () =
  let p =
    B.prog "fact" ~params:[ pat_elem "n" i64 ] ~ret:[ i64 ]
      (fun b ->
        let r =
          B.loop b "f"
            [ ("acc", i64, Int 1) ]
            ~var:"x" ~bound:(P.var "n")
            (fun bb ->
              [
                B.binop bb Mul (Var "acc")
                  (B.binop bb Add (B.idx bb (P.var "x")) (Int 1));
              ])
        in
        [ Var (List.hd r) ])
  in
  Alcotest.(check bool) "5! = 120" true (run1 p [ vint 5 ] = Value.VInt 120)

let test_transpose_reverse () =
  let n = P.var "n" and m = P.var "m" in
  let p =
    B.prog "tr"
      ~params:[ pat_elem "n" i64; pat_elem "m" i64; pat_elem "a" (arr F64 [ n; m ]) ]
      ~ret:[ arr F64 [ m; n ] ]
      (fun b -> [ Var (B.bind b "t" (ETranspose ("a", [ 1; 0 ]))) ])
  in
  let a = Value.VArr (Value.of_floats [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |]) in
  check_floats "transpose" [ 1.; 4.; 2.; 5.; 3.; 6. ] (run1 p [ vint 2; vint 3; a ])

let test_concat () =
  let p =
    B.prog "cc"
      ~params:[ pat_elem "a" (arr F64 [ c 2 ]); pat_elem "b" (arr F64 [ c 3 ]) ]
      ~ret:[ arr F64 [ c 5 ] ]
      (fun b -> [ Var (B.bind b "c" (EConcat [ "a"; "b" ])) ])
  in
  check_floats "concat" [ 1.; 2.; 3.; 4.; 5. ]
    (run1 p [ farr [| 1.; 2. |]; farr [| 3.; 4.; 5. |] ])

let test_update_triplet () =
  let p =
    B.prog "upd"
      ~params:[ pat_elem "a" (arr F64 [ c 6 ]); pat_elem "x" (arr F64 [ c 2 ]) ]
      ~ret:[ arr F64 [ c 6 ] ]
      (fun b ->
        [
          Var
            (B.bind b "r"
               (EUpdate
                  {
                    dst = "a";
                    slc = STriplet [ SRange { start = c 1; len = c 2; step = c 2 } ];
                    src = SrcArr "x";
                  }));
        ])
  in
  check_floats "strided update" [ 0.; 9.; 2.; 8.; 4.; 5. ]
    (run1 p [ farr [| 0.; 1.; 2.; 3.; 4.; 5. |]; farr [| 9.; 8. |] ])

let test_reduce_argmin () =
  let p =
    B.prog "ra"
      ~params:[ pat_elem "a" (arr F64 [ c 4 ]) ]
      ~ret:[ f64; f64; i64 ]
      (fun b ->
        let s = B.bind b "s" (EReduce { op = Add; ne = Float 0.0; arr = "a" }) in
        let pair = B.bind_multi ~names:[ "mn"; "ix" ] b (EArgmin "a") in
        [ Var s; Var (List.nth pair 0); Var (List.nth pair 1) ])
  in
  match Interp.run p [ farr [| 3.; 1.; 4.; 1.5 |] ] with
  | [ Value.VFloat s; Value.VFloat mn; Value.VInt ix ] ->
      Alcotest.(check (float 1e-9)) "sum" 9.5 s;
      Alcotest.(check (float 1e-9)) "min" 1.0 mn;
      Alcotest.(check int) "argmin" 1 ix
  | _ -> Alcotest.fail "bad result"

let test_if_branches () =
  let p =
    B.prog "br" ~params:[ pat_elem "x" i64 ] ~ret:[ i64 ]
      (fun b ->
        let cnd = B.cmp b CLt (Var "x") (Int 10) in
        let r = B.if_ b "r" cnd (fun _ -> [ Int 1 ]) (fun _ -> [ Int 2 ]) in
        [ Var (List.hd r) ])
  in
  Alcotest.(check bool) "then" true (run1 p [ vint 3 ] = Value.VInt 1);
  Alcotest.(check bool) "else" true (run1 p [ vint 30 ] = Value.VInt 2)

let test_lmad_update_duplicate_rejected () =
  (* an LMAD update whose index set self-overlaps must be rejected at
     run time (dynamic check of section III-B) *)
  let p =
    B.prog "dup"
      ~params:
        [ pat_elem "a" (arr F64 [ c 4 ]); pat_elem "x" (arr F64 [ c 2; c 2 ]) ]
      ~ret:[ arr F64 [ c 4 ] ]
      (fun b ->
        [
          Var
            (B.bind b "r"
               (EUpdate
                  {
                    dst = "a";
                    slc =
                      SLmad
                        (Lmads.Lmad.make P.zero
                           [ Lmads.Lmad.dim (c 2) (c 0); Lmads.Lmad.dim (c 2) (c 1) ]);
                    src = SrcArr "x";
                  }));
        ])
  in
  Alcotest.check_raises "duplicate offsets rejected"
    (Interp.Runtime_error "interp: LMAD update on a writes offset 0 twice")
    (fun () ->
      ignore
        (Interp.run p
           [
             farr [| 0.; 0.; 0.; 0. |];
             Value.VArr (Value.of_floats [ 2; 2 ] [| 1.; 2.; 3.; 4. |]);
           ]))

(* ---------------------------------------------------------------- *)
(* Checker: negative cases                                            *)
(* ---------------------------------------------------------------- *)

let expect_type_error name f =
  match f () with
  | exception Check.Type_error _ -> ()
  | _ -> Alcotest.failf "%s: checker accepted an ill-formed program" name

let test_use_after_consume () =
  expect_type_error "use after update" (fun () ->
      B.prog "bad"
        ~params:[ pat_elem "a" (arr F64 [ c 4 ]) ]
        ~ret:[ f64 ]
        (fun b ->
          let _ =
            B.bind b "a2"
              (EUpdate
                 {
                   dst = "a";
                   slc = STriplet [ SFix (c 0) ];
                   src = SrcScalar (Float 1.0);
                 })
          in
          (* reading the consumed array must be rejected *)
          [ B.index b "a" [ c 1 ] ]))

let test_alias_consume () =
  expect_type_error "alias consumed transitively" (fun () ->
      B.prog "bad2"
        ~params:[ pat_elem "a" (arr F64 [ c 4 ]) ]
        ~ret:[ f64 ]
        (fun b ->
          let v =
            B.bind b "v"
              (ESlice ("a", STriplet [ SRange { start = c 0; len = c 2; step = c 1 } ]))
          in
          let _ =
            B.bind b "a2"
              (EUpdate
                 {
                   dst = "a";
                   slc = STriplet [ SFix (c 0) ];
                   src = SrcScalar (Float 1.0);
                 })
          in
          (* v aliases a, which was consumed *)
          [ B.index b v [ c 0 ] ]))

let test_shape_mismatch () =
  expect_type_error "update shape mismatch" (fun () ->
      B.prog "bad3"
        ~params:[ pat_elem "a" (arr F64 [ c 6 ]); pat_elem "x" (arr F64 [ c 3 ]) ]
        ~ret:[ arr F64 [ c 6 ] ]
        (fun b ->
          [
            Var
              (B.bind b "r"
                 (EUpdate
                    {
                      dst = "a";
                      slc = STriplet [ SRange { start = c 0; len = c 2; step = c 1 } ];
                      src = SrcArr "x";
                    }));
          ]))

(* ---------------------------------------------------------------- *)
(* qcheck: views agree with index functions                          *)
(* ---------------------------------------------------------------- *)

let prop_transpose_interp =
  QCheck.Test.make ~name:"interp transpose = ixfn permute" ~count:(Qcount.count 100)
    (QCheck.make
       ~print:(fun (n, m) -> Printf.sprintf "%dx%d" n m)
       QCheck.Gen.(pair (int_range 1 6) (int_range 1 6)))
    (fun (n, m) ->
      let data = Array.init (n * m) float_of_int in
      let p =
        B.prog "t"
          ~params:[ pat_elem "a" (arr F64 [ c n; c m ]) ]
          ~ret:[ arr F64 [ c m; c n ] ]
          (fun b -> [ Var (B.bind b "t" (ETranspose ("a", [ 1; 0 ]))) ])
      in
      match Interp.run p [ Value.VArr (Value.of_floats [ n; m ] data) ] with
      | [ Value.VArr out ] ->
          let ix = Lmads.Ixfn.transpose (Lmads.Ixfn.row_major [ c n; c m ]) in
          let got = Value.float_data out in
          List.for_all
            (fun (i, j) ->
              got.((i * n) + j)
              = data.(Lmads.Ixfn.apply_int (fun _ -> 0) ix [ i; j ]))
            (List.concat_map (fun i -> List.init n (fun j -> (i, j)))
               (List.init m Fun.id))
      | _ -> false)

let prop_reverse_involution =
  QCheck.Test.make ~name:"interp reverse twice = id" ~count:(Qcount.count 100)
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 20))
    (fun n ->
      let data = Array.init n (fun i -> float_of_int (i * 7 mod 13)) in
      let p =
        B.prog "rr"
          ~params:[ pat_elem "a" (arr F64 [ c n ]) ]
          ~ret:[ arr F64 [ c n ] ]
          (fun b ->
            let r1 = B.bind b "r1" (EReverse ("a", 0)) in
            [ Var (B.bind b "r2" (EReverse (r1, 0))) ])
      in
      match Interp.run p [ Value.VArr (Value.of_floats [ n ] data) ] with
      | [ Value.VArr out ] -> Value.float_data out = data
      | _ -> false)

let prop_slice_then_update_roundtrip =
  QCheck.Test.make ~name:"A with [s] = A[s] is identity" ~count:(Qcount.count 100)
    (QCheck.make
       ~print:(fun (n, (a, (l, k))) -> Printf.sprintf "n=%d a=%d l=%d k=%d" n a l k)
       QCheck.Gen.(
         pair (int_range 1 12)
           (pair (int_range 0 3) (pair (int_range 1 4) (int_range 1 3)))))
    (fun (n, (a, (l, k))) ->
      QCheck.assume (a + ((l - 1) * k) < n);
      let data = Array.init n float_of_int in
      let p =
        B.prog "rt"
          ~params:[ pat_elem "arr" (arr F64 [ c n ]) ]
          ~ret:[ arr F64 [ c n ] ]
          (fun b ->
            let s =
              B.bind b "s"
                (ESlice
                   ("arr", STriplet [ SRange { start = c a; len = c l; step = c k } ]))
            in
            [
              Var
                (B.bind b "r"
                   (EUpdate
                      {
                        dst = "arr";
                        slc = STriplet [ SRange { start = c a; len = c l; step = c k } ];
                        src = SrcArr s;
                      }));
            ])
      in
      match Interp.run p [ Value.VArr (Value.of_floats [ n ] data) ] with
      | [ Value.VArr out ] -> Value.float_data out = data
      | _ -> false)

let tests =
  [
    Alcotest.test_case "map over iota" `Quick test_map_iota;
    Alcotest.test_case "loop factorial" `Quick test_loop_factorial;
    Alcotest.test_case "transpose" `Quick test_transpose_reverse;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "strided update" `Quick test_update_triplet;
    Alcotest.test_case "reduce + argmin" `Quick test_reduce_argmin;
    Alcotest.test_case "if branches" `Quick test_if_branches;
    Alcotest.test_case "LMAD update dynamic check" `Quick
      test_lmad_update_duplicate_rejected;
    Alcotest.test_case "checker: use after consume" `Quick
      test_use_after_consume;
    Alcotest.test_case "checker: alias consumed" `Quick test_alias_consume;
    Alcotest.test_case "checker: shape mismatch" `Quick test_shape_mismatch;
    QCheck_alcotest.to_alcotest prop_transpose_interp;
    QCheck_alcotest.to_alcotest prop_reverse_involution;
    QCheck_alcotest.to_alcotest prop_slice_then_update_roundtrip;
  ]
