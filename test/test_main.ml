(* Aggregated test runner: one Alcotest suite per library. *)

let () =
  Alcotest.run "futhark-mem"
    [
      ("symalg", Test_symalg.tests);
      ("lmad", Test_lmad.tests);
      ("nonoverlap", Test_nonoverlap_internals.tests);
      ("ir", Test_ir.tests);
      ("core", Test_core.tests);
      ("memlint", Test_memlint.tests);
      ("memtrace", Test_memtrace.tests);
      ("reuse", Test_reuse.tests);
      ("frontend", Test_frontend.tests);
      ("gpu", Test_gpu.tests);
      ("pool", Test_pool.tests);
      ("bench", Test_bench.tests);
      ("certify", Test_certify.tests);
      ("pack", Test_pack.tests);
      ("chaos", Test_chaos.tests);
    ]
