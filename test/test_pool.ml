(* Tests for the size-class allocation pool (Device.Pool) and its cost
   model.

   Three layers: the pool data structure itself (size classes,
   exact-fit fast path, high-water accounting), the executor's
   integration (every top-level allocation is either a hit or a miss;
   disabling the pool changes no memory counter, only the charged
   time), and the end-to-end claim of this PR - with the pool enabled
   the modeled times are strictly cheaper than without, including in
   the reuse column, because an unpooled run pays a synchronizing
   device free for every allocation it made. *)

module Device = Gpu.Device
module Pool = Gpu.Device.Pool
module Exec = Gpu.Exec

(* ---------------------------------------------------------------- *)
(* Pool unit tests                                                   *)
(* ---------------------------------------------------------------- *)

let hit = function
  | `Hit served -> served
  | `Miss _ -> Alcotest.fail "expected hit"

let miss = function `Miss _ -> () | `Hit _ -> Alcotest.fail "expected miss"

let test_pool_exact_fit () =
  let p = Pool.create () in
  miss (Pool.alloc p 800.);
  Pool.free p 800.;
  (* same size: exact-fit fast path serves the same block *)
  Alcotest.(check (float 0.0)) "exact refit" 800. (hit (Pool.alloc p 800.));
  (* nothing left on the free list: next request misses again *)
  miss (Pool.alloc p 800.)

let test_pool_class_fit () =
  let p = Pool.create () in
  miss (Pool.alloc p 1000.);
  Pool.free p 1000.;
  (* 700 rounds up to the same 1024-byte class: the free 1000-byte
     block is large enough and gets reused as-is *)
  Alcotest.(check (float 0.0)) "class refit" 1000. (hit (Pool.alloc p 700.));
  (* 300 lives in a smaller class: no free block there, miss *)
  miss (Pool.alloc p 300.)

let test_pool_exact_fit_preferred () =
  let p = Pool.create () in
  miss (Pool.alloc p 1024.);
  miss (Pool.alloc p 1000.);
  Pool.free p 1024.;
  Pool.free p 1000.;
  (* both free blocks sit in class 2^10; the exact-size one wins even
     though the 1024-byte block was freed first *)
  Alcotest.(check (float 0.0)) "exact preferred" 1000.
    (hit (Pool.alloc p 1000.))

let test_pool_no_undersized_hit () =
  let p = Pool.create () in
  miss (Pool.alloc p 520.);
  Pool.free p 520.;
  (* 1000 shares class 2^10 with the free 520-byte block, but that
     block is too small to hold it: must miss, never truncate *)
  miss (Pool.alloc p 1000.)

let test_pool_stats () =
  let p = Pool.create () in
  miss (Pool.alloc p 1000.);
  Pool.free p 1000.;
  ignore (hit (Pool.alloc p 700.));
  miss (Pool.alloc p 1000.);
  let s = Pool.stats p in
  (* two misses obtained fresh device memory; the hit did not *)
  Alcotest.(check (float 0.0)) "device bytes" 2000. s.Pool.p_device_bytes;
  (* high water: the recycled 1000-byte block and the second miss were
     simultaneously out *)
  Alcotest.(check (float 0.0)) "high water" 2000. s.Pool.p_high_water;
  Alcotest.(check (float 0.0)) "no idle memory at the peak" 0.
    s.Pool.p_fragmentation

let test_pool_fragmentation () =
  let p = Pool.create () in
  miss (Pool.alloc p 1000.);
  Pool.free p 1000.;
  (* a request in a different class cannot reuse the free block *)
  miss (Pool.alloc p 100.);
  let s = Pool.stats p in
  Alcotest.(check (float 0.0)) "device bytes" 1100. s.Pool.p_device_bytes;
  Alcotest.(check (float 0.0)) "high water" 1000. s.Pool.p_high_water;
  (* 100 of 1100 pool-owned bytes were idle even at the peak *)
  Alcotest.(check (float 1e-9)) "fragmentation" (100. /. 1100.)
    s.Pool.p_fragmentation

let test_pool_cap_evicts () =
  let p = Pool.create ~cap:2048 () in
  miss (Pool.alloc p 1000.);
  miss (Pool.alloc p 1000.);
  Pool.free p 1000.;
  Pool.free p 1000.;
  (* 2000 B obtained, all cached.  A 2000 B request lives in the empty
     2^11 class, so it must miss; growing to 4000 B would breach the
     cap, so both cached 1000 B blocks are evicted first. *)
  (match Pool.alloc p 2000. with
  | `Miss 2 -> ()
  | `Miss n -> Alcotest.failf "expected 2 evictions, got %d" n
  | `Hit _ -> Alcotest.fail "expected miss");
  let s = Pool.stats p in
  Alcotest.(check (float 0.0)) "device bytes back under cap" 2000.
    s.Pool.p_device_bytes;
  Alcotest.(check int) "evictions counted" 2 s.Pool.p_evictions;
  Alcotest.(check bool) "cap recorded" true (s.Pool.p_cap = Some 2048.)

let test_pool_cap_never_refuses_live () =
  (* live memory above the cap is still served - the cap only bounds
     cache growth, so with nothing cached every alloc is a plain miss *)
  let p = Pool.create ~cap:1024 () in
  miss (Pool.alloc p 1000.);
  (match Pool.alloc p 1000. with
  | `Miss 0 -> ()
  | `Miss n -> Alcotest.failf "nothing cached, yet %d evictions" n
  | `Hit _ -> Alcotest.fail "expected miss");
  let s = Pool.stats p in
  Alcotest.(check (float 0.0)) "live memory granted past the cap" 2000.
    s.Pool.p_device_bytes

let test_pool_evicts_largest_first () =
  let p = Pool.create ~cap:6000 () in
  (* cache three blocks of distinct sizes, freed smallest-first so
     eviction order cannot accidentally track free order *)
  miss (Pool.alloc p 600.);
  miss (Pool.alloc p 1000.);
  miss (Pool.alloc p 4000.);
  Pool.free p 600.;
  Pool.free p 1000.;
  Pool.free p 4000.;
  (* 2048 lives in the empty 2^11 class: a miss.  5600 + 2048 breaches
     the cap; evicting the 4000-byte block alone brings it back under,
     so exactly one - the largest - is released. *)
  (match Pool.alloc p 2048. with
  | `Miss 1 -> ()
  | `Miss n -> Alcotest.failf "expected 1 eviction, got %d" n
  | `Hit _ -> Alcotest.fail "expected miss");
  let s = Pool.stats p in
  Alcotest.(check (float 0.0)) "device bytes under cap" 3648.
    s.Pool.p_device_bytes;
  (* the smaller blocks are still cached - both refit - while the
     evicted 4000-byte block is gone and must miss again *)
  Alcotest.(check (float 0.0)) "1000 kept" 1000. (hit (Pool.alloc p 1000.));
  Alcotest.(check (float 0.0)) "600 kept" 600. (hit (Pool.alloc p 600.));
  (match Pool.alloc p 4000. with
  | `Miss _ -> ()
  | `Hit _ -> Alcotest.fail "evicted block cannot be re-served")

let test_pool_cap_oversized_block_served () =
  (* a single live block larger than the whole cap is still granted:
     the caches are emptied first, then the request goes through *)
  let p = Pool.create ~cap:1024 () in
  miss (Pool.alloc p 512.);
  Pool.free p 512.;
  (match Pool.alloc p 4096. with
  | `Miss 1 -> ()
  | `Miss n -> Alcotest.failf "expected 1 eviction, got %d" n
  | `Hit _ -> Alcotest.fail "expected miss");
  let s = Pool.stats p in
  Alcotest.(check (float 0.0)) "oversized block live past the cap" 4096.
    s.Pool.p_device_bytes;
  Alcotest.(check int) "cache emptied on the way" 1 s.Pool.p_evictions

(* ---------------------------------------------------------------- *)
(* Executor integration                                              *)
(* ---------------------------------------------------------------- *)

let hotspot_args = Benchsuite.Hotspot.small_args ~n:16 ~steps:3

let compiled = lazy (Core.Pipeline.compile Benchsuite.Hotspot.prog)

let run ?pool p = Exec.run ~mode:Exec.Cost_only ?pool p hotspot_args

(* Every top-level allocation is classified: hits + misses = allocs on
   a run without sampled loops. *)
let test_hits_plus_misses () =
  let cpl = Lazy.force compiled in
  List.iter
    (fun (label, p) ->
      let c = (run p).Exec.counters in
      Alcotest.(check int)
        (label ^ ": hits + misses = allocs")
        c.Device.allocs
        (c.Device.pool_hits + c.Device.pool_misses))
    [
      ("unopt", cpl.Core.Pipeline.unopt);
      ("opt", cpl.Core.Pipeline.opt);
      ("reuse", cpl.Core.Pipeline.reuse);
    ]

(* Disabling the pool is invisible to every memory counter - it only
   changes how the events are priced.  This is the A/B guarantee that
   keeps --no-pool comparable with the footprint numbers recorded
   before the pool existed. *)
let test_no_pool_identity () =
  let cpl = Lazy.force compiled in
  let a = (run cpl.Core.Pipeline.unopt).Exec.counters in
  let r_off = run ~pool:false cpl.Core.Pipeline.unopt in
  let b = r_off.Exec.counters in
  Alcotest.(check int) "allocs" a.Device.allocs b.Device.allocs;
  Alcotest.(check (float 0.0)) "alloc bytes" a.Device.alloc_bytes
    b.Device.alloc_bytes;
  Alcotest.(check (float 0.0)) "peak bytes" a.Device.peak_bytes
    b.Device.peak_bytes;
  Alcotest.(check int) "scratch" a.Device.scratch_allocs
    b.Device.scratch_allocs;
  Alcotest.(check int) "kernels" a.Device.kernels b.Device.kernels;
  (* the pool-side accounting is all-or-nothing *)
  Alcotest.(check int) "no hits without a pool" 0 b.Device.pool_hits;
  Alcotest.(check int) "no misses without a pool" 0 b.Device.pool_misses;
  Alcotest.(check bool) "no pool stats" true (r_off.Exec.pool = None);
  Alcotest.(check int) "pooled run counts no device frees" 0 a.Device.frees;
  (* without a pool every allocation is eventually a synchronizing
     device free *)
  Alcotest.(check int) "unpooled frees = allocs" b.Device.allocs
    b.Device.frees

(* The cost model makes the pool measurable: on every device profile
   the pooled run is strictly cheaper, in all three columns - the
   reuse column included, whose single surviving allocation still pays
   its teardown free when unpooled. *)
let test_pool_strictly_cheaper () =
  let cpl = Lazy.force compiled in
  List.iter
    (fun device ->
      List.iter
        (fun (label, p) ->
          let t_on = Device.time device (run p).Exec.counters in
          let t_off =
            Device.time device (run ~pool:false p).Exec.counters
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: pooled strictly cheaper"
               device.Device.name label)
            true
            (t_on < t_off))
        [
          ("unopt", cpl.Core.Pipeline.unopt);
          ("opt", cpl.Core.Pipeline.opt);
          ("reuse", cpl.Core.Pipeline.reuse);
        ])
    [ Device.a100; Device.mi100 ]

(* The high-water mark can never exceed the run's own peak accounting,
   and a pooled unopt run must recycle memory (device bytes strictly
   below the total allocation volume). *)
let test_pool_recycles () =
  let cpl = Lazy.force compiled in
  let r = run cpl.Core.Pipeline.unopt in
  let c = r.Exec.counters in
  match r.Exec.pool with
  | None -> Alcotest.fail "expected pool stats"
  | Some s ->
      Alcotest.(check bool) "hits happened" true (c.Device.pool_hits > 0);
      Alcotest.(check bool) "device bytes < alloc volume" true
        (s.Pool.p_device_bytes < c.Device.alloc_bytes);
      Alcotest.(check bool) "high water <= device bytes" true
        (s.Pool.p_high_water <= s.Pool.p_device_bytes)

(* A capped pooled run prices each eviction as a synchronizing device
   free: the memory counters are untouched by the cap, but the modeled
   time is strictly worse than the uncapped pooled run whenever
   evictions actually happened. *)
let test_pool_eviction_priced_synchronizing () =
  (* NW's unoptimized program interleaves allocation size classes, so
     a cap of zero forces the pool to release cached blocks *)
  let cpl = Core.Pipeline.compile Benchsuite.Nw.prog in
  let p = cpl.Core.Pipeline.unopt in
  let args = Benchsuite.Nw.small_args ~q:2 ~b:4 in
  let r_free = Exec.run ~mode:Exec.Cost_only p args in
  let r_capped = Exec.run ~mode:Exec.Cost_only ~pool_cap:0 p args in
  let a = r_free.Exec.counters and b = r_capped.Exec.counters in
  let evictions =
    match r_capped.Exec.pool with
    | Some s -> s.Pool.p_evictions
    | None -> Alcotest.fail "expected pool stats"
  in
  Alcotest.(check bool) "cap at 0 forces evictions" true (evictions > 0);
  Alcotest.(check int) "each eviction is a counted device free" evictions
    b.Device.frees;
  Alcotest.(check int) "uncapped run frees nothing" 0 a.Device.frees;
  (* the cap changes pricing, never memory behaviour *)
  Alcotest.(check int) "allocs unchanged" a.Device.allocs b.Device.allocs;
  Alcotest.(check (float 0.0)) "peak unchanged" a.Device.peak_bytes
    b.Device.peak_bytes;
  List.iter
    (fun device ->
      Alcotest.(check bool)
        (device.Device.name ^ ": evictions make the capped run dearer")
        true
        (Device.time device b > Device.time device a))
    [ Device.a100; Device.mi100 ]

let tests =
  [
    Alcotest.test_case "pool: exact-fit fast path" `Quick test_pool_exact_fit;
    Alcotest.test_case "pool: same-class refit" `Quick test_pool_class_fit;
    Alcotest.test_case "pool: exact fit preferred over first fit" `Quick
      test_pool_exact_fit_preferred;
    Alcotest.test_case "pool: no undersized hit" `Quick
      test_pool_no_undersized_hit;
    Alcotest.test_case "pool: device/high-water accounting" `Quick
      test_pool_stats;
    Alcotest.test_case "pool: fragmentation accounting" `Quick
      test_pool_fragmentation;
    Alcotest.test_case "pool: cap evicts cached blocks" `Quick
      test_pool_cap_evicts;
    Alcotest.test_case "pool: cap never refuses live memory" `Quick
      test_pool_cap_never_refuses_live;
    Alcotest.test_case "pool: cap evicts largest-first" `Quick
      test_pool_evicts_largest_first;
    Alcotest.test_case "pool: oversized live block still served" `Quick
      test_pool_cap_oversized_block_served;
    Alcotest.test_case "cost: evictions priced as synchronizing frees" `Quick
      test_pool_eviction_priced_synchronizing;
    Alcotest.test_case "exec: hits + misses = allocs" `Quick
      test_hits_plus_misses;
    Alcotest.test_case "exec: --no-pool changes no counter" `Quick
      test_no_pool_identity;
    Alcotest.test_case "cost: pooled run strictly cheaper" `Quick
      test_pool_strictly_cheaper;
    Alcotest.test_case "pool: memory actually recycled" `Quick
      test_pool_recycles;
  ]
