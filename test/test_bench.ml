(* Integration tests over the benchmark suite: every case study is
   validated end to end at a reduced size (reference interpreter =
   memory executor, unoptimized = optimized, and = the independent
   direct OCaml implementation), and the expected short-circuiting
   behaviour of the paper's narrative is asserted (which circuits fire
   and which must not). *)

module R = Benchsuite.Runner
module V = Ir.Value

let check_validation name (v : R.validation) =
  Alcotest.(check bool) (name ^ ": unopt = interp") true v.R.ok_unopt;
  Alcotest.(check bool) (name ^ ": opt = interp") true v.R.ok_opt;
  Alcotest.(check bool) (name ^ ": reuse = interp") true v.R.ok_reuse;
  Alcotest.(check bool) (name ^ ": pack = interp") true v.R.ok_pack

let check_oracle name out expect =
  match out with
  | [ V.VArr a ] ->
      let d = V.float_data a in
      Alcotest.(check int) (name ^ " oracle length") (Array.length expect)
        (Array.length d);
      Array.iteri
        (fun i x ->
          let s = Float.max 1.0 (Float.abs expect.(i)) in
          if Float.abs (x -. expect.(i)) > 1e-6 *. s then
            Alcotest.failf "%s: oracle mismatch at %d: %g vs %g" name i x
              expect.(i))
        d
  | _ -> Alcotest.fail (name ^ ": unexpected result shape")

let test_nw () =
  let q = 3 and b = 4 in
  let args = Benchsuite.Nw.small_args ~q ~b in
  let c = Core.Pipeline.compile Benchsuite.Nw.prog in
  let v = R.validate ~compiled:c Benchsuite.Nw.prog args in
  check_validation "nw" v;
  (* both halves circuit and all copies disappear *)
  Alcotest.(check bool) "nw: circuits fired" true (v.R.sc_succeeded >= 2);
  Alcotest.(check int) "nw: opt copy-free" 0 v.R.copies_opt;
  check_oracle "nw"
    (Ir.Interp.run c.Core.Pipeline.source args)
    (Benchsuite.Nw.small_direct ~q ~b)

let test_lud () =
  let q = 3 and b = 4 in
  let args = Benchsuite.Lud.small_args ~q ~b in
  let c = Core.Pipeline.compile Benchsuite.Lud.prog in
  let v = R.validate ~compiled:c Benchsuite.Lud.prog args in
  check_validation "lud" v;
  (* yellow + red circuit as in the paper.  The blue temporary is read
     by the interior kernel after its write-back, so its copy must
     remain.  The paper keeps the green (diagonal) copy too, but with
     triangular-bound saturation in the prover the single-thread
     diagonal factorization is proven safe to run in place, so only
     blue's copy survives: one per step except the last, whose
     perimeter phases are branched away (m = 0). *)
  Alcotest.(check int)
    "lud: only blue copies remain" (q - 1) v.R.copies_opt;
  Alcotest.(check bool) "lud: yellow+red+green circuits" true
    (v.R.sc_succeeded >= 3);
  check_oracle "lud"
    (Ir.Interp.run c.Core.Pipeline.source args)
    (Benchsuite.Lud.small_direct ~q ~b)

let test_hotspot () =
  let n = 16 and steps = 3 in
  let args = Benchsuite.Hotspot.small_args ~n ~steps in
  let c = Core.Pipeline.compile Benchsuite.Hotspot.prog in
  let v = R.validate ~compiled:c Benchsuite.Hotspot.prog args in
  check_validation "hotspot" v;
  Alcotest.(check int) "hotspot: concat free" 0 v.R.copies_opt;
  Alcotest.(check int) "hotspot: 3 parts x steps elided" (3 * steps) v.R.elided;
  check_oracle "hotspot"
    (Ir.Interp.run c.Core.Pipeline.source args)
    (Benchsuite.Hotspot.small_direct ~n ~steps)

let test_lbm () =
  let n = 6 and steps = 2 in
  let args = Benchsuite.Lbm.small_args ~n ~steps in
  let c = Core.Pipeline.compile Benchsuite.Lbm.prog in
  let v = R.validate ~compiled:c Benchsuite.Lbm.prog args in
  check_validation "lbm" v;
  (* per-thread 9-vectors are built in place: one elision per cell/step *)
  Alcotest.(check int) "lbm: per-cell elisions" (n * n * steps) v.R.elided;
  check_oracle "lbm"
    (Ir.Interp.run c.Core.Pipeline.source args)
    (Benchsuite.Lbm.small_direct ~n ~steps)

let test_option_pricing () =
  let npaths = 32 and nsteps = 12 in
  let args = Benchsuite.Option_pricing.small_args ~npaths ~nsteps in
  let c = Core.Pipeline.compile Benchsuite.Option_pricing.prog in
  let v = R.validate ~compiled:c Benchsuite.Option_pricing.prog args in
  check_validation "optionpricing" v;
  Alcotest.(check int) "optionpricing: path elisions" npaths v.R.elided;
  match Ir.Interp.run c.Core.Pipeline.source args with
  | [ V.VFloat price ] ->
      let expect = Benchsuite.Option_pricing.small_direct ~npaths ~nsteps in
      Alcotest.(check (float 1e-9)) "optionpricing price" expect price
  | _ -> Alcotest.fail "optionpricing: bad result shape"

let test_locvolcalib () =
  let numo = 5 and numx = 9 and numt = 3 in
  let args = Benchsuite.Locvolcalib.small_args ~numo ~numx ~numt in
  let c = Core.Pipeline.compile Benchsuite.Locvolcalib.prog in
  let v = R.validate ~compiled:c Benchsuite.Locvolcalib.prog args in
  check_validation "locvolcalib" v;
  Alcotest.(check int) "locvolcalib: per-option elisions" numo v.R.elided;
  check_oracle "locvolcalib"
    (Ir.Interp.run c.Core.Pipeline.source args)
    (Benchsuite.Locvolcalib.small_direct ~numo ~numx ~numt)

let test_nn () =
  let nrec = 64 and nbatch = 4 and bsz = 8 in
  let args = Benchsuite.Nn.small_args ~nrec ~nbatch ~bsz in
  let c = Core.Pipeline.compile Benchsuite.Nn.prog in
  let v = R.validate ~compiled:c Benchsuite.Nn.prog args in
  check_validation "nn" v;
  Alcotest.(check int) "nn: batch copies elided" nbatch v.R.elided;
  Alcotest.(check int) "nn: opt copy-free" 0 v.R.copies_opt;
  check_oracle "nn"
    (Ir.Interp.run c.Core.Pipeline.source args)
    (Benchsuite.Nn.small_direct ~nrec ~nq:(nbatch * bsz))

(* The table harness itself: run one small sanity config through
   Runner.run_table and check the qualitative shape claims. *)
let test_table_shape () =
  let o = Benchsuite.Hotspot.table () in
  Alcotest.(check bool) "hotspot impact >= 1.5 everywhere" true
    (Benchsuite.Table.min_impact o.R.table >= 1.5);
  Alcotest.(check bool) "hotspot impact <= 2.2" true
    (Benchsuite.Table.max_impact o.R.table <= 2.2);
  Alcotest.(check bool) "all hotspot circuits fire" true
    (let st = o.R.compiled.Core.Pipeline.stats in
     st.Core.Shortcircuit.succeeded = st.Core.Shortcircuit.candidates);
  Alcotest.(check bool) "footprint shrinks" true
    (List.for_all
       (fun (_, u, opt, _, _) ->
         opt.R.f_alloc_bytes < u.R.f_alloc_bytes
         && opt.R.f_peak_bytes < u.R.f_peak_bytes)
       o.R.footprints);
  Alcotest.(check bool) "reuse shrinks further (hotspot rotation)" true
    (List.for_all
       (fun (_, _, opt, reuse, _) ->
         reuse.R.f_allocs < opt.R.f_allocs
         && reuse.R.f_peak_bytes < opt.R.f_peak_bytes)
       o.R.footprints);
  Alcotest.(check bool) "packing never grows allocs or peak" true
    (List.for_all
       (fun (_, _, _, reuse, pack) ->
         pack.R.f_allocs <= reuse.R.f_allocs
         && pack.R.f_peak_bytes <= reuse.R.f_peak_bytes)
       o.R.footprints)

(* ---------------------------------------------------------------- *)
(* The bench-trajectory gate (Benchjson)                             *)
(* ---------------------------------------------------------------- *)

module BJ = Benchsuite.Benchjson

let sample_record ?(traffic = 512.) ?pool ~reuse_ms ~allocs () =
  let pool_s =
    match pool with
    | Some (hw, cap) ->
        Printf.sprintf
          {|,"pool":{"hits":1,"misses":1,"device_bytes":%g,"high_water_bytes":%g,"fragmentation":0.0,"cap":%g,"evictions":0}|}
          cap hw cap
    | None -> ""
  in
  Printf.sprintf
    {|{"date":"x","benchmarks":[{"name":"bm","rows":[
        {"device":"A100","dataset":"d","unopt_ms":10.0,"opt_ms":5.0,"reuse_ms":%g}],
      "footprints":[{"dataset":"d",
        "unopt":{"allocs":20,"peak_bytes":4096,"traffic_bytes":2048},
        "opt":{"allocs":5,"peak_bytes":2048,"traffic_bytes":1024},
        "reuse":{"allocs":%d,"peak_bytes":1024,"traffic_bytes":%g%s}}]}]}|}
    reuse_ms allocs traffic pool_s

let parse_exn s =
  match BJ.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_gate_json_roundtrip () =
  let v = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:1 ()) in
  let reuse_ms =
    match Option.bind (BJ.member "benchmarks" v) BJ.arr with
    | Some (b :: _) -> (
        match Option.bind (BJ.member "rows" b) BJ.arr with
        | Some (r :: _) -> BJ.num_at [ "reuse_ms" ] r
        | _ -> None)
    | _ -> None
  in
  Alcotest.(check (option (float 0.0))) "nested time" (Some 4.0) reuse_ms;
  (* malformed input must be an [Error], not an exception *)
  Alcotest.(check bool) "truncated input rejected" true
    (match BJ.parse "{\"a\": [1, 2" with Error _ -> true | Ok _ -> false)

let test_gate_identity_passes () =
  let b = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:1 ()) in
  let g = BJ.gate ~baseline:b ~current:b () in
  Alcotest.(check bool) "identity passes" true (BJ.ok g);
  Alcotest.(check bool) "comparisons performed" true (g.BJ.checked > 0)

let test_gate_catches_time_regression () =
  let b = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:1 ()) in
  let worse = parse_exn (sample_record ~reuse_ms:4.5 ~allocs:1 ()) in
  let g = BJ.gate ~baseline:b ~current:worse () in
  Alcotest.(check bool) "12% slower reuse fails" true (not (BJ.ok g));
  (* within tolerance: passes *)
  let ok = parse_exn (sample_record ~reuse_ms:4.1 ~allocs:1 ()) in
  Alcotest.(check bool) "2.5% drift passes" true
    (BJ.ok (BJ.gate ~baseline:b ~current:ok ()))

let test_gate_catches_footprint_regression () =
  let b = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:1 ()) in
  let worse = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:2 ()) in
  let g = BJ.gate ~baseline:b ~current:worse () in
  (* exact counters are gated monotonically: +1 alloc is a failure
     regardless of any tolerance *)
  Alcotest.(check bool) "alloc growth fails" true (not (BJ.ok g))

let test_gate_catches_traffic_regression () =
  let b = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:1 ()) in
  let worse =
    parse_exn (sample_record ~traffic:600. ~reuse_ms:4.0 ~allocs:1 ())
  in
  (* modeled DRAM traffic is an exact counter too: any growth fails *)
  Alcotest.(check bool) "traffic growth fails" true
    (not (BJ.ok (BJ.gate ~baseline:b ~current:worse ())))

let test_gate_catches_cap_breach () =
  let b = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:1 ()) in
  let breached =
    parse_exn
      (sample_record ~pool:(3000., 2048.) ~reuse_ms:4.0 ~allocs:1 ())
  in
  Alcotest.(check bool) "high-water over cap fails" true
    (not (BJ.ok (BJ.gate ~baseline:b ~current:breached ())));
  let within =
    parse_exn
      (sample_record ~pool:(1500., 2048.) ~reuse_ms:4.0 ~allocs:1 ())
  in
  Alcotest.(check bool) "high-water under cap passes" true
    (BJ.ok (BJ.gate ~baseline:b ~current:within ()))

let test_gate_improvement_is_note () =
  let b = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:2 ()) in
  let better = parse_exn (sample_record ~reuse_ms:3.0 ~allocs:1 ()) in
  let g = BJ.gate ~baseline:b ~current:better () in
  Alcotest.(check bool) "improvement passes" true (BJ.ok g);
  Alcotest.(check bool) "improvement noted" true (g.BJ.notes <> [])

let test_gate_missing_benchmark_fails () =
  let b = parse_exn (sample_record ~reuse_ms:4.0 ~allocs:1 ()) in
  let empty = parse_exn {|{"date":"x","benchmarks":[]}|} in
  Alcotest.(check bool) "dropped benchmark fails" true
    (not (BJ.ok (BJ.gate ~baseline:b ~current:empty ())));
  (* the other direction is only a note: new benchmarks do not fail *)
  Alcotest.(check bool) "new benchmark passes" true
    (BJ.ok (BJ.gate ~baseline:empty ~current:b ()))

let tests =
  [
    Alcotest.test_case "NW end-to-end" `Quick test_nw;
    Alcotest.test_case "LUD end-to-end" `Slow test_lud;
    Alcotest.test_case "Hotspot end-to-end" `Quick test_hotspot;
    Alcotest.test_case "LBM end-to-end" `Quick test_lbm;
    Alcotest.test_case "OptionPricing end-to-end" `Quick test_option_pricing;
    Alcotest.test_case "LocVolCalib end-to-end" `Quick test_locvolcalib;
    Alcotest.test_case "NN end-to-end" `Quick test_nn;
    Alcotest.test_case "Table shape (Hotspot)" `Quick test_table_shape;
    Alcotest.test_case "gate: JSON round-trip" `Quick test_gate_json_roundtrip;
    Alcotest.test_case "gate: identity passes" `Quick
      test_gate_identity_passes;
    Alcotest.test_case "gate: time regression fails" `Quick
      test_gate_catches_time_regression;
    Alcotest.test_case "gate: footprint regression fails" `Quick
      test_gate_catches_footprint_regression;
    Alcotest.test_case "gate: traffic regression fails" `Quick
      test_gate_catches_traffic_regression;
    Alcotest.test_case "gate: pool cap breach fails" `Quick
      test_gate_catches_cap_breach;
    Alcotest.test_case "gate: improvement is a note" `Quick
      test_gate_improvement_is_note;
    Alcotest.test_case "gate: missing benchmark fails" `Quick
      test_gate_missing_benchmark_fails;
  ]
