(* Tests for the fail-safe pipeline: the fault taxonomy, prover
   budgets, the degradation ladder, executor-side degradation, and the
   chaos fault-injection harness.

   Three angles:

   - prover budgets: budget 0 forces every nonnegativity obligation
     Undecided (a skipped rewrite, never an abort), the exhaustion is
     counted, the pipeline stays lint-clean, and a memo budget of 0
     disables memoization without affecting verdicts;

   - the degradation ladder: an injected pass crash or forged
     certificate is contained, blamed on the injected pass, and the
     compile falls back to the documented rung; executor faults (OOM,
     strict pool cap) degrade to unpooled execution with consistent
     counters; with fail-safe off, both layers fail fast;

   - a qcheck property: random programs with a random fault point in a
     random pass never raise under ~fail_safe:true, compute results
     bit-equal to the reference interpreter, and blame the injected
     layer in the recovery report. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Ir.Build
module Value = Ir.Value
module Exec = Gpu.Exec
module Device = Gpu.Device
module Chaos = Core.Chaos
module Fault = Core.Fault
module Pipeline = Core.Pipeline

let c = P.const
let n = P.var "n"
let ctx_n2 = Pr.add_range Pr.empty "n" ~lo:(c 2) ()

let fill b name cnt seed =
  B.mapnest b name [ (Ir.Names.fresh "i", cnt) ] (fun bb ->
      [ B.fadd bb (Float seed) (Float 0.0) ])

(* A chain of [k] map stages over one fill: every adjacent pair is a
   short-circuiting / coalescing candidate, so all three probed passes
   visit statements. *)
let gen_chain k =
  B.prog "chaoschain" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let first = fill b "x0" n 1.0 in
      let rec go prev i =
        if i > k then prev
        else
          let iv = Ir.Names.fresh "i" in
          let nx =
            B.mapnest b (Printf.sprintf "x%d" i) [ (iv, n) ] (fun bb ->
                [
                  B.fadd bb
                    (B.index bb prev [ P.var iv ])
                    (Float (float_of_int i));
                ])
          in
          go nx (i + 1)
      in
      [ Var (go first 1) ])

let args_n v = [ Value.VInt v ]

let with_budget b f =
  Pr.set_budget b;
  Fun.protect ~finally:(fun () -> Pr.set_budget Pr.unlimited) f

let pack_matches_interp (cpl : Pipeline.compiled) prog args =
  let expect = Ir.Interp.run prog args in
  let r = Exec.run ~mode:Exec.Full cpl.Pipeline.pack args in
  try List.for_all2 (fun a b -> a = b) expect r.Exec.results
  with Invalid_argument _ -> false

(* ---------------------------------------------------------------- *)
(* Prover budgets                                                    *)
(* ---------------------------------------------------------------- *)

let test_budget_zero_undecided () =
  with_budget { Pr.unlimited with Pr.b_steps = 0 } (fun () ->
      Pr.reset_stats ();
      Alcotest.(check bool)
        "n + 1 >= 0 undecided at budget 0" false
        (Pr.prove_nonneg ctx_n2 (P.add n P.one));
      Alcotest.(check bool)
        "constant 1 >= 0 undecided at budget 0" false
        (Pr.prove_nonneg ctx_n2 P.one);
      Alcotest.(check bool)
        "exhaustion counted once per query" true
        ((Pr.stats ()).Pr.budget_exhausted = 2))

let test_budget_zero_pipeline_lint_clean () =
  with_budget { Pr.unlimited with Pr.b_steps = 0 } (fun () ->
      let prog = gen_chain 3 in
      let cpl = Pipeline.compile ~lint:true ~fail_safe:true prog in
      (* undecided proofs downgrade rewrites, never break the IR *)
      (match Pipeline.first_lint_error cpl.Pipeline.lint with
      | None -> ()
      | Some (stage, v) ->
          Alcotest.failf "budget-0 compile lints dirty at %s: %a" stage
            Core.Memlint.pp_violation v);
      Alcotest.(check bool)
        "compile counted exhausted queries" true
        (cpl.Pipeline.prover_exhausted > 0);
      Alcotest.(check bool)
        "exhaustion summarized in the recovery report" true
        (List.exists
           (fun (r : Pipeline.recovery) ->
             Fault.layer r.Pipeline.r_fault = "prover-budget"
             && r.Pipeline.r_fallback = "skipped rewrites")
           cpl.Pipeline.recovery);
      Alcotest.(check bool)
        "budget-0 results bit-equal to the interpreter" true
        (pack_matches_interp cpl prog (args_n 6)))

let test_budget_memo_cap () =
  with_budget { Pr.unlimited with Pr.b_memo = 0 } (fun () ->
      Pr.reset_stats ();
      (* an unusual constant offset so no earlier memo entry matches *)
      let q = P.add n (c 54321) in
      Alcotest.(check bool)
        "provable with memoization disabled" true
        (Pr.prove_nonneg ctx_n2 q);
      Alcotest.(check bool)
        "still provable on repeat" true
        (Pr.prove_nonneg ctx_n2 q);
      let st = Pr.stats () in
      Alcotest.(check int) "nothing was served from the memo" 0
        st.Pr.nonneg_hits;
      Alcotest.(check int) "no queries exhausted" 0 st.Pr.budget_exhausted)

(* ---------------------------------------------------------------- *)
(* Degradation ladder: compile-side containment                      *)
(* ---------------------------------------------------------------- *)

let test_crash_contained_and_blamed () =
  let prog = gen_chain 3 in
  Chaos.arm_crash ~pass:"reuse" ~at:1;
  Fun.protect ~finally:Chaos.disarm (fun () ->
      let cpl = Pipeline.compile ~fail_safe:true prog in
      match cpl.Pipeline.recovery with
      | [ r ] ->
          Alcotest.(check string) "blamed pass" "reuse" r.Pipeline.r_pass;
          Alcotest.(check string) "fallback rung" "opt" r.Pipeline.r_fallback;
          (match r.Pipeline.r_fault with
          | Fault.Pass_crash { pass; _ } ->
              Alcotest.(check string) "fault names the pass" "reuse" pass
          | f -> Alcotest.failf "unexpected fault %s" (Fault.to_string f));
          Alcotest.(check bool)
            "degraded results bit-equal to the interpreter" true
            (pack_matches_interp cpl prog (args_n 5))
      | rs -> Alcotest.failf "expected one recovery entry, got %d"
                (List.length rs))

let test_forge_contained () =
  let prog = gen_chain 2 in
  Chaos.arm_forge ~pass:"pack";
  Fun.protect ~finally:Chaos.disarm (fun () ->
      let cpl = Pipeline.compile ~certify:true ~fail_safe:true prog in
      Alcotest.(check bool)
        "forged certificate contained as cert-refuted on pack" true
        (List.exists
           (fun (r : Pipeline.recovery) ->
             Fault.layer r.Pipeline.r_fault = "cert-refuted"
             && r.Pipeline.r_pass = "pack"
             && r.Pipeline.r_fallback = "reuse")
           cpl.Pipeline.recovery);
      Alcotest.(check bool)
        "degraded results bit-equal to the interpreter" true
        (pack_matches_interp cpl prog (args_n 4)))

let test_fail_fast_propagates () =
  Chaos.arm_crash ~pass:"shortcircuit" ~at:1;
  Fun.protect ~finally:Chaos.disarm (fun () ->
      Alcotest.check_raises "fail-fast re-raises the pass bug"
        (Chaos.Injected "shortcircuit") (fun () ->
          ignore (Pipeline.compile (gen_chain 2))))

(* ---------------------------------------------------------------- *)
(* Executor-side degradation                                         *)
(* ---------------------------------------------------------------- *)

let test_exec_oom_degrades () =
  let prog = gen_chain 3 in
  let cpl = Pipeline.compile prog in
  let args = args_n 6 in
  let expect = Ir.Interp.run prog args in
  let r = Exec.run ~mode:Exec.Full ~oom_at:1 cpl.Pipeline.unopt args in
  (match r.Exec.faults with
  | [ Fault.Device_oom { at_alloc; _ } ] ->
      Alcotest.(check int) "faulted at the injected allocation" 1 at_alloc
  | fs -> Alcotest.failf "expected one Device_oom, got %d fault(s)"
            (List.length fs));
  Alcotest.(check bool) "pool dropped by the degradation" true
    (r.Exec.pool = None);
  Alcotest.(check bool) "degraded results bit-equal" true
    (List.for_all2 (fun a b -> a = b) expect r.Exec.results)

let test_exec_strict_cap_degrades () =
  let prog = gen_chain 2 in
  let cpl = Pipeline.compile prog in
  let args = args_n 6 in
  let r =
    Exec.run ~mode:Exec.Full ~pool_cap:8 ~strict_cap:true
      cpl.Pipeline.unopt args
  in
  Alcotest.(check bool) "pool-cap fault recorded" true
    (List.exists
       (fun f -> Fault.layer f = "pool-cap")
       r.Exec.faults);
  Alcotest.(check bool) "pool dropped" true (r.Exec.pool = None);
  Alcotest.(check bool) "results bit-equal" true
    (List.for_all2
       (fun a b -> a = b)
       (Ir.Interp.run prog args) r.Exec.results)

let test_exec_fail_fast_raises () =
  let prog = gen_chain 2 in
  let cpl = Pipeline.compile prog in
  match
    Exec.run ~mode:Exec.Full ~fail_safe:false ~oom_at:1 cpl.Pipeline.unopt
      (args_n 5)
  with
  | _ -> Alcotest.fail "expected a raised device fault"
  | exception Fault.Fault (Fault.Device_oom _) -> ()

(* Counter consistency under injected faults: each device-obtained
   block is freed at most once - by the degradation flush, an unpooled
   free at last use, or the teardown sweep - never double-counted,
   wherever the fault lands in the run. *)
let test_exec_counters_consistent_under_faults () =
  let prog = gen_chain 3 in
  let cpl = Pipeline.compile prog in
  let args = args_n 6 in
  let clean = Exec.run ~mode:Exec.Full cpl.Pipeline.unopt args in
  let total =
    clean.Exec.counters.Device.allocs
    + clean.Exec.counters.Device.scratch_allocs
  in
  Alcotest.(check bool) "program allocates" true (total > 0);
  for site = 1 to total do
    let r =
      Exec.run ~mode:Exec.Full ~oom_at:site cpl.Pipeline.unopt args
    in
    let cnt = r.Exec.counters in
    if cnt.Device.frees > cnt.Device.allocs then
      Alcotest.failf "oom at %d: %d frees for %d allocs (double count)"
        site cnt.Device.frees cnt.Device.allocs;
    Alcotest.(check int)
      (Printf.sprintf "oom at %d: exactly one fault" site)
      1
      (List.length r.Exec.faults)
  done

(* Without the pool every device block must be freed exactly once: a
   clean full run balances its books (the teardown sweep frees what
   the last-use analysis could not prove dead, and nothing twice). *)
let test_exec_unpooled_frees_balance () =
  let prog = gen_chain 3 in
  let cpl = Pipeline.compile prog in
  let r = Exec.run ~mode:Exec.Full ~pool:false cpl.Pipeline.unopt (args_n 6) in
  Alcotest.(check int) "frees = allocs on a clean unpooled run"
    r.Exec.counters.Device.allocs r.Exec.counters.Device.frees

(* ---------------------------------------------------------------- *)
(* qcheck: random program, random fault point                        *)
(* ---------------------------------------------------------------- *)

let injectable_passes = [ "shortcircuit"; "reuse"; "pack" ]

let prop_fail_safe_never_raises =
  QCheck.Test.make
    ~name:"fail-safe: random program + random fault point never raises"
    ~count:(Qcount.count 15)
    (QCheck.make
       ~print:(fun (k, pidx, site, nv) ->
         Printf.sprintf "chain=%d pass=%s site=%d n=%d" k
           (List.nth injectable_passes pidx)
           site nv)
       QCheck.Gen.(
         quad (int_range 1 4) (int_range 0 2) (int_range 1 60)
           (int_range 4 8)))
    (fun (k, pidx, site, nv) ->
      let pass = List.nth injectable_passes pidx in
      let prog = gen_chain k in
      let args = args_n nv in
      Chaos.arm_crash ~pass ~at:site;
      Fun.protect ~finally:Chaos.disarm (fun () ->
          (* invariant 1: the fail-safe compile never raises (any
             exception here fails the property) *)
          let cpl = Pipeline.compile ~fail_safe:true prog in
          (* invariant 2: results bit-equal to the reference *)
          if not (pack_matches_interp cpl prog args) then
            QCheck.Test.fail_report "degraded results diverged";
          (* invariant 3: every recovery entry blames the injected
             layer (the only fault in play is our crash) *)
          List.iter
            (fun (r : Pipeline.recovery) ->
              match r.Pipeline.r_fault with
              | Fault.Pass_crash { pass = p; _ } when p = pass -> ()
              | f ->
                  QCheck.Test.fail_reportf
                    "recovery blames %s, injected %s" (Fault.to_string f)
                    pass)
            cpl.Pipeline.recovery;
          true))

(* ---------------------------------------------------------------- *)
(* The campaign driver                                               *)
(* ---------------------------------------------------------------- *)

let test_chaosdrive_campaign () =
  let prog = gen_chain 2 in
  let camp =
    Benchsuite.Chaosdrive.run ~seed:7 ~rounds:1
      [ ("chain", prog, args_n 5) ]
  in
  Alcotest.(check bool) "campaign holds all three invariants" true
    (Benchsuite.Chaosdrive.ok camp);
  (match camp.Benchsuite.Chaosdrive.benches with
  | [ b ] ->
      Alcotest.(check int) "nine injections per bench per round" 9
        (List.length b.Benchsuite.Chaosdrive.c_injections);
      List.iter
        (fun cls ->
          Alcotest.(check bool)
            (cls ^ " class represented") true
            (List.exists
               (fun (i : Benchsuite.Chaosdrive.injection) ->
                 i.Benchsuite.Chaosdrive.i_class = cls)
               b.Benchsuite.Chaosdrive.c_injections))
        [ "prover-budget"; "pass-crash"; "cert-refuted"; "device-oom";
          "pool-cap" ]
  | bs -> Alcotest.failf "expected one bench, got %d" (List.length bs));
  Alcotest.(check bool) "campaign is reproducible from its seed" true
    (Benchsuite.Chaosdrive.json camp
    = Benchsuite.Chaosdrive.json
        (Benchsuite.Chaosdrive.run ~seed:7 ~rounds:1
           [ ("chain", prog, args_n 5) ]))

let tests =
  [
    Alcotest.test_case "budget 0: every obligation Undecided" `Quick
      test_budget_zero_undecided;
    Alcotest.test_case "budget 0: pipeline stays lint-clean" `Quick
      test_budget_zero_pipeline_lint_clean;
    Alcotest.test_case "memo budget 0: verdicts unaffected" `Quick
      test_budget_memo_cap;
    Alcotest.test_case "injected crash contained and blamed" `Quick
      test_crash_contained_and_blamed;
    Alcotest.test_case "forged certificate contained" `Quick
      test_forge_contained;
    Alcotest.test_case "fail-fast propagates the pass bug" `Quick
      test_fail_fast_propagates;
    Alcotest.test_case "executor OOM degrades to unpooled" `Quick
      test_exec_oom_degrades;
    Alcotest.test_case "strict pool cap degrades to unpooled" `Quick
      test_exec_strict_cap_degrades;
    Alcotest.test_case "executor fail-fast raises the fault" `Quick
      test_exec_fail_fast_raises;
    Alcotest.test_case "counters consistent under injected faults" `Quick
      test_exec_counters_consistent_under_faults;
    Alcotest.test_case "unpooled frees balance allocs" `Quick
      test_exec_unpooled_frees_balance;
    QCheck_alcotest.to_alcotest prop_fail_safe_never_raises;
    Alcotest.test_case "chaosdrive campaign on a generated program" `Quick
      test_chaosdrive_campaign;
  ]
