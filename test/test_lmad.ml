(* Tests for the LMAD library: index-function transformations (Fig. 3),
   loop aggregation (section II-B), anti-unification (section IV-C) and
   the non-overlap test (section V-C, Fig. 9), including qcheck
   soundness properties against brute-force enumeration. *)

module P = Symalg.Poly
module Pr = Symalg.Prover
open Lmads

let v = P.var
let c = P.const

(* ---------------------------------------------------------------- *)
(* LMAD basics                                                       *)
(* ---------------------------------------------------------------- *)

let test_row_col_major () =
  let rm = Lmad.row_major [ v "n"; v "m" ] in
  let cm = Lmad.col_major [ v "n"; v "m" ] in
  (* L1 = 0 + {(n : m)(m : 1)}, L2 = 0 + {(n : 1)(m : n)} (section IV-A) *)
  Alcotest.(check bool) "row major"
    true
    (Lmad.equal rm (Lmad.make P.zero [ Lmad.dim (v "n") (v "m"); Lmad.dim (v "m") P.one ]));
  Alcotest.(check bool) "col major"
    true
    (Lmad.equal cm (Lmad.make P.zero [ Lmad.dim (v "n") P.one; Lmad.dim (v "m") (v "n") ]))

let test_apply () =
  let rm = Lmad.row_major [ c 4; c 5 ] in
  let env _ = 0 in
  Alcotest.(check int) "rm(2,3)" 13 (Lmad.apply_int env rm [ 2; 3 ]);
  let cm = Lmad.col_major [ c 4; c 5 ] in
  Alcotest.(check int) "cm(2,3)" 14 (Lmad.apply_int env cm [ 2; 3 ])

let test_slice_column () =
  (* extract column i of a row-major n x m matrix: offset i, dims (n, m) *)
  let rm = Lmad.row_major [ v "n"; v "m" ] in
  let sl =
    Lmad.slice
      [ Lmad.Range { start = P.zero; len = v "n"; step = P.one }; Lmad.Fix (v "i") ]
      rm
  in
  Alcotest.(check bool) "column slice"
    true
    (Lmad.equal sl (Lmad.make (v "i") [ Lmad.dim (v "n") (v "m") ]))

let test_transpose_involution () =
  let rm = Lmad.row_major [ v "n"; v "m" ] in
  Alcotest.(check bool) "(M^T)^T = M" true
    (Lmad.equal rm (Lmad.transpose (Lmad.transpose rm)))

let test_reverse_involution () =
  let rm = Lmad.row_major [ v "n" ] in
  Alcotest.(check bool) "reverse . reverse = id" true
    (Lmad.equal rm (Lmad.reverse 0 (Lmad.reverse 0 rm)))

let test_eval_points () =
  (* 1 + {(3 : 2)} = {1, 3, 5} *)
  let l = Lmad.make P.one [ Lmad.dim (c 3) (c 2) ] in
  Alcotest.(check (list int)) "points" [ 1; 3; 5 ]
    (Lmad.eval_points (fun _ -> 0) l)

let test_expand_loop () =
  (* section II-B: W_i = t + i*m + {(n : k)} aggregated over i < m
     gives t + {(m : m), (n : k)} *)
  let ctx = Pr.empty in
  let wi =
    Lmad.make
      (P.add (v "t") (P.mul (v "i") (v "m")))
      [ Lmad.dim (v "n") (v "k") ]
  in
  match Lmad.expand_loop ctx "i" ~count:(v "m") wi with
  | Some w ->
      Alcotest.(check bool) "aggregated" true
        (Lmad.equal w
           (Lmad.make (v "t")
              [ Lmad.dim (v "m") (v "m"); Lmad.dim (v "n") (v "k") ]))
  | None -> Alcotest.fail "expand_loop failed"

let test_expand_loop_datadep () =
  (* offset j*n + j with j iteration-variant (not the loop var): the
     offset is not linear in the loop variable i -> fails only if i
     actually appears nonlinearly; here i is absent so expansion is the
     identity *)
  let ctx = Pr.empty in
  let l = Lmad.make (P.mul (v "j") (v "n")) [ Lmad.dim (v "n") P.one ] in
  (match Lmad.expand_loop ctx "i" ~count:(v "m") l with
  | Some l' -> Alcotest.(check bool) "invariant lmad unchanged" true (Lmad.equal l l')
  | None -> Alcotest.fail "should succeed trivially");
  (* nonlinear in the loop var: must fail *)
  let l2 = Lmad.make (P.mul (v "i") (v "i")) [ Lmad.dim (v "n") P.one ] in
  Alcotest.(check bool) "nonlinear fails" true
    (Lmad.expand_loop ctx "i" ~count:(v "m") l2 = None)

(* ---------------------------------------------------------------- *)
(* Fig. 3: chained index-function computation                        *)
(* ---------------------------------------------------------------- *)

let test_fig3 () =
  let ctx = Pr.empty in
  (* as = 0..63              : 0 + {(64 : 1)} *)
  let as_ = Ixfn.row_major [ c 64 ] in
  (* bs = unflatten 8 8 as   : 0 + {(8 : 8), (8 : 1)} *)
  let bs = Ixfn.reshape ctx [ c 8; c 8 ] as_ in
  Alcotest.(check bool) "bs single-lmad" true (Ixfn.is_single bs);
  (* cs = transpose bs       : 0 + {(8 : 1), (8 : 8)} *)
  let cs = Ixfn.transpose bs in
  Alcotest.(check bool) "cs ixfn" true
    (Lmad.equal (Ixfn.head cs)
       (Lmad.make P.zero [ Lmad.dim (c 8) P.one; Lmad.dim (c 8) (c 8) ]));
  (* ds = cs[1:3:2, 4:8:1]   : 33 + {(2 : 2), (4 : 8)} *)
  let ds =
    Ixfn.slice
      [
        Lmad.Range { start = c 1; len = c 2; step = c 2 };
        Lmad.Range { start = c 4; len = c 4; step = c 1 };
      ]
      cs
  in
  Alcotest.(check bool) "ds ixfn" true
    (Lmad.equal (Ixfn.head ds)
       (Lmad.make (c 33) [ Lmad.dim (c 2) (c 2); Lmad.dim (c 4) (c 8) ]));
  (* es = (flatten ds)[2:]   : needs a second LMAD *)
  let flat = Ixfn.reshape ctx [ c 8 ] ds in
  Alcotest.(check bool) "flatten of ds needs chain" false (Ixfn.is_single flat);
  let es =
    Ixfn.slice [ Lmad.Range { start = c 2; len = c 6; step = c 1 } ] flat
  in
  (* es[5] resides at flat offset 59 of the memory of as *)
  Alcotest.(check int) "es[5] -> 59" 59 (Ixfn.apply_int (fun _ -> 0) es [ 5 ])

(* ---------------------------------------------------------------- *)
(* Anti-unification (section IV-C)                                   *)
(* ---------------------------------------------------------------- *)

let test_antiunify () =
  (* lgg of R(n,m) and C(n,m) = 0 + {(n : a), (m : b)} *)
  let r = Ixfn.row_major [ v "n"; v "m" ] in
  let cmaj = Ixfn.col_major [ v "n"; v "m" ] in
  match Antiunify.ixfns r cmaj with
  | None -> Alcotest.fail "anti-unification failed"
  | Some { ixfn; bindings } ->
      Alcotest.(check int) "two existentials" 2 (List.length bindings);
      let l = Ixfn.head ixfn in
      Alcotest.(check bool) "offset stays 0" true (P.is_zero (Lmad.offset l));
      (* substituting left values gives back R, right gives C *)
      let to_left =
        List.fold_left
          (fun acc b -> P.SM.add b.Antiunify.exist b.Antiunify.left acc)
          P.SM.empty bindings
      in
      let to_right =
        List.fold_left
          (fun acc b -> P.SM.add b.Antiunify.exist b.Antiunify.right acc)
          P.SM.empty bindings
      in
      Alcotest.(check bool) "lgg[left] = R" true
        (Ixfn.equal (Ixfn.subst_map to_left ixfn) r);
      Alcotest.(check bool) "lgg[right] = C" true
        (Ixfn.equal (Ixfn.subst_map to_right ixfn) cmaj)

let test_antiunify_equal () =
  let r = Ixfn.row_major [ v "n" ] in
  match Antiunify.ixfns r r with
  | Some { bindings; ixfn } ->
      Alcotest.(check int) "no existentials" 0 (List.length bindings);
      Alcotest.(check bool) "identity" true (Ixfn.equal ixfn r)
  | None -> Alcotest.fail "anti-unification of equal ixfns failed"

let test_antiunify_rank_mismatch () =
  let r1 = Ixfn.row_major [ v "n" ] in
  let r2 = Ixfn.row_major [ v "n"; v "m" ] in
  Alcotest.(check bool) "rank mismatch fails" true
    (Antiunify.ixfns r1 r2 = None)

(* ---------------------------------------------------------------- *)
(* Non-overlap: Fig. 9                                               *)
(* ---------------------------------------------------------------- *)

let nw_ctx () =
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "i" ~lo:(c 0) ~hi:(P.sub (v "q") P.one) () in
  Pr.add_eq ctx "n" (P.add (P.mul (v "q") (v "b")) P.one)

let nw_lmads () =
  let n = v "n" and b = v "b" and i = v "i" in
  let nb_b = P.sub (P.mul n b) b in
  let w =
    Lmad.make
      (P.sum [ P.mul i b; n; P.one ])
      [ Lmad.dim (P.add i P.one) nb_b; Lmad.dim b n; Lmad.dim b P.one ]
  in
  let rvert =
    Lmad.make (P.mul i b)
      [ Lmad.dim (P.add i P.one) nb_b; Lmad.dim (P.add b P.one) n ]
  in
  let rhoriz =
    Lmad.make
      (P.add (P.mul i b) P.one)
      [ Lmad.dim (P.add i P.one) nb_b; Lmad.dim b P.one ]
  in
  (w, rvert, rhoriz)

let test_nw_nonoverlap () =
  let ctx = nw_ctx () in
  let w, rvert, rhoriz = nw_lmads () in
  Alcotest.(check bool) "W # Rvert (Fig. 9)" true (Nonoverlap.disjoint ctx w rvert);
  Alcotest.(check bool) "W # Rhoriz" true (Nonoverlap.disjoint ctx w rhoriz);
  Alcotest.(check bool) "W # W must stay unknown" false
    (Nonoverlap.disjoint ctx w w)

let test_nw_concrete () =
  (* the symbolic claim checked by brute force on several instances *)
  let module IS = Set.Make (Int) in
  let w, rvert, rhoriz = nw_lmads () in
  List.iter
    (fun (q, b) ->
      let n = (q * b) + 1 in
      for i = 0 to q - 1 do
        let env = function
          | "q" -> q
          | "b" -> b
          | "n" -> n
          | "i" -> i
          | s -> Alcotest.failf "unexpected var %s" s
        in
        let pw = IS.of_list (Lmad.eval_points env w) in
        let pv = IS.of_list (Lmad.eval_points env rvert) in
        let ph = IS.of_list (Lmad.eval_points env rhoriz) in
        Alcotest.(check bool)
          (Printf.sprintf "q=%d b=%d i=%d vert" q b i)
          true
          (IS.is_empty (IS.inter pw pv));
        Alcotest.(check bool)
          (Printf.sprintf "q=%d b=%d i=%d horiz" q b i)
          true
          (IS.is_empty (IS.inter pw ph))
      done)
    [ (2, 2); (3, 3); (2, 5); (5, 2); (4, 4) ]

let test_simple_disjoint () =
  let ctx = Pr.add_range Pr.empty "n" ~lo:(c 1) () in
  (* evens vs odds *)
  let evens = Lmad.make P.zero [ Lmad.dim (v "n") (c 2) ] in
  let odds = Lmad.make P.one [ Lmad.dim (v "n") (c 2) ] in
  Alcotest.(check bool) "evens # odds" true (Nonoverlap.disjoint ctx evens odds);
  (* adjacent halves *)
  let lo = Lmad.make P.zero [ Lmad.dim (v "n") P.one ] in
  let hi = Lmad.make (v "n") [ Lmad.dim (v "n") P.one ] in
  Alcotest.(check bool) "low half # high half" true (Nonoverlap.disjoint ctx lo hi);
  (* overlapping ranges must not be claimed disjoint *)
  let a = Lmad.make P.zero [ Lmad.dim (P.add (v "n") P.one) P.one ] in
  let b = Lmad.make (v "n") [ Lmad.dim (v "n") P.one ] in
  Alcotest.(check bool) "overlap detected" false (Nonoverlap.disjoint ctx a b)

let test_rows_disjoint () =
  (* distinct rows of a matrix: row i vs row j with i < j *)
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "m" ~lo:(c 1) () in
  let ctx = Pr.add_range ctx "i" ~lo:(c 0) () in
  let ctx =
    Pr.add_range ctx "j"
      ~lo:(P.add (v "i") P.one)
      ()
  in
  let row x = Lmad.make (P.mul x (v "m")) [ Lmad.dim (v "m") P.one ] in
  Alcotest.(check bool) "row i # row j (i<j)" true
    (Nonoverlap.disjoint ctx (row (v "i")) (row (v "j")))

(* ---------------------------------------------------------------- *)
(* qcheck: non-overlap soundness against enumeration                 *)
(* ---------------------------------------------------------------- *)

let gen_small_lmad =
  QCheck.Gen.(
    let dim = pair (int_range 1 4) (int_range 1 6) in
    let* ndims = int_range 1 3 in
    let* off = int_range 0 8 in
    let* dims = list_size (return ndims) dim in
    return
      (Lmad.make (c off)
         (List.map (fun (n, s) -> Lmad.dim (c n) (c s)) dims)))

let arb_lmad_pair =
  QCheck.make
    ~print:(fun (a, b) -> Lmad.to_string a ^ " vs " ^ Lmad.to_string b)
    QCheck.Gen.(pair gen_small_lmad gen_small_lmad)

let prop_nonoverlap_sound =
  QCheck.Test.make ~name:"nonoverlap sufficient (never unsound)" ~count:(Qcount.count 500)
    arb_lmad_pair (fun (l1, l2) ->
      let ctx = Pr.empty in
      if Nonoverlap.disjoint ctx l1 l2 then (
        let module IS = Set.Make (Int) in
        let p1 = IS.of_list (Lmad.eval_points (fun _ -> 0) l1) in
        let p2 = IS.of_list (Lmad.eval_points (fun _ -> 0) l2) in
        IS.is_empty (IS.inter p1 p2))
      else true)

let prop_slice_points =
  (* slicing an LMAD = selecting the corresponding subset of points *)
  QCheck.Test.make ~name:"triplet slice = point subset" ~count:(Qcount.count 200)
    (QCheck.make
       ~print:(fun ((n, m), (a, l)) -> Printf.sprintf "n=%d m=%d a=%d l=%d" n m a l)
       QCheck.Gen.(pair (pair (int_range 1 5) (int_range 1 5))
                     (pair (int_range 0 2) (int_range 1 3))))
    (fun ((n, m), (a, l)) ->
      QCheck.assume (a + l <= n);
      let rm = Lmad.row_major [ c n; c m ] in
      let sl =
        Lmad.slice
          [
            Lmad.Range { start = c a; len = c l; step = P.one };
            Lmad.Range { start = P.zero; len = c m; step = P.one };
          ]
          rm
      in
      let pts = Lmad.eval_points (fun _ -> 0) sl in
      let expected =
        List.concat
          (List.init l (fun i -> List.init m (fun j -> ((a + i) * m) + j)))
      in
      pts = expected)

let prop_expand_loop_sound =
  (* aggregation over i<k = union of per-i point sets *)
  QCheck.Test.make ~name:"loop aggregation = union of iterations" ~count:(Qcount.count 200)
    (QCheck.make
       ~print:(fun (k, (s, (n, st))) ->
         Printf.sprintf "k=%d s=%d n=%d st=%d" k s n st)
       QCheck.Gen.(pair (int_range 1 4)
                     (pair (int_range 0 5) (pair (int_range 1 4) (int_range 1 4)))))
    (fun (k, (s, (n, st))) ->
      let li =
        Lmad.make (P.add (P.mul (v "i") (c s)) (c 1)) [ Lmad.dim (c n) (c st) ]
      in
      match Lmad.expand_loop Pr.empty "i" ~count:(c k) li with
      | None -> s <> 0 (* only stride-0 may fail, and it should not *)
      | Some agg ->
          let module IS = Set.Make (Int) in
          let union =
            List.fold_left
              (fun acc i ->
                IS.union acc
                  (IS.of_list
                     (Lmad.eval_points
                        (function "i" -> i | _ -> 0)
                        li)))
              IS.empty
              (List.init k Fun.id)
          in
          IS.equal union (IS.of_list (Lmad.eval_points (fun _ -> 0) agg)))

let tests =
  [
    Alcotest.test_case "row/col major" `Quick test_row_col_major;
    Alcotest.test_case "apply" `Quick test_apply;
    Alcotest.test_case "slice column" `Quick test_slice_column;
    Alcotest.test_case "transpose involution" `Quick test_transpose_involution;
    Alcotest.test_case "reverse involution" `Quick test_reverse_involution;
    Alcotest.test_case "eval points" `Quick test_eval_points;
    Alcotest.test_case "expand loop (sec II-B)" `Quick test_expand_loop;
    Alcotest.test_case "expand loop edge cases" `Quick test_expand_loop_datadep;
    Alcotest.test_case "Fig. 3 chain" `Quick test_fig3;
    Alcotest.test_case "anti-unify R/C" `Quick test_antiunify;
    Alcotest.test_case "anti-unify equal" `Quick test_antiunify_equal;
    Alcotest.test_case "anti-unify rank mismatch" `Quick
      test_antiunify_rank_mismatch;
    Alcotest.test_case "NW non-overlap (Fig. 9)" `Quick test_nw_nonoverlap;
    Alcotest.test_case "NW concrete enumeration" `Quick test_nw_concrete;
    Alcotest.test_case "simple disjointness" `Quick test_simple_disjoint;
    Alcotest.test_case "rows disjoint" `Quick test_rows_disjoint;
    QCheck_alcotest.to_alcotest prop_nonoverlap_sound;
    QCheck_alcotest.to_alcotest prop_slice_points;
    QCheck_alcotest.to_alcotest prop_expand_loop_sound;
  ]
