(* Tests for the symbolic algebra engine: polynomial normal forms,
   substitution, division, and the inequality prover. *)

module P = Symalg.Poly
module Pr = Symalg.Prover

let v = P.var
let c = P.const

let poly = Alcotest.testable P.pp P.equal

let check_poly = Alcotest.check poly

(* ---------------------------------------------------------------- *)
(* Polynomial arithmetic                                             *)
(* ---------------------------------------------------------------- *)

let test_normal_form () =
  check_poly "x + x = 2x" (P.scale 2 (v "x")) (P.add (v "x") (v "x"));
  check_poly "x - x = 0" P.zero (P.sub (v "x") (v "x"));
  check_poly "commutative mul" (P.mul (v "x") (v "y")) (P.mul (v "y") (v "x"));
  check_poly "distribution"
    (P.add (P.mul (v "x") (v "y")) (P.mul (v "x") (v "z")))
    (P.mul (v "x") (P.add (v "y") (v "z")));
  Alcotest.(check bool) "zero is const" true (P.is_const P.zero);
  Alcotest.(check (option int)) "const extraction" (Some 7) (P.to_const_opt (c 7))

let test_eval () =
  let p = P.add (P.mul (v "x") (v "x")) (P.scale 3 (v "y")) in
  let env = function "x" -> 5 | "y" -> 2 | _ -> assert false in
  Alcotest.(check int) "x^2 + 3y at (5,2)" 31 (P.eval env p)

let test_subst () =
  (* n := q*b + 1 in n*b - b  ==>  q*b^2 *)
  let nb_b = P.sub (P.mul (v "n") (v "b")) (v "b") in
  let res = P.subst "n" (P.add (P.mul (v "q") (v "b")) P.one) nb_b in
  check_poly "nb - b [n := qb+1]" (P.mul (v "q") (P.mul (v "b") (v "b"))) res

let test_subst_fixpoint () =
  let env =
    P.SM.add "a" (P.add (v "b") P.one) (P.SM.add "b" (P.var "c") P.SM.empty)
  in
  let res = P.subst_fixpoint env (v "a") in
  check_poly "a -> b+1 -> c+1" (P.add (v "c") P.one) res

let test_linear_in () =
  (* i*b + n + 1 is linear in i with coefficient b *)
  let p = P.add (P.mul (v "i") (v "b")) (P.add (v "n") P.one) in
  match P.linear_in "i" p with
  | Some (a, b) ->
      check_poly "coefficient" (v "b") a;
      check_poly "remainder" (P.add (v "n") P.one) b
  | None -> Alcotest.fail "linear_in failed"

let test_linear_in_nonlinear () =
  let p = P.mul (v "i") (v "i") in
  Alcotest.(check bool) "i^2 not linear" true (P.linear_in "i" p = None)

let test_div_rem () =
  (* (nb - b - n - 1) / (nb - b) = 1 rem (-n - 1) *)
  let nb_b = P.sub (P.mul (v "n") (v "b")) (v "b") in
  let d = P.sub nb_b (P.add (v "n") P.one) in
  let q, r = P.div_rem d nb_b in
  check_poly "quotient" P.one q;
  check_poly "remainder" (P.neg (P.add (v "n") P.one)) r

let test_div_rem_exact () =
  let p = P.mul (P.add (v "x") (c 2)) (v "y") in
  let q, r = P.div_rem p (v "y") in
  check_poly "quotient" (P.add (v "x") (c 2)) q;
  check_poly "no remainder" P.zero r

(* ---------------------------------------------------------------- *)
(* Prover                                                            *)
(* ---------------------------------------------------------------- *)

let nw_ctx () =
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "q" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "b" ~lo:(c 2) () in
  let ctx = Pr.add_range ctx "i" ~lo:(c 0) ~hi:(P.sub (v "q") P.one) () in
  Pr.add_eq ctx "n" (P.add (P.mul (v "q") (v "b")) P.one)

let test_prover_basic () =
  let ctx = Pr.add_range Pr.empty "x" ~lo:(c 0) () in
  Alcotest.(check bool) "x >= 0" true (Pr.prove_nonneg ctx (v "x"));
  Alcotest.(check bool) "x + 1 > 0" true (Pr.prove_pos ctx (P.add (v "x") P.one));
  Alcotest.(check bool) "not x > 0" false (Pr.prove_pos ctx (v "x"));
  Alcotest.(check bool) "not -x >= 0" false (Pr.prove_nonneg ctx (P.neg (v "x")))

let test_prover_products () =
  let ctx = Pr.add_range (Pr.add_range Pr.empty "a" ~lo:(c 1) ()) "b" ~lo:(c 3) () in
  Alcotest.(check bool) "ab >= 3" true
    (Pr.prove_ge ctx (P.mul (v "a") (v "b")) (c 3));
  Alcotest.(check bool) "ab - a >= 0" true
    (Pr.prove_nonneg ctx (P.sub (P.mul (v "a") (v "b")) (v "a")))

let test_prover_nw_facts () =
  let ctx = nw_ctx () in
  let n = v "n" and b = v "b" and q = v "q" in
  let nb_b = P.sub (P.mul n b) b in
  Alcotest.(check bool) "n > b" true (Pr.prove_gt ctx n b);
  Alcotest.(check bool) "n > 2b fails at q=2? no: qb+1 > 2b holds for q>=2" true
    (Pr.prove_gt ctx n (P.scale 2 b));
  Alcotest.(check bool) "nb-b > 2b" true (Pr.prove_gt ctx nb_b (P.scale 2 b));
  Alcotest.(check bool) "mixed-sign: 2b^2-2b-1 >= 0" true
    (Pr.prove_nonneg ctx
       (P.sub (P.scale 2 (P.mul b b)) (P.add (P.scale 2 b) P.one)));
  Alcotest.(check bool) "i <= q-1 usable: q - i >= 1" true
    (Pr.prove_ge ctx (P.sub q (v "i")) P.one);
  Alcotest.(check bool) "rewriting: nb - b = qb^2" true
    (Pr.prove_eq ctx nb_b (P.mul q (P.mul b b)))

let test_prover_soundness_negative () =
  let ctx = nw_ctx () in
  (* things that are FALSE must not be provable *)
  Alcotest.(check bool) "not b > n" false (Pr.prove_gt ctx (v "b") (v "n"));
  Alcotest.(check bool) "not i >= 1" false (Pr.prove_ge ctx (v "i") P.one);
  Alcotest.(check bool) "not n = b" false (Pr.prove_eq ctx (v "n") (v "b"))

let test_prover_symbolic_upper () =
  (* j in [0, m-1], m <= k  ==>  j < k *)
  let ctx = Pr.empty in
  let ctx = Pr.add_range ctx "m" ~lo:(c 1) ~hi:(v "k") () in
  let ctx = Pr.add_range ctx "j" ~lo:(c 0) ~hi:(P.sub (v "m") P.one) () in
  let ctx = Pr.add_range ctx "k" ~lo:(c 1) () in
  Alcotest.(check bool) "j < k" true (Pr.prove_lt ctx (v "j") (v "k"))

let test_interval () =
  let ctx = Pr.add_range Pr.empty "x" ~lo:(c 2) ~hi:(c 5) () in
  let lo, hi = Pr.interval ctx (P.mul (v "x") (v "x")) in
  Alcotest.(check bool) "x^2 in [4,25]"
    true
    (lo = Pr.Ext.Fin 4 && hi = Pr.Ext.Fin 25)

(* Randomized soundness: anything the prover claims nonneg must evaluate
   nonneg on every sampled point of the context. *)
let test_prover_random_soundness () =
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 200 do
    (* random polynomial over x,y with coeffs in [-4,4], deg <= 2 *)
    let rand_coeff () = Random.State.int rng 9 - 4 in
    let p =
      P.sum
        [
          P.scale (rand_coeff ()) (P.mul (v "x") (v "x"));
          P.scale (rand_coeff ()) (P.mul (v "x") (v "y"));
          P.scale (rand_coeff ()) (v "x");
          P.scale (rand_coeff ()) (v "y");
          P.const (rand_coeff ());
        ]
    in
    let xlo = Random.State.int rng 4 and ylo = Random.State.int rng 4 in
    let ctx =
      Pr.add_range (Pr.add_range Pr.empty "x" ~lo:(c xlo) ()) "y" ~lo:(c ylo) ()
    in
    if Pr.prove_nonneg ctx p then
      for x = xlo to xlo + 6 do
        for y = ylo to ylo + 6 do
          let value = P.eval (function "x" -> x | "y" -> y | _ -> 0) p in
          if value < 0 then
            Alcotest.failf "prover unsound: %a < 0 at x=%d y=%d" P.pp p x y
        done
      done
  done

(* qcheck: algebraic laws of the polynomial ring *)
let gen_poly =
  QCheck.Gen.(
    let mono =
      let* coeff = int_range (-5) 5 in
      let* vars = list_size (int_range 0 2) (oneofl [ "x"; "y"; "z" ]) in
      return (List.fold_left (fun p v -> P.mul p (P.var v)) (P.const coeff) vars)
    in
    let* ms = list_size (int_range 0 4) mono in
    return (P.sum ms))

let arb_poly = QCheck.make ~print:P.to_string gen_poly

let eval_at p = P.eval (function "x" -> 3 | "y" -> -2 | "z" -> 5 | _ -> 0) p

let prop_ring_laws =
  QCheck.Test.make ~name:"ring laws under evaluation" ~count:(Qcount.count 300)
    (QCheck.pair arb_poly arb_poly)
    (fun (p, q) ->
      eval_at (P.add p q) = eval_at p + eval_at q
      && eval_at (P.mul p q) = eval_at p * eval_at q
      && eval_at (P.sub p q) = eval_at p - eval_at q
      && P.equal (P.add p q) (P.add q p)
      && P.equal (P.mul p q) (P.mul q p))

let prop_div_rem =
  QCheck.Test.make ~name:"div_rem reconstructs" ~count:(Qcount.count 300)
    (QCheck.pair arb_poly arb_poly)
    (fun (p, d) ->
      QCheck.assume (not (P.is_zero d));
      let q, r = P.div_rem p d in
      P.equal p (P.add (P.mul q d) r))

let prop_subst_homomorphism =
  QCheck.Test.make ~name:"substitution commutes with evaluation" ~count:(Qcount.count 300)
    (QCheck.pair arb_poly arb_poly)
    (fun (p, by) ->
      let env = function "x" -> 3 | "y" -> -2 | "z" -> 5 | _ -> 0 in
      let env' v = if v = "x" then P.eval env by else env v in
      P.eval env (P.subst "x" by p) = P.eval env' p)

let prop_linear_in_reconstructs =
  QCheck.Test.make ~name:"linear_in reconstructs" ~count:(Qcount.count 300) arb_poly
    (fun p ->
      match P.linear_in "x" p with
      | None -> P.degree_in "x" p > 1
      | Some (a, b) ->
          P.equal p (P.add (P.mul a (P.var "x")) b)
          && (not (P.mem_var "x" a))
          && not (P.mem_var "x" b))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_ring_laws;
    QCheck_alcotest.to_alcotest prop_div_rem;
    QCheck_alcotest.to_alcotest prop_subst_homomorphism;
    QCheck_alcotest.to_alcotest prop_linear_in_reconstructs;
    Alcotest.test_case "normal form" `Quick test_normal_form;
    Alcotest.test_case "eval" `Quick test_eval;
    Alcotest.test_case "subst" `Quick test_subst;
    Alcotest.test_case "subst fixpoint" `Quick test_subst_fixpoint;
    Alcotest.test_case "linear_in" `Quick test_linear_in;
    Alcotest.test_case "linear_in nonlinear" `Quick test_linear_in_nonlinear;
    Alcotest.test_case "div_rem" `Quick test_div_rem;
    Alcotest.test_case "div_rem exact" `Quick test_div_rem_exact;
    Alcotest.test_case "prover basic" `Quick test_prover_basic;
    Alcotest.test_case "prover products" `Quick test_prover_products;
    Alcotest.test_case "prover NW facts" `Quick test_prover_nw_facts;
    Alcotest.test_case "prover negatives" `Quick test_prover_soundness_negative;
    Alcotest.test_case "prover symbolic upper" `Quick test_prover_symbolic_upper;
    Alcotest.test_case "interval" `Quick test_interval;
    Alcotest.test_case "prover random soundness" `Quick
      test_prover_random_soundness;
  ]
