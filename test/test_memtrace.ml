(* Tests for the dynamic trace cross-checker (Memtrace).

   Differential design, mirroring test_memlint: every honestly traced
   execution - synthetic programs and the whole benchmark suite - must
   check clean, and each injected defect must be caught by the right
   rule family:

   - an executor bug shifting kernel writes     -> footprint
     (invisible to the static linter: the annotations are untouched)
   - an elided copy that was not a no-op        -> circuit
   - reading dead contents before an overwrite  -> last-use

   plus qcheck properties running the full static + dynamic
   verification stack over randomly sized programs. *)

open Ir
open Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Build
module Exec = Gpu.Exec
module Trace = Core.Trace
module MT = Core.Memtrace
module ML = Core.Memlint
module Runner = Benchsuite.Runner

let c = P.const
let n = P.var "n"
let ctx_n2 = Pr.add_range Pr.empty "n" ~lo:(c 2) ()

let fill b name cnt seed =
  B.mapnest b name [ (Names.fresh "i", cnt) ] (fun bb ->
      [ B.fadd bb (Float seed) (Float 0.0) ])

(* bs = fill n; xss[0:n] = bs.  Short-circuiting rebases the fill into
   the *first* half of xss's block, so the off-by-one write mutation
   lands on offset n: still inside the 2n-element block (no executor
   bounds error) but outside the declared [0, n) region - a bug only
   the dynamic footprint check can see. *)
let circuit_prog () =
  B.prog "mtcirc" ~ctx:ctx_n2
    ~params:[ pat_elem "n" i64; pat_elem "xss" (arr F64 [ P.scale 2 n ]) ]
    ~ret:[ arr F64 [ P.scale 2 n ] ]
    (fun b ->
      let bs = fill b "bs" n 7.0 in
      [
        Var
          (B.bind b "xss2"
             (EUpdate
                {
                  dst = "xss";
                  slc =
                    STriplet
                      [ SRange { start = P.zero; len = n; step = P.one } ];
                  src = SrcArr bs;
                }));
      ])

let circuit_args nv =
  [
    Ir.Value.VInt nv;
    Ir.Value.VArr
      (Ir.Value.of_floats [ 2 * nv ]
         (Array.init (2 * nv) (fun i -> float_of_int i)));
  ]

let traced ?mutation (p : prog) args =
  let r = Exec.run ~mode:Exec.Full ~trace:true ~variant:"opt" ?mutation p args in
  MT.check (Option.get r.Exec.trace)

let rules r = List.map (fun v -> v.MT.rule) r.MT.violations

let details r =
  List.map (fun v -> Fmt.str "%a" MT.pp_violation v) r.MT.violations

(* ---------------------------------------------------------------- *)
(* The honest run of the circuit program is clean (and circuits)     *)
(* ---------------------------------------------------------------- *)

let test_circuit_clean () =
  let compiled = Core.Pipeline.compile (circuit_prog ()) in
  Alcotest.(check bool)
    "the circuit fires" true
    (compiled.Core.Pipeline.stats.Core.Shortcircuit.succeeded > 0);
  let u, o = Runner.trace_check ~compiled (circuit_prog ()) (circuit_args 6) in
  Alcotest.(check (list string)) "unopt trace clean" [] (details u.Runner.check);
  Alcotest.(check (list string)) "opt trace clean" [] (details o.Runner.check);
  Alcotest.(check bool) "opt elided the update copy" true
    (o.Runner.check.MT.elided > 0);
  Alcotest.(check bool) "offsets were actually enumerated" true
    (o.Runner.check.MT.offsets_checked > 0)

(* ---------------------------------------------------------------- *)
(* Mutation: off-by-one kernel writes - static-clean, dynamic-caught *)
(* ---------------------------------------------------------------- *)

let test_off_by_one_write () =
  let compiled = Core.Pipeline.compile ~lint:true (circuit_prog ()) in
  (* the mutation lives in the executor, not the program: every static
     stage still lints clean *)
  (match Core.Pipeline.first_lint_error compiled.Core.Pipeline.lint with
  | None -> ()
  | Some (stage, v) ->
      Alcotest.failf "static lint should stay clean, %s raised %s" stage
        (Fmt.str "%a" ML.pp_violation v));
  let r =
    traced ~mutation:Exec.Off_by_one_write compiled.Core.Pipeline.opt
      (circuit_args 6)
  in
  Alcotest.(check bool) "mutated run is rejected" true (not (MT.ok r));
  Alcotest.(check bool) "blamed on the footprint rule" true
    (List.mem "footprint" (rules r))

(* ---------------------------------------------------------------- *)
(* Synthetic traces: circuit and last-use defects                    *)
(* ---------------------------------------------------------------- *)

let region coff len : Trace.clmad list = [ { coff; cdims = [ (len, 1) ] } ]

let test_bogus_elision () =
  let t = Trace.create ~program:"synthetic" ~variant:"opt" ~exact:true () in
  Trace.alloc t ~bid:0 ~name:"a" ~elems:8 ~in_kernel:false;
  (* elided, but source and destination images differ by one element *)
  Trace.copy t ~src:0 ~dst:0 ~shape:[ 4 ] ~six:(region 0 4) ~dix:(region 1 4)
    ~bytes:32.0 ~elided:true ~in_kernel:false;
  let r = MT.check t in
  Alcotest.(check (list string)) "blames circuit" [ "circuit" ] (rules r);
  (* a performed self-copy between those same overlapping regions is
     equally wrong *)
  let t2 = Trace.create ~program:"synthetic" ~variant:"opt" ~exact:true () in
  Trace.alloc t2 ~bid:0 ~name:"a" ~elems:8 ~in_kernel:false;
  Trace.copy t2 ~src:0 ~dst:0 ~shape:[ 4 ] ~six:(region 0 4)
    ~dix:(region 1 4) ~bytes:32.0 ~elided:false ~in_kernel:false;
  Alcotest.(check (list string))
    "overlapping self-copy blames circuit" [ "circuit" ]
    (rules (MT.check t2));
  (* disjoint halves are fine *)
  let t3 = Trace.create ~program:"synthetic" ~variant:"opt" ~exact:true () in
  Trace.alloc t3 ~bid:0 ~name:"a" ~elems:8 ~in_kernel:false;
  Trace.copy t3 ~src:0 ~dst:0 ~shape:[ 4 ] ~six:(region 0 4)
    ~dix:(region 4 4) ~bytes:32.0 ~elided:false ~in_kernel:false;
  Alcotest.(check (list string)) "disjoint self-copy clean" []
    (rules (MT.check t3))

let whole_block fvar fbid : Trace.footprint =
  { Trace.fvar; fbid; fregion = None }

let synthetic_kernel t ~label ~reads ~writes ~declared_writes ~declared_reads
    =
  Trace.kernel_begin t ~label ~threads:1 ~declared_writes ~declared_reads;
  List.iter (fun (bid, off) -> Trace.kernel_read t ~bid ~off) reads;
  List.iter (fun (bid, off) -> Trace.kernel_write t ~bid ~off) writes;
  Trace.kernel_end t ~read_bytes:0.0 ~write_bytes:0.0

let test_read_after_last_use () =
  let t = Trace.create ~program:"synthetic" ~variant:"opt" ~exact:true () in
  Trace.alloc t ~bid:0 ~name:"a" ~elems:4 ~in_kernel:false;
  synthetic_kernel t ~label:"produce" ~reads:[] ~writes:[ (0, 0) ]
    ~declared_writes:[ whole_block "a" 0 ] ~declared_reads:[];
  Trace.last_use t ~var:"a" ~bid:0;
  synthetic_kernel t ~label:"zombie" ~reads:[ (0, 0) ] ~writes:[]
    ~declared_writes:[] ~declared_reads:[ whole_block "a" 0 ];
  let r = MT.check t in
  Alcotest.(check (list string)) "blames last-use" [ "last-use" ] (rules r);
  (* same trace, but a kernel overwrites the block first: the reuse
     short-circuiting arranges is legal *)
  let t2 = Trace.create ~program:"synthetic" ~variant:"opt" ~exact:true () in
  Trace.alloc t2 ~bid:0 ~name:"a" ~elems:4 ~in_kernel:false;
  synthetic_kernel t2 ~label:"produce" ~reads:[] ~writes:[ (0, 0) ]
    ~declared_writes:[ whole_block "a" 0 ] ~declared_reads:[];
  Trace.last_use t2 ~var:"a" ~bid:0;
  synthetic_kernel t2 ~label:"recycle" ~reads:[] ~writes:[ (0, 0) ]
    ~declared_writes:[ whole_block "b" 0 ] ~declared_reads:[];
  synthetic_kernel t2 ~label:"consume" ~reads:[ (0, 0) ] ~writes:[]
    ~declared_writes:[] ~declared_reads:[ whole_block "b" 0 ];
  Alcotest.(check (list string)) "revived block reads clean" []
    (rules (MT.check t2))

(* ---------------------------------------------------------------- *)
(* The whole benchmark suite trace-checks clean, both variants       *)
(* ---------------------------------------------------------------- *)

let test_benchmarks_trace_clean () =
  List.iter
    (fun (name, prog, args) ->
      let u, o = Runner.trace_check prog args in
      Alcotest.(check (list string))
        (name ^ " unopt trace clean") [] (details u.Runner.check);
      Alcotest.(check (list string))
        (name ^ " opt trace clean") [] (details o.Runner.check))
    [
      ("nw", Benchsuite.Nw.prog, Benchsuite.Nw.small_args ~q:3 ~b:4);
      ("lud", Benchsuite.Lud.prog, Benchsuite.Lud.small_args ~q:3 ~b:4);
      ( "hotspot",
        Benchsuite.Hotspot.prog,
        Benchsuite.Hotspot.small_args ~n:16 ~steps:3 );
      ("lbm", Benchsuite.Lbm.prog, Benchsuite.Lbm.small_args ~n:8 ~steps:3);
      ( "optionpricing",
        Benchsuite.Option_pricing.prog,
        Benchsuite.Option_pricing.small_args ~npaths:64 ~nsteps:16 );
      ( "locvolcalib",
        Benchsuite.Locvolcalib.prog,
        Benchsuite.Locvolcalib.small_args ~numo:6 ~numx:12 ~numt:4 );
      ( "nn",
        Benchsuite.Nn.prog,
        Benchsuite.Nn.small_args ~nrec:100 ~nbatch:4 ~bsz:8 );
    ]

(* ---------------------------------------------------------------- *)
(* qcheck: the full verification stack over random sizes             *)
(* ---------------------------------------------------------------- *)

(* Every generated instance runs memlint over all pipeline stages and
   the memtrace cross-check over both executed variants. *)
let verified_pipeline prog args =
  let compiled = Core.Pipeline.compile ~lint:true prog in
  (match Core.Pipeline.first_lint_error compiled.Core.Pipeline.lint with
  | None -> ()
  | Some (stage, v) ->
      QCheck.Test.fail_reportf "memlint (%s): %a" stage ML.pp_violation v);
  let u, o = Runner.trace_check ~compiled prog args in
  List.iter
    (fun (which, (t : Runner.traced)) ->
      if not (MT.ok t.Runner.check) then
        QCheck.Test.fail_reportf "memtrace (%s): %a" which MT.pp_report
          t.Runner.check)
    [ ("unopt", u); ("opt", o) ];
  true

let prop_nw_verified =
  QCheck.Test.make ~name:"NW statically and dynamically verified" ~count:(Qcount.count 4)
    (QCheck.make
       ~print:(fun (q, b) -> Printf.sprintf "q=%d b=%d" q b)
       QCheck.Gen.(pair (int_range 2 3) (int_range 2 4)))
    (fun (q, b) ->
      verified_pipeline Benchsuite.Nw.prog (Benchsuite.Nw.small_args ~q ~b))

let prop_circuit_verified =
  QCheck.Test.make ~name:"update circuit statically and dynamically verified"
    ~count:(Qcount.count 6)
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 12))
    (fun nv -> verified_pipeline (circuit_prog ()) (circuit_args nv))

let tests =
  [
    Alcotest.test_case "circuit program traces clean" `Quick
      test_circuit_clean;
    Alcotest.test_case "mutation: off-by-one kernel write" `Quick
      test_off_by_one_write;
    Alcotest.test_case "synthetic: bogus elision" `Quick test_bogus_elision;
    Alcotest.test_case "synthetic: read after last use" `Quick
      test_read_after_last_use;
    Alcotest.test_case "benchmarks trace clean (both variants)" `Slow
      test_benchmarks_trace_clean;
    QCheck_alcotest.to_alcotest prop_nw_verified;
    QCheck_alcotest.to_alcotest prop_circuit_verified;
  ]
