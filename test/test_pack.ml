(* Tests for the arena-packing pass (Core.Pack).

   Five angles:

   - the pass itself: programs whose blocks survive reuse get packed
     into one arena at provably disjoint offsets - the whole-program
     planner folds the escaping result block in too - [--no-pack] is a
     counter-for-counter identity, and packing is a strict improvement
     where the benchmarks offer members (OptionPricing's two top-level
     blocks, LocVolCalib's tridiagonal pair promoted across the time
     loop into the program arena) and a no-op where they do not (NW
     retains no blocks after reuse);

   - forged certificates are refuted: a [Packed_disjoint] claim with
     overlapping offsets, a [Fits_in_arena] claim past the arena's
     extent, a pair [Hole_disjoint] claim whose members overlap in
     both address space and time, and an iteration [Hole_disjoint]
     claim for a member that escapes its loop's body result must all
     fall to the independent checker, with a concrete witness or a
     structural reason, never a shrug;

   - a mutated placement is rejected statically: rebasing two
     interfering equal-sized members to the same offset is a total
     clobber, and Memlint's reuse rule errors on it;

   - qcheck properties: random pack-shaped programs (k fills of
     distinct sizes, all live until a final combine) lint, certify,
     replay (memtrace) and skeleton-diff clean end to end with every
     member packed; and on random phased programs (members dying in
     waves, so lifetime holes open up), colour placement's executed
     arena extent never exceeds first-fit's. *)

open Ir
open Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Build
module C = Core.Certify
module ML = Core.Memlint
module MT = Core.Memtrace
module Lmad = Lmads.Lmad
module Ixfn = Lmads.Ixfn

let c = P.const
let n = P.var "n"
let ctx_n2 = Pr.add_range Pr.empty "n" ~lo:(c 2) ()

let fill b name cnt seed =
  B.mapnest b name [ (Names.fresh "i", cnt) ] (fun bb ->
      [ B.fadd bb (Float seed) (Float 0.0) ])

(* [k] fills, all live until a final elementwise combine: pairwise
   interfering, so packing must place all of them - at distinct
   offsets - inside one arena.  [grow] staggers the sizes (n, n+1,
   ...) to exercise first-fit over unequal extents; without it all
   members share size [n]. *)
let gen_pack ?(grow = true) k =
  B.prog "packgen" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let fills =
        List.init k (fun i ->
            let sz = if grow then P.add n (c i) else n in
            fill b (Printf.sprintf "x%d" i) sz (float_of_int (i + 1)))
      in
      let iv = Names.fresh "i" in
      let s =
        B.mapnest b "sum" [ (iv, n) ] (fun bb ->
            [
              List.fold_left
                (fun acc f -> B.fadd bb acc (B.index bb f [ P.var iv ]))
                (Float 0.0) fills;
            ])
      in
      [ Var s ])

let args nv = [ Value.VInt nv ]

(* ---------------------------------------------------------------- *)
(* The pass packs, and only when enabled                             *)
(* ---------------------------------------------------------------- *)

let test_pack_two_fills () =
  let cpl = Core.Pipeline.compile (gen_pack 2) in
  let st = cpl.Core.Pipeline.pack_stats in
  Alcotest.(check int) "one arena" 1 st.Core.Pack.arenas;
  (* the whole-program planner packs the escaping result too: its
     interval is open-ended (the arena outlives the program body) *)
  Alcotest.(check int) "all three members placed" 3 st.Core.Pack.packed;
  Alcotest.(check int) "nothing stays out" 0 st.Core.Pack.unpacked;
  Alcotest.(check int) "member allocs absorbed" 3
    cpl.Core.Pipeline.pack_dead_allocs;
  let run p =
    (Gpu.Exec.run ~mode:Gpu.Exec.Cost_only p (args 8)).Gpu.Exec.counters
  in
  let r = run cpl.Core.Pipeline.reuse and k = run cpl.Core.Pipeline.pack in
  Alcotest.(check bool) "strictly fewer device allocations" true
    (k.Gpu.Device.allocs < r.Gpu.Device.allocs);
  Alcotest.(check int) "the arena is counted" 1 k.Gpu.Device.arena_allocs;
  Alcotest.(check bool) "peak never grows" true
    (k.Gpu.Device.peak_bytes <= r.Gpu.Device.peak_bytes);
  (* both variants compute the same thing *)
  let full p = (Gpu.Exec.run ~mode:Gpu.Exec.Full p (args 8)).Gpu.Exec.results in
  Alcotest.(check bool) "results agree" true
    (full cpl.Core.Pipeline.reuse = full cpl.Core.Pipeline.pack)

let test_no_pack_identity () =
  let on = Core.Pipeline.compile (gen_pack 2) in
  let off = Core.Pipeline.compile ~pack:Core.Pack.disabled (gen_pack 2) in
  let st = off.Core.Pipeline.pack_stats in
  Alcotest.(check int) "no arenas" 0 st.Core.Pack.arenas;
  Alcotest.(check int) "no members" 0 st.Core.Pack.packed;
  Alcotest.(check int) "no absorbed allocs" 0
    off.Core.Pipeline.pack_dead_allocs;
  let count p =
    (Gpu.Exec.run ~mode:Gpu.Exec.Cost_only p (args 8)).Gpu.Exec.counters
  in
  let a = count off.Core.Pipeline.pack and b = count off.Core.Pipeline.reuse in
  (* disabled: the pack variant is the reuse variant, counter for counter *)
  Alcotest.(check int) "allocs" b.Gpu.Device.allocs a.Gpu.Device.allocs;
  Alcotest.(check int) "arena allocs" 0 a.Gpu.Device.arena_allocs;
  Alcotest.(check (float 0.0)) "peak" b.Gpu.Device.peak_bytes
    a.Gpu.Device.peak_bytes;
  Alcotest.(check (float 0.0)) "traffic"
    (b.Gpu.Device.kernel_reads +. b.Gpu.Device.kernel_writes)
    (a.Gpu.Device.kernel_reads +. a.Gpu.Device.kernel_writes);
  (* enabled on the same program, the pack variant differs *)
  let k = count on.Core.Pipeline.pack in
  Alcotest.(check bool) "enabled run actually packs" true
    (k.Gpu.Device.allocs < a.Gpu.Device.allocs)

(* ---------------------------------------------------------------- *)
(* Strict improvements on the benchmarks that offer members          *)
(* ---------------------------------------------------------------- *)

let test_benchmark_improvements () =
  let counters prog variant args =
    let cpl = Core.Pipeline.compile prog in
    let p =
      match variant with
      | `Reuse -> cpl.Core.Pipeline.reuse
      | `Pack -> cpl.Core.Pipeline.pack
    in
    (Gpu.Exec.run ~mode:Gpu.Exec.Cost_only p args).Gpu.Exec.counters
  in
  (* OptionPricing: the two surviving top-level blocks pack into one
     arena - strictly fewer device allocations (2 -> 1) *)
  let op_args = Benchsuite.Option_pricing.args ~npaths:64 ~nsteps:16 in
  let r = counters Benchsuite.Option_pricing.prog `Reuse op_args in
  let k = counters Benchsuite.Option_pricing.prog `Pack op_args in
  Alcotest.(check int) "optionpricing: reuse leaves two blocks" 2
    r.Gpu.Device.allocs;
  Alcotest.(check int) "optionpricing: packed into one arena" 1
    k.Gpu.Device.allocs;
  Alcotest.(check int) "optionpricing: the block is an arena" 1
    k.Gpu.Device.arena_allocs;
  Alcotest.(check bool) "optionpricing: peak never grows" true
    (k.Gpu.Device.peak_bytes <= r.Gpu.Device.peak_bytes);
  (* LocVolCalib: the whole-program planner promotes the tridiagonal
     pair (cp, dp) across the time loop and the result kernel into the
     program arena - the per-iteration scratch allocations disappear
     entirely, the static allocation count strictly decreases
     (3 EAllocs -> 1 arena), and the modeled peak shrinks (the
     promoted regions are charged once, not per in-flight thread) *)
  let lv_args = Benchsuite.Locvolcalib.args ~numo:4 ~numx:8 ~numt:3 in
  let lv = Core.Pipeline.compile Benchsuite.Locvolcalib.prog in
  let static_allocs p =
    let n = ref 0 in
    let rec go (b : block) =
      List.iter
        (fun (s : stm) ->
          (match s.exp with EAlloc _ -> incr n | _ -> ());
          match s.exp with
          | EMap { body; _ } | ELoop { body; _ } -> go body
          | EIf { tb; fb; _ } ->
              go tb;
              go fb
          | _ -> ())
        b.stms
    in
    go p.body;
    !n
  in
  Alcotest.(check int) "locvolcalib: reuse leaves three static allocs" 3
    (static_allocs lv.Core.Pipeline.reuse);
  Alcotest.(check int) "locvolcalib: the planner leaves one" 1
    (static_allocs lv.Core.Pipeline.pack);
  Alcotest.(check int) "locvolcalib: two members promoted cross-scope" 2
    lv.Core.Pipeline.pack_stats.Core.Pack.promoted;
  Alcotest.(check int) "locvolcalib: two iteration holes certified" 2
    lv.Core.Pipeline.pack_stats.Core.Pack.holes;
  let r = counters Benchsuite.Locvolcalib.prog `Reuse lv_args in
  let k = counters Benchsuite.Locvolcalib.prog `Pack lv_args in
  Alcotest.(check bool) "locvolcalib: scratch allocs strictly drop" true
    (k.Gpu.Device.scratch_allocs < r.Gpu.Device.scratch_allocs);
  Alcotest.(check int) "locvolcalib: no scratch allocs remain" 0
    k.Gpu.Device.scratch_allocs;
  Alcotest.(check bool) "locvolcalib: peak strictly shrinks" true
    (k.Gpu.Device.peak_bytes < r.Gpu.Device.peak_bytes);
  (* NW: reuse leaves no block behind, so packing must be an exact
     no-op - it never degrades a program it cannot improve *)
  let nw_args = Benchsuite.Nw.small_args ~q:2 ~b:4 in
  let r = counters Benchsuite.Nw.prog `Reuse nw_args in
  let k = counters Benchsuite.Nw.prog `Pack nw_args in
  Alcotest.(check int) "nw: allocs unchanged" r.Gpu.Device.allocs
    k.Gpu.Device.allocs;
  Alcotest.(check (float 0.0)) "nw: peak unchanged" r.Gpu.Device.peak_bytes
    k.Gpu.Device.peak_bytes

(* ---------------------------------------------------------------- *)
(* Forged certificates are refuted with concrete witnesses           *)
(* ---------------------------------------------------------------- *)

(* The memory IR of [gen_pack 2] allocates x0's block (n elements) and
   x1's block (n+1): real allocations for the checker to re-derive
   sizes from, so only the offsets below are forged. *)
let two_blocks p =
  let mems =
    List.filter_map
      (fun (s : stm) ->
        match (s.pat, s.exp) with
        | [ pe ], EAlloc _ when pe.pt = TMem -> Some pe.pv
        | _ -> None)
      p.body.stms
  in
  match mems with
  | a :: b :: _ -> (a, b)
  | _ -> Alcotest.fail "expected two allocated blocks"

let test_forged_offset_refuted () =
  let p = Core.Pipeline.to_memory_ir (gen_pack 2) in
  let pre = Ir.Clone.clone_prog p in
  let ma, mb = two_blocks p in
  let r = C.recorder ~pass:"pack" in
  let rw = C.Packing { arena = ma; members = [ ma; mb ] } in
  (* placements [0, n) and [1, n+2): overlapping for every n >= 2 *)
  C.emit r rw ~ctx:ctx_n2
    (C.Packed_disjoint
       {
         arena = ma;
         a = ma;
         a_off = P.zero;
         a_size = n;
         b = mb;
         b_off = P.one;
         b_size = P.add n P.one;
       });
  let report = C.check ~pass:"pack" ~pre ~post:p (C.obligations r) in
  Alcotest.(check bool) "forged offset refuted" true (not (C.ok report));
  match C.failures report with
  | [ { verdict = C.Failed msg; _ } ] ->
      Alcotest.(check bool) "refutation carries a concrete witness" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected exactly one Failed obligation"

let test_forged_extent_refuted () =
  let p = Core.Pipeline.to_memory_ir (gen_pack 2) in
  let pre = Ir.Clone.clone_prog p in
  let ma, mb = two_blocks p in
  let r = C.recorder ~pass:"pack" in
  let rw = C.Packing { arena = ma; members = [ mb ] } in
  (* the "arena" (x0's block) holds n elements; placing the (n+1)-deep
     member at offset 2 ends at n+3 - past the extent at every n *)
  C.emit r rw ~ctx:ctx_n2
    (C.Fits_in_arena
       {
         arena = ma;
         member = mb;
         off = c 2;
         size = P.add n P.one;
         extent = n;
       });
  let report = C.check ~pass:"pack" ~pre ~post:p (C.obligations r) in
  Alcotest.(check bool) "forged extent refuted" true (not (C.ok report))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_forged_hole_pair_refuted () =
  let p = Core.Pipeline.to_memory_ir (gen_pack 2) in
  let pre = Ir.Clone.clone_prog p in
  let ma, mb = two_blocks p in
  let r = C.recorder ~pass:"pack" in
  let rw = C.Packing { arena = ma; members = [ ma; mb ] } in
  (* a hole claim over members that overlap in address space ([0, n)
     vs [1, n+2)) AND in time (both fills live until the combine): the
     checker must re-derive the live ranges, see them intersect, and
     refute with a concrete overlapping offset *)
  C.emit r rw ~ctx:ctx_n2
    (C.Hole_disjoint
       {
         arena = ma;
         a = ma;
         a_off = P.zero;
         a_size = n;
         b = mb;
         b_off = P.one;
         b_size = P.add n P.one;
         iter = None;
       });
  let report = C.check ~pass:"pack" ~pre ~post:p (C.obligations r) in
  Alcotest.(check bool) "forged hole refuted" true (not (C.ok report));
  match C.failures report with
  | [ { verdict = C.Failed msg; _ } ] ->
      Alcotest.(check bool) "witness names an overlapping offset" true
        (contains msg "lies in both placements")
  | _ -> Alcotest.fail "expected exactly one Failed obligation"

(* A loop whose body builds a fresh array every iteration and yields
   it: the freshly written contents escape through the body result, so
   the slot cannot be re-occupied across iterations - the lifetime
   hole a forged iteration claim asserts does not exist. *)
let gen_escaping_loop () =
  B.prog "holegen" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let init = fill b "init" n 0.0 in
      let acc =
        B.loop1 b "acc" (arr F64 [ n ]) (Var init) ~bound:(c 4)
          (fun bb ~param ~i:_ ->
            let j = Names.fresh "j" in
            let fresh =
              B.mapnest bb "fresh" [ (j, n) ] (fun bbb ->
                  [ B.fadd bbb (B.index bbb param [ P.var j ]) (Float 1.0) ])
            in
            Var fresh)
      in
      [ Var acc ])

let test_forged_hole_iter_refuted () =
  let p = Core.Pipeline.to_memory_ir (gen_escaping_loop ()) in
  let pre = Ir.Clone.clone_prog p in
  let loop_s =
    match
      List.find_opt
        (fun (s : stm) -> match s.exp with ELoop _ -> true | _ -> false)
        p.body.stms
    with
    | Some s -> s
    | None -> Alcotest.fail "expected a top-level loop"
  in
  let loop_binding = (List.hd loop_s.pat).pv in
  let body =
    match loop_s.exp with ELoop { body; _ } -> body | _ -> assert false
  in
  let rec first_alloc (b : block) =
    List.find_map
      (fun (s : stm) ->
        match s.exp with
        | EAlloc _ -> Some (List.hd s.pat).pv
        | EMap { body; _ } | ELoop { body; _ } -> first_alloc body
        | EIf { tb; fb; _ } -> (
            match first_alloc tb with
            | Some v -> Some v
            | None -> first_alloc fb)
        | _ -> None)
      b.stms
  in
  let member =
    match first_alloc body with
    | Some m -> m
    | None -> Alcotest.fail "expected an allocation inside the loop body"
  in
  let r = C.recorder ~pass:"pack" in
  let rw = C.Packing { arena = member; members = [ member ] } in
  C.emit r rw ~ctx:ctx_n2
    (C.Hole_disjoint
       {
         arena = member;
         a = member;
         a_off = P.zero;
         a_size = n;
         b = member;
         b_off = P.zero;
         b_size = n;
         iter = Some loop_binding;
       });
  let report = C.check ~pass:"pack" ~pre ~post:p (C.obligations r) in
  Alcotest.(check bool) "forged iteration hole refuted" true
    (not (C.ok report));
  match C.failures report with
  | [ { verdict = C.Failed msg; _ } ] ->
      Alcotest.(check bool) "refutation names the escape" true
        (contains msg "escape")
  | _ -> Alcotest.fail "expected exactly one Failed obligation"

(* ---------------------------------------------------------------- *)
(* Memlint rejects an overlapping interfering placement              *)
(* ---------------------------------------------------------------- *)

let zero_pe (pe : pat_elem) =
  match pe.pmem with
  | Some mi when Core.Pack.is_arena mi.block -> (
      match List.rev (Ixfn.chain mi.ixfn) with
      | last :: before when not (P.is_zero (Lmad.offset last)) ->
          let last' = Lmad.make P.zero (Lmad.dims last) in
          pe.pmem <-
            Some { mi with ixfn = Ixfn.of_chain (List.rev (last' :: before)) }
      | _ -> ())
  | _ -> ()

let rec zero_arena_offsets (b : block) =
  List.iter
    (fun (s : stm) ->
      List.iter zero_pe s.pat;
      match s.exp with
      | EMap { body; _ } -> zero_arena_offsets body
      | ELoop { params; body; _ } ->
          List.iter (fun (pe, _) -> zero_pe pe) params;
          zero_arena_offsets body
      | EIf { tb; fb; _ } ->
          zero_arena_offsets tb;
          zero_arena_offsets fb
      | _ -> ())
    b.stms

let test_memlint_rejects_overlap () =
  (* equal sizes: after forcing both placements to offset 0 the two
     interfering members' memory LMADs are equal - a total clobber the
     reuse rule must Error on, not merely warn *)
  let cpl = Core.Pipeline.compile (gen_pack ~grow:false 2) in
  Alcotest.(check int) "the honest program packed" 1
    cpl.Core.Pipeline.pack_stats.Core.Pack.arenas;
  let honest = ML.check ~stage:"pack" cpl.Core.Pipeline.pack in
  Alcotest.(check int) "honest placements lint clean" 0
    (List.length (ML.errors honest));
  let mutated = Ir.Clone.clone_prog cpl.Core.Pipeline.pack in
  zero_arena_offsets mutated.body;
  let report = ML.check ~stage:"pack" mutated in
  Alcotest.(check bool) "overlapping placement rejected" true
    (List.length (ML.errors report) > 0)

(* ---------------------------------------------------------------- *)
(* qcheck: packed random programs verify end to end                  *)
(* ---------------------------------------------------------------- *)

let render_skeleton t =
  List.map
    (fun e -> Fmt.str "%a" Core.Trace.pp_skeleton_event e)
    (Core.Trace.skeleton t)

let prop_packed_programs_verify =
  QCheck.Test.make ~name:"packed programs lint+certify+replay clean" ~count:(Qcount.count 6)
    (QCheck.make
       ~print:(fun (k, nv) -> Printf.sprintf "fills=%d n=%d" k nv)
       QCheck.Gen.(pair (int_range 2 4) (int_range 2 6)))
    (fun (k, nv) ->
      let cpl = Core.Pipeline.compile ~lint:true ~certify:true (gen_pack k) in
      let st = cpl.Core.Pipeline.pack_stats in
      (* k fills plus the escaping result, all in one program arena *)
      if st.Core.Pack.arenas <> 1 || st.Core.Pack.packed <> k + 1 then
        QCheck.Test.fail_reportf "expected %d members in one arena, got %d/%d"
          (k + 1) st.Core.Pack.arenas st.Core.Pack.packed;
      (match Core.Pipeline.first_lint_error cpl.Core.Pipeline.lint with
      | None -> ()
      | Some (stage, v) ->
          QCheck.Test.fail_reportf "lint error after %s: %a" stage
            ML.pp_violation v);
      (match Core.Pipeline.first_cert_failure cpl.Core.Pipeline.certs with
      | None -> ()
      | Some (pass, ch) ->
          QCheck.Test.fail_reportf "refuted obligation in %s: %a" pass
            C.pp_checked ch);
      let traced p =
        Gpu.Exec.run ~mode:Gpu.Exec.Full ~trace:true ~variant:"qc" p (args nv)
      in
      let rr = traced cpl.Core.Pipeline.reuse
      and rk = traced cpl.Core.Pipeline.pack in
      let mt = MT.check (Option.get rk.Gpu.Exec.trace) in
      if mt.MT.violations <> [] then
        QCheck.Test.fail_reportf "memtrace violation on the packed variant";
      if rr.Gpu.Exec.results <> rk.Gpu.Exec.results then
        QCheck.Test.fail_reportf "reuse and pack variants disagree";
      render_skeleton (Option.get rr.Gpu.Exec.trace)
      = render_skeleton (Option.get rk.Gpu.Exec.trace))

(* [phases] waves of [k] fills each: a wave's fills die at that wave's
   combine, while the per-wave sums survive to a final combine.  Fills
   of different waves never interfere, so the planner can stack them
   into lifetime holes - exactly the shape where placement order
   matters. *)
let gen_phased phases k =
  B.prog "phasegen" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let sums =
        List.init phases (fun ph ->
            let fills =
              List.init k (fun i ->
                  let sz = P.add n (c ((ph + i) mod (k + 1))) in
                  fill b
                    (Printf.sprintf "p%dx%d" ph i)
                    sz
                    (float_of_int (i + 1)))
            in
            let iv = Names.fresh "i" in
            B.mapnest b (Printf.sprintf "s%d" ph) [ (iv, n) ] (fun bb ->
                [
                  List.fold_left
                    (fun acc f -> B.fadd bb acc (B.index bb f [ P.var iv ]))
                    (Float 0.0) fills;
                ]))
      in
      let iv = Names.fresh "i" in
      let tot =
        B.mapnest b "tot" [ (iv, n) ] (fun bb ->
            [
              List.fold_left
                (fun acc s -> B.fadd bb acc (B.index bb s [ P.var iv ]))
                (Float 0.0) sums;
            ])
      in
      [ Var tot ])

(* The planner only commits a colour plan when its extent is provably
   no larger than first-fit's; this re-checks the guarantee on the
   executed numbers, the same surface the CI pack-order A/B gate
   uses. *)
let prop_colour_no_worse_than_firstfit =
  QCheck.Test.make ~name:"colour arena extent never exceeds first-fit"
    ~count:(Qcount.count 6)
    (QCheck.make
       ~print:(fun (ph, k, nv) ->
         Printf.sprintf "phases=%d fills=%d n=%d" ph k nv)
       QCheck.Gen.(triple (int_range 2 3) (int_range 2 3) (int_range 2 6)))
    (fun (ph, k, nv) ->
      let compile order =
        Core.Pipeline.compile ~certify:true
          ~pack:{ Core.Pack.default_options with order }
          (gen_phased ph k)
      in
      let ff = compile Core.Pack.Firstfit
      and cl = compile Core.Pack.Colour in
      (match Core.Pipeline.first_cert_failure cl.Core.Pipeline.certs with
      | None -> ()
      | Some (pass, chk) ->
          QCheck.Test.fail_reportf "refuted obligation under colour in %s: %a"
            pass C.pp_checked chk);
      if cl.Core.Pipeline.pack_stats.Core.Pack.arenas = 0 then
        QCheck.Test.fail_reportf "phased program did not pack";
      let bytes cpl =
        (Gpu.Exec.run ~mode:Gpu.Exec.Cost_only cpl.Core.Pipeline.pack
           (args nv))
          .Gpu.Exec.counters
          .Gpu.Device.arena_bytes
      in
      let fb = bytes ff and cb = bytes cl in
      if cb > fb then
        QCheck.Test.fail_reportf
          "colour arena extent %.0f exceeds first-fit's %.0f" cb fb;
      true)

let tests =
  [
    Alcotest.test_case "two interfering fills pack into one arena" `Quick
      test_pack_two_fills;
    Alcotest.test_case "--no-pack is a counter identity" `Quick
      test_no_pack_identity;
    Alcotest.test_case "benchmark improvements are strict" `Quick
      test_benchmark_improvements;
    Alcotest.test_case "mutation: forged offset refuted" `Quick
      test_forged_offset_refuted;
    Alcotest.test_case "mutation: forged extent refuted" `Quick
      test_forged_extent_refuted;
    Alcotest.test_case "mutation: forged pair hole refuted" `Quick
      test_forged_hole_pair_refuted;
    Alcotest.test_case "mutation: forged iteration hole refuted" `Quick
      test_forged_hole_iter_refuted;
    Alcotest.test_case "mutation: memlint rejects overlapping placement"
      `Quick test_memlint_rejects_overlap;
    QCheck_alcotest.to_alcotest prop_packed_programs_verify;
    QCheck_alcotest.to_alcotest prop_colour_no_worse_than_firstfit;
  ]
