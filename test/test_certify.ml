(* Tests for the translation-validation layer (Certify).

   Three angles, mirroring the memlint/memtrace suites:

   - the honest pipeline certifies: every benchmark compiles with
     ~certify:true to zero failed obligations, and the passes actually
     emit obligations (an empty certificate would vacuously pass);

   - mutations are rejected: a bogus rewrite injected behind the
     checker's back - coalescing two overlapping-live blocks, a forged
     size-domination proof, a forged non-overlap claim - must be
     refuted by the independent checker.  The coalesce mutation is
     deliberately chosen so Memlint only *warns* (the footprints are
     not structurally equal, so its total-clobber rule cannot error):
     memcert is the layer that catches it;

   - a qcheck property: randomly generated programs (chains of
     map stages, stacks of sibling loops with hoistable temporaries)
     certify end to end with zero failed obligations. *)

open Ir
open Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Build
module C = Core.Certify
module ML = Core.Memlint
module Lmad = Lmads.Lmad
module Refset = Lmads.Refset

let c = P.const
let n = P.var "n"
let ctx_n2 = Pr.add_range Pr.empty "n" ~lo:(c 2) ()

let fill b name cnt seed =
  B.mapnest b name [ (Names.fresh "i", cnt) ] (fun bb ->
      [ B.fadd bb (Float seed) (Float 0.0) ])

(* ---------------------------------------------------------------- *)
(* The honest pipeline certifies                                     *)
(* ---------------------------------------------------------------- *)

let bench_progs =
  [
    ("nw", Benchsuite.Nw.prog);
    ("lud", Benchsuite.Lud.prog);
    ("hotspot", Benchsuite.Hotspot.prog);
    ("lbm", Benchsuite.Lbm.prog);
    ("optionpricing", Benchsuite.Option_pricing.prog);
    ("locvolcalib", Benchsuite.Locvolcalib.prog);
    ("nn", Benchsuite.Nn.prog);
  ]

let test_benchmarks_certify () =
  List.iter
    (fun (name, prog) ->
      let cpl = Core.Pipeline.compile ~certify:true prog in
      let certs = cpl.Core.Pipeline.certs in
      Alcotest.(check int)
        (name ^ ": one certificate per rewriting pass")
        8 (List.length certs);
      (match Core.Pipeline.first_cert_failure certs with
      | None -> ()
      | Some (pass, ch) ->
          Alcotest.failf "%s: refuted obligation in %s: %a" name pass
            C.pp_checked ch);
      let emitted =
        List.fold_left (fun a (_, r) -> a + r.C.emitted) 0 certs
      in
      Alcotest.(check bool)
        (name ^ ": obligations were emitted")
        true (emitted > 0))
    bench_progs

(* Without ~certify:true no certificates are collected - the recording
   must be strictly opt-in (zero cost on the normal path). *)
let test_certify_opt_in () =
  let cpl = Core.Pipeline.compile Benchsuite.Hotspot.prog in
  Alcotest.(check int) "no certificates by default" 0
    (List.length cpl.Core.Pipeline.certs)

(* ---------------------------------------------------------------- *)
(* Mutation: overlapping-live coalesce that memlint only warns about  *)
(* ---------------------------------------------------------------- *)

(* a = fill n; b = fill (n-1); c = a + b.  Both fills are live until
   the sum; their footprints differ in length, so after forging b into
   a's block Memlint cannot prove a total clobber (LMADs not equal)
   and only warns.  The forged Live_disjoint obligation must still be
   refuted by the certificate checker. *)
let overlap2_prog () =
  let m = P.sub n P.one in
  B.prog "certoverlap" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ m ] ]
    (fun b ->
      let a = fill b "as" n 1.0 in
      let bs = fill b "bs" m 2.0 in
      let iv = Names.fresh "i" in
      let cs =
        B.mapnest b "cs" [ (iv, m) ] (fun bb ->
            [
              B.fadd bb
                (B.index bb a [ P.var iv ])
                (B.index bb bs [ P.var iv ]);
            ])
      in
      [ Var cs ])

(* The first two annotated mapnest bindings at the top level, in
   binding order: the two fills. *)
let two_fills (p : prog) =
  let fills =
    List.filter_map
      (fun s ->
        match s.exp with
        | EMap _ ->
            List.find_opt
              (fun pe -> is_array_typ pe.pt && pe.pmem <> None)
              s.pat
        | _ -> None)
      p.body.stms
  in
  match fills with
  | pe_a :: pe_b :: _ -> (pe_a, pe_b)
  | _ -> Alcotest.fail "expected two annotated fills"

let test_mutation_overlapping_coalesce () =
  let p = Core.Pipeline.to_memory_ir (overlap2_prog ()) in
  let pre = Ir.Clone.clone_prog p in
  let pe_a, pe_b = two_fills p in
  let ma = Option.get pe_a.pmem and mb = Option.get pe_b.pmem in
  (* the bogus rewrite: rebind b into a's block, keeping b's own
     (shorter) index function - exactly what a buggy coalescer that
     skipped the liveness check would produce *)
  pe_b.pmem <- Some { block = ma.block; ixfn = mb.ixfn };
  let lint = ML.check p in
  Alcotest.(check bool) "memlint only warns (no total clobber)" true
    (ML.ok lint);
  Alcotest.(check bool) "memlint did notice the share" true
    (ML.warnings lint <> []);
  let r = C.recorder ~pass:"reuse" in
  C.emit r
    (C.Coalesce { earlier = ma.block; later = mb.block })
    ~ctx:ctx_n2
    (C.Live_disjoint
       { earlier = ma.block; later = mb.block; movers = [ pe_b.pv ] });
  let report =
    C.check ~pass:"reuse" ~pre ~post:p (C.obligations r)
  in
  Alcotest.(check bool) "memcert refutes the coalesce" true
    (not (C.ok report));
  match C.failures report with
  | { verdict = C.Failed _; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected a Failed verdict"

(* A true claim under the same rewrite kind is proved - the checker
   rejects the mutation above because it is false, not because of the
   claim's shape. *)
let test_honest_claim_accepted () =
  let p = Core.Pipeline.to_memory_ir (overlap2_prog ()) in
  let pre = Ir.Clone.clone_prog p in
  let pe_a, pe_b = two_fills p in
  let ma = Option.get pe_a.pmem and mb = Option.get pe_b.pmem in
  let r = C.recorder ~pass:"reuse" in
  C.emit r
    (C.Coalesce { earlier = ma.block; later = mb.block })
    ~ctx:ctx_n2
    (C.Size_ge { larger = n; smaller = P.sub n P.one });
  let report = C.check ~pass:"reuse" ~pre ~post:p (C.obligations r) in
  Alcotest.(check bool) "honest size claim proved" true (C.ok report)

(* ---------------------------------------------------------------- *)
(* Mutation: forged size proof (rotation of a growing buffer)         *)
(* ---------------------------------------------------------------- *)

let test_mutation_forged_size_proof () =
  let p = Core.Pipeline.to_memory_ir (overlap2_prog ()) in
  let pre = Ir.Clone.clone_prog p in
  let r = C.recorder ~pass:"reuse" in
  (* n >= 2n is false for every admissible n: the prover refuses and
     the concretizer must find a numeric witness, not wave it through *)
  C.emit r
    (C.Rotation
       {
         loop_binding = "acc";
         init_block = "mem_fake";
         init_arr = "a0";
         spare_block = "mem_spare";
       })
    ~ctx:ctx_n2
    (C.Size_ge { larger = n; smaller = P.mul (c 2) n });
  let report = C.check ~pass:"reuse" ~pre ~post:p (C.obligations r) in
  Alcotest.(check bool) "forged size proof refuted" true
    (not (C.ok report));
  match C.failures report with
  | [ { verdict = C.Failed msg; _ } ] ->
      (* refuted with a concrete witness, not just "unproven" *)
      Alcotest.(check bool) "refutation carries detail" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected exactly one Failed obligation"

(* ---------------------------------------------------------------- *)
(* Mutation: forged non-overlap claim (short-circuit side)            *)
(* ---------------------------------------------------------------- *)

let test_mutation_forged_nonoverlap () =
  let p = Core.Pipeline.to_memory_ir (overlap2_prog ()) in
  let pre = Ir.Clone.clone_prog p in
  let l = Lmad.make P.zero [ Lmad.dim n P.one ] in
  let r = C.recorder ~pass:"shortcircuit" in
  (* a write set claimed disjoint from itself: refutable at any size *)
  C.emit r
    (C.Copy_elide
       { candidate = "src"; dst_block = "mem_dst"; at_binding = "y" })
    ~ctx:ctx_n2
    (C.Nonoverlap { w = Refset.of_lmad l; u = Refset.of_lmad l });
  let report =
    C.check ~pass:"shortcircuit" ~pre ~post:p (C.obligations r)
  in
  Alcotest.(check bool) "forged non-overlap refuted" true
    (not (C.ok report))

(* ---------------------------------------------------------------- *)
(* Mutation: forged existential grouping (memintro side)              *)
(* ---------------------------------------------------------------- *)

(* One top-level conditional producing an array: memory introduction
   wraps its result in the [mem, witness..., array] grouping, giving
   the checker a real grouping to compare forgeries against. *)
let cond_prog () =
  B.prog "certcond" ~ctx:ctx_n2
    ~params:[ pat_elem "n" i64; pat_elem "c" boolt ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let bs =
        B.if_ b "bs" (Var "c")
          (fun tb -> [ Var (fill tb "bs_t" n 1.0) ])
          (fun fb -> [ Var (fill fb "bs_f" n 2.0) ])
      in
      [ Var (List.hd bs) ])

(* The first conditional statement, searching compound bodies. *)
let find_if (p : prog) =
  let rec go stms =
    List.find_map
      (fun s ->
        match s.exp with
        | EIf _ -> Some s
        | EMap { body; _ } | ELoop { body; _ } -> go body.stms
        | _ -> None)
      stms
  in
  match go p.body.stms with
  | Some s -> s
  | None -> Alcotest.fail "expected a conditional"

(* The grouping run of an existential conditional pattern:
   (mem binder, witness binders, array binder). *)
let grouping_of (s : stm) =
  let mem =
    match List.find_opt (fun pe -> pe.pt = TMem) s.pat with
    | Some pe -> pe.pv
    | None -> Alcotest.fail "expected a TMem binder"
  in
  let wits =
    List.filter_map
      (fun pe -> if pe.pt = i64 then Some pe.pv else None)
      s.pat
  in
  let a =
    match
      List.find_opt (fun pe -> is_array_typ pe.pt && pe.pmem <> None) s.pat
    with
    | Some pe -> pe
    | None -> Alcotest.fail "expected an annotated array binder"
  in
  (mem, wits, a)

let test_mutation_forged_grouping () =
  let p = Core.Pipeline.to_memory_ir (cond_prog ()) in
  let pre = Ir.Clone.clone_prog p in
  let ifs = find_if p in
  let mem, wits, pe_arr = grouping_of ifs in
  let r = C.recorder ~pass:"memintro" in
  (* the honest grouping proves... *)
  C.emit r
    (C.Exist_intro { binding = pe_arr.pv })
    ~ctx:ctx_n2
    (C.Grouped { mem; wits; arr = pe_arr.pv });
  (* ...and the forged one - the array claimed grouped with a block
     that is not the one binding it (here: the block the array is
     annotated into inside an arm, not the conditional's existential
     binder) - must be refuted structurally. *)
  let arm_mem =
    match ifs.exp with
    | EIf { tb; _ } -> (
        match
          List.find_map
            (fun s ->
              List.find_map
                (fun pe -> Option.map (fun m -> m.block) pe.pmem)
                s.pat)
            tb.stms
        with
        | Some m -> m
        | None -> Alcotest.fail "expected an annotated arm binding")
    | _ -> assert false
  in
  C.emit r
    (C.Exist_intro { binding = pe_arr.pv })
    ~ctx:ctx_n2
    (C.Grouped { mem = arm_mem; wits; arr = pe_arr.pv });
  let report = C.check ~pass:"memintro" ~pre ~post:p (C.obligations r) in
  Alcotest.(check int) "honest grouping proved, forgery refuted" 1
    report.C.failed;
  match C.failures report with
  | [ { verdict = C.Failed msg; _ } ] ->
      Alcotest.(check bool) "refutation names the mismatch" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected exactly one Failed obligation"

(* ---------------------------------------------------------------- *)
(* Mutation: forged if-arm hoist (reuse strategy 4)                   *)
(* ---------------------------------------------------------------- *)

(* In [cond_prog] each arm's fill IS the arm's result: its contents
   escape the conditional, so a Dies_in_arm claim for its block is
   false and must be refuted.  A branch-wise size forgery under the
   same rewrite must be refuted with a concrete witness. *)
let test_mutation_forged_if_hoist () =
  let p = Core.Pipeline.to_memory_ir (cond_prog ()) in
  let pre = Ir.Clone.clone_prog p in
  let ifs = find_if p in
  let if_binding = (List.hd ifs.pat).pv in
  let arm_mem =
    match ifs.exp with
    | EIf { tb; _ } -> (
        match
          List.find_map
            (fun s ->
              List.find_map
                (fun pe -> Option.map (fun m -> m.block) pe.pmem)
                s.pat)
            tb.stms
        with
        | Some m -> m
        | None -> Alcotest.fail "expected an annotated arm binding")
    | _ -> assert false
  in
  let r = C.recorder ~pass:"reuse" in
  C.emit r
    (C.If_hoist { block = arm_mem; if_binding })
    ~ctx:ctx_n2
    (C.Dies_in_arm { block = arm_mem; if_binding; arm = true });
  (* n >= 2n is false for every admissible n: the branch-wise size
     obligation must be refuted with a numeric witness *)
  C.emit r
    (C.If_hoist { block = arm_mem; if_binding })
    ~ctx:ctx_n2
    (C.Size_ge { larger = n; smaller = P.mul (c 2) n });
  let report = C.check ~pass:"reuse" ~pre ~post:p (C.obligations r) in
  Alcotest.(check int) "both forgeries refuted" 2 report.C.failed;
  List.iter
    (function
      | { C.verdict = C.Failed msg; _ } ->
          Alcotest.(check bool) "refutation carries detail" true
            (String.length msg > 0)
      | _ -> Alcotest.fail "expected Failed verdicts")
    (C.failures report)

(* ---------------------------------------------------------------- *)
(* The certificate gate: a proved -> concretized flip is a regression *)
(* ---------------------------------------------------------------- *)

module BJ = Benchsuite.Benchjson

let cert_doc ~verdict0 ~proved ~concretized =
  Printf.sprintf
    {|{"benchmarks":[{"name":"b","passes":[{"pass":"memintro",
       "emitted":2,"proved":%d,"concretized":%d,"failed":0,
       "obligations":[
         {"id":0,"kind":"rewrite","rewrite":"mem_intro of m0",
          "claim":"grouped","verdict":"%s","detail":""},
         {"id":1,"kind":"rewrite","rewrite":"mem_intro of m1",
          "claim":"grouped","verdict":"proved","detail":""}]}]}]}|}
    proved concretized verdict0

let parse_doc s =
  match BJ.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "bad test JSON: %s" e

let test_cert_gate_flip () =
  let baseline =
    parse_doc (cert_doc ~verdict0:"proved" ~proved:2 ~concretized:0)
  in
  let same =
    parse_doc (cert_doc ~verdict0:"proved" ~proved:2 ~concretized:0)
  in
  let flipped =
    parse_doc (cert_doc ~verdict0:"concretized" ~proved:1 ~concretized:1)
  in
  let g0 = BJ.cert_gate ~baseline ~current:same () in
  Alcotest.(check bool) "identity passes" true (BJ.ok g0);
  let g1 = BJ.cert_gate ~baseline ~current:flipped () in
  Alcotest.(check bool) "flip fails the gate" true (not (BJ.ok g1));
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  Alcotest.(check bool) "flip is reported as a weakening" true
    (List.exists
       (fun m ->
         contains_sub m "weakened" || contains_sub m "proved count")
       g1.BJ.regressions)

(* ---------------------------------------------------------------- *)
(* qcheck: generated programs certify end to end                      *)
(* ---------------------------------------------------------------- *)

(* A chain of [k] map stages over one fill: every adjacent pair is a
   same-scope coalescing candidate. *)
let gen_chain k =
  B.prog "qcchain" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let first = fill b "x0" n 1.0 in
      let rec go prev i =
        if i > k then prev
        else
          let iv = Names.fresh "i" in
          let nx =
            B.mapnest b (Printf.sprintf "x%d" i) [ (iv, n) ] (fun bb ->
                [
                  B.fadd bb
                    (B.index bb prev [ P.var iv ])
                    (Float (float_of_int i));
                ])
          in
          go nx (i + 1)
      in
      [ Var (go first 1) ])

(* [s] sibling loops, each with a per-iteration temporary: hoisting
   fires in every loop and the hoisted blocks coalesce pairwise. *)
let gen_siblings s bound =
  B.prog "qcsib" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let init = fill b "acc0" n 0.0 in
      let mk b0 seed init =
        B.loop1 b0 "acc" (arr F64 [ n ]) (Var init) ~bound:(c bound)
          (fun bb ~param ~i:_ ->
            let tmp = fill bb "tmp" n seed in
            let iv = Names.fresh "i" in
            let acc' =
              B.mapnest bb "acc'" [ (iv, n) ] (fun b3 ->
                  [
                    B.fadd b3
                      (B.index b3 param [ P.var iv ])
                      (B.index b3 tmp [ P.var iv ]);
                  ])
            in
            Var acc')
      in
      let rec go prev i =
        if i > s then prev else go (mk b (float_of_int i) prev) (i + 1)
      in
      [ Var (go init 1) ])

(* A loop whose body branches: depending on [mode], the true arm, the
   false arm, or both arms allocate a local temporary that dies inside
   the arm - exercising the single-arm and pair-lift shapes of the
   if-arm hoist (reuse strategy 4) plus the dead-chain removal that
   certifies the threading it leaves behind. *)
let gen_cond mode bound =
  B.prog "qccond" ~ctx:ctx_n2
    ~params:[ pat_elem "n" i64; pat_elem "c" boolt ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let init = fill b "a0" n 0.0 in
      let arm_with_tmp seed bb param =
        let tmp = fill bb (Printf.sprintf "tmp%.0f" seed) n seed in
        let iv = Names.fresh "i" in
        [
          Var
            (B.mapnest bb "r" [ (iv, n) ] (fun b3 ->
                 [
                   B.fadd b3
                     (B.index b3 param [ P.var iv ])
                     (B.index b3 tmp [ P.var iv ]);
                 ]));
        ]
      in
      let arm_plain seed bb param =
        let iv = Names.fresh "i" in
        [
          Var
            (B.mapnest bb "r" [ (iv, n) ] (fun b3 ->
                 [ B.fadd b3 (B.index b3 param [ P.var iv ]) (Float seed) ]));
        ]
      in
      let r =
        B.loop1 b "acc" (arr F64 [ n ]) (Var init) ~bound:(c bound)
          (fun bb ~param ~i:_ ->
            let t_arm, f_arm =
              match mode with
              | 0 -> (arm_with_tmp 1.0, arm_with_tmp 2.0)
              | 1 -> (arm_with_tmp 3.0, arm_plain 4.0)
              | _ -> (arm_plain 5.0, arm_with_tmp 6.0)
            in
            let st =
              B.if_ bb "st" (Var "c")
                (fun tb -> t_arm tb param)
                (fun fb -> f_arm fb param)
            in
            Var (List.hd st))
      in
      [ Var r ])

let certified name prog =
  let cpl = Core.Pipeline.compile ~certify:true prog in
  match Core.Pipeline.first_cert_failure cpl.Core.Pipeline.certs with
  | None -> true
  | Some (pass, ch) ->
      QCheck.Test.fail_reportf "%s: refuted obligation in %s: %a" name pass
        C.pp_checked ch

let prop_generated_programs_certify =
  QCheck.Test.make ~name:"generated programs certify (zero failed)" ~count:(Qcount.count 8)
    (QCheck.make
       ~print:(fun (k, s, bound) ->
         Printf.sprintf "chain=%d siblings=%d bound=%d" k s bound)
       QCheck.Gen.(triple (int_range 1 4) (int_range 1 3) (int_range 2 5)))
    (fun (k, s, bound) ->
      certified "chain" (gen_chain k)
      && certified "siblings" (gen_siblings s bound))

let prop_conditional_programs_certify =
  QCheck.Test.make
    ~name:"generated conditional programs certify (zero failed)" ~count:(Qcount.count 9)
    (QCheck.make
       ~print:(fun (mode, bound) ->
         Printf.sprintf "mode=%d bound=%d" mode bound)
       QCheck.Gen.(pair (int_range 0 2) (int_range 2 5)))
    (fun (mode, bound) -> certified "cond" (gen_cond mode bound))

let tests =
  [
    Alcotest.test_case "all benchmarks certify (zero failed)" `Quick
      test_benchmarks_certify;
    Alcotest.test_case "certification is opt-in" `Quick test_certify_opt_in;
    Alcotest.test_case "mutation: overlapping-live coalesce refuted" `Quick
      test_mutation_overlapping_coalesce;
    Alcotest.test_case "honest size claim proved" `Quick
      test_honest_claim_accepted;
    Alcotest.test_case "mutation: forged size proof refuted" `Quick
      test_mutation_forged_size_proof;
    Alcotest.test_case "mutation: forged non-overlap refuted" `Quick
      test_mutation_forged_nonoverlap;
    Alcotest.test_case "mutation: forged existential grouping refuted" `Quick
      test_mutation_forged_grouping;
    Alcotest.test_case "mutation: forged if-arm hoist refuted" `Quick
      test_mutation_forged_if_hoist;
    Alcotest.test_case "cert gate: proved -> concretized flip fails" `Quick
      test_cert_gate_flip;
    QCheck_alcotest.to_alcotest prop_generated_programs_certify;
    QCheck_alcotest.to_alcotest prop_conditional_programs_certify;
  ]
