(* Tests for the memory-block reuse pass (Reuse).

   Differential design, mirroring the memlint/memtrace suites: the
   reuse variant of every program must compute the same values as the
   reference interpreter, lint clean at every pipeline stage,
   trace-check clean under Memtrace, and keep the same logical event
   skeleton as the optimized variant - while never increasing (and on
   the flagship benchmarks strictly shrinking) the measured memory
   footprint.  A hand-mutated annotation that fakes a coalescing with
   overlapping live ranges must be rejected by Memlint's [reuse]
   rule. *)

open Ir
open Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Build
module ML = Core.Memlint
module MT = Core.Memtrace
module R = Benchsuite.Runner
module Device = Gpu.Device
module Exec = Gpu.Exec

let c = P.const
let n = P.var "n"
let ctx_n2 = Pr.add_range Pr.empty "n" ~lo:(c 2) ()

let fill b name cnt seed =
  B.mapnest b name [ (Names.fresh "i", cnt) ] (fun bb ->
      [ B.fadd bb (Float seed) (Float 0.0) ])

(* a = fill n; b = a + 1; c = b + 2.  [a]'s block is dead once [b] is
   built, so the later allocations can recycle it - the smallest
   program on which same-scope coalescing fires. *)
let chain_prog () =
  B.prog "rcchain" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let a = fill b "as" n 1.0 in
      let iv = Names.fresh "i" in
      let bs =
        B.mapnest b "bs" [ (iv, n) ] (fun bb ->
            [ B.fadd bb (B.index bb a [ P.var iv ]) (Float 1.0) ])
      in
      let jv = Names.fresh "j" in
      let cs =
        B.mapnest b "cs" [ (jv, n) ] (fun bb ->
            [ B.fadd bb (B.index bb bs [ P.var jv ]) (Float 2.0) ])
      in
      let kv = Names.fresh "k" in
      let ds =
        B.mapnest b "ds" [ (kv, n) ] (fun bb ->
            [ B.fadd bb (B.index bb cs [ P.var kv ]) (Float 3.0) ])
      in
      [ Var ds ])

let chain_args nv = [ Value.VInt nv ]

(* a = fill n; b = fill n; c = a + b.  Both fills are live until [c],
   so no legal coalescing exists between them. *)
let overlap_prog () =
  B.prog "rcoverlap" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let a = fill b "as" n 1.0 in
      let bs = fill b "bs" n 2.0 in
      let iv = Names.fresh "i" in
      let cs =
        B.mapnest b "cs" [ (iv, n) ] (fun bb ->
            [
              B.fadd bb
                (B.index bb a [ P.var iv ])
                (B.index bb bs [ P.var iv ]);
            ])
      in
      [ Var cs ])

(* Per-iteration temporary that provably dies inside the loop body:
   the cross-scope strategy hoists its allocation in front of the
   loop. *)
let hoist_prog () =
  B.prog "rchoist" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let init = fill b "acc0" n 0.0 in
      let res =
        B.loop1 b "acc" (arr F64 [ n ]) (Var init) ~bound:(c 4)
          (fun bb ~param ~i:_ ->
            let tmp = fill bb "tmp" n 1.0 in
            let iv = Names.fresh "i" in
            let acc' =
              B.mapnest bb "acc'" [ (iv, n) ] (fun b3 ->
                  [
                    B.fadd b3
                      (B.index b3 param [ P.var iv ])
                      (B.index b3 tmp [ P.var iv ]);
                  ])
            in
            Var acc')
      in
      [ Var res ])

(* The same shape, but the temporary is carried out of the loop as a
   second result: its live interval escapes the iteration, so hoisting
   must refuse. *)
let escape_prog () =
  B.prog "rcescape" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ]; arr F64 [ n ] ]
    (fun b ->
      let init = fill b "acc0" n 0.0 in
      let init2 = fill b "tmp0" n 0.0 in
      let res =
        B.loop b "st"
          [
            ("acc", arr F64 [ n ], Var init); ("t", arr F64 [ n ], Var init2);
          ]
          ~var:"q" ~bound:(c 4)
          (fun bb ->
            let tmp = fill bb "tmp" n 1.0 in
            let iv = Names.fresh "i" in
            let acc' =
              B.mapnest bb "acc'" [ (iv, n) ] (fun b3 ->
                  [
                    B.fadd b3
                      (B.index b3 "acc" [ P.var iv ])
                      (B.index b3 tmp [ P.var iv ]);
                  ])
            in
            [ Var acc'; Var tmp ])
      in
      match res with [ a; t ] -> [ Var a; Var t ] | _ -> assert false)

(* Two sibling loops, each with a hoistable temporary: both hoist to
   the same lexical level, where the first hoisted block is dead
   before the second loop starts - the same-scope rule then merges
   them into one physical block. *)
let sibling_prog () =
  B.prog "rcsibling" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b ->
      let init = fill b "acc0" n 0.0 in
      let mk b0 seed init =
        B.loop1 b0 "acc" (arr F64 [ n ]) (Var init) ~bound:(c 3)
          (fun bb ~param ~i:_ ->
            let tmp = fill bb "tmp" n seed in
            let iv = Names.fresh "i" in
            let acc' =
              B.mapnest bb "acc'" [ (iv, n) ] (fun b3 ->
                  [
                    B.fadd b3
                      (B.index b3 param [ P.var iv ])
                      (B.index b3 tmp [ P.var iv ]);
                  ])
            in
            Var acc')
      in
      let r1 = mk b 1.0 init in
      let r2 = mk b 2.0 r1 in
      [ Var r2 ])

(* ---------------------------------------------------------------- *)
(* Shared checks                                                     *)
(* ---------------------------------------------------------------- *)

let cost_counters p args = (Exec.run ~mode:Exec.Cost_only p args).Exec.counters
let total_allocs (ct : Device.counters) = ct.Device.allocs + ct.Device.scratch_allocs

(* Compile and return (compiled, opt counters, reuse counters). *)
let compiled_footprints ?reuse prog args =
  let cpl = Core.Pipeline.compile ?reuse prog in
  ( cpl,
    cost_counters cpl.Core.Pipeline.opt args,
    cost_counters cpl.Core.Pipeline.reuse args )

(* ---------------------------------------------------------------- *)
(* Same-scope coalescing on the sequential chain                     *)
(* ---------------------------------------------------------------- *)

let test_chain_coalesces () =
  let cpl, opt_c, reuse_c = compiled_footprints (chain_prog ()) (chain_args 8) in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check bool) "coalescing fired" true (st.Core.Reuse.coalesced >= 1);
  Alcotest.(check bool) "size proof discharged" true
    (st.Core.Reuse.size_proofs >= 1);
  Alcotest.(check bool) "fewer allocations" true
    (total_allocs reuse_c < total_allocs opt_c);
  Alcotest.(check bool) "lower peak" true
    (reuse_c.Device.peak_bytes < opt_c.Device.peak_bytes);
  (* the coalesced program still computes a+3 everywhere *)
  let v = R.validate ~compiled:cpl (chain_prog ()) (chain_args 8) in
  Alcotest.(check bool) "chain: reuse = interp" true v.R.ok_reuse

(* No legal coalescing on the overlapping program: the pass must
   refuse, and the footprint is simply unchanged. *)
let test_overlap_untouched () =
  let cpl, opt_c, reuse_c =
    compiled_footprints (overlap_prog ()) (chain_args 8)
  in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check int) "nothing coalesced" 0 st.Core.Reuse.coalesced;
  Alcotest.(check int) "allocs unchanged" (total_allocs opt_c)
    (total_allocs reuse_c);
  let v = R.validate ~compiled:cpl (overlap_prog ()) (chain_args 8) in
  Alcotest.(check bool) "overlap: reuse = interp" true v.R.ok_reuse

(* ---------------------------------------------------------------- *)
(* Mutation: a coalescing with overlapping live ranges is rejected   *)
(* ---------------------------------------------------------------- *)

(* Hand-forge the illegal version of [overlap_prog]: rebind the second
   fill into the first fill's block.  Both fills stay live until the
   final sum, so Memlint's [reuse] rule must reject the clobber. *)
let test_illegal_coalesce_rejected () =
  let p = Core.Pipeline.to_memory_ir (overlap_prog ()) in
  let r0 = ML.check p in
  Alcotest.(check (list string)) "seed lints clean" []
    (List.map (fun v -> v.ML.detail) (ML.errors r0));
  let fills =
    List.filter_map
      (fun s ->
        match s.exp with
        | EMap _ ->
            List.find_opt
              (fun pe -> is_array_typ pe.pt && pe.pmem <> None)
              s.pat
        | _ -> None)
      p.body.stms
  in
  match fills with
  | pe_a :: pe_b :: _ ->
      pe_b.pmem <- pe_a.pmem;
      let r = ML.check p in
      Alcotest.(check bool) "forged coalescing rejected" true (not (ML.ok r));
      Alcotest.(check bool) "blames [reuse]" true
        (List.exists (fun v -> v.ML.rule = "reuse") (ML.errors r))
  | _ -> Alcotest.fail "expected two annotated fills"

(* ---------------------------------------------------------------- *)
(* Flagship benchmarks: strict footprint reductions                  *)
(* ---------------------------------------------------------------- *)

let test_nw_footprint () =
  let args = Benchsuite.Nw.small_args ~q:3 ~b:4 in
  let cpl, opt_c, reuse_c = compiled_footprints Benchsuite.Nw.prog args in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check bool) "nw: dead existential chains removed" true
    (st.Core.Reuse.chain_links >= 4);
  Alcotest.(check int) "nw: no scratch left" 0 reuse_c.Device.scratch_allocs;
  Alcotest.(check bool) "nw: strictly fewer allocations" true
    (total_allocs reuse_c < total_allocs opt_c);
  Alcotest.(check bool) "nw: strictly lower peak" true
    (reuse_c.Device.peak_bytes < opt_c.Device.peak_bytes)

let test_hotspot_footprint () =
  let args = Benchsuite.Hotspot.small_args ~n:16 ~steps:3 in
  let cpl, opt_c, reuse_c = compiled_footprints Benchsuite.Hotspot.prog args in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check bool) "hotspot: loop double-buffered" true
    (st.Core.Reuse.rotated >= 1);
  Alcotest.(check bool) "hotspot: strictly fewer allocations" true
    (total_allocs reuse_c < total_allocs opt_c);
  Alcotest.(check bool) "hotspot: strictly lower peak" true
    (reuse_c.Device.peak_bytes < opt_c.Device.peak_bytes)

let test_lbm_footprint () =
  let args = Benchsuite.Lbm.small_args ~n:8 ~steps:3 in
  let cpl, opt_c, reuse_c = compiled_footprints Benchsuite.Lbm.prog args in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check bool) "lbm: loop double-buffered" true
    (st.Core.Reuse.rotated >= 1);
  Alcotest.(check bool) "lbm: strictly fewer allocations" true
    (total_allocs reuse_c < total_allocs opt_c);
  Alcotest.(check bool) "lbm: strictly lower peak" true
    (reuse_c.Device.peak_bytes < opt_c.Device.peak_bytes)

(* ---------------------------------------------------------------- *)
(* Cross-scope hoisting                                              *)
(* ---------------------------------------------------------------- *)

let test_hoist_fires () =
  let cpl, opt_c, reuse_c = compiled_footprints (hoist_prog ()) (chain_args 8) in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check bool) "temporary hoisted" true (st.Core.Reuse.hoisted >= 1);
  Alcotest.(check bool) "fewer allocations" true
    (total_allocs reuse_c < total_allocs opt_c);
  Alcotest.(check bool) "lower peak" true
    (reuse_c.Device.peak_bytes < opt_c.Device.peak_bytes);
  let v = R.validate ~compiled:cpl (hoist_prog ()) (chain_args 8) in
  Alcotest.(check bool) "hoist: reuse = interp" true v.R.ok_reuse

let test_hoist_refuses_escape () =
  let cpl, opt_c, reuse_c =
    compiled_footprints (escape_prog ()) (chain_args 8)
  in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check int) "escaping temporary not hoisted" 0
    st.Core.Reuse.hoisted;
  Alcotest.(check int) "allocs unchanged" (total_allocs opt_c)
    (total_allocs reuse_c);
  let v = R.validate ~compiled:cpl (escape_prog ()) (chain_args 8) in
  Alcotest.(check bool) "escape: reuse = interp" true v.R.ok_reuse

let test_sibling_hoists_coalesce () =
  let cpl, opt_c, reuse_c =
    compiled_footprints (sibling_prog ()) (chain_args 8)
  in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check bool) "both temporaries hoisted" true
    (st.Core.Reuse.hoisted >= 2);
  Alcotest.(check bool) "hoisted siblings coalesced" true
    (st.Core.Reuse.coalesced >= 1);
  Alcotest.(check bool) "fewer allocations" true
    (total_allocs reuse_c < total_allocs opt_c);
  Alcotest.(check bool) "lower peak" true
    (reuse_c.Device.peak_bytes < opt_c.Device.peak_bytes);
  let v = R.validate ~compiled:cpl (sibling_prog ()) (chain_args 8) in
  Alcotest.(check bool) "sibling: reuse = interp" true v.R.ok_reuse

(* LUD's interior temporary shrinks with the step index; hoisting
   generalizes its size to the iteration maximum (a prover obligation)
   and the per-step allocations collapse into one block. *)
let test_lud_cross_scope_ab () =
  let args = Benchsuite.Lud.small_args ~q:3 ~b:4 in
  let on = Core.Pipeline.compile Benchsuite.Lud.prog in
  let off =
    Core.Pipeline.compile
      ~reuse:{ Core.Reuse.default_options with Core.Reuse.cross_scope = false }
      Benchsuite.Lud.prog
  in
  Alcotest.(check bool) "lud hoists" true
    (on.Core.Pipeline.reuse_stats.Core.Reuse.hoisted >= 1);
  Alcotest.(check int) "no hoists when disabled" 0
    off.Core.Pipeline.reuse_stats.Core.Reuse.hoisted;
  let c_on = cost_counters on.Core.Pipeline.reuse args in
  let c_off = cost_counters off.Core.Pipeline.reuse args in
  Alcotest.(check bool) "strictly fewer distinct blocks" true
    (c_on.Device.allocs < c_off.Device.allocs);
  Alcotest.(check bool) "peak no worse" true
    (c_on.Device.peak_bytes <= c_off.Device.peak_bytes)

(* --no-reuse is the identity: the reuse variant degenerates to a
   clone of opt with zeroed statistics. *)
let test_disabled_is_identity () =
  let args = Benchsuite.Hotspot.small_args ~n:16 ~steps:3 in
  let cpl, opt_c, reuse_c =
    compiled_footprints ~reuse:Core.Reuse.disabled Benchsuite.Hotspot.prog
      args
  in
  let st = cpl.Core.Pipeline.reuse_stats in
  Alcotest.(check int) "no rotations" 0 st.Core.Reuse.rotated;
  Alcotest.(check int) "no coalescings" 0 st.Core.Reuse.coalesced;
  Alcotest.(check int) "no chain removals" 0 st.Core.Reuse.chain_links;
  Alcotest.(check int) "no allocations dropped" 0
    cpl.Core.Pipeline.reuse_dead_allocs;
  Alcotest.(check int) "allocs identical" (total_allocs opt_c)
    (total_allocs reuse_c);
  Alcotest.(check (float 0.0)) "peak identical" opt_c.Device.peak_bytes
    reuse_c.Device.peak_bytes

(* ---------------------------------------------------------------- *)
(* qcheck: the full verification stack over random sizes             *)
(* ---------------------------------------------------------------- *)

(* Every generated instance must: lint clean at all six stages,
   trace-check clean on the reuse variant, compute the interpreter's
   values, keep the optimized variant's logical event skeleton, and
   never increase the footprint. *)
let reuse_verified prog args =
  let compiled = Core.Pipeline.compile ~lint:true prog in
  (match Core.Pipeline.first_lint_error compiled.Core.Pipeline.lint with
  | None -> ()
  | Some (stage, v) ->
      QCheck.Test.fail_reportf "memlint (%s): %a" stage ML.pp_violation v);
  let _, o, r = R.trace_check3 ~compiled prog args in
  if not (MT.ok r.R.check) then
    QCheck.Test.fail_reportf "memtrace (reuse): %a" MT.pp_report r.R.check;
  (match Core.Trace.diff o.R.trace r.R.trace with
  | [] -> ()
  | d :: _ -> QCheck.Test.fail_reportf "skeletons diverge: %s" d);
  let expect = Ir.Interp.run compiled.Core.Pipeline.source args in
  let rr = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.reuse args in
  if
    not
      (List.for_all2 (Value.approx_equal ~eps:1e-6) expect rr.Exec.results)
  then QCheck.Test.fail_reportf "reuse variant changed the results";
  let opt_c = cost_counters compiled.Core.Pipeline.opt args in
  let reuse_c = cost_counters compiled.Core.Pipeline.reuse args in
  if total_allocs reuse_c > total_allocs opt_c then
    QCheck.Test.fail_reportf "reuse increased allocations: %d > %d"
      (total_allocs reuse_c) (total_allocs opt_c);
  if reuse_c.Device.peak_bytes > opt_c.Device.peak_bytes then
    QCheck.Test.fail_reportf "reuse increased peak: %g > %g"
      reuse_c.Device.peak_bytes opt_c.Device.peak_bytes;
  true

let prop_nw_reuse_verified =
  QCheck.Test.make ~name:"NW reuse verified (values/lint/trace/footprint)"
    ~count:(Qcount.count 3)
    (QCheck.make
       ~print:(fun (q, b) -> Printf.sprintf "q=%d b=%d" q b)
       QCheck.Gen.(pair (int_range 2 3) (int_range 2 4)))
    (fun (q, b) ->
      reuse_verified Benchsuite.Nw.prog (Benchsuite.Nw.small_args ~q ~b))

let prop_chain_reuse_verified =
  QCheck.Test.make ~name:"chain coalescing verified at random sizes" ~count:(Qcount.count 6)
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 12))
    (fun nv -> reuse_verified (chain_prog ()) (chain_args nv))

let prop_hoist_reuse_verified =
  QCheck.Test.make ~name:"cross-scope hoisting verified at random sizes"
    ~count:(Qcount.count 6)
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 2 12))
    (fun nv -> reuse_verified (sibling_prog ()) (chain_args nv))

let tests =
  [
    Alcotest.test_case "chain: same-scope coalescing" `Quick
      test_chain_coalesces;
    Alcotest.test_case "overlap: no illegal coalescing" `Quick
      test_overlap_untouched;
    Alcotest.test_case "mutation: overlapping-live coalesce rejected" `Quick
      test_illegal_coalesce_rejected;
    Alcotest.test_case "nw: footprint strictly shrinks" `Quick
      test_nw_footprint;
    Alcotest.test_case "hotspot: rotation strictly shrinks" `Quick
      test_hotspot_footprint;
    Alcotest.test_case "lbm: rotation strictly shrinks" `Quick
      test_lbm_footprint;
    Alcotest.test_case "hoist: per-iteration temporary lifted" `Quick
      test_hoist_fires;
    Alcotest.test_case "hoist: escaping temporary refused" `Quick
      test_hoist_refuses_escape;
    Alcotest.test_case "hoist: sibling loops share one block" `Quick
      test_sibling_hoists_coalesce;
    Alcotest.test_case "lud: cross-scope A/B" `Quick test_lud_cross_scope_ab;
    Alcotest.test_case "--no-reuse is the identity" `Quick
      test_disabled_is_identity;
    QCheck_alcotest.to_alcotest prop_nw_reuse_verified;
    QCheck_alcotest.to_alcotest prop_chain_reuse_verified;
    QCheck_alcotest.to_alcotest prop_hoist_reuse_verified;
  ]
