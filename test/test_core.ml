(* Tests for the memory passes: memory introduction (section IV),
   allocation hoisting, last-use analysis, and above all the
   short-circuiting scenarios of the paper's figures:

   - Fig. 1  left fires / right (data-dependent) must not;
   - Fig. 4a trivial concatenation;
   - Fig. 4b use of the destination between creation and circuit point;
   - Fig. 5a if-producing candidates;
   - Fig. 6a transitive chaining through a concat;
   - Fig. 6b mapnest per-thread results;
   - change-of-layout chains (invertible transpose vs non-invertible
     slice);
   - semantic preservation: every scenario is executed in full mode and
     compared against the reference interpreter. *)

open Ir
open Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Build
module Sc = Core.Shortcircuit
module Exec = Gpu.Exec

let c = P.const
let n = P.var "n"
let ctx_n = Pr.add_range Pr.empty "n" ~lo:(c 1) ()

let farr xs = Value.VArr (Value.of_floats [ Array.length xs ] xs)

let farr2 r k xs = Value.VArr (Value.of_floats [ r; k ] xs)

(* Compile, validate semantics in full mode, and return the pass
   statistics plus the optimized run's counters. *)
let scenario ?(args = []) prog =
  let compiled = Core.Pipeline.compile prog in
  let stats = compiled.Core.Pipeline.stats in
  if args = [] then (stats, None)
  else begin
    let expect = Interp.run compiled.Core.Pipeline.source args in
    let ru = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt args in
    let ro = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.opt args in
    Alcotest.(check bool)
      "unopt preserves semantics" true
      (List.for_all2 (Value.approx_equal ~eps:1e-9) expect ru.Exec.results);
    Alcotest.(check bool)
      "opt preserves semantics" true
      (List.for_all2 (Value.approx_equal ~eps:1e-9) expect ro.Exec.results);
    (stats, Some (ru.Exec.counters, ro.Exec.counters))
  end

let check_fired name expected (stats : Sc.stats) =
  Alcotest.(check bool) name expected (stats.Sc.succeeded > 0)

(* ---------------------------------------------------------------- *)
(* Fig. 1                                                            *)
(* ---------------------------------------------------------------- *)

let diag_slice =
  SLmad (Lmads.Lmad.make P.zero [ Lmads.Lmad.dim n (P.add n P.one) ])

let test_fig1_left () =
  let prog =
    B.prog "f1l" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "a" (arr F64 [ P.mul n n ]) ]
      ~ret:[ arr F64 [ P.mul n n ] ]
      (fun b ->
        let x =
          B.mapnest b "x" [ ("i", n) ] (fun bb ->
              let i = P.var "i" in
              let d = B.index bb "a" [ P.mul i (P.add n P.one) ] in
              let r = B.index bb "a" [ i ] in
              [ B.fadd bb d r ])
        in
        [ Var (B.bind b "a2" (EUpdate { dst = "a"; slc = diag_slice; src = SrcArr x })) ])
  in
  let nv = 6 in
  let stats, counters =
    scenario
      ~args:[ Value.VInt nv; farr (Array.init (nv * nv) float_of_int) ]
      prog
  in
  check_fired "Fig. 1 left fires" true stats;
  match counters with
  | Some (u, o) ->
      Alcotest.(check bool) "unopt copies" true (u.Gpu.Device.copies > 0);
      Alcotest.(check int) "opt copies" 0 o.Gpu.Device.copies
  | None -> ()

let test_fig1_right () =
  let prog =
    B.prog "f1r" ~ctx:ctx_n
      ~params:
        [
          pat_elem "n" i64;
          pat_elem "a" (arr F64 [ P.mul n n ]);
          pat_elem "js" (arr I64 [ n ]);
        ]
      ~ret:[ arr F64 [ P.mul n n ] ]
      (fun b ->
        let x =
          B.mapnest b "x" [ ("i", n) ] (fun bb ->
              let i = P.var "i" in
              let d = B.index bb "a" [ P.mul i (P.add n P.one) ] in
              let j = B.bind bb "j" (EIndex ("js", [ i ])) in
              let o = B.index bb "a" [ P.mul (P.var j) (P.add n P.one) ] in
              [ B.fadd bb d o ])
        in
        [ Var (B.bind b "a2" (EUpdate { dst = "a"; slc = diag_slice; src = SrcArr x })) ])
  in
  let nv = 6 in
  let js = Value.VArr (Value.of_ints [ nv ] (Array.init nv (fun i -> (i + 2) mod nv))) in
  let stats, _ =
    scenario
      ~args:[ Value.VInt nv; farr (Array.init (nv * nv) float_of_int); js ]
      prog
  in
  check_fired "Fig. 1 right must NOT fire" false stats

(* ---------------------------------------------------------------- *)
(* Fig. 4a: trivial concatenation                                    *)
(* ---------------------------------------------------------------- *)

let fill b name cnt seed =
  B.mapnest b name [ (Ir.Names.fresh "i", cnt) ] (fun bb ->
      [ B.fadd bb (Float seed) (Float 0.0) ])

let test_fig4a_concat () =
  let m = P.var "m" in
  let prog =
    B.prog "f4a"
      ~ctx:(Pr.add_range ctx_n "m" ~lo:(c 1) ())
      ~params:[ pat_elem "n" i64; pat_elem "m" i64 ]
      ~ret:[ arr F64 [ P.add m n ] ]
      (fun b ->
        let as_ = fill b "as" m 1.0 in
        let bs = fill b "bs" n 2.0 in
        [ Var (B.bind b "xss" (EConcat [ as_; bs ])) ])
  in
  let stats, counters = scenario ~args:[ Value.VInt 5; Value.VInt 3 ] prog in
  Alcotest.(check int) "both operands circuit" 2 stats.Sc.succeeded;
  match counters with
  | Some (_, o) ->
      Alcotest.(check int) "concat free" 0 o.Gpu.Device.copies
  | None -> ()

let test_concat_same_array_twice () =
  (* footnote 17: concat bs bs cannot be fully optimized - only one
     occurrence can be the last use *)
  let prog =
    B.prog "f4a2" ~ctx:ctx_n ~params:[ pat_elem "n" i64 ]
      ~ret:[ arr F64 [ P.scale 2 n ] ]
      (fun b ->
        let bs = fill b "bs" n 2.0 in
        [ Var (B.bind b "xss" (EConcat [ bs; bs ])) ])
  in
  let _, counters = scenario ~args:[ Value.VInt 4 ] prog in
  match counters with
  | Some (_, o) ->
      Alcotest.(check bool) "at least one copy remains" true
        (o.Gpu.Device.copies >= 1)
  | None -> ()

(* ---------------------------------------------------------------- *)
(* Fig. 4b: destination used between creation and circuit point      *)
(* ---------------------------------------------------------------- *)

(* xss is READ from a region the candidate writes: must not fire. *)
let test_fig4b_conflicting_use () =
  let prog =
    B.prog "f4b" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "xss" (arr F64 [ P.scale 2 n ]) ]
      ~ret:[ f64; arr F64 [ P.scale 2 n ] ]
      (fun b ->
        let bs = fill b "bs" n 7.0 in
        (* use of xss AT a location bs will overwrite, after bs exists *)
        let u = B.index b "xss" [ n ] in
        let upd =
          B.bind b "xss2"
            (EUpdate
               {
                 dst = "xss";
                 slc = STriplet [ SRange { start = n; len = n; step = P.one } ];
                 src = SrcArr bs;
               })
        in
        [ u; Var upd ])
  in
  let stats, _ =
    scenario ~args:[ Value.VInt 4; farr (Array.init 8 float_of_int) ] prog
  in
  check_fired "conflicting use blocks the circuit" false stats

(* A use of a DISJOINT region of xss is fine (Fig. 4b line 2). *)
let test_fig4b_disjoint_use () =
  let prog =
    B.prog "f4b2" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "xss" (arr F64 [ P.scale 2 n ]) ]
      ~ret:[ f64; arr F64 [ P.scale 2 n ] ]
      (fun b ->
        let bs = fill b "bs" n 7.0 in
        (* reads the FIRST half; bs goes to the second *)
        let u = B.index b "xss" [ P.zero ] in
        let upd =
          B.bind b "xss2"
            (EUpdate
               {
                 dst = "xss";
                 slc = STriplet [ SRange { start = n; len = n; step = P.one } ];
                 src = SrcArr bs;
               })
        in
        [ u; Var upd ])
  in
  let stats, _ =
    scenario ~args:[ Value.VInt 4; farr (Array.init 8 float_of_int) ] prog
  in
  check_fired "disjoint use permits the circuit" true stats

(* ---------------------------------------------------------------- *)
(* Change-of-layout chains (Fig. 4b lines 4-5)                       *)
(* ---------------------------------------------------------------- *)

let test_invertible_transpose_chain () =
  (* bs = transpose as, update uses bs: as must be rebased through the
     inverse permutation *)
  let prog =
    B.prog "chain" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "xss" (arr F64 [ n; n ]) ]
      ~ret:[ arr F64 [ n; n ] ]
      (fun b ->
        let iv = Ir.Names.fresh "i" and jv = Ir.Names.fresh "j" in
        let as_ =
          B.mapnest b "as" [ (iv, n); (jv, n) ] (fun bb ->
              [
                B.fadd bb
                  (B.unop bb ToF64 (B.idx bb (P.var iv)))
                  (B.unop bb ToF64 (B.idx bb (P.scale 10 (P.var jv))));
              ])
        in
        let bs = B.bind b "bs" (ETranspose (as_, [ 1; 0 ])) in
        [
          Var
            (B.bind b "xss2"
               (EUpdate
                  {
                    dst = "xss";
                    slc = STriplet [ B.all n; B.all n ];
                    src = SrcArr bs;
                  }));
        ])
  in
  let stats, counters =
    scenario ~args:[ Value.VInt 4; farr2 4 4 (Array.init 16 float_of_int) ] prog
  in
  check_fired "transpose chain fires" true stats;
  match counters with
  | Some (_, o) -> Alcotest.(check int) "no copies" 0 o.Gpu.Device.copies
  | None -> ()

let test_noninvertible_slice_chain () =
  (* bs = as[0:n:2] (a strided slice of a larger fresh array): the
     inverse does not exist, the circuit must fail *)
  let prog =
    B.prog "slc" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "xss" (arr F64 [ n ]) ]
      ~ret:[ arr F64 [ n ] ]
      (fun b ->
        let as_ = fill b "as" (P.scale 2 n) 3.0 in
        let bs =
          B.bind b "bs"
            (ESlice
               (as_, STriplet [ SRange { start = P.zero; len = n; step = c 2 } ]))
        in
        [
          Var
            (B.bind b "xss2"
               (EUpdate
                  { dst = "xss"; slc = STriplet [ B.all n ]; src = SrcArr bs }));
        ])
  in
  let stats, _ =
    scenario ~args:[ Value.VInt 4; farr (Array.init 4 float_of_int) ] prog
  in
  check_fired "slice chain must NOT fire" false stats

(* ---------------------------------------------------------------- *)
(* Fig. 5a: candidates produced by if                                *)
(* ---------------------------------------------------------------- *)

let test_fig5a_if () =
  let prog =
    B.prog "f5a" ~ctx:ctx_n
      ~params:
        [
          pat_elem "n" i64;
          pat_elem "c" boolt;
          pat_elem "xss" (arr F64 [ n; n ]);
        ]
      ~ret:[ arr F64 [ n; n ] ]
      (fun b ->
        let bs =
          B.if_ b "bs" (Var "c")
            (fun tb -> [ Var (fill tb "bs_t" n 1.0) ])
            (fun fb -> [ Var (fill fb "bs_f" n 2.0) ])
        in
        [
          Var
            (B.bind b "xss2"
               (EUpdate
                  {
                    dst = "xss";
                    slc = STriplet [ SFix P.zero; B.all n ];
                    src = SrcArr (List.hd bs);
                  }));
        ])
  in
  let stats, counters =
    scenario
      ~args:
        [ Value.VInt 4; Value.VBool true; farr2 4 4 (Array.init 16 float_of_int) ]
      prog
  in
  check_fired "if-produced candidate fires" true stats;
  match counters with
  | Some (_, o) -> Alcotest.(check int) "no copies" 0 o.Gpu.Device.copies
  | None -> ()

(* ---------------------------------------------------------------- *)
(* Fig. 6a: transitive chaining                                      *)
(* ---------------------------------------------------------------- *)

let test_fig6a_transitive () =
  (* as,bs -> cs (concat) -> row i of yss; everything collapses into
     yss's memory *)
  let prog =
    B.prog "f6a" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "yss" (arr F64 [ n; P.scale 2 n ]) ]
      ~ret:[ arr F64 [ n; P.scale 2 n ] ]
      (fun b ->
        let as_ = fill b "as" n 1.0 in
        let bs = fill b "bs" n 2.0 in
        let cs = B.bind b "cs" (EConcat [ as_; bs ]) in
        [
          Var
            (B.bind b "yss2"
               (EUpdate
                  {
                    dst = "yss";
                    slc = STriplet [ SFix P.one; B.all (P.scale 2 n) ];
                    src = SrcArr cs;
                  }));
        ])
  in
  let stats, counters =
    scenario ~args:[ Value.VInt 3; farr2 3 6 (Array.init 18 float_of_int) ] prog
  in
  Alcotest.(check int) "cs, as and bs all circuit" 3 stats.Sc.succeeded;
  match counters with
  | Some (_, o) -> Alcotest.(check int) "everything free" 0 o.Gpu.Device.copies
  | None -> ()

(* ---------------------------------------------------------------- *)
(* Fig. 6b: mapnest per-thread results                               *)
(* ---------------------------------------------------------------- *)

let test_fig6b_mapnest () =
  (* each thread builds a row with a sequential prefix-style loop; the
     row is constructed directly in the result matrix *)
  let prog =
    B.prog "f6b" ~ctx:ctx_n ~params:[ pat_elem "n" i64 ]
      ~ret:[ arr F64 [ n; n ] ]
      (fun b ->
        let iv = Ir.Names.fresh "i" in
        let xss =
          B.mapnest b "xss" [ (iv, n) ] (fun tb ->
              let rs0 = B.bind tb "rs" (EScratch (F64, [ n ])) in
              let rs1 =
                B.bind tb "rs1"
                  (EUpdate
                     {
                       dst = rs0;
                       slc = STriplet [ SFix P.zero ];
                       src = SrcScalar (Float 1.0);
                     })
              in
              let final =
                B.loop1 tb "acc" (arr F64 [ n ]) (Var rs1)
                  ~bound:(P.sub n P.one)
                  (fun kb ~param ~i:k ->
                    let prev = B.index kb param [ k ] in
                    let v = B.fadd kb prev (Float 1.0) in
                    Var
                      (B.bind kb "rs'"
                         (EUpdate
                            {
                              dst = param;
                              slc = STriplet [ SFix (P.add k P.one) ];
                              src = SrcScalar v;
                            })))
              in
              [ Var final ])
        in
        [ Var xss ])
  in
  let stats, counters = scenario ~args:[ Value.VInt 5 ] prog in
  check_fired "per-thread result circuits" true stats;
  match counters with
  | Some (u, o) ->
      Alcotest.(check bool) "unopt pays slot traffic" true
        (u.Gpu.Device.kernel_reads > o.Gpu.Device.kernel_reads);
      Alcotest.(check bool) "opt elides" true (o.Gpu.Device.copies_elided > 0)
  | None -> ()

(* ---------------------------------------------------------------- *)
(* Hoisting and last-use                                             *)
(* ---------------------------------------------------------------- *)

let test_hoist_allocs_first () =
  let prog =
    B.prog "h" ~ctx:ctx_n ~params:[ pat_elem "n" i64 ] ~ret:[ arr F64 [ n ] ]
      (fun b ->
        let xs = fill b "xs" n 1.0 in
        let ys = fill b "ys" n 2.0 in
        ignore xs;
        [ Var ys ])
  in
  let m = Core.Memintro.introduce (Clone.clone_prog prog) in
  let h = Core.Hoist.hoist m in
  let rec leading_allocs = function
    | { exp = EAlloc _; _ } :: rest -> 1 + leading_allocs rest
    | _ -> 0
  in
  Alcotest.(check int) "both allocs float to the top" 2
    (leading_allocs h.body.stms)

let test_lastuse_annotations () =
  let prog =
    B.prog "lu" ~ctx:ctx_n ~params:[ pat_elem "n" i64 ] ~ret:[ f64 ]
      (fun b ->
        let xs = fill b "xs" n 1.0 in
        let a = B.index b xs [ P.zero ] in
        let bv = B.index b xs [ P.one ] in
        [ B.fadd b a bv ])
  in
  ignore (Core.Lastuse.annotate prog);
  (* the second read of xs is its last use *)
  let stms = prog.body.stms in
  let with_lu =
    List.filter (fun s -> List.mem "xs_1" s.last_uses || s.last_uses <> []) stms
  in
  Alcotest.(check bool) "some statement is a last use" true (with_lu <> []);
  (* the FIRST read must not be marked *)
  let first_read =
    List.find
      (fun s -> match s.exp with EIndex (_, [ i ]) -> P.is_zero i | _ -> false)
      stms
  in
  Alcotest.(check (list string)) "first read is not a last use" []
    first_read.last_uses

(* ---------------------------------------------------------------- *)
(* Memory introduction: anti-unified if                               *)
(* ---------------------------------------------------------------- *)

let test_memintro_if_existential () =
  let prog =
    B.prog "mi" ~ctx:ctx_n
      ~params:[ pat_elem "n" i64; pat_elem "c" boolt ]
      ~ret:[ arr F64 [ n; n ] ]
      (fun b ->
        let iv = Ir.Names.fresh "i" and jv = Ir.Names.fresh "j" in
        let xs =
          B.mapnest b "xs" [ (iv, n); (jv, n) ] (fun _bb -> [ Float 1.0 ])
        in
        let r =
          B.if_ b "r" (Var "c")
            (fun tb -> [ Var (B.bind tb "t" (ETranspose (xs, [ 1; 0 ]))) ])
            (fun fb -> [ Var (B.bind fb "f" (EAtom (Var xs))) ])
        in
        [ Var (List.hd r) ])
  in
  let m = Core.Memintro.introduce (Clone.clone_prog prog) in
  (* the if statement's pattern must follow the [mem, witness...,
     array] grouping: a TMem binder, i64 witnesses, then the array
     annotated with that very block *)
  let if_stm =
    List.find
      (fun s -> match s.exp with EIf _ -> true | _ -> false)
      m.body.stms
  in
  (match if_stm.pat with
  | mem_pe :: rest ->
      Alcotest.(check bool) "group starts with TMem" true (mem_pe.pt = TMem);
      let wits, arr =
        match List.rev rest with
        | arr :: rwits -> (List.rev rwits, arr)
        | [] -> Alcotest.fail "no array result in the group"
      in
      Alcotest.(check bool) "witnesses are i64" true
        (wits <> [] && List.for_all (fun pe -> pe.pt = TScalar I64) wits);
      Alcotest.(check bool) "array result is an array" true
        (is_array_typ arr.pt);
      (match arr.pmem with
      | Some mi ->
          Alcotest.(check string) "array lives in the existential block"
            mem_pe.pv mi.block;
          Alcotest.(check bool) "witnesses appear in the index function" true
            (List.exists
               (fun pe -> List.mem pe.pv (Lmads.Ixfn.vars mi.ixfn))
               wits)
      | None -> Alcotest.fail "array result lacks a memory annotation")
  | [] -> Alcotest.fail "empty if pattern");
  (* the annotated program round-trips through the type checker *)
  Check.check_prog m;
  (* and still runs: both branches (transposed and row-major layouts) *)
  List.iter
    (fun cond ->
      let expect = Interp.run prog [ Value.VInt 3; Value.VBool cond ] in
      let got = Interp.run m [ Value.VInt 3; Value.VBool cond ] in
      Alcotest.(check bool) "annotated program unchanged semantically" true
        (List.for_all2 Value.approx_equal expect got))
    [ true; false ]

(* ---------------------------------------------------------------- *)
(* Randomized: NW over random shapes stays correct & short-circuits  *)
(* ---------------------------------------------------------------- *)

let prop_nw_random_sizes =
  QCheck.Test.make ~name:"NW pipeline correct for random (q,b)" ~count:(Qcount.count 6)
    (QCheck.make
       ~print:(fun (q, b) -> Printf.sprintf "q=%d b=%d" q b)
       QCheck.Gen.(pair (int_range 2 4) (int_range 2 5)))
    (fun (q, b) ->
      let args = Benchsuite.Nw.small_args ~q ~b in
      let v = Benchsuite.Runner.validate Benchsuite.Nw.prog args in
      v.Benchsuite.Runner.ok_unopt && v.Benchsuite.Runner.ok_opt
      && v.Benchsuite.Runner.copies_opt = 0)

let tests =
  [
    Alcotest.test_case "Fig. 1 left" `Quick test_fig1_left;
    Alcotest.test_case "Fig. 1 right (negative)" `Quick test_fig1_right;
    Alcotest.test_case "Fig. 4a concat" `Quick test_fig4a_concat;
    Alcotest.test_case "concat bs bs (footnote 17)" `Quick
      test_concat_same_array_twice;
    Alcotest.test_case "Fig. 4b conflicting use (negative)" `Quick
      test_fig4b_conflicting_use;
    Alcotest.test_case "Fig. 4b disjoint use" `Quick test_fig4b_disjoint_use;
    Alcotest.test_case "invertible transpose chain" `Quick
      test_invertible_transpose_chain;
    Alcotest.test_case "non-invertible slice chain (negative)" `Quick
      test_noninvertible_slice_chain;
    Alcotest.test_case "Fig. 5a if candidate" `Quick test_fig5a_if;
    Alcotest.test_case "Fig. 6a transitive chaining" `Quick
      test_fig6a_transitive;
    Alcotest.test_case "Fig. 6b mapnest result" `Quick test_fig6b_mapnest;
    Alcotest.test_case "allocation hoisting" `Quick test_hoist_allocs_first;
    Alcotest.test_case "last-use annotations" `Quick test_lastuse_annotations;
    Alcotest.test_case "memintro if existentials" `Quick
      test_memintro_if_existential;
    QCheck_alcotest.to_alcotest prop_nw_random_sizes;
  ]
