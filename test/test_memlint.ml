(* Tests for the memory-IR verifier (Memlint).

   Differential design: every seed program - hand-built scenarios and
   the benchmark suite - must lint clean at every pipeline stage, and
   each hand-injected annotation bug must be rejected with the right
   rule:

   - dropping an allocation            -> alloc-dominance
   - redirecting a result's block      -> layout
   - widening a stride out of bounds   -> footprint
   - reading a circuited source again  -> last-use
   - collapsing per-thread slots       -> write-race *)

open Ir
open Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Build
module L = Lmads.Lmad
module Ixfn = Lmads.Ixfn
module ML = Core.Memlint

let c = P.const
let n = P.var "n"
let ctx_n2 = Pr.add_range Pr.empty "n" ~lo:(c 2) ()

let fill b name cnt seed =
  B.mapnest b name [ (Names.fresh "i", cnt) ] (fun bb ->
      [ B.fadd bb (Float seed) (Float 0.0) ])

(* xs = fill n, returned; the smallest allocating program. *)
let base_fill () =
  B.prog "mlfill" ~ctx:ctx_n2 ~params:[ pat_elem "n" i64 ]
    ~ret:[ arr F64 [ n ] ]
    (fun b -> [ Var (fill b "xs" n 1.0) ])

(* as = fill (n,n); bs = transpose as, returned. *)
let base_transpose () =
  B.prog "mltr" ~ctx:ctx_n2
    ~params:[ pat_elem "n" i64; pat_elem "ys" (arr F64 [ n; n ]) ]
    ~ret:[ arr F64 [ n; n ] ]
    (fun b ->
      let iv = Names.fresh "i" and jv = Names.fresh "j" in
      let as_ =
        B.mapnest b "as" [ (iv, n); (jv, n) ] (fun bb ->
            [ B.fadd bb (Float 1.0) (Float 0.0) ])
      in
      [ Var (B.bind b "bs" (ETranspose (as_, [ 1; 0 ]))) ])

(* bs = fill n; xss[n:n] = bs - the short-circuiting pass rebases bs
   into xss's block and the update becomes bs's last use. *)
let base_circuit () =
  B.prog "mlsc" ~ctx:ctx_n2
    ~params:[ pat_elem "n" i64; pat_elem "xss" (arr F64 [ P.scale 2 n ]) ]
    ~ret:[ arr F64 [ P.scale 2 n ] ]
    (fun b ->
      let bs = fill b "bs" n 7.0 in
      [
        Var
          (B.bind b "xss2"
             (EUpdate
                {
                  dst = "xss";
                  slc = STriplet [ SRange { start = n; len = n; step = P.one } ];
                  src = SrcArr bs;
                }));
      ])

let check_clean name p =
  let r = ML.check p in
  Alcotest.(check (list string))
    (name ^ " seed lints clean") []
    (List.map (fun v -> v.ML.detail) (ML.errors r))

let check_rejected name rule p =
  let r = ML.check p in
  Alcotest.(check bool) (name ^ " is rejected") true (not (ML.ok r));
  Alcotest.(check bool)
    (Printf.sprintf "%s blames [%s]" name rule)
    true
    (List.exists (fun v -> v.ML.rule = rule) (ML.errors r))

(* The (single) annotated array binding of the mapnest statement. *)
let mapnest_pe (p : prog) : pat_elem =
  let stm =
    List.find
      (fun s -> match s.exp with EMap _ -> true | _ -> false)
      p.body.stms
  in
  List.find (fun pe -> is_array_typ pe.pt && pe.pmem <> None) stm.pat

(* ---------------------------------------------------------------- *)
(* Mutation 1: drop the allocation of a used block                   *)
(* ---------------------------------------------------------------- *)

let test_dropped_alloc () =
  let p = Core.Pipeline.to_memory_ir (base_fill ()) in
  check_clean "fill" p;
  let stms =
    List.filter
      (fun s -> match s.exp with EAlloc _ -> false | _ -> true)
      p.body.stms
  in
  check_rejected "dropped alloc" "alloc-dominance"
    { p with body = { p.body with stms } }

(* ---------------------------------------------------------------- *)
(* Mutation 2: a change-of-layout result claims the wrong block      *)
(* ---------------------------------------------------------------- *)

let test_wrong_block () =
  let p = Core.Pipeline.to_memory_ir (base_transpose ()) in
  check_clean "transpose" p;
  let ys = List.find (fun pe -> pe.pv = "ys") p.params in
  let ys_block = (Option.get ys.pmem).block in
  let tr_stm =
    List.find
      (fun s -> match s.exp with ETranspose _ -> true | _ -> false)
      p.body.stms
  in
  let pe = List.hd tr_stm.pat in
  let m = Option.get pe.pmem in
  pe.pmem <- Some { m with block = ys_block };
  check_rejected "wrong block" "layout" p

(* ---------------------------------------------------------------- *)
(* Mutation 3: widen a stride so the footprint escapes the block     *)
(* ---------------------------------------------------------------- *)

let test_out_of_bounds_stride () =
  let p = Core.Pipeline.to_memory_ir (base_fill ()) in
  let pe = mapnest_pe p in
  let m = Option.get pe.pmem in
  let l = List.hd (Ixfn.chain m.ixfn) in
  let widened =
    L.make (L.offset l)
      (List.map (fun d -> L.dim d.L.n (P.mul d.L.s (c 2))) (L.dims l))
  in
  (* same shape, doubled stride: max offset 2(n-1) > n-1 for n >= 2 *)
  pe.pmem <- Some { m with ixfn = Ixfn.of_lmad widened };
  check_rejected "out-of-bounds stride" "footprint" p

(* ---------------------------------------------------------------- *)
(* Mutation 4: read a short-circuited copy source after the update   *)
(* ---------------------------------------------------------------- *)

let test_use_after_last_use () =
  let compiled = Core.Pipeline.compile (base_circuit ()) in
  Alcotest.(check bool)
    "the circuit fires" true
    (compiled.Core.Pipeline.stats.Core.Shortcircuit.succeeded > 0);
  let p = compiled.Core.Pipeline.opt in
  check_clean "circuited update" p;
  (* bs now lives in xss's block and the update is its last use; a
     read of bs after the update observes the overwrite *)
  let src =
    List.find_map
      (fun s ->
        match s.exp with
        | EUpdate { src = SrcArr b; _ } -> Some b
        | _ -> None)
      p.body.stms
    |> Option.get
  in
  let extra =
    { pat = [ pat_elem "lint_t" f64 ]; exp = EIndex (src, [ P.zero ]);
      last_uses = [] }
  in
  check_rejected "use after last use" "last-use"
    { p with body = { p.body with stms = p.body.stms @ [ extra ] } }

(* ---------------------------------------------------------------- *)
(* Mutation 5: collapse the per-thread result slots onto each other  *)
(* ---------------------------------------------------------------- *)

let test_overlapping_threads () =
  let p = Core.Pipeline.to_memory_ir (base_fill ()) in
  let pe = mapnest_pe p in
  let m = Option.get pe.pmem in
  let l = List.hd (Ixfn.chain m.ixfn) in
  let collapsed =
    L.make (L.offset l) (List.map (fun d -> L.dim d.L.n P.zero) (L.dims l))
  in
  (* stride 0: every thread writes slot 0 *)
  pe.pmem <- Some { m with ixfn = Ixfn.of_lmad collapsed };
  check_rejected "overlapping thread writes" "write-race" p

(* ---------------------------------------------------------------- *)
(* Seeds: the benchmark programs lint clean at every stage           *)
(* ---------------------------------------------------------------- *)

(* The cheap-to-compile benchmarks; nw and lud are covered by
   `repro lint all` (their non-overlap proofs dominate the runtime). *)
let test_benchmarks_clean () =
  List.iter
    (fun (name, prog) ->
      let compiled = Core.Pipeline.compile ~lint:true prog in
      Alcotest.(check int)
        (name ^ " lints at every stage") 7
        (List.length compiled.Core.Pipeline.lint);
      match Core.Pipeline.first_lint_error compiled.Core.Pipeline.lint with
      | None -> ()
      | Some (stage, v) ->
          Alcotest.failf "%s: %s introduced %s" name stage
            (Fmt.str "%a" ML.pp_violation v))
    [
      ("hotspot", Benchsuite.Hotspot.prog);
      ("lbm", Benchsuite.Lbm.prog);
      ("optionpricing", Benchsuite.Option_pricing.prog);
      ("locvolcalib", Benchsuite.Locvolcalib.prog);
      ("nn", Benchsuite.Nn.prog);
    ]

(* Regression: LUD's interior write-race obligations need the prover's
   triangular-bound saturation (from 0 <= jv <= bi - 1 and
   bi <= m - 1 it must derive m >= 2 for the per-thread disjointness
   proof); pin the benchmark to zero warnings at every stage so a
   prover regression cannot silently reintroduce them. *)
let test_lud_no_warnings () =
  let compiled = Core.Pipeline.compile ~lint:true Benchsuite.Lud.prog in
  Alcotest.(check int) "lud lints at every stage" 7
    (List.length compiled.Core.Pipeline.lint);
  List.iter
    (fun (stage, r) ->
      let pp vs = List.map (fun v -> Fmt.str "%a" ML.pp_violation v) vs in
      Alcotest.(check (list string))
        (Printf.sprintf "lud %s: no errors" stage)
        [] (pp (ML.errors r));
      Alcotest.(check (list string))
        (Printf.sprintf "lud %s: no warnings" stage)
        [] (pp (ML.warnings r)))
    compiled.Core.Pipeline.lint

(* A pre-memory program is vacuously clean. *)
let test_unannotated_clean () =
  let r = ML.check (base_fill ()) in
  Alcotest.(check bool) "no annotations, no violations" true
    (ML.ok r && ML.warnings r = []);
  Alcotest.(check int) "no annotations counted" 0 r.ML.annotations

let tests =
  [
    Alcotest.test_case "unannotated program" `Quick test_unannotated_clean;
    Alcotest.test_case "mutation: dropped alloc" `Quick test_dropped_alloc;
    Alcotest.test_case "mutation: wrong block" `Quick test_wrong_block;
    Alcotest.test_case "mutation: out-of-bounds stride" `Quick
      test_out_of_bounds_stride;
    Alcotest.test_case "mutation: use after last use" `Quick
      test_use_after_last_use;
    Alcotest.test_case "mutation: overlapping thread writes" `Quick
      test_overlapping_threads;
    Alcotest.test_case "benchmarks lint clean per stage" `Slow
      test_benchmarks_clean;
    Alcotest.test_case "lud: zero warnings (triangular bounds)" `Slow
      test_lud_no_warnings;
  ]
