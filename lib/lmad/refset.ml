(* Summaries of memory references as unions of LMADs (section V-B).

   The short-circuiting analysis maintains two such summaries per
   candidate: U_xss (all uses of the destination memory seen so far,
   scanning bottom-up from the circuit point) and W_bs (all writes
   performed through the rebased candidate).  The only operations the
   analysis needs are union, aggregation over loop indices (by LMAD
   dimension promotion), and pairwise disjointness - no intersection or
   subtraction, which the paper notes keeps this much simpler than
   full parallelism analysis.

   [Top] conservatively overestimates a summary to "all of memory"
   (footnote 26), used e.g. for multi-LMAD index functions or
   data-dependent offsets; it is disjoint from nothing but the empty
   summary. *)

module P = Symalg.Poly
module Pr = Symalg.Prover

type t = Top | Union of Lmad.t list

let empty = Union []
let top = Top
let of_lmad l = Union [ l ]

let is_empty ctx = function
  | Top -> false
  | Union ls -> List.for_all (Lmad.is_empty_set ctx) ls

let union a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Union xs, Union ys -> Union (xs @ ys)

let add_lmad l = function Top -> Top | Union xs -> Union (l :: xs)

let unions = List.fold_left union empty

(* Pairwise sufficient disjointness: every LMAD of [a] provably avoids
   every LMAD of [b].  [depth] bounds the dimension-splitting recursion
   of the underlying non-overlap test (0 disables splitting, used by the
   ablation study). *)
let disjoint ?depth ctx a b =
  match (a, b) with
  | Top, x | x, Top -> is_empty ctx x
  | Union xs, Union ys ->
      List.for_all
        (fun x ->
          List.for_all (fun y -> Nonoverlap.disjoint ?depth ctx x y) ys)
        xs

(* [lmad] disjoint from the whole summary. *)
let disjoint_lmad ?depth ctx l t = disjoint ?depth ctx (of_lmad l) t

(* Aggregate the summary across [for v = 0 .. count-1]: each LMAD is
   expanded by dimension promotion; failure of any expansion
   overestimates the whole summary to Top. *)
let expand_loop ctx v ~count = function
  | Top -> Top
  | Union xs ->
      let rec go acc = function
        | [] -> Union (List.rev acc)
        | l :: rest -> (
            match Lmad.expand_loop ctx v ~count l with
            | Some l' -> go (l' :: acc) rest
            | None -> Top)
      in
      go [] xs

(* Substitute a variable in every constituent LMAD; Top stays Top. *)
let subst v by = function
  | Top -> Top
  | Union xs -> Union (List.map (Lmad.subst v by) xs)

let subst_map env = function
  | Top -> Top
  | Union xs -> Union (List.map (Lmad.subst_map env) xs)

(* Concretize every constituent LMAD under an integer assignment; a
   Top summary has no finite enumeration. *)
let concretize env = function
  | Top -> None
  | Union xs -> Some (List.map (Lmad.concretize env) xs)

(* Free variables (empty for Top). *)
let vars = function
  | Top -> []
  | Union xs -> List.sort_uniq String.compare (List.concat_map Lmad.vars xs)

let pp ppf = function
  | Top -> Fmt.string ppf "TOP"
  | Union [] -> Fmt.string ppf "{}"
  | Union xs -> Fmt.pf ppf "@[<h>%a@]" Fmt.(list ~sep:(any " U ") Lmad.pp) xs
