(** Linear Memory Access Descriptors (paper, eq. (1)).

    An LMAD [t + {(n1 : s1), ..., (nq : sq)}] denotes the set of flat
    offsets [{ t + i1*s1 + ... + iq*sq | 0 <= ik < nk }].  It serves two
    roles (section III): as an {e index function} mapping a
    q-dimensional index to an offset in a memory block - supporting O(1)
    change-of-layout operations - and as an {e abstract set} of memory
    references, the building block of the short-circuiting analysis.
    All components are symbolic polynomials ({!Symalg.Poly}). *)

module P = Symalg.Poly
module Pr = Symalg.Prover

type dim = { n : P.t;  (** cardinal: number of points *)
             s : P.t   (** stride between consecutive points *) }

type t = { off : P.t; dims : dim list }

(** {1 Construction and access} *)

val make : P.t -> dim list -> t
val dim : P.t -> P.t -> dim
(** [dim n s] is the dimension [(n : s)]. *)

val rank : t -> int
val shape : t -> P.t list
(** Cardinals of the dimensions, outermost first. *)

val offset : t -> P.t
val dims : t -> dim list

val row_major : ?off:P.t -> P.t list -> t
(** The paper's [R(d1,...,dq)]: strides are suffix products. *)

val col_major : ?off:P.t -> P.t list -> t
(** The paper's [C(d1,...,dq)]: strides are prefix products. *)

val iota : P.t -> t
(** Rank-1 identity layout [0 + {(n : 1)}]. *)

val point : P.t -> t
(** The singleton set / rank-0 index function at the given offset. *)

(** {1 Application} *)

val apply : t -> P.t list -> P.t
(** Symbolic application: [apply l \[i1;...;iq\] = off + sum ik*sk].
    @raise Invalid_argument on rank mismatch. *)

val apply_int : (string -> int) -> t -> int list -> int
(** Concrete application under an integer environment. *)

(** {1 Change-of-layout transformations (section IV-B)} *)

val permute : int list -> t -> t
(** Permute dimensions; [permute perm l] puts old dimension [perm.(i)]
    at position [i].  @raise Invalid_argument if not a permutation. *)

val transpose : t -> t
(** [permute \[1;0\]] for rank 2.  @raise Invalid_argument otherwise. *)

val reverse : int -> t -> t
(** Read dimension [k] backwards: negative stride, shifted offset
    (footnote 13: not normalizable away for index functions). *)

type slice_dim =
  | Fix of P.t  (** fix the index; the dimension disappears *)
  | Range of { start : P.t; len : P.t; step : P.t }

val slice : slice_dim list -> t -> t
(** Triplet slicing, one component per dimension. *)

val lmad_slice : slc:t -> t -> t
(** Generalized LMAD slicing (section III-B): [slc] selects indices of
    the flat index space of a rank-1 [base]; the result takes [slc]'s
    dimension structure.  @raise Invalid_argument if the base is not
    rank 1 (flatten it first, cf. {!Ixfn.lmad_slice}). *)

val merge_dims : Pr.t -> dim -> dim -> dim option
(** Merge two adjacent dims when outer stride = inner cardinal * inner
    stride (the row-major flattening condition). *)

val flatten_dims : Pr.t -> int -> t -> t option
(** Merge dims [k] and [k+1] if possible. *)

val flatten_all : Pr.t -> t -> t option
(** Flatten to rank 1, if every adjacent pair merges. *)

val unflatten_dim : int -> outer:P.t -> inner:P.t -> t -> t
(** Split dimension [k] of cardinal [outer*inner] into two. *)

val is_direct : Pr.t -> t -> bool
(** Is this the zero-offset row-major layout for its shape? *)

(** {1 Abstract-set operations (section V-B/V-C)} *)

val normalize_set : Pr.t -> t -> t option
(** Flip provably-negative strides (valid for the set view only);
    [None] when some stride's sign is undecidable. *)

val is_empty_set : Pr.t -> t -> bool
(** Some cardinal is provably [<= 0]. *)

val expand_loop : Pr.t -> string -> count:P.t -> t -> t option
(** Aggregate over [for v = 0..count-1] (section II-B): promote the
    offset's linear-in-[v] term to a new dimension.  A cardinal
    mentioning [v] is overestimated per footnote 8 (substituting the
    maximizing bound); [v] in a stride defeats aggregation. *)

val card : t -> P.t
(** Number of points (product of cardinals). *)

val bounds : Pr.t -> t -> (P.t * P.t) option
(** Inclusive symbolic [(min, max)] offset extrema of the point set:
    [Some] only when every cardinal is provably [>= 1] and every
    stride's sign is provable, so a demonstrated violation of the
    returned bounds is a real out-of-bounds access.  The footprint
    obligation of the memory linter checks these against [\[0, size)]
    with {!Symalg.Prover.check_in_range}. *)

(** {1 Substitution, comparison, enumeration} *)

val map_polys : (P.t -> P.t) -> t -> t
val subst : string -> P.t -> t -> t
val subst_map : P.t P.SM.t -> t -> t
val subst_fixpoint : P.t P.SM.t -> t -> t
val rename : (string -> string) -> t -> t
val vars : t -> string list
val equal : t -> t -> bool
(** Component-wise polynomial (normal-form) equality. *)

(** {1 Concretization}

    An LMAD whose polynomials have been evaluated under a concrete
    assignment of the free variables: a plain integer offset plus
    (cardinal, stride) pairs.  This is the currency of the execution
    tracer ({!Core.Trace}): the executor concretizes the static
    annotations at kernel launch, and the {!Core.Memtrace}
    cross-checker later re-enumerates the point sets to compare them
    with the offsets the kernel actually touched. *)

type concrete = { coff : int; cdims : (int * int) list }

val concretize : (string -> int) -> t -> concrete
(** Evaluate offset and every (cardinal, stride) under [env].
    @raise Invalid_argument if a free variable is unbound in [env]. *)

val concrete_points : concrete -> int list
(** Enumerate the concrete point set, in row-major order of the
    dimensions. *)

val concrete_card : concrete -> int
(** Number of points ([concrete_points] length) without enumerating. *)

val concrete_extrema : concrete -> (int * int) option
(** Inclusive [(min, max)] offsets of the concrete point set, computed
    from the dimension signs without enumeration; [None] when the set is
    empty (some cardinal [<= 0]).  The certificate checker uses this to
    test footprint bounds at concrete sizes too large to enumerate. *)

val pp_concrete : Format.formatter -> concrete -> unit

val eval_points : (string -> int) -> t -> int list
(** [concrete_points (concretize env l)] (used by tests and the
    interpreter's slice semantics). *)

(** {1 Printing} *)

val pp_dim : Format.formatter -> dim -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
