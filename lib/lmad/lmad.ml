(* Linear Memory Access Descriptors (paper, eq. (1)):

     t + {(n1 : s1), ..., (nq : sq)}
       = { t + i1*s1 + ... + iq*sq | 0 <= ik < nk }

   An LMAD plays two roles in this compiler (section III):
   - as an *index function*: a map from a q-dimensional index space to a
     flat offset inside a memory block, supporting O(1) change-of-layout
     operations (transposition, slicing, reversal, reshaping);
   - as an *abstract set* of flat memory offsets, the building block of
     the read/write summaries aggregated by the short-circuiting index
     analysis (section V-B).

   All offsets, strides and cardinals are symbolic polynomials, so one
   descriptor covers every concrete instantiation of the program sizes. *)

module P = Symalg.Poly
module Pr = Symalg.Prover

type dim = { n : P.t; s : P.t }
(* [n] is the cardinal (number of points), [s] the linearized stride. *)

type t = { off : P.t; dims : dim list }

(* ---------------------------------------------------------------- *)
(* Construction                                                      *)
(* ---------------------------------------------------------------- *)

let make off dims = { off; dims }
let dim n s = { n; s }

let rank l = List.length l.dims
let shape l = List.map (fun d -> d.n) l.dims
let offset l = l.off
let dims l = l.dims

(* Row-major index function for the given shape: strides are suffix
   products of the dimensions (the paper's R(d1,...,dq)). *)
let row_major ?(off = P.zero) shp =
  let rec strides = function
    | [] -> []
    | [ _ ] -> [ P.one ]
    | _ :: rest ->
        let ss = strides rest in
        (match (rest, ss) with
        | n :: _, s :: _ -> P.mul n s
        | _ -> assert false)
        :: ss
  in
  { off; dims = List.map2 (fun n s -> { n; s }) shp (strides shp) }

(* Column-major index function (the paper's C(d1,...,dq)): the stride
   of each dimension is the product of the dimensions before it, i.e.
   the row-major strides of the reversed shape, reversed. *)
let col_major ?(off = P.zero) shp =
  let rm = row_major (List.rev shp) in
  { off; dims = List.map2 (fun n d -> { n; s = d.s }) shp (List.rev rm.dims) }

let iota n = row_major [ n ]
let point off = { off; dims = [] }

(* ---------------------------------------------------------------- *)
(* Application                                                       *)
(* ---------------------------------------------------------------- *)

let apply l idxs =
  if List.length idxs <> rank l then
    invalid_arg "Lmad.apply: rank mismatch"
  else
    List.fold_left2
      (fun acc i d -> P.add acc (P.mul i d.s))
      l.off idxs l.dims

let apply_int (env : string -> int) l (idxs : int list) : int =
  P.eval env (apply l (List.map P.const idxs))

(* ---------------------------------------------------------------- *)
(* Change-of-layout transformations (section IV-B)                   *)
(* ---------------------------------------------------------------- *)

let permute perm l =
  if List.sort compare perm <> List.init (rank l) (fun i -> i) then
    invalid_arg "Lmad.permute: not a permutation";
  let arr = Array.of_list l.dims in
  { l with dims = List.map (fun i -> arr.(i)) perm }

let transpose l =
  match l.dims with
  | [ a; b ] -> { l with dims = [ b; a ] }
  | _ -> invalid_arg "Lmad.transpose: rank <> 2"

(* Reverse dimension [k]: the index function for reading the dimension
   backwards has a negative stride (footnote 13: this cannot be
   normalized away when used as an index function). *)
let reverse k l =
  {
    off =
      P.add l.off
        (P.mul (P.sub (List.nth l.dims k).n P.one) (List.nth l.dims k).s);
    dims =
      List.mapi
        (fun i d -> if i = k then { d with s = P.neg d.s } else d)
        l.dims;
  }

type slice_dim =
  | Fix of P.t (* drop the dimension, fixing the index *)
  | Range of { start : P.t; len : P.t; step : P.t }

let slice (sl : slice_dim list) l =
  if List.length sl <> rank l then invalid_arg "Lmad.slice: rank mismatch";
  let off =
    List.fold_left2
      (fun acc se d ->
        match se with
        | Fix i -> P.add acc (P.mul i d.s)
        | Range { start; _ } -> P.add acc (P.mul start d.s))
      l.off sl l.dims
  in
  let dims =
    List.concat
      (List.map2
         (fun se d ->
           match se with
           | Fix _ -> []
           | Range { len; step; _ } -> [ { n = len; s = P.mul step d.s } ])
         sl l.dims)
  in
  { off; dims }

(* Generalized LMAD slicing (section III-B): [slc] describes indices
   into the flat index space of a rank-1 array with layout [base]; the
   result selects those elements, forming new dimensions.  This is the
   operation behind the NW anti-diagonal slices W, Rvert, Rhoriz. *)
let lmad_slice ~(slc : t) (base : t) =
  match base.dims with
  | [ { s; _ } ] ->
      {
        off = P.add base.off (P.mul slc.off s);
        dims = List.map (fun d -> { d with s = P.mul d.s s }) slc.dims;
      }
  | _ -> invalid_arg "Lmad.lmad_slice: base must have rank 1"

(* Flattening: merge adjacent dimensions (i, i+1) when the outer stride
   equals inner-cardinal * inner-stride; this is the only reshape a
   single LMAD supports in general (section IV-B). *)
let merge_dims ctx (d1 : dim) (d2 : dim) : dim option =
  if Pr.prove_eq ctx d1.s (P.mul d2.n d2.s) then
    Some { n = P.mul d1.n d2.n; s = d2.s }
  else None

let flatten_dims ctx k l =
  (* Merge dims k and k+1. *)
  let rec go i = function
    | d1 :: d2 :: rest when i = k -> (
        match merge_dims ctx d1 d2 with
        | Some d -> Some (d :: rest)
        | None -> None)
    | d :: rest -> Option.map (fun ds -> d :: ds) (go (i - 1) rest)
    | [] -> None
  in
  Option.map (fun dims -> { l with dims }) (go k l.dims)

let flatten_all ctx l =
  let rec go = function
    | [] -> Some []
    | [ d ] -> Some [ d ]
    | d1 :: d2 :: rest -> (
        match go (d2 :: rest) with
        | Some (d2' :: rest') -> (
            match merge_dims ctx d1 d2' with
            | Some d -> Some (d :: rest')
            | None -> None)
        | _ -> None)
  in
  match l.dims with
  | [] -> Some { l with dims = [ { n = P.one; s = P.one } ] }
  | _ -> (
      match go l.dims with
      | Some [ d ] -> Some { l with dims = [ d ] }
      | _ -> None)

(* Split dimension [k] of cardinal a*b into two dimensions (a, b);
   valid for any LMAD since the stride structure is preserved. *)
let unflatten_dim k ~outer ~inner l =
  let rec go i = function
    | d :: rest when i = k ->
        { n = outer; s = P.mul inner d.s } :: { n = inner; s = d.s } :: rest
    | d :: rest -> d :: go (i - 1) rest
    | [] -> invalid_arg "Lmad.unflatten_dim: bad dimension"
  in
  { l with dims = go k l.dims }

(* Is this LMAD the row-major layout for its shape with offset 0? *)
let is_direct ctx l =
  let rm = row_major (shape l) in
  Pr.prove_eq ctx l.off P.zero
  && List.for_all2
       (fun d1 d2 -> Pr.prove_eq ctx d1.s d2.s)
       l.dims rm.dims

(* ---------------------------------------------------------------- *)
(* Abstract-set operations (section V-B)                             *)
(* ---------------------------------------------------------------- *)

(* Normalize to positive strides; valid only for the abstract-set view
   of an LMAD.  Fails (None) when a stride's sign cannot be decided.
   Zero-stride dimensions collapse to nothing (all points coincide). *)
let normalize_set ctx l =
  let rec go off acc = function
    | [] -> Some { off; dims = List.rev acc }
    | d :: rest -> (
        match Pr.sign ctx d.s with
        | Pr.Pos -> go off (d :: acc) rest
        | Pr.Zero -> go off acc rest
        | Pr.Neg ->
            go
              (P.add off (P.mul (P.sub d.n P.one) d.s))
              ({ d with s = P.neg d.s } :: acc)
              rest
        | Pr.Unknown -> None)
  in
  go l.off [] l.dims

(* Is the described set provably empty (some cardinal <= 0)? *)
let is_empty_set ctx l =
  List.exists (fun d -> Pr.prove_le ctx d.n P.zero) l.dims

(* Aggregate the set over a loop [for v = 0 .. count-1] (section II-B):
   if the offset is linear in [v] with coefficient [b] and [v] does not
   occur in the dimensions, promote a new dimension (count : b).

   When [v] occurs in a *cardinal*, footnote 8 applies: substitute the
   bound that maximizes the cardinal (the loop's upper bound when the
   cardinal grows with [v], its lower bound 0 otherwise), which
   overestimates the set - e.g. the triangular inner loops of LUD.
   Occurrence in a stride defeats aggregation (None). *)
let expand_loop ctx v ~count l =
  let hi = P.sub count P.one in
  let rec fix_cardinals acc = function
    | [] -> Some (List.rev acc)
    | d :: rest ->
        if P.mem_var v d.s then None
        else if not (P.mem_var v d.n) then fix_cardinals (d :: acc) rest
        else
          (* maximize the cardinal over v in [0, count-1] *)
          let grows =
            match P.linear_in v d.n with
            | Some (coeff, _) -> Pr.sign ctx coeff
            | None -> Pr.Unknown
          in
          let subst_to =
            match grows with
            | Pr.Pos -> Some hi
            | Pr.Neg -> Some P.zero
            | Pr.Zero -> Some P.zero
            | Pr.Unknown -> None
          in
          (match subst_to with
          | Some bnd ->
              fix_cardinals ({ d with n = P.subst v bnd d.n } :: acc) rest
          | None -> None)
  in
  match fix_cardinals [] l.dims with
  | None -> None
  | Some dims -> (
      match P.linear_in v l.off with
      | None -> None
      | Some (b, a) ->
          if P.is_zero b then Some { l with dims }
          else Some { off = a; dims = { n = count; s = b } :: dims })

(* Total number of points (product of cardinals). *)
let card l = P.prod (List.map (fun d -> d.n) l.dims)

(* Inclusive symbolic extrema of the point set: each dimension with a
   provably signed stride contributes (n-1)*s to one end.  Requires
   every cardinal provably >= 1, so that a claimed violation of the
   resulting bounds is a real out-of-bounds point, never an artifact of
   an empty dimension. *)
let bounds ctx (l : t) : (P.t * P.t) option =
  let rec go lo hi = function
    | [] -> Some (lo, hi)
    | { n; s } :: rest ->
        if not (Pr.prove_ge ctx n P.one) then None
        else
          let ext = P.mul (P.sub n P.one) s in
          (match Pr.sign ctx s with
          | Pr.Pos -> go lo (P.add hi ext) rest
          | Pr.Neg -> go (P.add lo ext) hi rest
          | Pr.Zero -> go lo hi rest
          | Pr.Unknown -> None)
  in
  go l.off l.off l.dims

(* ---------------------------------------------------------------- *)
(* Substitution, renaming, comparison                                 *)
(* ---------------------------------------------------------------- *)

let map_polys f l =
  { off = f l.off; dims = List.map (fun d -> { n = f d.n; s = f d.s }) l.dims }

let subst v by l = map_polys (P.subst v by) l
let subst_map env l = map_polys (P.subst_map env) l
let subst_fixpoint env l = map_polys (P.subst_fixpoint env) l
let rename f l = map_polys (P.rename f) l

let vars l =
  List.sort_uniq String.compare
    (P.vars l.off
    @ List.concat_map (fun d -> P.vars d.n @ P.vars d.s) l.dims)

let equal l1 l2 =
  P.equal l1.off l2.off
  && List.length l1.dims = List.length l2.dims
  && List.for_all2
       (fun d1 d2 -> P.equal d1.n d2.n && P.equal d1.s d2.s)
       l1.dims l2.dims

(* ---------------------------------------------------------------- *)
(* Concrete enumeration (for testing and the reference executor)     *)
(* ---------------------------------------------------------------- *)

(* ---------------------------------------------------------------- *)
(* Concrete LMADs                                                    *)
(* ---------------------------------------------------------------- *)

type concrete = { coff : int; cdims : (int * int) list }

let concretize (env : string -> int) l : concrete =
  {
    coff = P.eval env l.off;
    cdims = List.map (fun d -> (P.eval env d.n, P.eval env d.s)) l.dims;
  }

let concrete_points (c : concrete) : int list =
  let rec go acc = function
    | [] -> [ acc ]
    | (n, s) :: rest ->
        List.concat (List.init (max n 0) (fun i -> go (acc + (i * s)) rest))
  in
  go c.coff c.cdims

let concrete_card (c : concrete) : int =
  List.fold_left (fun acc (n, _) -> acc * max n 0) 1 c.cdims

let concrete_extrema (c : concrete) : (int * int) option =
  if List.exists (fun (n, _) -> n <= 0) c.cdims then None
  else
    Some
      (List.fold_left
         (fun (lo, hi) (n, s) ->
           let extent = (n - 1) * s in
           if extent >= 0 then (lo, hi + extent) else (lo + extent, hi))
         (c.coff, c.coff) c.cdims)

let pp_concrete ppf (c : concrete) =
  Fmt.pf ppf "%d + {%a}" c.coff
    Fmt.(list ~sep:comma (pair ~sep:(any ":") int int))
    c.cdims

let eval_points (env : string -> int) l : int list =
  concrete_points (concretize env l)

(* ---------------------------------------------------------------- *)
(* Printing                                                          *)
(* ---------------------------------------------------------------- *)

let pp_dim ppf d = Fmt.pf ppf "(%a : %a)" P.pp d.n P.pp d.s

let pp ppf l =
  Fmt.pf ppf "%a + {%a}" P.pp l.off
    Fmt.(list ~sep:(any ", ") pp_dim)
    l.dims

let to_string l = Fmt.str "%a" pp l
