(** Memory-reference summaries as unions of LMADs (section V-B).

    These are the [U_xss] and [W_bs] summaries of the short-circuiting
    analysis: the uses of the destination's memory, and the writes
    through the rebased candidate.  The analysis only ever needs union,
    loop aggregation, and pairwise disjointness - no intersection or
    subtraction, which the paper notes keeps it much simpler than full
    parallelism analysis.  [Top] conservatively denotes "all of memory"
    (footnote 26). *)

module P = Symalg.Poly
module Pr = Symalg.Prover

type t = Top | Union of Lmad.t list

val empty : t
val top : t
val of_lmad : Lmad.t -> t

val is_empty : Pr.t -> t -> bool
(** Provably denotes no locations ([Top] never does). *)

val union : t -> t -> t
val add_lmad : Lmad.t -> t -> t
val unions : t list -> t

val disjoint : ?depth:int -> Pr.t -> t -> t -> bool
(** Pairwise sufficient disjointness via {!Nonoverlap.disjoint};
    [depth] is forwarded to the splitting recursion. *)

val disjoint_lmad : ?depth:int -> Pr.t -> Lmad.t -> t -> bool

val expand_loop : Pr.t -> string -> count:P.t -> t -> t
(** Aggregate over a loop index by dimension promotion; any LMAD whose
    expansion fails overestimates the whole summary to [Top]. *)

val subst : string -> P.t -> t -> t
val subst_map : P.t P.SM.t -> t -> t

val concretize : (string -> int) -> t -> Lmad.concrete list option
(** Evaluate the summary under a concrete assignment: the finite union
    of {!Lmad.concrete} point sets it denotes, or [None] for [Top]
    (all of memory has no finite enumeration).  Used by the execution
    tracer to turn static footprints into checkable offset sets. *)

val vars : t -> string list
(** Free variables (empty for [Top]). *)

val pp : Format.formatter -> t -> unit
