(* Memcert: per-rewrite proof certificates and the independent
   translation-validation checker (see certify.mli for the design).

   The checker deliberately shares no decision code with the emitting
   passes: every structural fact (last uses, live ranges, scalar
   definitions, allocation sites) is re-derived here by fresh scans of
   the pre-/post-pass programs, and every symbolic fact is re-proved
   through the public prover entry points ({!Pr.prove_ge},
   {!Refset.disjoint}, {!Lmad.bounds} + {!Pr.check_in_range}).  When
   the symbolic re-proof fails, the claim is *concretized*: small
   shape assignments consistent with the recorded prover context are
   enumerated, and the claim is evaluated exactly.  A violation under
   an admissible assignment refutes the obligation (the certificate is
   wrong, not merely unproven); otherwise the claim is reported as
   dynamically validated at those sizes. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module Ixfn = Lmads.Ixfn
module Refset = Lmads.Refset
module SS = Ir.Ast.SS
module IS = Set.Make (Int)

(* ---------------------------------------------------------------- *)
(* Certificate IR                                                    *)
(* ---------------------------------------------------------------- *)

type rewrite =
  | Copy_elide of { candidate : string; dst_block : string; at_binding : string }
  | Chain_removal of { loop_binding : string; position : int }
  | Rotation of {
      loop_binding : string;
      init_block : string;
      init_arr : string;
      spare_block : string;
    }
  | Coalesce of { earlier : string; later : string }
  | Hoist of { block : string; loop_binding : string }
  | Mem_intro of { block : string; binding : string }
  | Exist_intro of { binding : string }
  | Float_up of { binding : string }
  | Dead_removal of { block : string }
  | If_hoist of { block : string; if_binding : string }
  | Packing of { arena : string; members : string list }

type claim =
  | Nonoverlap of { w : Refset.t; u : Refset.t }
  | Size_ge of { larger : P.t; smaller : P.t }
  | Bounds_in of { lmad : Lmad.t; lo : P.t; hi : P.t }
  | Last_use of { var : string; at_binding : string }
  | Rebased of { var : string; mem : mem_info }
  | Dead_mem of { names : string list }
  | Dead_after of { names : string list; binding : string }
  | Live_disjoint of { earlier : string; later : string; movers : string list }
  | Dies_each_iter of { block : string; loop_binding : string }
  | Sole_occupant of { block : string; ixfn : Ixfn.t }
  | Grouped of { mem : string; wits : string list; arr : string }
  | Footprint_fits of { block : string; arr : string }
  | Dominance of { binding : string }
  | Unreferenced of { name : string }
  | Dies_in_arm of { block : string; if_binding : string; arm : bool }
  | Packed_disjoint of {
      arena : string;
      a : string;
      a_off : P.t;
      a_size : P.t;
      b : string;
      b_off : P.t;
      b_size : P.t;
    }
  | Fits_in_arena of {
      arena : string;
      member : string;
      off : P.t;
      size : P.t;
      extent : P.t;
    }
  | Hole_disjoint of {
      arena : string;
      a : string;
      a_off : P.t;
      a_size : P.t;
      b : string;
      b_off : P.t;
      b_size : P.t;
      iter : string option;
    }

type obligation = {
  o_id : int;
  o_pass : string;
  o_rewrite : rewrite;
  o_claim : claim;
  o_ctx : Pr.t;
}

(* ---------------------------------------------------------------- *)
(* Recording                                                         *)
(* ---------------------------------------------------------------- *)

type recorder = {
  r_pass : string;
  mutable r_obls : obligation list; (* reversed *)
  mutable r_next : int;
}

let recorder ~pass = { r_pass = pass; r_obls = []; r_next = 0 }

let emit r o_rewrite ?(ctx = Pr.empty) o_claim =
  r.r_obls <-
    { o_id = r.r_next; o_pass = r.r_pass; o_rewrite; o_claim; o_ctx = ctx }
    :: r.r_obls;
  r.r_next <- r.r_next + 1

let obligations r = List.rev r.r_obls
let count r = r.r_next

(* ---------------------------------------------------------------- *)
(* Rendering of the IR                                               *)
(* ---------------------------------------------------------------- *)

let pp_rewrite ppf = function
  | Copy_elide { candidate; dst_block; at_binding } ->
      Fmt.pf ppf "copy-elide %s into %s at %s" candidate dst_block at_binding
  | Chain_removal { loop_binding; position } ->
      Fmt.pf ppf "chain-removal position %d of loop %s" position loop_binding
  | Rotation { loop_binding; init_block; init_arr; spare_block } ->
      Fmt.pf ppf "rotation of loop %s (init %s@%s, spare %s)" loop_binding
        init_arr init_block spare_block
  | Coalesce { earlier; later } ->
      Fmt.pf ppf "coalesce %s <- %s" earlier later
  | Hoist { block; loop_binding } ->
      Fmt.pf ppf "hoist %s out of loop %s" block loop_binding
  | Mem_intro { block; binding } ->
      Fmt.pf ppf "memory introduction of %s for %s" block binding
  | Exist_intro { binding } ->
      Fmt.pf ppf "existential grouping introduced at %s" binding
  | Float_up { binding } -> Fmt.pf ppf "float %s to its block top" binding
  | Dead_removal { block } ->
      Fmt.pf ppf "dead-allocation removal of %s" block
  | If_hoist { block; if_binding } ->
      Fmt.pf ppf "hoist %s out of an arm of if %s" block if_binding
  | Packing { arena; members } ->
      Fmt.pf ppf "pack %a into arena %s"
        Fmt.(list ~sep:comma string)
        members arena

let pp_claim ppf = function
  | Nonoverlap { w; u } ->
      Fmt.pf ppf "nonoverlap W=%a # U=%a" Refset.pp w Refset.pp u
  | Size_ge { larger; smaller } ->
      Fmt.pf ppf "size %a >= %a" P.pp larger P.pp smaller
  | Bounds_in { lmad; lo; hi } ->
      Fmt.pf ppf "bounds of %a within [%a, %a]" Lmad.pp lmad P.pp lo P.pp hi
  | Last_use { var; at_binding } ->
      Fmt.pf ppf "last use of %s at %s" var at_binding
  | Rebased { var; mem } ->
      Fmt.pf ppf "%s rebased to %s with %a" var mem.block Ixfn.pp mem.ixfn
  | Dead_mem { names } ->
      Fmt.pf ppf "dead memory %a" Fmt.(list ~sep:comma string) names
  | Dead_after { names; binding } ->
      Fmt.pf ppf "%a dead after %s" Fmt.(list ~sep:comma string) names binding
  | Live_disjoint { earlier; later; movers } ->
      Fmt.pf ppf "live ranges %s before %s (movers %a)" earlier later
        Fmt.(list ~sep:comma string)
        movers
  | Dies_each_iter { block; loop_binding } ->
      Fmt.pf ppf "%s dies within each iteration of %s" block loop_binding
  | Sole_occupant { block; ixfn } ->
      Fmt.pf ppf "sole occupant of %s is %a" block Ixfn.pp ixfn
  | Grouped { mem; wits; arr } ->
      Fmt.pf ppf "existential group [%s%a; %s]" mem
        Fmt.(list ~sep:nop (fmt "; %s"))
        wits arr
  | Footprint_fits { block; arr } ->
      Fmt.pf ppf "footprint of %s fits its block %s" arr block
  | Dominance { binding } ->
      Fmt.pf ppf "definition of %s dominates its uses" binding
  | Unreferenced { name } -> Fmt.pf ppf "zero references to %s" name
  | Dies_in_arm { block; if_binding; arm } ->
      Fmt.pf ppf "%s dies within the %s arm of if %s" block
        (if arm then "true" else "false")
        if_binding
  | Packed_disjoint { arena; a; a_off; a_size; b; b_off; b_size } ->
      Fmt.pf ppf
        "placements %s at [%a, %a+%a) and %s at [%a, %a+%a) disjoint in \
         arena %s"
        a P.pp a_off P.pp a_off P.pp a_size b P.pp b_off P.pp b_off P.pp
        b_size arena
  | Fits_in_arena { arena; member; off; size; extent } ->
      Fmt.pf ppf "%s at offset %a of size %a fits arena %s of extent %a"
        member P.pp off P.pp size arena P.pp extent
  | Hole_disjoint { arena; a; a_off; a_size; b; b_off; b_size; iter } -> (
      match iter with
      | Some loop ->
          Fmt.pf ppf
            "hole: %s at [%a, %a+%a) of arena %s re-occupied across \
             iterations of %s"
            a P.pp a_off P.pp a_off P.pp a_size arena loop
      | None ->
          Fmt.pf ppf
            "hole: %s at [%a, %a+%a) and %s at [%a, %a+%a) share arena %s \
             with disjoint live ranges"
            a P.pp a_off P.pp a_off P.pp a_size b P.pp b_off P.pp b_off P.pp
            b_size arena)

let claim_kind = function
  | Nonoverlap _ -> "nonoverlap"
  | Size_ge _ -> "size-ge"
  | Bounds_in _ -> "bounds-in"
  | Last_use _ -> "last-use"
  | Rebased _ -> "rebased"
  | Dead_mem _ -> "dead-mem"
  | Dead_after _ -> "dead-after"
  | Live_disjoint _ -> "live-disjoint"
  | Dies_each_iter _ -> "dies-each-iter"
  | Sole_occupant _ -> "sole-occupant"
  | Grouped _ -> "grouped"
  | Footprint_fits _ -> "footprint-fits"
  | Dominance _ -> "dominance"
  | Unreferenced _ -> "unreferenced"
  | Dies_in_arm _ -> "dies-in-arm"
  | Packed_disjoint _ -> "packed-disjoint"
  | Fits_in_arena _ -> "fits-in-arena"
  | Hole_disjoint _ -> "hole-disjoint"

(* ---------------------------------------------------------------- *)
(* Verdicts and reports                                              *)
(* ---------------------------------------------------------------- *)

type verdict = Proved | Concretized of int list | Failed of string
type checked = { obl : obligation; verdict : verdict; detail : string }

type report = {
  pass : string;
  emitted : int;
  proved : int;
  concretized : int;
  failed : int;
  checked : checked list;
}

let ok r = r.failed = 0

let failures r =
  List.filter (fun c -> match c.verdict with Failed _ -> true | _ -> false)
    r.checked

let pp_verdict ppf = function
  | Proved -> Fmt.string ppf "proved"
  | Concretized [] -> Fmt.string ppf "undecided"
  | Concretized sizes ->
      Fmt.pf ppf "validated dynamically at sizes %a"
        Fmt.(list ~sep:comma int)
        sizes
  | Failed w -> Fmt.pf ppf "FAILED: %s" w

let pp_checked ppf c =
  Fmt.pf ppf "#%d [%s] %a: %a - %a" c.obl.o_id (claim_kind c.obl.o_claim)
    pp_rewrite c.obl.o_rewrite pp_verdict c.verdict Fmt.text c.detail

let pp_report ppf r =
  Report.section ~title:(Fmt.str "memcert %s" r.pass) ppf
    [
      ("obligations emitted", string_of_int r.emitted);
      ("proved", string_of_int r.proved);
      ("concretized", string_of_int r.concretized);
      ("failed", string_of_int r.failed);
    ];
  let fails = failures r in
  if fails <> [] then Fmt.pf ppf "@,%a" (Report.items ~bullet:"-" pp_checked) fails

(* ---------------------------------------------------------------- *)
(* Independent program scans                                         *)
(* ---------------------------------------------------------------- *)

(* i64 scalar definitions, rebuilt here from scratch (same shape as the
   passes' tables, but re-derived so a table bug there cannot leak into
   the check). *)
let atom_poly = function
  | Int c -> Some (P.const c)
  | Var v -> Some (P.var v)
  | _ -> None

let scalar_def (s : stm) : (string * P.t) option =
  match (s.pat, s.exp) with
  | [ pe ], EIdx p when pe.pt = TScalar I64 -> Some (pe.pv, p)
  | [ pe ], EAtom (Int c) when pe.pt = TScalar I64 -> Some (pe.pv, P.const c)
  | [ pe ], EAtom (Var v) when pe.pt = TScalar I64 -> Some (pe.pv, P.var v)
  | [ pe ], EBin (op, a, b) when pe.pt = TScalar I64 -> (
      match (atom_poly a, atom_poly b, op) with
      | Some pa, Some pb, Add -> Some (pe.pv, P.add pa pb)
      | Some pa, Some pb, Sub -> Some (pe.pv, P.sub pa pb)
      | Some pa, Some pb, Mul -> Some (pe.pv, P.mul pa pb)
      | _ -> None)
  | _ -> None

let scalar_table (p : prog) : P.t P.SM.t =
  List.fold_left
    (fun acc s ->
      match scalar_def s with Some (v, d) -> P.SM.add v d acc | None -> acc)
    P.SM.empty
    (all_stms_block p.body)

let resolve scal p = try P.subst_fixpoint scal p with Failure _ -> p
let resolve_lmad scal l = try Lmad.subst_fixpoint scal l with Failure _ -> l

let memory_lmad ixfn =
  match List.rev (Ixfn.chain ixfn) with
  | l :: _ -> l
  | [] ->
      Fault.internal ~where:"Certify.memory_lmad" "empty index-function chain"

(* Every pattern element of the program, including loop-carried
   parameters (which the short-circuiting pass rebases too). *)
let all_pat_elems (p : prog) : pat_elem list =
  let acc = ref (List.rev p.params) in
  List.iter
    (fun s ->
      List.iter (fun pe -> acc := pe :: !acc) s.pat;
      match s.exp with
      | ELoop { params; _ } ->
          List.iter (fun (pe, _) -> acc := pe :: !acc) params
      | _ -> ())
    (all_stms_block p.body);
  List.rev !acc

let find_pat_elem (p : prog) v =
  List.find_opt (fun pe -> pe.pv = v) (all_pat_elems p)

let find_stm (p : prog) binding =
  List.find_opt
    (fun s -> List.exists (fun pe -> pe.pv = binding) s.pat)
    (all_stms_block p.body)

(* The enclosing block and statement index of the binding. *)
let rec find_in_block (b : block) binding : (block * int) option =
  let rec go i = function
    | [] -> None
    | s :: rest -> (
        if List.exists (fun pe -> pe.pv = binding) s.pat then Some (b, i)
        else
          let sub =
            match s.exp with
            | EMap { body; _ } | ELoop { body; _ } -> find_in_block body binding
            | EIf { tb; fb; _ } -> (
                match find_in_block tb binding with
                | Some r -> Some r
                | None -> find_in_block fb binding)
            | _ -> None
          in
          match sub with Some r -> Some r | None -> go (i + 1) rest)
  in
  go 0 b.stms

(* The chain of (enclosing block, statement index) pairs from the
   program body down to the statement binding [binding]. *)
let rec find_path (b : block) binding : (block * int) list option =
  let rec go i = function
    | [] -> None
    | s :: rest -> (
        if List.exists (fun pe -> pe.pv = binding) s.pat then Some [ (b, i) ]
        else
          let sub =
            match s.exp with
            | EMap { body; _ } | ELoop { body; _ } -> find_path body binding
            | EIf { tb; fb; _ } -> (
                match find_path tb binding with
                | Some r -> Some r
                | None -> find_path fb binding)
            | _ -> None
          in
          match sub with
          | Some r -> Some ((b, i) :: r)
          | None -> go (i + 1) rest)
  in
  go 0 b.stms

let alloc_size (p : prog) block : P.t option =
  List.find_map
    (fun s ->
      match (s.pat, s.exp) with
      | [ pe ], EAlloc sz when pe.pv = block -> Some sz
      | _ -> None)
    (all_stms_block p.body)

let annots_into (p : prog) block : (string * mem_info) list =
  List.filter_map
    (fun pe ->
      match pe.pmem with
      | Some m when m.block = block -> Some (pe.pv, m)
      | _ -> None)
    (all_pat_elems p)

(* Does any annotation mention [name] (as its block or inside its index
   function)? *)
let annot_mentions (p : prog) name =
  List.exists
    (fun pe ->
      match pe.pmem with
      | Some m -> m.block = name || List.mem name (Ixfn.vars m.ixfn)
      | None -> false)
    (all_pat_elems p)

(* Occurrences of [name] in expression position that are not
   loop-carried plumbing: allowed are a TMem parameter's init atom,
   the body-result atom feeding a TMem parameter position, and an
   arm-result atom feeding a TMem binder of an [if] (the conditional
   forwards the block's identity exactly like a loop's mem
   position). *)
let nonstructural_occurrence (p : prog) name : bool =
  let rec go_block ?(tmem_res = []) (b : block) =
    List.exists go_stm b.stms
    || List.exists
         (fun (i, a) ->
           match a with
           | Var v when v = name -> not (List.mem i tmem_res)
           | _ -> false)
         (List.mapi (fun i a -> (i, a)) b.res)
  and go_stm s =
    match s.exp with
    | ELoop { params; bound; body; _ } ->
        let tmem_res =
          List.mapi (fun i (pe, _) -> (i, pe.pt = TMem)) params
          |> List.filter_map (fun (i, is_mem) ->
                 if is_mem then Some i else None)
        in
        List.exists
          (fun (pe, a) ->
            match a with Var v when v = name -> pe.pt <> TMem | _ -> false)
          params
        || SS.mem name (fv_idx bound)
        || go_block ~tmem_res body
    | EMap { nest; body } ->
        List.exists (fun (_, n) -> SS.mem name (fv_idx n)) nest
        || go_block body
    | EIf { cond; tb; fb } ->
        let tmem_res =
          List.mapi (fun i (q : pat_elem) -> (i, q.pt = TMem)) s.pat
          |> List.filter_map (fun (i, is_mem) ->
                 if is_mem then Some i else None)
        in
        SS.mem name (fv_atom cond)
        || go_block ~tmem_res tb
        || go_block ~tmem_res fb
    | e -> SS.mem name (fv_exp e)
  in
  go_block p.body

(* Expression-position occurrences of a memory block inside a block
   (annotations do not count: arrays living in the block are fine). *)
let exp_occurrence_in (b : block) name : bool =
  List.exists
    (fun s ->
      match s.exp with
      | ELoop { params; bound; _ } ->
          List.exists
            (fun (_, a) -> match a with Var v -> v = name | _ -> false)
            params
          || SS.mem name (fv_idx bound)
      | EMap { nest; _ } ->
          List.exists (fun (_, n) -> SS.mem name (fv_idx n)) nest
      | EIf { cond; _ } -> SS.mem name (fv_atom cond)
      | e -> SS.mem name (fv_exp e))
    (all_stms_block b)
  ||
  let rec res_occ (b : block) =
    List.exists (function Var v -> v = name | _ -> false) b.res
    || List.exists
         (fun s ->
           match s.exp with
           | EMap { body; _ } | ELoop { body; _ } -> res_occ body
           | EIf { tb; fb; _ } -> res_occ tb || res_occ fb
           | _ -> false)
         b.stms
  in
  res_occ b

(* ---------------------------------------------------------------- *)
(* Concretization                                                    *)
(* ---------------------------------------------------------------- *)

(* Seed sizes for the concretizer: small, distinct, and co-prime, so
   aliasing accidents at one size rarely repeat at the next. *)
let seeds = [ 2; 3; 5; 7 ]

(* Build a total assignment consistent with the recorded context: a
   variable with a recorded equality takes its right-hand side's value;
   a ranged variable is the seed clamped into its (evaluated) bounds;
   anything else is the seed itself.  The [admissible] flag is cleared
   when a range is discovered empty, in which case nothing may be
   concluded from this assignment. *)
let valuation (ctx : Pr.t) (seed : int) : (string -> int) * bool ref =
  let eqs = Hashtbl.create 16 and bnds = Hashtbl.create 16 in
  List.iter (fun (v, p) -> Hashtbl.replace eqs v p) (Pr.equalities ctx);
  List.iter (fun (v, lo, hi) -> Hashtbl.replace bnds v (lo, hi))
    (Pr.var_bounds ctx);
  let memo = Hashtbl.create 16 in
  let admissible = ref true in
  let rec env v =
    match Hashtbl.find_opt memo v with
    | Some x -> x
    | None ->
        Hashtbl.replace memo v seed (* provisional: breaks cycles *);
        let x =
          match Hashtbl.find_opt eqs v with
          | Some rhs -> P.eval env rhs
          | None -> (
              match Hashtbl.find_opt bnds v with
              | None -> seed
              | Some (lo, hi) ->
                  let lo_v = Option.map (P.eval env) lo in
                  let hi_v = Option.map (P.eval env) hi in
                  (match (lo_v, hi_v) with
                  | Some l, Some h when l > h -> admissible := false
                  | _ -> ());
                  let x = seed in
                  let x = match lo_v with Some l -> max l x | None -> x in
                  let x = match hi_v with Some h -> min h x | None -> x in
                  x)
        in
        Hashtbl.replace memo v x;
        x
  in
  (env, admissible)

(* Enumeration guard: refsets whose concrete point count exceeds this
   are not enumerated (the seed is skipped, not failed). *)
let max_points = 20_000

type concrete_outcome = CViolated of int * string | CValidated of int list

(* Run [eval] (true = claim holds, false = violated with the given
   witness) under every admissible seed assignment. *)
let concretely (ctx : Pr.t)
    (eval : (string -> int) -> [ `Holds | `Violated of string | `Skip ]) :
    concrete_outcome =
  let rec go validated = function
    | [] -> CValidated (List.rev validated)
    | seed :: rest -> (
        let env, admissible = valuation ctx seed in
        match (try eval env with _ -> `Skip) with
        | _ when not !admissible -> go validated rest
        | `Holds -> go (seed :: validated) rest
        | `Violated w -> CViolated (seed, w)
        | `Skip -> go validated rest)
  in
  go [] seeds

(* ---------------------------------------------------------------- *)
(* Per-claim checking                                                *)
(* ---------------------------------------------------------------- *)

let concrete_verdict = function
  | CViolated (seed, w) -> (Failed w, Fmt.str "refuted at sizes = %d" seed)
  | CValidated [] ->
      (Concretized [], "undecided - no admissible concrete instance")
  | CValidated sizes ->
      ( Concretized sizes,
        Fmt.str "undecided symbolically; validated dynamically at sizes %a"
          Fmt.(list ~sep:comma int)
          sizes )

let check_nonoverlap ctx w u =
  if Refset.disjoint ~depth:3 ctx w u then
    (Proved, "write and use sets re-proved disjoint")
  else
    concrete_verdict
      (concretely ctx (fun env ->
           match (Refset.concretize env w, Refset.concretize env u) with
           | Some ws, Some us ->
               let card =
                 List.fold_left (fun a c -> a + Lmad.concrete_card c) 0 ws
                 + List.fold_left (fun a c -> a + Lmad.concrete_card c) 0 us
               in
               if card > max_points then `Skip
               else
                 let wset =
                   IS.of_list (List.concat_map Lmad.concrete_points ws)
                 in
                 let hit =
                   List.concat_map Lmad.concrete_points us
                   |> List.find_opt (fun o -> IS.mem o wset)
                 in
                 (match hit with
                 | Some o ->
                     `Violated
                       (Fmt.str "offset %d is both written and used" o)
                 | None -> `Holds)
           | _ -> `Skip (* Top has no finite enumeration *)))

let check_size_ge ctx larger smaller =
  if Pr.prove_ge ctx larger smaller then
    (Proved, Fmt.str "re-proved %a >= %a" P.pp larger P.pp smaller)
  else
    concrete_verdict
      (concretely ctx (fun env ->
           let lv = P.eval env larger and sv = P.eval env smaller in
           if lv >= sv then `Holds
           else
             `Violated
               (Fmt.str "%a = %d < %a = %d" P.pp larger lv P.pp smaller sv)))

let check_bounds_in ctx lmad lo hi =
  let concrete () =
    concrete_verdict
      (concretely ctx (fun env ->
           let c = Lmad.concretize env lmad in
           let lo_v = P.eval env lo and hi_v = P.eval env hi in
           match Lmad.concrete_extrema c with
           | None -> `Holds (* empty set: trivially in bounds *)
           | Some (mn, mx) ->
               if mn < lo_v then
                 `Violated (Fmt.str "minimum offset %d < %d" mn lo_v)
               else if mx > hi_v then
                 `Violated (Fmt.str "maximum offset %d > %d" mx hi_v)
               else `Holds))
  in
  match Lmad.bounds ctx lmad with
  | None -> concrete ()
  | Some (mn, mx) -> (
      match
        ( Pr.check_in_range ctx mn ~lo ~hi,
          Pr.check_in_range ctx mx ~lo ~hi )
      with
      | Pr.In_range, Pr.In_range ->
          (Proved, Fmt.str "extrema [%a, %a] re-proved in range" P.pp mn P.pp mx)
      | Pr.Out_of_range, _ | _, Pr.Out_of_range ->
          ( Failed
              (Fmt.str "extrema [%a, %a] provably outside [%a, %a]" P.pp mn
                 P.pp mx P.pp lo P.pp hi),
            "footprint proved out of bounds" )
      | _ -> concrete ())

(* Packing placements.  Independence from the pass: the member's size
   and the arena's extent are re-derived from the post program's
   allocations (never taken from the claim), so the only trusted
   quantity is the placement offset itself - and a forged offset is
   refuted numerically, symbolically or by concretization witness. *)
let check_fits_in_arena post post_scal ctx ~arena ~member ~off =
  match (alloc_size post arena, alloc_size post member) with
  | None, _ ->
      ( Failed (Fmt.str "arena %s is not allocated in the post program" arena),
        "structural" )
  | _, None ->
      ( Failed
          (Fmt.str "member %s is not allocated in the post program" member),
        "structural" )
  | Some ext, Some msz ->
      let ext = resolve post_scal ext and msz = resolve post_scal msz in
      let endp = P.add off msz in
      if Pr.prove_ge ctx off P.zero && Pr.prove_ge ctx ext endp then
        ( Proved,
          Fmt.str "re-proved 0 <= %a and %a <= %a" P.pp off P.pp endp P.pp ext
        )
      else
        concrete_verdict
          (concretely ctx (fun env ->
               let o = P.eval env off
               and e = P.eval env endp
               and x = P.eval env ext in
               if o < 0 then `Violated (Fmt.str "offset %a = %d < 0" P.pp off o)
               else if e > x then
                 `Violated
                   (Fmt.str "placement end %d exceeds arena extent %d" e x)
               else `Holds))

let check_packed_disjoint post post_scal ctx ~a ~a_off ~b ~b_off =
  match (alloc_size post a, alloc_size post b) with
  | None, _ ->
      (Failed (Fmt.str "member %s is not allocated in the post program" a),
       "structural")
  | _, None ->
      (Failed (Fmt.str "member %s is not allocated in the post program" b),
       "structural")
  | Some a_size, Some b_size ->
      let a_size = resolve post_scal a_size
      and b_size = resolve post_scal b_size in
      let a_end = P.add a_off a_size and b_end = P.add b_off b_size in
      if Pr.prove_ge ctx b_off a_end || Pr.prove_ge ctx a_off b_end then
        (Proved, "placements re-proved address-disjoint")
      else
        concrete_verdict
          (concretely ctx (fun env ->
               let ao = P.eval env a_off and ae = P.eval env a_end in
               let bo = P.eval env b_off and be = P.eval env b_end in
               if ae <= ao || be <= bo then `Holds (* an empty placement *)
               else if ao < be && bo < ae then
                 `Violated
                   (Fmt.str "offset %d lies in both placements" (max ao bo))
               else `Holds))

let check_last_use pre var at_binding =
  match find_stm pre at_binding with
  | None ->
      ( Failed (Fmt.str "no statement binds %s in the pre-pass program"
            at_binding),
        "structural" )
  | Some s ->
      if List.mem var s.last_uses then
        (Proved, "last use re-derived on the pre-pass program")
      else
        ( Failed
            (Fmt.str "%s is not lastly used at %s (last uses there: %a)" var
               at_binding
               Fmt.(list ~sep:comma string)
               s.last_uses),
          "structural" )

let check_rebased post post_scal ctx ~final var (mem : mem_info) =
  if not final then
    (Proved, "superseded by a later rebase of the same binding")
  else
    match find_pat_elem post var with
    | None ->
        (Failed (Fmt.str "%s is not bound in the post-pass program" var),
         "structural")
    | Some pe -> (
        match pe.pmem with
        | None ->
            (Failed (Fmt.str "%s carries no memory annotation" var),
             "structural")
        | Some m when m.block <> mem.block ->
            ( Failed
                (Fmt.str "%s is annotated into %s, certificate says %s" var
                   m.block mem.block),
              "structural" )
        | Some m
          when not
                 (Ixfn.equal m.ixfn mem.ixfn
                 || Ixfn.equal
                      (Ixfn.subst_fixpoint post_scal m.ixfn)
                      (Ixfn.subst_fixpoint post_scal mem.ixfn)) ->
            ( Failed
                (Fmt.str "index function of %s differs from the certificate"
                   var),
              "structural" )
        | Some _ -> (
            (* The annotation matches; additionally re-derive that its
               footprint fits the destination block, an obligation the
               emitting pass never discharges itself. *)
            match alloc_size post mem.block with
            | None -> (Proved, "structural match (no static allocation size)")
            | Some size -> (
                let l = resolve_lmad post_scal (memory_lmad mem.ixfn) in
                let size = resolve post_scal size in
                let last = P.sub size P.one in
                let validate () =
                  (* Conservative: a concrete out-of-bounds here is not a
                     refutation, because the recorded context may lack
                     ranges for enclosing loop indices; only successful
                     validations are reported. *)
                  let sizes =
                    List.filter
                      (fun seed ->
                        let env, admissible = valuation ctx seed in
                        try
                          let c = Lmad.concretize env l in
                          let sz = P.eval env size in
                          !admissible
                          &&
                          match Lmad.concrete_extrema c with
                          | None -> true
                          | Some (mn, mx) -> mn >= 0 && mx < sz
                        with _ -> false)
                      seeds
                  in
                  if sizes = [] then
                    (Proved, "structural match; footprint undecided")
                  else
                    ( Concretized sizes,
                      Fmt.str
                        "structural match; footprint validated at sizes %a"
                        Fmt.(list ~sep:comma int)
                        sizes )
                in
                match Lmad.bounds ctx l with
                | None -> validate ()
                | Some (mn, mx) -> (
                    match
                      ( Pr.check_in_range ctx mn ~lo:P.zero ~hi:last,
                        Pr.check_in_range ctx mx ~lo:P.zero ~hi:last )
                    with
                    | Pr.In_range, Pr.In_range ->
                        (Proved, "structural match; footprint re-proved")
                    | Pr.Out_of_range, _ | _, Pr.Out_of_range ->
                        ( Failed
                            (Fmt.str
                               "footprint [%a, %a] provably exceeds block %s \
                                of size %a"
                               P.pp mn P.pp mx mem.block P.pp size),
                          "footprint" )
                    | _ -> validate ()))))

let check_dead_mem pre post names =
  let bad =
    List.find_map
      (fun name ->
        if annot_mentions pre name then
          Some (Fmt.str "%s is still referenced by an annotation" name)
        else if nonstructural_occurrence pre name then
          Some (Fmt.str "%s has a non-structural use in the pre program" name)
        else if
          List.exists (fun pe -> pe.pv = name) (all_pat_elems post)
          || SS.mem name (fv_block post.body)
        then Some (Fmt.str "%s survives in the post-pass program" name)
        else None)
      names
  in
  match bad with
  | Some w -> (Failed w, "structural")
  | None -> (Proved, "dead chain re-derived on both programs")

let check_dead_after pre names binding =
  match find_in_block pre.body binding with
  | None ->
      (Failed (Fmt.str "no statement binds %s" binding), "structural")
  | Some (blk, i) -> (
      let s = List.nth blk.stms i in
      let nm = SS.of_list names in
      let body_bad =
        match s.exp with
        | ELoop { body; _ } ->
            not (SS.disjoint nm (fv_block body))
        | _ -> false
      in
      let offender_after =
        List.filteri (fun j _ -> j > i) blk.stms
        |> List.find_opt (fun s' -> not (SS.disjoint nm (fv_stm s')))
      in
      let res_bad =
        List.exists
          (function Var v -> SS.mem v nm | _ -> false)
          blk.res
      in
      if body_bad then
        ( Failed
            (Fmt.str "%a referenced inside the loop body"
               Fmt.(list ~sep:comma string)
               names),
          "structural" )
      else
        match offender_after with
        | Some s' ->
            ( Failed
                (Fmt.str "%a referenced after %s (at the binding of %a)"
                   Fmt.(list ~sep:comma string)
                   names binding
                   Fmt.(list ~sep:comma string)
                   (List.map (fun pe -> pe.pv) s'.pat)),
              "structural" )
        | None ->
            if res_bad then
              ( Failed
                  (Fmt.str "%a escape through the block result"
                     Fmt.(list ~sep:comma string)
                     names),
                "structural" )
            else (Proved, "liveness re-derived: dead after the loop"))

(* Live ranges by statement index inside [blk]: a statement belongs to
   a range when its free variables (annotations included) intersect the
   range's name set. *)
let live_range blk name_set =
  let last = ref None and first = ref None in
  List.iteri
    (fun j s ->
      if not (SS.disjoint name_set (fv_stm s)) then begin
        if !first = None then first := Some j;
        last := Some j
      end)
    blk.stms;
  (!first, !last)

(* A coalesce [L -> E] is justified when, in the pre-pass program, the
   last sibling statement referencing E's range precedes the first one
   referencing L's.  The ranges are re-derived from scratch: E's names
   are the block itself, every array annotated into it, and everything
   previous coalesces merged into it (the accumulator mirrors the
   pass's monotone [e_last], but is recomputed here); L's names are the
   block, its annotated arrays, and the moved variables recorded in the
   obligation.  The comparison happens in the innermost block whose
   top-level statements reference both ranges - allocation statements
   are deliberately not used as anchors, because cross-scope hoisting
   moves them before coalescing runs. *)
let check_live_disjoint ~pre movers_acc earlier later movers =
  let acc_of b =
    Option.value ~default:SS.empty (Hashtbl.find_opt movers_acc b)
  in
  let occupants blk =
    SS.of_list (List.map fst (annots_into pre blk))
  in
  let names_e = SS.add earlier (SS.union (occupants earlier) (acc_of earlier)) in
  let names_l =
    SS.add later
      (SS.union (occupants later) (SS.of_list movers))
  in
  let finish verdict detail =
    Hashtbl.replace movers_acc earlier (SS.union (acc_of earlier) names_l);
    (verdict, detail)
  in
  let hits names (b : block) =
    List.exists (fun s -> not (SS.disjoint names (fv_stm s))) b.stms
  in
  let rec find_common (b : block) : block option =
    let deeper =
      List.fold_left
        (fun acc s ->
          match acc with
          | Some _ -> acc
          | None -> (
              match s.exp with
              | EMap { body; _ } | ELoop { body; _ } -> find_common body
              | EIf { tb; fb; _ } -> (
                  match find_common tb with
                  | Some r -> Some r
                  | None -> find_common fb)
              | _ -> None))
        None b.stms
    in
    match deeper with
    | Some r -> Some r
    | None -> if hits names_e b && hits names_l b then Some b else None
  in
  match find_common pre.body with
  | None ->
      finish Proved
        "ranges never co-referenced in the pre program (or the block was \
         introduced by a prior rewrite of the same pass)"
  | Some blk -> (
      let _, le = live_range blk names_e in
      let fl, _ = live_range blk names_l in
      let escapes =
        List.exists
          (function Var v -> SS.mem v names_l | _ -> false)
          blk.res
      in
      if escapes then
        finish
          (Failed (Fmt.str "block %s escapes its enclosing block" later))
          "structural"
      else
        match (le, fl) with
        | Some le, Some fl when le >= fl ->
            finish
              (Failed
                 (Fmt.str
                    "live ranges overlap: %s last referenced at statement \
                     %d, %s first referenced at %d"
                    earlier le later fl))
              "structural"
        | _ ->
            finish Proved "live ranges re-derived disjoint on the pre program")

let check_dies_each_iter pre post block loop_binding =
  match find_stm pre loop_binding with
  | None ->
      (Failed (Fmt.str "no loop binds %s in the pre program" loop_binding),
       "structural")
  | Some s -> (
      match s.exp with
      | ELoop { body; _ } ->
          (* Anywhere within the body subtree: a block hoisted out of
             two nested loops yields one obligation per loop, and for
             the outer one the pre-pass allocation is still inside the
             inner body. *)
          let allocated_inside = find_in_block body block <> None in
          if not allocated_inside then
            ( Failed
                (Fmt.str "%s is not allocated within the body of %s" block
                   loop_binding),
              "structural" )
          else if exp_occurrence_in body block && annot_mentions pre block then
            (* A structural occurrence alone is fine when nothing is
               annotated into the block anywhere: chain removal orphans
               such plumbing earlier in the same pass, and hoisting an
               allocation whose contents are never referenced cannot
               change behaviour. *)
            ( Failed
                (Fmt.str
                   "%s occurs in expression position inside the loop body \
                    (contents may survive an iteration)"
                   block),
              "structural" )
          else (
            (* post side: the allocation must have left the body *)
            match find_stm post loop_binding with
            | Some { exp = ELoop { body = post_body; _ }; _ } ->
                if find_in_block post_body block <> None then
                  ( Failed
                      (Fmt.str "%s is still allocated inside the loop body"
                         block),
                    "structural" )
                else if find_in_block post.body block = None then
                  ( Failed
                      (Fmt.str "%s has no allocation in the post program"
                         block),
                    "structural" )
                else
                  (Proved, "per-iteration death re-derived; allocation hoisted")
            | _ ->
                ( Failed
                    (Fmt.str "loop %s not found in the post program"
                       loop_binding),
                  "structural" ))
      | _ ->
          (Failed (Fmt.str "%s does not bind a loop" loop_binding),
           "structural"))

(* ---------------------------------------------------------------- *)
(* Lifetime holes                                                    *)
(* ---------------------------------------------------------------- *)

(* Names aliasing anything in [seed] through structural plumbing
   inside [b]: loop-carried parameters whose initializer is an alias,
   the loop/if binders fed an alias through a result position, and
   plain copies.  Grown to a fixpoint; over-approximation is safe
   (a larger closure can only make the escape check stricter). *)
let carried_closure (b : block) (seed : SS.t) : SS.t =
  let cl = ref seed and changed = ref true in
  let add v =
    if not (SS.mem v !cl) then begin
      cl := SS.add v !cl;
      changed := true
    end
  in
  let feed (pat : pat_elem list) (res : atom list) =
    List.iteri
      (fun i a ->
        match a with
        | Var v when SS.mem v !cl -> (
            match List.nth_opt pat i with Some pe -> add pe.pv | None -> ())
        | _ -> ())
      res
  in
  let rec go_stm (s : stm) =
    match s.exp with
    | ELoop { params; body; _ } ->
        List.iter
          (fun ((pe : pat_elem), init) ->
            match init with
            | Var v when SS.mem v !cl -> add pe.pv
            | _ -> ())
          params;
        go_block body;
        feed s.pat body.res
    | EIf { tb; fb; _ } ->
        go_block tb;
        go_block fb;
        feed s.pat tb.res;
        feed s.pat fb.res
    | EMap { body; _ } -> go_block body
    | EAtom (Var v) when SS.mem v !cl ->
        List.iter (fun (pe : pat_elem) -> add pe.pv) s.pat
    | _ -> ()
  and go_block (blk : block) = List.iter go_stm blk.stms in
  while !changed do
    changed := false;
    go_block b
  done;
  !cl

(* The member's name set for liveness purposes: the block, its carried
   aliases, and every array annotated into any of them. *)
let hole_names (p : prog) (blk : block) member =
  let cl = carried_closure blk (SS.singleton member) in
  let cl =
    SS.fold
      (fun n acc ->
        List.fold_left
          (fun acc (arr, _) -> SS.add arr acc)
          acc (annots_into p n))
      cl cl
  in
  carried_closure blk cl

(* [iter = Some loop]: the member's arena slot is re-occupied by the
   logically fresh per-iteration instances of the same allocation.
   Sound when, in the pre program, nothing aliasing the member (nor
   any array living in it) flows to the next iteration - and the only
   such channel is the loop body's result.  Post side: the member's
   annotations are gone (rebased into the arena), and the arena is
   allocated outside the loop, so the slot really does survive the
   iteration boundary. *)
let check_hole_iter pre post ~arena ~member ~loop_binding =
  match find_stm pre loop_binding with
  | None ->
      (Failed (Fmt.str "no loop binds %s in the pre program" loop_binding),
       "structural")
  | Some s -> (
      match s.exp with
      | ELoop { body; _ } ->
          if find_in_block body member = None then
            ( Failed
                (Fmt.str "%s is not allocated within the body of %s" member
                   loop_binding),
              "structural" )
          else
            let cl = hole_names pre body member in
            let escaping =
              List.filter_map
                (function Var v when SS.mem v cl -> Some v | _ -> None)
                body.res
            in
            if escaping <> [] then
              ( Failed
                  (Fmt.str
                     "%a escape through the body result of %s: contents of \
                      %s may survive an iteration"
                     Fmt.(list ~sep:comma string)
                     escaping loop_binding member),
                "structural" )
            else if annot_mentions post member then
              ( Failed
                  (Fmt.str
                     "%s is still annotated in the post program (not rebased \
                      into %s)"
                     member arena),
                "structural" )
            else (
              match find_stm post loop_binding with
              | Some { exp = ELoop { body = post_body; _ }; _ } ->
                  if find_in_block post_body arena <> None then
                    ( Failed
                        (Fmt.str
                           "arena %s is allocated inside the loop body (no \
                            hole across iterations)"
                           arena),
                      "structural" )
                  else if alloc_size post arena = None then
                    ( Failed
                        (Fmt.str "arena %s is not allocated in the post \
                                  program" arena),
                      "structural" )
                  else
                    ( Proved,
                      "per-iteration freshness re-derived; the slot re-use \
                       is a lifetime hole" )
              | _ ->
                  ( Failed
                      (Fmt.str "loop %s not found in the post program"
                         loop_binding),
                    "structural" ))
      | _ ->
          (Failed (Fmt.str "%s does not bind a loop" loop_binding),
           "structural"))

(* [iter = None]: two distinct members overlap in address space, so
   their live ranges must be disjoint.  Re-derivation: either the
   offset ranges are provably address-disjoint after all (sizes from
   the post program's allocations, as for packed-disjoint), or the
   live ranges - re-derived in the deepest pre-program block where the
   two members' paths diverge - are provably execution-disjoint.  A
   member bound deeper than the divergence block is confined to its
   enclosing statement (lexical scoping: nothing outside the subtree
   can name it), so its interval collapses to that statement's
   index. *)
let check_hole_pair pre post post_scal ctx ~a ~a_off ~b ~b_off =
  match (alloc_size post a, alloc_size post b) with
  | None, _ ->
      (Failed (Fmt.str "member %s is not allocated in the post program" a),
       "structural")
  | _, None ->
      (Failed (Fmt.str "member %s is not allocated in the post program" b),
       "structural")
  | Some a_size, Some b_size -> (
      let a_size = resolve post_scal a_size
      and b_size = resolve post_scal b_size in
      let a_end = P.add a_off a_size and b_end = P.add b_off b_size in
      if Pr.prove_ge ctx b_off a_end || Pr.prove_ge ctx a_off b_end then
        (Proved, "offset ranges re-proved address-disjoint (no hole)")
      else
        match (find_path pre.body a, find_path pre.body b) with
        | None, _ ->
            ( Failed
                (Fmt.str "member %s is not allocated in the pre program" a),
              "structural" )
        | _, None ->
            ( Failed
                (Fmt.str "member %s is not allocated in the pre program" b),
              "structural" )
        | Some pa, Some pb -> (
            (* walk to the divergence point *)
            let rec walk pa pb =
              match (pa, pb) with
              | (blk, ia) :: ra, (_, ib) :: rb ->
                  if ia <> ib || ra = [] || rb = [] then
                    Some (blk, (ia, ra = []), (ib, rb = []))
                  else walk ra rb
              | _ -> None
            in
            match walk pa pb with
            | None ->
                ( Failed (Fmt.str "%s and %s are the same binding" a b),
                  "structural" )
            | Some (blk, (ia, a_here), (ib, b_here)) -> (
                let n = List.length blk.stms in
                let interval member idx bound_here =
                  if not bound_here then (idx, idx)
                  else
                    let names = hole_names pre blk member in
                    let f, l = live_range blk names in
                    let escapes =
                      List.exists
                        (function Var v -> SS.mem v names | _ -> false)
                        blk.res
                    in
                    let last =
                      if escapes then n else Option.value l ~default:idx
                    in
                    (Option.value f ~default:idx, last)
                in
                let fa, la = interval a ia a_here
                and fb, lb = interval b ib b_here in
                if la < fb || lb < fa then
                  ( Proved,
                    Fmt.str
                      "live ranges re-derived disjoint: %s spans statements \
                       [%d, %d], %s spans [%d, %d]"
                      a fa la b fb lb )
                else
                  concrete_verdict
                    (concretely ctx (fun env ->
                         let ao = P.eval env a_off
                         and ae = P.eval env a_end in
                         let bo = P.eval env b_off
                         and be = P.eval env b_end in
                         if ae <= ao || be <= bo then `Holds
                         else if ao < be && bo < ae then
                           `Violated
                             (Fmt.str
                                "offset %d lies in both placements while \
                                 live ranges overlap (%s spans [%d, %d], %s \
                                 spans [%d, %d])"
                                (max ao bo) a fa la b fb lb)
                         else `Holds)))))

let check_hole_disjoint pre post post_scal ctx ~arena ~a ~a_off ~b ~b_off
    ~iter =
  match iter with
  | Some loop_binding -> check_hole_iter pre post ~arena ~member:a ~loop_binding
  | None -> check_hole_pair pre post post_scal ctx ~a ~a_off ~b ~b_off

let check_sole_occupant post post_scal block ixfn =
  let offender =
    List.find_opt
      (fun (_, m) ->
        not
          (Ixfn.equal m.ixfn ixfn
          || Ixfn.equal
               (Ixfn.subst_fixpoint post_scal m.ixfn)
               (Ixfn.subst_fixpoint post_scal ixfn)))
      (annots_into post block)
  in
  match offender with
  | Some (v, _) ->
      ( Failed
          (Fmt.str "%s occupies %s with a different index function" v block),
        "structural" )
  | None ->
      (Proved, "sole-occupancy re-derived over the post program's annotations")

(* An introduced existential group must appear in the post program as a
   contiguous [mem; witness...; array] run in the binding pattern, with
   the array annotated into its own group's memory and the arity of the
   branch results (or loop params/results) matching the pattern. *)
let check_grouped post mem wits arr =
  match find_stm post arr with
  | None ->
      ( Failed (Fmt.str "%s is not bound in the post-pass program" arr),
        "structural" )
  | Some s -> (
      let pats = Array.of_list s.pat in
      let n = Array.length pats in
      let expected = (mem :: wits) @ [ arr ] in
      let k = List.length expected in
      let i0 = ref (-1) in
      Array.iteri (fun i pe -> if pe.pv = mem && !i0 < 0 then i0 := i) pats;
      let run_matches =
        !i0 >= 0
        && !i0 + k <= n
        && List.for_all2
             (fun j name -> pats.(j).pv = name)
             (List.init k (fun j -> !i0 + j))
             expected
      in
      if not run_matches then
        ( Failed
            (Fmt.str "pattern of %s does not group [%a] contiguously" arr
               Fmt.(list ~sep:semi string)
               expected),
          "structural" )
      else if pats.(!i0).pt <> TMem then
        (Failed (Fmt.str "%s is not a memory binder" mem), "structural")
      else if
        List.exists
          (fun j -> pats.(j).pt <> TScalar I64)
          (List.init (k - 2) (fun j -> !i0 + 1 + j))
      then
        ( Failed (Fmt.str "a witness of %s is not an i64 scalar" arr),
          "structural" )
      else
        match pats.(!i0 + k - 1).pmem with
        | None ->
            ( Failed (Fmt.str "%s carries no memory annotation" arr),
              "structural" )
        | Some m when m.block <> mem ->
            ( Failed
                (Fmt.str "%s is annotated into %s, not its group's %s" arr
                   m.block mem),
              "structural" )
        | Some _ -> (
            match s.exp with
            | EIf { tb; fb; _ } ->
                if List.length tb.res = n && List.length fb.res = n then
                  (Proved, "grouping re-derived over the if's pattern and arms")
                else
                  ( Failed
                      (Fmt.str
                         "branch result arity differs from the pattern of %s"
                         arr),
                    "structural" )
            | ELoop { params; body; _ } ->
                if List.length params = n && List.length body.res = n then
                  ( Proved,
                    "grouping re-derived over the loop's pattern and params" )
                else
                  ( Failed
                      (Fmt.str
                         "loop param/result arity differs from the pattern of \
                          %s"
                         arr),
                    "structural" )
            | _ ->
                ( Failed (Fmt.str "%s is not bound by an if or a loop" arr),
                  "structural" )))

(* An introduced allocation is consistent with the index function it
   backs: everything is re-derived from the post program (the recorded
   block/array names only select where to look). *)
let check_footprint_fits post post_scal ctx block arr =
  match find_pat_elem post arr with
  | None ->
      ( Failed (Fmt.str "%s is not bound in the post-pass program" arr),
        "structural" )
  | Some pe -> (
      match pe.pmem with
      | None ->
          (Failed (Fmt.str "%s carries no memory annotation" arr), "structural")
      | Some m when m.block <> block ->
          ( Failed
              (Fmt.str "%s is annotated into %s, certificate says %s" arr
                 m.block block),
            "structural" )
      | Some m -> (
          match alloc_size post block with
          | None ->
              ( Failed
                  (Fmt.str "%s has no allocation in the post program" block),
                "structural" )
          | Some size ->
              let l = resolve_lmad post_scal (memory_lmad m.ixfn) in
              let size = resolve post_scal size in
              let last = P.sub size P.one in
              check_bounds_in ctx l P.zero last))

(* Dominance after hoisting: at the moved statement's post-pass
   position every free variable is already in scope, and nothing that
   executes before it references the moved binding. *)
let check_dominance post binding =
  let verdict = ref None in
  let found = ref false in
  let set v = if !verdict = None then verdict := Some v in
  let rec go_block scope (b : block) =
    List.fold_left
      (fun scope s ->
        if !found || !verdict <> None then scope
        else begin
          (if List.exists (fun pe -> pe.pv = binding) s.pat then begin
             found := true;
             let fv =
               List.fold_left
                 (fun a pe -> SS.remove pe.pv a)
                 (fv_stm s) s.pat
             in
             match SS.choose_opt (SS.diff fv scope) with
             | Some v ->
                 set
                   (Fmt.str "%s reads %s, which is not yet defined there"
                      binding v)
             | None -> ()
           end
           else begin
             if SS.mem binding (fv_stm s) then
               set
                 (Fmt.str
                    "%s is referenced (at the binding of %a) before it is \
                     defined"
                    binding
                    Fmt.(list ~sep:comma string)
                    (List.map (fun pe -> pe.pv) s.pat));
             match s.exp with
             | ELoop { params; var; body; _ } ->
                 let inner =
                   List.fold_left
                     (fun sc (pe, _) -> SS.add pe.pv sc)
                     (SS.add var scope) params
                 in
                 ignore (go_block inner body)
             | EMap { nest; body } ->
                 let inner =
                   List.fold_left
                     (fun sc (v, _) -> SS.add v sc)
                     scope nest
                 in
                 ignore (go_block inner body)
             | EIf { tb; fb; _ } ->
                 ignore (go_block scope tb);
                 ignore (go_block scope fb)
             | _ -> ()
           end);
          List.fold_left (fun sc pe -> SS.add pe.pv sc) scope s.pat
        end)
      scope b.stms
  in
  let scope0 =
    List.fold_left (fun sc pe -> SS.add pe.pv sc) SS.empty post.params
  in
  ignore (go_block scope0 post.body);
  match !verdict with
  | Some w -> (Failed w, "structural")
  | None ->
      if !found then
        (Proved, "def-before-use re-derived at the post-pass position")
      else
        ( Failed (Fmt.str "%s is not bound in the post-pass program" binding),
          "structural" )

(* Dead-code removal: the block had zero remaining references in the
   pre program - no annotation, no expression-position occurrence (even
   structural loop plumbing keeps an allocation alive) - and is gone
   from the post program. *)
let check_unreferenced pre post name =
  if annot_mentions pre name then
    ( Failed (Fmt.str "%s is still referenced by an annotation" name),
      "structural" )
  else if exp_occurrence_in pre.body name then
    ( Failed
        (Fmt.str "%s occurs in expression position in the pre program" name),
      "structural" )
  else if
    List.exists (fun pe -> pe.pv = name) (all_pat_elems post)
    || SS.mem name (fv_block post.body)
  then
    (Failed (Fmt.str "%s survives in the post-pass program" name), "structural")
  else (Proved, "zero references re-derived; allocation removed")

(* As [exp_occurrence_in], but specialized to the body of an [if] arm
   and tolerant of existential threading.  Two relaxations, each
   re-derived here independently of the optimizer's eligibility tests
   in {!Reuse}:

   - an occurrence of the block as the initializer of a loop-carried
     *mem* parameter merely hands its identity to the loop, and is
     accepted provided the loop's mem result binder in the same tuple
     position is itself clean within the arm;

   - the identity may leave the arm through the arm's result, at a
     TMem position of the conditional, provided the receiving binder
     has a *dead identity*: no array is ever annotated into it, every
     occurrence is structural plumbing (a loop's mem position or an
     [if]'s mem position), and every binder that plumbing forwards
     the identity into is transitively dead as well.  Nobody ever
     reads through such a chain, so the contents still die in the arm
     - this is exactly the situation the dead-chain rewrite removes
     and certifies separately.

   Every other occurrence (operand, non-mem initializer, live arm
   result) is an escape. *)
let arm_escape_occurrence (pre : prog) (ifstm : stm) (armblk : block) name :
    bool =
  (* binders the identity of [target] is structurally forwarded into,
     program-wide: loop mem params it initializes (and their result
     binders), loop result binders whose body-result position it
     feeds, and [if] binders whose arm-result position it feeds *)
  let forwarded_binders target =
    let acc = ref [] in
    let add v = acc := v :: !acc in
    List.iter
      (fun (s : stm) ->
        match s.exp with
        | ELoop { params; body; _ } ->
            List.iteri
              (fun j ((pe : pat_elem), a) ->
                match a with
                | Var v when v = target && pe.pt = TMem -> (
                    add pe.pv;
                    match List.nth_opt s.pat j with
                    | Some (q : pat_elem) -> add q.pv
                    | None -> ())
                | _ -> ())
              params;
            List.iteri
              (fun j a ->
                match (a, List.nth_opt params j) with
                | Var v, Some ((pe : pat_elem), _)
                  when v = target && pe.pt = TMem -> (
                    match List.nth_opt s.pat j with
                    | Some (q : pat_elem) -> add q.pv
                    | None -> ())
                | _ -> ())
              body.res
        | EIf { tb; fb; _ } ->
            List.iter
              (fun (b : block) ->
                List.iteri
                  (fun j a ->
                    match (a, List.nth_opt s.pat j) with
                    | Var v, Some (q : pat_elem)
                      when v = target && q.pt = TMem ->
                        add q.pv
                    | _ -> ())
                  b.res)
              [ tb; fb ]
        | _ -> ())
      (all_stms_block pre.body);
    !acc
  in
  let rec identity_dead seen target =
    SS.mem target seen
    ||
    let seen = SS.add target seen in
    (not (annot_mentions pre target))
    && (not (nonstructural_occurrence pre target))
    && List.for_all (identity_dead seen) (forwarded_binders target)
  in
  (* occurrences of [target] inside the arm: with [strict] every
     expression-position occurrence is an escape except an arm-result
     forward out of a TMem [if] position (collected into [out]);
     without it, loop-mem-init occurrences additionally yield the
     loop's result binder for the strict follow-up scan. *)
  let out = ref [] in
  let arm_occ ~strict target =
    let chain = ref [] in
    let rec stm_occ (s : stm) =
      match s.exp with
      | ELoop { params; bound; body; _ } ->
          let bad = ref (SS.mem target (fv_idx bound)) in
          List.iteri
            (fun j ((pe : pat_elem), a) ->
              match a with
              | Var v when v = target ->
                  if strict || pe.pt <> TMem then bad := true
                  else (
                    match List.nth_opt s.pat j with
                    | Some (q : pat_elem) -> chain := q.pv :: !chain
                    | None -> bad := true)
              | _ -> ())
            params;
          !bad || block_occ body
      | EMap { nest; body; _ } ->
          List.exists (fun (_, n) -> SS.mem target (fv_idx n)) nest
          || block_occ body
      | EIf { cond; tb; fb } ->
          SS.mem target (fv_atom cond) || block_occ tb || block_occ fb
      | e -> SS.mem target (fv_exp e)
    and block_occ ?(top = false) (b : block) =
      List.exists stm_occ b.stms
      || List.exists
           (fun (j, a) ->
             match a with
             | Var v when v = target ->
                 let forwards_out =
                   top
                   &&
                   match List.nth_opt ifstm.pat j with
                   | Some (q : pat_elem) when q.pt = TMem ->
                       out := q.pv :: !out;
                       true
                   | _ -> false
                 in
                 not forwards_out
             | _ -> false)
           (List.mapi (fun j a -> (j, a)) b.res)
    in
    (block_occ ~top:true armblk, !chain)
  in
  let esc, chain = arm_occ ~strict:false name in
  esc
  || List.exists (fun r -> fst (arm_occ ~strict:true r)) chain
  || not (List.for_all (identity_dead SS.empty) !out)

(* Arm-local death: in the pre program the block is allocated inside
   one arm of the conditional and nothing about it leaks out of that
   arm (in particular it is not part of the arm's existential result,
   and any loop-carried threading of it ends inside the arm); in the
   post program the allocation has left the arm. *)
let check_dies_in_arm pre post block if_binding arm =
  let arm_name = if arm then "true" else "false" in
  match find_stm pre if_binding with
  | None ->
      ( Failed (Fmt.str "no statement binds %s in the pre program" if_binding),
        "structural" )
  | Some s -> (
      match s.exp with
      | EIf { tb; fb; _ } -> (
          let armblk = if arm then tb else fb in
          if find_in_block armblk block = None then
            ( Failed
                (Fmt.str "%s is not allocated within the %s arm of %s" block
                   arm_name if_binding),
              "structural" )
          else if arm_escape_occurrence pre s armblk block then
            ( Failed
                (Fmt.str
                   "%s occurs in expression position inside the %s arm \
                    (contents escape the arm)"
                   block arm_name),
              "structural" )
          else
            match find_stm post if_binding with
            | Some { exp = EIf { tb = tb'; fb = fb'; _ }; _ } ->
                let armblk' = if arm then tb' else fb' in
                if find_in_block armblk' block <> None then
                  ( Failed
                      (Fmt.str "%s is still allocated inside the %s arm" block
                         arm_name),
                    "structural" )
                else if
                  find_in_block post.body block = None
                  && annot_mentions post block
                then
                  ( Failed
                      (Fmt.str
                         "%s has no allocation in the post program but is \
                          still referenced"
                         block),
                    "structural" )
                else
                  ( Proved,
                    "arm-local death re-derived; allocation lifted above the \
                     if" )
            | _ ->
                ( Failed
                    (Fmt.str "if %s not found in the post program" if_binding),
                  "structural" ))
      | _ ->
          ( Failed (Fmt.str "%s does not bind an if" if_binding),
            "structural" ))

(* ---------------------------------------------------------------- *)
(* The checker driver                                                *)
(* ---------------------------------------------------------------- *)

let check ~pass ~pre ~post obls =
  let pre = Ir.Clone.clone_prog pre in
  let post = Ir.Clone.clone_prog post in
  ignore (Lastuse.annotate pre);
  let post_scal = scalar_table post in
  (* A binding rebased more than once (later rounds of the pass) is
     structurally checked only against its final recorded state. *)
  let final_rebase = Hashtbl.create 16 in
  List.iter
    (fun o ->
      match o.o_claim with
      | Rebased { var; _ } -> Hashtbl.replace final_rebase var o.o_id
      | _ -> ())
    obls;
  let movers_acc = Hashtbl.create 8 in
  let checked =
    List.map
      (fun o ->
        let verdict, detail =
          match o.o_claim with
          | Nonoverlap { w; u } -> check_nonoverlap o.o_ctx w u
          | Size_ge { larger; smaller } ->
              check_size_ge o.o_ctx larger smaller
          | Bounds_in { lmad; lo; hi } -> check_bounds_in o.o_ctx lmad lo hi
          | Last_use { var; at_binding } -> check_last_use pre var at_binding
          | Rebased { var; mem } ->
              let final = Hashtbl.find_opt final_rebase var = Some o.o_id in
              check_rebased post post_scal o.o_ctx ~final var mem
          | Dead_mem { names } -> check_dead_mem pre post names
          | Dead_after { names; binding } -> check_dead_after pre names binding
          | Live_disjoint { earlier; later; movers } ->
              check_live_disjoint ~pre movers_acc earlier later movers
          | Dies_each_iter { block; loop_binding } ->
              check_dies_each_iter pre post block loop_binding
          | Sole_occupant { block; ixfn } ->
              check_sole_occupant post post_scal block ixfn
          | Grouped { mem; wits; arr } -> check_grouped post mem wits arr
          | Footprint_fits { block; arr } ->
              check_footprint_fits post post_scal o.o_ctx block arr
          | Dominance { binding } -> check_dominance post binding
          | Unreferenced { name } -> check_unreferenced pre post name
          | Dies_in_arm { block; if_binding; arm } ->
              check_dies_in_arm pre post block if_binding arm
          | Packed_disjoint { arena = _; a; a_off; a_size = _; b; b_off;
                              b_size = _ } ->
              check_packed_disjoint post post_scal o.o_ctx ~a ~a_off ~b ~b_off
          | Fits_in_arena { arena; member; off; size = _; extent = _ } ->
              check_fits_in_arena post post_scal o.o_ctx ~arena ~member ~off
          | Hole_disjoint { arena; a; a_off; a_size = _; b; b_off;
                            b_size = _; iter } ->
              check_hole_disjoint pre post post_scal o.o_ctx ~arena ~a ~a_off
                ~b ~b_off ~iter
        in
        { obl = o; verdict; detail })
      obls
  in
  let proved, concretized, failed =
    List.fold_left
      (fun (p, c, f) ch ->
        match ch.verdict with
        | Proved -> (p + 1, c, f)
        | Concretized _ -> (p, c + 1, f)
        | Failed _ -> (p, c, f + 1))
      (0, 0, 0) checked
  in
  { pass; emitted = List.length checked; proved; concretized; failed; checked }

(* ---------------------------------------------------------------- *)
(* JSON export                                                       *)
(* ---------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_report r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"pass\":\"%s\",\"emitted\":%d,\"proved\":%d,\"concretized\":%d,\"failed\":%d,\"obligations\":["
       (json_escape r.pass) r.emitted r.proved r.concretized r.failed);
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      let verdict, sizes, witness =
        match c.verdict with
        | Proved -> ("proved", [], None)
        | Concretized sizes -> ("concretized", sizes, None)
        | Failed w -> ("failed", [], Some w)
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":%d,\"kind\":\"%s\",\"rewrite\":\"%s\",\"claim\":\"%s\",\"verdict\":\"%s\""
           c.obl.o_id
           (claim_kind c.obl.o_claim)
           (json_escape (Fmt.str "%a" pp_rewrite c.obl.o_rewrite))
           (json_escape (Fmt.str "%a" pp_claim c.obl.o_claim))
           verdict);
      if sizes <> [] then
        Buffer.add_string b
          (Printf.sprintf ",\"validated_at\":[%s]"
             (String.concat "," (List.map string_of_int sizes)));
      (match witness with
      | Some w ->
          Buffer.add_string b
            (Printf.sprintf ",\"witness\":\"%s\"" (json_escape w))
      | None -> ());
      Buffer.add_string b
        (Printf.sprintf ",\"detail\":\"%s\"}" (json_escape c.detail)))
    r.checked;
  Buffer.add_string b "]}";
  Buffer.contents b
