(* Offset-based block packing: the arena planner.

   Whole-block coalescing (Reuse) stops at "one block stands in for
   another".  This pass packs the blocks that survive it into arenas:
   per lexical block it derives live intervals from the coalescer's
   first-reference machinery, builds the interference graph (two
   blocks interfere iff their intervals overlap), and first-fit
   assigns each block an element offset such that interfering
   placements are provably address-disjoint while non-interfering
   placements may overlap (sub-block reuse).  One EAlloc of the
   provably-largest member end replaces the members' allocations; the
   member annotations are rebased - block renamed to the arena, the
   memory-side LMAD of the index function shifted by the placement
   offset - and the orphaned member EAllocs are left for Cleanup.

   Everything the prover cannot decide (a placement with no provable
   candidate offset, an arena extent it cannot order) stays unpacked
   and is counted in the stats.  See pack.mli for the contract. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module Ixfn = Lmads.Ixfn
module SM = Map.Make (String)
module SS = Ir.Ast.SS

(* ---------------------------------------------------------------- *)
(* Options and statistics                                            *)
(* ---------------------------------------------------------------- *)

type options = { verbose : bool; pack : bool }

let default_options = { verbose = false; pack = true }
let disabled = { verbose = false; pack = false }

type stats = {
  mutable arenas : int;
  mutable packed : int;
  mutable unpacked : int;
  mutable offset_proofs : int;
}

let fresh_stats () = { arenas = 0; packed = 0; unpacked = 0; offset_proofs = 0 }

let pp_stats ppf (s : stats) =
  Report.section ~title:"block packing" ppf
    [
      ("arenas planned", string_of_int s.arenas);
      ("blocks packed", string_of_int s.packed);
      ("blocks left unpacked", string_of_int s.unpacked);
      ("offset/extent proofs", string_of_int s.offset_proofs);
    ]

let trace opts fmt =
  if opts.verbose then Fmt.epr (fmt ^^ "@.") else Fmt.kstr (fun _ -> ()) fmt

let arena_base = "arena"
let is_arena name = Ir.Names.base name = arena_base

(* ---------------------------------------------------------------- *)
(* Members and placements                                            *)
(* ---------------------------------------------------------------- *)

type member = {
  m_idx : int; (* statement index of the EAlloc *)
  m_name : string;
  m_size : P.t; (* size as written (in scope at the alloc site) *)
  m_rsize : P.t; (* resolved size, for the prover *)
  m_first : int; (* live interval: first / last referencing statement *)
  m_last : int;
  m_aliases : SS.t; (* names the block threads through loop params *)
}

type placement = {
  p_m : member;
  p_off : P.t; (* offset as written, for the rebased index functions *)
  p_roff : P.t; (* resolved offset, for the prover and the certs *)
}

let interferes a b = a.m_first <= b.m_last && b.m_first <= a.m_last

(* A mem name may occur in expression position as the initializer of a
   sequential loop's carried memory: the loop threads the block
   through a param and rebinds it in its result pattern.  Such a
   member is still packable - the initializer is renamed to the arena
   and the annotations of every name the block threads into (the
   param, the positional result, transitively) are shifted by the same
   placement offset.  This computes that alias closure, or [None] when
   some occurrence is anything else - in particular a rotation, where
   the loop body yields a *different* block into the member's carried
   position, so no single static offset is correct.  Those members
   stay unpacked. *)
let threaded_aliases (m : string) (b : block) : SS.t option =
  let aliases = ref (SS.singleton m) in
  let ok = ref true in
  let is_alias = function Var v -> SS.mem v !aliases | _ -> false in
  let rec grow_stm (s : stm) =
    match s.exp with
    | ELoop { params; body; _ } ->
        List.iteri
          (fun i ((pe : pat_elem), init) ->
            if is_alias init then (
              aliases := SS.add pe.pv !aliases;
              match List.nth_opt s.pat i with
              | Some (rpe : pat_elem) -> aliases := SS.add rpe.pv !aliases
              | None -> ok := false))
          params;
        grow_block body
    | EMap { body; _ } -> grow_block body
    | EIf { tb; fb; _ } ->
        grow_block tb;
        grow_block fb
    | _ -> ()
  and grow_block (blk : block) = List.iter grow_stm blk.stms in
  let rec fix () =
    let before = SS.cardinal !aliases in
    grow_block b;
    if SS.cardinal !aliases > before then fix ()
  in
  fix ();
  (* every expression occurrence must be sanctioned: a loop
     initializer, or the body yielding the alias straight back at its
     own carried position.  Anything else - an arm or kernel result, a
     swapped yield, an array operand - defeats a static offset. *)
  let rec check_stm (s : stm) =
    match s.exp with
    | ELoop { params; body; _ } ->
        List.iteri
          (fun i ((pe : pat_elem), _) ->
            let yields =
              match List.nth_opt body.res i with
              | Some (Var v) -> SS.mem v !aliases
              | _ -> false
            in
            if yields <> SS.mem pe.pv !aliases then ok := false)
          params;
        check_block ~res_ok:true body
    | EMap { body; _ } -> check_block ~res_ok:false body
    | EIf { cond; tb; fb } ->
        if is_alias cond then ok := false;
        check_block ~res_ok:false tb;
        check_block ~res_ok:false fb
    | e ->
        let occ =
          Reuse.exp_vars_block { stms = [ stm [] e ]; res = [] } SS.empty
        in
        if SS.exists (fun v -> SS.mem v !aliases) occ then ok := false
  and check_block ~res_ok (blk : block) =
    List.iter check_stm blk.stms;
    if not res_ok then
      List.iter (fun a -> if is_alias a then ok := false) blk.res
  in
  check_block ~res_ok:false b;
  if !ok then Some !aliases else None

(* Shift the memory-side LMAD of an index function by [delta]
   elements: the chain's last link addresses the block, so adding the
   placement offset there rebases every access and commutes with the
   change-of-layout operations (which act on the head). *)
let shift_ixfn delta ixfn =
  if P.is_zero delta then ixfn
  else
    match List.rev (Ixfn.chain ixfn) with
    | last :: before ->
        let last' =
          Lmad.make (P.add (Lmad.offset last) delta) (Lmad.dims last)
        in
        Ixfn.of_chain (List.rev (last' :: before))
    | [] -> ixfn

(* Rebase one placement: annotations homed in the member itself move
   to the arena block at the shifted offset; annotations homed in a
   threaded alias keep their name (the alias is a binder that will
   hold the arena at run time) but shift all the same; the loop
   initializers naming the member are renamed to the arena.  Only the
   initializer rename rebuilds the expression - annotations live in
   mutable [pmem] fields. *)
let rebase_pe aliases oldm arena delta (pe : pat_elem) =
  match pe.pmem with
  | Some mi when mi.block = oldm ->
      pe.pmem <- Some { block = arena; ixfn = shift_ixfn delta mi.ixfn }
  | Some mi when SS.mem mi.block aliases ->
      pe.pmem <- Some { mi with ixfn = shift_ixfn delta mi.ixfn }
  | _ -> ()

let rec rebase_stm aliases oldm arena delta (s : stm) : stm =
  List.iter (rebase_pe aliases oldm arena delta) s.pat;
  let exp =
    match s.exp with
    | EMap m ->
        EMap { m with body = rebase_block aliases oldm arena delta m.body }
    | ELoop ({ params; body; _ } as lp) ->
        let params =
          List.map
            (fun ((pe : pat_elem), init) ->
              rebase_pe aliases oldm arena delta pe;
              let init =
                match init with Var v when v = oldm -> Var arena | a -> a
              in
              (pe, init))
            params
        in
        ELoop
          { lp with params; body = rebase_block aliases oldm arena delta body }
    | EIf i ->
        EIf
          {
            i with
            tb = rebase_block aliases oldm arena delta i.tb;
            fb = rebase_block aliases oldm arena delta i.fb;
          }
    | e -> e
  in
  { s with exp }

and rebase_block aliases oldm arena delta (b : block) : block =
  {
    stms = List.map (rebase_stm aliases oldm arena delta) b.stms;
    res = List.map (function Var v when v = oldm -> Var arena | a -> a) b.res;
  }

(* First-fit offset assignment.  Candidates for a member are offset 0
   and the end offsets of the already-placed members it interferes
   with, tried in placement order; a candidate is admissible when the
   member is provably disjoint from every placed interfering member.
   Non-interfering members need no proof - overlapping them is the
   point.  Members with no admissible candidate are returned loose. *)
let place st ctx (members : member list) : placement list * member list =
  let placed = ref [] and loose = ref [] in
  List.iter
    (fun m ->
      let interf = List.filter (fun p -> interferes p.p_m m) !placed in
      let cands =
        (P.zero, P.zero)
        :: List.map
             (fun p ->
               (P.add p.p_off p.p_m.m_size, P.add p.p_roff p.p_m.m_rsize))
             interf
      in
      let admissible (_, roff) =
        List.for_all
          (fun p ->
            Pr.prove_ge ctx roff (P.add p.p_roff p.p_m.m_rsize)
            || Pr.prove_ge ctx p.p_roff (P.add roff m.m_rsize))
          interf
      in
      match List.find_opt admissible cands with
      | Some (off, roff) ->
          st.offset_proofs <- st.offset_proofs + List.length interf;
          placed := !placed @ [ { p_m = m; p_off = off; p_roff = roff } ]
      | None -> loose := m :: !loose)
    members;
  (!placed, List.rev !loose)

(* The arena extent: a member end the prover can show dominates every
   other.  Built greedily; a placement whose end is incomparable to
   the running extent is dropped back to unpacked. *)
let extent_of st ctx (placements : placement list) =
  let kept, ext =
    List.fold_left
      (fun (kept, ext) p ->
        let e = P.add p.p_off p.p_m.m_size
        and re = P.add p.p_roff p.p_m.m_rsize in
        match ext with
        | None -> (p :: kept, Some (e, re))
        | Some (_, cur_re) when Pr.prove_ge ctx cur_re re ->
            st.offset_proofs <- st.offset_proofs + 1;
            (p :: kept, ext)
        | Some (_, cur_re) when Pr.prove_ge ctx re cur_re ->
            st.offset_proofs <- st.offset_proofs + 1;
            (p :: kept, Some (e, re))
        | Some _ -> (kept, ext))
      ([], None) placements
  in
  (List.rev kept, ext)

(* ---------------------------------------------------------------- *)
(* Per-block packing                                                 *)
(* ---------------------------------------------------------------- *)

let pack_block st opts cert ctx scalars mems (b : block) : block =
  let stms = Array.of_list b.stms in
  let n = Array.length stms in
  let refs = Array.map (Reuse.block_refs mems) stms in
  let escape = Reuse.res_refs mems b in
  let hard = Reuse.exp_vars_block b SS.empty in
  let first_ref names =
    let first = ref max_int in
    Array.iteri
      (fun i r ->
        if SS.exists (fun a -> SS.mem a r) names && i < !first then first := i)
      refs;
    !first
  in
  let last_ref names =
    let last = ref (-1) in
    Array.iteri
      (fun i r -> if SS.exists (fun a -> SS.mem a r) names then last := i)
      refs;
    !last
  in
  (* the block's surviving allocations, as live-interval members whose
     interval spans every threaded alias; unreferenced blocks are dead
     (Cleanup's business, not ours) *)
  let members = ref [] in
  Array.iteri
    (fun i s ->
      match (s.pat, s.exp) with
      | [ pe ], EAlloc sz when pe.pt = TMem ->
          let aliases =
            match threaded_aliases pe.pv b with
            | Some al -> al
            | None -> SS.singleton pe.pv
          in
          let first = first_ref aliases in
          if first < max_int then
            members :=
              {
                m_idx = i;
                m_name = pe.pv;
                m_size = sz;
                m_rsize = Reuse.resolve scalars sz;
                m_first = first;
                m_last = last_ref aliases;
                m_aliases = aliases;
              }
              :: !members
      | _ -> ())
    stms;
  let members = List.rev !members in
  (* eligibility: no escaping alias, no arena re-packing, and any
     expression-position occurrence accounted for by loop threading
     ([threaded_aliases] returned a closure beyond the member itself,
     or the member is not expression-load-bearing at all) *)
  let candidates, blocked =
    List.partition
      (fun m ->
        let threaded = SS.cardinal m.m_aliases > 1 in
        ((not (SS.mem m.m_name hard)) || threaded)
        && (not (SS.exists (fun a -> SS.mem a escape) m.m_aliases))
        && not (is_arena m.m_name))
      members
  in
  (* distinct members threading through a shared alias would demand
     two offsets for one binder - keep the first, block the rest *)
  let _, candidates, aliased_out =
    List.fold_left
      (fun (seen, keep, out) m ->
        if SS.exists (fun a -> SS.mem a seen) m.m_aliases then
          (seen, keep, m :: out)
        else (SS.union seen m.m_aliases, m :: keep, out))
      (SS.empty, [], []) candidates
  in
  let candidates = List.rev candidates
  and blocked = blocked @ List.rev aliased_out in
  (* the arena allocation goes right after the last member EAlloc and
     must dominate every member's first reference; hoisting has moved
     the allocations to the block top, so this holds - when it does
     not, drop trailing allocations until it does *)
  let rec prune ms =
    match ms with
    | [] | [ _ ] -> ms
    | _ ->
        let min_first =
          List.fold_left (fun a m -> min a m.m_first) max_int ms
        and max_idx = List.fold_left (fun a m -> max a m.m_idx) (-1) ms in
        if max_idx < min_first then ms
        else prune (List.filter (fun m -> m.m_idx <> max_idx) ms)
  in
  let pruned = prune candidates in
  let placements, _loose = place st ctx pruned in
  let placements, ext = extent_of st ctx placements in
  match (placements, ext) with
  | _ :: _ :: _, Some (extent, rextent) ->
      st.arenas <- st.arenas + 1;
      st.packed <- st.packed + List.length placements;
      st.unpacked <-
        st.unpacked + List.length blocked
        + (List.length candidates - List.length placements);
      let arena = Ir.Names.fresh arena_base in
      (match cert with
      | None -> ()
      | Some r ->
          let rw =
            Certify.Packing
              { arena; members = List.map (fun p -> p.p_m.m_name) placements }
          in
          List.iter
            (fun p ->
              Certify.emit r rw ~ctx
                (Certify.Fits_in_arena
                   {
                     arena;
                     member = p.p_m.m_name;
                     off = p.p_roff;
                     size = p.p_m.m_rsize;
                     extent = rextent;
                   }))
            placements;
          let rec pairs = function
            | [] -> ()
            | p :: rest ->
                List.iter
                  (fun q ->
                    if interferes p.p_m q.p_m then
                      Certify.emit r rw ~ctx
                        (Certify.Packed_disjoint
                           {
                             arena;
                             a = p.p_m.m_name;
                             a_off = p.p_roff;
                             a_size = p.p_m.m_rsize;
                             b = q.p_m.m_name;
                             b_off = q.p_roff;
                             b_size = q.p_m.m_rsize;
                           }))
                  rest;
                pairs rest
          in
          pairs placements);
      let at =
        1 + List.fold_left (fun a p -> max a p.p_m.m_idx) (-1) placements
      in
      List.iter
        (fun p ->
          trace opts "pack: %s at offset %a of %s" p.p_m.m_name P.pp p.p_off
            arena;
          for i = at to n - 1 do
            stms.(i) <-
              rebase_stm p.p_m.m_aliases p.p_m.m_name arena p.p_off stms.(i)
          done)
        placements;
      let arena_stm = stm [ pat_elem arena TMem ] (EAlloc extent) in
      {
        b with
        stms =
          Array.to_list (Array.sub stms 0 at)
          @ arena_stm
            :: Array.to_list (Array.sub stms at (n - at));
      }
  | _ ->
      st.unpacked <-
        st.unpacked + List.length blocked + List.length candidates;
      b

(* ---------------------------------------------------------------- *)
(* Program walk                                                      *)
(* ---------------------------------------------------------------- *)

let note_mems mems (pes : pat_elem list) =
  List.fold_left
    (fun mems (pe : pat_elem) ->
      match pe.pmem with
      | Some mi -> SM.add pe.pv mi.block mems
      | None -> mems)
    mems pes

(* Pack this block, then recurse into sequential loops, conditionals
   and mapnest bodies with the prover context extended by the
   iteration and thread ranges.  A kernel body is a lexical block of
   its own, so packing there is per-thread: every thread's arena
   instance replaces that same thread's member instances, and blocks
   of different threads are as distinct as they were before packing.
   What is never done is packing an in-kernel block with an outer
   one - members always come from a single lexical block. *)
let rec walk st opts cert ctx scalars mems (b : block) : block =
  let scalars =
    List.fold_left
      (fun sc s ->
        match Reuse.scalar_def s with
        | Some (v, p) -> P.SM.add v p sc
        | None -> sc)
      scalars b.stms
  in
  let mems =
    List.fold_left
      (fun mems s ->
        let mems = note_mems mems s.pat in
        match s.exp with
        | ELoop { params; _ } -> note_mems mems (List.map fst params)
        | _ -> mems)
      mems b.stms
  in
  let b = pack_block st opts cert ctx scalars mems b in
  let stms =
    List.map
      (fun s ->
        let exp =
          match s.exp with
          | ELoop ({ var; bound; body; params } as lp) ->
              let ctx' =
                Pr.add_range ctx var ~lo:P.zero
                  ~hi:(P.sub (Reuse.resolve scalars bound) P.one) ()
              in
              let mems' = note_mems mems (List.map fst params) in
              ELoop { lp with body = walk st opts cert ctx' scalars mems' body }
          | EIf ({ tb; fb; _ } as i) ->
              EIf
                {
                  i with
                  tb = walk st opts cert ctx scalars mems tb;
                  fb = walk st opts cert ctx scalars mems fb;
                }
          | EMap { nest; body } ->
              let ctx' =
                List.fold_left
                  (fun c (v, bound) ->
                    Pr.add_range c v ~lo:P.zero
                      ~hi:(P.sub (Reuse.resolve scalars bound) P.one) ())
                  ctx nest
              in
              EMap { nest; body = walk st opts cert ctx' scalars mems body }
          | e -> e
        in
        { s with exp })
      b.stms
  in
  { b with stms }

let optimize ?(options = default_options) ?cert (p : prog) : prog * stats =
  let st = fresh_stats () in
  if not options.pack then (p, st)
  else
    let mems0 =
      List.fold_left
        (fun m (pe : pat_elem) ->
          match pe.pmem with
          | Some mi -> SM.add pe.pv mi.block m
          | None -> m)
        SM.empty p.params
    in
    let body = walk st options cert p.ctx P.SM.empty mems0 p.body in
    ({ p with body }, st)
