(* Offset-based block packing: the whole-program arena planner.

   Whole-block coalescing (Reuse) stops at "one block stands in for
   another".  This pass packs the blocks that survive it into arenas
   at certified byte offsets.  Two mechanisms feed one planner:

   - Local members: a block's own surviving EAllocs, with live
     intervals from the coalescer's first-reference machinery (as in
     the original per-lexical-block planner).  At the program's top
     level, a member escaping into the program result is packable too
     (its interval is open-ended - the arena outlives the program
     body), which folds result allocations into the program arena.

   - Promoted members: an allocation in a nested block - inside
     sequential loops, conditional arms and kernel bodies - whose
     size is evaluable at the top level and whose alias closure never
     escapes any crossed block's result.  Crossing a kernel multiplies
     the slot into a per-thread region (offset advanced by
     size * linearized thread index, so threads stay isolated exactly
     as per-thread arenas kept them); crossing a sequential loop keeps
     one slot that each iteration's logically fresh instance
     re-occupies - a lifetime hole in time, emitted as a
     [hole-disjoint] obligation and re-derived by the independent
     checker from per-iteration freshness.

   Placement orders ([--pack-order]): [Firstfit] assigns offsets in
   emission order; [Colour] is interval-graph colouring - members
   sorted by interval start with size-sorted tie-breaking - and falls
   back to first-fit unless its extent is provably no larger, so the
   colour-vs-firstfit A/B gate holds by construction.  Interfering
   placements are provably address-disjoint; non-interfering
   placements may overlap (a lifetime hole across address space,
   certified with live-range disjointness).  One EAlloc of the
   provably-largest member end replaces the members' allocations; the
   member annotations are rebased - block renamed to the arena, the
   memory-side LMAD of the index function shifted by the placement
   offset - and the orphaned member EAllocs are left for Cleanup.

   Everything the prover cannot decide (a placement with no provable
   candidate offset, an arena extent it cannot order, a region size it
   cannot evaluate at top level) stays unpacked and is counted in the
   stats.  See pack.mli for the contract. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module Ixfn = Lmads.Ixfn
module SM = Map.Make (String)
module SS = Ir.Ast.SS

(* ---------------------------------------------------------------- *)
(* Options and statistics                                            *)
(* ---------------------------------------------------------------- *)

type order = Firstfit | Colour

type options = { verbose : bool; pack : bool; order : order }

let default_options = { verbose = false; pack = true; order = Colour }
let disabled = { verbose = false; pack = false; order = Colour }

type stats = {
  mutable arenas : int;
  mutable packed : int;
  mutable unpacked : int;
  mutable offset_proofs : int;
  mutable holes : int;
  mutable promoted : int;
}

let fresh_stats () =
  {
    arenas = 0;
    packed = 0;
    unpacked = 0;
    offset_proofs = 0;
    holes = 0;
    promoted = 0;
  }

let pp_stats ppf (s : stats) =
  Report.section ~title:"block packing" ppf
    [
      ("arenas planned", string_of_int s.arenas);
      ("blocks packed", string_of_int s.packed);
      ("blocks left unpacked", string_of_int s.unpacked);
      ("offset/extent proofs", string_of_int s.offset_proofs);
      ("lifetime holes", string_of_int s.holes);
      ("members promoted cross-scope", string_of_int s.promoted);
    ]

let trace opts fmt =
  if opts.verbose then Fmt.epr (fmt ^^ "@.") else Fmt.kstr (fun _ -> ()) fmt

let arena_base = "arena"
let is_arena name = Ir.Names.base name = arena_base

(* ---------------------------------------------------------------- *)
(* Members and placements                                            *)
(* ---------------------------------------------------------------- *)

(* Cross-scope promotion data for a member whose allocation lives in a
   nested block but whose storage is planned in the program arena. *)
type promo = {
  pr_size : P.t;  (* resolved per-instance size *)
  pr_delta : P.t;  (* per-instance offset within the region *)
  pr_nests : (string * P.t) list;  (* crossed kernel binders, counts *)
  pr_loops : string list;  (* crossed sequential loop bindings *)
}

type member = {
  m_idx : int; (* statement index of the EAlloc; -1 for promoted *)
  m_name : string;
  m_size : P.t; (* size as written (in scope at the alloc site) *)
  m_rsize : P.t; (* resolved size, for the prover *)
  m_first : int; (* live interval: first / last referencing statement *)
  m_last : int;
  m_aliases : SS.t; (* names the block threads through loop params *)
  m_promo : promo option;
}

type placement = {
  p_m : member;
  p_off : P.t; (* offset as written, for the rebased index functions *)
  p_roff : P.t; (* resolved offset, for the prover and the certs *)
}

let interferes a b = a.m_first <= b.m_last && b.m_first <= a.m_last

(* The member's offset and size as they appear in claims: per-instance
   for promoted members (the checker re-derives the instance size from
   the member's EAlloc), region-level for local ones. *)
let claim_off p =
  match p.p_m.m_promo with
  | Some pr -> P.add p.p_roff pr.pr_delta
  | None -> p.p_roff

let claim_size p =
  match p.p_m.m_promo with Some pr -> pr.pr_size | None -> p.p_m.m_rsize

let claim_ctx ctx p =
  match p.p_m.m_promo with
  | None -> ctx
  | Some pr ->
      List.fold_left
        (fun c (v, cnt) ->
          Pr.add_range c v ~lo:P.zero ~hi:(P.sub cnt P.one) ())
        ctx pr.pr_nests

(* A mem name may occur in expression position as the initializer of a
   sequential loop's carried memory: the loop threads the block
   through a param and rebinds it in its result pattern.  Such a
   member is still packable - the initializer is renamed to the arena
   and the annotations of every name the block threads into (the
   param, the positional result, transitively) are shifted by the same
   placement offset.  This computes that alias closure, or [None] when
   some occurrence is anything else - in particular a rotation, where
   the loop body yields a *different* block into the member's carried
   position, so no single static offset is correct.  Those members
   stay unpacked. *)
let threaded_aliases (m : string) (b : block) : SS.t option =
  let aliases = ref (SS.singleton m) in
  let ok = ref true in
  let is_alias = function Var v -> SS.mem v !aliases | _ -> false in
  let rec grow_stm (s : stm) =
    match s.exp with
    | ELoop { params; body; _ } ->
        List.iteri
          (fun i ((pe : pat_elem), init) ->
            if is_alias init then (
              aliases := SS.add pe.pv !aliases;
              match List.nth_opt s.pat i with
              | Some (rpe : pat_elem) -> aliases := SS.add rpe.pv !aliases
              | None -> ok := false))
          params;
        grow_block body
    | EMap { body; _ } -> grow_block body
    | EIf { tb; fb; _ } ->
        grow_block tb;
        grow_block fb
    | _ -> ()
  and grow_block (blk : block) = List.iter grow_stm blk.stms in
  let rec fix () =
    let before = SS.cardinal !aliases in
    grow_block b;
    if SS.cardinal !aliases > before then fix ()
  in
  fix ();
  (* every expression occurrence must be sanctioned: a loop
     initializer, or the body yielding the alias straight back at its
     own carried position.  Anything else - an arm or kernel result, a
     swapped yield, an array operand - defeats a static offset. *)
  let rec check_stm (s : stm) =
    match s.exp with
    | ELoop { params; body; _ } ->
        List.iteri
          (fun i ((pe : pat_elem), _) ->
            let yields =
              match List.nth_opt body.res i with
              | Some (Var v) -> SS.mem v !aliases
              | _ -> false
            in
            if yields <> SS.mem pe.pv !aliases then ok := false)
          params;
        check_block ~res_ok:true body
    | EMap { body; _ } -> check_block ~res_ok:false body
    | EIf { cond; tb; fb } ->
        if is_alias cond then ok := false;
        check_block ~res_ok:false tb;
        check_block ~res_ok:false fb
    | e ->
        let occ =
          Reuse.exp_vars_block { stms = [ stm [] e ]; res = [] } SS.empty
        in
        if SS.exists (fun v -> SS.mem v !aliases) occ then ok := false
  and check_block ~res_ok (blk : block) =
    List.iter check_stm blk.stms;
    if not res_ok then
      List.iter (fun a -> if is_alias a then ok := false) blk.res
  in
  check_block ~res_ok:false b;
  if !ok then Some !aliases else None

(* Shift the memory-side LMAD of an index function by [delta]
   elements: the chain's last link addresses the block, so adding the
   placement offset there rebases every access and commutes with the
   change-of-layout operations (which act on the head). *)
let shift_ixfn delta ixfn =
  if P.is_zero delta then ixfn
  else
    match List.rev (Ixfn.chain ixfn) with
    | last :: before ->
        let last' =
          Lmad.make (P.add (Lmad.offset last) delta) (Lmad.dims last)
        in
        Ixfn.of_chain (List.rev (last' :: before))
    | [] -> ixfn

(* Rebase one placement: annotations homed in the member itself move
   to the arena block at the shifted offset; annotations homed in a
   threaded alias keep their name (the alias is a binder that will
   hold the arena at run time) but shift all the same; the loop
   initializers naming the member are renamed to the arena.  Only the
   initializer rename rebuilds the expression - annotations live in
   mutable [pmem] fields. *)
let rebase_pe aliases oldm arena delta (pe : pat_elem) =
  match pe.pmem with
  | Some mi when mi.block = oldm ->
      pe.pmem <- Some { block = arena; ixfn = shift_ixfn delta mi.ixfn }
  | Some mi when SS.mem mi.block aliases ->
      pe.pmem <- Some { mi with ixfn = shift_ixfn delta mi.ixfn }
  | _ -> ()

let rec rebase_stm aliases oldm arena delta (s : stm) : stm =
  List.iter (rebase_pe aliases oldm arena delta) s.pat;
  let exp =
    match s.exp with
    | EMap m ->
        EMap { m with body = rebase_block aliases oldm arena delta m.body }
    | ELoop ({ params; body; _ } as lp) ->
        let params =
          List.map
            (fun ((pe : pat_elem), init) ->
              rebase_pe aliases oldm arena delta pe;
              let init =
                match init with Var v when v = oldm -> Var arena | a -> a
              in
              (pe, init))
            params
        in
        ELoop
          { lp with params; body = rebase_block aliases oldm arena delta body }
    | EIf i ->
        EIf
          {
            i with
            tb = rebase_block aliases oldm arena delta i.tb;
            fb = rebase_block aliases oldm arena delta i.fb;
          }
    | e -> e
  in
  { s with exp }

and rebase_block aliases oldm arena delta (b : block) : block =
  {
    stms = List.map (rebase_stm aliases oldm arena delta) b.stms;
    res = List.map (function Var v when v = oldm -> Var arena | a -> a) b.res;
  }

(* ---------------------------------------------------------------- *)
(* Placement                                                         *)
(* ---------------------------------------------------------------- *)

(* First-fit offset assignment.  Candidates for a member are offset 0
   and the end offsets of the already-placed members it interferes
   with, tried in placement order; a candidate is admissible when the
   member is provably disjoint from every placed interfering member.
   Non-interfering members need no proof - overlapping them is the
   point.  Members with no admissible candidate are returned loose. *)
let place st ctx (members : member list) : placement list * member list =
  let placed = ref [] and loose = ref [] in
  List.iter
    (fun m ->
      let interf = List.filter (fun p -> interferes p.p_m m) !placed in
      let cands =
        (P.zero, P.zero)
        :: List.map
             (fun p ->
               (P.add p.p_off p.p_m.m_size, P.add p.p_roff p.p_m.m_rsize))
             interf
      in
      let admissible (_, roff) =
        List.for_all
          (fun p ->
            Pr.prove_ge ctx roff (P.add p.p_roff p.p_m.m_rsize)
            || Pr.prove_ge ctx p.p_roff (P.add roff m.m_rsize))
          interf
      in
      match List.find_opt admissible cands with
      | Some (off, roff) ->
          st.offset_proofs <- st.offset_proofs + List.length interf;
          placed := !placed @ [ { p_m = m; p_off = off; p_roff = roff } ]
      | None -> loose := m :: !loose)
    members;
  (!placed, List.rev !loose)

(* The arena extent: a member end the prover can show dominates every
   other.  Built greedily; a placement whose end is incomparable to
   the running extent is dropped back to unpacked. *)
let extent_of st ctx (placements : placement list) =
  let kept, ext =
    List.fold_left
      (fun (kept, ext) p ->
        let e = P.add p.p_off p.p_m.m_size
        and re = P.add p.p_roff p.p_m.m_rsize in
        match ext with
        | None -> (p :: kept, Some (e, re))
        | Some (_, cur_re) when Pr.prove_ge ctx cur_re re ->
            st.offset_proofs <- st.offset_proofs + 1;
            (p :: kept, ext)
        | Some (_, cur_re) when Pr.prove_ge ctx re cur_re ->
            st.offset_proofs <- st.offset_proofs + 1;
            (p :: kept, Some (e, re))
        | Some _ -> (kept, ext))
      ([], None) placements
  in
  (List.rev kept, ext)

(* Interval-graph colouring order: members sorted by interval start,
   ties broken largest-size-first (a provable size domination), then
   by emission order for determinism. *)
let colour_order ctx (members : member list) =
  List.stable_sort
    (fun a b ->
      match compare a.m_first b.m_first with
      | 0 ->
          let a_ge = Pr.prove_ge ctx a.m_rsize b.m_rsize
          and b_ge = Pr.prove_ge ctx b.m_rsize a.m_rsize in
          if a_ge && not b_ge then -1 else if b_ge && not a_ge then 1 else 0
      | c -> c)
    members

(* Place under the requested order.  Colouring must prove its extent
   no larger than first-fit's - and place no fewer members - or it
   falls back to the first-fit plan, so the CI A/B gate (colour extent
   <= first-fit extent, per arena) holds by construction. *)
let plan st opts ctx (members : member list) =
  match opts.order with
  | Firstfit ->
      let pl, _ = place st ctx members in
      extent_of st ctx pl
  | Colour -> (
      let ff_st = fresh_stats () and c_st = fresh_stats () in
      let ff_pl, _ = place ff_st ctx members in
      let ff_pl, ff_ext = extent_of ff_st ctx ff_pl in
      let c_pl, _ = place c_st ctx (colour_order ctx members) in
      let c_pl, c_ext = extent_of c_st ctx c_pl in
      let take from result =
        st.offset_proofs <- st.offset_proofs + from.offset_proofs;
        result
      in
      match (c_ext, ff_ext) with
      | _, None -> take c_st (c_pl, c_ext)
      | Some (_, c_re), Some (_, ff_re)
        when List.length c_pl >= List.length ff_pl
             && Pr.prove_ge ctx ff_re c_re ->
          take c_st (c_pl, c_ext)
      | _ -> take ff_st (ff_pl, ff_ext))

(* ---------------------------------------------------------------- *)
(* Member discovery                                                  *)
(* ---------------------------------------------------------------- *)

(* The block's surviving allocations as live-interval members (local
   view: interval indices are statement indices of [b]), partitioned
   into packable candidates and blocked members.  With
   [allow_escape], a member escaping through the block result is kept
   with an open-ended interval ([m_last = length stms]) - only sound
   at the program's top level, where the arena outlives the body. *)
let block_members ?(allow_escape = false) scalars mems (b : block) =
  let stms = Array.of_list b.stms in
  let refs = Array.map (Reuse.block_refs mems) stms in
  let escape = Reuse.res_refs mems b in
  let hard = Reuse.exp_vars_block b SS.empty in
  let n = Array.length stms in
  let first_ref names =
    let first = ref max_int in
    Array.iteri
      (fun i r ->
        if SS.exists (fun a -> SS.mem a r) names && i < !first then first := i)
      refs;
    !first
  in
  let last_ref names =
    let last = ref (-1) in
    Array.iteri
      (fun i r -> if SS.exists (fun a -> SS.mem a r) names then last := i)
      refs;
    !last
  in
  let members = ref [] in
  Array.iteri
    (fun i s ->
      match (s.pat, s.exp) with
      | [ pe ], EAlloc sz when pe.pt = TMem ->
          let aliases =
            match threaded_aliases pe.pv b with
            | Some al -> al
            | None -> SS.singleton pe.pv
          in
          let first = first_ref aliases in
          if first < max_int then
            let escapes = SS.exists (fun a -> SS.mem a escape) aliases in
            members :=
              ( {
                  m_idx = i;
                  m_name = pe.pv;
                  m_size = sz;
                  m_rsize = Reuse.resolve scalars sz;
                  m_first = first;
                  m_last = (if escapes && allow_escape then n else last_ref aliases);
                  m_aliases = aliases;
                  m_promo = None;
                },
                escapes )
              :: !members
      | _ -> ())
    stms;
  let members = List.rev !members in
  (* eligibility: no escaping alias (unless escape is allowed), no
     arena re-packing, and any expression-position occurrence
     accounted for by loop threading *)
  let candidates, blocked =
    List.partition
      (fun (m, escapes) ->
        let threaded = SS.cardinal m.m_aliases > 1 in
        ((not (SS.mem m.m_name hard)) || threaded)
        && ((not escapes) || allow_escape)
        && not (is_arena m.m_name))
      members
  in
  (List.map fst candidates, List.map fst blocked)

(* Drop members threading through a shared alias: two offsets for one
   binder are unsatisfiable - keep the first. *)
let dedup_aliases (members : member list) =
  let _, keep, out =
    List.fold_left
      (fun (seen, keep, out) m ->
        if SS.exists (fun a -> SS.mem a seen) m.m_aliases then
          (seen, keep, m :: out)
        else (SS.union seen m.m_aliases, m :: keep, out))
      (SS.empty, [], []) members
  in
  (List.rev keep, List.rev out)

(* ---------------------------------------------------------------- *)
(* Cross-scope promotion candidates                                  *)
(* ---------------------------------------------------------------- *)

type pcand = {
  pc_name : string;
  pc_aliases : SS.t;
  pc_size : P.t;  (* resolved per-instance size *)
  pc_region : P.t;  (* resolved whole-region size at the top level *)
  pc_delta : P.t;  (* per-instance offset within the region *)
  pc_nests : (string * P.t) list;
  pc_loops : string list;  (* crossed loops, innermost first *)
  pc_top : int;  (* the top-level statement the member lives under *)
}

let note_mems mems (pes : pat_elem list) =
  List.fold_left
    (fun mems (pe : pat_elem) ->
      match pe.pmem with
      | Some mi -> SM.add pe.pv mi.block mems
      | None -> mems)
    mems pes

let accum_scalars scalars (b : block) =
  List.fold_left
    (fun sc s ->
      match Reuse.scalar_def s with Some (v, p) -> P.SM.add v p sc | None -> sc)
    scalars b.stms

let accum_mems mems (b : block) =
  List.fold_left
    (fun mems s ->
      let mems = note_mems mems s.pat in
      match s.exp with
      | ELoop { params; _ } -> note_mems mems (List.map fst params)
      | _ -> mems)
    mems b.stms

(* Promotable members of [b]'s subtree, lifted to [b]'s level.  A
   member survives a crossing only when nothing in its alias closure
   (nor any array annotated into it - [res_refs] resolves arrays to
   their blocks) escapes through the result of the block it leaves:
   with no escape channel the member is confined to its enclosing
   statement, so a sequential-loop crossing is a lifetime hole (each
   iteration's instance was fresh) and a kernel crossing multiplies
   the slot into a per-thread region. *)
let rec promotable scalars mems (b : block) : pcand list =
  let scalars = accum_scalars scalars b in
  let mems = accum_mems mems b in
  let local, _ = block_members scalars mems b in
  let local, _ = dedup_aliases local in
  let locals =
    List.map
      (fun m ->
        {
          pc_name = m.m_name;
          pc_aliases = m.m_aliases;
          pc_size = m.m_rsize;
          pc_region = m.m_rsize;
          pc_delta = P.zero;
          pc_nests = [];
          pc_loops = [];
          pc_top = 0;
        })
      local
  in
  let subs =
    List.concat_map
      (fun (s : stm) ->
        match s.exp with
        | ELoop { body; _ } -> (
            match s.pat with
            | [] -> []
            | pe :: _ ->
                List.map
                  (fun pc -> { pc with pc_loops = pc.pc_loops @ [ pe.pv ] })
                  (promotable scalars mems body))
        | EMap { nest; body } ->
            let counts =
              List.map
                (fun (v, bound) -> (v, Reuse.resolve scalars bound))
                nest
            in
            let total = P.prod (List.map snd counts) in
            let lin =
              List.fold_left
                (fun acc (v, c) -> P.add (P.mul acc c) (P.var v))
                P.zero counts
            in
            List.map
              (fun pc ->
                {
                  pc with
                  pc_delta = P.add pc.pc_delta (P.mul pc.pc_region lin);
                  pc_region = P.mul pc.pc_region total;
                  pc_nests = counts @ pc.pc_nests;
                })
              (promotable scalars mems body)
        | EIf { tb; fb; _ } ->
            promotable scalars mems tb @ promotable scalars mems fb
        | _ -> [])
      b.stms
  in
  let all = locals @ subs in
  (* nothing aliasing a candidate may escape through this block's
     result *)
  let esc = Reuse.res_refs mems b in
  let resv =
    List.fold_left
      (fun acc -> function Var v -> SS.add v acc | _ -> acc)
      SS.empty b.res
  in
  List.filter
    (fun pc ->
      not
        (SS.exists (fun a -> SS.mem a esc || SS.mem a resv) pc.pc_aliases))
    all

(* Promotion candidates of the whole program, anchored at top-level
   statement indices. *)
let gather_promotable scalars mems (top : block) : pcand list =
  let scalars = accum_scalars scalars top in
  let mems = accum_mems mems top in
  List.concat
    (List.mapi
       (fun i (s : stm) ->
         let subs =
           match s.exp with
           | ELoop { body; _ } -> (
               match s.pat with
               | [] -> []
               | pe :: _ ->
                   List.map
                     (fun pc ->
                       { pc with pc_loops = pc.pc_loops @ [ pe.pv ] })
                     (promotable scalars mems body))
           | EMap { nest; body } ->
               let counts =
                 List.map
                   (fun (v, bound) -> (v, Reuse.resolve scalars bound))
                   nest
               in
               let total = P.prod (List.map snd counts) in
               let lin =
                 List.fold_left
                   (fun acc (v, c) -> P.add (P.mul acc c) (P.var v))
                   P.zero counts
               in
               List.map
                 (fun pc ->
                   {
                     pc with
                     pc_delta = P.add pc.pc_delta (P.mul pc.pc_region lin);
                     pc_region = P.mul pc.pc_region total;
                     pc_nests = counts @ pc.pc_nests;
                   })
                 (promotable scalars mems body)
           | EIf { tb; fb; _ } ->
               promotable scalars mems tb @ promotable scalars mems fb
           | _ -> []
         in
         List.map (fun pc -> { pc with pc_top = i }) subs)
       top.stms)

(* ---------------------------------------------------------------- *)
(* Certificates and commitment                                       *)
(* ---------------------------------------------------------------- *)

let emit_certs st cert ctx arena rextent (placements : placement list) =
  match cert with
  | None ->
      (* still count the holes when running uncertified *)
      let rec pairs = function
        | [] -> ()
        | p :: rest ->
            List.iter
              (fun q ->
                if not (interferes p.p_m q.p_m) then
                  let p_end = P.add p.p_roff p.p_m.m_rsize
                  and q_end = P.add q.p_roff q.p_m.m_rsize in
                  if
                    not
                      (Pr.prove_ge ctx q.p_roff p_end
                      || Pr.prove_ge ctx p.p_roff q_end)
                  then st.holes <- st.holes + 1)
              rest;
            pairs rest
      in
      pairs placements;
      List.iter
        (fun p ->
          match p.p_m.m_promo with
          | Some pr -> st.holes <- st.holes + List.length pr.pr_loops
          | None -> ())
        placements
  | Some r ->
      let rw =
        Certify.Packing
          { arena; members = List.map (fun p -> p.p_m.m_name) placements }
      in
      List.iter
        (fun p ->
          Certify.emit r rw ~ctx:(claim_ctx ctx p)
            (Certify.Fits_in_arena
               {
                 arena;
                 member = p.p_m.m_name;
                 off = claim_off p;
                 size = claim_size p;
                 extent = rextent;
               });
          (* one hole per crossed sequential loop: the slot is
             re-occupied by each iteration's fresh instance *)
          match p.p_m.m_promo with
          | Some pr ->
              List.iter
                (fun loop ->
                  st.holes <- st.holes + 1;
                  Certify.emit r rw ~ctx:(claim_ctx ctx p)
                    (Certify.Hole_disjoint
                       {
                         arena;
                         a = p.p_m.m_name;
                         a_off = claim_off p;
                         a_size = claim_size p;
                         b = p.p_m.m_name;
                         b_off = claim_off p;
                         b_size = claim_size p;
                         iter = Some loop;
                       }))
                pr.pr_loops
          | None -> ())
        placements;
      let rec pairs = function
        | [] -> ()
        | p :: rest ->
            List.iter
              (fun q ->
                let pair_ctx = claim_ctx (claim_ctx ctx p) q in
                if interferes p.p_m q.p_m then
                  Certify.emit r rw ~ctx:pair_ctx
                    (Certify.Packed_disjoint
                       {
                         arena;
                         a = p.p_m.m_name;
                         a_off = claim_off p;
                         a_size = claim_size p;
                         b = q.p_m.m_name;
                         b_off = claim_off q;
                         b_size = claim_size q;
                       })
                else
                  (* non-interfering: an overlap in address space is a
                     lifetime hole, certified by live-range
                     disjointness *)
                  let p_end = P.add p.p_roff p.p_m.m_rsize
                  and q_end = P.add q.p_roff q.p_m.m_rsize in
                  if
                    not
                      (Pr.prove_ge ctx q.p_roff p_end
                      || Pr.prove_ge ctx p.p_roff q_end)
                  then begin
                    st.holes <- st.holes + 1;
                    Certify.emit r rw ~ctx:pair_ctx
                      (Certify.Hole_disjoint
                         {
                           arena;
                           a = p.p_m.m_name;
                           a_off = claim_off p;
                           a_size = claim_size p;
                           b = q.p_m.m_name;
                           b_off = claim_off q;
                           b_size = claim_size q;
                           iter = None;
                         })
                  end)
              rest;
            pairs rest
      in
      pairs placements

(* Insert the arena allocation at [at] and rebase every placement over
   the remainder of the block. *)
let commit st opts cert ctx (b : block) ~at ~extent ~rextent
    (placements : placement list) : block =
  let stms = Array.of_list b.stms in
  let n = Array.length stms in
  st.arenas <- st.arenas + 1;
  st.packed <- st.packed + List.length placements;
  let arena = Ir.Names.fresh arena_base in
  emit_certs st cert ctx arena rextent placements;
  List.iter
    (fun p ->
      let delta =
        match p.p_m.m_promo with
        | Some pr ->
            st.promoted <- st.promoted + 1;
            P.add p.p_roff pr.pr_delta
        | None -> p.p_off
      in
      trace opts "pack: %s at offset %a of %s" p.p_m.m_name P.pp delta arena;
      for i = at to n - 1 do
        stms.(i) <- rebase_stm p.p_m.m_aliases p.p_m.m_name arena delta stms.(i)
      done)
    placements;
  let arena_stm = stm [ pat_elem arena TMem ] (EAlloc extent) in
  let res =
    List.map
      (fun a ->
        match a with
        | Var v
          when List.exists
                 (fun p -> p.p_m.m_name = v)
                 placements ->
            Var arena
        | a -> a)
      b.res
  in
  {
    stms =
      Array.to_list (Array.sub stms 0 at)
      @ arena_stm :: Array.to_list (Array.sub stms at (n - at));
    res;
  }

(* ---------------------------------------------------------------- *)
(* Per-block packing (nested blocks)                                 *)
(* ---------------------------------------------------------------- *)

let pack_block st opts cert ctx scalars mems (b : block) : block =
  let candidates, blocked = block_members scalars mems b in
  let candidates, aliased_out = dedup_aliases candidates in
  let blocked = blocked @ aliased_out in
  (* the arena allocation goes right after the last member EAlloc and
     must dominate every member's first reference; hoisting has moved
     the allocations to the block top, so this holds - when it does
     not, drop trailing allocations until it does *)
  let rec prune ms =
    match ms with
    | [] | [ _ ] -> ms
    | _ ->
        let min_first =
          List.fold_left (fun a m -> min a m.m_first) max_int ms
        and max_idx = List.fold_left (fun a m -> max a m.m_idx) (-1) ms in
        if max_idx < min_first then ms
        else prune (List.filter (fun m -> m.m_idx <> max_idx) ms)
  in
  let pruned = prune candidates in
  let placements, ext = plan st opts ctx pruned in
  match (placements, ext) with
  | _ :: _ :: _, Some (extent, rextent) ->
      st.unpacked <-
        st.unpacked + List.length blocked
        + (List.length candidates - List.length placements);
      let at =
        1 + List.fold_left (fun a p -> max a p.p_m.m_idx) (-1) placements
      in
      commit st opts cert ctx b ~at ~extent ~rextent placements
  | _ ->
      st.unpacked <-
        st.unpacked + List.length blocked + List.length candidates;
      b

(* ---------------------------------------------------------------- *)
(* Whole-program packing (the top level)                             *)
(* ---------------------------------------------------------------- *)

(* Pack the program's top block: its own members (result-escaping ones
   included, with open-ended intervals) together with the promotable
   members gathered from nested scopes.  A promoted member's interval
   collapses to its enclosing top-level statement - everything about
   it happens inside that one statement's subtree. *)
let pack_top st opts cert ctx scalars mems (p : prog) : block =
  let b = p.body in
  let scalars = accum_scalars scalars b in
  let mems = accum_mems mems b in
  let candidates, blocked =
    block_members ~allow_escape:true scalars mems b
  in
  let pcands = gather_promotable scalars mems b in
  (* a region the prover cannot evaluate at the top level (or whose
     placement would mention non-top names beyond the nest binders)
     stays local *)
  let top_names =
    List.fold_left
      (fun acc (pe : pat_elem) -> SS.add pe.pv acc)
      SS.empty p.params
    |> fun acc ->
    List.fold_left
      (fun acc (s : stm) ->
        List.fold_left (fun acc (pe : pat_elem) -> SS.add pe.pv acc) acc s.pat)
      acc b.stms
  in
  let top_ok poly nests =
    List.for_all
      (fun v ->
        SS.mem v top_names || List.exists (fun (w, _) -> w = v) nests)
      (P.vars poly)
  in
  let pcands =
    List.filter
      (fun pc ->
        top_ok pc.pc_region [] && top_ok pc.pc_delta pc.pc_nests
        && top_ok pc.pc_size [])
      pcands
  in
  let promoted_members =
    List.map
      (fun pc ->
        {
          m_idx = -1;
          m_name = pc.pc_name;
          m_size = pc.pc_region;
          m_rsize = pc.pc_region;
          m_first = pc.pc_top;
          m_last = pc.pc_top;
          m_aliases = pc.pc_aliases;
          m_promo =
            Some
              {
                pr_size = pc.pc_size;
                pr_delta = pc.pc_delta;
                pr_nests = pc.pc_nests;
                pr_loops = pc.pc_loops;
              };
        })
      pcands
  in
  let candidates, aliased_out =
    dedup_aliases (candidates @ promoted_members)
  in
  let blocked = blocked @ aliased_out in
  let rec prune ms =
    match ms with
    | [] | [ _ ] -> ms
    | _ ->
        let min_first =
          List.fold_left (fun a m -> min a m.m_first) max_int ms
        and max_idx = List.fold_left (fun a m -> max a m.m_idx) (-1) ms in
        if max_idx < min_first then ms
        else prune (List.filter (fun m -> m.m_idx <> max_idx) ms)
  in
  let pruned = prune candidates in
  (* promoted members that fail to place here fall back to the
     per-block phase, which does its own accounting - only top-local
     members are tallied as unpacked by this phase *)
  let locals ms = List.filter (fun m -> m.m_promo = None) ms in
  let give_up () =
    st.unpacked <-
      st.unpacked + List.length blocked + List.length (locals candidates);
    b
  in
  let placements, ext = plan st opts ctx pruned in
  match (placements, ext) with
  | _ :: _ :: _, Some (extent, rextent) ->
      let at =
        max
          (1 + List.fold_left (fun a p -> max a p.p_m.m_idx) (-1) placements)
          0
      in
      let min_first =
        List.fold_left (fun a p -> min a p.p_m.m_first) max_int placements
      in
      (* the extent must be evaluable where the arena is allocated *)
      let defined =
        List.fold_left
          (fun acc (pe : pat_elem) -> SS.add pe.pv acc)
          SS.empty p.params
        |> fun acc ->
        List.fold_left
          (fun acc (s : stm) ->
            List.fold_left
              (fun acc (pe : pat_elem) -> SS.add pe.pv acc)
              acc s.pat)
          acc
          (List.filteri (fun i _ -> i < at) b.stms)
      in
      let ready =
        List.for_all (fun v -> SS.mem v defined) (P.vars rextent)
      in
      if at > min_first || not ready then give_up ()
      else begin
        st.unpacked <-
          st.unpacked + List.length blocked
          + (List.length (locals candidates)
            - List.length (locals (List.map (fun p -> p.p_m) placements)));
        commit st opts cert ctx b ~at ~extent ~rextent placements
      end
  | _ -> give_up ()

(* ---------------------------------------------------------------- *)
(* Program walk                                                      *)
(* ---------------------------------------------------------------- *)

(* Pack this block (unless the whole-program planner already did),
   then recurse into sequential loops, conditionals and mapnest
   bodies with the prover context extended by the iteration and
   thread ranges.  Members the whole-program planner promoted have no
   annotations left, so per-block packing skips them naturally;
   in-kernel members it could not lift still pack into per-thread
   arenas here. *)
let rec walk ?(pack_here = true) st opts cert ctx scalars mems (b : block) :
    block =
  let scalars = accum_scalars scalars b in
  let mems = accum_mems mems b in
  let b =
    if pack_here then pack_block st opts cert ctx scalars mems b else b
  in
  let stms =
    List.map
      (fun s ->
        Chaos.probe "pack";
        let exp =
          match s.exp with
          | ELoop ({ var; bound; body; params } as lp) ->
              let ctx' =
                Pr.add_range ctx var ~lo:P.zero
                  ~hi:(P.sub (Reuse.resolve scalars bound) P.one) ()
              in
              let mems' = note_mems mems (List.map fst params) in
              ELoop { lp with body = walk st opts cert ctx' scalars mems' body }
          | EIf ({ tb; fb; _ } as i) ->
              EIf
                {
                  i with
                  tb = walk st opts cert ctx scalars mems tb;
                  fb = walk st opts cert ctx scalars mems fb;
                }
          | EMap { nest; body } ->
              let ctx' =
                List.fold_left
                  (fun c (v, bound) ->
                    Pr.add_range c v ~lo:P.zero
                      ~hi:(P.sub (Reuse.resolve scalars bound) P.one) ())
                  ctx nest
              in
              EMap { nest; body = walk st opts cert ctx' scalars mems body }
          | e -> e
        in
        { s with exp })
      b.stms
  in
  { b with stms }

let optimize ?(options = default_options) ?cert (p : prog) : prog * stats =
  let st = fresh_stats () in
  if not options.pack then (p, st)
  else
    let mems0 =
      List.fold_left
        (fun m (pe : pat_elem) ->
          match pe.pmem with
          | Some mi -> SM.add pe.pv mi.block m
          | None -> m)
        SM.empty p.params
    in
    let body = pack_top st options cert p.ctx P.SM.empty mems0 p in
    let p = { p with body } in
    let body =
      walk ~pack_here:false st options cert p.ctx P.SM.empty mems0 p.body
    in
    ({ p with body }, st)
