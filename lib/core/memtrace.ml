(* Memtrace: the dynamic sibling of Memlint.

   Memlint proves, statically, that the memory annotations are
   consistent; this module checks that an *execution* stayed inside
   them.  It replays a Trace.t (collected by Gpu.Exec.run ~trace:true)
   and cross-checks three claims the whole optimization story rests
   on:

   - footprint: every offset a kernel actually wrote (read) lies in
     the union of its declared, statically-annotated write (read)
     regions - the LMAD reference sets soundly over-approximate the
     runtime accesses;
   - circuit: every copy the executor elided really was a no-op (the
     source and destination images coincide, element for element), and
     every copy it did perform within one block moved between disjoint
     regions (overlap would make the element order observable);
   - last-use: no kernel or copy reads a block's dead contents - after
     the last last-use marker of the arrays living in it and before
     any overwrite - so the liveness the short-circuiting pass relied
     on was real.

   All three are exact checks over concrete integers: unlike the
   static linter there is no Undecided verdict.  What *can* limit
   coverage is the trace itself: declared regions that mention
   per-thread variables degrade to whole-block claims, and blocks
   allocated inside a kernel (thread-private scratch) are exempt; both
   are tallied as "assumed" so a report says how much was actually
   proven. *)

module IS = Set.Make (Int)

type violation = {
  rule : string; (* footprint | circuit | last-use *)
  at : string; (* kernel label / copy description *)
  detail : string;
}

type report = {
  program : string;
  variant : string;
  exact : bool;
  kernels : int;
  copies : int;
  elided : int;
  offsets_checked : int; (* accesses confirmed inside a declared region *)
  offsets_assumed : int; (* covered only by a whole-block or fresh claim *)
  violations : violation list;
}

let ok r = r.violations = []

let pp_violation ppf v =
  Fmt.pf ppf "[%s] %s: %s" v.rule v.at v.detail

let pp_report ppf r =
  let verdict =
    if ok r then Fmt.styled (`Fg `Green) Fmt.string
    else Fmt.styled (`Fg `Red) Fmt.string
  in
  Fmt.pf ppf
    "@[<v2>memtrace %s (%s, %s): %a@,\
     kernels %d, copies %d (%d elided), offsets: %d checked, %d assumed"
    r.program r.variant
    (if r.exact then "exact" else "sampled")
    verdict
    (if ok r then "clean" else "VIOLATIONS")
    r.kernels r.copies r.elided r.offsets_checked r.offsets_assumed;
  List.iter (fun v -> Fmt.pf ppf "@,- %a" pp_violation v) r.violations;
  Fmt.pf ppf "@]"

(* ---------------------------------------------------------------- *)
(* The checks                                                        *)
(* ---------------------------------------------------------------- *)

(* The declared claim on one block: the union of the enumerable
   regions, plus a flag for footprints that degraded to whole-block
   (those allow anywhere in the block, so offsets outside the
   enumerable part are merely "assumed", never violations). *)
let allowed_set (fps : Trace.footprint list) (bid : int) :
    IS.t * (* has_whole_block *) bool =
  List.fold_left
    (fun ((s, whole) as acc) f ->
      if f.Trace.fbid <> bid then acc
      else
        match f.Trace.fregion with
        | None -> (s, true)
        | Some ls ->
            ( List.fold_left
                (fun s l ->
                  List.fold_left
                    (fun s o -> IS.add o s)
                    s
                    (Lmads.Lmad.concrete_points l))
                s ls,
              whole ))
    (IS.empty, false) fps

let mentions (fps : Trace.footprint list) bid =
  List.exists (fun f -> f.Trace.fbid = bid) fps

let check_kernel ~checked ~assumed ~violations (k : Trace.kernel) =
  let is_fresh bid = List.mem bid k.Trace.fresh in
  let check_side side declared (touched : (int * int list) list) =
    List.iter
      (fun (bid, offs) ->
        if is_fresh bid then assumed := !assumed + List.length offs
        else if not (mentions declared bid) then
          violations :=
            {
              rule = "footprint";
              at = k.Trace.klabel;
              detail =
                Printf.sprintf
                  "kernel %s blk%d (%d offsets) without declaring any %s \
                   region there"
                  side bid (List.length offs) side;
            }
            :: !violations
        else
          let allow, whole = allowed_set declared bid in
          let inside, outside =
            List.partition (fun o -> IS.mem o allow) offs
          in
          checked := !checked + List.length inside;
          if whole then assumed := !assumed + List.length outside
          else if outside <> [] then
            violations :=
              {
                rule = "footprint";
                at = k.Trace.klabel;
                detail =
                  Printf.sprintf
                    "%d %s offset(s) of blk%d escape the declared region \
                     (first: %d)"
                    (List.length outside) side bid (List.hd outside);
              }
              :: !violations)
      touched
  in
  check_side "write" k.Trace.declared_writes k.Trace.writes;
  (* a kernel may read back what it declared it would write *)
  check_side "read"
    (k.Trace.declared_reads @ k.Trace.declared_writes)
    k.Trace.reads

let describe_copy (c : Trace.copy) =
  Printf.sprintf "copy blk%d->blk%d (%.0fB)" c.Trace.csrc c.Trace.cdst
    c.Trace.cbytes

let check_copy ~violations (c : Trace.copy) =
  let open Trace in
  if c.celided then begin
    if c.csrc <> c.cdst then
      violations :=
        {
          rule = "circuit";
          at = describe_copy c;
          detail = "elided although source and destination blocks differ";
        }
        :: !violations
    else
      let si = Trace.image c.csix c.cshape
      and di = Trace.image c.cdix c.cshape in
      if si <> di then
        violations :=
          {
            rule = "circuit";
            at = describe_copy c;
            detail =
              Printf.sprintf
                "elided but images differ (%d vs %d offsets; src first %d, \
                 dst first %d)"
                (List.length si) (List.length di)
                (match si with o :: _ -> o | [] -> -1)
                (match di with o :: _ -> o | [] -> -1);
          }
          :: !violations
  end
  else if c.csrc = c.cdst then begin
    let si = IS.of_list (Trace.image c.csix c.cshape)
    and di = IS.of_list (Trace.image c.cdix c.cshape) in
    let inter = IS.inter si di in
    if not (IS.is_empty inter) then
      violations :=
        {
          rule = "circuit";
          at = describe_copy c;
          detail =
            Printf.sprintf
              "performed copy within one block overlaps itself (%d shared \
               offsets, first %d)"
              (IS.cardinal inter) (IS.min_elt inter);
        }
        :: !violations
  end

(* Last-use: a block's *contents* are dead after the final last-use
   marker that mentions it.  Short-circuiting reuses dead blocks on
   purpose, so a later write legitimately revives the block - the
   violation is reading dead contents *before* anything overwrote
   them.  A kernel that both reads and writes a block is treated as
   the reviver (its reads may be of its own writes; intra-kernel
   ordering is not traced). *)
let check_last_uses ~exact ~violations (events : Trace.event list) =
  let death = Hashtbl.create 16 in
  List.iteri
    (fun i e ->
      match e with
      | Trace.Last_use { bid; _ } -> Hashtbl.replace death bid i
      | _ -> ())
    events;
  let revived = Hashtbl.create 16 in
  List.iteri
    (fun i e ->
      (* past the final marker for bid (regardless of revival) *)
      let past_death bid =
        match Hashtbl.find_opt death bid with
        | Some d -> i > d
        | None -> false
      in
      let dead bid = past_death bid && not (Hashtbl.mem revived bid) in
      (* only a write *after* the death counts as a revival *)
      let revive bid = if past_death bid then Hashtbl.replace revived bid () in
      match e with
      | Trace.Kernel k ->
          let writes bid =
            List.exists
              (fun (b, offs) -> b = bid && offs <> [])
              k.Trace.writes
          in
          if exact then
            List.iter
              (fun (bid, offs) ->
                if offs <> [] && dead bid && not (writes bid) then
                  violations :=
                    {
                      rule = "last-use";
                      at = k.Trace.klabel;
                      detail =
                        Printf.sprintf
                          "kernel reads blk%d after its last static use \
                           (contents never overwritten)"
                          bid;
                    }
                    :: !violations)
              k.Trace.reads;
          if exact then
            List.iter
              (fun (bid, offs) -> if offs <> [] then revive bid)
              k.Trace.writes
          else
            (* sampled traces record no offsets; fall back to the
               declared write footprints as revival evidence *)
            List.iter
              (fun f -> revive f.Trace.fbid)
              k.Trace.declared_writes
      | Trace.Copy c ->
          if (not c.Trace.celided) && dead c.Trace.csrc then
            violations :=
              {
                rule = "last-use";
                at = describe_copy c;
                detail =
                  Printf.sprintf
                    "copy reads blk%d after its last static use (contents \
                     never overwritten)"
                    c.Trace.csrc;
              }
              :: !violations;
          (* an elided copy redefines the destination logically - its
             new value is, by the elision proof, already in place *)
          revive c.Trace.cdst
      | _ -> ())
    events

(* ---------------------------------------------------------------- *)
(* Entry                                                             *)
(* ---------------------------------------------------------------- *)

let check (t : Trace.t) : report =
  let checked = ref 0 and assumed = ref 0 in
  let violations = ref [] in
  let events = Trace.events t in
  let exact = Trace.exact t in
  List.iter
    (fun e ->
      match e with
      | Trace.Kernel k -> check_kernel ~checked ~assumed ~violations k
      | Trace.Copy c -> check_copy ~violations c
      | _ -> ())
    events;
  check_last_uses ~exact ~violations events;
  let copies = Trace.copies t in
  {
    program = Trace.program t;
    variant = Trace.variant t;
    exact;
    kernels = List.length (Trace.kernels t);
    copies = List.length copies;
    elided = List.length (List.filter (fun c -> c.Trace.celided) copies);
    offsets_checked = !checked;
    offsets_assumed = !assumed;
    violations = List.rev !violations;
  }
