(** Memlint: a static verifier for the memory IR.

    Checks, per statement, the invariants every pipeline pass must
    preserve.  Violations are grouped into rule classes (the [rule]
    field of {!violation}):

    - [alloc-dominance] - every memory annotation names a block whose
      allocation is in scope at the use site, and the annotation's
      LMAD footprint provably fits in [\[0, size)] of that block.
      Catches dropped or mis-hoisted allocations.
    - [footprint] - the reference set of an index function stays
      inside its block; discharged with the same {!module:Symalg.Prover}
      the optimizer uses, under the program's size context.
    - [layout] - a change-of-layout operation (transpose, reshape,
      slice, reverse) produces an array in its operand's block, with
      the correspondingly transformed index function.  Layout ops are
      O(1) metadata surgery; claiming a different block would smuggle
      in a copy.
    - [last-use] - the source of a short-circuited copy is lastly used
      at the circuit point: no statement after the rebased copy may
      read the source variable, whose contents the destination's
      writes are about to clobber.
    - [existential] - [if]/[loop] results follow memintro's
      [mem, witness..., array] grouping, branch witnesses instantiate
      the anti-unified index function, and both branches agree on the
      existential block.
    - [write-race] - per-thread mapnest writes to enclosing memory are
      pairwise disjoint across threads (the section V-B obligation);
      LUD's interior-block races exercise the prover's
      triangular-bound saturation here.
    - [reuse] - the {!module:Reuse} pass's contract: two arrays bound at the
      same lexical level into one block must not have overlapping live
      ranges, unless they alias each other, the data demonstrably
      flows between them through the block (a statement reading one
      while binding an array into the block - the short-circuited
      concat/update/mapnest circuits), or their footprints are proved
      disjoint.  An [Error] only when the clobber is total (equal
      memory-side LMADs); undecided separations are [Warning]s.

    Verdicts are three-valued: [Error] only for *provable* violations,
    [Warning] for obligations the sound-but-incomplete prover cannot
    decide.  A correct program never errors; the seven benchmark
    programs lint clean at every pipeline stage.

    Memlint is the static half of the verification stack;
    {!module:Memtrace} replays executions against the same annotations
    dynamically.  The
    narrative documentation, with a worked NW example, lives in
    [docs/VERIFICATION.md]. *)

type severity = Error | Warning

type violation = {
  severity : severity;
  rule : string;
      (** one of [alloc-dominance], [footprint], [layout], [last-use],
          [existential], [write-race], [reuse] *)
  binding : string;  (** the pattern variable the violation is about *)
  detail : string;
}

type report = {
  program : string;
  stage : string;  (** pipeline stage the lint ran after, if any *)
  stms : int;  (** statements traversed *)
  annotations : int;  (** memory annotations checked *)
  bounds_proved : int;  (** footprints proved within their block *)
  bounds_undecided : int;
  races_proved : int;  (** mapnest write sets proved thread-disjoint *)
  races_undecided : int;
  reuse_proved : int;
      (** same-block live-range overlaps proved footprint-disjoint *)
  reuse_undecided : int;
  reuse_holes : int;
      (** same-block pairs accepted through the liveness exemption
          (the earlier binding dies before the later writes): the
          lifetime holes the packing pass certifies with
          [hole-disjoint] claims, counted so hole sharing stays
          observable to the lint surface *)
  violations : violation list;
}

val check : ?stage:string -> Ir.Ast.prog -> report
(** Lint a program.  The input is cloned (and its last-use annotations
    recomputed on the clone), so the argument is never mutated.  A
    program without any memory annotations (pre-memintro) is vacuously
    clean. *)

val ok : report -> bool
(** No errors (warnings permitted). *)

val errors : report -> violation list
val warnings : report -> violation list
val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit
(** Shared {!module:Report}-style section, surfaced by [repro lint]. *)
