(** Memlint: a static verifier for the memory IR.

    Checks, per statement, the invariants every pipeline pass must
    preserve: alloc dominance and sizing (annotations name in-scope
    blocks and their LMAD footprints provably fit in [0, size)),
    alias/annotation consistency (change-of-layout operations share
    their operand's block with the transformed index function; a
    short-circuited copy source must be lastly used), existential
    well-formedness (memintro's [mem, witness..., array] grouping of
    [if]/[loop] results, with branch witnesses instantiating the
    anti-unified index function), and mapnest write races (per-thread
    writes to enclosing memory pairwise disjoint across threads).

    Verdicts are three-valued: [Error] only for *provable* violations,
    [Warning] for obligations the sound-but-incomplete prover cannot
    decide.  A correct program never errors; the seven benchmark
    programs lint clean at every pipeline stage. *)

type severity = Error | Warning

type violation = {
  severity : severity;
  rule : string;
      (** one of [alloc-dominance], [footprint], [layout], [last-use],
          [existential], [write-race] *)
  binding : string;  (** the pattern variable the violation is about *)
  detail : string;
}

type report = {
  program : string;
  stage : string;  (** pipeline stage the lint ran after, if any *)
  stms : int;  (** statements traversed *)
  annotations : int;  (** memory annotations checked *)
  bounds_proved : int;  (** footprints proved within their block *)
  bounds_undecided : int;
  races_proved : int;  (** mapnest write sets proved thread-disjoint *)
  races_undecided : int;
  violations : violation list;
}

val check : ?stage:string -> Ir.Ast.prog -> report
(** Lint a program.  The input is cloned (and its last-use annotations
    recomputed on the clone), so the argument is never mutated.  A
    program without any memory annotations (pre-memintro) is vacuously
    clean. *)

val ok : report -> bool
(** No errors (warnings permitted). *)

val errors : report -> violation list
val warnings : report -> violation list
val pp_violation : Format.formatter -> violation -> unit

val pp_report : Format.formatter -> report -> unit
(** Shared {!Report}-style section, surfaced by [repro lint]. *)
