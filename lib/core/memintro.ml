(* Memory introduction (section IV-C).

   Rewrites a memory-agnostic program into one where every array binding
   carries a memory block and an index function:

   - statements creating fresh arrays get a preceding [EAlloc] and a
     row-major index function;
   - change-of-layout statements reuse the operand's block with a
     transformed index function (no allocation);
   - [if] and [loop] results living in branch-dependent memory are
     existentialized: the pattern binds the memory block and any scalars
     produced by anti-unification of the branch index functions, and the
     branches return the corresponding witnesses (paper Fig. 5).

   Each array result of an [if]/[loop] is grouped as
   [mem, witness..., array] consistently in the parameter list, the
   body/branch results, and the binding pattern, which keeps the three
   aligned by construction.

   Stripping all memory annotations (and [EAlloc]/[TMem] bindings)
   yields the original program's semantics; the reference interpreter
   simply carries opaque tokens for memory values. *)

open Ir.Ast
module P = Symalg.Poly
module Ixfn = Lmads.Ixfn
module Lmad = Lmads.Lmad
module SM = Map.Make (String)

exception Mem_error of string

let err fmt = Fmt.kstr (fun s -> raise (Mem_error s)) fmt

type env = {
  mems : mem_info SM.t; (* array var -> memory *)
  types : typ SM.t;
}

let lookup_mem env v =
  match SM.find_opt v env.mems with
  | Some m -> m
  | None -> err "memintro: no memory for array %s" v

let bind_mem env pe mem =
  pe.pmem <- Some mem;
  {
    mems = SM.add pe.pv mem env.mems;
    types = SM.add pe.pv pe.pt env.types;
  }

let bind_plain env pe = { env with types = SM.add pe.pv pe.pt env.types }

(* Fresh allocation for a pattern element of array type; returns the
   alloc statement and the memory info. *)
let alloc_for pe =
  match pe.pt with
  | TArr (_, shape) ->
      let mname = Ir.Names.fresh (pe.pv ^ "_mem") in
      let size = P.prod shape in
      let alloc = stm [ pat_elem mname TMem ] (EAlloc size) in
      (alloc, { block = mname; ixfn = Ixfn.row_major shape })
  | _ -> err "memintro: alloc for non-array %s" pe.pv

let slice_to_lmad_dims (sds : slice_dim list) =
  List.map
    (function
      | SFix i -> Lmad.Fix i
      | SRange { start; len; step } -> Lmad.Range { start; len; step })
    sds

(* The index function of a slice of an array with index function [ixfn]. *)
let sliced_ixfn ctx (slc : slice) (ixfn : Ixfn.t) : Ixfn.t =
  match slc with
  | STriplet sds -> Ixfn.slice (slice_to_lmad_dims sds) ixfn
  | SLmad l -> (
      match Ixfn.lmad_slice ctx ~slc:l ixfn with
      | Some ix -> ix
      | None -> err "memintro: LMAD slice of non-flattenable layout")

(* Materialize a polynomial as an atom, creating an [EIdx] statement if
   needed.  Returns (statements, atom). *)
let poly_atom (p : P.t) : stm list * atom =
  match P.to_const_opt p with
  | Some c -> ([], Int c)
  | None -> (
      match P.monos p with
      | [ { coeff = 1; pows = [ (v, 1) ] } ] -> ([], Var v)
      | _ ->
          let v = Ir.Names.fresh "w" in
          ([ stm [ pat_elem v (TScalar I64) ] (EIdx p) ], Var v))

let poly_atoms ps =
  let stms, atoms = List.split (List.map poly_atom ps) in
  (List.concat stms, atoms)

let cert_emit cert rw ?ctx claim =
  match cert with Some r -> Certify.emit r rw ?ctx claim | None -> ()

(* ---------------------------------------------------------------- *)
(* Main traversal                                                    *)
(* ---------------------------------------------------------------- *)

let rec transform_block cert ctx env (b : block) : block * env =
  let stms, env =
    List.fold_left
      (fun (acc, env) s ->
        let new_stms, env = transform_stm cert ctx env s in
        (List.rev_append new_stms acc, env))
      ([], env) b.stms
  in
  ({ b with stms = List.rev stms }, env)

and transform_stm cert ctx env (s : stm) : stm list * env =
  let fresh_result s =
    let allocs, env =
      List.fold_left
        (fun (allocs, env) pe ->
          if is_array_typ pe.pt then (
            let alloc, mem = alloc_for pe in
            cert_emit cert
              (Certify.Mem_intro { block = mem.block; binding = pe.pv })
              ~ctx
              (Certify.Footprint_fits { block = mem.block; arr = pe.pv });
            (alloc :: allocs, bind_mem env pe mem))
          else (allocs, bind_plain env pe))
        ([], env) s.pat
    in
    (List.rev allocs @ [ s ], env)
  in
  let view_result v f =
    match s.pat with
    | [ pe ] ->
        let m = lookup_mem env v in
        let mem = { m with ixfn = f m.ixfn } in
        ([ s ], bind_mem env pe mem)
    | _ -> err "memintro: view with multi-pattern"
  in
  match s.exp with
  | EIota _ | EScratch _ | EReplicate _ | ECopy _ | EConcat _ ->
      fresh_result s
  | EAtom (Var v) when s.pat <> [] && is_array_typ (List.hd s.pat).pt ->
      view_result v Fun.id
  | ESlice (v, slc) -> view_result v (sliced_ixfn ctx slc)
  | ETranspose (v, perm) -> view_result v (Ixfn.permute perm)
  | EReverse (v, d) -> view_result v (Ixfn.reverse d)
  | EReshape (v, new_shape) -> view_result v (Ixfn.reshape ctx new_shape)
  | EUpdate { dst; _ } -> (
      match s.pat with
      | [ pe ] ->
          let m = lookup_mem env dst in
          ([ s ], bind_mem env pe m)
      | _ -> err "memintro: update with multi-pattern")
  | EMap { nest; body } ->
      let env_body =
        List.fold_left
          (fun env (v, _) -> bind_plain env (pat_elem v (TScalar I64)))
          env nest
      in
      let body, _ = transform_block cert ctx env_body body in
      fresh_result { s with exp = EMap { nest; body } }
  | ELoop { params; var; bound; body } ->
      transform_loop cert ctx env s params var bound body
  | EIf { cond; tb; fb } -> transform_if cert ctx env s cond tb fb
  | EAtom _ | EBin _ | ECmp _ | EUn _ | EIdx _ | EIndex _ | EReduce _
  | EArgmin _ | EAlloc _ ->
      ([ s ], List.fold_left bind_plain env s.pat)

(* Loops (Fig. 5b).  For each array-typed loop parameter:
   - a TMem parameter precedes it (initialized with the initializer's
     block, rebound each iteration to the body result's block);
   - witness i64 parameters carry the existential scalars of the
     anti-unified index function;
   - the parameter's annotation is the anti-unified index function over
     the witness parameter names.
   The statement's binding pattern mirrors the grouping. *)
and transform_loop cert ctx env s params var bound body =
  (* Provisional body environment: array params annotated with their
     initializer's index function in a fresh block name.  One transform
     round suffices: the supported programs rebuild their loop results,
     so the result's index function does not depend on the provisional
     annotation's precise shape. *)
  let annotated =
    List.map
      (fun (pe, init) ->
        if is_array_typ pe.pt then
          match init with
          | Var iv ->
              let im = lookup_mem env iv in
              let mname = Ir.Names.fresh (pe.pv ^ "_mem") in
              `Arr (pe, init, im, mname)
          | _ -> err "memintro: loop array init must be a variable"
        else `Scalar (pe, init))
      params
  in
  let env_body =
    List.fold_left
      (fun env p ->
        match p with
        | `Arr (pe, _, (im : mem_info), mname) ->
            bind_mem env pe { block = mname; ixfn = im.ixfn }
        | `Scalar (pe, _) -> bind_plain env pe)
      (bind_plain env (pat_elem var (TScalar I64)))
      annotated
  in
  let body, env_after = transform_block cert ctx env_body body in
  if List.length body.res <> List.length params then
    err "memintro: loop arity mismatch";
  (* Per-parameter groups. *)
  let groups =
    List.map2
      (fun p res ->
        match p with
        | `Scalar (pe, init) -> `Scalar (pe, init, res)
        | `Arr (pe, init, im, mname) -> (
            match res with
            | Var rv ->
                let rm = lookup_mem env_after rv in
                let au =
                  match Lmads.Antiunify.ixfns im.ixfn rm.ixfn with
                  | Some r -> r
                  | None ->
                      err
                        "memintro: loop %s: anti-unification failed (%a vs \
                         %a); insert an explicit copy"
                        pe.pv Ixfn.pp im.ixfn Ixfn.pp rm.ixfn
                in
                `Arr (pe, init, im, mname, rm, res, au)
            | _ -> err "memintro: loop body must return array variables"))
      annotated body.res
  in
  (* Assemble loop params, body results, binding pattern and pre-stms,
     preserving per-parameter grouping [mem; wits...; orig]. *)
  let pre_stms = ref [] in
  let body_extra = ref [] in
  let loop_params = ref [] in
  let body_res = ref [] in
  let bind_pats = ref [] in
  let env = ref env in
  List.iter
    (fun g ->
      match g with
      | `Scalar (pe, init, res) ->
          loop_params := !loop_params @ [ (pe, init) ];
          body_res := !body_res @ [ res ];
          bind_pats := !bind_pats @ [ `Orig ]
      | `Arr (pe, init, (im : mem_info), mname, (rm : mem_info), res, au) ->
          let bindings = au.Lmads.Antiunify.bindings in
          (* memory param *)
          loop_params :=
            !loop_params @ [ (pat_elem mname TMem, Var im.block) ];
          body_res := !body_res @ [ Var rm.block ];
          (* witness params *)
          let init_stms, init_atoms =
            poly_atoms (List.map (fun b -> b.Lmads.Antiunify.left) bindings)
          in
          let res_stms, res_atoms =
            poly_atoms (List.map (fun b -> b.Lmads.Antiunify.right) bindings)
          in
          pre_stms := !pre_stms @ init_stms;
          body_extra := !body_extra @ res_stms;
          List.iter2
            (fun b a ->
              loop_params :=
                !loop_params
                @ [ (pat_elem b.Lmads.Antiunify.exist (TScalar I64), a) ])
            bindings init_atoms;
          body_res := !body_res @ res_atoms;
          (* the array param itself, annotated with the lgg *)
          pe.pmem <- Some { block = mname; ixfn = au.Lmads.Antiunify.ixfn };
          loop_params := !loop_params @ [ (pe, init) ];
          body_res := !body_res @ [ res ];
          (* binding pattern: fresh mem + witness names + original pe *)
          let mem_r = pat_elem (Ir.Names.fresh (mname ^ "_r")) TMem in
          let wit_rs =
            List.map
              (fun b -> pat_elem (Ir.Names.fresh b.Lmads.Antiunify.exist) (TScalar I64))
              bindings
          in
          let subst =
            List.fold_left2
              (fun acc b wr -> P.SM.add b.Lmads.Antiunify.exist (P.var wr.pv) acc)
              P.SM.empty bindings wit_rs
          in
          let out_ixfn = Ixfn.subst_map subst au.Lmads.Antiunify.ixfn in
          bind_pats :=
            !bind_pats
            @ [ `Mem mem_r ]
            @ List.map (fun w -> `Wit w) wit_rs
            @ [ `Annot (mem_r.pv, out_ixfn) ])
    groups;
  (* The original statement pattern's array elements receive the
     existential memory; scalars pass through.  We rebuild the pattern
     in group order, reusing the original pattern elements. *)
  let orig_pats = s.pat in
  if List.length orig_pats <> List.length groups then
    err "memintro: loop pattern arity mismatch";
  let final_pats = ref [] in
  (* Walk bind_pats; `Annot and scalar `Plain consume one original
     pattern element (the next result), witness `Plain binders do not. *)
  let origs = ref orig_pats in
  let take_orig () =
    match !origs with
    | o :: rest ->
        origs := rest;
        o
    | [] -> err "memintro: pattern underflow"
  in
  let cur_wits = ref [] in
  List.iter
    (fun bp ->
      match bp with
      | `Mem pe ->
          final_pats := !final_pats @ [ pe ];
          cur_wits := [];
          env := { !env with types = SM.add pe.pv TMem !env.types }
      | `Wit pe ->
          final_pats := !final_pats @ [ pe ];
          cur_wits := !cur_wits @ [ pe.pv ];
          env := bind_plain !env pe
      | `Orig ->
          let o = take_orig () in
          final_pats := !final_pats @ [ o ];
          env := bind_plain !env o
      | `Annot (mem_name, out_ixfn) ->
          let o = take_orig () in
          final_pats := !final_pats @ [ o ];
          cert_emit cert
            (Certify.Exist_intro { binding = o.pv })
            ~ctx
            (Certify.Grouped { mem = mem_name; wits = !cur_wits; arr = o.pv });
          env := bind_mem !env o { block = mem_name; ixfn = out_ixfn })
    !bind_pats;
  let body = { stms = body.stms @ !body_extra; res = !body_res } in
  let new_stm =
    stm !final_pats (ELoop { params = !loop_params; var; bound; body })
  in
  (!pre_stms @ [ new_stm ], !env)

(* Ifs (Fig. 5a): same grouping per array result. *)
and transform_if cert ctx env s cond tb fb =
  let tb, env_t = transform_block cert ctx env tb in
  let fb, env_f = transform_block cert ctx env fb in
  if
    List.length tb.res <> List.length s.pat
    || List.length fb.res <> List.length s.pat
  then err "memintro: if arity mismatch";
  let env = ref env in
  let final_pats = ref [] in
  let res_t = ref [] and res_f = ref [] in
  let extra_t = ref [] and extra_f = ref [] in
  List.iteri
    (fun k pe ->
      let rt = List.nth tb.res k and rf = List.nth fb.res k in
      if not (is_array_typ pe.pt) then (
        final_pats := !final_pats @ [ pe ];
        res_t := !res_t @ [ rt ];
        res_f := !res_f @ [ rf ];
        env := bind_plain !env pe)
      else
        match (rt, rf) with
        | Var vt, Var vf ->
            let mt = lookup_mem env_t vt and mf = lookup_mem env_f vf in
            let au =
              match Lmads.Antiunify.ixfns mt.ixfn mf.ixfn with
              | Some r -> r
              | None -> err "memintro: if %s: anti-unification failed" pe.pv
            in
            let bindings = au.Lmads.Antiunify.bindings in
            let mem_pat = pat_elem (Ir.Names.fresh (pe.pv ^ "_mem")) TMem in
            let wit_pats =
              List.map
                (fun b -> pat_elem b.Lmads.Antiunify.exist (TScalar I64))
                bindings
            in
            let t_stms, t_atoms =
              poly_atoms (List.map (fun b -> b.Lmads.Antiunify.left) bindings)
            in
            let f_stms, f_atoms =
              poly_atoms (List.map (fun b -> b.Lmads.Antiunify.right) bindings)
            in
            extra_t := !extra_t @ t_stms;
            extra_f := !extra_f @ f_stms;
            res_t := !res_t @ [ Var mt.block ] @ t_atoms @ [ rt ];
            res_f := !res_f @ [ Var mf.block ] @ f_atoms @ [ rf ];
            final_pats := !final_pats @ [ mem_pat ] @ wit_pats @ [ pe ];
            cert_emit cert
              (Certify.Exist_intro { binding = pe.pv })
              ~ctx
              (Certify.Grouped
                 {
                   mem = mem_pat.pv;
                   wits = List.map (fun w -> w.pv) wit_pats;
                   arr = pe.pv;
                 });
            env := { !env with types = SM.add mem_pat.pv TMem !env.types };
            List.iter (fun w -> env := bind_plain !env w) wit_pats;
            env :=
              bind_mem !env pe
                { block = mem_pat.pv; ixfn = au.Lmads.Antiunify.ixfn }
        | _ -> err "memintro: if returning non-variable array %s" pe.pv)
    s.pat;
  let tb = { stms = tb.stms @ !extra_t; res = !res_t } in
  let fb = { stms = fb.stms @ !extra_f; res = !res_f } in
  ([ stm !final_pats (EIf { cond; tb; fb }) ], !env)

(* ---------------------------------------------------------------- *)
(* Entry point                                                        *)
(* ---------------------------------------------------------------- *)

let introduce ?cert (p : prog) : prog =
  let env =
    List.fold_left
      (fun env pe ->
        match pe.pt with
        | TArr (_, shape) ->
            (* input arrays arrive in their own memory, row-major *)
            let mname = pe.pv ^ "_mem" in
            let mem = { block = mname; ixfn = Ixfn.row_major shape } in
            pe.pmem <- Some mem;
            {
              mems = SM.add pe.pv mem env.mems;
              types = SM.add mname TMem (SM.add pe.pv pe.pt env.types);
            }
        | _ -> bind_plain env pe)
      { mems = SM.empty; types = SM.empty }
      p.params
  in
  let body, _ = transform_block cert p.ctx env p.body in
  { p with body }
