(** Dead-allocation cleanup.

    Removes [EAlloc] statements whose block is referenced by no memory
    annotation and no expression - the blocks orphaned when
    short-circuiting rebases their arrays into destination memory.
    Realizes the footprint motivation of section I; the savings show up
    in the executor's allocation counters and the benchmark harness's
    footprint table. *)

val run : ?cert:Certify.recorder -> Ir.Ast.prog -> Ir.Ast.prog * int
(** The cleaned program and the number of allocations removed.  With
    [?cert], every removed allocation emits an
    {!constructor:Certify.claim.Unreferenced} obligation (under a
    {!constructor:Certify.rewrite.Dead_removal} rewrite): zero
    remaining references in the pre program, gone in the post. *)
