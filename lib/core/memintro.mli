(** Memory introduction (section IV-C).

    Rewrites a memory-agnostic program so that every array binding
    carries a memory block and an index function: fresh-array creations
    get an [EAlloc] and a row-major layout; change-of-layout statements
    reuse the operand's block with a transformed index function; [if]
    and [loop] results are existentialized, their patterns binding the
    memory block and the anti-unification witnesses (Fig. 5), each array
    result grouped as [mem, witnesses..., array] consistently across
    parameters, results and patterns.

    The annotations are a semantic no-op: stripping them (and the
    [EAlloc]/[TMem] plumbing) recovers the original program, which is
    how the reference interpreter treats the output. *)

exception Mem_error of string

val introduce : ?cert:Certify.recorder -> Ir.Ast.prog -> Ir.Ast.prog
(** With [?cert], every introduced allocation emits a
    {!constructor:Certify.claim.Footprint_fits} obligation (under a
    {!constructor:Certify.rewrite.Mem_intro} rewrite) and every
    existentialized [if]/[loop] result a
    {!constructor:Certify.claim.Grouped} obligation (under
    {!constructor:Certify.rewrite.Exist_intro}), re-checked by the
    independent {!val:Certify.check} driver.

    @raise Mem_error on unsupported shapes (e.g. an anti-unification
    failure that would need a normalizing copy the caller did not
    insert). *)
