(** Array short-circuiting (section V): the paper's central
    optimization.

    At each circuit point - [let y\[W\] = b] with [b] lastly used, a
    [concat] of lastly-used operands (Fig. 4a), or the implicit write of
    a mapnest body result (Fig. 6b) - the pass attempts to rebase the
    candidate (and every variable in an alias relation with it,
    property 3) into the destination's memory block with the
    appropriately sliced index function, after verifying with the LMAD
    non-overlap test that no write through the rebased chain can touch a
    location the destination's memory still serves (property 4,
    section V-B).  Success only rewrites memory annotations; the
    executor then recognizes source = destination at the circuit point
    and skips the copy.

    Loops are handled per Fig. 5b (parameter, initializer and body
    result all rebased; cross-iteration safety via whole-loop unions or
    the refined [U^{>i}] check of Fig. 7b), ifs per Fig. 5a (each branch
    result circuited within its branch), and transitive chains per
    Fig. 6a (concat operands re-attempted against the rebased result;
    failed candidates are retried in a later round once other circuits
    have made progress). *)

type stats = {
  mutable candidates : int;  (** circuit points examined *)
  mutable succeeded : int;  (** candidates fully rebased *)
  mutable overlap_checks : int;  (** LMAD non-overlap queries issued *)
  mutable rebased_vars : int;  (** variables whose annotation changed *)
}

val fresh_stats : unit -> stats

val pp_stats : Format.formatter -> stats -> unit
(** Render the statistics as a titled key/value section
    (shared {!Report} style, surfaced by [repro table --verbose]). *)

type options = {
  verbose : bool;
      (** Trace circuit attempts and failure reasons to stderr. *)
  enable_refinement : bool;
      (** Ablation switch: the per-iteration ([U^{>i}] vs [W^i],
          Fig. 7b) and per-thread (mapnest) refinements of section V-B.
          Disabled, only the whole-loop/whole-nest union checks
          remain. *)
  split_depth : int;
      (** Ablation switch: recursion budget of the dimension-splitting
          heuristic in the non-overlap test (Fig. 8); 0 disables
          splitting. *)
}
(** Per-run configuration, threaded through the pass rather than held
    in mutable globals, so ablation and lint runs cannot leak state
    into each other. *)

val default_options : options
(** [{ verbose = false; enable_refinement = true; split_depth = 3 }] *)

val optimize :
  ?options:options ->
  ?rounds:int ->
  ?cert:Certify.recorder ->
  Ir.Ast.prog ->
  Ir.Ast.prog * stats
(** Run the pass over a memory-annotated program (in place: only [pmem]
    annotations are mutated), for [rounds] fixpoint rounds (transitive
    chaining).  Returns the same program and the pass statistics.

    With [cert], every successful circuit emits its proof obligations -
    the last-use requirement, each incremental non-overlap check the
    rewrite relied on (with the prover context it was discharged
    under), and the final annotation of every rebased variable - for
    independent re-validation by {!Certify.check}.  Failed attempts
    leave no obligations: the claim buffer is rolled back together with
    the annotation table. *)
