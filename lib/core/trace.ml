(* Execution traces of the memory-aware GPU executor.

   A trace is the dynamic counterpart of the static memory annotations:
   every executed operation that touches memory appends a structured
   event - allocations, kernel launches with their *declared* (static,
   concretized) and *actual* (observed) footprints, copies with their
   elision decision, and last-use markers.  The [Memtrace] checker
   replays a trace against the declared footprints; this module only
   collects and renders.

   Events are device-level: offsets are flat element offsets into a
   block, and declared regions are concrete LMADs ({!Lmads.Lmad.concrete})
   obtained by evaluating the static annotations under the launch-time
   environment.  A declared region of [None] means "the whole block"
   (the static annotation mentioned per-thread variables that have no
   single launch-time value, so the enumerable region degrades to the
   block bound). *)

module Lmad = Lmads.Lmad

type clmad = Lmad.concrete

type footprint = {
  fvar : string; (* array variable the region belongs to *)
  fbid : int; (* block id *)
  fregion : clmad list option; (* None: anywhere in the block *)
}

type kernel = {
  kid : int; (* launch sequence number *)
  klabel : string; (* binding variable of the launching statement *)
  kthreads : int;
  declared_writes : footprint list;
  declared_reads : footprint list;
  fresh : int list; (* blocks allocated inside this kernel (thread-private) *)
  writes : (int * int list) list; (* bid -> distinct offsets, sorted *)
  reads : (int * int list) list;
  read_bytes : float; (* modeled DRAM traffic of this launch *)
  write_bytes : float;
}

type copy = {
  csrc : int;
  cdst : int;
  cshape : int list; (* logical shape copied *)
  csix : clmad list; (* concrete index function chains, head first *)
  cdix : clmad list;
  cbytes : float;
  celided : bool;
  cin_kernel : bool;
}

type event =
  | Alloc of { bid : int; name : string; elems : int; in_kernel : bool }
  | Kernel of kernel
  | Copy of copy
  | Last_use of { var : string; bid : int }

type t = {
  program : string;
  variant : string; (* provenance: which pipeline stage produced the code *)
  exact : bool; (* Full mode: offsets were recorded exhaustively *)
  mutable events_rev : event list;
  mutable next_kid : int;
  mutable muted : bool; (* result readback is not part of the execution *)
  (* current top-level kernel under construction *)
  mutable cur : building option;
}

and building = {
  b_label : string;
  b_threads : int;
  b_dw : footprint list;
  b_dr : footprint list;
  mutable b_fresh : int list;
  b_wr : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  b_rd : (int, (int, unit) Hashtbl.t) Hashtbl.t;
}

let create ~program ~variant ~exact () =
  {
    program;
    variant;
    exact;
    events_rev = [];
    next_kid = 0;
    muted = false;
    cur = None;
  }

let program t = t.program
let variant t = t.variant
let exact t = t.exact
let events t = List.rev t.events_rev
let emit t e = if not t.muted then t.events_rev <- e :: t.events_rev
let mute t = t.muted <- true

let alloc t ~bid ~name ~elems ~in_kernel =
  emit t (Alloc { bid; name; elems; in_kernel });
  if in_kernel then
    match t.cur with Some b -> b.b_fresh <- bid :: b.b_fresh | None -> ()

let last_use t ~var ~bid = emit t (Last_use { var; bid })

let kernel_begin t ~label ~threads ~declared_writes ~declared_reads =
  if not t.muted then
    t.cur <-
      Some
        {
          b_label = label;
          b_threads = threads;
          b_dw = declared_writes;
          b_dr = declared_reads;
          b_fresh = [];
          b_wr = Hashtbl.create 16;
          b_rd = Hashtbl.create 16;
        }

let touch tbl bid off =
  let s =
    match Hashtbl.find_opt tbl bid with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 64 in
        Hashtbl.add tbl bid s;
        s
  in
  Hashtbl.replace s off ()

let kernel_read t ~bid ~off =
  match t.cur with Some b when not t.muted -> touch b.b_rd bid off | _ -> ()

let kernel_write t ~bid ~off =
  match t.cur with Some b when not t.muted -> touch b.b_wr bid off | _ -> ()

let offsets_of tbl =
  Hashtbl.fold
    (fun bid s acc ->
      let offs = Hashtbl.fold (fun o () l -> o :: l) s [] in
      (bid, List.sort compare offs) :: acc)
    tbl []
  |> List.sort compare

let kernel_end t ~read_bytes ~write_bytes =
  match t.cur with
  | None -> ()
  | Some b ->
      let k =
        {
          kid = t.next_kid;
          klabel = b.b_label;
          kthreads = b.b_threads;
          declared_writes = b.b_dw;
          declared_reads = b.b_dr;
          fresh = List.rev b.b_fresh;
          writes = offsets_of b.b_wr;
          reads = offsets_of b.b_rd;
          read_bytes;
          write_bytes;
        }
      in
      t.next_kid <- t.next_kid + 1;
      t.cur <- None;
      emit t (Kernel k)

let copy t ~src ~dst ~shape ~six ~dix ~bytes ~elided ~in_kernel =
  emit t
    (Copy
       {
         csrc = src;
         cdst = dst;
         cshape = shape;
         csix = six;
         cdix = dix;
         cbytes = bytes;
         celided = elided;
         cin_kernel = in_kernel;
       })

(* ---------------------------------------------------------------- *)
(* Replay helpers                                                    *)
(* ---------------------------------------------------------------- *)

(* Apply a concrete index-function chain to a logical index: the
   executor's addressing, replicated so the checker can re-enumerate a
   copy's image without executing anything. *)
let apply (ix : clmad list) (idxs : int list) : int =
  match ix with
  | [] -> invalid_arg "Trace.apply: empty index function"
  | first :: rest ->
      let app (l : clmad) idxs =
        List.fold_left2
          (fun acc i (_, s) -> acc + (i * s))
          l.Lmad.coff idxs l.Lmad.cdims
      in
      let o = ref (app first idxs) in
      List.iter
        (fun (l : clmad) ->
          let shp = List.map fst l.Lmad.cdims in
          let rec unrank o = function
            | [] -> []
            | [ _ ] -> [ o ]
            | _ :: rest ->
                let inner = List.fold_left ( * ) 1 rest in
                (o / inner) :: unrank (o mod inner) rest
          in
          o := app l (unrank !o shp))
        rest;
      !o

let image (ix : clmad list) (shape : int list) : int list =
  List.sort_uniq compare
    (List.map (apply ix) (Ir.Value.indices shape))

(* ---------------------------------------------------------------- *)
(* Derived summaries                                                 *)
(* ---------------------------------------------------------------- *)

let block_names t =
  List.fold_left
    (fun acc e ->
      match e with
      | Alloc { bid; name; _ } -> (bid, name) :: acc
      | _ -> acc)
    [] (events t)

let kernels t =
  List.filter_map (function Kernel k -> Some k | _ -> None) (events t)

let copies t =
  List.filter_map (function Copy c -> Some c | _ -> None) (events t)

(* Per-kernel-label traffic histogram: (label, launches, read bytes,
   write bytes), ordered by total traffic. *)
let histogram t : (string * int * float * float) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun k ->
      let base = Ir.Names.base k.klabel in
      let n, r, w =
        Option.value (Hashtbl.find_opt tbl base) ~default:(0, 0., 0.)
      in
      Hashtbl.replace tbl base
        (n + 1, r +. k.read_bytes, w +. k.write_bytes))
    (kernels t);
  Hashtbl.fold (fun l (n, r, w) acc -> (l, n, r, w) :: acc) tbl []
  |> List.sort (fun (_, _, r1, w1) (_, _, r2, w2) ->
         compare (r2 +. w2) (r1 +. w1))

type traffic = {
  t_kernel_reads : float;
  t_kernel_writes : float;
  t_copy_bytes : float;
  t_elided_bytes : float;
}

let traffic t =
  List.fold_left
    (fun acc e ->
      match e with
      | Kernel k ->
          {
            acc with
            t_kernel_reads = acc.t_kernel_reads +. k.read_bytes;
            t_kernel_writes = acc.t_kernel_writes +. k.write_bytes;
          }
      | Copy c when c.celided ->
          { acc with t_elided_bytes = acc.t_elided_bytes +. c.cbytes }
      | Copy c when not c.cin_kernel ->
          { acc with t_copy_bytes = acc.t_copy_bytes +. c.cbytes }
      | _ -> acc)
    {
      t_kernel_reads = 0.;
      t_kernel_writes = 0.;
      t_copy_bytes = 0.;
      t_elided_bytes = 0.;
    }
    (events t)

(* ---------------------------------------------------------------- *)
(* Rendering                                                         *)
(* ---------------------------------------------------------------- *)

let pp_region ppf = function
  | None -> Fmt.string ppf "whole-block"
  | Some ls -> Fmt.(list ~sep:(any " U ") Lmad.pp_concrete) ppf ls

let pp_footprint ppf f =
  Fmt.pf ppf "%s@@blk%d:%a" f.fvar f.fbid pp_region f.fregion

let total_offsets l =
  List.fold_left (fun acc (_, offs) -> acc + List.length offs) 0 l

let pp_event ppf = function
  | Alloc { bid; name; elems; in_kernel } ->
      Fmt.pf ppf "alloc blk%d (%s) %d elems%s" bid name elems
        (if in_kernel then " [in-kernel]" else "")
  | Kernel k ->
      Fmt.pf ppf
        "@[<v2>kernel #%d %s: %d threads, %.0fB read, %.0fB written@,\
         declared writes: %a@,\
         declared reads:  %a@,\
         touched: %d writes, %d reads across %d blocks@]" k.kid k.klabel
        k.kthreads k.read_bytes k.write_bytes
        Fmt.(list ~sep:comma pp_footprint)
        k.declared_writes
        Fmt.(list ~sep:comma pp_footprint)
        k.declared_reads (total_offsets k.writes) (total_offsets k.reads)
        (List.length
           (List.sort_uniq compare (List.map fst k.writes @ List.map fst k.reads)))
  | Copy c ->
      Fmt.pf ppf "copy blk%d -> blk%d, %.0fB%s%s" c.csrc c.cdst c.cbytes
        (if c.celided then " [ELIDED]" else "")
        (if c.cin_kernel then " [in-kernel]" else "")
  | Last_use { var; bid } -> Fmt.pf ppf "last-use %s (blk%d)" var bid

let pp ppf t =
  Fmt.pf ppf "@[<v>trace of %s (%s, %s)@,%a@]" t.program t.variant
    (if t.exact then "exact" else "sampled")
    Fmt.(list ~sep:cut pp_event)
    (events t)

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)
(* ---------------------------------------------------------------- *)

(* Hand-rolled: the schema is small and we avoid a json dependency. *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_clmad (c : clmad) =
  Printf.sprintf "{\"off\":%d,\"dims\":[%s]}" c.Lmad.coff
    (String.concat ","
       (List.map
          (fun (n, s) -> Printf.sprintf "[%d,%d]" n s)
          c.Lmad.cdims))

let json_region = function
  | None -> "null"
  | Some ls -> "[" ^ String.concat "," (List.map json_clmad ls) ^ "]"

let json_footprint f =
  Printf.sprintf "{\"var\":\"%s\",\"block\":%d,\"region\":%s}"
    (json_escape f.fvar) f.fbid (json_region f.fregion)

let json_offsets l =
  "["
  ^ String.concat ","
      (List.map
         (fun (bid, offs) ->
           Printf.sprintf "{\"block\":%d,\"offsets\":[%s]}" bid
             (String.concat "," (List.map string_of_int offs)))
         l)
  ^ "]"

let json_ints l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]"

let json_event = function
  | Alloc { bid; name; elems; in_kernel } ->
      Printf.sprintf
        "{\"event\":\"alloc\",\"block\":%d,\"name\":\"%s\",\"elems\":%d,\"in_kernel\":%b}"
        bid (json_escape name) elems in_kernel
  | Kernel k ->
      Printf.sprintf
        "{\"event\":\"kernel\",\"id\":%d,\"label\":\"%s\",\"threads\":%d,\"declared_writes\":[%s],\"declared_reads\":[%s],\"fresh\":%s,\"writes\":%s,\"reads\":%s,\"read_bytes\":%.0f,\"write_bytes\":%.0f}"
        k.kid (json_escape k.klabel) k.kthreads
        (String.concat "," (List.map json_footprint k.declared_writes))
        (String.concat "," (List.map json_footprint k.declared_reads))
        (json_ints k.fresh) (json_offsets k.writes) (json_offsets k.reads)
        k.read_bytes k.write_bytes
  | Copy c ->
      Printf.sprintf
        "{\"event\":\"copy\",\"src\":%d,\"dst\":%d,\"shape\":%s,\"src_ix\":%s,\"dst_ix\":%s,\"bytes\":%.0f,\"elided\":%b,\"in_kernel\":%b}"
        c.csrc c.cdst (json_ints c.cshape)
        (json_region (Some c.csix))
        (json_region (Some c.cdix))
        c.cbytes c.celided c.cin_kernel
  | Last_use { var; bid } ->
      Printf.sprintf "{\"event\":\"last_use\",\"var\":\"%s\",\"block\":%d}"
        (json_escape var) bid

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"program\":\"%s\",\"variant\":\"%s\",\"exact\":%b,"
       (json_escape t.program) (json_escape t.variant) t.exact);
  let tr = traffic t in
  Buffer.add_string b
    (Printf.sprintf
       "\"traffic\":{\"kernel_reads\":%.0f,\"kernel_writes\":%.0f,\"copy_bytes\":%.0f,\"elided_bytes\":%.0f},"
       tr.t_kernel_reads tr.t_kernel_writes tr.t_copy_bytes tr.t_elided_bytes);
  Buffer.add_string b "\"histogram\":[";
  Buffer.add_string b
    (String.concat ","
       (List.map
          (fun (l, n, r, w) ->
            Printf.sprintf
              "{\"label\":\"%s\",\"launches\":%d,\"read_bytes\":%.0f,\"write_bytes\":%.0f}"
              (json_escape l) n r w)
          (histogram t)));
  Buffer.add_string b "],\"events\":[";
  Buffer.add_string b (String.concat "," (List.map json_event (events t)));
  Buffer.add_string b "]}";
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* Skeletons: variant-invariant logical event sequences              *)
(* ---------------------------------------------------------------- *)

(* The memory optimizations relocate and elide storage; they must not
   change *what* the program computes.  The skeleton of a trace is the
   sequence of logical actions - kernel launches (by base label and
   thread count) and logical copies (by shape) - with everything the
   optimizer is allowed to change stripped: block identities, copy
   elision, allocations, liveness markers.  Two variants of one
   program must produce identical skeletons. *)
type skeleton_event =
  | SKernel of { slabel : string; sthreads : int }
  | SCopy of { sshape : int list }

let skeleton t : skeleton_event list =
  List.filter_map
    (function
      | Kernel k ->
          Some
            (SKernel
               { slabel = Ir.Names.base k.klabel; sthreads = k.kthreads })
      | Copy c when not c.cin_kernel -> Some (SCopy { sshape = c.cshape })
      | Alloc _ | Copy _ | Last_use _ -> None)
    (events t)

let pp_skeleton_event ppf = function
  | SKernel { slabel; sthreads } ->
      Fmt.pf ppf "kernel %s (%d threads)" slabel sthreads
  | SCopy { sshape } ->
      Fmt.pf ppf "copy [%a]" Fmt.(list ~sep:comma int) sshape

(* First [limit] skeleton divergences between two traces of the same
   program, rendered; empty means the variants agree on the logical
   event sequence. *)
let diff ?(limit = 10) ta tb : string list =
  let sa = Array.of_list (skeleton ta)
  and sb = Array.of_list (skeleton tb) in
  let na = Array.length sa and nb = Array.length sb in
  let out = ref [] and count = ref 0 in
  let emit fmt = Fmt.kstr (fun s -> out := s :: !out; incr count) fmt in
  let i = ref 0 in
  while !i < max na nb && !count < limit do
    (match
       ( (if !i < na then Some sa.(!i) else None),
         if !i < nb then Some sb.(!i) else None )
     with
    | Some a, Some b when a = b -> ()
    | Some a, Some b ->
        emit "event %d: %s %a <> %s %a" !i (variant ta) pp_skeleton_event a
          (variant tb) pp_skeleton_event b
    | Some a, None ->
        emit "event %d: only in %s: %a" !i (variant ta) pp_skeleton_event a
    | None, Some b ->
        emit "event %d: only in %s: %a" !i (variant tb) pp_skeleton_event b
    | None, None -> ());
    incr i
  done;
  let rest = max na nb - !i in
  if !count >= limit && rest > 0 then
    emit "... (%d further events not compared)" rest;
  if na <> nb && !count < limit then
    emit "event counts differ: %s has %d, %s has %d" (variant ta) na
      (variant tb) nb;
  List.rev !out
