(* Array short-circuiting (section V).

   At a circuit point - [let y[W] = b] with [b] lastly used, a
   [let x = concat a b] of lastly-used operands, or the implicit write
   of a mapnest body result - the pass tries to construct the candidate
   array directly in the destination's memory block with the rebased
   index function, so the copy at the circuit point becomes a no-op
   (the memory-aware executor skips copies whose source and destination
   locations coincide).

   The analysis is bottom-up (section V-A/V-B).  Walking from the
   circuit point towards the candidate's fresh-array creation it
   maintains:

   - the *chain*: every variable in an alias relation with the
     candidate, each assigned its rebased index function (views are
     transformed forward from the candidate's; update destinations
     share the result's);
   - [U_xss]: the union (of LMADs) of all uses of the destination's
     memory encountered so far, i.e. the uses that will execute *after*
     the current program point;
   - [W_bs]: the writes performed through the rebased chain.

   Every chain write is checked disjoint from the current [U_xss] with
   the sufficient LMAD non-overlap test (section V-C).  Uses inside
   loops and mapnests are aggregated by promoting the iteration
   variable to an LMAD dimension (section II-B); where the paper checks
   the refined per-iteration conditions (U_xss^{>i} vs W_bs^i, Fig. 7b)
   we check the whole-loop unions, which is sound and strictly more
   conservative, plus the in-iteration ordering check - this suffices
   for all benchmarks in the paper's evaluation, including NW's Fig. 9
   obligation.

   Success only mutates memory annotations ([pmem]); the program text
   is unchanged, preserving the add-on property of section III-C. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module Ixfn = Lmads.Ixfn
module Refset = Lmads.Refset
module SM = Map.Make (String)
module SS = Ir.Ast.SS

type stats = {
  mutable candidates : int; (* circuit points examined *)
  mutable succeeded : int; (* candidates fully rebased *)
  mutable overlap_checks : int; (* LMAD non-overlap queries *)
  mutable rebased_vars : int; (* variables whose ixfn changed *)
}

let fresh_stats () =
  { candidates = 0; succeeded = 0; overlap_checks = 0; rebased_vars = 0 }

let pp_stats ppf (s : stats) =
  Report.section ~title:"short-circuiting" ppf
    [
      ("circuit points examined", string_of_int s.candidates);
      ("candidates rebased", string_of_int s.succeeded);
      ("non-overlap queries", string_of_int s.overlap_checks);
      ("variables rebased", string_of_int s.rebased_vars);
    ]

(* Per-run configuration, threaded through the pass (no mutable
   globals: ablation/lint runs must not leak state across tests):
   - [verbose]: trace circuit attempts and failure reasons to stderr;
   - [enable_refinement]: the per-iteration / per-thread conditions of
     section V-B (Fig. 7b and the mapnest rule).  Off = whole-loop
     unions only.
   - [split_depth]: recursion budget of the dimension-splitting
     heuristic in the non-overlap test (Fig. 8).  0 = the plain
     Hoeflinger test without splitting, which cannot prove Fig. 9. *)
type options = {
  verbose : bool;
  enable_refinement : bool;
  split_depth : int;
}

let default_options = { verbose = false; enable_refinement = true; split_depth = 3 }

let trace opts fmt =
  if opts.verbose then Fmt.epr (fmt ^^ "@.") else Fmt.kstr (fun _ -> ()) fmt

type st = {
  opts : options;
  mems : (string, mem_info) Hashtbl.t; (* current annotations *)
  types : (string, typ) Hashtbl.t;
  scalars : (string, P.t) Hashtbl.t; (* scalar defs for translation *)
  aliases : Alias.t;
  stats : stats;
  failed : (string * string, int) Hashtbl.t;
      (* (candidate, destination block) attempts that failed, stamped
         with the rebase count at failure: re-attempted only after
         other circuits have made progress (transitive chaining) *)
  cert : Certify.recorder option;
  mutable claims : (Refset.t * Refset.t * Pr.t) list;
      (* successful non-overlap checks of the attempt in flight, newest
         first; drained into the recorder when a circuit commits,
         restored to the entry mark when its walk rolls back *)
}

(* ---------------------------------------------------------------- *)
(* Global tables                                                     *)
(* ---------------------------------------------------------------- *)

let scalar_def (s : stm) : (string * P.t) option =
  match (s.pat, s.exp) with
  | [ pe ], EIdx p when pe.pt = TScalar I64 -> Some (pe.pv, p)
  | [ pe ], EAtom (Int c) when pe.pt = TScalar I64 -> Some (pe.pv, P.const c)
  | [ pe ], EAtom (Var v) when pe.pt = TScalar I64 -> Some (pe.pv, P.var v)
  | [ pe ], EBin (op, a, b) when pe.pt = TScalar I64 -> (
      let atom_poly = function
        | Int c -> Some (P.const c)
        | Var v -> Some (P.var v)
        | _ -> None
      in
      match (atom_poly a, atom_poly b) with
      | Some pa, Some pb -> (
          match op with
          | Add -> Some (pe.pv, P.add pa pb)
          | Sub -> Some (pe.pv, P.sub pa pb)
          | Mul -> Some (pe.pv, P.mul pa pb)
          | _ -> None)
      | _ -> None)
  | _ -> None

let build_tables opts cert (p : prog) : st =
  let st =
    {
      opts;
      mems = Hashtbl.create 256;
      types = Hashtbl.create 256;
      scalars = Hashtbl.create 256;
      aliases = Alias.of_prog p;
      stats = fresh_stats ();
      failed = Hashtbl.create 32;
      cert;
      claims = [];
    }
  in
  let record_pe pe =
    Hashtbl.replace st.types pe.pv pe.pt;
    match pe.pmem with
    | Some m -> Hashtbl.replace st.mems pe.pv m
    | None -> ()
  in
  List.iter record_pe p.params;
  List.iter
    (fun s ->
      List.iter record_pe s.pat;
      (match scalar_def s with
      | Some (v, p) -> Hashtbl.replace st.scalars v p
      | None -> ());
      match s.exp with
      | EMap { nest; _ } ->
          List.iter
            (fun (v, _) -> Hashtbl.replace st.types v (TScalar I64))
            nest
      | ELoop { params; var; _ } ->
          Hashtbl.replace st.types var (TScalar I64);
          List.iter (fun (pe, _) -> record_pe pe) params
      | _ -> ())
    (all_stms_block p.body);
  st

let already_failed st candidate ymem =
  match Hashtbl.find_opt st.failed (candidate, ymem) with
  | Some stamp -> stamp = st.stats.rebased_vars
  | None -> false

let record_failure st candidate ymem =
  Hashtbl.replace st.failed (candidate, ymem) st.stats.rebased_vars

let mem_of st v = Hashtbl.find_opt st.mems v
let typ_of st v = Hashtbl.find_opt st.types v

let is_array st v =
  match typ_of st v with Some (TArr _) -> true | _ -> false

(* ---------------------------------------------------------------- *)
(* Reference-set collection                                          *)
(* ---------------------------------------------------------------- *)

let set_of_ixfn (ixfn : Ixfn.t) : Refset.t =
  match Ixfn.accessed_set ixfn with
  | Some l -> Refset.of_lmad l
  | None -> Refset.top (* footnote 26: multi-LMAD overestimated *)

let slice_dims_of = function
  | STriplet sds ->
      `Triplet
        (List.map
           (function
             | SFix i -> Lmad.Fix i
             | SRange { start; len; step } -> Lmad.Range { start; len; step })
           sds)
  | SLmad l -> `Lmad l

let sliced_set ctx (slc : slice) (ixfn : Ixfn.t) : Refset.t =
  match slice_dims_of slc with
  | `Triplet sds -> set_of_ixfn (Ixfn.slice sds ixfn)
  | `Lmad l -> (
      match Ixfn.lmad_slice ctx ~slc:l ixfn with
      | Some ix -> set_of_ixfn ix
      | None -> Refset.top)

(* Accesses of memory block [ymem] performed by [s], excluding accesses
   through variables in [exclude] (the candidate's chain/alias class).
   Iteration variables of nested loops/mapnests are promoted to LMAD
   dimensions; any leftover body-local variable in the result makes it
   Top (data-dependent indexing, cf. Fig. 1 right). *)
let rec uses_in_stm st ctx ~ymem ~exclude (s : stm) : Refset.t =
  let in_ymem v =
    (not (SS.mem v exclude))
    && (match mem_of st v with Some m -> m.block = ymem | None -> false)
  in
  let full v =
    match mem_of st v with
    | Some m -> set_of_ixfn m.ixfn
    | None -> Refset.top
  in
  match s.exp with
  | EIndex (v, idxs) when in_ymem v -> (
      let m = Option.get (mem_of st v) in
      match Ixfn.apply_sym m.ixfn idxs with
      | Some off -> Refset.of_lmad (Lmad.point off)
      | None -> Refset.top)
  | ESlice (v, slc) when in_ymem v ->
      sliced_set ctx slc (Option.get (mem_of st v)).ixfn
  | EUpdate { dst; slc; src } ->
      let w =
        if in_ymem dst then sliced_set ctx slc (Option.get (mem_of st dst)).ixfn
        else Refset.empty
      in
      let r =
        match src with
        | SrcArr v when in_ymem v -> full v
        | _ -> Refset.empty
      in
      Refset.union w r
  | EMap { nest; body } ->
      let ctx' =
        List.fold_left
          (fun ctx (v, n) ->
            Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub n P.one) ())
          ctx nest
      in
      let inner = uses_in_block st ctx' ~ymem ~exclude body in
      let expanded =
        List.fold_left
          (fun acc (v, n) -> Refset.expand_loop ctx v ~count:n acc)
          inner (List.rev nest)
      in
      guard_locals expanded body (List.map fst nest)
  | ELoop { params; var; bound; body } ->
      let ctx' = Pr.add_range ctx var ~lo:P.zero ~hi:(P.sub bound P.one) () in
      let inner = uses_in_block st ctx' ~ymem ~exclude body in
      let expanded = Refset.expand_loop ctx var ~count:bound inner in
      let from_inits =
        List.fold_left
          (fun acc (_, init) ->
            match init with
            | Var v when in_ymem v -> Refset.union acc (full v)
            | _ -> acc)
          Refset.empty params
      in
      Refset.union
        (guard_locals expanded body
           (var :: List.map (fun (pe, _) -> pe.pv) params))
        from_inits
  | EIf { tb; fb; _ } ->
      Refset.union
        (uses_in_block st ctx ~ymem ~exclude tb)
        (uses_in_block st ctx ~ymem ~exclude fb)
  | _ ->
      (* any other appearance of a ymem array is a full use *)
      SS.fold
        (fun v acc -> if in_ymem v then Refset.union acc (full v) else acc)
        (fv_exp s.exp) Refset.empty

and uses_in_block st ctx ~ymem ~exclude (b : block) : Refset.t =
  let from_stms =
    List.fold_left
      (fun acc s -> Refset.union acc (uses_in_stm st ctx ~ymem ~exclude s))
      Refset.empty b.stms
  in
  let in_ymem v =
    (not (SS.mem v exclude))
    && (match mem_of st v with Some m -> m.block = ymem | None -> false)
  in
  List.fold_left
    (fun acc a ->
      match a with
      | Var v when in_ymem v ->
          Refset.union acc (set_of_ixfn (Option.get (mem_of st v)).ixfn)
      | _ -> acc)
    from_stms b.res

(* If a reference set still mentions variables bound inside [body]
   (other than those already promoted), the indexing is data-dependent:
   overestimate to Top. *)
and guard_locals (rs : Refset.t) (body : block) (promoted : string list) :
    Refset.t =
  let locals = bound_inside body in
  let locals =
    List.fold_left (fun acc v -> SS.remove v acc) locals promoted
  in
  if List.exists (fun v -> SS.mem v locals) (Refset.vars rs) then Refset.top
  else rs

(* Every name bound anywhere inside a block: statement binders, loop
   parameters, loop and mapnest iteration variables. *)
and bound_inside (b : block) : SS.t =
  List.fold_left
    (fun acc s ->
      let acc =
        List.fold_left (fun acc pe -> SS.add pe.pv acc) acc s.pat
      in
      match s.exp with
      | EMap { nest; body } ->
          SS.union
            (List.fold_left (fun acc (v, _) -> SS.add v acc) acc nest)
            (bound_inside body)
      | ELoop { params; var; body; _ } ->
          let acc = SS.add var acc in
          let acc =
            List.fold_left (fun acc (pe, _) -> SS.add pe.pv acc) acc params
          in
          SS.union acc (bound_inside body)
      | EIf { tb; fb; _ } ->
          SS.union acc (SS.union (bound_inside tb) (bound_inside fb))
      | _ -> acc)
    SS.empty b.stms

(* ---------------------------------------------------------------- *)
(* Index-function translation (section V-A(b))                        *)
(* ---------------------------------------------------------------- *)

(* Rewrite [ixfn] so that it only mentions variables in [scope],
   substituting recorded scalar definitions to a fixpoint. *)
let translate st ~scope (ixfn : Ixfn.t) : Ixfn.t option =
  let table =
    Hashtbl.fold (fun v p acc -> P.SM.add v p acc) st.scalars P.SM.empty
  in
  let out_of_scope ix =
    List.filter (fun v -> not (SS.mem v scope)) (Ixfn.vars ix)
  in
  if out_of_scope ixfn = [] then Some ixfn
  else
    match Ixfn.subst_fixpoint table ixfn with
    | ix when out_of_scope ix = [] -> Some ix
    | _ -> None
    | exception Failure _ -> None

(* ---------------------------------------------------------------- *)
(* The bottom-up walk                                                 *)
(* ---------------------------------------------------------------- *)

type pending = { pe : pat_elem; mem : mem_info }

(* The claims pushed since [mark] (the buffer value at attempt entry),
   oldest first.  Rollbacks restore the buffer to saved values, so
   physical equality identifies the mark reliably. *)
let claims_since st mark =
  let rec go acc l =
    if l == mark then acc
    else match l with [] -> acc | c :: rest -> go (c :: acc) rest
  in
  go [] st.claims

(* Emit the certificate of one committed circuit: the last-use
   requirement (where the circuit point demanded it), every incremental
   non-overlap fact accumulated since [mark] (each under the prover
   context it was discharged with), and the final annotation of every
   rebased variable. *)
let emit_circuit st ~ctx ~candidate ~ymem ~at_binding ~last_use ~mark
    ~pendings =
  match st.cert with
  | None -> ()
  | Some r ->
      let rw = Certify.Copy_elide { candidate; dst_block = ymem; at_binding } in
      if last_use then
        Certify.emit r rw ~ctx
          (Certify.Last_use { var = candidate; at_binding });
      List.iter
        (fun (w, u, cctx) ->
          Certify.emit r rw ~ctx:cctx (Certify.Nonoverlap { w; u }))
        (claims_since st mark);
      st.claims <- mark;
      List.iter
        (fun { pe; mem } ->
          Certify.emit r rw ~ctx (Certify.Rebased { var = pe.pv; mem }))
        pendings

type walk_result =
  | Fail
  | Ok of {
      pendings : pending list;
      u_final : Refset.t; (* uses of ymem over the walked region *)
      w_total : Refset.t; (* writes through the chain *)
    }

type binfo = {
  arr : stm array;
  defined : SS.t array; (* vars in scope before stm i (incl. outer) *)
  allocd : SS.t array; (* memory blocks in scope before stm i *)
}

let block_info ~outer_defined ~outer_allocd (b : block) : binfo =
  let n = List.length b.stms in
  let arr = Array.of_list b.stms in
  let defined = Array.make (n + 1) outer_defined in
  let allocd = Array.make (n + 1) outer_allocd in
  for i = 0 to n - 1 do
    let s = arr.(i) in
    defined.(i + 1) <-
      List.fold_left (fun acc pe -> SS.add pe.pv acc) defined.(i) s.pat;
    allocd.(i + 1) <-
      List.fold_left
        (fun acc pe -> if pe.pt = TMem then SS.add pe.pv acc else acc)
        allocd.(i) s.pat
  done;
  { arr; defined; allocd }

let check_disjoint st ctx (w : Refset.t) (u : Refset.t) : bool =
  st.stats.overlap_checks <- st.stats.overlap_checks + 1;
  let t0 = Sys.time () in
  let r = Refset.disjoint ~depth:st.opts.split_depth ctx w u in
  let dt = Sys.time () -. t0 in
  if dt > 0.2 then
    trace st.opts "  [slow check %.2fs -> %b] W=%a U=%a" dt r Refset.pp w Refset.pp u;
  (* record the exact fact (and context) the rewrite is about to rely
     on; it becomes an obligation only if the attempt commits *)
  if r && st.cert <> None then st.claims <- (w, u, ctx) :: st.claims;
  r

(* The alias class of the candidate: every variable whose accesses are
   chain accesses rather than destination uses. *)
let chain_class st v = Alias.closure st.aliases v

(* Walk the statements of [info] from index [start_j - 1] down to 0,
   rebasing [active] (with index function [ixfn]) into block [ymem].
   [stops] maps variable names (loop parameters) at which the chain
   terminates successfully.  Returns the accumulated pendings, uses and
   chain writes. *)
let rec walk st ctx info ~ymem ~start_j ~active ~ixfn ~u0 ~stops : walk_result
    =
  let exclude = chain_class st active in
  let u_xss = ref u0 in
  let w_total = ref Refset.empty in
  let pendings = ref [] in
  let add_pending pe mem =
    pendings := { pe; mem } :: !pendings;
    (* visible immediately so later (upward) collection treats it right *)
    Hashtbl.replace st.mems pe.pv mem
  in
  let saved_mems = Hashtbl.copy st.mems in
  let saved_claims = st.claims in
  let rollback () =
    Hashtbl.reset st.mems;
    Hashtbl.iter (Hashtbl.replace st.mems) saved_mems;
    st.claims <- saved_claims
  in
  let active = ref active in
  let ixfn = ref ixfn in
  let result = ref None in
  let j = ref (start_j - 1) in
  (try
     while !result = None do
       if !j < 0 then (
         (* reached the block top without finding the creation; only a
            designated stop variable (loop parameter) terminates the
            chain successfully here *)
         if List.mem !active stops then
           result :=
             Some
               (Ok
                  { pendings = !pendings; u_final = !u_xss; w_total = !w_total })
         else result := Some Fail)
       else begin
         let s = info.arr.(!j) in
         let defines v = List.exists (fun pe -> pe.pv = v) s.pat in
         (* a write through a non-chain alias of the candidate would
            need its own rebased index function (property 3): only the
            active chain supports that *)
         let alias_write =
           match s.exp with
           | EUpdate { dst; _ } ->
               SS.mem dst exclude
               && not (defines !active)
               && dst <> !active
           | _ -> false
         in
         if alias_write then result := Some Fail
         else if List.exists (fun pe -> pe.pv = ymem) s.pat then
           (* the destination memory is not in scope above this point *)
           result := Some Fail
         else if defines !active then begin
           match
             chain_step st ctx info ~ymem ~j:!j ~active:!active ~ixfn:!ixfn
               ~u_xss ~w_total ~add_pending ~stops
           with
           | `Continue (v, ix) ->
               active := v;
               ixfn := ix
           | `Done ->
               result :=
                 Some
                   (Ok
                      {
                        pendings = !pendings;
                        u_final = !u_xss;
                        w_total = !w_total;
                      })
           | `Fail -> result := Some Fail
         end
         else begin
           (* uses of ymem by this statement execute after everything
              above it (chain statements account for their own uses in
              [chain_step]) *)
           let u = uses_in_stm st ctx ~ymem ~exclude s in
           u_xss := Refset.union !u_xss u
         end;
         decr j
       end
     done
   with e ->
     rollback ();
     raise e);
  match !result with
  | Some (Ok _ as ok) -> ok
  | Some Fail | None ->
      rollback ();
      Fail

(* Handle the statement defining the active chain variable. *)
and chain_step st ctx info ~ymem ~j ~active ~ixfn ~u_xss ~w_total
    ~add_pending ~stops :
    [ `Continue of string * Ixfn.t | `Done | `Fail ] =
  let s = info.arr.(j) in
  let scope = info.defined.(j) in
  let pe_of v = List.find (fun pe -> pe.pv = v) s.pat in
  let commit_ixfn v ix =
    match translate st ~scope ix with
    | Some ix' ->
        add_pending (pe_of v) { block = ymem; ixfn = ix' };
        Some ix'
    | None -> None
  in
  let dest_allocated () = SS.mem ymem info.allocd.(j) in
  let full_set ix = set_of_ixfn ix in
  match s.exp with
  (* --- views: transform forward is impossible (we know the result's
     rebased ixfn, need the operand's), so apply the inverse --- *)
  | EAtom (Var u) -> (
      match commit_ixfn active ixfn with
      | Some ix -> `Continue (u, ix)
      | None -> `Fail)
  | ETranspose (u, perm) -> (
      let inv = Array.make (List.length perm) 0 in
      List.iteri (fun i p -> inv.(p) <- i) perm;
      match commit_ixfn active ixfn with
      | Some ix -> `Continue (u, Ixfn.permute (Array.to_list inv) ix)
      | None -> `Fail)
  | EReverse (u, d) -> (
      match commit_ixfn active ixfn with
      | Some ix -> `Continue (u, Ixfn.reverse d ix)
      | None -> `Fail)
  | EReshape (u, _) -> (
      match typ_of st u with
      | Some (TArr (_, u_shape)) -> (
          match commit_ixfn active ixfn with
          | Some ix ->
              let ix' = Ixfn.reshape ctx u_shape ix in
              if Ixfn.is_single ix' then `Continue (u, ix')
              else `Fail (* multi-LMAD rebase not supported *)
          | None -> `Fail)
      | _ -> `Fail)
  | ESlice _ ->
      trace st.opts "  chain %s: slice is not invertible" active;
      `Fail (* not invertible (section V-A(a)) *)
  (* --- in-place update: the result shares the destination's memory;
     the write set through the rebased ixfn must avoid U_xss --- *)
  | EUpdate { dst; slc; src = _ } ->
      (* the source may read ymem; those reads are simultaneous with the
         (rebased) write, so they count as uses first *)
      u_xss :=
        Refset.union !u_xss
          (uses_in_stm st ctx ~ymem ~exclude:(chain_class st active) s);
      let wset = sliced_set ctx slc ixfn in
      if not (check_disjoint st ctx wset !u_xss) then (
        trace st.opts "  chain %s: update write overlaps U_xss" active;
        `Fail)
      else begin
        w_total := Refset.union !w_total wset;
        match commit_ixfn active ixfn with
        | Some ix -> `Continue (dst, ix)
        | None -> `Fail
      end
  (* --- creations --- *)
  | EScratch _ ->
      if not (dest_allocated ()) then `Fail
      else (
        match commit_ixfn active ixfn with
        | Some _ -> `Done
        | None -> `Fail)
  | EIota _ | EReplicate _ ->
      if not (dest_allocated ()) then `Fail
      else if not (check_disjoint st ctx (full_set ixfn) !u_xss) then `Fail
      else (
        w_total := Refset.union !w_total (full_set ixfn);
        match commit_ixfn active ixfn with
        | Some _ -> `Done
        | None -> `Fail)
  | ECopy src ->
      let src_reads =
        match mem_of st src with
        | Some m when m.block = ymem -> set_of_ixfn m.ixfn
        | _ -> Refset.empty
      in
      if not (dest_allocated ()) then `Fail
      else if
        not
          (check_disjoint st ctx (full_set ixfn)
             (Refset.union !u_xss src_reads))
      then `Fail
      else (
        w_total := Refset.union !w_total (full_set ixfn);
        match commit_ixfn active ixfn with
        | Some _ -> `Done
        | None -> `Fail)
  | EConcat ops ->
      u_xss :=
        Refset.union !u_xss
          (uses_in_stm st ctx ~ymem ~exclude:(chain_class st active) s);
      if not (dest_allocated ()) then `Fail
      else if not (check_disjoint st ctx (full_set ixfn) !u_xss) then `Fail
      else begin
        w_total := Refset.union !w_total (full_set ixfn);
        match commit_ixfn active ixfn with
        | None -> `Fail
        | Some committed ->
            (* transitively try each lastly-used operand at its row
               offset inside the rebased result (Fig. 4a / Fig. 6a) *)
            circuit_concat_operands st ctx info ~ymem ~j ~ops
              ~res_ixfn:committed ~last_uses:s.last_uses ~u0:!u_xss
              ~at_binding:
                (match s.pat with pe :: _ -> pe.pv | [] -> active);
            `Done
      end
  | EMap { nest; body } -> (
      if not (dest_allocated ()) then `Fail
      else
        let exclude = chain_class st active in
        let own_reads = uses_in_stm st ctx ~ymem ~exclude s in
        (* First the conservative check: the whole (rebased) write set
           against everything after plus all reads of the map itself.
           When that fails because each thread reads locations it also
           writes (Fig. 1 left: the diagonal), fall back to the
           per-iteration condition of section V-B: thread i's writes
           must avoid the uses of every *other* thread j (reads before
           writes within one thread are fine). *)
        let safe =
          check_disjoint st ctx (full_set ixfn)
            (Refset.union !u_xss own_reads)
          || (st.opts.enable_refinement
             && check_disjoint st ctx (full_set ixfn) !u_xss
             && cross_thread_ok st ctx ~ymem ~exclude ~nest ~body
                  ~w_thread:(thread_write_set st ixfn nest body))
        in
        if not safe then (
          trace st.opts "  chain %s: mapnest creation unsafe (reads overlap)" active;
          `Fail)
        else begin
          w_total := Refset.union !w_total (full_set ixfn);
          match commit_ixfn active ixfn with
          | None -> `Fail
          | Some committed ->
              (* opportunistically rebase the per-thread result into its
                 slot of the rebased result (Fig. 6b) *)
              rebase_mapnest_body st ctx info ~ymem ~j ~nest ~body
                ~res_ixfn:committed;
              `Done
        end)
  | ELoop { params; var; bound; body } ->
      circuit_loop st ctx info ~ymem ~j ~active ~ixfn ~u_xss ~w_total
        ~add_pending ~params ~var ~bound ~body ~stops
  | EIf { tb; fb; _ } ->
      circuit_if st ctx info ~ymem ~j ~active ~ixfn ~u_xss ~add_pending ~s
        ~tb ~fb
  | EIndex _ | EBin _ | ECmp _ | EUn _ | EIdx _ | EAtom _ | EReduce _
  | EArgmin _ | EAlloc _ ->
      `Fail

(* The locations one thread of a mapnest writes: its slot of the
   (rebased) result, as a function of the nest variables. *)
and thread_write_set _st ixfn nest _body : Refset.t =
  let shape = Ixfn.shape ixfn in
  let rec drop n l =
    if n = 0 then l else match l with _ :: r -> drop (n - 1) r | [] -> []
  in
  let inner = drop (List.length nest) shape in
  let slc =
    List.map (fun (v, _) -> Lmad.Fix (P.var v)) nest
    @ List.map
        (fun d -> Lmad.Range { start = P.zero; len = d; step = P.one })
        inner
  in
  set_of_ixfn (Ixfn.slice slc ixfn)

(* Section V-B, mapnest rule: writes of one thread must avoid the uses
   of every *other* thread (iterations execute out of order), while
   same-thread read-before-write is permitted.  "Other thread" is case-
   split on the first differing nest dimension d: dimensions before d
   coincide, dimension d is strictly smaller or strictly larger, and
   dimensions after d range freely. *)
and pairwise_thread_ok st ctx (nest : (string * P.t) list) ~w ~u : bool =
  let ctx =
    List.fold_left
      (fun ctx (v, cnt) ->
        Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub cnt P.one) ())
      ctx nest
  in
  (* Dimensions after the split point range freely on both sides; they
     are aggregated into LMAD dimensions (section II-B) rather than left
     as free variables, which keeps the offset distribution of the
     non-overlap test decidable (e.g. LUD's 2-D interior nest). *)
  let expand_rest ctx rs rest =
    List.fold_left
      (fun acc (w, c) -> Refset.expand_loop ctx w ~count:c acc)
      rs rest
  in
  let rec cases = function
    | [] -> true
    | (v, cnt) :: rest ->
        let jv = Ir.Names.fresh "othr" in
        let w' = expand_rest ctx w rest in
        let u' = expand_rest ctx (Refset.subst v (P.var jv) u) rest in
        let ctx_lt =
          Pr.add_range ctx jv ~lo:P.zero ~hi:(P.sub (P.var v) P.one) ()
        in
        let ctx_gt =
          Pr.add_range ctx jv
            ~lo:(P.add (P.var v) P.one)
            ~hi:(P.sub cnt P.one) ()
        in
        check_disjoint st ctx_lt w' u'
        && check_disjoint st ctx_gt w' u'
        && cases rest
  in
  cases nest

and cross_thread_ok st ctx ~ymem ~exclude ~nest ~body ~w_thread : bool =
  match nest with
  | [] -> true
  | _ ->
      let ctx_i =
        List.fold_left
          (fun ctx (v, cnt) ->
            Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub cnt P.one) ())
          ctx nest
      in
      let u_thread =
        guard_locals
          (uses_in_block st ctx_i ~ymem ~exclude body)
          body (List.map fst nest)
      in
      pairwise_thread_ok st ctx nest ~w:w_thread ~u:u_thread

(* Fig. 5b: the candidate is produced by a loop.  The loop parameter,
   the initializer, and the body result are all rebased; body-internal
   safety is the per-iteration walk plus the whole-loop union check. *)
and circuit_loop st ctx info ~ymem ~j ~active ~ixfn ~u_xss ~w_total
    ~add_pending ~params ~var ~bound ~body ~stops =
  let s = info.arr.(j) in
  (* locate the group position of [active] in the pattern *)
  let pos = ref (-1) in
  List.iteri (fun i pe -> if pe.pv = active then pos := i) s.pat;
  if !pos < 0 || List.length params <> List.length s.pat then `Fail
  else
    let param_pe, _init = List.nth params !pos in
    let res_atom = List.nth body.res !pos in
    match (res_atom, List.nth params !pos) with
    | Var res_v, (_, Var init_v) -> (
        let scope = info.defined.(j) in
        match translate st ~scope ixfn with
        | None -> `Fail
        | Some loop_inv_ixfn -> (
            let ctx' =
              Pr.add_range ctx var ~lo:P.zero ~hi:(P.sub bound P.one) ()
            in
            let binfo_body =
              block_info
                ~outer_defined:
                  (List.fold_left
                     (fun acc (pe, _) -> SS.add pe.pv acc)
                     (SS.add var info.defined.(j))
                     params)
                ~outer_allocd:info.allocd.(j) body
            in
            match
              walk st ctx' binfo_body ~ymem
                ~start_j:(Array.length binfo_body.arr)
                ~active:res_v ~ixfn:loop_inv_ixfn ~u0:Refset.empty
                ~stops:(param_pe.pv :: stops)
            with
            | Fail -> `Fail
            | Ok { pendings = body_pendings; u_final = u_body; w_total = w_body }
              ->
                (* cross-iteration check: first the conservative whole-
                   loop unions, then the refined U^{>i} vs W^i condition
                   of Fig. 7b - the writes of iteration i must not touch
                   locations used by any *later* iteration j > i (uses
                   of earlier iterations happened before the write). *)
                let u_loop = Refset.expand_loop ctx var ~count:bound u_body in
                let w_loop = Refset.expand_loop ctx var ~count:bound w_body in
                let refined () =
                  st.opts.enable_refinement
                  &&
                  let jv = Ir.Names.fresh "iter" in
                  let u_j = Refset.subst var (P.var jv) u_body in
                  let ctx_gt =
                    Pr.add_range ctx' jv
                      ~lo:(P.add (P.var var) P.one)
                      ~hi:(P.sub bound P.one) ()
                  in
                  check_disjoint st ctx_gt w_body u_j
                in
                if
                  not (check_disjoint st ctx w_loop u_loop || refined ())
                then (
                  trace st.opts "  chain %s: loop writes overlap loop uses" active;
                  `Fail)
                else if not (check_disjoint st ctx w_loop !u_xss) then (
                  trace st.opts "  chain %s: loop writes overlap U_xss" active;
                  `Fail)
                else begin
                  (* adopt the body rebase, the loop param, and the
                     binding; all become definitive only when the whole
                     outer walk succeeds *)
                  List.iter (fun pnd -> add_pending pnd.pe pnd.mem)
                    body_pendings;
                  add_pending param_pe { block = ymem; ixfn = loop_inv_ixfn };
                  add_pending
                    (List.nth s.pat !pos)
                    { block = ymem; ixfn = loop_inv_ixfn };
                  u_xss := Refset.union !u_xss u_loop;
                  w_total := Refset.union !w_total w_loop;
                  (* continue the chain above the loop at the initializer *)
                  `Continue (init_v, loop_inv_ixfn)
                end))
    | _ -> `Fail

(* Fig. 5a: the candidate is produced by an if; each branch result is
   short-circuited within its branch. *)
and circuit_if st ctx info ~ymem ~j ~active ~ixfn ~u_xss ~add_pending ~s ~tb
    ~fb =
  let pos = ref (-1) in
  List.iteri (fun i pe -> if pe.pv = active then pos := i) s.pat;
  if !pos < 0 then `Fail
  else
    let scope = info.defined.(j) in
    match translate st ~scope ixfn with
    | None -> `Fail
    | Some ix -> (
        let branch (blk : block) =
          if List.length blk.res <> List.length s.pat then `Bfail
          else
            match List.nth blk.res !pos with
            | Var rv ->
                let bi =
                  block_info ~outer_defined:info.defined.(j)
                    ~outer_allocd:info.allocd.(j) blk
                in
                (* the branch result may be defined inside the branch or
                   be a variable from the enclosing scope *)
                if Array.exists (fun st' -> List.exists (fun pe -> pe.pv = rv) st'.pat) bi.arr
                then
                  match
                    walk st ctx bi ~ymem ~start_j:(Array.length bi.arr)
                      ~active:rv ~ixfn:ix ~u0:!u_xss ~stops:[]
                  with
                  | Fail -> `Bfail
                  | Ok { u_final; w_total = w; pendings } ->
                      `Bok (u_final, w, pendings)
                else `Bfail
            | _ -> `Bfail
        in
        match (branch tb, branch fb) with
        | `Bok (u1, _, p1), `Bok (u2, _, p2) ->
            List.iter (fun pnd -> add_pending pnd.pe pnd.mem) (p1 @ p2);
            add_pending (List.nth s.pat !pos) { block = ymem; ixfn = ix };
            u_xss := Refset.union !u_xss (Refset.union u1 u2);
            `Done
        | _ -> `Fail)

(* Fig. 6b: rebase the array result of a mapnest body into its slot of
   the (already rebased) mapnest result.  Failure is not fatal: the
   per-thread result is then copied into the slot. *)
and rebase_mapnest_body st ctx info ~ymem ~j ~nest ~body ~res_ixfn =
  match body.res with
  | [ Var rv ] when is_array st rv ->
      let defined_in_body v =
        List.exists
          (fun s -> List.exists (fun pe -> pe.pv = v) s.pat)
          body.stms
      in
      let already =
        match mem_of st rv with
        | Some m -> m.block = ymem
        | None -> false
      in
      if (not (defined_in_body rv)) || already || already_failed st rv ymem
      then ()
      else begin
        st.stats.candidates <- st.stats.candidates + 1;
        let slot_slice =
          List.map (fun (v, _) -> Lmad.Fix (P.var v)) nest
          @ List.map
              (fun d -> Lmad.Range { start = P.zero; len = d; step = P.one })
              (match typ_of st rv with
              | Some (TArr (_, shape)) -> shape
              | _ -> [])
        in
        let slot_ixfn = Ixfn.slice slot_slice res_ixfn in
        let ctx' =
          List.fold_left
            (fun ctx (v, n) ->
              Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub n P.one) ())
            ctx nest
        in
        let outer_defined =
          List.fold_left
            (fun acc (v, _) -> SS.add v acc)
            info.defined.(j) nest
        in
        let bi = block_info ~outer_defined ~outer_allocd:info.allocd.(j) body in
        let snapshot = Hashtbl.copy st.mems in
        let mark = st.claims in
        (* cross-thread safety: mapnest iterations execute out of order,
           so the chain writes of any thread must avoid the ymem uses of
           every thread (the conservative U^{<i} + U^{>i} condition) *)
        match
          walk st ctx' bi ~ymem ~start_j:(Array.length bi.arr) ~active:rv
            ~ixfn:slot_ixfn ~u0:Refset.empty ~stops:[]
        with
        | Fail ->
            trace st.opts "  mapnest body %s: rebase failed" rv;
            record_failure st rv ymem
        | Ok { u_final; w_total; pendings } ->
            let expand rs =
              List.fold_left
                (fun acc (v, n) -> Refset.expand_loop ctx v ~count:n acc)
                rs (List.rev nest)
            in
            let u_all = expand u_final and w_all = expand w_total in
            let ok =
              check_disjoint st ctx w_all u_all
              || (st.opts.enable_refinement
                 && pairwise_thread_ok st ctx nest ~w:w_total ~u:u_final)
            in
            if not ok then begin
              (* cross-thread conflict: undo the body rebase *)
              Hashtbl.reset st.mems;
              Hashtbl.iter (Hashtbl.replace st.mems) snapshot;
              st.claims <- mark;
              record_failure st rv ymem
            end
            else begin
              st.stats.succeeded <- st.stats.succeeded + 1;
              let at_binding =
                match (info.arr.(j)).pat with pe :: _ -> pe.pv | [] -> rv
              in
              emit_circuit st ~ctx ~candidate:rv ~ymem ~at_binding
                ~last_use:false ~mark ~pendings;
              apply_pendings st pendings
            end
      end
  | _ -> ()

(* Fig. 4a / Fig. 6a: operands of a rebased concat become candidates at
   their row offsets. *)
and circuit_concat_operands st ctx info ~ymem ~j ~ops ~res_ixfn ~last_uses
    ~u0 ~at_binding =
  let offset = ref P.zero in
  List.iter
    (fun op ->
      let shape =
        match typ_of st op with Some (TArr (_, s)) -> s | _ -> []
      in
      match shape with
      | [] -> ()
      | d0 :: rest ->
          let here = !offset in
          offset := P.add !offset d0;
          let already =
            match mem_of st op with
            | Some m -> m.block = ymem
            | None -> false
          in
          if List.mem op last_uses && (not already)
             && not (already_failed st op ymem)
          then begin
            let slc =
              Lmad.Range { start = here; len = d0; step = P.one }
              :: List.map
                   (fun d ->
                     Lmad.Range { start = P.zero; len = d; step = P.one })
                   rest
            in
            let op_ixfn = Ixfn.slice slc res_ixfn in
            st.stats.candidates <- st.stats.candidates + 1;
            let mark = st.claims in
            match
              walk st ctx info ~ymem ~start_j:j ~active:op ~ixfn:op_ixfn
                ~u0 ~stops:[]
            with
            | Ok { pendings; _ } ->
                st.stats.succeeded <- st.stats.succeeded + 1;
                emit_circuit st ~ctx ~candidate:op ~ymem ~at_binding
                  ~last_use:true ~mark ~pendings;
                apply_pendings st pendings
            | Fail -> record_failure st op ymem
          end)
    ops

and apply_pendings st pendings =
  List.iter
    (fun { pe; mem } ->
      pe.pmem <- Some mem;
      Hashtbl.replace st.mems pe.pv mem;
      st.stats.rebased_vars <- st.stats.rebased_vars + 1)
    pendings

(* ---------------------------------------------------------------- *)
(* Circuit-point detection                                            *)
(* ---------------------------------------------------------------- *)

let rec optimize_block st ctx ~outer_defined ~outer_allocd (b : block) : unit
    =
  let info = block_info ~outer_defined ~outer_allocd b in
  let n = Array.length info.arr in
  for k = n - 1 downto 0 do
    Chaos.probe "shortcircuit";
    let s = info.arr.(k) in
    (* recurse into sub-blocks first: innermost circuit points (e.g.
       NW's update inside the wavefront loop) are found there *)
    (match s.exp with
    | ELoop { params; var; bound; body } ->
        let ctx' = Pr.add_range ctx var ~lo:P.zero ~hi:(P.sub bound P.one) () in
        let inner_defined =
          List.fold_left
            (fun acc (pe, _) -> SS.add pe.pv acc)
            (SS.add var info.defined.(k))
            params
        in
        let inner_allocd =
          List.fold_left
            (fun acc (pe, _) ->
              if pe.pt = TMem then SS.add pe.pv acc else acc)
            info.allocd.(k) params
        in
        optimize_block st ctx' ~outer_defined:inner_defined
          ~outer_allocd:inner_allocd body
    | EMap { nest; body } ->
        let ctx' =
          List.fold_left
            (fun ctx (v, n) ->
              Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub n P.one) ())
            ctx nest
        in
        let inner_defined =
          List.fold_left (fun acc (v, _) -> SS.add v acc) info.defined.(k) nest
        in
        optimize_block st ctx' ~outer_defined:inner_defined
          ~outer_allocd:info.allocd.(k) body
    | EIf { tb; fb; _ } ->
        optimize_block st ctx ~outer_defined:info.defined.(k)
          ~outer_allocd:info.allocd.(k) tb;
        optimize_block st ctx ~outer_defined:info.defined.(k)
          ~outer_allocd:info.allocd.(k) fb
    | _ -> ());
    (* circuit point: update with a lastly-used array source *)
    match s.exp with
    | EUpdate { dst; slc; src = SrcArr bv }
      when List.mem bv s.last_uses && is_array st bv -> (
        match mem_of st dst with
        | None -> ()
        | Some dm -> (
            let target_ixfn =
              match slice_dims_of slc with
              | `Triplet sds -> Some (Ixfn.slice sds dm.ixfn)
              | `Lmad l -> Ixfn.lmad_slice ctx ~slc:l dm.ixfn
            in
            match target_ixfn with
            | None -> ()
            | Some tixfn -> (
                let already =
                  match mem_of st bv with
                  | Some m -> m.block = dm.block && Ixfn.equal m.ixfn tixfn
                  | None -> false
                in
                if already || already_failed st bv dm.block then ()
                else begin
                  st.stats.candidates <- st.stats.candidates + 1;
                  trace st.opts "circuit attempt: %s into %s[...] (update)" bv
                    dm.block;
                  let mark = st.claims in
                  match
                    walk st ctx info ~ymem:dm.block ~start_j:k ~active:bv
                      ~ixfn:tixfn ~u0:Refset.empty ~stops:[]
                  with
                  | Ok { pendings; _ } ->
                      st.stats.succeeded <- st.stats.succeeded + 1;
                      trace st.opts "  -> SUCCESS (%d vars)" (List.length pendings);
                      emit_circuit st ~ctx ~candidate:bv ~ymem:dm.block
                        ~at_binding:
                          (match s.pat with pe :: _ -> pe.pv | [] -> bv)
                        ~last_use:true ~mark ~pendings;
                      apply_pendings st pendings
                  | Fail ->
                      trace st.opts "  -> failed";
                      record_failure st bv dm.block
                end)))
    | EConcat ops when List.exists (fun o -> List.mem o s.last_uses) ops -> (
        (* standalone concat circuit point (Fig. 4a): operands move into
           the concat result's memory *)
        match s.pat with
        | [ pe ] -> (
            match mem_of st pe.pv with
            | Some rm ->
                circuit_concat_operands st ctx info ~ymem:rm.block ~j:k ~ops
                  ~res_ixfn:rm.ixfn ~last_uses:s.last_uses ~u0:Refset.empty
                  ~at_binding:pe.pv
            | None -> ())
        | _ -> ())
    | EMap { nest; body } ->
        (* implicit circuit point: per-thread result into the mapnest
           result's memory (Fig. 6b) *)
        (match (s.pat, mem_of st (List.hd s.pat).pv) with
        | [ _ ], Some rm ->
            let ctx' =
              List.fold_left
                (fun ctx (v, n) ->
                  Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub n P.one) ())
                ctx nest
            in
            rebase_mapnest_body st ctx' info ~ymem:rm.block ~j:k ~nest ~body
              ~res_ixfn:rm.ixfn
        | _ -> ())
    | _ -> ()
  done

(* ---------------------------------------------------------------- *)
(* Entry point                                                        *)
(* ---------------------------------------------------------------- *)

let optimize ?(options = default_options) ?(rounds = 2) ?cert (p : prog) :
    prog * stats =
  let st = build_tables options cert p in
  ignore (Lastuse.annotate p);
  let outer_defined =
    List.fold_left (fun acc pe -> SS.add pe.pv acc) SS.empty p.params
  in
  let outer_allocd =
    List.fold_left
      (fun acc pe ->
        match pe.pmem with Some m -> SS.add m.block acc | None -> acc)
      SS.empty p.params
  in
  for _ = 1 to rounds do
    optimize_block st p.ctx ~outer_defined ~outer_allocd p.body
  done;
  (p, st.stats)
