(* Memlint: a static verifier for the memory IR (run between pipeline
   passes).

   Every pass of the memory pipeline - introduction, hoisting, last-use,
   short-circuiting, cleanup - preserves a set of invariants that the
   paper states informally and the executor silently relies on.  This
   module checks them per statement:

   - *alloc dominance & sizing*: every memory annotation names a block
     allocated (in scope) before the binding, its index function only
     mentions in-scope scalars, and the footprint of its memory-side
     LMAD provably fits in [0, size) of the block (discharged with
     {!Symalg.Prover.check_in_range} over {!Lmads.Lmad.bounds});

   - *alias / annotation consistency*: change-of-layout operations
     (slice, transpose, reshape, reverse, variable copy) share their
     operand's block with the correspondingly transformed index
     function; [EUpdate] results stay in the destination's block with
     its index function; and an update whose source array lives in the
     destination's block (a short-circuited copy) must be the source's
     last use, or the later reads observe the overwrite;

   - *existential well-formedness*: [if]/[loop] array results follow
     memintro's [mem, witness..., array] grouping, each branch/body
     returns the block its result actually lives in, and the branch
     witnesses instantiate the anti-unified index function;

   - *mapnest write races*: the per-thread writes to enclosing memory
     (implicit result-slot writes and in-place updates), with the nest
     variables case-split exactly like the short-circuiting pass, must
     be pairwise disjoint across threads.

   Verdicts are three-valued: a violation is an [Error] only when it is
   *provable* (a structurally wrong block, a footprint proved out of
   bounds, a write set provably shared by all threads); everything the
   sound-but-incomplete prover cannot decide is a [Warning].  Hence a
   correct program never errors, and the seven benchmark programs lint
   clean at every stage.

   The input program is cloned before checking (last-use annotations
   are recomputed on the clone), so [check] never mutates its input. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module Ixfn = Lmads.Ixfn
module Refset = Lmads.Refset
module SM = Map.Make (String)
module SS = Ir.Ast.SS

type severity = Error | Warning

type violation = {
  severity : severity;
  rule : string; (* alloc-dominance | footprint | layout | last-use
                    | existential | write-race | reuse *)
  binding : string; (* the pattern variable the violation is about *)
  detail : string;
}

type report = {
  program : string;
  stage : string;
  stms : int; (* statements traversed *)
  annotations : int; (* memory annotations checked *)
  bounds_proved : int; (* footprints proved in bounds *)
  bounds_undecided : int;
  races_proved : int; (* mapnest write sets proved disjoint *)
  races_undecided : int;
  reuse_proved : int; (* same-block live-range overlaps proved disjoint *)
  reuse_undecided : int;
  reuse_holes : int;
      (* same-block pairs accepted through the liveness exemption: the
         earlier binding's live range ends before the later one writes
         - a lifetime hole, the sharing the packer certifies *)
  violations : violation list;
}

let errors r = List.filter (fun v -> v.severity = Error) r.violations
let warnings r = List.filter (fun v -> v.severity = Warning) r.violations
let ok r = errors r = []

let pp_violation ppf v =
  Fmt.pf ppf "%s [%s] %s: %s"
    (match v.severity with Error -> "error " | Warning -> "warning")
    v.rule v.binding v.detail

let pp_report ppf r =
  let n_err = List.length (errors r)
  and n_warn = List.length (warnings r) in
  Report.section
    ~title:
      (Fmt.str "memlint %s%s" r.program
         (if r.stage = "" then "" else " @ " ^ r.stage))
    ppf
    [
      ("statements", string_of_int r.stms);
      ("annotations checked", string_of_int r.annotations);
      ( "footprint bounds",
        Fmt.str "%d proved, %d undecided" r.bounds_proved r.bounds_undecided
      );
      ( "mapnest write races",
        Fmt.str "%d proved disjoint, %d undecided" r.races_proved
          r.races_undecided );
      ( "block reuse",
        Fmt.str "%d proved disjoint, %d undecided, %d hole-exempt"
          r.reuse_proved r.reuse_undecided r.reuse_holes );
      ("errors / warnings", Fmt.str "%d / %d" n_err n_warn);
    ];
  if r.violations <> [] then
    Fmt.pf ppf "@,%a" (Report.items ~bullet:"-" pp_violation) r.violations

(* ---------------------------------------------------------------- *)
(* Checker state                                                     *)
(* ---------------------------------------------------------------- *)

(* Lexical environment, threaded functionally so block scoping falls
   out of recursion. *)
type env = {
  sizes : P.t option SM.t;
      (* memory blocks in scope; [Some size] when the element count is
         known (EAlloc, input arrays), [None] for existential blocks *)
  types : typ SM.t;
  mems : mem_info SM.t; (* array variable -> its annotation *)
  scalars : P.t P.SM.t; (* i64 definitions, for witness resolution *)
}

type acc = {
  mutable n_stms : int;
  mutable n_annots : int;
  mutable n_bounds_proved : int;
  mutable n_bounds_undec : int;
  mutable n_races_proved : int;
  mutable n_races_undec : int;
  mutable n_reuse_proved : int;
  mutable n_reuse_undec : int;
  mutable n_reuse_holes : int;
  mutable viols : violation list; (* reversed *)
  aliases : Alias.t;
}

let report acc severity rule binding fmt =
  Fmt.kstr
    (fun detail ->
      acc.viols <- { severity; rule; binding; detail } :: acc.viols)
    fmt

(* Resolve scalar definitions down to program parameters / loop
   variables, so the prover and structural equality see through
   materialized witnesses ([let w = EIdx p]). *)
let resolve env p =
  try P.subst_fixpoint env.scalars p with Failure _ -> p

let resolve_ixfn env ix =
  try Ixfn.subst_fixpoint env.scalars ix with Failure _ -> ix

let resolve_lmad env l =
  try Lmad.subst_fixpoint env.scalars l with Failure _ -> l

let atom_poly = function
  | Int c -> Some (P.const c)
  | Var v -> Some (P.var v)
  | _ -> None

(* i64 scalar definitions usable for resolution (mirrors the table the
   short-circuiting pass builds). *)
let scalar_def (s : stm) : (string * P.t) option =
  match (s.pat, s.exp) with
  | [ pe ], EIdx p when pe.pt = TScalar I64 -> Some (pe.pv, p)
  | [ pe ], EAtom (Int c) when pe.pt = TScalar I64 -> Some (pe.pv, P.const c)
  | [ pe ], EAtom (Var v) when pe.pt = TScalar I64 -> Some (pe.pv, P.var v)
  | [ pe ], EBin (op, a, b) when pe.pt = TScalar I64 -> (
      match (atom_poly a, atom_poly b) with
      | Some pa, Some pb -> (
          match op with
          | Add -> Some (pe.pv, P.add pa pb)
          | Sub -> Some (pe.pv, P.sub pa pb)
          | Mul -> Some (pe.pv, P.mul pa pb)
          | _ -> None)
      | _ -> None)
  | _ -> None

let slice_to_lmad_dims sds =
  List.map
    (function
      | SFix i -> Lmad.Fix i
      | SRange { start; len; step } -> Lmad.Range { start; len; step })
    sds

let sliced_ixfn ctx (slc : slice) (ixfn : Ixfn.t) : Ixfn.t option =
  match slc with
  | STriplet sds -> (
      try Some (Ixfn.slice (slice_to_lmad_dims sds) ixfn)
      with Invalid_argument _ -> None)
  | SLmad l -> Ixfn.lmad_slice ctx ~slc:l ixfn

(* The LMAD adjacent to memory: for a chain, the footprint is a subset
   of the last link's point set, so bounding it is sound. *)
let memory_lmad ixfn =
  match List.rev (Ixfn.chain ixfn) with
  | l :: _ -> l
  | [] ->
      Fault.internal ~where:"Memlint.memory_lmad" "empty index-function chain"

(* ---------------------------------------------------------------- *)
(* Per-annotation checks                                             *)
(* ---------------------------------------------------------------- *)

let check_footprint acc env ctx ~who (m : mem_info) =
  match SM.find_opt m.block env.sizes with
  | None | Some None -> ()
  | Some (Some size) -> (
      let l = resolve_lmad env (memory_lmad m.ixfn) in
      match Lmad.bounds ctx l with
      | None -> () (* possibly-empty or sign-undecided: nothing provable *)
      | Some (lo, hi) -> (
          let last = P.sub (resolve env size) P.one in
          match
            ( Pr.check_in_range ctx lo ~lo:P.zero ~hi:last,
              Pr.check_in_range ctx hi ~lo:P.zero ~hi:last )
          with
          | Pr.Out_of_range, _ | _, Pr.Out_of_range ->
              report acc Error "footprint" who
                "footprint [%a, %a] provably exceeds block %s of size %a"
                P.pp lo P.pp hi m.block P.pp size
          | Pr.In_range, Pr.In_range ->
              acc.n_bounds_proved <- acc.n_bounds_proved + 1
          | _ ->
              acc.n_bounds_undec <- acc.n_bounds_undec + 1;
              report acc Warning "footprint" who
                "cannot prove footprint of block %s within [0, %a)" m.block
                P.pp size))

(* Generic checks on one annotation: block in scope, index function
   closed under the scope, rank agreement, footprint in bounds. *)
let check_annot acc env ctx (pe : pat_elem) =
  match pe.pmem with
  | None -> report acc Error "alloc-dominance" pe.pv "missing memory annotation"
  | Some m ->
      acc.n_annots <- acc.n_annots + 1;
      if not (SM.mem m.block env.sizes) then
        report acc Error "alloc-dominance" pe.pv
          "memory block %s is not allocated in scope" m.block;
      List.iter
        (fun v ->
          if not (SM.mem v env.types) then
            report acc Error "alloc-dominance" pe.pv
              "index function mentions out-of-scope variable %s" v)
        (Ixfn.vars m.ixfn);
      if Ixfn.rank m.ixfn <> typ_rank pe.pt then
        report acc Error "layout" pe.pv
          "index function rank %d does not match array rank %d"
          (Ixfn.rank m.ixfn) (typ_rank pe.pt)
      else if
        not
          (List.for_all2
             (fun a b -> P.equal (resolve env a) (resolve env b))
             (Ixfn.shape m.ixfn) (typ_shape pe.pt))
      then
        report acc Error "layout" pe.pv
          "index function shape does not match the array type's shape";
      check_footprint acc env ctx ~who:pe.pv m

let operand_mem acc env ~who v =
  match SM.find_opt v env.mems with
  | Some m -> Some m
  | None ->
      report acc Error "alloc-dominance" who
        "array operand %s has no memory annotation" v;
      None

(* Views must share the operand's block with the transformed index
   function (section IV-B: change of layout is free, not a move). *)
let check_view acc env ctx (s : stm) v (transform : Ixfn.t -> Ixfn.t option) =
  match s.pat with
  | [ pe ] -> (
      match (pe.pmem, operand_mem acc env ~who:pe.pv v) with
      | Some m, Some mv -> (
          if m.block <> mv.block then
            report acc Error "layout" pe.pv
              "change-of-layout result lives in block %s, operand %s in %s"
              m.block v mv.block;
          match transform mv.ixfn with
          | None -> ()
          | Some expect ->
              if
                not
                  (Ixfn.equal (resolve_ixfn env expect)
                     (resolve_ixfn env m.ixfn))
              then
                report acc Error "layout" pe.pv
                  "index function is not the transformed index function of %s"
                  v)
      | _ -> ignore ctx)
  | _ -> ()

(* ---------------------------------------------------------------- *)
(* Existential grouping (memintro's [mem, witness..., array])        *)
(* ---------------------------------------------------------------- *)

type egroup = {
  mem_name : string;
  mem_pos : int;
  wit_names : string list;
  wit_pos : int list;
  arr_pe : pat_elem;
  arr_pos : int;
}

(* Decompose an if/loop pattern into existential groups, reporting
   structural violations (a memory binder not followed by an array
   result).  Scalars outside groups pass through. *)
let pattern_groups acc ~who (pat : pat_elem list) : egroup list =
  let groups = ref [] in
  let current = ref None in
  List.iteri
    (fun i pe ->
      match (pe.pt, !current) with
      | TMem, None -> current := Some (pe.pv, i, [])
      | TMem, Some (m, _, _) ->
          report acc Error "existential" who
            "memory binder %s not followed by an array result" m;
          current := Some (pe.pv, i, [])
      | TScalar I64, Some (m, mi, wits) ->
          current := Some (m, mi, wits @ [ (pe.pv, i) ])
      | TArr _, Some (m, mi, wits) ->
          groups :=
            {
              mem_name = m;
              mem_pos = mi;
              wit_names = List.map fst wits;
              wit_pos = List.map snd wits;
              arr_pe = pe;
              arr_pos = i;
            }
            :: !groups;
          current := None
      | _, Some (m, _, _) ->
          report acc Error "existential" who
            "memory binder %s followed by a non-witness binder %s" m pe.pv;
          current := None
      | _, None -> ())
    pat;
  (match !current with
  | Some (m, _, _) ->
      report acc Error "existential" who
        "memory binder %s not followed by an array result" m
  | None -> ());
  List.rev !groups

(* Check one branch/body result list against one group.  [env_inner] is
   the environment after the branch body; [subst_atoms] maps witness
   binder names to the branch's witness results for the instantiation
   check, which only applies in strict mode (the array binder still
   lives in the group's existential block - short-circuiting may
   legitimately redirect it into the destination's block, in which case
   the branch result must simply live in that same block). *)
let check_group_results acc env_inner ~who ~what (g : egroup)
    ~(outer_mem : mem_info) (results : atom list) =
  let nth_opt = List.nth_opt results in
  let strict = outer_mem.block = g.mem_name in
  (match nth_opt g.mem_pos with
  | Some (Var bm) -> (
      match SM.find_opt bm env_inner.types with
      | Some TMem ->
          if not (SM.mem bm env_inner.sizes) then
            report acc Error "existential" who
              "%s returns memory %s which is not in scope" what bm
      | _ ->
          report acc Error "existential" who
            "%s returns non-memory %s in the memory position" what bm)
  | _ ->
      report acc Error "existential" who
        "%s memory position is not a variable" what);
  List.iter
    (fun wp ->
      match nth_opt wp with
      | Some (Int _) -> ()
      | Some (Var w) ->
          if SM.find_opt w env_inner.types <> Some (TScalar I64) then
            report acc Error "existential" who
              "%s witness position returns non-i64 %s" what w
      | _ ->
          report acc Error "existential" who
            "%s witness position is not an i64 atom" what)
    g.wit_pos;
  match nth_opt g.arr_pos with
  | Some (Var rv) -> (
      match SM.find_opt rv env_inner.mems with
      | None ->
          report acc Error "existential" who
            "%s returns array %s without a memory annotation" what rv
      | Some mrv ->
          let branch_mem =
            match nth_opt g.mem_pos with Some (Var bm) -> Some bm | _ -> None
          in
          if strict then begin
            (if branch_mem <> Some mrv.block then
               report acc Error "existential" who
                 "%s returns array %s in block %s but witnesses block %s"
                 what rv mrv.block
                 (Option.value ~default:"?" branch_mem));
            (* the witness atoms must instantiate the anti-unified
               (outer) index function to the branch's *)
            let subst =
              List.fold_left2
                (fun m w wp ->
                  match Option.bind (nth_opt wp) atom_poly with
                  | Some p -> P.SM.add w p m
                  | None -> m)
                P.SM.empty g.wit_names g.wit_pos
            in
            let expect =
              resolve_ixfn env_inner (Ixfn.subst_map subst outer_mem.ixfn)
            in
            if not (Ixfn.equal expect (resolve_ixfn env_inner mrv.ixfn)) then
              report acc Error "existential" who
                "%s witnesses do not instantiate the existential index \
                 function of %s"
                what rv
          end
          else if mrv.block <> outer_mem.block then
            (* redirected (short-circuited) existential: the branch must
               return the array in the very block the binding claims *)
            report acc Error "existential" who
              "%s returns array %s in block %s, but the binding is \
               annotated with block %s"
              what rv mrv.block outer_mem.block)
  | _ ->
      report acc Error "existential" who "%s array position is not a variable"
        what

(* ---------------------------------------------------------------- *)
(* Mapnest write races                                               *)
(* ---------------------------------------------------------------- *)

(* All writes a thread performs into enclosing memory: in-place updates
   (recursively, aggregated over inner loop/nest variables) plus the
   implicit write of each array result into its slot.  Grouped by
   block; offsets in different blocks are incomparable. *)
let thread_writes env_outer env_body ctx ~nest ~(body : block)
    (pat : pat_elem list) : (string * Refset.t) list =
  let tbl = Hashtbl.create 8 in
  let add block set =
    let prev =
      match Hashtbl.find_opt tbl block with
      | Some s -> s
      | None -> Refset.empty
    in
    Hashtbl.replace tbl block (Refset.union prev set)
  in
  let set_of ix =
    match Ixfn.accessed_set (resolve_ixfn env_body ix) with
    | Some l -> Refset.of_lmad l
    | None -> Refset.top
  in
  (* updates targeting enclosing blocks, anywhere in the body; inner
     iteration variables are aggregated away by dimension promotion *)
  let rec updates inner_loops (b : block) =
    List.iter
      (fun s ->
        (match s.exp with
        | EUpdate { dst; slc; _ } -> (
            match SM.find_opt dst env_body.mems with
            | Some mdst when SM.mem mdst.block env_outer.sizes -> (
                match sliced_ixfn ctx slc mdst.ixfn with
                | Some ix ->
                    let set =
                      List.fold_left
                        (fun acc (v, cnt) ->
                          Refset.expand_loop ctx v ~count:cnt acc)
                        (set_of ix) inner_loops
                    in
                    add mdst.block set
                | None -> add mdst.block Refset.top)
            | _ -> ())
        | _ -> ());
        match s.exp with
        | ELoop { var; bound; body; _ } ->
            updates ((var, bound) :: inner_loops) body
        | EMap { nest = n2; body; _ } ->
            updates (List.rev_append n2 inner_loops) body
        | EIf { tb; fb; _ } ->
            updates inner_loops tb;
            updates inner_loops fb
        | _ -> ())
      b.stms
  in
  updates [] body;
  (* implicit result-slot writes *)
  List.iteri
    (fun k pe ->
      match pe.pmem with
      | Some m when is_array_typ pe.pt -> (
          let res_rebased =
            match List.nth_opt body.res k with
            | Some (Var rv) -> (
                match SM.find_opt rv env_body.mems with
                | Some mrv when mrv.block = m.block ->
                    (* the body result was rebased into its slot: its
                       own accesses are the thread's writes *)
                    Some (set_of mrv.ixfn)
                | _ -> None)
            | _ -> None
          in
          match res_rebased with
          | Some set -> add m.block set
          | None ->
              (* thread-local result copied into the slot *)
              let shape = Ixfn.shape m.ixfn in
              let rec drop n l =
                if n = 0 then l
                else match l with _ :: r -> drop (n - 1) r | [] -> []
              in
              let slc =
                List.map (fun (v, _) -> Lmad.Fix (P.var v)) nest
                @ List.map
                    (fun d ->
                      Lmad.Range { start = P.zero; len = d; step = P.one })
                    (drop (List.length nest) shape)
              in
              add m.block (set_of (Ixfn.slice slc m.ixfn)))
      | _ -> ())
    pat;
  Hashtbl.fold (fun b s l -> (b, s) :: l) tbl []

(* Case-split on the first differing nest dimension, exactly like the
   short-circuiting pass: dimensions before it coincide, it is strictly
   smaller / strictly larger, dimensions after it range freely. *)
let pairwise_threads_disjoint ctx (nest : (string * P.t) list) w : bool =
  let ctx =
    List.fold_left
      (fun ctx (v, cnt) ->
        Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub cnt P.one) ())
      ctx nest
  in
  let expand_rest rs rest =
    List.fold_left
      (fun acc (v, c) -> Refset.expand_loop ctx v ~count:c acc)
      rs rest
  in
  let rec cases = function
    | [] -> true
    | (v, cnt) :: rest ->
        let jv = Ir.Names.fresh "lint_othr" in
        let w_self = expand_rest w rest in
        let w_other = expand_rest (Refset.subst v (P.var jv) w) rest in
        let ctx_lt =
          Pr.add_range ctx jv ~lo:P.zero ~hi:(P.sub (P.var v) P.one) ()
        in
        let ctx_gt =
          Pr.add_range ctx jv
            ~lo:(P.add (P.var v) P.one)
            ~hi:(P.sub cnt P.one) ()
        in
        Refset.disjoint ctx_lt w_self w_other
        && Refset.disjoint ctx_gt w_self w_other
        && cases rest
  in
  cases nest

(* A write set provably shared by distinct threads: independent of every
   nest variable, provably nonempty, with at least two threads. *)
let provable_race ctx nest w =
  let nest_vars = List.map fst nest in
  let independent =
    match w with
    | Refset.Top -> false
    | Refset.Union ls ->
        ls <> []
        && List.for_all
             (fun l ->
               not (List.exists (fun v -> List.mem v nest_vars) (Lmad.vars l)))
             ls
  in
  independent
  && (match w with
     | Refset.Union (l :: _) -> Lmad.bounds ctx l <> None
     | _ -> false)
  && List.exists
       (fun (_, cnt) -> Pr.prove_ge ctx cnt (P.const 2))
       nest

let check_map_races acc env env_body ctx ~who ~nest ~body pat =
  let ctx_i =
    List.fold_left
      (fun ctx (v, cnt) ->
        Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub cnt P.one) ())
      ctx nest
  in
  List.iter
    (fun (block, w) ->
      if pairwise_threads_disjoint ctx nest w then
        acc.n_races_proved <- acc.n_races_proved + 1
      else if provable_race ctx_i nest w then
        report acc Error "write-race" who
          "distinct threads provably write the same locations of block %s"
          block
      else begin
        acc.n_races_undec <- acc.n_races_undec + 1;
        report acc Warning "write-race" who
          "cannot prove per-thread writes to block %s disjoint" block
      end)
    (thread_writes env env_body ctx_i ~nest ~body pat)

(* ---------------------------------------------------------------- *)
(* Statement / block traversal                                        *)
(* ---------------------------------------------------------------- *)

let bind_pat env (s : stm) (pe : pat_elem) =
  let sizes =
    match (pe.pt, s.exp) with
    | TMem, EAlloc size -> SM.add pe.pv (Some size) env.sizes
    | TMem, _ -> SM.add pe.pv None env.sizes
    | _ -> env.sizes
  in
  let mems =
    match pe.pmem with
    | Some m when is_array_typ pe.pt -> SM.add pe.pv m env.mems
    | _ -> env.mems
  in
  { env with sizes; mems; types = SM.add pe.pv pe.pt env.types }

let check_update acc env ctx (s : stm) ~dst ~slc ~src =
  match s.pat with
  | [ pe ] -> (
      match (pe.pmem, operand_mem acc env ~who:pe.pv dst) with
      | Some m, Some mdst -> (
          if m.block <> mdst.block then
            report acc Error "layout" pe.pv
              "update result lives in block %s, destination %s in %s" m.block
              dst mdst.block
          else if
            not
              (Ixfn.equal (resolve_ixfn env m.ixfn) (resolve_ixfn env mdst.ixfn))
          then
            report acc Error "layout" pe.pv
              "update result's index function differs from destination %s's"
              dst;
          (* the written slice must stay within the destination block *)
          (match sliced_ixfn ctx slc mdst.ixfn with
          | Some wix ->
              check_footprint acc env ctx ~who:pe.pv
                { block = mdst.block; ixfn = wix }
          | None -> ());
          (* a source living in the destination's block is a
             short-circuited copy: it must be lastly used here, or later
             reads of it observe this (and subsequent) overwrites *)
          match src with
          | SrcArr b -> (
              match SM.find_opt b env.mems with
              | Some mb
                when mb.block = mdst.block
                     && (not (SS.mem b (Alias.closure acc.aliases dst)))
                     && not (List.mem b s.last_uses) ->
                  let wset =
                    match
                      Option.bind
                        (Option.map (resolve_ixfn env)
                           (sliced_ixfn ctx slc mdst.ixfn))
                        Ixfn.accessed_set
                    with
                    | Some l -> Refset.of_lmad l
                    | None -> Refset.top
                  in
                  let bset =
                    match Ixfn.accessed_set (resolve_ixfn env mb.ixfn) with
                    | Some l -> Refset.of_lmad l
                    | None -> Refset.top
                  in
                  if not (Refset.disjoint ctx wset bset) then
                    report acc Error "last-use" pe.pv
                      "source %s shares block %s with the destination but \
                       is used again after this update"
                      b mdst.block
              | _ -> ())
          | SrcScalar _ -> ())
      | _ -> ())
  | _ -> ()

(* Scalar reads: only provable out-of-bounds indices are reported (the
   prover cannot see branch conditions, so undecided is silent). *)
let check_index acc env ctx ~who v idxs =
  match SM.find_opt v env.types with
  | Some (TArr (_, shape)) when List.length shape = List.length idxs ->
      List.iter2
        (fun i d ->
          match
            Pr.check_in_range ctx (resolve env i) ~lo:P.zero
              ~hi:(P.sub (resolve env d) P.one)
          with
          | Pr.Out_of_range ->
              report acc Error "footprint" who
                "index %a of %s provably outside [0, %a)" P.pp i v P.pp d
          | _ -> ())
        idxs shape
  | _ -> ()

let rec check_block acc env ctx (b : block) : env =
  let env' = List.fold_left (fun env s -> check_stm acc env ctx s) env b.stms in
  check_reuse acc env' ctx b;
  env'

(* Memory-block reuse discipline (the {!Reuse} pass's contract): two
   arrays bound at the same lexical level into the same block must not
   have overlapping live ranges - unless they alias each other (views
   of the same data), the data demonstrably flows between them through
   the block (a statement reading one while binding an array into the
   block: the short-circuited concat/update/mapnest circuits), or
   their footprints are provably disjoint.  A live range runs from the
   binding statement to the last statement referencing the array or
   any alias of it (the block result counts as one past the end).

   A violation is an [Error] only when the clobber is total: the two
   memory-side LMADs are structurally equal, so the later binding
   provably overwrites every element of the earlier one while it is
   still read.  Anything the prover cannot separate is a [Warning]. *)
and check_reuse acc env ctx (b : block) =
  let stms = Array.of_list b.stms in
  let n = Array.length stms in
  (* last textual reference of each variable at this level; nested
     bodies count toward their enclosing statement's index *)
  let last_ref = Hashtbl.create 16 in
  Array.iteri
    (fun j s -> SS.iter (fun v -> Hashtbl.replace last_ref v j) (fv_stm s))
    stms;
  List.iter
    (function Var v -> Hashtbl.replace last_ref v n | _ -> ())
    b.res;
  let ref_of v =
    match Hashtbl.find_opt last_ref v with Some j -> j | None -> -1
  in
  let live_end v i =
    SS.fold
      (fun w e -> max e (ref_of w))
      (Alias.closure acc.aliases v)
      (max i (ref_of v))
  in
  (* data flows from the earlier array [va] into the later binding
     [vb] through block [blk]: the statement that binds [vb] itself
     (or an alias of [vb]) into the block reads [va] or an alias of it
     (concat parts, update circuits, mapnest results) - the overlap is
     then the point of the reuse, not a clobber of live contents.  An
     unrelated flow-through statement elsewhere in the block must NOT
     exempt the pair: the reuse rule is the coalescer's safety net,
     and a genuine clobber can share a block with an innocent circuit. *)
  let justified blk va vb =
    let va_closure = Alias.closure acc.aliases va in
    let vb_closure = Alias.closure acc.aliases vb in
    Array.exists
      (fun s ->
        (not (SS.is_empty (SS.inter va_closure (fv_stm s))))
        && List.exists
             (fun pe ->
               is_array_typ pe.pt
               && SS.mem pe.pv vb_closure
               && match pe.pmem with
                  | Some m -> m.block = blk
                  | None -> false)
             s.pat)
      stms
  in
  (* arrays bound at this level, grouped by block name, in binding
     order.  Scratch bindings declare a layout without writing, so
     they cannot clobber anything: skip them as the later binding. *)
  let binds = Hashtbl.create 8 in
  Array.iteri
    (fun i s ->
      List.iter
        (fun pe ->
          match pe.pmem with
          | Some m when is_array_typ pe.pt ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt binds m.block)
              in
              let writes = match s.exp with EScratch _ -> false | _ -> true in
              Hashtbl.replace binds m.block ((pe.pv, i, m, writes) :: prev)
        | _ -> ())
        s.pat)
    stms;
  Hashtbl.iter
    (fun blk entries ->
      let entries = List.rev entries (* binding order *) in
      let rec pairs = function
        | [] -> ()
        | (va, ia, ma, _) :: rest ->
            List.iter
              (fun (vb, ib, mb, wb) ->
                if wb && ib >= live_end va ia then
                  (* the earlier binding is dead by the time the later
                     one writes: hole sharing, accepted through the
                     liveness exemption and counted so the packer's
                     holes stay observable here *)
                  acc.n_reuse_holes <- acc.n_reuse_holes + 1
                else if wb then
                  if
                    SS.mem vb (Alias.closure acc.aliases va)
                    || justified blk va vb
                  then ()
                  else
                    let la = resolve_lmad env (memory_lmad ma.ixfn)
                    and lb = resolve_lmad env (memory_lmad mb.ixfn) in
                    if
                      Refset.disjoint ctx (Refset.of_lmad la)
                        (Refset.of_lmad lb)
                    then acc.n_reuse_proved <- acc.n_reuse_proved + 1
                    else if Lmad.equal la lb then
                      report acc Error "reuse" vb
                        "rebinds block %s with the footprint of %s, which is \
                         still live (read after this binding)"
                        blk va
                    else begin
                      acc.n_reuse_undec <- acc.n_reuse_undec + 1;
                      report acc Warning "reuse" vb
                        "shares block %s with %s while both are live; cannot \
                         prove their footprints disjoint"
                        blk va
                    end)
              rest;
            pairs rest
      in
      pairs entries)
    binds

and check_stm acc env ctx (s : stm) : env =
  acc.n_stms <- acc.n_stms + 1;
  (match s.exp with
  | EAtom (Var v) when s.pat <> [] && is_array_typ (List.hd s.pat).pt ->
      check_view acc env ctx s v (fun ix -> Some ix)
  | ESlice (v, slc) -> check_view acc env ctx s v (sliced_ixfn ctx slc)
  | ETranspose (v, perm) ->
      check_view acc env ctx s v (fun ix ->
          try Some (Ixfn.permute perm ix) with Invalid_argument _ -> None)
  | EReverse (v, d) ->
      check_view acc env ctx s v (fun ix ->
          try Some (Ixfn.reverse d ix) with Invalid_argument _ -> None)
  | EReshape (v, shape) ->
      check_view acc env ctx s v (fun ix ->
          try Some (Ixfn.reshape ctx shape ix) with Invalid_argument _ -> None)
  | EUpdate { dst; slc; src } -> check_update acc env ctx s ~dst ~slc ~src
  | EIndex (v, idxs) -> check_index acc env ctx ~who:v v idxs
  | EMap { nest; body } ->
      let who =
        match s.pat with pe :: _ -> pe.pv | [] -> "<mapnest>"
      in
      let env_nest =
        List.fold_left
          (fun e (v, _) ->
            { e with types = SM.add v (TScalar I64) e.types })
          env nest
      in
      let ctx_i =
        List.fold_left
          (fun ctx (v, cnt) ->
            Pr.add_range ctx v ~lo:P.zero ~hi:(P.sub cnt P.one) ())
          ctx nest
      in
      let env_body = check_block acc env_nest ctx_i body in
      check_map_races acc env env_body ctx ~who ~nest ~body s.pat
  | ELoop { params; var; bound; body } ->
      check_loop acc env ctx s ~params ~var ~bound ~body
  | EIf { cond = _; tb; fb } -> check_if acc env ctx s ~tb ~fb
  | _ -> ());
  (* bind and check the pattern, left to right: witness binders come
     before the array annotations that mention them *)
  let env =
    List.fold_left
      (fun env pe ->
        let env = bind_pat env s pe in
        if is_array_typ pe.pt then check_annot acc env ctx pe;
        env)
      env s.pat
  in
  match scalar_def s with
  | Some (v, p) -> { env with scalars = P.SM.add v p env.scalars }
  | None -> env

and check_if acc env ctx (s : stm) ~tb ~fb =
  let who = match s.pat with pe :: _ -> pe.pv | [] -> "<if>" in
  let env_t = check_block acc env ctx tb in
  let env_f = check_block acc env ctx fb in
  if
    List.length tb.res <> List.length s.pat
    || List.length fb.res <> List.length s.pat
  then
    report acc Error "existential" who
      "branch results do not match the binding pattern's arity"
  else
    List.iter
      (fun g ->
        match g.arr_pe.pmem with
        | None -> ()
        | Some outer_mem ->
            check_group_results acc env_t ~who:g.arr_pe.pv ~what:"true branch"
              g ~outer_mem tb.res;
            check_group_results acc env_f ~who:g.arr_pe.pv
              ~what:"false branch" g ~outer_mem fb.res)
      (pattern_groups acc ~who s.pat)

and check_loop acc env ctx (s : stm) ~params ~var ~bound ~body =
  let who = match s.pat with pe :: _ -> pe.pv | [] -> "<loop>" in
  let param_pat = List.map fst params in
  let pgroups = pattern_groups acc ~who param_pat in
  (* initializer side: each array parameter group must be instantiated
     by its initializer *)
  List.iter
    (fun g ->
      match g.arr_pe.pmem with
      | None -> ()
      | Some pmem ->
          let inits = List.map snd params in
          check_group_results acc env ~who:g.arr_pe.pv ~what:"initializer" g
            ~outer_mem:pmem inits)
    pgroups;
  (* body environment: iteration variable, then the parameters (the
     memory parameters are existential blocks of unknown size) *)
  let bind_param e (pe : pat_elem) =
    let sizes =
      if pe.pt = TMem then SM.add pe.pv None e.sizes else e.sizes
    in
    let mems =
      match pe.pmem with
      | Some m when is_array_typ pe.pt -> SM.add pe.pv m e.mems
      | _ -> e.mems
    in
    { e with sizes; mems; types = SM.add pe.pv pe.pt e.types }
  in
  let env_body0 =
    List.fold_left
      (fun e (pe, _) -> bind_param e pe)
      { env with types = SM.add var (TScalar I64) env.types }
      params
  in
  List.iter
    (fun (pe, _) -> if is_array_typ pe.pt then check_annot acc env_body0 ctx pe)
    params;
  let ctx' = Pr.add_range ctx var ~lo:P.zero ~hi:(P.sub bound P.one) () in
  let env_after = check_block acc env_body0 ctx' body in
  if List.length body.res <> List.length params then
    report acc Error "existential" who
      "loop body results do not match the parameter arity"
  else begin
    (* body side of the parameter groups *)
    List.iter
      (fun g ->
        match g.arr_pe.pmem with
        | None -> ()
        | Some pmem ->
            check_group_results acc env_after ~who:g.arr_pe.pv
              ~what:"loop body" g ~outer_mem:pmem body.res)
      pgroups;
    (* the outer binding pattern mirrors the grouping; its array
       annotations are instantiated by the body results too *)
    if List.length body.res = List.length s.pat then
      List.iter
        (fun g ->
          match g.arr_pe.pmem with
          | None -> ()
          | Some outer_mem ->
              check_group_results acc env_after ~who:g.arr_pe.pv
                ~what:"loop result" g ~outer_mem body.res)
        (pattern_groups acc ~who s.pat)
    else
      report acc Error "existential" who
        "loop body results do not match the binding pattern's arity"
  end

(* ---------------------------------------------------------------- *)
(* Entry point                                                        *)
(* ---------------------------------------------------------------- *)

let has_annotations (p : prog) =
  List.exists (fun pe -> pe.pmem <> None) p.params
  || List.exists
       (fun s -> List.exists (fun pe -> pe.pmem <> None) s.pat)
       (all_stms_block p.body)

let check ?(stage = "") (p0 : prog) : report =
  let p = Ir.Clone.clone_prog p0 in
  let aliases = Lastuse.annotate p in
  let acc =
    {
      n_stms = 0;
      n_annots = 0;
      n_bounds_proved = 0;
      n_bounds_undec = 0;
      n_races_proved = 0;
      n_races_undec = 0;
      n_reuse_proved = 0;
      n_reuse_undec = 0;
      n_reuse_holes = 0;
      viols = [];
      aliases;
    }
  in
  let env0 =
    List.fold_left
      (fun env pe ->
        let env = { env with types = SM.add pe.pv pe.pt env.types } in
        match (pe.pt, pe.pmem) with
        | TArr (_, shape), Some m ->
            {
              env with
              sizes = SM.add m.block (Some (P.prod shape)) env.sizes;
              types = SM.add m.block TMem env.types;
              mems = SM.add pe.pv m env.mems;
            }
        | TMem, _ -> { env with sizes = SM.add pe.pv None env.sizes }
        | _ -> env)
      {
        sizes = SM.empty;
        types = SM.empty;
        mems = SM.empty;
        scalars = P.SM.empty;
      }
      p.params
  in
  if has_annotations p then ignore (check_block acc env0 p.ctx p.body)
  else acc.n_stms <- List.length (all_stms_block p.body);
  {
    program = p.name;
    stage;
    stms = acc.n_stms;
    annotations = acc.n_annots;
    bounds_proved = acc.n_bounds_proved;
    bounds_undecided = acc.n_bounds_undec;
    races_proved = acc.n_races_proved;
    races_undecided = acc.n_races_undec;
    reuse_proved = acc.n_reuse_proved;
    reuse_undecided = acc.n_reuse_undec;
    reuse_holes = acc.n_reuse_holes;
    violations = List.rev acc.viols;
  }
