(* Structured fault taxonomy for the fail-safe pipeline (see the
   interface and docs/ROBUSTNESS.md for the recovery policy). *)

type t =
  | Prover_budget of { exhausted : int }
  | Pass_crash of { pass : string; exn : string }
  | Lint_reject of { pass : string; violation : string }
  | Cert_refuted of { pass : string; obligation : string }
  | Device_oom of { bytes : float; at_alloc : int }
  | Pool_cap of { bytes : float; cap : float }
  | Internal of { where : string; detail : string }

exception Fault of t

let fail f = raise (Fault f)

let internal ~where fmt =
  Fmt.kstr (fun detail -> fail (Internal { where; detail })) fmt

let blame = function
  | Prover_budget _ -> "prover"
  | Pass_crash { pass; _ } | Lint_reject { pass; _ } | Cert_refuted { pass; _ }
    ->
      pass
  | Device_oom _ -> "device"
  | Pool_cap _ -> "pool"
  | Internal { where; _ } -> where

let layer = function
  | Prover_budget _ -> "prover-budget"
  | Pass_crash _ -> "pass-crash"
  | Lint_reject _ -> "lint-reject"
  | Cert_refuted _ -> "cert-refuted"
  | Device_oom _ -> "device-oom"
  | Pool_cap _ -> "pool-cap"
  | Internal _ -> "internal"

let detail = function
  | Prover_budget { exhausted } ->
      Fmt.str "%d obligation(s) hit the prover budget" exhausted
  | Pass_crash { exn; _ } -> exn
  | Lint_reject { violation; _ } -> violation
  | Cert_refuted { obligation; _ } -> obligation
  | Device_oom { bytes; at_alloc } ->
      Fmt.str "allocation #%d of %g bytes refused" at_alloc bytes
  | Pool_cap { bytes; cap } ->
      Fmt.str "%g live bytes refused under a %g-byte cap" bytes cap
  | Internal { detail; _ } -> detail

let pp ppf f = Fmt.pf ppf "%s fault in %s: %s" (layer f) (blame f) (detail f)
let to_string f = Fmt.str "%a" pp f

let json_escape s =
  String.concat ""
    (List.map
       (function
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | '\n' -> "\\n"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let json f =
  Printf.sprintf "{\"class\":\"%s\",\"blame\":\"%s\",\"detail\":\"%s\"}"
    (layer f)
    (json_escape (blame f))
    (json_escape (detail f))
