(** Fault-injection primitives for the chaos harness.

    The fail-safe pipeline ({!Pipeline.compile}[ ~fail_safe:true])
    claims that a crashing pass, a refuted certificate, or an
    exhausted prover degrades the compile to the last good variant
    instead of aborting it.  This module provides the compile-side
    injections that prove the claim: the optimization passes call
    {!probe} once per statement they visit, and an {e armed} injection
    turns the k-th probe of a chosen pass into a raised
    {!exception-Injected} - a plain exception, deliberately {e not} a
    {!Fault.Fault}, because it simulates an unexpected pass bug.
    {!arm_forge} instead corrupts a pass's certificate with an
    unjustifiable obligation, which the independent checker must
    refute.  Executor-side injections (device OOM at allocation k,
    strict pool caps) live in {!Gpu.Exec} itself; the seeded campaign
    driving all five fault classes over the benchmark suite is
    {!Benchsuite.Chaosdrive}, surfaced as [repro chaos].

    The armed state is global (mirroring the prover's memo tables);
    arm, run one compile, then {!disarm}. *)

exception Injected of string
(** The simulated pass bug; the payload is the pass name. *)

val arm_crash : pass:string -> at:int -> unit
(** Raise {!exception-Injected} at the [at]-th (1-based) {!probe} of
    [pass]. *)

val arm_count : unit -> unit
(** Count probes per pass instead of firing; read with {!counted}. *)

val arm_forge : pass:string -> unit
(** Make the pipeline append a deliberately false obligation to
    [pass]'s certificate before checking it (a forged certificate). *)

val disarm : unit -> unit
(** Return to the idle state and clear the probe counts. *)

val probe : string -> unit
(** Called by the optimization passes once per statement visited,
    with their pass name.  No-op unless an injection is armed. *)

val counted : string -> int
(** Probes observed for a pass since {!arm_count}. *)

val forging : string -> bool
(** Is a forge armed for this pass?  (Consulted by the pipeline.) *)

val forge : Certify.recorder -> unit
(** Append an unjustifiable obligation (a [Size_ge] claiming
    [1 >= 2]) to the recorder; the checker refutes it with a concrete
    witness. *)
