(** The compilation pipeline: memory introduction (section IV),
    allocation hoisting, last-use analysis, array short-circuiting
    (section V), and dead-allocation cleanup. *)

type recovery = {
  r_fault : Fault.t;  (** the contained fault *)
  r_pass : string;  (** the blamed pass or layer ({!Fault.blame}) *)
  r_fallback : string;
      (** the ladder rung fallen back to:
          ["unopt" | "opt" | "reuse" | "skipped rewrites"] *)
}
(** One contained fault from a fail-safe compile: a crashing pass, an
    erroring lint report, a refuted certificate, or an exhausted prover
    budget, together with the variant the compile degraded to. *)

type compiled = {
  source : Ir.Ast.prog;  (** pristine, memory-agnostic *)
  unopt : Ir.Ast.prog;  (** memory-introduced + hoisted *)
  opt : Ir.Ast.prog;
      (** additionally short-circuited, dead allocations removed *)
  reuse : Ir.Ast.prog;
      (** additionally memory-block reused ({!Reuse}): dead blocks
          coalesced, per-iteration buffers double-buffered, dead
          existential chains removed *)
  pack : Ir.Ast.prog;
      (** additionally arena-packed ({!Pack}): the blocks surviving
          reuse placed at offsets inside per-scope arenas *)
  stats : Shortcircuit.stats;
  reuse_stats : Reuse.stats;
  pack_stats : Pack.stats;
  dead_allocs : int;  (** allocations eliminated by short-circuiting *)
  reuse_dead_allocs : int;
      (** further allocations eliminated by the reuse pass *)
  pack_dead_allocs : int;
      (** member allocations absorbed into arenas (removed by the
          packing pass's cleanup round) *)
  time_base : float;  (** seconds: memory introduction + hoisting *)
  time_sc : float;  (** seconds: the short-circuiting pass alone *)
  time_reuse : float;  (** seconds: the memory-block reuse pass alone *)
  time_pack : float;  (** seconds: the packing pass alone *)
  lint : (string * Memlint.report) list;
      (** one {!Memlint} report per pipeline stage (memintro, hoist,
          lastuse, shortcircuit, cleanup, reuse, pack), in pass order;
          empty unless compiled with [~lint:true] *)
  certs : (string * Certify.report) list;
      (** one checked {!Certify} certificate per pipeline pass
          ([memintro], [hoist], [shortcircuit], [cleanup], [reuse],
          [cleanup-reuse], [pack], [cleanup-pack] - the cleanup rounds
          after reuse and packing), in pass order; empty unless
          compiled with [~certify:true] *)
  recovery : recovery list;
      (** contained faults in containment order; only ever non-empty
          when compiled with [~fail_safe:true] *)
  prover_exhausted : int;
      (** prover queries truncated by the {!Symalg.Prover.budget}
          during this compile (exhaustion is sound: the affected
          rewrites were skipped) *)
}

val to_memory_ir : Ir.Ast.prog -> Ir.Ast.prog
(** Memory introduction + hoisting + last-use only (the "unoptimized"
    configuration of the paper's tables). *)

val compile :
  ?options:Shortcircuit.options ->
  ?reuse:Reuse.options ->
  ?pack:Pack.options ->
  ?rounds:int ->
  ?lint:bool ->
  ?certify:bool ->
  ?fail_safe:bool ->
  Ir.Ast.prog ->
  compiled
(** Produce all four configurations from a source program (which is
    cloned, never mutated), timing the passes for the section V-D
    comparison.  [options] configures the short-circuiting pass
    ({!Shortcircuit.default_options} if omitted); [reuse] the
    memory-block reuse pass (pass {!Reuse.disabled} for [--no-reuse],
    making [reuse] a clone of [opt]); [pack] the arena packing pass
    (pass {!Pack.disabled} for [--no-pack], making [pack] a clone of
    [reuse]).  With [~lint:true] the {!Memlint} verifier runs after
    every pass of the optimized build and the reports are collected in
    {!compiled.lint}.  With [~certify:true] every pipeline pass -
    memory introduction, hoisting, short-circuiting, the cleanup
    rounds, reuse, and packing - emits per-rewrite proof obligations
    which {!Certify.check} re-derives against a snapshot of the pass's
    own input and its (pre-cleanup) output; the checked certificates
    land in {!compiled.certs}, so a failed obligation names the pass
    and rewrite that introduced it.

    With [~fail_safe:true] the compile runs the {e degradation ladder}:
    each variant beyond [unopt] is built on a private clone of the
    previous rung, and a crashing pass, an erroring lint report (when
    linting), or a refuted certificate (when certifying) discards that
    unit's output and falls back - pack -> reuse -> opt -> unopt -
    recording the fault and fallback in {!compiled.recovery} instead
    of aborting the compile.  Prover-budget exhaustion (a skipped
    rewrite, never an abort) is likewise summarized as a
    {!Fault.Prover_budget} recovery entry. *)

val first_lint_error :
  (string * Memlint.report) list -> (string * Memlint.violation) option
(** The first stage whose report errors - i.e. the pass that introduced
    the first violation (all earlier stages linted clean). *)

val first_cert_failure :
  (string * Certify.report) list -> (string * Certify.checked) option
(** The first pass whose certificate contains a refuted obligation (the
    rewrite the independent checker could not justify). *)
