(** Shared [Fmt]-based report rendering for pass statistics
    ({!Shortcircuit.pp_stats}) and verification reports
    ({!Memlint.pp_report}), so everything the CLI surfaces reads in one
    style. *)

val kv : Format.formatter -> string * string -> unit
(** One aligned [key value] line. *)

val fields : Format.formatter -> (string * string) list -> unit
(** A vertical box of {!kv} lines. *)

val section :
  title:string -> Format.formatter -> (string * string) list -> unit
(** A titled {!fields} block: [\[title\]] followed by the fields. *)

val items :
  bullet:string ->
  (Format.formatter -> 'a -> unit) ->
  Format.formatter ->
  'a list ->
  unit
(** A bulleted vertical list; prints nothing for the empty list. *)
