(* Dead-allocation cleanup.

   After short-circuiting, arrays that were rebased into their
   destination no longer reference the memory block originally
   allocated for them; the corresponding [EAlloc] statements are dead.
   Removing them realizes the paper's second motivation (section I):
   "decreasing memory footprint by placing semantically different
   arrays in the same memory blocks" - the footprint drop is visible in
   the executor's allocation counters and reported by the benchmark
   harness.

   A block is live when some memory annotation names it, or when its
   name occurs free in any expression (memory values flow through loop
   parameters and branch results).  Sub-block results are counted by
   *name*, not through [fv_exp]: an arm-local allocation returned as an
   [if]'s existential memory component is bound inside the arm, so it
   is not free in the conditional - but it is certainly live. *)

open Ir.Ast
module SS = Ir.Ast.SS

let res_vars (b : block) : SS.t =
  List.fold_left
    (fun acc a -> match a with Var v -> SS.add v acc | _ -> acc)
    SS.empty b.res

let rec live_blocks_block (b : block) : SS.t =
  List.fold_left
    (fun acc s ->
      let from_mem =
        List.fold_left
          (fun acc pe ->
            match pe.pmem with
            | Some m -> SS.add m.block acc
            | None -> acc)
          acc s.pat
      in
      let from_exp =
        match s.exp with
        | EAlloc _ -> from_mem (* binding, not a use *)
        | e -> SS.union from_mem (fv_exp e)
      in
      let from_sub =
        match s.exp with
        | EMap { body; _ } -> SS.union (res_vars body) (live_blocks_block body)
        | ELoop { params; body; _ } ->
            let from_params =
              List.fold_left
                (fun acc (pe, init) ->
                  let acc =
                    match pe.pmem with
                    | Some m -> SS.add m.block acc
                    | None -> acc
                  in
                  match init with Var v -> SS.add v acc | _ -> acc)
                SS.empty params
            in
            SS.union from_params
              (SS.union (res_vars body) (live_blocks_block body))
        | EIf { tb; fb; _ } ->
            SS.union
              (SS.union (res_vars tb) (res_vars fb))
              (SS.union (live_blocks_block tb) (live_blocks_block fb))
        | _ -> SS.empty
      in
      SS.union from_exp from_sub)
    SS.empty b.stms

let rec strip_block cert live (b : block) : block * int =
  let removed = ref 0 in
  let stms =
    List.filter_map
      (fun s ->
        match (s.exp, s.pat) with
        | EAlloc _, [ pe ] when not (SS.mem pe.pv live) ->
            incr removed;
            (match cert with
            | Some r ->
                Certify.emit r
                  (Certify.Dead_removal { block = pe.pv })
                  (Certify.Unreferenced { name = pe.pv })
            | None -> ());
            None
        | _ ->
            let exp, r =
              match s.exp with
              | EMap m ->
                  let body, r = strip_block cert live m.body in
                  (EMap { m with body }, r)
              | ELoop l ->
                  let body, r = strip_block cert live l.body in
                  (ELoop { l with body }, r)
              | EIf i ->
                  let tb, r1 = strip_block cert live i.tb in
                  let fb, r2 = strip_block cert live i.fb in
                  (EIf { i with tb; fb }, r1 + r2)
              | e -> (e, 0)
            in
            removed := !removed + r;
            Some { s with exp })
      b.stms
  in
  ({ b with stms }, !removed)

(* Remove dead allocations; returns the cleaned program and how many
   allocations were eliminated. *)
let run ?cert (p : prog) : prog * int =
  let live = live_blocks_block p.body in
  (* block results and parameters may also carry memory *)
  let live =
    List.fold_left
      (fun acc pe ->
        match pe.pmem with Some m -> SS.add m.block acc | None -> acc)
      live p.params
  in
  let live =
    List.fold_left
      (fun acc a -> match a with Var v -> SS.add v acc | _ -> acc)
      live p.body.res
  in
  let body, removed = strip_block cert live p.body in
  ({ p with body }, removed)
