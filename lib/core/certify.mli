(** Memcert: per-rewrite proof certificates and an independent
    translation-validation checker for the optimization pipeline.

    The paper's rewrites are sound only under side conditions - the
    Non-Overlap theorem for short-circuited copies (section V-C,
    Fig. 8), size/liveness domination for merged blocks - that the
    passes discharge internally, so a prover-{e usage} bug in
    {!Shortcircuit} or {!Reuse} silently miscompiles.  Following the
    translation-validation discipline, every rewrite site emits an
    {!obligation}: the rewrite kind plus the symbolic claim it relied
    on (concrete LMADs, polynomials, the exact prover context).  An
    independent checker then re-derives each claim from the pre-pass
    and post-pass programs using only {!Symalg.Prover},
    {!Lmads.Nonoverlap}, {!Lastuse} and {!Lmads.Lmad.bounds} - none of
    the emitting pass's decision code - completing the verification
    stack: memlint (whole-IR invariants), memtrace (dynamic replay),
    memcert (per-rewrite justification).

    Claims the prover cannot re-establish symbolically are
    {e concretized}: small concrete shape assignments consistent with
    the recorded context are enumerated, and each either yields a
    violating index witness (the obligation is {e false}, not merely
    undecided) or validates the claim dynamically at those sizes. *)

module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module Ixfn = Lmads.Ixfn
module Refset = Lmads.Refset

(** {1 Certificate IR} *)

(** The rewrite a claim justifies, named by IR bindings so failures
    read like lint errors. *)
type rewrite =
  | Copy_elide of {
      candidate : string;  (** the array rebased into the destination *)
      dst_block : string;  (** the destination memory block *)
      at_binding : string;  (** the circuit statement's first binder *)
    }
  | Chain_removal of {
      loop_binding : string;  (** first result binder of the loop *)
      position : int;  (** removed loop-carried position *)
    }
  | Rotation of {
      loop_binding : string;
      init_block : string;  (** memory of the initial value, after loop *)
      init_arr : string;
      spare_block : string;  (** the introduced rotation spare *)
    }
  | Coalesce of { earlier : string; later : string }
  | Hoist of { block : string; loop_binding : string }
  | Mem_intro of {
      block : string;  (** the freshly introduced memory block *)
      binding : string;  (** the array the block backs *)
    }
      (** {!Memintro} materialized an allocation for an array. *)
  | Exist_intro of { binding : string  (** the grouped array binder *) }
      (** {!Memintro} wrapped an [if]/[loop] result in the
          [mem, witness…, array] existential grouping of section IV. *)
  | Float_up of { binding : string }
      (** {!Hoist} floated the statement binding [binding] to the top
          of its block (or out of an [if] arm, for scalars). *)
  | Dead_removal of { block : string }
      (** {!Cleanup} deleted the allocation of [block]. *)
  | If_hoist of {
      block : string;
      if_binding : string;  (** first binder of the conditional *)
    }
      (** {!Reuse} (strategy 4) lifted an arm-local allocation above
          its conditional. *)
  | Packing of {
      arena : string;  (** the introduced arena block *)
      members : string list;  (** packed blocks, in placement order *)
    }
      (** {!Pack} placed the member blocks at offsets inside one
          arena allocation. *)

(** The symbolic fact the pass relied on. *)
type claim =
  | Nonoverlap of { w : Refset.t; u : Refset.t }
      (** The write set [w] is disjoint from the use set [u]
          (Non-Overlap theorem, Fig. 8). *)
  | Size_ge of { larger : P.t; smaller : P.t }
      (** [larger >= smaller] under the context (size domination,
          positive trip counts). *)
  | Bounds_in of { lmad : Lmad.t; lo : P.t; hi : P.t }
      (** The LMAD's offset extrema lie within [\[lo, hi\]]. *)
  | Last_use of { var : string; at_binding : string }
      (** [var]'s last (transitive) use is the statement binding
          [at_binding]. *)
  | Rebased of { var : string; mem : Ir.Ast.mem_info }
      (** After the pass, [var] is annotated with exactly [mem], whose
          footprint fits its block. *)
  | Dead_mem of { names : string list }
      (** The memory variables [names] are referenced only structurally
          (loop-carried plumbing) before the pass and are gone after. *)
  | Dead_after of { names : string list; binding : string }
      (** [names] are unreferenced after the statement binding
          [binding] (and inside its body, if compound). *)
  | Live_disjoint of {
      earlier : string;
      later : string;
      movers : string list;  (** arrays re-annotated into [earlier] *)
    }
      (** The live range of block [earlier] ends before that of block
          [later] begins, so they may share storage. *)
  | Dies_each_iter of { block : string; loop_binding : string }
      (** [block]'s contents never survive an iteration of the loop
          binding [loop_binding], so its allocation may hoist. *)
  | Sole_occupant of { block : string; ixfn : Ixfn.t }
      (** Every annotation into [block] uses exactly [ixfn] (the
          rotation spare inherits a safe size). *)
  | Grouped of { mem : string; wits : string list; arr : string }
      (** Existential grouping well-formedness: the post-pass pattern
          binding [arr] contains the contiguous run
          [mem; wits…; arr], typed [TMem]/[i64]/array, with [arr]
          annotated into [mem] and branch/param arities matching. *)
  | Footprint_fits of { block : string; arr : string }
      (** ixfn/alloc-size consistency: [arr]'s post-pass index
          function stays within the allocation of [block] - both
          re-derived from the post program, nothing trusted. *)
  | Dominance of { binding : string }
      (** Hoisting preserved dominance: at [binding]'s post-pass
          position every free variable is already defined, and nothing
          executing earlier references [binding]. *)
  | Unreferenced of { name : string }
      (** Zero remaining references: [name] has no annotation mention
          and no expression-position occurrence (structural loop
          plumbing included) in the pre program, and is gone after. *)
  | Dies_in_arm of { block : string; if_binding : string; arm : bool }
      (** [block]'s contents never leave the [arm] ([true] = then) of
          the conditional binding [if_binding], so its allocation may
          lift above the [if]. *)
  | Packed_disjoint of {
      arena : string;
      a : string;
      a_off : P.t;
      a_size : P.t;
      b : string;
      b_off : P.t;
      b_size : P.t;
    }
      (** Two {e interfering} placements (overlapping live intervals)
          occupy provably disjoint address ranges of the arena:
          [b_off >= a_off + a_size] or [a_off >= b_off + b_size].  The
          checker re-derives both sizes from the post program's member
          allocations, so only the offsets are taken from the claim -
          and a forged offset is refuted symbolically or by a
          concretization witness. *)
  | Fits_in_arena of {
      arena : string;
      member : string;
      off : P.t;
      size : P.t;
      extent : P.t;
    }
      (** The placement lies inside the arena:
          [0 <= off] and [off + size <= extent].  The checker
          re-derives the member's size and the arena's extent from the
          post program's allocations, never from the claim. *)
  | Hole_disjoint of {
      arena : string;
      a : string;
      a_off : P.t;
      a_size : P.t;
      b : string;
      b_off : P.t;
      b_size : P.t;
      iter : string option;
    }
      (** A lifetime hole: storage of arena [arena] is re-used across
          time rather than across address space.  With [iter = None],
          two {e non-interfering} members share an offset range, and
          the checker re-derives either address-disjointness (sizes
          from the post program's allocations) or live-range
          disjointness in the deepest pre-program block where the two
          members' binding paths diverge.  With [iter = Some loop],
          [a = b]: one member's slot is re-occupied by the logically
          fresh per-iteration instances of the same allocation across
          iterations of the loop binding [loop]; the checker re-derives
          per-iteration freshness (no carried alias of the member, nor
          any array living in it, escapes through the loop body's
          result) and that the arena's allocation left the loop. *)

type obligation = {
  o_id : int;  (** emission order within the pass *)
  o_pass : string;
  o_rewrite : rewrite;
  o_claim : claim;
  o_ctx : Pr.t;  (** the prover context the pass used at the site *)
}

(** {1 Recording} *)

type recorder
(** A mutable obligation sink threaded through an optimization pass. *)

val recorder : pass:string -> recorder
val emit : recorder -> rewrite -> ?ctx:Pr.t -> claim -> unit
val obligations : recorder -> obligation list
(** In emission order. *)

val count : recorder -> int

(** {1 Checking} *)

type verdict =
  | Proved  (** re-derived symbolically *)
  | Concretized of int list
      (** not re-proved symbolically; validated dynamically at these
          seed sizes (empty: no admissible concrete instance found -
          undecided) *)
  | Failed of string  (** refuted, with a witness or structural reason *)

type checked = { obl : obligation; verdict : verdict; detail : string }

type report = {
  pass : string;
  emitted : int;
  proved : int;
  concretized : int;
  failed : int;
  checked : checked list;  (** in obligation order *)
}

val check :
  pass:string ->
  pre:Ir.Ast.prog ->
  post:Ir.Ast.prog ->
  obligation list ->
  report
(** Re-derive every obligation from the pre-/post-pass programs.  The
    inputs are cloned before any annotation, so neither is mutated. *)

val ok : report -> bool
(** No failed obligations. *)

val failures : report -> checked list

(** {1 Rendering} *)

val pp_rewrite : Format.formatter -> rewrite -> unit
val pp_claim : Format.formatter -> claim -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val pp_checked : Format.formatter -> checked -> unit
val pp_report : Format.formatter -> report -> unit

val json_of_report : report -> string
(** A self-contained JSON object (counts plus one record per
    obligation), consumed by [repro certify --json] and CI. *)
