(** Memtrace: dynamic cross-checking of execution traces against the
    static memory annotations.

    {!module:Memlint} is the static half of the verification stack: it
    checks, between pipeline passes, that the LMAD annotations are
    internally consistent and that the optimizer's rewrites preserved
    them.  Memtrace is the dynamic half: it replays a {!type:Trace.t}
    collected by
    [Gpu.Exec.run ~trace:true] and confirms the {e execution} stayed
    inside the static claims.  Together they close the loop - a bug in
    the executor (or an unsound rewrite that memlint's prover happened
    to bless) shows up as a concrete offset escaping a concrete region.

    Three families of checks run over the event list, in program order:

    - {b footprint}: every offset a kernel actually wrote lies in the
      union of its declared write regions (the static LMAD reference
      sets, concretized at launch); every offset read lies in the
      declared read or write regions.  Blocks allocated inside the
      kernel (thread-private scratch) are exempt; declared regions that
      could not be concretized (they mention per-thread variables)
      cover the whole block and are tallied as {e assumed} rather than
      {e checked}.
    - {b circuit}: an elided copy must be a genuine no-op - same block,
      and the source and destination index functions produce identical
      offset images over the copied shape.  A copy that {e was}
      performed within a single block must have disjoint images, or the
      element order would be observable.
    - {b last-use}: no kernel read or performed copy reads a block's
      {e dead contents} - dead meaning after the last [Last_use]
      marker mentioning the block and before anything wrote it again.
      Short-circuiting reuses dead blocks on purpose, so writes revive
      a block; the bug this catches is consuming values the static
      liveness said nobody needs.

    Unlike the static linter there is no [Undecided] verdict: all
    checks are exact arithmetic over concrete integers.  Coverage is
    instead reported through [offsets_checked] / [offsets_assumed]. *)

type violation = {
  rule : string;  (** ["footprint"], ["circuit"] or ["last-use"] *)
  at : string;  (** kernel label or copy description *)
  detail : string;  (** human-readable explanation with concrete offsets *)
}

type report = {
  program : string;  (** from the trace's provenance *)
  variant : string;  (** which pipeline stage produced the program *)
  exact : bool;  (** offset-exact trace (Full mode)? *)
  kernels : int;  (** kernel launches replayed *)
  copies : int;  (** copies replayed *)
  elided : int;  (** of which were short-circuited *)
  offsets_checked : int;
      (** accesses confirmed inside an enumerated declared region *)
  offsets_assumed : int;
      (** accesses covered only by a whole-block or fresh-block claim *)
  violations : violation list;  (** empty iff the trace checks clean *)
}

val check : Trace.t -> report
(** Replay the trace and run all three check families.  On a
    non-{!val:Trace.exact} trace the footprint and kernel-read last-use
    checks are vacuous (no offsets were recorded); copy-level checks
    still run. *)

val ok : report -> bool
(** [ok r] iff [r.violations = []]. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
