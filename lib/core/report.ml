(* Shared Fmt-based report rendering.

   Both the short-circuiting statistics and the memlint verification
   report are surfaced on the CLI (`repro table --verbose`, `repro
   lint`); rendering them through one module keeps the output style
   uniform: a titled section of aligned key/value fields, plus an
   itemized list for per-violation detail. *)

let kv ppf (k, v) = Fmt.pf ppf "%-24s %s" k v

let fields ppf kvs = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut kv) kvs

let section ~title ppf kvs =
  Fmt.pf ppf "@[<v>[%s]@,%a@]" title fields kvs

let items ~bullet pp_item ppf = function
  | [] -> ()
  | xs ->
      Fmt.pf ppf "@[<v>%a@]"
        Fmt.(list ~sep:cut (fun ppf x -> pf ppf "%s %a" bullet pp_item x))
        xs
