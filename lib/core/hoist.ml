(* Allocation hoisting (section V, property 2).

   Short-circuiting requires the destination memory to be allocated (in
   scope) at the definition point of the candidate's fresh array.  This
   pass aggressively moves [EAlloc] statements - together with the pure
   scalar statements their sizes depend on - to the top of their block,
   and floats pure scalars out of if arms when computable outside.

   Allocations never leave their block here: loop bodies need a fresh
   block per iteration (double buffering, footnote 23), mapnest bodies
   are per-thread, and if-arm allocations are lifted only by Reuse's
   strategy 4, under certificates this blind pass cannot discharge. *)

open Ir.Ast
module SS = Ir.Ast.SS

(* A statement that may ride along with a hoisted alloc: pure, scalar,
   cheap to recompute. *)
let is_scalar_pure (s : stm) =
  match s.exp with
  | EIdx _ | EBin _ | EUn _ | ECmp _ | EAtom (Int _ | Float _ | Bool _) ->
      List.for_all (fun pe -> not (is_array_typ pe.pt)) s.pat
  | EAtom (Var _) ->
      List.for_all (fun pe -> pe.pt = TScalar I64) s.pat
  | _ -> false

let is_alloc (s : stm) = match s.exp with EAlloc _ -> true | _ -> false

let binders (s : stm) = SS.of_list (List.map (fun pe -> pe.pv) s.pat)

(* A moved statement's certificate: its definition still dominates its
   uses at the new position (checked on the post-pass program). *)
let cert_moved cert (s : stm) =
  match (cert, s.pat) with
  | Some r, pe :: _ ->
      Certify.emit r
        (Certify.Float_up { binding = pe.pv })
        (Certify.Dominance { binding = pe.pv })
  | _ -> ()

(* Stable partition of a block's statements into a hoistable prefix
   (allocs + their pure scalar dependency closure, in dependency order)
   and the rest. *)
let float_allocs_to_top cert (b : block) : block =
  let stms = b.stms in
  (* compute the set of variables needed by allocs, transitively through
     pure scalar statements *)
  let needed = ref SS.empty in
  List.iter (fun s -> if is_alloc s then needed := SS.union !needed (fv_stm s)) stms;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun s ->
        if is_scalar_pure s && not (SS.is_empty (SS.inter (binders s) !needed))
        then
          let fv = fv_stm s in
          if not (SS.subset fv !needed) then (
            needed := SS.union !needed fv;
            changed := true))
      stms
  done;
  let hoisted, rest =
    List.partition
      (fun s ->
        is_alloc s
        || (is_scalar_pure s && not (SS.is_empty (SS.inter (binders s) !needed))))
      stms
  in
  (* Only statements that jumped over a kept statement actually moved. *)
  let seen_rest = ref false in
  List.iter
    (fun s ->
      if List.memq s rest then seen_rest := true
      else if !seen_rest then cert_moved cert s)
    stms;
  { b with stms = hoisted @ rest }

(* Float pure scalars out of an [if] arm when their free variables are
   all available in the enclosing scope.  Allocations stay inside the
   arm: an arm-local allocation is only lifted by {!Reuse}'s strategy 4,
   which proves the arm-local death and branch-size claims a blind
   extraction could not.  Returns the extracted statements and the
   reduced block. *)
let extract_hoistable cert ~outer_scope (b : block) : stm list * block =
  let rec go scope acc kept = function
    | [] -> (List.rev acc, List.rev kept)
    | s :: rest ->
        let fv = fv_stm s in
        let movable = is_scalar_pure s && SS.subset fv outer_scope in
        (* a statement whose deps were kept locally cannot move *)
        let movable = movable && SS.is_empty (SS.inter fv scope) in
        if movable then go scope (s :: acc) kept rest
        else go (SS.union scope (binders s)) acc (s :: kept) rest
  in
  let moved, kept = go SS.empty [] [] b.stms in
  List.iter (cert_moved cert) moved;
  (moved, { b with stms = kept })

let rec hoist_block cert ~scope (b : block) : block =
  (* First recurse, allowing nested hoists to surface here. *)
  let scope_ref = ref scope in
  let stms =
    List.concat_map
      (fun s ->
        let out =
          match s.exp with
          | ELoop ({ params; var; body; _ } as l) ->
              (* Allocations are NOT hoisted out of loop bodies: a loop
                 whose parameter carries the previous iteration's result
                 needs a fresh block per iteration (double buffering,
                 footnote 23); hoisting would alias input and output.
                 Within the body they still float to the top, which is
                 what property 2 of section V needs for circuit points
                 inside the iteration. *)
              let inner_scope =
                List.fold_left
                  (fun sc (pe, _) -> SS.add pe.pv sc)
                  (SS.add var !scope_ref) params
              in
              let body = hoist_block cert ~scope:inner_scope body in
              [ { s with exp = ELoop { l with params; body } } ]
          | EIf ({ tb; fb; _ } as i) ->
              let tb = hoist_block cert ~scope:!scope_ref tb in
              let fb = hoist_block cert ~scope:!scope_ref fb in
              let moved_t, tb =
                extract_hoistable cert ~outer_scope:!scope_ref tb
              in
              let moved_f, fb =
                extract_hoistable cert ~outer_scope:!scope_ref fb
              in
              moved_t @ moved_f @ [ { s with exp = EIf { i with tb; fb } } ]
          | EMap ({ nest; body } as m) ->
              (* do not hoist out of the parallel body; only normalize
                 within it *)
              let inner_scope =
                List.fold_left (fun sc (v, _) -> SS.add v sc) !scope_ref nest
              in
              let body = hoist_block cert ~scope:inner_scope body in
              [ { s with exp = EMap { m with body } } ]
          | _ -> [ s ]
        in
        List.iter (fun s -> scope_ref := SS.union !scope_ref (binders s)) out;
        out)
      b.stms
  in
  float_allocs_to_top cert { b with stms }

let hoist ?cert (p : prog) : prog =
  let scope = SS.of_list (List.map (fun pe -> pe.pv) p.params) in
  (* input arrays' memory blocks are in scope too *)
  let scope =
    List.fold_left
      (fun sc pe ->
        match pe.pmem with Some m -> SS.add m.block sc | None -> sc)
      scope p.params
  in
  { p with body = hoist_block cert ~scope p.body }
