(* The compilation pipeline, mirroring the memory stages of the paper's
   Futhark fork:

     source IR
       -> memory introduction (section IV)
       -> allocation hoisting (property 2 of section V)
       -> last-use analysis (footnote 18)
       -> array short-circuiting (section V)

   [compile] produces both the unoptimized (memory-introduced, hoisted)
   and the optimized (short-circuited) variants of a program, plus pass
   statistics and compile times, so benchmarks can compare the two and
   reproduce the compile-time-overhead observation of section V-D. *)

open Ir.Ast

type compiled = {
  source : prog; (* pristine, memory-agnostic *)
  unopt : prog; (* memory-introduced + hoisted *)
  opt : prog; (* additionally short-circuited + dead allocs removed *)
  reuse : prog; (* additionally memory-block reused (third variant) *)
  pack : prog; (* additionally arena-packed (fourth variant) *)
  stats : Shortcircuit.stats;
  reuse_stats : Reuse.stats;
  pack_stats : Pack.stats;
  dead_allocs : int; (* allocations eliminated by short-circuiting *)
  reuse_dead_allocs : int; (* further allocations eliminated by reuse *)
  pack_dead_allocs : int; (* member allocations absorbed into arenas *)
  time_base : float; (* seconds: memory intro + hoisting *)
  time_sc : float; (* seconds: short-circuiting pass alone *)
  time_reuse : float; (* seconds: memory-block reuse pass alone *)
  time_pack : float; (* seconds: the packing pass alone *)
  lint : (string * Memlint.report) list;
      (* one memlint report per pipeline stage, in pass order; empty
         unless compiled with ~lint:true *)
  certs : (string * Certify.report) list;
      (* one checked certificate per pipeline pass (memintro, hoist,
         shortcircuit, cleanup, reuse, cleanup-reuse, pack,
         cleanup-pack), in pass order; empty unless compiled with
         ~certify:true *)
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Memory introduction + hoisting, no short-circuiting. *)
let to_memory_ir (p : prog) : prog =
  let p = Memintro.introduce (Ir.Clone.clone_prog p) in
  let p = Hoist.hoist p in
  ignore (Lastuse.annotate p);
  p

let compile ?(options = Shortcircuit.default_options)
    ?(reuse = Reuse.default_options) ?(pack = Pack.default_options)
    ?(rounds = 2) ?(lint = false) ?(certify = false) (p : prog) : compiled =
  (* With ~lint:true the memory linter runs after every pass of the
     optimized build; the first stage whose report errors is the pass
     that introduced the violation (earlier stages were clean). *)
  let reports = ref [] in
  let lint_after stage q =
    if lint then reports := (stage, Memlint.check ~stage q) :: !reports
  in
  (* With ~certify:true each rewriting pass records its proof
     obligations, which the independent checker re-derives against the
     pass's own before/after pair - before cleanup, so the claims refer
     to programs in which orphaned allocations still exist. *)
  let certs = ref [] in
  let recorder pass = if certify then Some (Certify.recorder ~pass) else None in
  let check_cert pass cert ~pre ~post =
    match cert with
    | None -> ()
    | Some r ->
        let report =
          Certify.check ~pass ~pre ~post (Certify.obligations r)
        in
        certs := (pass, report) :: !certs
  in
  let unopt, time_base = timed (fun () -> to_memory_ir p) in
  let opt_base =
    let q0 = Ir.Clone.clone_prog p in
    let mi_cert = recorder "memintro" in
    let mi_pre = if certify then Some (Ir.Clone.clone_prog q0) else None in
    let q = Memintro.introduce ?cert:mi_cert q0 in
    lint_after "memintro" q;
    (match mi_pre with
    | Some pre -> check_cert "memintro" mi_cert ~pre ~post:q
    | None -> ());
    let h_cert = recorder "hoist" in
    let h_pre = if certify then Some (Ir.Clone.clone_prog q) else None in
    let q = Hoist.hoist ?cert:h_cert q in
    lint_after "hoist" q;
    (match h_pre with
    | Some pre -> check_cert "hoist" h_cert ~pre ~post:q
    | None -> ());
    ignore (Lastuse.annotate q);
    lint_after "lastuse" q;
    q
  in
  let sc_cert = recorder "shortcircuit" in
  let sc_pre =
    if certify then Some (Ir.Clone.clone_prog opt_base) else None
  in
  let (opt, stats), time_sc =
    timed (fun () -> Shortcircuit.optimize ~options ~rounds ?cert:sc_cert opt_base)
  in
  lint_after "shortcircuit" opt;
  (match sc_pre with
  | Some pre -> check_cert "shortcircuit" sc_cert ~pre ~post:opt
  | None -> ());
  let cl_cert = recorder "cleanup" in
  let cl_pre = if certify then Some (Ir.Clone.clone_prog opt) else None in
  let opt, dead_allocs = Cleanup.run ?cert:cl_cert opt in
  lint_after "cleanup" opt;
  (match cl_pre with
  | Some pre -> check_cert "cleanup" cl_cert ~pre ~post:opt
  | None -> ());
  (* third variant: memory-block reuse on a private clone of the
     short-circuited program, followed by a liveness refresh and a
     cleanup round to collect the allocations the pass orphaned *)
  let re_cert = recorder "reuse" in
  let re_pre = ref None in
  let (reuse_p, reuse_stats), time_reuse =
    timed (fun () ->
        let q = Ir.Clone.clone_prog opt in
        if certify then re_pre := Some (Ir.Clone.clone_prog q);
        let q, rst = Reuse.optimize ~options:reuse ?cert:re_cert q in
        ignore (Lastuse.annotate q);
        (q, rst))
  in
  (match !re_pre with
  | Some pre -> check_cert "reuse" re_cert ~pre ~post:reuse_p
  | None -> ());
  (* the second cleanup round gets its own pass name so the two rounds
     stay distinguishable in reports and the certificate baseline *)
  let clr_cert = recorder "cleanup-reuse" in
  let clr_pre = if certify then Some (Ir.Clone.clone_prog reuse_p) else None in
  let reuse_p, reuse_dead_allocs = Cleanup.run ?cert:clr_cert reuse_p in
  lint_after "reuse" reuse_p;
  (match clr_pre with
  | Some pre -> check_cert "cleanup-reuse" clr_cert ~pre ~post:reuse_p
  | None -> ());
  (* fourth variant: offset-based packing of the blocks surviving
     reuse, on a private clone, again followed by a liveness refresh
     and a cleanup round collecting the member allocations the arenas
     absorbed *)
  let pk_cert = recorder "pack" in
  let pk_pre = ref None in
  let (pack_p, pack_stats), time_pack =
    timed (fun () ->
        let q = Ir.Clone.clone_prog reuse_p in
        if certify then pk_pre := Some (Ir.Clone.clone_prog q);
        let q, pst = Pack.optimize ~options:pack ?cert:pk_cert q in
        ignore (Lastuse.annotate q);
        (q, pst))
  in
  (match !pk_pre with
  | Some pre -> check_cert "pack" pk_cert ~pre ~post:pack_p
  | None -> ());
  let clp_cert = recorder "cleanup-pack" in
  let clp_pre = if certify then Some (Ir.Clone.clone_prog pack_p) else None in
  let pack_p, pack_dead_allocs = Cleanup.run ?cert:clp_cert pack_p in
  lint_after "pack" pack_p;
  (match clp_pre with
  | Some pre -> check_cert "cleanup-pack" clp_cert ~pre ~post:pack_p
  | None -> ());
  {
    source = p;
    unopt;
    opt;
    reuse = reuse_p;
    pack = pack_p;
    stats;
    reuse_stats;
    pack_stats;
    dead_allocs;
    reuse_dead_allocs;
    pack_dead_allocs;
    time_base;
    time_sc;
    time_reuse;
    time_pack;
    lint = List.rev !reports;
    certs = List.rev !certs;
  }

(* The first stage whose lint report errors: the pass that introduced
   the first violation. *)
let first_lint_error (stages : (string * Memlint.report) list) :
    (string * Memlint.violation) option =
  List.find_map
    (fun (stage, r) ->
      match Memlint.errors r with v :: _ -> Some (stage, v) | [] -> None)
    stages

(* The first pass whose certificate has a refuted obligation. *)
let first_cert_failure (certs : (string * Certify.report) list) :
    (string * Certify.checked) option =
  List.find_map
    (fun (pass, r) ->
      match Certify.failures r with c :: _ -> Some (pass, c) | [] -> None)
    certs
