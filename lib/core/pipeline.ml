(* The compilation pipeline, mirroring the memory stages of the paper's
   Futhark fork:

     source IR
       -> memory introduction (section IV)
       -> allocation hoisting (property 2 of section V)
       -> last-use analysis (footnote 18)
       -> array short-circuiting (section V)

   [compile] produces both the unoptimized (memory-introduced, hoisted)
   and the optimized (short-circuited) variants of a program, plus pass
   statistics and compile times, so benchmarks can compare the two and
   reproduce the compile-time-overhead observation of section V-D. *)

open Ir.Ast

(* One contained fault: what failed, who is blamed, and the variant
   the compile fell back to (see docs/ROBUSTNESS.md). *)
type recovery = { r_fault : Fault.t; r_pass : string; r_fallback : string }

type compiled = {
  source : prog; (* pristine, memory-agnostic *)
  unopt : prog; (* memory-introduced + hoisted *)
  opt : prog; (* additionally short-circuited + dead allocs removed *)
  reuse : prog; (* additionally memory-block reused (third variant) *)
  pack : prog; (* additionally arena-packed (fourth variant) *)
  stats : Shortcircuit.stats;
  reuse_stats : Reuse.stats;
  pack_stats : Pack.stats;
  dead_allocs : int; (* allocations eliminated by short-circuiting *)
  reuse_dead_allocs : int; (* further allocations eliminated by reuse *)
  pack_dead_allocs : int; (* member allocations absorbed into arenas *)
  time_base : float; (* seconds: memory intro + hoisting *)
  time_sc : float; (* seconds: short-circuiting pass alone *)
  time_reuse : float; (* seconds: memory-block reuse pass alone *)
  time_pack : float; (* seconds: the packing pass alone *)
  lint : (string * Memlint.report) list;
      (* one memlint report per pipeline stage, in pass order; empty
         unless compiled with ~lint:true *)
  certs : (string * Certify.report) list;
      (* one checked certificate per pipeline pass (memintro, hoist,
         shortcircuit, cleanup, reuse, cleanup-reuse, pack,
         cleanup-pack), in pass order; empty unless compiled with
         ~certify:true *)
  recovery : recovery list;
      (* contained faults, in containment order; empty unless compiled
         with ~fail_safe:true (or nothing failed) *)
  prover_exhausted : int;
      (* prover queries truncated by the budget during this compile *)
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Memory introduction + hoisting, no short-circuiting. *)
let to_memory_ir (p : prog) : prog =
  let p = Memintro.introduce (Ir.Clone.clone_prog p) in
  let p = Hoist.hoist p in
  ignore (Lastuse.annotate p);
  p

let compile ?(options = Shortcircuit.default_options)
    ?(reuse = Reuse.default_options) ?(pack = Pack.default_options)
    ?(rounds = 2) ?(lint = false) ?(certify = false) ?(fail_safe = false)
    (p : prog) : compiled =
  (* With ~lint:true the memory linter runs after every pass of the
     optimized build; the first stage whose report errors is the pass
     that introduced the violation (earlier stages were clean). *)
  let reports = ref [] in
  let lint_after stage q =
    if lint then reports := (stage, Memlint.check ~stage q) :: !reports
  in
  (* With ~certify:true each rewriting pass records its proof
     obligations, which the independent checker re-derives against the
     pass's own before/after pair - before cleanup, so the claims refer
     to programs in which orphaned allocations still exist. *)
  let certs = ref [] in
  let recorder pass = if certify then Some (Certify.recorder ~pass) else None in
  let check_cert pass cert ~pre ~post =
    match cert with
    | None -> None
    | Some r ->
        if Chaos.forging pass then Chaos.forge r;
        let report = Certify.check ~pass ~pre ~post (Certify.obligations r) in
        certs := (pass, report) :: !certs;
        Some report
  in
  (* The degradation ladder (~fail_safe:true).  Each variant beyond
     [unopt] is built as one containment unit running on a private
     clone of the previous rung: a crashing pass, an erroring lint
     report, or a refuted certificate discards the unit's output,
     records the fault and the rung fallen back to, and the compile
     continues - pack -> reuse -> opt -> unopt, so every variant in
     [compiled] is populated even when its pass failed. *)
  let recov = ref [] in
  let prover0 = (Symalg.Prover.stats ()).budget_exhausted in
  let crash_guard pass f =
    if not fail_safe then f ()
    else
      try f () with
      | Fault.Fault _ as e -> raise e
      | e -> Fault.fail (Fault.Pass_crash { pass; exn = Printexc.to_string e })
  in
  let contain ~fb_name ~fallback f =
    if not fail_safe then f ()
    else
      try f ()
      with Fault.Fault fl ->
        recov :=
          { r_fault = fl; r_pass = Fault.blame fl; r_fallback = fb_name }
          :: !recov;
        fallback ()
  in
  let lint_guard pass =
    if fail_safe && lint then
      match !reports with
      | (stage, r) :: _ when stage = pass -> (
          match Memlint.errors r with
          | v :: _ ->
              Fault.fail
                (Fault.Lint_reject
                   { pass; violation = Fmt.str "%a" Memlint.pp_violation v })
          | [] -> ())
      | _ -> ()
  in
  let cert_guard pass = function
    | Some report when fail_safe -> (
        match Certify.failures report with
        | c :: _ ->
            Fault.fail
              (Fault.Cert_refuted
                 { pass; obligation = Fmt.str "%a" Certify.pp_checked c })
        | [] -> ())
    | _ -> ()
  in
  let unopt, time_base = timed (fun () -> to_memory_ir p) in
  let opt_base =
    contain ~fb_name:"unopt"
      ~fallback:(fun () -> Ir.Clone.clone_prog unopt)
      (fun () ->
        let q0 = Ir.Clone.clone_prog p in
        let mi_cert = recorder "memintro" in
        let mi_pre = if certify then Some (Ir.Clone.clone_prog q0) else None in
        let q =
          crash_guard "memintro" (fun () -> Memintro.introduce ?cert:mi_cert q0)
        in
        lint_after "memintro" q;
        lint_guard "memintro";
        (match mi_pre with
        | Some pre ->
            cert_guard "memintro" (check_cert "memintro" mi_cert ~pre ~post:q)
        | None -> ());
        let h_cert = recorder "hoist" in
        let h_pre = if certify then Some (Ir.Clone.clone_prog q) else None in
        let q = crash_guard "hoist" (fun () -> Hoist.hoist ?cert:h_cert q) in
        lint_after "hoist" q;
        lint_guard "hoist";
        (match h_pre with
        | Some pre -> cert_guard "hoist" (check_cert "hoist" h_cert ~pre ~post:q)
        | None -> ());
        ignore (Lastuse.annotate q);
        lint_after "lastuse" q;
        lint_guard "lastuse";
        q)
  in
  let time_sc = ref 0. and time_reuse = ref 0. and time_pack = ref 0. in
  (* second variant: short-circuiting plus a cleanup round removing the
     allocations it orphaned *)
  let opt, stats, dead_allocs =
    contain ~fb_name:"unopt"
      ~fallback:(fun () ->
        (Ir.Clone.clone_prog opt_base, Shortcircuit.fresh_stats (), 0))
      (fun () ->
        let q = if fail_safe then Ir.Clone.clone_prog opt_base else opt_base in
        let sc_cert = recorder "shortcircuit" in
        let sc_pre = if certify then Some (Ir.Clone.clone_prog q) else None in
        let (q, st), dt =
          timed (fun () ->
              crash_guard "shortcircuit" (fun () ->
                  Shortcircuit.optimize ~options ~rounds ?cert:sc_cert q))
        in
        time_sc := dt;
        lint_after "shortcircuit" q;
        lint_guard "shortcircuit";
        (match sc_pre with
        | Some pre ->
            cert_guard "shortcircuit"
              (check_cert "shortcircuit" sc_cert ~pre ~post:q)
        | None -> ());
        let cl_cert = recorder "cleanup" in
        let cl_pre = if certify then Some (Ir.Clone.clone_prog q) else None in
        let q, n =
          crash_guard "cleanup" (fun () -> Cleanup.run ?cert:cl_cert q)
        in
        lint_after "cleanup" q;
        lint_guard "cleanup";
        (match cl_pre with
        | Some pre ->
            cert_guard "cleanup" (check_cert "cleanup" cl_cert ~pre ~post:q)
        | None -> ());
        (q, st, n))
  in
  (* third variant: memory-block reuse on a private clone of the
     short-circuited program, followed by a liveness refresh and a
     cleanup round to collect the allocations the pass orphaned; the
     second cleanup round gets its own pass name so the two rounds
     stay distinguishable in reports and the certificate baseline *)
  let reuse_p, reuse_stats, reuse_dead_allocs =
    contain ~fb_name:"opt"
      ~fallback:(fun () -> (Ir.Clone.clone_prog opt, Reuse.fresh_stats (), 0))
      (fun () ->
        let q = Ir.Clone.clone_prog opt in
        let re_cert = recorder "reuse" in
        let re_pre = if certify then Some (Ir.Clone.clone_prog q) else None in
        let (q, rst), dt =
          timed (fun () ->
              crash_guard "reuse" (fun () ->
                  let q, rst = Reuse.optimize ~options:reuse ?cert:re_cert q in
                  ignore (Lastuse.annotate q);
                  (q, rst)))
        in
        time_reuse := dt;
        (match re_pre with
        | Some pre -> cert_guard "reuse" (check_cert "reuse" re_cert ~pre ~post:q)
        | None -> ());
        let clr_cert = recorder "cleanup-reuse" in
        let clr_pre = if certify then Some (Ir.Clone.clone_prog q) else None in
        let q, n =
          crash_guard "cleanup-reuse" (fun () -> Cleanup.run ?cert:clr_cert q)
        in
        lint_after "reuse" q;
        lint_guard "reuse";
        (match clr_pre with
        | Some pre ->
            cert_guard "cleanup-reuse"
              (check_cert "cleanup-reuse" clr_cert ~pre ~post:q)
        | None -> ());
        (q, rst, n))
  in
  (* fourth variant: offset-based packing of the blocks surviving
     reuse, on a private clone, again followed by a liveness refresh
     and a cleanup round collecting the member allocations the arenas
     absorbed *)
  let pack_p, pack_stats, pack_dead_allocs =
    contain ~fb_name:"reuse"
      ~fallback:(fun () -> (Ir.Clone.clone_prog reuse_p, Pack.fresh_stats (), 0))
      (fun () ->
        let q = Ir.Clone.clone_prog reuse_p in
        let pk_cert = recorder "pack" in
        let pk_pre = if certify then Some (Ir.Clone.clone_prog q) else None in
        let (q, pst), dt =
          timed (fun () ->
              crash_guard "pack" (fun () ->
                  let q, pst = Pack.optimize ~options:pack ?cert:pk_cert q in
                  ignore (Lastuse.annotate q);
                  (q, pst)))
        in
        time_pack := dt;
        (match pk_pre with
        | Some pre -> cert_guard "pack" (check_cert "pack" pk_cert ~pre ~post:q)
        | None -> ());
        let clp_cert = recorder "cleanup-pack" in
        let clp_pre = if certify then Some (Ir.Clone.clone_prog q) else None in
        let q, n =
          crash_guard "cleanup-pack" (fun () -> Cleanup.run ?cert:clp_cert q)
        in
        lint_after "pack" q;
        lint_guard "pack";
        (match clp_pre with
        | Some pre ->
            cert_guard "cleanup-pack"
              (check_cert "cleanup-pack" clp_cert ~pre ~post:q)
        | None -> ());
        (q, pst, n))
  in
  let prover_exhausted =
    (Symalg.Prover.stats ()).budget_exhausted - prover0
  in
  if fail_safe && prover_exhausted > 0 then
    recov :=
      {
        r_fault = Fault.Prover_budget { exhausted = prover_exhausted };
        r_pass = "prover";
        r_fallback = "skipped rewrites";
      }
      :: !recov;
  {
    source = p;
    unopt;
    opt;
    reuse = reuse_p;
    pack = pack_p;
    stats;
    reuse_stats;
    pack_stats;
    dead_allocs;
    reuse_dead_allocs;
    pack_dead_allocs;
    time_base;
    time_sc = !time_sc;
    time_reuse = !time_reuse;
    time_pack = !time_pack;
    lint = List.rev !reports;
    certs = List.rev !certs;
    recovery = List.rev !recov;
    prover_exhausted;
  }

(* The first stage whose lint report errors: the pass that introduced
   the first violation. *)
let first_lint_error (stages : (string * Memlint.report) list) :
    (string * Memlint.violation) option =
  List.find_map
    (fun (stage, r) ->
      match Memlint.errors r with v :: _ -> Some (stage, v) | [] -> None)
    stages

(* The first pass whose certificate has a refuted obligation. *)
let first_cert_failure (certs : (string * Certify.report) list) :
    (string * Certify.checked) option =
  List.find_map
    (fun (pass, r) ->
      match Certify.failures r with c :: _ -> Some (pass, c) | [] -> None)
    certs
