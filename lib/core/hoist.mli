(** Allocation hoisting (property 2 of section V).

    Short-circuiting needs the destination block to be allocated (in
    scope) at the candidate's creation point.  This pass floats
    [EAlloc] statements - with the pure scalar statements their sizes
    depend on - to the top of their blocks, and floats pure scalars out
    of [if] branches.  Allocations are deliberately {e not} hoisted out
    of loop bodies (a loop parameter carrying the previous iteration's
    result requires a fresh block per iteration - double buffering,
    footnote 23) and stay inside [if] arms, where {!Reuse}'s strategy 4
    can later lift them above the conditional under an arm-local death
    certificate. *)

val hoist : ?cert:Certify.recorder -> Ir.Ast.prog -> Ir.Ast.prog
(** With [?cert], every statement whose position actually changed
    emits a {!constructor:Certify.claim.Dominance} obligation (under a
    {!constructor:Certify.rewrite.Float_up} rewrite): at the new
    position all free variables are defined and nothing executing
    earlier reads the moved binding. *)
