(* Compile-side fault injection: armed global state consulted by the
   per-statement probes in Shortcircuit/Reuse/Pack and by the pipeline
   when it checks certificates.  See the interface for the protocol. *)

exception Injected of string

type armed =
  | Idle
  | Count
  | Crash of { pass : string; at : int; mutable hits : int }
  | Forge of string

let state = ref Idle
let counts : (string, int) Hashtbl.t = Hashtbl.create 8

let arm_crash ~pass ~at = state := Crash { pass; at; hits = 0 }

let arm_count () =
  Hashtbl.reset counts;
  state := Count

let arm_forge ~pass = state := Forge pass

let disarm () =
  Hashtbl.reset counts;
  state := Idle

let probe pass =
  match !state with
  | Idle | Forge _ -> ()
  | Count ->
      Hashtbl.replace counts pass
        (1 + Option.value (Hashtbl.find_opt counts pass) ~default:0)
  | Crash c ->
      if c.pass = pass then begin
        c.hits <- c.hits + 1;
        if c.hits = c.at then raise (Injected pass)
      end

let counted pass = Option.value (Hashtbl.find_opt counts pass) ~default:0
let forging pass = match !state with Forge p -> p = pass | _ -> false

(* The forged obligation claims 1 >= 2 for a fictitious coalescing;
   [Certify.check_size_ge] cannot prove it, and its concretization
   evaluates both constants and refutes the claim with a witness at
   the first admissible seed - a Failed verdict, never a shrug. *)
let forge r =
  Certify.emit r
    (Certify.Coalesce { earlier = "chaos!earlier"; later = "chaos!later" })
    (Certify.Size_ge
       { larger = Symalg.Poly.const 1; smaller = Symalg.Poly.const 2 })
