(* Memory-block reuse: coalesce allocations whose live ranges do not
   interfere (the companion optimization to short-circuiting).

   Short-circuiting removes copies but leaves every temporary its own
   [EAlloc]; the cost model charges each discrete allocation, and the
   arena never shrinks, so a loop that materializes a fresh buffer per
   iteration grows the footprint linearly in the trip count.  This pass
   runs after short-circuiting + cleanup and reclaims dead blocks with
   three strategies, in increasing order of specificity:

   1. *Dead existential chains*: a [mem, array] loop group whose memory
      component is referenced by no annotation anywhere (every array of
      the group was rebased into an enclosing block by
      short-circuiting) threads a block through the loop for nothing.
      The mem components - loop parameter, initializer atom, body
      result atom, outer pattern binder - are removed group-wise, which
      orphans the feeding [EAlloc] for {!Cleanup} to collect.  This is
      what eliminates NW's per-thread [b*b] scratch allocations.

   2. *Double-buffer rotation*: a loop that allocates a fresh block
      every iteration, writes the next generation into it, and returns
      it as its carried state ([loop (m, a) = ... do alloc; ...;
      in (m', a')]) only ever needs two physical buffers: the one
      holding the previous generation and a spare.  The rewrite hoists
      one spare allocation above the loop, threads it as a second
      carried [mem, array] group, and rotates the two groups in the
      body's result, dropping the per-iteration allocation.  Peak
      footprint falls from [trip * size] to [2 * size] (Hotspot's and
      LBM's time-stepping loops).

   3. *Same-scope coalescing*: within one lexical block, a later
      allocation [L] may rebind into an earlier allocation [E] whose
      live range ended before [L]'s began, provided [E]'s symbolic size
      dominates [L]'s.  Interference is live-range overlap over the
      statement index order; liveness of a block is the span from its
      allocation to the last statement referencing any array annotated
      into it (computed from the same last-use/alias machinery the
      short-circuiting pass uses, with every free array variable mapped
      through its annotation).  Size domination is discharged by
      {!Symalg.Prover.prove_ge} on the resolved allocation sizes, or
      failing that by proving every rebased annotation's LMAD footprint
      ({!Lmads.Lmad.bounds}) fits in [0, size E).

   Safety is verified from both sides: {!Memlint}'s [reuse] rule
   rejects any coalescing whose live ranges actually overlap, and
   {!Memtrace}'s dead-contents/revive checks replay traced executions
   of the reused program.  The pass mutates its input (annotations are
   mutable); {!Pipeline.compile} hands it a private clone. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module Lmad = Lmads.Lmad
module Ixfn = Lmads.Ixfn
module SM = Map.Make (String)
module SS = Ir.Ast.SS

(* ---------------------------------------------------------------- *)
(* Options and statistics                                            *)
(* ---------------------------------------------------------------- *)

type options = {
  verbose : bool;
  coalesce : bool; (* same-scope coalescing (strategy 3) *)
  chains : bool; (* dead existential chain removal (strategy 1) *)
  rotation : bool; (* double-buffer rotation (strategy 2) *)
  cross_scope : bool; (* alloc hoisting out of loop bodies (strategy 4) *)
}

let default_options =
  {
    verbose = false;
    coalesce = true;
    chains = true;
    rotation = true;
    cross_scope = true;
  }

let disabled =
  {
    verbose = false;
    coalesce = false;
    chains = false;
    rotation = false;
    cross_scope = false;
  }

type stats = {
  mutable candidates : int; (* (earlier, later) alloc pairs examined *)
  mutable coalesced : int; (* later allocs rebound into earlier blocks *)
  mutable size_proofs : int; (* prover obligations discharged *)
  mutable chain_links : int; (* dead existential mem positions removed *)
  mutable rotated : int; (* loops rewritten to double-buffering *)
  mutable hoisted : int; (* allocations lifted out of loop bodies *)
}

let fresh_stats () =
  {
    candidates = 0;
    coalesced = 0;
    size_proofs = 0;
    chain_links = 0;
    rotated = 0;
    hoisted = 0;
  }

let pp_stats ppf (s : stats) =
  Report.section ~title:"memory reuse" ppf
    [
      ( "coalesced",
        Fmt.str "%d of %d candidate pairs" s.coalesced s.candidates );
      ("size-domination proofs", string_of_int s.size_proofs);
      ("dead chain links removed", string_of_int s.chain_links);
      ("loops double-buffered", string_of_int s.rotated);
      ("allocations hoisted across scopes", string_of_int s.hoisted);
    ]

let trace opts fmt =
  if opts.verbose then Fmt.epr (fmt ^^ "@.") else Fmt.kstr (fun _ -> ()) fmt

(* ---------------------------------------------------------------- *)
(* Shared helpers                                                    *)
(* ---------------------------------------------------------------- *)

let resolve scalars p = try P.subst_fixpoint scalars p with Failure _ -> p

let resolve_lmad scalars l =
  try Lmad.subst_fixpoint scalars l with Failure _ -> l

(* The LMAD adjacent to memory: a chain's footprint is a subset of the
   last link's point set (same convention as Memlint). *)
let memory_lmad ixfn =
  match List.rev (Ixfn.chain ixfn) with
  | l :: _ -> l
  | [] -> Fault.internal ~where:"Reuse.memory_lmad" "empty index-function chain"

let atom_poly = function
  | Int c -> Some (P.const c)
  | Var v -> Some (P.var v)
  | _ -> None

(* i64 scalar definitions usable for size resolution (the same table
   Shortcircuit and Memlint build). *)
let scalar_def (s : stm) : (string * P.t) option =
  match (s.pat, s.exp) with
  | [ pe ], EIdx p when pe.pt = TScalar I64 -> Some (pe.pv, p)
  | [ pe ], EAtom (Int c) when pe.pt = TScalar I64 -> Some (pe.pv, P.const c)
  | [ pe ], EAtom (Var v) when pe.pt = TScalar I64 -> Some (pe.pv, P.var v)
  | [ pe ], EBin (op, a, b) when pe.pt = TScalar I64 -> (
      match (atom_poly a, atom_poly b) with
      | Some pa, Some pb -> (
          match op with
          | Add -> Some (pe.pv, P.add pa pb)
          | Sub -> Some (pe.pv, P.sub pa pb)
          | Mul -> Some (pe.pv, P.mul pa pb)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* Rename block [oldm] to [newm] in every annotation of a statement
   subtree (annotations are the only legitimate occurrences the
   coalescer allows, so exps need no rewriting). *)
let rename_pe oldm newm pe =
  match pe.pmem with
  | Some mi when mi.block = oldm -> pe.pmem <- Some { mi with block = newm }
  | _ -> ()

let rec rename_annots_stm oldm newm (s : stm) : unit =
  List.iter (rename_pe oldm newm) s.pat;
  match s.exp with
  | EMap { body; _ } -> rename_annots_block oldm newm body
  | ELoop { params; body; _ } ->
      List.iter (fun (pe, _) -> rename_pe oldm newm pe) params;
      rename_annots_block oldm newm body
  | EIf { tb; fb; _ } ->
      rename_annots_block oldm newm tb;
      rename_annots_block oldm newm fb
  | _ -> ()

and rename_annots_block oldm newm (b : block) : unit =
  List.iter (rename_annots_stm oldm newm) b.stms

(* Rename every reference to mem block [oldm] - annotations *and*
   expression-position atoms (loop-carried mem initializers, block
   results) - to [newm] within a subtree.  Used when an [if] arm's
   allocation is absorbed by its partner in the other arm; names are
   globally unique, so the rewrite is total. *)
let rec rename_var_stm oldm newm (s : stm) : stm =
  List.iter (rename_pe oldm newm) s.pat;
  let ratom = function Var v when v = oldm -> Var newm | a -> a in
  let exp =
    match s.exp with
    | EMap ({ body; _ } as m) ->
        EMap { m with body = rename_var_block oldm newm body }
    | ELoop ({ params; body; _ } as l) ->
        let params =
          List.map
            (fun (pe, init) ->
              rename_pe oldm newm pe;
              (pe, ratom init))
            params
        in
        ELoop { l with params; body = rename_var_block oldm newm body }
    | EIf ({ tb; fb; _ } as i) ->
        EIf
          {
            i with
            tb = rename_var_block oldm newm tb;
            fb = rename_var_block oldm newm fb;
          }
    | EAtom a -> EAtom (ratom a)
    | e -> e
  in
  { s with exp }

and rename_var_block oldm newm (b : block) : block =
  {
    stms = List.map (rename_var_stm oldm newm) b.stms;
    res = List.map (function Var v when v = oldm -> Var newm | a -> a) b.res;
  }

(* Variables occurring in *expression* position anywhere in a subtree:
   atoms, array operands, concat/update names, loop initializers and
   body results - everything except memory annotations and index
   polynomials (whose variables are scalars).  A block name with such
   an occurrence is structurally load-bearing and never coalesced. *)
let rec exp_vars (e : exp) (acc : SS.t) : SS.t =
  let atom acc = function Var v -> SS.add v acc | _ -> acc in
  match e with
  | EAtom a | EUn (_, a) | EReplicate (_, a) -> atom acc a
  | EBin (_, a, b) | ECmp (_, a, b) -> atom (atom acc a) b
  | EIdx _ | EIota _ | EScratch _ | EAlloc _ -> acc
  | EIndex (v, _)
  | ESlice (v, _)
  | ETranspose (v, _)
  | EReshape (v, _)
  | EReverse (v, _)
  | ECopy v
  | EArgmin v ->
      SS.add v acc
  | EConcat vs -> List.fold_left (fun acc v -> SS.add v acc) acc vs
  | EReduce { ne; arr; _ } -> atom (SS.add arr acc) ne
  | EUpdate { dst; src; _ } -> (
      let acc = SS.add dst acc in
      match src with SrcArr v -> SS.add v acc | SrcScalar a -> atom acc a)
  | EMap { body; _ } -> exp_vars_block body acc
  | ELoop { params; body; _ } ->
      let acc = List.fold_left (fun acc (_, a) -> atom acc a) acc params in
      exp_vars_block body acc
  | EIf { cond; tb; fb } ->
      exp_vars_block fb (exp_vars_block tb (atom acc cond))

and exp_vars_block (b : block) (acc : SS.t) : SS.t =
  let acc = List.fold_left (fun acc s -> exp_vars s.exp acc) acc b.stms in
  List.fold_left
    (fun acc a -> match a with Var v -> SS.add v acc | _ -> acc)
    acc b.res

(* Does mem block [name], allocated inside an [if] arm, escape the arm
   in expression position?  One relaxation over a bare
   [exp_vars_block] membership test: memintro threads an arm-local
   block through an enclosing loop as the initializer of a
   loop-carried *mem* parameter, an occurrence that merely hands the
   block's identity to the loop.  Such an initializer is benign iff
   the loop's mem result binder at the same tuple position is itself
   clean - no expression-position occurrence in the arm, in
   particular not among the arm's results - so the chain ends inside
   the arm.  Any other occurrence (operand, non-mem initializer, arm
   result) is an escape. *)
let arm_block_escapes (arm : block) name : bool =
  let chain = ref [] in
  let rec stm_occ (s : stm) : bool =
    match s.exp with
    | ELoop { params; body; _ } ->
        let hard = ref false in
        List.iteri
          (fun j ((pe : pat_elem), init) ->
            match init with
            | Var v when v = name ->
                if pe.pt = TMem then (
                  match List.nth_opt s.pat j with
                  | Some (q : pat_elem) -> chain := q.pv :: !chain
                  | None -> hard := true)
                else hard := true
            | _ -> ())
          params;
        !hard || block_occ body
    | EMap { body; _ } -> block_occ body
    | EIf { cond; tb; fb } ->
        (match cond with Var v -> v = name | _ -> false)
        || block_occ tb || block_occ fb
    | e -> SS.mem name (exp_vars e SS.empty)
  and block_occ (b : block) : bool =
    List.exists stm_occ b.stms
    || List.exists (function Var v -> v = name | _ -> false) b.res
  in
  block_occ arm
  ||
  let all = exp_vars_block arm SS.empty in
  List.exists (fun r -> SS.mem r all) !chain

(* Every annotation into block [blk] anywhere in a subtree (pattern
   elements and loop parameters, nested bodies included) - the full
   set that [rename_annots_stm] would move - each paired with the
   prover context extended by the iteration-space ranges of the
   enclosing map/loop nests inside the subtree, so bounds of
   index-dependent footprints ([9*i*n + 9*j + {(9 : 1)}] under a
   mapnest) can be discharged. *)
let annots_into ctx scalars blk (b : block) :
    (string * mem_info * Pr.t) list =
  let acc = ref [] in
  let note ctx pe =
    match pe.pmem with
    | Some mi when mi.block = blk -> acc := (pe.pv, mi, ctx) :: !acc
    | _ -> ()
  in
  let rec go_stm ctx (s : stm) =
    List.iter (note ctx) s.pat;
    match s.exp with
    | EMap { nest; body } ->
        let ctx' =
          List.fold_left
            (fun c (v, n) ->
              Pr.add_range c v ~lo:P.zero
                ~hi:(P.sub (resolve scalars n) P.one) ())
            ctx nest
        in
        go_block ctx' body
    | ELoop { params; var; bound; body } ->
        List.iter (fun (pe, _) -> note ctx pe) params;
        let ctx' =
          Pr.add_range ctx var ~lo:P.zero
            ~hi:(P.sub (resolve scalars bound) P.one) ()
        in
        go_block ctx' body
    | EIf { tb; fb; _ } ->
        go_block ctx tb;
        go_block ctx fb
    | _ -> ()
  and go_block ctx (b : block) = List.iter (go_stm ctx) b.stms in
  go_block ctx b;
  !acc

(* ---------------------------------------------------------------- *)
(* Strategy 1: dead existential chain removal                        *)
(* ---------------------------------------------------------------- *)

(* A loop's [mem] position is dead when neither the parameter nor the
   outer pattern binder is referenced by any annotation or any
   expression occurrence outside the chain's own structure (the
   initializer atom feeding it and the body result atom returning it).
   Removing the position group-wise - parameter, initializer, body
   result atom, outer binder - makes the feeding allocation dead too.

   Occurrence classification: walking the program, an atom at the
   initializer of a TMem parameter or at a TMem position of a loop
   body's result is *structural*; every other occurrence is *hard*.
   Structural occurrences disappear exactly when their position is
   removed, so candidacy is computed to a fixpoint: a name referenced
   from a position that will *not* be removed is evicted, which may
   block further positions, and so on. *)

type chain_occ = {
  co_loop : stm; (* the loop statement *)
  co_idx : int; (* position index within params/pat/body.res *)
  co_name : string; (* the referenced name (init or res atom) *)
}

let chain_analysis (p : prog) =
  (* annotation-referenced blocks, TMem binder inventory, hard
     occurrences, structural occurrences *)
  let annot = ref SS.empty in
  let hard = ref SS.empty in
  let structural : chain_occ list ref = ref [] in
  let mem_binders = ref SS.empty in
  let note_pe pe =
    match pe.pmem with
    | Some mi -> annot := SS.add mi.block !annot
    | None -> ()
  in
  let note_atom_hard = function
    | Var v -> hard := SS.add v !hard
    | _ -> ()
  in
  let rec go_stm (s : stm) =
    List.iter note_pe s.pat;
    (match s.exp with
    | ELoop { params; body; _ } ->
        List.iteri
          (fun i (pe, init) ->
            note_pe pe;
            if pe.pt = TMem then begin
              mem_binders := SS.add pe.pv !mem_binders;
              (match init with
              | Var v ->
                  structural := { co_loop = s; co_idx = i; co_name = v } :: !structural
              | _ -> ());
              (* the outer binder for this position *)
              match List.nth_opt s.pat i with
              | Some q when q.pt = TMem ->
                  mem_binders := SS.add q.pv !mem_binders
              | _ -> ()
            end
            else note_atom_hard init)
          params;
        List.iter go_stm body.stms;
        List.iteri
          (fun i a ->
            let structural_pos =
              match List.nth_opt params i with
              | Some (pe, _) -> pe.pt = TMem
              | None -> false
            in
            if structural_pos then (
              match a with
              | Var v ->
                  structural := { co_loop = s; co_idx = i; co_name = v } :: !structural
              | _ -> ())
            else note_atom_hard a)
          body.res
    | EMap { body; _ } ->
        List.iter go_stm body.stms;
        List.iter note_atom_hard body.res
    | EIf { cond; tb; fb } ->
        (* An [if] forwards each arm's TMem result into its own TMem
           binder - existential plumbing exactly like a loop's mem
           positions, so an atom at such a position is structural and
           the chain can continue through the conditional.  Non-mem
           positions stay hard. *)
        note_atom_hard cond;
        List.iter
          (fun (q : pat_elem) ->
            if q.pt = TMem then mem_binders := SS.add q.pv !mem_binders)
          s.pat;
        let arm_res (b : block) =
          List.iteri
            (fun i a ->
              let structural_pos =
                match List.nth_opt s.pat i with
                | Some (q : pat_elem) -> q.pt = TMem
                | None -> false
              in
              if structural_pos then (
                match a with
                | Var v ->
                    structural :=
                      { co_loop = s; co_idx = i; co_name = v } :: !structural
                | _ -> ())
              else note_atom_hard a)
            b.res
        in
        List.iter go_stm tb.stms;
        arm_res tb;
        List.iter go_stm fb.stms;
        arm_res fb
    | EAlloc _ -> (
        match s.pat with
        | [ pe ] when pe.pt = TMem -> mem_binders := SS.add pe.pv !mem_binders
        | _ -> ())
    | e -> SS.iter (fun v -> hard := SS.add v !hard) (exp_vars e SS.empty));
    ()
  in
  List.iter note_pe p.params;
  List.iter go_stm p.body.stms;
  List.iter (fun a -> note_atom_hard a) p.body.res;
  (!annot, !hard, !structural, !mem_binders)

let remove_dead_chains (st : stats) opts cert (p : prog) : prog =
  let annot, hard, structural, mem_binders = chain_analysis p in
  let candidates =
    ref (SS.diff mem_binders (SS.union annot hard))
  in
  (* a loop position is removable iff both its parameter and its outer
     binder are candidates; an [if] position (which has no parameter)
     iff its TMem binder is one *)
  let removable_pos (s : stm) i =
    match s.exp with
    | ELoop { params; _ } -> (
        match (List.nth_opt params i, List.nth_opt s.pat i) with
        | Some (pe, _), Some q ->
            SS.mem pe.pv !candidates && SS.mem q.pv !candidates
        | _ -> false)
    | EIf _ -> (
        match List.nth_opt s.pat i with
        | Some q -> q.pt = TMem && SS.mem q.pv !candidates
        | _ -> false)
    | _ -> false
  in
  (* evict names referenced from positions that will survive *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun occ ->
        if (not (removable_pos occ.co_loop occ.co_idx))
           && SS.mem occ.co_name !candidates
        then begin
          candidates := SS.remove occ.co_name !candidates;
          changed := true
        end)
      structural
  done;
  if SS.is_empty !candidates then p
  else begin
    let filter_pos (s : stm) (l : stm list) : stm list =
      match s.exp with
      | ELoop ({ params; body; _ } as lp) ->
          let keep = Array.make (List.length params) true in
          List.iteri
            (fun i (pe, _) ->
              if removable_pos s i then begin
                keep.(i) <- false;
                st.chain_links <- st.chain_links + 1;
                let loop_binding =
                  match s.pat with pe :: _ -> pe.pv | [] -> "?"
                in
                (match cert with
                | None -> ()
                | Some r ->
                    let names =
                      pe.pv
                      ::
                      (match List.nth_opt s.pat i with
                      | Some q -> [ q.pv ]
                      | None -> [])
                    in
                    Certify.emit r
                      (Certify.Chain_removal { loop_binding; position = i })
                      (Certify.Dead_mem { names }));
                trace opts "reuse: dropping dead mem chain position %d of loop %s"
                  i loop_binding
              end)
            params;
          if Array.for_all Fun.id keep then l @ [ s ]
          else
            let sel xs =
              List.filteri (fun i _ -> i >= Array.length keep || keep.(i)) xs
            in
            let params' = sel params in
            let res' = sel body.res in
            let pat' = sel s.pat in
            l
            @ [
                {
                  s with
                  pat = pat';
                  exp = ELoop { lp with params = params'; body = { body with res = res' } };
                };
              ]
      | EIf ({ tb; fb; _ } as ifr) ->
          let keep = Array.make (List.length s.pat) true in
          List.iteri
            (fun i (q : pat_elem) ->
              if removable_pos s i then begin
                keep.(i) <- false;
                st.chain_links <- st.chain_links + 1;
                let loop_binding =
                  match s.pat with pe :: _ -> pe.pv | [] -> "?"
                in
                (match cert with
                | None -> ()
                | Some r ->
                    Certify.emit r
                      (Certify.Chain_removal { loop_binding; position = i })
                      (Certify.Dead_mem { names = [ q.pv ] }));
                trace opts
                  "reuse: dropping dead mem chain position %d of if %s" i
                  loop_binding
              end)
            s.pat;
          if Array.for_all Fun.id keep then l @ [ s ]
          else
            let sel xs =
              List.filteri (fun i _ -> i >= Array.length keep || keep.(i)) xs
            in
            l
            @ [
                {
                  s with
                  pat = sel s.pat;
                  exp =
                    EIf
                      {
                        ifr with
                        tb = { tb with res = sel tb.res };
                        fb = { fb with res = sel fb.res };
                      };
                };
              ]
      | _ -> l @ [ s ]
    in
    let rewrite (b : block) : block =
      { b with stms = List.fold_left (fun l s -> filter_pos s l) [] b.stms }
    in
    (* apply to every lexical block, innermost first, then the top *)
    let body = map_blocks_block rewrite p.body in
    { p with body = rewrite body }
  end

(* ---------------------------------------------------------------- *)
(* Strategy 2: double-buffer rotation                                *)
(* ---------------------------------------------------------------- *)

(* Recognize [loop (m : mem, a @ m) = (im, ia) for v < n do
     let rm : mem = alloc s in ... let ra @ rm = ... in (rm, ra)]
   where the fresh allocation's size is loop-invariant, the trip count
   is provably positive, and neither the initializer array nor its
   block is referenced after the loop (iteration 2 clobbers it).  The
   rewrite threads one hoisted spare as a second carried group and
   rotates the groups in the result, so generation [i+1] overwrites
   generation [i-1]'s (dead) buffer.

   From iteration 2 on the renamed writes land in the *initializer's*
   buffer, whose allocation the loop never sees, so the rewrite owes a
   proof that the buffer can hold everything [rename_annots_stm] moves
   into it.  Three ways to discharge it, any one suffices:

   - the fresh block's only annotated occupant is the carried result
     itself with the carried array's own index function, which the
     initializer buffer demonstrably holds (it fed that very footprint
     into iteration 1);
   - the initializer block's allocation size provably dominates the
     per-iteration size [s] ([alloc_sizes] carries every [EAlloc] in
     scope);
   - the initializer is opaque (a program parameter, say) but every
     annotation moving into it has memory-LMAD bounds inside the
     carried footprint's own address range [0, hi] - addresses the
     buffer provably contains, because an allocation is contiguous
     from 0 and the carried footprint reaches [hi] (the
     short-circuited concat-piece layout: top/mid/bot at offsets
     within the full array). *)

let try_rotate (st : stats) opts cert ctx scalars ~alloc_sizes ~tail_refs
    (s : stm) : stm list option =
  match (s.exp, s.pat) with
  | ( ELoop { params = [ (pm, Var im); (pa, Var ia) ]; var; bound; body },
      [ qm; qa ] )
    when pm.pt = TMem && qm.pt = TMem -> (
      let annotated_into blk pe =
        match pe.pmem with Some mi -> mi.block = blk | None -> false
      in
      match (pa.pmem, qa.pmem, body.res) with
      | Some pmi, Some _, [ Var rm; Var ra ]
        when annotated_into pm.pv pa && annotated_into qm.pv qa ->
          (* the fresh per-iteration allocation *)
          let alloc_size =
            List.find_map
              (fun bs ->
                match (bs.pat, bs.exp) with
                | [ pe ], EAlloc sz when pe.pv = rm -> Some sz
                | _ -> None)
              body.stms
          in
          let ra_in_rm =
            List.exists
              (fun bs -> List.exists (fun pe -> pe.pv = ra && annotated_into rm pe) bs.pat)
              body.stms
          in
          let body_bound =
            List.fold_left
              (fun acc bs ->
                List.fold_left (fun acc pe -> SS.add pe.pv acc) acc bs.pat)
              (SS.of_list [ var; pm.pv; pa.pv ])
              body.stms
          in
          let body_fv = fv_block body in
          (* the fresh block must have no expression-position use in the
             body (e.g. feeding an inner existential loop): annotations
             are all the rewrite renames *)
          let body_exp_vars =
            List.fold_left (fun acc bs -> exp_vars bs.exp acc) SS.empty
              body.stms
          in
          let size_proof = ref None in
          (match alloc_size with
          | Some sz
            when ra_in_rm
                 && (not (SS.mem rm body_exp_vars))
                 && SS.is_empty (SS.inter (SS.of_list (P.vars sz)) body_bound)
                 && (not (SS.mem ia body_fv))
                 && (not (SS.mem im body_fv))
                 && (not (SS.mem ia tail_refs))
                 && (not (SS.mem im tail_refs))
                 && Pr.prove_ge ctx (resolve scalars bound) P.one
                 && (* size obligation for the redirected writes *)
                 (let rm_annots = annots_into ctx scalars rm body in
                  let sole_carried_occupant =
                    rm_annots <> []
                    && List.for_all
                         (fun (v, mi, _) ->
                           v = ra && Ixfn.equal mi.ixfn pmi.ixfn)
                         rm_annots
                  in
                  let init_size_dominates () =
                    match SM.find_opt im alloc_sizes with
                    | Some size_im
                      when Pr.prove_ge ctx
                             (resolve scalars size_im)
                             (resolve scalars sz) ->
                        st.size_proofs <- st.size_proofs + 1;
                        size_proof := Some (`Init size_im);
                        true
                    | _ -> false
                  in
                  let fits_carried_footprint () =
                    match
                      Lmad.bounds ctx
                        (resolve_lmad scalars (memory_lmad pmi.ixfn))
                    with
                    | None -> false
                    | Some (_, hi_c) ->
                        let fits (_, (mi : mem_info), actx) =
                          match
                            Lmad.bounds actx
                              (resolve_lmad scalars (memory_lmad mi.ixfn))
                          with
                          | None -> false
                          | Some (lo, hi) ->
                              Pr.prove_in_range actx lo ~lo:P.zero ~hi:hi_c
                              && Pr.prove_in_range actx hi ~lo:P.zero ~hi:hi_c
                        in
                        let ok =
                          rm_annots <> [] && List.for_all fits rm_annots
                        in
                        if ok then begin
                          st.size_proofs <- st.size_proofs + 1;
                          size_proof := Some (`Fits (hi_c, rm_annots))
                        end;
                        ok
                  in
                  (sole_carried_occupant
                  &&
                  (size_proof := Some `Sole;
                   true))
                  || init_size_dominates ()
                  || fits_carried_footprint ()
                  ||
                  (trace opts
                     "reuse: not rotating %s: cannot prove the initializer \
                      block %s holds the per-iteration footprint"
                     qa.pv im;
                   false)) ->
              st.size_proofs <- st.size_proofs + 1;
              (* hoisted spare buffer *)
              let smem = Ir.Names.fresh (pm.pv ^ "_spare") in
              let sarr = Ir.Names.fresh (pa.pv ^ "_spare") in
              let elt, shape =
                match pa.pt with
                | TArr (elt, shape) -> (elt, shape)
                | _ ->
                    Fault.internal ~where:"Reuse.try_rotate"
                      "rotation candidate %s is not an array" pa.pv
              in
              let alloc_stm = stm [ pat_elem smem TMem ] (EAlloc sz) in
              let scratch_stm =
                stm
                  [ pat_elem ~mem:{ block = smem; ixfn = pmi.ixfn } sarr pa.pt ]
                  (EScratch (elt, shape))
              in
              (* second carried group *)
              let psm = pat_elem (Ir.Names.fresh (pm.pv ^ "_rot")) TMem in
              let psa =
                pat_elem
                  ~mem:{ block = psm.pv; ixfn = pmi.ixfn }
                  (Ir.Names.fresh (pa.pv ^ "_rot"))
                  pa.pt
              in
              (* generation i+1 now writes into the spare *)
              List.iter (rename_annots_stm rm psm.pv) body.stms;
              let body' =
                {
                  body with
                  res = [ Var psm.pv; Var ra; Var pm.pv; Var pa.pv ];
                }
              in
              let q2m = pat_elem (Ir.Names.fresh (qm.pv ^ "_rot")) TMem in
              let q2a =
                pat_elem
                  ~mem:
                    {
                      block = q2m.pv;
                      ixfn =
                        (match qa.pmem with
                        | Some mi -> mi.ixfn
                        | None -> pmi.ixfn);
                    }
                  (Ir.Names.fresh (qa.pv ^ "_rot"))
                  pa.pt
              in
              let loop' =
                {
                  s with
                  pat = [ qm; qa; q2m; q2a ];
                  exp =
                    ELoop
                      {
                        params =
                          [
                            (pm, Var im);
                            (pa, Var ia);
                            (psm, Var smem);
                            (psa, Var sarr);
                          ];
                        var;
                        bound;
                        body = body';
                      };
                }
              in
              st.rotated <- st.rotated + 1;
              (match cert with
              | None -> ()
              | Some r ->
                  let rw =
                    Certify.Rotation
                      {
                        loop_binding = qa.pv;
                        init_block = im;
                        init_arr = ia;
                        spare_block = smem;
                      }
                  in
                  Certify.emit r rw ~ctx
                    (Certify.Size_ge
                       { larger = resolve scalars bound; smaller = P.one });
                  Certify.emit r rw
                    (Certify.Dead_after { names = [ im; ia ]; binding = qa.pv });
                  (match !size_proof with
                  | Some `Sole ->
                      Certify.emit r rw
                        (Certify.Sole_occupant
                           { block = psm.pv; ixfn = pmi.ixfn })
                  | Some (`Init size_im) ->
                      Certify.emit r rw ~ctx
                        (Certify.Size_ge
                           {
                             larger = resolve scalars size_im;
                             smaller = resolve scalars sz;
                           })
                  | Some (`Fits (hi_c, rm_annots)) ->
                      List.iter
                        (fun (_, (mi : mem_info), actx) ->
                          Certify.emit r rw ~ctx:actx
                            (Certify.Bounds_in
                               {
                                 lmad =
                                   resolve_lmad scalars (memory_lmad mi.ixfn);
                                 lo = P.zero;
                                 hi = hi_c;
                               }))
                        rm_annots
                  | None -> ()));
              trace opts "reuse: double-buffered loop %s (spare %s)" qa.pv smem;
              Some [ alloc_stm; scratch_stm; loop' ]
          | _ -> None)
      | _ -> None)
  | _ -> None

(* ---------------------------------------------------------------- *)
(* Strategy 3: same-scope coalescing                                 *)
(* ---------------------------------------------------------------- *)

(* Per lexical block: statement-indexed live ranges, a greedy first-fit
   over allocation order.  [mems] maps every array variable in scope to
   its (annotation) block, so a free variable occurrence extends its
   block's range even when the block name itself does not appear. *)

let block_refs mems (s : stm) : SS.t =
  let fv = fv_stm s in
  SS.fold
    (fun v acc ->
      match SM.find_opt v mems with Some m -> SS.add m acc | None -> acc)
    fv fv

let res_refs mems (b : block) : SS.t =
  List.fold_left
    (fun acc a ->
      match a with
      | Var v -> (
          let acc = SS.add v acc in
          match SM.find_opt v mems with
          | Some m -> SS.add m acc
          | None -> acc)
      | _ -> acc)
    SS.empty b.res

let coalesce_block (st : stats) opts cert ctx scalars mems (b : block) : unit =
  let stms = Array.of_list b.stms in
  let n = Array.length stms in
  let refs = Array.map (block_refs mems) stms in
  let escape = res_refs mems b in
  (* names with expression-position occurrences anywhere in this block
     are structurally load-bearing (loop-carried mems etc.) *)
  let hard = exp_vars_block b SS.empty in
  (* annotations per block, for the footprint-fit fallback *)
  let annots_of blk =
    let acc = ref [] in
    let note pe =
      match pe.pmem with
      | Some mi when mi.block = blk -> acc := mi :: !acc
      | _ -> ()
    in
    Array.iter
      (fun s ->
        List.iter
          (fun sub ->
            List.iter note sub.pat;
            match sub.exp with
            | ELoop { params; _ } -> List.iter (fun (pe, _) -> note pe) params
            | _ -> ())
          (all_stms_block { stms = [ s ]; res = [] }))
      stms;
    !acc
  in
  let last_ref blk =
    let last = ref (-1) in
    Array.iteri (fun i r -> if SS.mem blk r then last := i) refs;
    !last
  in
  (* A block's live interval starts at its first reference - the first
     array bound into it - not at its [EAlloc], which hoisting has
     moved to the top of the block.  (The alloc statement itself never
     references the block: the pattern binds it and carries no
     annotation.) *)
  let first_ref blk =
    let first = ref max_int in
    Array.iteri (fun i r -> if SS.mem blk r && i < !first then first := i) refs;
    !first
  in
  let size_dominates sizee sizel blk_l =
    let se = resolve scalars sizee and sl = resolve scalars sizel in
    if Pr.prove_ge ctx se sl then begin
      st.size_proofs <- st.size_proofs + 1;
      Some (`Ge (se, sl))
    end
    else
      (* fallback: every annotation moving into E stays in [0, size E) *)
      let fits mi =
        match Lmad.bounds ctx (resolve_lmad scalars (memory_lmad mi.ixfn)) with
        | None -> false
        | Some (lo, hi) ->
            Pr.prove_in_range ctx lo ~lo:P.zero ~hi:(P.sub se P.one)
            && Pr.prove_in_range ctx hi ~lo:P.zero ~hi:(P.sub se P.one)
      in
      let annots = annots_of blk_l in
      if annots <> [] && List.for_all fits annots then begin
        st.size_proofs <- st.size_proofs + 1;
        Some (`Fits (se, annots))
      end
      else None
  in
  (* arrays whose annotation the rename below moves into the target
     (recorded in the coalesce obligation) *)
  let movers_of di l =
    let acc = ref [] in
    for i = di to n - 1 do
      List.iter
        (fun sub ->
          let note pe =
            match pe.pmem with
            | Some mi when mi.block = l -> acc := pe.pv :: !acc
            | _ -> ()
          in
          List.iter note sub.pat;
          match sub.exp with
          | ELoop { params; _ } -> List.iter (fun (pe, _) -> note pe) params
          | _ -> ())
        (all_stms_block { stms = [ stms.(i) ]; res = [] })
    done;
    List.rev !acc
  in
  (* allocations in statement order *)
  let allocs = ref [] in
  Array.iteri
    (fun i s ->
      match (s.pat, s.exp) with
      | [ pe ], EAlloc sz when pe.pt = TMem -> allocs := (i, pe.pv, sz) :: !allocs
      | _ -> ())
    stms;
  let allocs = List.rev !allocs in
  (* greedy first-fit: earlier blocks are targets; [t_last] tracks the
     merged live range *)
  let targets : (int * string * idx * int ref) list ref = ref [] in
  List.iter
    (fun (di, l, sz_l) ->
      let l_first = first_ref l in
      if (not (SS.mem l hard)) && (not (SS.mem l escape)) && l_first < max_int
      then begin
        let l_last = last_ref l in
        let rec fit = function
          | [] ->
              targets := !targets @ [ (di, l, sz_l, ref l_last) ]
          | (ei, e, sz_e, e_last) :: rest -> (
              st.candidates <- st.candidates + 1;
              let proof =
                if
                  ei < di && !e_last < l_first
                  && (not (SS.mem e escape))
                  (* a block in expression position (a loop initializer,
                     say) may be aliased by existential results whose
                     liveness the reference scan cannot see: never a
                     target *)
                  && not (SS.mem e hard)
                then size_dominates sz_e sz_l l
                else None
              in
              match proof with
              | Some proof ->
                  let movers =
                    match cert with Some _ -> movers_of di l | None -> []
                  in
                  (* rebind L's annotations into E from L's definition on *)
                  for i = di to n - 1 do
                    rename_annots_stm l e stms.(i)
                  done;
                  e_last := max !e_last l_last;
                  st.coalesced <- st.coalesced + 1;
                  (match cert with
                  | None -> ()
                  | Some r ->
                      let rw = Certify.Coalesce { earlier = e; later = l } in
                      Certify.emit r rw ~ctx
                        (Certify.Live_disjoint
                           { earlier = e; later = l; movers });
                      (match proof with
                      | `Ge (se, sl) ->
                          Certify.emit r rw ~ctx
                            (Certify.Size_ge { larger = se; smaller = sl })
                      | `Fits (se, annots) ->
                          List.iter
                            (fun (mi : mem_info) ->
                              Certify.emit r rw ~ctx
                                (Certify.Bounds_in
                                   {
                                     lmad =
                                       resolve_lmad scalars
                                         (memory_lmad mi.ixfn);
                                     lo = P.zero;
                                     hi = P.sub se P.one;
                                   }))
                            annots));
                  trace opts "reuse: coalesced block %s into %s" l e
              | None -> fit rest)
        in
        fit !targets
      end
      else targets := !targets @ [ (di, l, sz_l, ref (last_ref l)) ])
    allocs

(* ---------------------------------------------------------------- *)
(* Strategy 4: cross-scope hoisting                                  *)
(* ---------------------------------------------------------------- *)

(* A sequential loop body that allocates a fresh temporary every
   iteration pays [trip] allocations for contents that never survive
   the iteration.  When the block is (a) not structurally load-bearing
   in the body (no expression-position occurrence: not loop-carried,
   not an existential result) and (b) not the home of any array the
   body returns, every iteration's instance is dead by the iteration's
   end, so a single allocation hoisted in front of the loop serves all
   of them.  The hoisted block then lives in the parent scope, where
   strategy 3 may coalesce it with temporaries hoisted from *sibling*
   loops whose statement-level live intervals are disjoint - the
   cross-scope sharing this pass exists to enable.  (Allocations are
   never hoisted out of a mapnest: an in-kernel allocation is
   per-thread scratch, and all threads' instances are live at once.)

   The hoisted size must dominate every iteration's request:
   - a loop-invariant size (no body-bound variables left after
     resolving body-local scalar definitions) hoists as-is;
   - a size depending only on the loop variable [v] hoists as
     [sz[v:=0]], provided the prover shows [sz[v:=0] >= sz] for all
     [v] in [0, bound) (the shrinking-interior pattern); the
     obligation counts as a size-domination proof.

   The pass also hoists through [if] arms.  An allocation local to an
   arm - no expression-position occurrence inside the arm, not the
   home of anything the arm returns, size computable above the [if] -
   is dead by the arm's end, so its allocation may lift above the
   conditional:
   - *paired*: when both arms hold such an allocation, the prover
     compares the two sizes; the dominating one lifts above the [if]
     and the other arm's block is renamed into it (1 -> 1 executed
     allocations per branch taken, always profitable);
   - *single-arm*: an unpaired candidate lifts only when the [if]
     sits inside a sequential loop body, where the subsequent
     loop-level hoist amortizes the (at most one) extra allocation
     across the trip count.
   Lifted blocks land in the enclosing scope, in front of the [if],
   where the loop-level hoist above and sibling coalescing can pick
   them up.  Each lift is certified: an
   {!constructor:Certify.claim.Dies_in_arm} claim per arm-local block
   and a branch-wise {!constructor:Certify.claim.Size_ge} for the
   dominating size. *)

let hoist_allocs (st : stats) opts cert (p0 : prog) : prog =
  let note_mems m (pes : pat_elem list) =
    List.fold_left
      (fun m pe ->
        match pe.pmem with
        | Some mi -> SM.add pe.pv mi.block m
        | None -> m)
      m pes
  in
  let rec go_stm ~in_loop ctx scalars (s : stm) : stm list =
    match s.exp with
    | EMap { nest; body } ->
        let ctx' =
          List.fold_left
            (fun c (v, n) ->
              Pr.add_range c v ~lo:P.zero
                ~hi:(P.sub (resolve scalars n) P.one) ())
            ctx nest
        in
        [
          {
            s with
            exp = EMap { nest; body = go_block ~in_loop:false ctx' scalars body };
          };
        ]
    | ELoop ({ var; bound; body; params } as lp) ->
        let ctx' =
          Pr.add_range ctx var ~lo:P.zero
            ~hi:(P.sub (resolve scalars bound) P.one) ()
        in
        let body = go_block ~in_loop:true ctx' scalars body in
        let bscalars =
          List.fold_left
            (fun sc bs ->
              match scalar_def bs with
              | Some (v, pl) -> P.SM.add v pl sc
              | None -> sc)
            scalars body.stms
        in
        let bound_names =
          List.fold_left
            (fun acc (bs : stm) ->
              List.fold_left (fun acc pe -> SS.add pe.pv acc) acc bs.pat)
            (List.fold_left
               (fun acc (pe, _) -> SS.add pe.pv acc)
               (SS.singleton var) params)
            body.stms
        in
        let hard = exp_vars_block body SS.empty in
        let mems_body =
          List.fold_left
            (fun m (bs : stm) ->
              let m = note_mems m bs.pat in
              match bs.exp with
              | ELoop { params = ps; _ } -> note_mems m (List.map fst ps)
              | _ -> m)
            (note_mems SM.empty (List.map fst params))
            (all_stms_block body)
        in
        let escape = res_refs mems_body body in
        (* hoisted size, when the block is eligible *)
        let hoist_size pe sz =
          if SS.mem pe.pv hard || SS.mem pe.pv escape then None
          else
            let szr = resolve bscalars sz in
            let inner = SS.inter (SS.of_list (P.vars szr)) bound_names in
            if SS.is_empty inner then Some (szr, None)
            else if SS.equal inner (SS.singleton var) then begin
              let sz0 = P.subst var P.zero szr in
              if Pr.prove_ge ctx' sz0 szr then begin
                st.size_proofs <- st.size_proofs + 1;
                Some (sz0, Some (sz0, szr))
              end
              else None
            end
            else None
        in
        let lifted = ref [] in
        let stms' =
          List.filter
            (fun (bs : stm) ->
              match (bs.pat, bs.exp) with
              | [ pe ], EAlloc sz when pe.pt = TMem -> (
                  match hoist_size pe sz with
                  | Some (sz', proof) ->
                      lifted := stm [ pe ] (EAlloc sz') :: !lifted;
                      st.hoisted <- st.hoisted + 1;
                      let loop_binding =
                        match s.pat with q :: _ -> q.pv | [] -> "?"
                      in
                      (match cert with
                      | None -> ()
                      | Some r ->
                          let rw =
                            Certify.Hoist { block = pe.pv; loop_binding }
                          in
                          Certify.emit r rw
                            (Certify.Dies_each_iter
                               { block = pe.pv; loop_binding });
                          (match proof with
                          | Some (sz0, szr) ->
                              Certify.emit r rw ~ctx:ctx'
                                (Certify.Size_ge
                                   { larger = sz0; smaller = szr })
                          | None -> ()));
                      trace opts "reuse: hoisted alloc %s out of loop %s"
                        pe.pv loop_binding;
                      false
                  | None -> true)
              | _ -> true)
            body.stms
        in
        List.rev !lifted
        @ [ { s with exp = ELoop { lp with body = { body with stms = stms' } } } ]
    | EIf ({ tb; fb; _ } as i) ->
        let tb = go_block ~in_loop ctx scalars tb in
        let fb = go_block ~in_loop ctx scalars fb in
        let if_binding = match s.pat with q :: _ -> q.pv | [] -> "?" in
        (* Arm-local hoist candidates: allocations whose block does
           not escape the arm in expression position (loop-carried mem
           threading with a dead chain result is tolerated, see
           [arm_block_escapes]), is not the home of anything the arm
           returns, and whose size (after resolving arm-local scalar
           definitions) mentions no arm-bound variable, so the request
           is computable above the conditional. *)
        let arm_candidates (arm : block) : (pat_elem * P.t) list =
          let ascalars =
            List.fold_left
              (fun sc bs ->
                match scalar_def bs with
                | Some (v, pl) -> P.SM.add v pl sc
                | None -> sc)
              scalars arm.stms
          in
          let bound_names =
            List.fold_left
              (fun acc (bs : stm) ->
                List.fold_left (fun acc pe -> SS.add pe.pv acc) acc bs.pat)
              SS.empty arm.stms
          in
          let mems_arm =
            List.fold_left
              (fun m (bs : stm) ->
                let m = note_mems m bs.pat in
                match bs.exp with
                | ELoop { params = ps; _ } -> note_mems m (List.map fst ps)
                | _ -> m)
              SM.empty (all_stms_block arm)
          in
          let escape = res_refs mems_arm arm in
          List.filter_map
            (fun (bs : stm) ->
              match (bs.pat, bs.exp) with
              | [ pe ], EAlloc sz when pe.pt = TMem ->
                  if SS.mem pe.pv escape || arm_block_escapes arm pe.pv then
                    None
                  else
                    let szr = resolve ascalars sz in
                    if
                      SS.is_empty
                        (SS.inter (SS.of_list (P.vars szr)) bound_names)
                    then Some (pe, szr)
                    else None
              | _ -> None)
            arm.stms
        in
        let lifted = ref [] in
        let dropped = ref SS.empty in
        let renames = ref [] in
        let cert_lift (pe : pat_elem) arm claims =
          match cert with
          | None -> ()
          | Some r ->
              let rw = Certify.If_hoist { block = pe.pv; if_binding } in
              Certify.emit r rw
                (Certify.Dies_in_arm { block = pe.pv; if_binding; arm });
              List.iter
                (fun (larger, smaller) ->
                  Certify.emit r rw ~ctx
                    (Certify.Size_ge { larger; smaller }))
                claims
        in
        (* The dominating block lifts above the [if]; the partner arm's
           block is renamed into it, so either branch taken executes
           exactly one allocation where it executed one before. *)
        let lift_pair ~(kept : pat_elem * P.t * bool)
            ~(partner : pat_elem * P.t * bool) =
          let kpe, ksz, karm = kept and ppe, psz, parm = partner in
          lifted := stm [ kpe ] (EAlloc ksz) :: !lifted;
          dropped := SS.add kpe.pv (SS.add ppe.pv !dropped);
          renames := (ppe.pv, kpe.pv, parm) :: !renames;
          st.hoisted <- st.hoisted + 1;
          st.size_proofs <- st.size_proofs + 1;
          cert_lift kpe karm [ (ksz, psz) ];
          cert_lift ppe parm [];
          trace opts "reuse: hoisted alloc %s above if %s (absorbing %s)"
            kpe.pv if_binding ppe.pv
        in
        let lift_single (pe : pat_elem) sz arm =
          lifted := stm [ pe ] (EAlloc sz) :: !lifted;
          dropped := SS.add pe.pv !dropped;
          st.hoisted <- st.hoisted + 1;
          cert_lift pe arm [ (sz, P.zero) ];
          trace opts "reuse: hoisted alloc %s out of an arm of if %s" pe.pv
            if_binding
        in
        (* Unpaired candidates allocate on both paths where before they
           allocated on one, so they only pay off under a loop. *)
        let single pe sz arm = if in_loop then lift_single pe sz arm in
        let rec pair ts fs =
          match (ts, fs) with
          | (tpe, tsz) :: ts', (fpe, fsz) :: fs' ->
              if Pr.prove_ge ctx tsz fsz then
                lift_pair ~kept:(tpe, tsz, true) ~partner:(fpe, fsz, false)
              else if Pr.prove_ge ctx fsz tsz then
                lift_pair ~kept:(fpe, fsz, false) ~partner:(tpe, tsz, true)
              else begin
                single tpe tsz true;
                single fpe fsz false
              end;
              pair ts' fs'
          | ts', [] -> List.iter (fun (pe, sz) -> single pe sz true) ts'
          | [], fs' -> List.iter (fun (pe, sz) -> single pe sz false) fs'
        in
        pair (arm_candidates tb) (arm_candidates fb);
        let prune (arm : block) =
          {
            arm with
            stms =
              List.filter
                (fun (bs : stm) ->
                  match (bs.pat, bs.exp) with
                  | [ pe ], EAlloc _ -> not (SS.mem pe.pv !dropped)
                  | _ -> true)
                arm.stms;
          }
        in
        let finish arm_flag blk =
          prune
            (List.fold_left
               (fun b (oldm, newm, f) ->
                 if f = arm_flag then rename_var_block oldm newm b else b)
               blk !renames)
        in
        List.rev !lifted
        @ [ { s with exp = EIf { i with tb = finish true tb; fb = finish false fb } } ]
    | _ -> [ s ]
  and go_block ~in_loop ctx scalars (b : block) : block =
    let scalars =
      List.fold_left
        (fun sc s ->
          match scalar_def s with
          | Some (v, pl) -> P.SM.add v pl sc
          | None -> sc)
        scalars b.stms
    in
    { b with stms = List.concat_map (go_stm ~in_loop ctx scalars) b.stms }
  in
  { p0 with body = go_block ~in_loop:false p0.ctx P.SM.empty p0.body }

(* ---------------------------------------------------------------- *)
(* Driver                                                            *)
(* ---------------------------------------------------------------- *)

(* One walk applies rotation (rewriting statement lists), then
   coalescing on the rewritten list, then recurses into sub-blocks
   with the extended prover context and scope maps. *)
let rec walk st opts cert ctx scalars allocs mems (b : block) : block =
  (* scope maps visible to this block and below *)
  let scalars =
    List.fold_left
      (fun sc s ->
        match scalar_def s with
        | Some (v, p) -> P.SM.add v p sc
        | None -> sc)
      scalars b.stms
  in
  let allocs =
    List.fold_left
      (fun al (s : stm) ->
        match (s.pat, s.exp) with
        | [ pe ], EAlloc sz when pe.pt = TMem -> SM.add pe.pv sz al
        | _ -> al)
      allocs b.stms
  in
  let note_mems mems (pes : pat_elem list) =
    List.fold_left
      (fun mems pe ->
        match pe.pmem with
        | Some mi -> SM.add pe.pv mi.block mems
        | None -> mems)
      mems pes
  in
  let mems =
    List.fold_left
      (fun mems s ->
        let mems = note_mems mems s.pat in
        match s.exp with
        | ELoop { params; _ } -> note_mems mems (List.map fst params)
        | _ -> mems)
      mems b.stms
  in
  (* rotation: rewrite the statement list back to front so [tail_refs]
     is exact for the statements following each candidate *)
  let b =
    if not opts.rotation then b
    else begin
      let tail = ref (res_refs mems b) in
      let stms' =
        List.fold_right
          (fun s acc ->
            let out =
              match
                try_rotate st opts cert ctx scalars ~alloc_sizes:allocs
                  ~tail_refs:!tail s
              with
              | Some ss -> ss
              | None -> [ s ]
            in
            List.iter
              (fun s' -> tail := SS.union !tail (block_refs mems s'))
              out;
            out @ acc)
          b.stms []
      in
      { b with stms = stms' }
    end
  in
  if opts.coalesce then coalesce_block st opts cert ctx scalars mems b;
  (* recurse, extending the context with iteration-space ranges *)
  let stms =
    List.map
      (fun s ->
        Chaos.probe "reuse";
        let exp =
          match s.exp with
          | EMap { nest; body } ->
              let ctx' =
                List.fold_left
                  (fun c (v, n) ->
                    Pr.add_range c v ~lo:P.zero
                      ~hi:(P.sub (resolve scalars n) P.one) ())
                  ctx nest
              in
              EMap
                { nest; body = walk st opts cert ctx' scalars allocs mems body }
          | ELoop ({ var; bound; body; params } as lp) ->
              let ctx' =
                Pr.add_range ctx var ~lo:P.zero
                  ~hi:(P.sub (resolve scalars bound) P.one) ()
              in
              let mems' = note_mems mems (List.map fst params) in
              ELoop
                {
                  lp with
                  body = walk st opts cert ctx' scalars allocs mems' body;
                }
          | EIf ({ tb; fb; _ } as i) ->
              EIf
                {
                  i with
                  tb = walk st opts cert ctx scalars allocs mems tb;
                  fb = walk st opts cert ctx scalars allocs mems fb;
                }
          | e -> e
        in
        { s with exp })
      b.stms
  in
  { b with stms }

let optimize ?(options = default_options) ?cert (p : prog) : prog * stats =
  let st = fresh_stats () in
  let p = if options.chains then remove_dead_chains st options cert p else p in
  let p = if options.cross_scope then hoist_allocs st options cert p else p in
  let mems0 =
    List.fold_left
      (fun m pe ->
        match pe.pmem with
        | Some mi -> SM.add pe.pv mi.block m
        | None -> m)
      SM.empty p.params
  in
  let body = walk st options cert p.ctx P.SM.empty SM.empty mems0 p.body in
  ({ p with body }, st)
