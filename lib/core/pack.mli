(** Offset-based block packing: the arena planner.

    Runs after reuse + cleanup as the pipeline's fourth variant
    ({!val:Pipeline.compile} exposes it as [pack]).  Whole-block
    coalescing ({!module:Reuse}) merges a later allocation into an
    earlier one only when one block can stand in for the other in its
    entirety; production memory planners go further and place many
    blocks at {e byte offsets inside one arena}, so simultaneously-live
    blocks co-reside in a single device allocation and short-lived
    blocks reuse address ranges at sub-block granularity.

    Per lexical block, the planner:

    - collects the [EAlloc]-bound blocks that survive reuse and are
      neither structurally load-bearing (no expression-position
      occurrence: {!val:Reuse.exp_vars_block}) nor escaping (home of an
      array among the block's results: {!val:Reuse.res_refs});
    - derives each block's live interval [\[first_ref, last_ref\]] from
      the same first-reference machinery as the coalescer (a block is
      live from the first statement binding an array into it to the
      last statement referencing it or any such array);
    - builds the {e interference graph}: two blocks interfere iff their
      live intervals overlap;
    - assigns each block an element offset in a fresh arena by
      {e first-fit}: candidate offsets are 0 and the end offsets of
      already-placed interfering members, and a candidate is admissible
      when the placement is provably address-disjoint
      ({!val:Symalg.Prover.prove_ge} on the resolved offset polynomials)
      from {e every} placed interfering member.  Non-interfering
      placements may overlap - that is the sub-block reuse.  Blocks the
      prover cannot place (or whose arena-extent comparison is
      undecidable) stay unpacked and are counted;
    - allocates one arena sized to the provably-largest member end,
      rebases every member annotation into it (block renamed, index
      function's memory-side LMAD offset shifted by the placement), and
      leaves the member [EAlloc]s orphaned for {!module:Cleanup}.

    Each arena emits a {!constructor:Certify.rewrite.Packing} rewrite
    with a {!constructor:Certify.claim.Fits_in_arena} obligation per
    placement and a {!constructor:Certify.claim.Packed_disjoint}
    obligation per interfering pair; {!module:Memlint}'s [reuse] rule
    independently re-checks the rebased footprints for offset-aware
    disjointness, and {!module:Memtrace} replays the shifted footprints
    against the executor's traces.

    The pass mutates its input program (annotations are mutable);
    {!val:Pipeline.compile} hands it a private clone. *)

type options = {
  verbose : bool;
  pack : bool;  (** plan arenas; [false] is the identity pass *)
}

val default_options : options
(** Packing enabled, quiet. *)

val disabled : options
(** Identity pass ([--no-pack]). *)

type stats = {
  mutable arenas : int;  (** arenas allocated *)
  mutable packed : int;  (** blocks placed into an arena *)
  mutable unpacked : int;
      (** surviving blocks left standalone (load-bearing, escaping,
          alone in their scope, or prover-undecidable placement) *)
  mutable offset_proofs : int;  (** prover obligations discharged *)
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

val is_arena : string -> bool
(** Is this block name an arena introduced by this pass?  (The
    executor's suballocation accounting keys on it.) *)

val optimize :
  ?options:options ->
  ?cert:Certify.recorder ->
  Ir.Ast.prog ->
  Ir.Ast.prog * stats
(** Plan arenas over the given (reuse-optimized) program.  Mutates
    (and returns) the program; re-run {!val:Lastuse.annotate} and
    {!val:Cleanup.run} afterwards to refresh liveness markers and
    collect the orphaned member allocations. *)
