(** Offset-based block packing: the whole-program arena planner.

    Runs after reuse + cleanup as the pipeline's fourth variant
    ({!val:Pipeline.compile} exposes it as [pack]).  Whole-block
    coalescing ({!module:Reuse}) merges a later allocation into an
    earlier one only when one block can stand in for the other in its
    entirety; production memory planners go further and place many
    blocks at {e byte offsets inside one arena}, so simultaneously-live
    blocks co-reside in a single device allocation and short-lived
    blocks reuse address ranges at sub-block granularity.

    The planner runs in two phases.  The {e whole-program} phase packs
    the program's top-level block from a single interference graph
    spanning scopes:

    - the top block's own surviving [EAlloc]s, with live intervals
      [\[first_ref, last_ref\]] from the coalescer's first-reference
      machinery ({!val:Reuse.block_refs} over the alias closure) - and,
      uniquely at the top level, members escaping into the {e program}
      result are packable too, with an open-ended interval (the arena
      outlives the body), which folds result allocations into the
      program arena;
    - {e promoted} members: allocations in nested scopes whose size is
      evaluable at the top level and whose alias closure never escapes
      any crossed block's result.  Crossing a kernel body multiplies
      the slot into a per-thread region (per-instance offset advanced
      by [size * linearized thread index], preserving per-thread
      isolation); crossing a sequential loop keeps one slot that every
      iteration's logically fresh instance re-occupies - a {e lifetime
      hole} in time.  A promoted member's interval collapses to its
      enclosing top-level statement.

    The second phase re-walks nested blocks (sequential loop bodies,
    conditional arms, kernel bodies) with the original per-block
    planner; members the first phase promoted have no annotations left
    and skip naturally, and failed promotions fall back to local
    packing unchanged.

    Placement runs under a configurable {!type:order}:

    - [Firstfit] assigns offsets in emission order: candidate offsets
      are 0 and the end offsets of already-placed interfering members,
      and a candidate is admissible when the placement is provably
      address-disjoint ({!val:Symalg.Prover.prove_ge} on the resolved
      offset polynomials) from {e every} placed interfering member;
    - [Colour] (the default) is interval-graph colouring: members are
      sorted by interval start with size-sorted tie-breaking before the
      same admissibility scan.  The colour plan is committed only when
      its arena extent is {e provably} no larger than first-fit's (and
      it places no fewer members); otherwise the pass falls back to the
      first-fit plan, so colour's extent never exceeds first-fit's by
      construction.

    Non-interfering placements may overlap - that is the sub-block
    reuse.  Blocks the prover cannot place (or whose arena-extent
    comparison is undecidable) stay unpacked and are counted.  One
    arena is allocated per packed block, sized to the provably-largest
    member end; every member annotation is rebased into it (block
    renamed, index function's memory-side LMAD offset shifted by the
    placement), and the member [EAlloc]s are left orphaned for
    {!module:Cleanup}.

    Each arena emits a {!constructor:Certify.rewrite.Packing} rewrite
    with a {!constructor:Certify.claim.Fits_in_arena} obligation per
    placement, a {!constructor:Certify.claim.Packed_disjoint}
    obligation per interfering pair, and a
    {!constructor:Certify.claim.Hole_disjoint} obligation per lifetime
    hole - one for every promoted member crossing a sequential loop
    ([iter = Some loop]) and one for every non-interfering pair whose
    offset ranges are not provably disjoint ([iter = None]).
    {!module:Memlint}'s [reuse] rule independently re-checks the
    rebased footprints for offset-aware disjointness (hole sharing is
    accepted only through its flow/liveness exemptions), and
    {!module:Memtrace} replays the shifted footprints against the
    executor's traces.

    The pass mutates its input program (annotations are mutable);
    {!val:Pipeline.compile} hands it a private clone. *)

type order =
  | Firstfit  (** place in emission order *)
  | Colour
      (** interval-graph colouring with size-sorted tie-breaking;
          falls back to first-fit unless provably no larger *)

type options = {
  verbose : bool;
  pack : bool;  (** plan arenas; [false] is the identity pass *)
  order : order;  (** placement order ([--pack-order]) *)
}

val default_options : options
(** Packing enabled, quiet, colour order. *)

val disabled : options
(** Identity pass ([--no-pack]). *)

type stats = {
  mutable arenas : int;  (** arenas allocated *)
  mutable packed : int;  (** blocks placed into an arena *)
  mutable unpacked : int;
      (** surviving blocks left standalone (load-bearing, escaping,
          alone in their scope, or prover-undecidable placement) *)
  mutable offset_proofs : int;  (** prover obligations discharged *)
  mutable holes : int;
      (** lifetime holes: offset ranges re-used across time
          (iteration holes of promoted members plus overlapping
          non-interfering pairs) *)
  mutable promoted : int;
      (** members lifted from nested scopes into the program arena *)
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

val is_arena : string -> bool
(** Is this block name an arena introduced by this pass?  (The
    executor's suballocation accounting keys on it.) *)

val optimize :
  ?options:options ->
  ?cert:Certify.recorder ->
  Ir.Ast.prog ->
  Ir.Ast.prog * stats
(** Plan arenas over the given (reuse-optimized) program.  Mutates
    (and returns) the program; re-run {!val:Lastuse.annotate} and
    {!val:Cleanup.run} afterwards to refresh liveness markers and
    collect the orphaned member allocations. *)
