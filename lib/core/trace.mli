(** Structured execution traces of the memory-aware GPU executor.

    A trace records, in program order, every memory-relevant action of
    one {!Gpu.Exec.run}: block allocations, kernel launches, copies
    (with their elision decision at short-circuit points), and the
    last-use markers of the static liveness annotation.  Each kernel
    event carries both its {e declared} footprint - the static LMAD
    annotations concretized at launch time - and its {e actual}
    footprint - the distinct offsets the threads touched (recorded
    exhaustively in [Full] mode).  The {!Memtrace} checker replays a
    trace and confirms the dynamic behaviour stays inside the static
    claims; this module only collects and renders.

    The collection API ([create], [alloc], [kernel_begin] …) is driven
    by the executor; ordinary clients consume finished traces through
    the {{!section-derived}derived summaries} and renderers. *)

type clmad = Lmads.Lmad.concrete
(** A fully concrete LMAD: integer offset plus (cardinal, stride)
    pairs.  See {!Lmads.Lmad.concretize}. *)

(** A declared region of one array inside one block.  [fregion = None]
    means the annotation mentioned per-thread variables with no single
    launch-time value, so the enumerable claim degrades to "anywhere in
    the block" (still bounded by the block size). *)
type footprint = { fvar : string; fbid : int; fregion : clmad list option }

(** One kernel launch: declared vs. actual footprints plus the modeled
    DRAM traffic the launch was charged.  [fresh] lists blocks
    allocated {e inside} the launch (thread-private scratch); accesses
    to those are not part of the static cross-thread story.  [writes]
    and [reads] map block ids to the sorted distinct offsets touched
    (empty when the trace is not {!exact}). *)
type kernel = {
  kid : int;
  klabel : string;
  kthreads : int;
  declared_writes : footprint list;
  declared_reads : footprint list;
  fresh : int list;
  writes : (int * int list) list;
  reads : (int * int list) list;
  read_bytes : float;
  write_bytes : float;
}

(** One logical copy: source/destination blocks, the logical shape
    moved, and the concrete index-function chains of both sides
    (head-side first, memory-side last).  [celided] records the
    executor's short-circuit decision: the copy cost nothing because
    source and destination were the same location. *)
type copy = {
  csrc : int;
  cdst : int;
  cshape : int list;
  csix : clmad list;
  cdix : clmad list;
  cbytes : float;
  celided : bool;
  cin_kernel : bool;
}

type event =
  | Alloc of { bid : int; name : string; elems : int; in_kernel : bool }
  | Kernel of kernel
  | Copy of copy
  | Last_use of { var : string; bid : int }
      (** The statement binding the marker was the statically computed
          last use of [var] (which lives in block [bid]). *)

type t

val program : t -> string
val variant : t -> string

val exact : t -> bool
(** [true] when the executor ran in [Full] mode and per-kernel offset
    sets are exhaustive; sampled (cost-only) traces keep the event
    structure but have empty offset sets. *)

val events : t -> event list
(** All events, in program order. *)

(** {2 Collection (driven by the executor)} *)

val create : program:string -> variant:string -> exact:bool -> unit -> t
val alloc : t -> bid:int -> name:string -> elems:int -> in_kernel:bool -> unit
val last_use : t -> var:string -> bid:int -> unit

val kernel_begin :
  t ->
  label:string ->
  threads:int ->
  declared_writes:footprint list ->
  declared_reads:footprint list ->
  unit

val kernel_read : t -> bid:int -> off:int -> unit
val kernel_write : t -> bid:int -> off:int -> unit

val kernel_end : t -> read_bytes:float -> write_bytes:float -> unit
(** Finalize the kernel opened by [kernel_begin] into a {!Kernel}
    event, with the DRAM traffic the cost model charged the launch. *)

val copy :
  t ->
  src:int ->
  dst:int ->
  shape:int list ->
  six:clmad list ->
  dix:clmad list ->
  bytes:float ->
  elided:bool ->
  in_kernel:bool ->
  unit

val mute : t -> unit
(** Stop recording: result readback at the end of a run is not part of
    the measured execution. *)

(** {2 Replay helpers} *)

val apply : clmad list -> int list -> int
(** Apply a concrete index-function chain to a logical index - the
    executor's addressing, replicated so checkers can re-enumerate
    footprints without executing anything. *)

val image : clmad list -> int list -> int list
(** The distinct flat offsets [apply] produces over every logical
    index of the given shape, sorted. *)

(** {2:derived Derived summaries} *)

val block_names : t -> (int * string) list
val kernels : t -> kernel list
val copies : t -> copy list

val histogram : t -> (string * int * float * float) list
(** Per-kernel traffic histogram, grouped by the launch label's base
    name: [(label, launches, read bytes, write bytes)], heaviest
    first. *)

type traffic = {
  t_kernel_reads : float;
  t_kernel_writes : float;
  t_copy_bytes : float;
  t_elided_bytes : float;
}

val traffic : t -> traffic
(** Total measured traffic of the trace (elided bytes are the copies
    short-circuiting made free). *)

(** {2 Rendering} *)

val pp_footprint : Format.formatter -> footprint -> unit
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** The whole trace as a single JSON object: provenance, traffic
    totals, the per-kernel histogram, and the event list. *)

(** {2 Skeletons}

    The memory optimizations relocate and elide storage; they must not
    change what the program computes.  The {e skeleton} of a trace is
    its sequence of logical actions - kernel launches (base label,
    thread count) and logical copies (shape) - with everything the
    optimizer may legitimately change stripped out: block identities,
    copy elision flags, allocations, and liveness markers.  Two
    variants of one program must produce identical skeletons; [repro
    trace --diff] checks exactly this. *)

type skeleton_event =
  | SKernel of { slabel : string; sthreads : int }
  | SCopy of { sshape : int list }

val skeleton : t -> skeleton_event list
val pp_skeleton_event : Format.formatter -> skeleton_event -> unit

val diff : ?limit:int -> t -> t -> string list
(** Rendered skeleton divergences between two traces of the same
    program (at most [limit], default 10); [[]] means the variants
    agree on the logical event sequence. *)
