(** Memory-block reuse: coalesce allocations whose live ranges do not
    interfere.

    Runs after short-circuiting + cleanup as the pipeline's third
    variant ({!val:Pipeline.compile} exposes it as [reuse]).  Four
    strategies:

    - {e dead existential chains} - [mem, array] loop groups whose
      memory component no annotation references (every array was
      rebased into an enclosing block by short-circuiting) are removed
      group-wise, orphaning their [EAlloc] for {!module:Cleanup};
    - {e double-buffer rotation} - a loop allocating a fresh block per
      iteration and carrying it forward is rewritten to rotate two
      physical buffers (one hoisted spare), dropping the per-iteration
      allocation and collapsing peak footprint from [trip * size] to
      [2 * size];
    - {e same-scope coalescing} - within a lexical block, a later
      allocation rebinds into an earlier one that is provably dead
      (live ranges ordered by statement index) and provably large
      enough ({!val:Symalg.Prover.prove_ge} on the sizes, or
      per-annotation {!val:Lmads.Lmad.bounds} footprint fitting);
    - {e cross-scope hoisting} - a per-iteration temporary of a
      sequential loop whose contents provably die within the iteration
      (no expression-position occurrence, no array of the block in the
      body's results) is allocated once in front of the loop instead,
      with a loop-variable-dependent size generalized to its iteration
      maximum by a prover obligation; hoisted blocks of sibling loops
      then coalesce under the same-scope rule.  The same strategy
      hoists through [if] arms: an allocation local to an arm (dead by
      the arm's end, size computable above the conditional) lifts in
      front of the [if] - when both arms hold one, the prover picks
      the dominating size and the other arm's block is renamed into
      the lifted block; an unpaired arm-local allocation lifts only
      inside a sequential loop body, where the loop-level hoist
      amortizes it.  Each such lift emits an
      {!constructor:Certify.rewrite.If_hoist} rewrite with
      {!constructor:Certify.claim.Dies_in_arm} and branch-wise
      {!constructor:Certify.claim.Size_ge} obligations.

    Liveness comes from the same reference/alias machinery as the
    last-use analysis: a block is live from its allocation to the last
    statement whose free variables include it or any array annotated
    into it.  {!module:Memlint}'s [reuse] rule independently rejects
    coalescings whose live ranges overlap; {!module:Memtrace} replays
    traced executions of the reused program.

    The pass mutates its input program (annotations are mutable);
    {!val:Pipeline.compile} hands it a private clone. *)

type options = {
  verbose : bool;
  coalesce : bool;  (** same-scope coalescing *)
  chains : bool;  (** dead existential chain removal *)
  rotation : bool;  (** double-buffer rotation *)
  cross_scope : bool;
      (** alloc hoisting out of loop bodies and through [if] arms *)
}

val default_options : options
(** All strategies enabled, quiet. *)

val disabled : options
(** Identity pass ([--no-reuse]). *)

type stats = {
  mutable candidates : int;  (** (earlier, later) alloc pairs examined *)
  mutable coalesced : int;
  mutable size_proofs : int;  (** prover obligations discharged *)
  mutable chain_links : int;  (** dead existential mem positions removed *)
  mutable rotated : int;  (** loops rewritten to double-buffering *)
  mutable hoisted : int;
      (** allocations lifted out of loop bodies or [if] arms *)
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {1 Liveness and scope helpers}

    The reference/scope machinery the coalescer's live intervals are
    built from, exported for {!module:Pack}: the packing pass derives
    its interference graph from the very same first-reference
    intervals, so the two passes cannot disagree about liveness. *)

val resolve : Symalg.Poly.t Symalg.Poly.SM.t -> Symalg.Poly.t -> Symalg.Poly.t
(** Resolve i64 scalar definitions down to parameters / loop variables
    (fixpoint substitution; identity when the table cycles). *)

val memory_lmad : Lmads.Ixfn.t -> Lmads.Lmad.t
(** The LMAD adjacent to memory: the last link of the chain (same
    convention as {!module:Memlint}). *)

val scalar_def : Ir.Ast.stm -> (string * Symalg.Poly.t) option
(** The i64 scalar definition a statement contributes to the
    resolution table, if any. *)

val exp_vars_block : Ir.Ast.block -> Ir.Ast.SS.t -> Ir.Ast.SS.t
(** Variables occurring in {e expression} position anywhere in a
    subtree - everything except memory annotations and index
    polynomials.  A block name with such an occurrence is structurally
    load-bearing and never coalesced or packed. *)

val block_refs : string Map.Make(String).t -> Ir.Ast.stm -> Ir.Ast.SS.t
(** Free variables of a statement plus the annotation blocks of the
    arrays among them (the map takes array variables to their block). *)

val res_refs : string Map.Make(String).t -> Ir.Ast.block -> Ir.Ast.SS.t
(** Names a block's result atoms reference, plus their blocks. *)

val optimize :
  ?options:options ->
  ?cert:Certify.recorder ->
  Ir.Ast.prog ->
  Ir.Ast.prog * stats
(** Apply the reuse strategies.  Mutates (and returns) the given
    program; re-run {!val:Lastuse.annotate} and {!val:Cleanup.run}
    afterwards to refresh liveness markers and collect orphaned
    allocations.

    With [cert], every applied rewrite emits its proof obligations for
    independent re-validation by {!val:Certify.check}: the dead-chain
    names, the rotation's trip-count/size proofs and
    initializer-liveness claim, each coalescing's live-range disjointness
    (with the moved annotations) and size-domination proof under the
    prover context it was discharged in, each loop-hoisted allocation's
    dies-within-iteration claim, and each [if]-arm hoist's arm-local
    death and branch-wise size-domination claims. *)
