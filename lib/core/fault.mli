(** Structured fault taxonomy for the fail-safe pipeline.

    The optimizations of the paper are only safe to deploy when an
    optimization that cannot be justified is {e skipped}, never
    {e shipped}: a pass that crashes, a lint report that errors, a
    certificate the independent checker refutes, or an executor that
    runs out of device memory must degrade the run to a
    less-optimized-but-correct variant instead of aborting it.  This
    module is the shared vocabulary of that policy: one variant per
    failure class, each carrying enough payload to {e blame} the layer
    that failed, raised as {!exception-Fault} at the failure site and
    contained by {!Pipeline.compile}[ ~fail_safe:true] or the
    executor's own degradation path (see docs/ROBUSTNESS.md). *)

type t =
  | Prover_budget of { exhausted : int }
      (** The symbolic prover hit its step/deadline budget [exhausted]
          times during a compile: the affected obligations came back
          undecided and their rewrites were skipped - a performance
          fault, never a correctness one. *)
  | Pass_crash of { pass : string; exn : string }
      (** An optimization pass raised an unexpected exception
          (printed in [exn]); its output is untrusted and discarded. *)
  | Lint_reject of { pass : string; violation : string }
      (** The memory linter found a violation in [pass]'s output. *)
  | Cert_refuted of { pass : string; obligation : string }
      (** The independent certificate checker refuted one of [pass]'s
          proof obligations. *)
  | Device_oom of { bytes : float; at_alloc : int }
      (** The simulated device refused allocation number [at_alloc]
          of [bytes] bytes. *)
  | Pool_cap of { bytes : float; cap : float }
      (** A strict-capped pool could not serve [bytes] of live memory
          under its [cap] even after evicting every cached block. *)
  | Internal of { where : string; detail : string }
      (** A broken invariant inside [where] - the replacement for the
          bare [assert false]/[failwith] sites this taxonomy retired. *)

exception Fault of t

val fail : t -> 'a
(** [fail f] raises [Fault f]. *)

val internal : where:string -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [internal ~where fmt ...] raises an {!Internal} fault; drop-in
    replacement for [failwith]/[assert false] at invariant sites. *)

val blame : t -> string
(** The blamed layer or pass: the pass name for pass-attributed
    faults, ["prover"], ["device"], ["pool"], or the [where] of an
    internal fault. *)

val layer : t -> string
(** The taxonomy class as a stable lowercase tag:
    ["prover-budget" | "pass-crash" | "lint-reject" | "cert-refuted" |
     "device-oom" | "pool-cap" | "internal"]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val json : t -> string
(** A self-contained JSON object
    [{"class":..., "blame":..., "detail":...}] for recovery reports
    and the chaos campaign summary. *)
