(* The seeded fault-injection campaign behind [repro chaos].

   Each round draws injection sites from a seeded PRNG and subjects
   every benchmark to the five fault classes of the taxonomy
   (Core.Fault): prover-budget exhaustion, a pass exception at
   statement k, a forged certificate, a device OOM at allocation k,
   and strict pool-cap pressure.  Every injection then executes the
   surviving pack variant in Full mode and compares the results
   bit-for-bit against the reference interpreter - the fail-safe
   ladder may degrade the program, but it must never change what it
   computes. *)

module Pipeline = Core.Pipeline
module Chaos = Core.Chaos
module Fault = Core.Fault
module Exec = Gpu.Exec
module Device = Gpu.Device
module Prover = Symalg.Prover

type injection = {
  i_class : string;
  i_pass : string;
  i_site : int;
  i_fired : bool;
  i_recovered : bool;
  i_fallback : string;
  i_bit_equal : bool;
  i_crashed : bool;
  i_detail : string;
}

let inj_ok i =
  (not i.i_crashed) && i.i_bit_equal && ((not i.i_fired) || i.i_recovered)

type bench_campaign = { c_bench : string; c_injections : injection list }
type campaign = { seed : int; rounds : int; benches : bench_campaign list }

(* Value.t carries no functional or cyclic data, so structural
   equality is exactly bit-equality of the computed results. *)
let bit_equal got expect =
  try List.for_all2 (fun a b -> a = b) got expect
  with Invalid_argument _ -> false

(* The passes that carry chaos probes and certificates. *)
let passes = [ "shortcircuit"; "reuse"; "pack" ]

let find_recovery cls pass (c : Pipeline.compiled) =
  List.find_opt
    (fun (r : Pipeline.recovery) ->
      Fault.layer r.Pipeline.r_fault = cls
      && (pass = "" || r.Pipeline.r_pass = pass))
    c.Pipeline.recovery

(* Fail-safe compile + Full-mode execution of the pack variant (the
   most degraded rung still standing), checked against the reference
   results. *)
let compile_and_check ?(certify = false) prog args expect =
  let c = Pipeline.compile ~certify ~fail_safe:true prog in
  let r = Exec.run ~mode:Exec.Full c.Pipeline.pack args in
  (c, bit_equal r.Exec.results expect)

(* Invariant 1 (no crash) is checked here: any exception escaping an
   injection run is itself the violation, recorded rather than
   propagated so the campaign always completes. *)
let guarded ~cls ~pass ~site f =
  match f () with
  | i -> i
  | exception e ->
      {
        i_class = cls;
        i_pass = pass;
        i_site = site;
        i_fired = true;
        i_recovered = false;
        i_fallback = "";
        i_bit_equal = false;
        i_crashed = true;
        i_detail = Printexc.to_string e;
      }

let inject_budget ~steps prog args expect =
  guarded ~cls:"prover-budget" ~pass:"prover" ~site:steps (fun () ->
      let saved = Prover.get_budget () in
      Fun.protect
        ~finally:(fun () -> Prover.set_budget saved)
        (fun () ->
          Prover.set_budget { Prover.unlimited with Prover.b_steps = steps };
          let c, eq = compile_and_check prog args expect in
          let fired = c.Pipeline.prover_exhausted > 0 in
          let rcv = find_recovery "prover-budget" "" c in
          {
            i_class = "prover-budget";
            i_pass = "prover";
            i_site = steps;
            i_fired = fired;
            i_recovered = (not fired) || rcv <> None;
            i_fallback =
              (match rcv with
              | Some r -> r.Pipeline.r_fallback
              | None -> "");
            i_bit_equal = eq;
            i_crashed = false;
            i_detail =
              Printf.sprintf "b_steps=%d exhausted=%d" steps
                c.Pipeline.prover_exhausted;
          }))

let inject_crash rng pass count prog args expect =
  (* The site is drawn within the probe count observed on the clean
     compile, so the injection always fires when the pass visits any
     statements at all. *)
  let site = 1 + Random.State.int rng (max 1 count) in
  guarded ~cls:"pass-crash" ~pass ~site (fun () ->
      Chaos.arm_crash ~pass ~at:site;
      Fun.protect ~finally:Chaos.disarm (fun () ->
          let c, eq = compile_and_check prog args expect in
          let fired = site <= count in
          let rcv = find_recovery "pass-crash" pass c in
          {
            i_class = "pass-crash";
            i_pass = pass;
            i_site = site;
            i_fired = fired;
            i_recovered = (not fired) || rcv <> None;
            i_fallback =
              (match rcv with
              | Some r -> r.Pipeline.r_fallback
              | None -> "");
            i_bit_equal = eq;
            i_crashed = false;
            i_detail = Printf.sprintf "statement %d of %d" site count;
          }))

let inject_forge pass prog args expect =
  guarded ~cls:"cert-refuted" ~pass ~site:0 (fun () ->
      Chaos.arm_forge ~pass;
      Fun.protect ~finally:Chaos.disarm (fun () ->
          let c, eq = compile_and_check ~certify:true prog args expect in
          let rcv = find_recovery "cert-refuted" pass c in
          {
            i_class = "cert-refuted";
            i_pass = pass;
            i_site = 0;
            (* the forged obligation is always appended and always
               refutable, so the fault must always fire *)
            i_fired = true;
            i_recovered = rcv <> None;
            i_fallback =
              (match rcv with
              | Some r -> r.Pipeline.r_fallback
              | None -> "");
            i_bit_equal = eq;
            i_crashed = false;
            i_detail = "forged Size_ge 1 >= 2";
          }))

(* Executor-side injections run the clean compile's pack variant; a
   contained device fault lands in [report.faults] and execution
   degrades to unpooled ("unpooled" is the fallback rung). *)
let exec_fault_injection ~cls ~pass ~site ~detail run_f expect =
  guarded ~cls ~pass ~site (fun () ->
      let r : Exec.report = run_f () in
      let faults =
        List.filter (fun f -> Fault.layer f = cls) r.Exec.faults
      in
      let fired = faults <> [] in
      {
        i_class = cls;
        i_pass = pass;
        i_site = site;
        i_fired = fired;
        (* containment = the run named the fault *and* actually
           degraded: the pool must be gone from the report *)
        i_recovered = (not fired) || r.Exec.pool = None;
        i_fallback = (if fired then "unpooled" else "");
        i_bit_equal = bit_equal r.Exec.results expect;
        i_crashed = false;
        i_detail =
          (match faults with
          | f :: _ -> Fault.to_string f
          | [] -> detail ^ " (did not fire)");
      })

let inject_oom rng total target args expect =
  let site = 1 + Random.State.int rng (max 1 total) in
  exec_fault_injection ~cls:"device-oom" ~pass:"device" ~site
    ~detail:(Printf.sprintf "oom at alloc %d of %d" site total)
    (fun () -> Exec.run ~mode:Exec.Full ~oom_at:site target args)
    expect

let inject_cap rng high_water target args expect =
  let frac = 10 + Random.State.int rng 80 in
  let cap = max 8 (int_of_float (high_water *. float_of_int frac /. 100.)) in
  exec_fault_injection ~cls:"pool-cap" ~pass:"pool" ~site:cap
    ~detail:(Printf.sprintf "cap %d bytes (%d%% of high water)" cap frac)
    (fun () ->
      Exec.run ~mode:Exec.Full ~pool_cap:cap ~strict_cap:true target args)
    expect

let run_bench rng ~rounds name prog args =
  let expect = Ir.Interp.run prog args in
  (* Learn each pass's probe count on a clean fail-safe compile so the
     crash sites drawn below always land inside the pass. *)
  Chaos.arm_count ();
  let clean = Pipeline.compile ~fail_safe:true prog in
  let counts = List.map (fun p -> (p, Chaos.counted p)) passes in
  Chaos.disarm ();
  (* Executor-side injections need a variant that still allocates: the
     fully optimized one can be allocation-free (nw's pack variant
     eliminates every device allocation), so fall down the ladder to
     the most optimized variant with the allocations the injection
     targets.  OOM counts any allocation (scratch included); the
     pool-cap needs pooled, i.e. top-level, allocations. *)
  let variants =
    List.map
      (fun p ->
        let r = Exec.run ~mode:Exec.Full p args in
        let total =
          r.Exec.counters.Device.allocs
          + r.Exec.counters.Device.scratch_allocs
        in
        let hw =
          match r.Exec.pool with
          | Some s -> s.Device.Pool.p_high_water
          | None -> 0.
        in
        (p, total, r.Exec.counters.Device.allocs, hw))
      [
        clean.Pipeline.pack; clean.Pipeline.reuse; clean.Pipeline.opt;
        clean.Pipeline.unopt;
      ]
  in
  let pick want fallback =
    match List.find_opt want variants with
    | Some (p, total, allocs, hw) -> (p, total, allocs, hw)
    | None -> fallback
  in
  let oom_target, total_allocs, _, _ =
    pick (fun (_, total, _, _) -> total > 0) (clean.Pipeline.unopt, 0, 0, 0.)
  in
  let cap_target, _, _, high_water =
    pick
      (fun (_, _, allocs, hw) -> allocs > 0 && hw > 0.)
      (clean.Pipeline.unopt, 0, 0, 0.)
  in
  (* Explicit sequencing: the PRNG draws must happen in a fixed order
     for the campaign to be reproducible from its seed. *)
  let injections = ref [] in
  let push i = injections := i :: !injections in
  for round = 1 to rounds do
    (* round 1 pins the budget to 0 so exhaustion is guaranteed to
       fire on every benchmark; later rounds draw from the ladder *)
    let steps =
      if round = 1 then 0 else [| 0; 1; 4; 16 |].(Random.State.int rng 4)
    in
    push (inject_budget ~steps prog args expect);
    List.iter
      (fun (p, count) -> push (inject_crash rng p count prog args expect))
      counts;
    List.iter (fun p -> push (inject_forge p prog args expect)) passes;
    push (inject_oom rng total_allocs oom_target args expect);
    push (inject_cap rng high_water cap_target args expect)
  done;
  { c_bench = name; c_injections = List.rev !injections }

let run ~seed ~rounds targets =
  let rng = Random.State.make [| seed |] in
  let benches =
    List.map
      (fun (name, prog, args) -> run_bench rng ~rounds name prog args)
      targets
  in
  { seed; rounds; benches }

let violations c =
  List.concat_map
    (fun b ->
      List.filter_map
        (fun i -> if inj_ok i then None else Some (b.c_bench, i))
        b.c_injections)
    c.benches

let ok c = violations c = []

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let injection_json i =
  Printf.sprintf
    "{\"class\":\"%s\",\"pass\":\"%s\",\"site\":%d,\"fired\":%b,\
     \"recovered\":%b,\"fallback\":\"%s\",\"bit_equal\":%b,\
     \"crashed\":%b,\"ok\":%b,\"detail\":\"%s\"}"
    (json_escape i.i_class) (json_escape i.i_pass) i.i_site i.i_fired
    i.i_recovered
    (json_escape i.i_fallback)
    i.i_bit_equal i.i_crashed (inj_ok i) (json_escape i.i_detail)

let json c =
  let benches =
    String.concat ","
      (List.map
         (fun b ->
           Printf.sprintf "{\"name\":\"%s\",\"injections\":[%s]}"
             (json_escape b.c_bench)
             (String.concat "," (List.map injection_json b.c_injections)))
         c.benches)
  in
  let total =
    List.fold_left
      (fun n b -> n + List.length b.c_injections)
      0 c.benches
  in
  Printf.sprintf
    "{\"seed\":%d,\"rounds\":%d,\"injections\":%d,\"violations\":%d,\
     \"benches\":[%s]}\n"
    c.seed c.rounds total
    (List.length (violations c))
    benches

let report c =
  let b = Buffer.create 512 in
  let total = ref 0 in
  List.iter
    (fun bc ->
      let n = List.length bc.c_injections in
      total := !total + n;
      let bad = List.filter (fun i -> not (inj_ok i)) bc.c_injections in
      Buffer.add_string b
        (Printf.sprintf "  %-15s %3d injections, %3d ok\n" bc.c_bench n
           (n - List.length bad)))
    c.benches;
  let viols = violations c in
  List.iter
    (fun (bench, i) ->
      Buffer.add_string b
        (Printf.sprintf
           "  VIOLATION %s %s/%s@%d: %s%s%s (detail: %s)\n" bench i.i_class
           i.i_pass i.i_site
           (if i.i_crashed then "crashed" else "")
           (if not i.i_bit_equal then " results-diverged" else "")
           (if i.i_fired && not i.i_recovered then " unrecovered" else "")
           i.i_detail))
    viols;
  Printf.sprintf
    "chaos campaign: seed %d, %d round(s), %d bench(es), %d injections, \
     %d violation(s)\n%s"
    c.seed c.rounds
    (List.length c.benches)
    !total (List.length viols) (Buffer.contents b)
