(* Table construction and rendering for the experiment harness.

   Each benchmark reproduces one of the paper's Tables I-VII: rows are
   (device, dataset), columns are the reference implementation's
   simulated time, the unoptimized, short-circuited and memory-reused
   Futhark-style versions' performance *relative to the reference*
   (higher = faster, as in the paper), and the optimization impact
   (unoptimized time / optimized time).  The paper's published numbers
   ride along so every rendering shows measured-vs-paper side by
   side. *)

type row = {
  device : string;
  dataset : string;
  ref_ms : float; (* simulated reference time, milliseconds *)
  unopt_ms : float; (* raw modeled times, for the machine-readable dump *)
  opt_ms : float;
  reuse_ms : float;
  pack_ms : float;
  unopt_rel : float; (* ref_time / unopt_time *)
  opt_rel : float; (* ref_time / opt_time *)
  reuse_rel : float; (* ref_time / reuse_time *)
  pack_rel : float; (* ref_time / pack_time *)
  impact : float; (* unopt_time / opt_time (the paper's column) *)
  reuse_impact : float; (* unopt_time / reuse_time *)
  pack_impact : float; (* unopt_time / pack_time *)
  paper : (float * float * float * float) option;
      (* (ref ms, unopt x, opt x, impact) published in the paper *)
}

type t = {
  title : string; (* e.g. "Table I: NW performance" *)
  runs : int; (* the paper's repetition count, for the header *)
  rows : row list;
}

let make_row ~device ~dataset ~ref_time ~unopt_time ~opt_time ~reuse_time
    ~pack_time ~paper =
  {
    device;
    dataset;
    ref_ms = ref_time *. 1e3;
    unopt_ms = unopt_time *. 1e3;
    opt_ms = opt_time *. 1e3;
    reuse_ms = reuse_time *. 1e3;
    pack_ms = pack_time *. 1e3;
    unopt_rel = ref_time /. unopt_time;
    opt_rel = ref_time /. opt_time;
    reuse_rel = ref_time /. reuse_time;
    pack_rel = ref_time /. pack_time;
    impact = unopt_time /. opt_time;
    reuse_impact = unopt_time /. reuse_time;
    pack_impact = unopt_time /. pack_time;
    paper;
  }

let pp ppf (t : t) =
  Fmt.pf ppf "%s (%d runs)@." t.title t.runs;
  Fmt.pf ppf "%-6s %-9s | %10s %8s %8s %8s %8s %8s | %s@." "Device" "Dataset"
    "Ref." "Unopt." "Opt." "Reuse" "Pack" "Impact"
    "Paper (Ref/Unopt/Opt/Impact)";
  Fmt.pf ppf "%s@." (String.make 117 '-');
  List.iter
    (fun r ->
      let paper =
        match r.paper with
        | Some (rm, u, o, i) ->
            Printf.sprintf "%gms / %.2fx / %.2fx / %.2fx" rm u o i
        | None -> "-"
      in
      Fmt.pf ppf
        "%-6s %-9s | %8.2fms %7.2fx %7.2fx %7.2fx %7.2fx %7.2fx | %s@."
        r.device r.dataset r.ref_ms r.unopt_rel r.opt_rel r.reuse_rel
        r.pack_rel r.impact paper)
    t.rows

let to_string t = Fmt.str "%a" pp t

(* Shape checks used by the test-suite: the qualitative claims of the
   paper's evaluation that must survive the simulation substitution. *)
let impacts t = List.map (fun r -> r.impact) t.rows
let reuse_impacts t = List.map (fun r -> r.reuse_impact) t.rows
let pack_impacts t = List.map (fun r -> r.pack_impact) t.rows

let min_impact t = List.fold_left Float.min infinity (impacts t)
let max_impact t = List.fold_left Float.max neg_infinity (impacts t)
