(* Hotspot (Rodinia), Table III: repeated 5-point stencil on a thermal
   grid, with boundary rows handled separately (Fig. 10b).

   Each timestep computes the new temperature grid in three parts - the
   top boundary row, the interior rows, and the bottom boundary row
   (each part handling its own left/right corners with conditionals) -
   and concatenates them.  Without short-circuiting every part lives in
   its own allocation and the concat copies the whole grid; the pass
   constructs all three parts directly in the result's memory, making
   the concatenation a no-op (the paper's ~2x impact).

   Because the stencil reads the *previous* grid while writing the new
   one, the two live in different blocks (double buffering): the
   concat-operand circuits are trivially safe, which is why this
   benchmark sees the full impact while NW/LUD need the index
   analysis. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Ir.Build
module Value = Ir.Value

let ctx0 =
  Pr.add_range
    (Pr.add_range Pr.empty "n" ~lo:(P.const 4) ())
    "steps" ~lo:P.one ()

(* Physical coefficients of the Rodinia kernel (simplified constants). *)
let c_center = 0.6
let c_ns = 0.1
let c_ew = 0.1
let c_power = 0.1

(* One stencil cell at (absolute row expression, column variable), with
   clamped neighbours.  [row_kind] fixes how the vertical neighbours
   are formed for the three part kernels. *)
let cell cb ~temp ~power ~row ~col ~up_row ~down_row =
  let n = P.var "n" in
  let t = B.index cb temp [ row; col ] in
  let up = B.index cb temp [ up_row; col ] in
  let down = B.index cb temp [ down_row; col ] in
  let cz = B.cmp cb CEq (B.idx cb col) (Int 0) in
  let left =
    B.if_ cb "left" cz
      (fun ib -> [ B.index ib temp [ row; col ] ])
      (fun ib -> [ B.index ib temp [ row; P.sub col P.one ] ])
  in
  let cl = B.cmp cb CEq (B.idx cb col) (B.idx cb (P.sub n P.one)) in
  let right =
    B.if_ cb "right" cl
      (fun ib -> [ B.index ib temp [ row; col ] ])
      (fun ib -> [ B.index ib temp [ row; P.add col P.one ] ])
  in
  let p = B.index cb power [ row; col ] in
  let vsum = B.fadd cb up down in
  let hsum = B.fadd cb (Var (List.hd left)) (Var (List.hd right)) in
  let acc = B.fmul cb t (Float c_center) in
  let acc = B.fadd cb acc (B.fmul cb vsum (Float c_ns)) in
  let acc = B.fadd cb acc (B.fmul cb hsum (Float c_ew)) in
  B.fadd cb acc (B.fmul cb p (Float c_power))

let prog : prog =
  let n = P.var "n" in
  let grid = arr F64 [ n; n ] in
  B.prog "hotspot" ~ctx:ctx0
    ~params:
      [
        pat_elem "n" i64;
        pat_elem "steps" i64;
        pat_elem "temp0" grid;
        pat_elem "power" grid;
      ]
    ~ret:[ grid ]
    (fun bb ->
      let res =
        B.loop bb "time"
          [ ("temp", grid, Var "temp0") ]
          ~var:"t" ~bound:(P.var "steps")
          (fun lb ->
            let z1 = Ir.Names.fresh "z" and j1 = Ir.Names.fresh "j" in
            let top =
              B.mapnest lb "top"
                [ (z1, P.one); (j1, n) ]
                (fun cb ->
                  let col = P.var j1 in
                  [
                    cell cb ~temp:"temp" ~power:"power" ~row:P.zero ~col
                      ~up_row:P.zero ~down_row:P.one;
                  ])
            in
            let i2 = Ir.Names.fresh "i" and j2 = Ir.Names.fresh "j" in
            let mid =
              B.mapnest lb "mid"
                [ (i2, P.sub n (P.const 2)); (j2, n) ]
                (fun cb ->
                  let row = P.add (P.var i2) P.one and col = P.var j2 in
                  [
                    cell cb ~temp:"temp" ~power:"power" ~row ~col
                      ~up_row:(P.sub row P.one) ~down_row:(P.add row P.one);
                  ])
            in
            let z3 = Ir.Names.fresh "z" and j3 = Ir.Names.fresh "j" in
            let bot =
              B.mapnest lb "bot"
                [ (z3, P.one); (j3, n) ]
                (fun cb ->
                  let row = P.sub n P.one and col = P.var j3 in
                  [
                    cell cb ~temp:"temp" ~power:"power" ~row ~col
                      ~up_row:(P.sub row P.one) ~down_row:row;
                  ])
            in
            let next = B.bind lb "next" (EConcat [ top; mid; bot ]) in
            [ Var next ])
      in
      [ Var (List.hd res) ])

(* ---------------------------------------------------------------- *)
(* Inputs, oracle, reference                                         *)
(* ---------------------------------------------------------------- *)

let input_temp ~n =
  Array.init (n * n) (fun i -> 300.0 +. float_of_int (i mod 17))

let input_power ~n =
  Array.init (n * n) (fun i -> 0.1 +. (0.001 *. float_of_int (i mod 13)))

let direct ~n ~steps temp0 power =
  let cur = ref (Array.copy temp0) in
  for _ = 1 to steps do
    let nxt = Array.make (n * n) 0.0 in
    for r = 0 to n - 1 do
      for c = 0 to n - 1 do
        let at r c = !cur.((r * n) + c) in
        let t = at r c in
        let up = at (max 0 (r - 1)) c in
        let down = at (min (n - 1) (r + 1)) c in
        let left = at r (max 0 (c - 1)) in
        let right = at r (min (n - 1) (c + 1)) in
        nxt.((r * n) + c) <-
          (c_center *. t)
          +. (c_ns *. (up +. down))
          +. (c_ew *. (left +. right))
          +. (c_power *. power.((r * n) + c))
      done
    done;
    cur := nxt
  done;
  !cur

let steps_paper = 5

let args ~n ~steps ~shell =
  [
    Value.VInt n;
    Value.VInt steps;
    (if shell then Value.VArr (Value.shell F64 [ n; n ])
     else Value.VArr (Value.of_floats [ n; n ] (input_temp ~n)));
    (if shell then Value.VArr (Value.shell F64 [ n; n ])
     else Value.VArr (Value.of_floats [ n; n ] (input_power ~n)));
  ]

(* The hand-written Rodinia kernel: one fused kernel per step (pyramidal
   time tiling collapses to the same asymptotic traffic), reading each
   grid cell of temp and power once and writing the new grid, all in
   place of the double buffer - no copies. *)
let ref_counters ~n ~steps : Gpu.Device.counters =
  let c = Gpu.Device.fresh_counters () in
  let cells = float_of_int (n * n) *. float_of_int steps in
  c.Gpu.Device.kernels <- steps;
  c.Gpu.Device.kernel_reads <- cells *. 2. *. 8.;
  c.Gpu.Device.kernel_writes <- cells *. 8.;
  c.Gpu.Device.flops <- cells *. 10.;
  c.Gpu.Device.allocs <- 2;
  c

let paper =
  [
    ("A100", "8192", (9., 0.47, 0.84, 1.78));
    ("A100", "16384", (29., 0.46, 0.94, 2.04));
    ("A100", "32768", (117., 0.46, 0.94, 2.05));
    ("MI100", "8192", (8., 0.33, 0.64, 1.96));
    ("MI100", "16384", (34., 0.35, 0.68, 1.97));
    ("MI100", "32768", (142., 0.37, 0.73, 1.98));
  ]

let datasets () =
  List.map
    (fun size ->
      {
        Runner.label = string_of_int size;
        args = args ~n:size ~steps:steps_paper ~shell:true;
        ref_counters = Runner.Static (ref_counters ~n:size ~steps:steps_paper);
      })
    [ 8192; 16384; 32768 ]

let table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe () : Runner.outcome =
  Runner.run_table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe ~trace_args:(args ~n:16 ~steps:3 ~shell:false)
    ~title:"Table III: Hotspot performance" ~runs:10 ~prog
    ~datasets:(datasets ()) ~paper ()

let small_args ~n ~steps = args ~n ~steps ~shell:false

let small_direct ~n ~steps =
  direct ~n ~steps (input_temp ~n) (input_power ~n)
