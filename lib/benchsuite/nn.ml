(* k-Nearest Neighbors (Rodinia NN), Table VII.

   A batch of queries is matched against [nrec] records (lat/long
   pairs); the queries are processed in batches by a sequential loop
   whose body computes, in parallel, the nearest distance for each
   query of the batch, and writes the batch's results into the result
   vector in place - the paper's "loop with a reduction whose result is
   used in an in-place update".  Short-circuiting constructs each batch
   directly in the result vector, eliminating the per-iteration copy.

   The hand-written Rodinia comparison performs its reduction
   *sequentially* (the paper's explanation for Futhark's large margin):
   the reference model charges a dependent-chain scan over all records
   per batch on top of the same distance kernel. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Ir.Build
module Value = Ir.Value

let ctx0 =
  let ctx = Pr.add_range Pr.empty "nrec" ~lo:(P.const 1) () in
  let ctx = Pr.add_range ctx "nbatch" ~lo:(P.const 1) () in
  Pr.add_range ctx "bsz" ~lo:(P.const 1) ()

let prog : prog =
  let nrec = P.var "nrec" and nbatch = P.var "nbatch" and bsz = P.var "bsz" in
  let nq = P.mul nbatch bsz in
  B.prog "nn" ~ctx:ctx0
    ~params:
      [
        pat_elem "nrec" i64;
        pat_elem "nbatch" i64;
        pat_elem "bsz" i64;
        pat_elem "recs" (arr F64 [ nrec; P.const 2 ]);
        pat_elem "queries" (arr F64 [ nq; P.const 2 ]);
      ]
    ~ret:[ arr F64 [ nq ] ]
    (fun bb ->
      let res0 = B.bind bb "res0" (EScratch (F64, [ nq ])) in
      let out =
        B.loop bb "batches"
          [ ("res", arr F64 [ nq ], Var res0) ]
          ~var:"bi" ~bound:nbatch
          (fun lb ->
            let bi = P.var "bi" in
            let tv = Ir.Names.fresh "t" in
            let x =
              B.mapnest lb "batch"
                [ (tv, bsz) ]
                (fun tb ->
                  let qid = P.add (P.mul bi bsz) (P.var tv) in
                  let qx = B.index tb "queries" [ qid; P.zero ] in
                  let qy = B.index tb "queries" [ qid; P.one ] in
                  let best =
                    B.loop1 tb "scan" (TScalar F64) (Float infinity)
                      ~bound:nrec
                      (fun sb ~param:acc ~i:r ->
                        let rx = B.index sb "recs" [ r; P.zero ] in
                        let ry = B.index sb "recs" [ r; P.one ] in
                        let dx = B.fsub sb qx rx and dy = B.fsub sb qy ry in
                        let d =
                          B.fadd sb (B.fmul sb dx dx) (B.fmul sb dy dy)
                        in
                        B.fmin sb (Var acc) d)
                  in
                  [ Var best ])
            in
            let res' =
              B.bind lb "res'"
                (EUpdate
                   {
                     dst = "res";
                     slc =
                       STriplet
                         [ B.range (P.mul bi bsz) bsz ];
                     src = SrcArr x;
                   })
            in
            [ Var res' ])
      in
      [ Var (List.hd out) ])

(* ---------------------------------------------------------------- *)
(* Inputs, oracle, reference                                         *)
(* ---------------------------------------------------------------- *)

let record_coord i j =
  let h = ((i * 7919) + (j * 104729) + 17) mod 4096 in
  float_of_int h /. 41.0

let input_recs ~nrec =
  Array.init (nrec * 2) (fun i -> record_coord (i / 2) (i mod 2))

let input_queries ~nq =
  Array.init (nq * 2) (fun i -> record_coord ((i / 2) + 31337) (i mod 2))

let direct ~nrec ~nq recs queries =
  Array.init nq (fun q ->
      let qx = queries.(2 * q) and qy = queries.((2 * q) + 1) in
      let best = ref infinity in
      for r = 0 to nrec - 1 do
        let dx = qx -. recs.(2 * r) and dy = qy -. recs.((2 * r) + 1) in
        best := Float.min !best ((dx *. dx) +. (dy *. dy))
      done;
      !best)

let args ~nrec ~nbatch ~bsz ~shell =
  let nq = nbatch * bsz in
  [
    Value.VInt nrec;
    Value.VInt nbatch;
    Value.VInt bsz;
    (if shell then Value.VArr (Value.shell F64 [ nrec; 2 ])
     else Value.VArr (Value.of_floats [ nrec; 2 ] (input_recs ~nrec)));
    (if shell then Value.VArr (Value.shell F64 [ nq; 2 ])
     else Value.VArr (Value.of_floats [ nq; 2 ] (input_queries ~nq)));
  ]

(* Rodinia: the same distance evaluation, but the minimum is found by a
   *sequential* scan over the records (a dependent chain charged at one
   step per record per batch, at scalar-pipeline rather than GPU
   throughput). *)
let seq_step = 8.0e-8 (* seconds per record of the sequential reduction *)

let ref_counters ~nrec ~nbatch ~bsz : Gpu.Device.counters =
  let c = Gpu.Device.fresh_counters () in
  let pairs = float_of_int nrec *. float_of_int (nbatch * bsz) in
  c.Gpu.Device.kernels <- nbatch;
  c.Gpu.Device.kernel_reads <-
    float_of_int nbatch *. float_of_int nrec *. 2. *. 8.;
  c.Gpu.Device.kernel_writes <- float_of_int (nbatch * bsz) *. 8.;
  ignore nbatch;
  c.Gpu.Device.flops <-
    (pairs *. 7.) +. (float_of_int nrec *. seq_step *. 6.0e12);
  (* the sequential scan is modelled as extra (dependent) work costing
     seq_step per record, independent of batching (Rodinia scans its
     distance array once on the host side) *)
  c.Gpu.Device.allocs <- 1;
  c

let paper =
  [
    ("A100", "855280", (70., 9.82, 15.19, 1.55));
    ("A100", "8552800", (631., 76.48, 93.18, 1.22));
    ("A100", "85528000", (6194., 197.66, 208.02, 1.05));
    ("MI100", "855280", (70., 5.06, 6.78, 1.34));
    ("MI100", "8552800", (630., 39.11, 46.08, 1.18));
    ("MI100", "85528000", (6280., 115.72, 126.18, 1.09));
  ]

let nbatch_paper = 64
let bsz_paper = 32

let datasets () =
  List.map
    (fun nrec ->
      {
        Runner.label = string_of_int nrec;
        args = args ~nrec ~nbatch:nbatch_paper ~bsz:bsz_paper ~shell:true;
        ref_counters = Runner.Static (ref_counters ~nrec ~nbatch:nbatch_paper ~bsz:bsz_paper);
      })
    [ 855280; 8552800; 85528000 ]

let table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe () : Runner.outcome =
  Runner.run_table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe
    ~trace_args:(args ~nrec:100 ~nbatch:4 ~bsz:8 ~shell:false)
    ~title:"Table VII: NN performance" ~runs:100 ~prog
    ~datasets:(datasets ()) ~paper ()

let small_args ~nrec ~nbatch ~bsz = args ~nrec ~nbatch ~bsz ~shell:false

let small_direct ~nrec ~nq =
  direct ~nrec ~nq (input_recs ~nrec) (input_queries ~nq)
