(* Shared machinery for the benchmark suite: compiling a benchmark
   program once, executing the unoptimized and short-circuited variants
   in cost-only mode on every dataset, timing the counted events on
   each device profile, and assembling a paper-style table. *)

module Device = Gpu.Device
module Exec = Gpu.Exec
module Value = Ir.Value

type ref_model =
  | Static of Device.counters (* hand-modelled reference trace *)
  | From_opt of (Device.counters -> Device.counters)
      (* reference derived from the measured optimized trace (used when
         the hand-written code runs the same algorithm with a different
         register/tiling regime, e.g. LUD) *)

type dataset = {
  label : string;
  args : Ir.Value.t list; (* paper-scale arguments (cost-only mode) *)
  ref_counters : ref_model;
}

let devices = [ Device.a100; Device.mi100 ]

(* Paper numbers are keyed by (device, dataset label). *)
type paper_numbers = (string * string, float * float * float * float) Hashtbl.t

let paper_tbl rows : paper_numbers =
  let t = Hashtbl.create 16 in
  List.iter
    (fun (dev, ds, nums) -> Hashtbl.replace t (dev, ds) nums)
    rows;
  t

(* Measured-vs-modeled traffic: a Full-mode traced run counts every
   DRAM access the optimized program makes, while a cost-only run of
   the same program at the same (reduced) size *models* that traffic by
   sampling mapnest bodies and long loops.  Close agreement is what
   licenses the paper-scale cost-only numbers in the tables; the
   memtrace cross-check rides along so every table also confirms the
   dynamic footprints stayed inside the static annotations. *)
type traffic_cmp = {
  measured_rw : float; (* kernel read+write bytes, Full-mode trace *)
  modeled_rw : float; (* same, cost-only sampled run *)
  measured_copy : float;
  modeled_copy : float;
  check : Core.Memtrace.report; (* cross-check of the Full trace *)
}

(* The memory behaviour of one variant on one dataset: allocation
   count and volume (the footprint motivation of section I, realized
   by the dead-allocation cleanup and the reuse pass) plus the modeled
   peak of live device memory. *)
type footprint = {
  f_allocs : int; (* top-level allocations *)
  f_arena_allocs : int; (* packed arenas among [f_allocs] *)
  f_arena_bytes : float; (* executed arena extents, for the order gate *)
  f_scratch : int; (* in-kernel (thread-private) allocations *)
  f_alloc_bytes : float;
  f_peak_bytes : float;
  f_traffic_bytes : float;
      (* modeled DRAM traffic: kernel reads + writes + copies (the
         bench gate requires this monotone non-increasing across
         unopt -> opt -> reuse) *)
  f_pool_hits : int; (* allocations served from the pool's free lists *)
  f_pool_misses : int; (* allocations falling through to the device *)
  f_pool : Device.Pool.stats option;
      (* high-water/fragmentation summary; [None] when the run was made
         with the pool disabled *)
}

let footprint_of (r : Exec.report) : footprint =
  let c = r.Exec.counters in
  {
    f_allocs = c.Device.allocs;
    f_arena_allocs = c.Device.arena_allocs;
    f_arena_bytes = c.Device.arena_bytes;
    f_scratch = c.Device.scratch_allocs;
    f_alloc_bytes = c.Device.alloc_bytes +. c.Device.scratch_bytes;
    f_peak_bytes = c.Device.peak_bytes;
    f_traffic_bytes =
      c.Device.kernel_reads +. c.Device.kernel_writes +. c.Device.copy_bytes;
    f_pool_hits = c.Device.pool_hits;
    f_pool_misses = c.Device.pool_misses;
    f_pool = r.Exec.pool;
  }

type outcome = {
  table : Table.t;
  compiled : Core.Pipeline.compiled;
  footprints :
    (string * footprint * footprint * footprint * footprint) list;
      (* dataset label, unoptimized / optimized / reused / packed
         memory behaviour *)
  traffic : traffic_cmp option;
      (* present when the benchmark supplied reduced-size [trace_args] *)
}

let traffic_comparison (compiled : Core.Pipeline.compiled)
    (args : Ir.Value.t list) : traffic_cmp =
  let opt = compiled.Core.Pipeline.opt in
  let r_full = Exec.run ~mode:Exec.Full ~trace:true ~variant:"opt" opt args in
  let r_cost = Exec.run ~mode:Exec.Cost_only opt args in
  let t =
    match r_full.Exec.trace with Some t -> t | None -> assert false
  in
  let tr = Core.Trace.traffic t in
  {
    measured_rw =
      tr.Core.Trace.t_kernel_reads +. tr.Core.Trace.t_kernel_writes;
    modeled_rw =
      r_cost.Exec.counters.Device.kernel_reads
      +. r_cost.Exec.counters.Device.kernel_writes;
    measured_copy = tr.Core.Trace.t_copy_bytes;
    modeled_copy = r_cost.Exec.counters.Device.copy_bytes;
    check = Core.Memtrace.check t;
  }

let run_table ?options ?reuse ?pack ?(pool = true) ?pool_cap
    ?(fail_safe = true) ?trace_args ~title ~runs ~(prog : Ir.Ast.prog)
    ~(datasets : dataset list)
    ~(paper : (string * string * (float * float * float * float)) list) () :
    outcome =
  (* Every table run certifies: the checked per-pass certificates ride
     along in [compiled.certs] for the bench JSON record.  Table runs
     compile fail-safe by default: a crashing or refuted pass degrades
     the affected variant instead of aborting the table, with the
     contained faults reported in [compiled.recovery]. *)
  let compiled =
    Core.Pipeline.compile ?options ?reuse ?pack ~certify:true ~fail_safe prog
  in
  let paper = paper_tbl paper in
  (* counters are device-independent: execute once per dataset *)
  let measured =
    List.map
      (fun ds ->
        let r_unopt =
          Exec.run ~mode:Exec.Cost_only ~pool ?pool_cap
            compiled.Core.Pipeline.unopt ds.args
        in
        let r_opt =
          Exec.run ~mode:Exec.Cost_only ~pool ?pool_cap
            compiled.Core.Pipeline.opt ds.args
        in
        let r_reuse =
          Exec.run ~mode:Exec.Cost_only ~pool ?pool_cap
            compiled.Core.Pipeline.reuse ds.args
        in
        let r_pack =
          Exec.run ~mode:Exec.Cost_only ~pool ?pool_cap
            compiled.Core.Pipeline.pack ds.args
        in
        let ref_c =
          match ds.ref_counters with
          | Static c -> c
          | From_opt f -> f r_opt.Exec.counters
        in
        (ds, ref_c, r_unopt, r_opt, r_reuse, r_pack))
      datasets
  in
  let rows =
    List.concat_map
      (fun device ->
        List.map
          (fun (ds, ref_c, r_unopt, r_opt, r_reuse, r_pack) ->
            Table.make_row ~device:device.Device.name ~dataset:ds.label
              ~ref_time:(Device.time device ref_c)
              ~unopt_time:(Device.time device r_unopt.Exec.counters)
              ~opt_time:(Device.time device r_opt.Exec.counters)
              ~reuse_time:(Device.time device r_reuse.Exec.counters)
              ~pack_time:(Device.time device r_pack.Exec.counters)
              ~paper:(Hashtbl.find_opt paper (device.Device.name, ds.label)))
          measured)
      devices
  in
  let footprints =
    List.map
      (fun (ds, _, r_unopt, r_opt, r_reuse, r_pack) ->
        (ds.label, footprint_of r_unopt, footprint_of r_opt,
         footprint_of r_reuse, footprint_of r_pack))
      measured
  in
  let traffic = Option.map (traffic_comparison compiled) trace_args in
  { table = { Table.title; runs; rows }; compiled; footprints; traffic }

(* Traced execution of both pipeline variants at a reduced size, each
   cross-checked by Memtrace.  This is the dynamic complement of
   [validate]: validate confirms the optimized program computes the
   right *values*, trace_check confirms it touched the right
   *memory*. *)
type traced = { trace : Core.Trace.t; check : Core.Memtrace.report }

let trace_variant ~variant (p : Ir.Ast.prog) (args : Ir.Value.t list) : traced
    =
  let r = Exec.run ~mode:Exec.Full ~trace:true ~variant p args in
  let t = match r.Exec.trace with Some t -> t | None -> assert false in
  { trace = t; check = Core.Memtrace.check t }

let trace_check ?(compiled : Core.Pipeline.compiled option)
    (prog : Ir.Ast.prog) (args : Ir.Value.t list) : traced * traced =
  let compiled =
    match compiled with Some c -> c | None -> Core.Pipeline.compile prog
  in
  ( trace_variant ~variant:"unopt" compiled.Core.Pipeline.unopt args,
    trace_variant ~variant:"opt" compiled.Core.Pipeline.opt args )

(* All three pipeline variants traced and cross-checked. *)
let trace_check3 ?(compiled : Core.Pipeline.compiled option)
    (prog : Ir.Ast.prog) (args : Ir.Value.t list) : traced * traced * traced
    =
  let compiled =
    match compiled with Some c -> c | None -> Core.Pipeline.compile prog
  in
  ( trace_variant ~variant:"unopt" compiled.Core.Pipeline.unopt args,
    trace_variant ~variant:"opt" compiled.Core.Pipeline.opt args,
    trace_variant ~variant:"reuse" compiled.Core.Pipeline.reuse args )

(* All four pipeline variants (packing included) traced and
   cross-checked. *)
let trace_check4 ?(compiled : Core.Pipeline.compiled option)
    (prog : Ir.Ast.prog) (args : Ir.Value.t list) :
    traced * traced * traced * traced =
  let compiled =
    match compiled with Some c -> c | None -> Core.Pipeline.compile prog
  in
  ( trace_variant ~variant:"unopt" compiled.Core.Pipeline.unopt args,
    trace_variant ~variant:"opt" compiled.Core.Pipeline.opt args,
    trace_variant ~variant:"reuse" compiled.Core.Pipeline.reuse args,
    trace_variant ~variant:"pack" compiled.Core.Pipeline.pack args )

(* Full-mode validation at a reduced size: the unoptimized and the
   short-circuited programs must agree with the reference interpreter
   (and the optimized run must elide at least [min_elided] copies when
   requested). *)
type validation = {
  ok_unopt : bool;
  ok_opt : bool;
  ok_reuse : bool;
  ok_pack : bool;
  elided : int;
  copies_unopt : int;
  copies_opt : int;
  sc_succeeded : int;
}

let validate ?(compiled : Core.Pipeline.compiled option)
    (prog : Ir.Ast.prog) (args : Ir.Value.t list) : validation =
  let compiled =
    match compiled with Some c -> c | None -> Core.Pipeline.compile prog
  in
  let expect = Ir.Interp.run compiled.Core.Pipeline.source args in
  let r_unopt = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.unopt args in
  let r_opt = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.opt args in
  let r_reuse = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.reuse args in
  let r_pack = Exec.run ~mode:Exec.Full compiled.Core.Pipeline.pack args in
  {
    ok_unopt =
      List.for_all2 (Value.approx_equal ~eps:1e-6) expect
        r_unopt.Exec.results;
    ok_opt =
      List.for_all2 (Value.approx_equal ~eps:1e-6) expect r_opt.Exec.results;
    ok_reuse =
      List.for_all2 (Value.approx_equal ~eps:1e-6) expect
        r_reuse.Exec.results;
    ok_pack =
      List.for_all2 (Value.approx_equal ~eps:1e-6) expect
        r_pack.Exec.results;
    elided = r_opt.Exec.counters.Device.copies_elided;
    copies_unopt = r_unopt.Exec.counters.Device.copies;
    copies_opt = r_opt.Exec.counters.Device.copies;
    sc_succeeded = compiled.Core.Pipeline.stats.Core.Shortcircuit.succeeded;
  }
