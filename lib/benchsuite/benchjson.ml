(* Minimal JSON parsing and the bench-trajectory gate.

   The repo deliberately carries no JSON dependency (the emitters in
   bin/repro.ml and lib/core/trace.ml are hand-rolled prints), so the
   gate's reader side is hand-rolled too: a small recursive-descent
   parser covering exactly the JSON the suite emits - objects, arrays,
   strings with backslash escapes, numbers, booleans, null.

   The gate compares a freshly emitted BENCH.json against a committed
   baseline (bench/baseline.json):

   - per (benchmark, device, dataset) row, each modeled time
     (unopt/opt/reuse) may not exceed the baseline by more than the
     relative tolerance - times are simulated, so drift only comes
     from code changes, and the tolerance only absorbs intentional
     cost-model adjustments;
   - per (benchmark, dataset, variant) footprint, the allocation count,
     peak live bytes and modeled DRAM traffic must be monotone
     non-increasing - these are exact counters, so any increase is a
     regression by definition;
   - a capped pool's high-water mark must not exceed its cap (checked
     on the current record alone - the cap is a costed constraint);
   - a benchmark present in the baseline must stay present.

   Improvements beyond tolerance and new benchmarks are reported as
   notes (a prompt to refresh the baseline), never as failures. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- *)
(* Parser                                                            *)
(* ---------------------------------------------------------------- *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at offset %d" m !pos))) fmt
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail "expected %c" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'u' ->
              (* the suite never emits \u escapes; accept and drop *)
              advance ();
              for _ = 1 to 4 do
                if !pos < n then advance ()
              done;
              Buffer.add_char buf '?';
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Bad m -> Error m

(* ---------------------------------------------------------------- *)
(* Accessors                                                         *)
(* ---------------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let arr = function Arr l -> Some l | _ -> None
let num = function Num f -> Some f | _ -> None
let str = function Str s -> Some s | _ -> None

let num_at path v =
  let rec go v = function
    | [] -> num v
    | k :: rest -> Option.bind (member k v) (fun v -> go v rest)
  in
  go v path

(* ---------------------------------------------------------------- *)
(* The gate                                                          *)
(* ---------------------------------------------------------------- *)

type gate = {
  regressions : string list; (* hard failures: exit nonzero *)
  notes : string list; (* informational: improvements, new benchmarks *)
  checked : int; (* individual comparisons performed *)
}

let default_tolerance = 0.05

let benchmarks_of v =
  match Option.bind (member "benchmarks" v) arr with
  | Some l -> l
  | None -> []

let name_of b = Option.value ~default:"?" (Option.bind (member "name" b) str)

(* time fields per row, footprint fields per variant *)
let row_times = [ "unopt_ms"; "opt_ms"; "reuse_ms" ]
let fp_variants = [ "unopt"; "opt"; "reuse" ]
let fp_monotone = [ "allocs"; "peak_bytes"; "traffic_bytes" ]

let gate ?(tolerance = default_tolerance) ~(baseline : t) ~(current : t) () :
    gate =
  let regressions = ref [] in
  let notes = ref [] in
  let checked = ref 0 in
  let reg fmt = Printf.ksprintf (fun m -> regressions := m :: !regressions) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  let base_b = benchmarks_of baseline and cur_b = benchmarks_of current in
  let find name l = List.find_opt (fun b -> name_of b = name) l in
  List.iter
    (fun bb ->
      let bname = name_of bb in
      match find bname cur_b with
      | None -> reg "%s: benchmark present in baseline but missing from current run" bname
      | Some cb ->
          (* rows: modeled times within tolerance *)
          let rows v =
            Option.value ~default:[] (Option.bind (member "rows" v) arr)
          in
          let row_key r =
            ( Option.value ~default:"?" (Option.bind (member "device" r) str),
              Option.value ~default:"?" (Option.bind (member "dataset" r) str) )
          in
          List.iter
            (fun br ->
              let dev, ds = row_key br in
              match
                List.find_opt (fun cr -> row_key cr = (dev, ds)) (rows cb)
              with
              | None ->
                  reg "%s [%s/%s]: row missing from current run" bname dev ds
              | Some cr ->
                  List.iter
                    (fun field ->
                      match (num_at [ field ] br, num_at [ field ] cr) with
                      | Some b, Some c when b > 0. ->
                          incr checked;
                          let rel = (c -. b) /. b in
                          if rel > tolerance then
                            reg
                              "%s [%s/%s]: %s %.4g -> %.4g ms (%+.1f%%, \
                               tolerance %.1f%%)"
                              bname dev ds field b c (100. *. rel)
                              (100. *. tolerance)
                          else if rel < -.tolerance then
                            note
                              "%s [%s/%s]: %s improved %.4g -> %.4g ms \
                               (%+.1f%%) - consider refreshing the baseline"
                              bname dev ds field b c (100. *. rel)
                      | _ -> ())
                    row_times)
            (rows bb);
          (* footprints: allocs and peak monotone non-increasing *)
          let fps v =
            Option.value ~default:[] (Option.bind (member "footprints" v) arr)
          in
          let ds_of f =
            Option.value ~default:"?" (Option.bind (member "dataset" f) str)
          in
          List.iter
            (fun bf ->
              let ds = ds_of bf in
              match List.find_opt (fun cf -> ds_of cf = ds) (fps cb) with
              | None ->
                  reg "%s [%s]: footprint missing from current run" bname ds
              | Some cf ->
                  List.iter
                    (fun variant ->
                      List.iter
                        (fun field ->
                          match
                            ( num_at [ variant; field ] bf,
                              num_at [ variant; field ] cf )
                          with
                          | Some b, Some c ->
                              incr checked;
                              if c > b then
                                reg "%s [%s] %s: %s grew %g -> %g" bname ds
                                  variant field b c
                              else if c < b then
                                note
                                  "%s [%s] %s: %s shrank %g -> %g - consider \
                                   refreshing the baseline"
                                  bname ds variant field b c
                          | _ -> ())
                        fp_monotone;
                      (* a capped pool's high-water mark must respect
                         the cap: the cap is a costed constraint, not a
                         hint, so any breach is a hard failure of the
                         current record regardless of the baseline *)
                      match
                        ( num_at [ variant; "pool"; "high_water_bytes" ] cf,
                          num_at [ variant; "pool"; "cap" ] cf )
                      with
                      | Some hw, Some cap ->
                          incr checked;
                          if hw > cap then
                            reg
                              "%s [%s] %s: pool high-water %g exceeds cap %g"
                              bname ds variant hw cap
                      | _ -> ())
                    fp_variants)
            (fps bb))
    base_b;
  List.iter
    (fun cb ->
      let cname = name_of cb in
      if find cname base_b = None then
        note "%s: new benchmark not in baseline - refresh to start gating it"
          cname)
    cur_b;
  {
    regressions = List.rev !regressions;
    notes = List.rev !notes;
    checked = !checked;
  }

let report (g : gate) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "bench gate: %d comparisons, %d regression(s), %d note(s)\n"
       g.checked
       (List.length g.regressions)
       (List.length g.notes));
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf "REGRESSION %s\n" r))
    g.regressions;
  List.iter (fun m -> Buffer.add_string buf (Printf.sprintf "note %s\n" m)) g.notes;
  Buffer.contents buf

let ok (g : gate) = g.regressions = []
