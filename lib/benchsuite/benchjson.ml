(* Minimal JSON parsing and the bench-trajectory gate.

   The repo deliberately carries no JSON dependency (the emitters in
   bin/repro.ml and lib/core/trace.ml are hand-rolled prints), so the
   gate's reader side is hand-rolled too: a small recursive-descent
   parser covering exactly the JSON the suite emits - objects, arrays,
   strings with backslash escapes, numbers, booleans, null.

   The gate compares a freshly emitted BENCH.json against a committed
   baseline (bench/baseline.json):

   - per (benchmark, device, dataset) row, each modeled time
     (unopt/opt/reuse) may not exceed the baseline by more than the
     relative tolerance - times are simulated, so drift only comes
     from code changes, and the tolerance only absorbs intentional
     cost-model adjustments;
   - per (benchmark, dataset, variant) footprint, the allocation count,
     peak live bytes and modeled DRAM traffic must be monotone
     non-increasing - these are exact counters, so any increase is a
     regression by definition;
   - a capped pool's high-water mark must not exceed its cap (checked
     on the current record alone - the cap is a costed constraint);
   - a benchmark present in the baseline must stay present.

   Improvements beyond tolerance and new benchmarks are reported as
   notes (a prompt to refresh the baseline), never as failures. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------------------------------------------------------- *)
(* Parser                                                            *)
(* ---------------------------------------------------------------- *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at offset %d" m !pos))) fmt
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail "expected %c" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); go ()
          | Some 'u' ->
              (* the suite never emits \u escapes; accept and drop *)
              advance ();
              for _ = 1 to 4 do
                if !pos < n then advance ()
              done;
              Buffer.add_char buf '?';
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos < n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Bad m -> Error m

(* ---------------------------------------------------------------- *)
(* Accessors                                                         *)
(* ---------------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let arr = function Arr l -> Some l | _ -> None
let num = function Num f -> Some f | _ -> None
let str = function Str s -> Some s | _ -> None

let num_at path v =
  let rec go v = function
    | [] -> num v
    | k :: rest -> Option.bind (member k v) (fun v -> go v rest)
  in
  go v path

(* ---------------------------------------------------------------- *)
(* The gate                                                          *)
(* ---------------------------------------------------------------- *)

type gate = {
  regressions : string list; (* hard failures: exit nonzero *)
  notes : string list; (* informational: improvements, new benchmarks *)
  checked : int; (* individual comparisons performed *)
}

let default_tolerance = 0.05

let benchmarks_of v =
  match Option.bind (member "benchmarks" v) arr with
  | Some l -> l
  | None -> []

let name_of b = Option.value ~default:"?" (Option.bind (member "name" b) str)

(* time fields per row, footprint fields per variant *)
let row_times = [ "unopt_ms"; "opt_ms"; "reuse_ms"; "pack_ms" ]
let fp_variants = [ "unopt"; "opt"; "reuse"; "pack" ]
let fp_monotone = [ "allocs"; "peak_bytes"; "traffic_bytes" ]

(* packing-pass counters: arenas, packed placements and certified
   lifetime holes may only grow, unpacked (undecidable) placements may
   only shrink - the planner must not silently lose coverage *)
let pack_grow = [ "arenas"; "packed"; "holes" ]
let pack_shrink = [ "unpacked" ]

let gate ?(tolerance = default_tolerance) ~(baseline : t) ~(current : t) () :
    gate =
  let regressions = ref [] in
  let notes = ref [] in
  let checked = ref 0 in
  let reg fmt = Printf.ksprintf (fun m -> regressions := m :: !regressions) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  let base_b = benchmarks_of baseline and cur_b = benchmarks_of current in
  let find name l = List.find_opt (fun b -> name_of b = name) l in
  List.iter
    (fun bb ->
      let bname = name_of bb in
      match find bname cur_b with
      | None -> reg "%s: benchmark present in baseline but missing from current run" bname
      | Some cb ->
          (* rows: modeled times within tolerance *)
          let rows v =
            Option.value ~default:[] (Option.bind (member "rows" v) arr)
          in
          let row_key r =
            ( Option.value ~default:"?" (Option.bind (member "device" r) str),
              Option.value ~default:"?" (Option.bind (member "dataset" r) str) )
          in
          List.iter
            (fun br ->
              let dev, ds = row_key br in
              match
                List.find_opt (fun cr -> row_key cr = (dev, ds)) (rows cb)
              with
              | None ->
                  reg "%s [%s/%s]: row missing from current run" bname dev ds
              | Some cr ->
                  List.iter
                    (fun field ->
                      match (num_at [ field ] br, num_at [ field ] cr) with
                      | Some b, Some c when b > 0. ->
                          incr checked;
                          let rel = (c -. b) /. b in
                          if rel > tolerance then
                            reg
                              "%s [%s/%s]: %s %.4g -> %.4g ms (%+.1f%%, \
                               tolerance %.1f%%)"
                              bname dev ds field b c (100. *. rel)
                              (100. *. tolerance)
                          else if rel < -.tolerance then
                            note
                              "%s [%s/%s]: %s improved %.4g -> %.4g ms \
                               (%+.1f%%) - consider refreshing the baseline"
                              bname dev ds field b c (100. *. rel)
                      | _ -> ())
                    row_times)
            (rows bb);
          (* footprints: allocs and peak monotone non-increasing *)
          let fps v =
            Option.value ~default:[] (Option.bind (member "footprints" v) arr)
          in
          let ds_of f =
            Option.value ~default:"?" (Option.bind (member "dataset" f) str)
          in
          List.iter
            (fun bf ->
              let ds = ds_of bf in
              match List.find_opt (fun cf -> ds_of cf = ds) (fps cb) with
              | None ->
                  reg "%s [%s]: footprint missing from current run" bname ds
              | Some cf ->
                  List.iter
                    (fun variant ->
                      List.iter
                        (fun field ->
                          match
                            ( num_at [ variant; field ] bf,
                              num_at [ variant; field ] cf )
                          with
                          | Some b, Some c ->
                              incr checked;
                              if c > b then
                                reg "%s [%s] %s: %s grew %g -> %g" bname ds
                                  variant field b c
                              else if c < b then
                                note
                                  "%s [%s] %s: %s shrank %g -> %g - consider \
                                   refreshing the baseline"
                                  bname ds variant field b c
                          | _ -> ())
                        fp_monotone;
                      (* a capped pool's high-water mark must respect
                         the cap: the cap is a costed constraint, not a
                         hint, so any breach is a hard failure of the
                         current record regardless of the baseline *)
                      match
                        ( num_at [ variant; "pool"; "high_water_bytes" ] cf,
                          num_at [ variant; "pool"; "cap" ] cf )
                      with
                      | Some hw, Some cap ->
                          incr checked;
                          if hw > cap then
                            reg
                              "%s [%s] %s: pool high-water %g exceeds cap %g"
                              bname ds variant hw cap
                      | _ -> ())
                    fp_variants)
            (fps bb);
          (* packing coverage: the planner may not lose ground - fewer
             arenas or packed placements, or more undecidable ones,
             means previously provable offsets stopped proving *)
          List.iter
            (fun field ->
              match
                ( num_at [ "pack_stats"; field ] bb,
                  num_at [ "pack_stats"; field ] cb )
              with
              | Some b, Some c ->
                  incr checked;
                  if c < b then
                    reg "%s: pack_stats.%s dropped %g -> %g" bname field b c
                  else if c > b then
                    note
                      "%s: pack_stats.%s grew %g -> %g - consider refreshing \
                       the baseline"
                      bname field b c
              | _ -> ())
            pack_grow;
          List.iter
            (fun field ->
              match
                ( num_at [ "pack_stats"; field ] bb,
                  num_at [ "pack_stats"; field ] cb )
              with
              | Some b, Some c ->
                  incr checked;
                  if c > b then
                    reg "%s: pack_stats.%s grew %g -> %g" bname field b c
                  else if c < b then
                    note
                      "%s: pack_stats.%s shrank %g -> %g - consider \
                       refreshing the baseline"
                      bname field b c
              | _ -> ())
            pack_shrink)
    base_b;
  List.iter
    (fun cb ->
      let cname = name_of cb in
      if find cname base_b = None then
        note "%s: new benchmark not in baseline - refresh to start gating it"
          cname)
    cur_b;
  {
    regressions = List.rev !regressions;
    notes = List.rev !notes;
    checked = !checked;
  }

(* ---------------------------------------------------------------- *)
(* The pack-order gate                                                *)
(* ---------------------------------------------------------------- *)

(* Compares the colour-placement bench record against a first-fit run
   of the same tree (the --pack-order A/B).  The planner falls back to
   first-fit whenever colouring's extent is not provably smaller, so
   colour must never lose ground on any executor-derived surface: the
   executed arena extent ([pack.arena_bytes], per dataset) may not
   exceed first-fit's, and the planner's coverage (arenas, packed
   placements, certified holes) may not shrink.  Any breach is a hard
   failure - there is no tolerance, both records come from the same
   commit. *)
let pack_order_gate ~(firstfit : t) ~(colour : t) () : gate =
  let regressions = ref [] in
  let notes = ref [] in
  let checked = ref 0 in
  let reg fmt = Printf.ksprintf (fun m -> regressions := m :: !regressions) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  let ff_b = benchmarks_of firstfit and c_b = benchmarks_of colour in
  let find name l = List.find_opt (fun b -> name_of b = name) l in
  List.iter
    (fun fb ->
      let bname = name_of fb in
      match find bname c_b with
      | None -> reg "%s: benchmark missing from the colour run" bname
      | Some cb ->
          let fps v =
            Option.value ~default:[] (Option.bind (member "footprints" v) arr)
          in
          let ds_of f =
            Option.value ~default:"?" (Option.bind (member "dataset" f) str)
          in
          List.iter
            (fun ff ->
              let ds = ds_of ff in
              match List.find_opt (fun cf -> ds_of cf = ds) (fps cb) with
              | None ->
                  reg "%s [%s]: footprint missing from the colour run" bname ds
              | Some cf -> (
                  match
                    ( num_at [ "pack"; "arena_bytes" ] ff,
                      num_at [ "pack"; "arena_bytes" ] cf )
                  with
                  | Some f, Some c ->
                      incr checked;
                      if c > f then
                        reg
                          "%s [%s]: colour arena extent %g B exceeds \
                           first-fit's %g B"
                          bname ds c f
                      else if c < f then
                        note "%s [%s]: colour arena extent %g B < first-fit \
                              %g B" bname ds c f
                  | _ -> ()))
            (fps fb);
          List.iter
            (fun field ->
              match
                ( num_at [ "pack_stats"; field ] fb,
                  num_at [ "pack_stats"; field ] cb )
              with
              | Some f, Some c ->
                  incr checked;
                  if c < f then
                    reg "%s: colour pack_stats.%s %g below first-fit's %g"
                      bname field c f
                  else if c > f then
                    note "%s: colour pack_stats.%s %g above first-fit's %g"
                      bname field c f
              | _ -> ())
            pack_grow)
    ff_b;
  {
    regressions = List.rev !regressions;
    notes = List.rev !notes;
    checked = !checked;
  }

(* ---------------------------------------------------------------- *)
(* The certificate gate                                               *)
(* ---------------------------------------------------------------- *)

(* Compares a freshly emitted combined certificate document ([repro
   certify all --json]) against a committed baseline
   (bench/certs-baseline.json).  Certificates are exact - every
   obligation either re-proves or it does not - so there is no
   tolerance: any lost ground is a regression.

   Per (benchmark, pass, obligation id):

   - a benchmark, pass, or obligation present in the baseline must
     stay present;
   - an obligation's verdict may not weaken (proved > concretized >
     failed);
   - a pass's emitted and proved counts may not decrease (the passes
     must keep justifying at least as many rewrites as before);
   - any failed obligation in the current run is a regression
     outright, baseline or not.

   Strengthened verdicts, new obligations, new passes and new
   benchmarks are notes - a prompt to refresh the baseline. *)

let verdict_rank = function
  | "proved" -> 2
  | "concretized" -> 1
  | _ -> 0 (* failed, or anything unrecognized *)

let cert_gate ~(baseline : t) ~(current : t) () : gate =
  let regressions = ref [] in
  let notes = ref [] in
  let checked = ref 0 in
  let reg fmt = Printf.ksprintf (fun m -> regressions := m :: !regressions) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  let passes v =
    Option.value ~default:[] (Option.bind (member "passes" v) arr)
  in
  let pass_name p = Option.value ~default:"?" (Option.bind (member "pass" p) str) in
  let obls p =
    Option.value ~default:[] (Option.bind (member "obligations" p) arr)
  in
  let obl_id o = Option.bind (member "id" o) num in
  let obl_verdict o =
    Option.value ~default:"?" (Option.bind (member "verdict" o) str)
  in
  let obl_rewrite o =
    Option.value ~default:"?" (Option.bind (member "rewrite" o) str)
  in
  let base_b = benchmarks_of baseline and cur_b = benchmarks_of current in
  let find name l = List.find_opt (fun b -> name_of b = name) l in
  (* any current failure is a hard failure, gated or not *)
  List.iter
    (fun cb ->
      List.iter
        (fun cp ->
          List.iter
            (fun o ->
              if obl_verdict o = "failed" then
                reg "%s/%s: obligation #%g (%s) FAILED in the current run"
                  (name_of cb) (pass_name cp)
                  (Option.value ~default:(-1.) (obl_id o))
                  (obl_rewrite o))
            (obls cp))
        (passes cb))
    cur_b;
  List.iter
    (fun bb ->
      let bname = name_of bb in
      match find bname cur_b with
      | None ->
          reg "%s: benchmark present in baseline but missing from current run"
            bname
      | Some cb ->
          List.iter
            (fun bp ->
              let pname = pass_name bp in
              match
                List.find_opt (fun cp -> pass_name cp = pname) (passes cb)
              with
              | None ->
                  reg "%s: pass %s present in baseline but missing from \
                       current run"
                    bname pname
              | Some cp ->
                  (* aggregate counts: emitted and proved must not drop *)
                  List.iter
                    (fun field ->
                      match (num_at [ field ] bp, num_at [ field ] cp) with
                      | Some b, Some c ->
                          incr checked;
                          if c < b then
                            reg "%s/%s: %s count dropped %g -> %g" bname pname
                              field b c
                          else if c > b then
                            note
                              "%s/%s: %s count grew %g -> %g - consider \
                               refreshing the baseline"
                              bname pname field b c
                      | _ -> ())
                    [ "emitted"; "proved" ];
                  (* per-obligation verdicts, matched by id *)
                  let cur_obls = obls cp in
                  List.iter
                    (fun bo ->
                      match obl_id bo with
                      | None -> ()
                      | Some id -> (
                          match
                            List.find_opt (fun co -> obl_id co = Some id)
                              cur_obls
                          with
                          | None ->
                              reg
                                "%s/%s: obligation #%g (%s) disappeared from \
                                 the current run"
                                bname pname id (obl_rewrite bo)
                          | Some co ->
                              incr checked;
                              let bv = obl_verdict bo and cv = obl_verdict co in
                              if verdict_rank cv < verdict_rank bv then
                                reg
                                  "%s/%s: obligation #%g (%s) weakened %s -> \
                                   %s"
                                  bname pname id (obl_rewrite bo) bv cv
                              else if verdict_rank cv > verdict_rank bv then
                                note
                                  "%s/%s: obligation #%g strengthened %s -> \
                                   %s - consider refreshing the baseline"
                                  bname pname id bv cv))
                    (obls bp);
                  let base_ids =
                    List.filter_map obl_id (obls bp)
                  in
                  List.iter
                    (fun co ->
                      match obl_id co with
                      | Some id when not (List.mem id base_ids) ->
                          note
                            "%s/%s: new obligation #%g (%s) not in baseline - \
                             refresh to start gating it"
                            bname pname id (obl_rewrite co)
                      | _ -> ())
                    cur_obls)
            (passes bb);
          List.iter
            (fun cp ->
              let pname = pass_name cp in
              if
                List.find_opt (fun bp -> pass_name bp = pname) (passes bb)
                = None
              then
                note "%s: new pass %s not in baseline - refresh to start \
                      gating it"
                  bname pname)
            (passes cb))
    base_b;
  List.iter
    (fun cb ->
      let cname = name_of cb in
      if find cname base_b = None then
        note "%s: new benchmark not in baseline - refresh to start gating it"
          cname)
    cur_b;
  {
    regressions = List.rev !regressions;
    notes = List.rev !notes;
    checked = !checked;
  }

let report ?(label = "bench gate") (g : gate) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s: %d comparisons, %d regression(s), %d note(s)\n" label
       g.checked
       (List.length g.regressions)
       (List.length g.notes));
  List.iter
    (fun r -> Buffer.add_string buf (Printf.sprintf "REGRESSION %s\n" r))
    g.regressions;
  List.iter (fun m -> Buffer.add_string buf (Printf.sprintf "note %s\n" m)) g.notes;
  Buffer.contents buf

let ok (g : gate) = g.regressions = []
