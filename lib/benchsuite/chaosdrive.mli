(** The seeded chaos campaign behind [repro chaos].

    For every target benchmark the campaign injects each of the five
    fault classes - prover exhaustion (a step budget), a pass
    exception at statement k, a forged certificate, a device OOM at
    allocation k, and strict pool-cap pressure - and asserts the three
    fail-safe invariants of docs/ROBUSTNESS.md:

    + no injection crashes the compile or the run;
    + the final results stay bit-equal to the unoptimized reference
      interpreter;
    + every degraded run names its fault and its fallback variant in
      the recovery report.

    Sites are drawn from a seeded PRNG ([--seed]), so a campaign is
    reproducible; [--rounds] repeats the draws for wider coverage. *)

(** One injection and what happened to it. *)
type injection = {
  i_class : string;
      (** fault class injected ({!Core.Fault.layer} tag) *)
  i_pass : string;  (** targeted pass or layer *)
  i_site : int;
      (** injection site: statement / allocation ordinal, budget
          steps, or cap bytes - interpreted per class *)
  i_fired : bool;  (** did the injection actually trigger a fault? *)
  i_recovered : bool;
      (** vacuously true when it did not fire; otherwise: was the
          fault contained {e and} blamed on the injected layer? *)
  i_fallback : string;  (** fallback variant recorded; [""] if none *)
  i_bit_equal : bool;
      (** results bit-equal to the reference interpreter *)
  i_crashed : bool;  (** an exception escaped containment *)
  i_detail : string;  (** human-readable context *)
}

val inj_ok : injection -> bool
(** The three invariants for one injection: no crash, bit-equal
    results, and fired implies recovered-with-blame. *)

type bench_campaign = { c_bench : string; c_injections : injection list }

type campaign = {
  seed : int;
  rounds : int;
  benches : bench_campaign list;
}

val run :
  seed:int ->
  rounds:int ->
  (string * Ir.Ast.prog * Ir.Value.t list) list ->
  campaign
(** [run ~seed ~rounds targets] drives the campaign over
    [(name, program, small_args)] targets.  Small (validation-size)
    arguments are required: every injection executes the compiled
    program in Full mode to check bit-equality. *)

val violations : campaign -> (string * injection) list
(** Injections violating an invariant, paired with their benchmark. *)

val ok : campaign -> bool

val json : campaign -> string
(** The campaign summary schema consumed by CI (see
    docs/ROBUSTNESS.md): seed, rounds, per-bench injection records,
    and the violation count. *)

val report : campaign -> string
(** Human-readable summary, one line per benchmark plus one line per
    violation. *)
