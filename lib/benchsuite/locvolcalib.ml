(* LocVolCalib (FinPar), Table VI: local-volatility calibration -
   a batch of independent Crank-Nicolson-style solves, one per option.

   Each thread owns a price vector of length numX and advances it
   through numT implicit timesteps, each solved with the Thomas
   algorithm over per-thread coefficient arrays.  The final vector (and
   the loop-carried state, which aliases it) short-circuits into the
   batch result matrix (Fig. 6b - the paper names LocVolCalib together
   with LBM as the benchmarks where the implicit mapnest circuit has
   high impact); the tridiagonal arithmetic dominates, giving the
   moderate 1.04x - 1.12x of Table VI. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Ir.Build
module Value = Ir.Value

let ctx0 =
  Pr.add_range
    (Pr.add_range Pr.empty "numo" ~lo:(P.const 1) ())
    "numx" ~lo:(P.const 3) ()

let alpha = 0.45 (* off-diagonal weight; diagonally dominant system *)

let set1 b ~dst ~i v =
  B.bind b (dst ^ "'")
    (EUpdate { dst; slc = STriplet [ SFix i ]; src = SrcScalar v })

(* One implicit timestep: a Thomas solve of the tridiagonal system with
   off-diagonal weight [w] (lower/upper coefficients [-w], diagonal
   [1 + 2w]) over the price vector [u], producing a fresh vector.  [w]
   is a compile-time constant, so the damped startup step and the
   regular Crank-Nicolson step are two instantiations of this
   template. *)
let thomas_step sb ~u ~w =
  let numx = P.var "numx" in
  let vec = arr F64 [ numx ] in
  let a = -.w and cc = -.w in
  let dg = 1.0 +. (2.0 *. w) in
  (* forward sweep *)
  let cp0 = B.bind sb "cp0" (EScratch (F64, [ numx ])) in
  let dp0 = B.bind sb "dp0" (EScratch (F64, [ numx ])) in
  let cp1 = set1 sb ~dst:cp0 ~i:P.zero (Float (cc /. dg)) in
  let dp1 =
    set1 sb ~dst:dp0 ~i:P.zero
      (B.fdiv sb (B.index sb u [ P.zero ]) (Float dg))
  in
  let cpn = Ir.Names.fresh "cp" and dpn = Ir.Names.fresh "dp" in
  let fw = Ir.Names.fresh "fx" in
  let sweep =
    B.loop sb "fwd"
      [ (cpn, vec, Var cp1); (dpn, vec, Var dp1) ]
      ~var:fw
      ~bound:(P.sub numx P.one)
      (fun fb ->
        let x = P.add (P.var fw) P.one in
        let cprev = B.index fb cpn [ P.sub x P.one ] in
        let dprev = B.index fb dpn [ P.sub x P.one ] in
        let m =
          B.fdiv fb (Float 1.0)
            (B.fsub fb (Float dg) (B.fmul fb (Float a) cprev))
        in
        let cp' = set1 fb ~dst:cpn ~i:x (B.fmul fb (Float cc) m) in
        let ux = B.index fb u [ x ] in
        let dp' =
          set1 fb ~dst:dpn ~i:x
            (B.fmul fb (B.fsub fb ux (B.fmul fb (Float a) dprev)) m)
        in
        [ Var cp'; Var dp' ])
  in
  let cpf, dpf =
    match sweep with [ c; d ] -> (c, d) | _ -> assert false
  in
  (* backward substitution into a fresh vector *)
  let un0 = B.bind sb "un0" (EScratch (F64, [ numx ])) in
  let un1 =
    set1 sb ~dst:un0 ~i:(P.sub numx P.one)
      (B.index sb dpf [ P.sub numx P.one ])
  in
  B.loop1 sb "bwd" vec (Var un1)
    ~bound:(P.sub numx P.one)
    (fun wb ~param ~i:t ->
      let x = P.sub (P.sub numx (P.const 2)) t in
      let up1 = B.index wb param [ P.add x P.one ] in
      let v =
        B.fsub wb
          (B.index wb dpf [ x ])
          (B.fmul wb (B.index wb cpf [ x ]) up1)
      in
      Var (set1 wb ~dst:param ~i:x v))

let prog : prog =
  let numo = P.var "numo"
  and numx = P.var "numx"
  and numt = P.var "numt" in
  let vec = arr F64 [ numx ] in
  B.prog "locvolcalib" ~ctx:ctx0
    ~params:[ pat_elem "numo" i64; pat_elem "numx" i64; pat_elem "numt" i64 ]
    ~ret:[ arr F64 [ numo; numx ] ]
    (fun bb ->
      let ov = Ir.Names.fresh "o" in
      let result =
        B.mapnest bb "result"
          [ (ov, numo) ]
          (fun tb ->
            let o = P.var ov in
            (* initial condition parameterized by the option index *)
            let u0 = B.bind tb "u0" (EScratch (F64, [ numx ])) in
            let u_init =
              B.loop1 tb "init" vec (Var u0) ~bound:numx
                (fun ib ~param ~i:x ->
                  let xo =
                    B.binop ib Rem
                      (B.binop ib Add (B.idx ib x) (B.idx ib o))
                      (B.idx ib numx)
                  in
                  let v =
                    B.fadd ib (Float 1.0)
                      (B.fmul ib (B.unop ib ToF64 xo) (Float 0.001))
                  in
                  Var (set1 ib ~dst:param ~i:x v))
            in
            (* numT implicit steps, each one Thomas solve.  Rannacher
               startup: the first step is damped (half weight), later
               steps use the full Crank-Nicolson weight.  Both arms are
               complete solves with arm-local coefficient vectors, so
               the reuse pass's hoist-through-if-arms strategy pairs
               the two arms' scratch allocations and lifts them above
               the conditional. *)
            let final =
              B.loop1 tb "time" vec (Var u_init) ~bound:numt
                (fun sb ~param:u ~i:t ->
                  let first =
                    B.cmp sb CEq (B.idx sb t) (B.idx sb P.zero)
                  in
                  let stepped =
                    B.if_ sb "ustep" first
                      (fun ab -> [ Var (thomas_step ab ~u ~w:(0.5 *. alpha)) ])
                      (fun ab -> [ Var (thomas_step ab ~u ~w:alpha) ])
                  in
                  Var (List.hd stepped))
            in
            [ Var final ])
      in
      [ Var result ])

(* ---------------------------------------------------------------- *)
(* Oracle, reference                                                 *)
(* ---------------------------------------------------------------- *)

let direct ~numo ~numx ~numt =
  let out = Array.make (numo * numx) 0.0 in
  for o = 0 to numo - 1 do
    let u =
      Array.init numx (fun x ->
          1.0 +. (0.001 *. float_of_int ((x + o) mod numx)))
    in
    for step = 0 to numt - 1 do
      let w = if step = 0 then 0.5 *. alpha else alpha in
      let a = -.w and cc = -.w in
      let dg = 1.0 +. (2.0 *. w) in
      let cp = Array.make numx 0.0 and dp = Array.make numx 0.0 in
      cp.(0) <- cc /. dg;
      dp.(0) <- u.(0) /. dg;
      for x = 1 to numx - 1 do
        let m = 1.0 /. (dg -. (a *. cp.(x - 1))) in
        cp.(x) <- cc *. m;
        dp.(x) <- (u.(x) -. (a *. dp.(x - 1))) *. m
      done;
      u.(numx - 1) <- dp.(numx - 1);
      for x = numx - 2 downto 0 do
        u.(x) <- dp.(x) -. (cp.(x) *. u.(x + 1))
      done
    done;
    Array.blit u 0 out (o * numx) numx
  done;
  out

let args ~numo ~numx ~numt =
  [ Value.VInt numo; Value.VInt numx; Value.VInt numt ]

(* Hand-written batched solver: coefficient state in registers/shared;
   reads/writes each price value once per timestep. *)
let ref_counters ~numo ~numx ~numt : Gpu.Device.counters =
  let c = Gpu.Device.fresh_counters () in
  let vals = float_of_int (numo * numx * numt) in
  c.Gpu.Device.kernels <- 1;
  c.Gpu.Device.kernel_reads <- vals *. 8.;
  c.Gpu.Device.kernel_writes <- vals *. 8.;
  c.Gpu.Device.flops <- vals *. 9.;
  c.Gpu.Device.allocs <- 1;
  c

let paper =
  [
    ("A100", "small", (103., 0.97, 1.05, 1.08));
    ("A100", "medium", (50., 1.18, 1.27, 1.07));
    ("A100", "large", (169., 0.63, 0.68, 1.08));
    ("MI100", "small", (207., 1.08, 1.20, 1.12));
    ("MI100", "medium", (84., 0.92, 0.97, 1.06));
    ("MI100", "large", (431., 0.76, 0.79, 1.04));
  ]

(* FinPar's dataset family: small = few options with fine grids,
   medium = many options with coarse grids, large = many + fine. *)
let datasets () =
  List.map
    (fun (label, numo, numx, numt) ->
      {
        Runner.label;
        args = args ~numo ~numx ~numt;
        ref_counters = Runner.Static (ref_counters ~numo ~numx ~numt);
      })
    [
      ("small", 16384, 256, 32);
      ("medium", 65536, 32, 64);
      ("large", 65536, 256, 64);
    ]

let table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe () : Runner.outcome =
  Runner.run_table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe ~trace_args:(args ~numo:6 ~numx:12 ~numt:4)
    ~title:"Table VI: LocVolCalib performance" ~runs:10 ~prog
    ~datasets:(datasets ()) ~paper ()

let small_args ~numo ~numx ~numt = args ~numo ~numx ~numt
let small_direct ~numo ~numx ~numt = direct ~numo ~numx ~numt
