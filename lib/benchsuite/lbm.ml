(* Lattice-Boltzmann (Parboil LBM), Table IV: a D2Q9 stream-collide
   update over an n x n grid for [steps] timesteps.

   Each thread gathers the nine distribution values streaming into its
   cell from the previous grid (periodic boundaries via modulo index
   arithmetic - genuinely data-dependent reads, loaded from the
   direction tables), relaxes them towards equilibrium, and returns the
   per-cell distribution vector.  The per-thread result array is the
   paper's implicit mapnest circuit point (Fig. 6b, "high impact on the
   LBM benchmark"): without short-circuiting every thread's 9-vector is
   manifested and copied into the result grid. *)

open Ir.Ast
module P = Symalg.Poly
module Pr = Symalg.Prover
module B = Ir.Build
module Value = Ir.Value

let qdirs = 9
let omega = 0.8

(* D2Q9 direction/weight tables. *)
let dxs = [| 0; 1; 0; -1; 0; 1; -1; -1; 1 |]
let dys = [| 0; 0; 1; 0; -1; 1; 1; -1; -1 |]

let weights =
  [| 4. /. 9.; 1. /. 9.; 1. /. 9.; 1. /. 9.; 1. /. 9.;
     1. /. 36.; 1. /. 36.; 1. /. 36.; 1. /. 36. |]

let ctx0 =
  Pr.add_range
    (Pr.add_range Pr.empty "n" ~lo:(P.const 2) ())
    "steps" ~lo:P.one ()

let prog : prog =
  let n = P.var "n" in
  let gridt = arr F64 [ n; n; P.const qdirs ] in
  let dirt = arr I64 [ P.const qdirs ] in
  let wt = arr F64 [ P.const qdirs ] in
  B.prog "lbm" ~ctx:ctx0
    ~params:
      [
        pat_elem "n" i64;
        pat_elem "steps" i64;
        pat_elem "f0" gridt;
        pat_elem "dx" dirt;
        pat_elem "dy" dirt;
        pat_elem "w" wt;
      ]
    ~ret:[ gridt ]
    (fun bb ->
      let res =
        B.loop bb "time"
          [ ("f", gridt, Var "f0") ]
          ~var:"t" ~bound:(P.var "steps")
          (fun lb ->
            let iv = Ir.Names.fresh "i" and jv = Ir.Names.fresh "j" in
            let fnext =
              B.mapnest lb "fnext"
                [ (iv, n); (jv, n) ]
                (fun tb ->
                  let i = P.var iv and j = P.var jv in
                  let q = P.const qdirs in
                  (* gather the streamed-in distributions *)
                  let rs0 = B.bind tb "rs" (EScratch (F64, [ q ])) in
                  let gathered =
                    B.loop1 tb "gather" (arr F64 [ q ]) (Var rs0) ~bound:q
                      (fun gb ~param ~i:d ->
                        let ddx = B.index gb "dx" [ d ] in
                        let ddy = B.index gb "dy" [ d ] in
                        (* periodic source coordinates *)
                        let si =
                          B.binop gb Rem
                            (B.binop gb Add (B.binop gb Sub (B.idx gb i) ddy)
                               (B.idx gb n))
                            (B.idx gb n)
                        in
                        let sj =
                          B.binop gb Rem
                            (B.binop gb Add (B.binop gb Sub (B.idx gb j) ddx)
                               (B.idx gb n))
                            (B.idx gb n)
                        in
                        let siv =
                          match si with Var v -> v | _ -> assert false
                        in
                        let sjv =
                          match sj with Var v -> v | _ -> assert false
                        in
                        let v =
                          B.index gb "f" [ P.var siv; P.var sjv; d ]
                        in
                        Var
                          (B.bind gb "rs'"
                             (EUpdate
                                {
                                  dst = param;
                                  slc = STriplet [ SFix d ];
                                  src = SrcScalar v;
                                })))
                  in
                  (* density *)
                  let rho =
                    B.loop1 tb "rho" (TScalar F64) (Float 0.0) ~bound:q
                      (fun sb ~param:acc ~i:d ->
                        B.fadd sb (Var acc) (B.index sb gathered [ d ]))
                  in
                  (* BGK relaxation towards w[d] * rho *)
                  let out0 = B.bind tb "out" (EScratch (F64, [ q ])) in
                  let final =
                    B.loop1 tb "collide" (arr F64 [ q ]) (Var out0) ~bound:q
                      (fun cb ~param ~i:d ->
                        let fd = B.index cb gathered [ d ] in
                        let wd = B.index cb "w" [ d ] in
                        let feq = B.fmul cb wd (Var rho) in
                        let relaxed =
                          B.fadd cb
                            (B.fmul cb fd (Float (1.0 -. omega)))
                            (B.fmul cb feq (Float omega))
                        in
                        Var
                          (B.bind cb "out'"
                             (EUpdate
                                {
                                  dst = param;
                                  slc = STriplet [ SFix d ];
                                  src = SrcScalar relaxed;
                                })))
                  in
                  [ Var final ])
            in
            [ Var fnext ])
      in
      [ Var (List.hd res) ])

(* ---------------------------------------------------------------- *)
(* Inputs, oracle, reference                                         *)
(* ---------------------------------------------------------------- *)

let input_f ~n =
  Array.init (n * n * qdirs) (fun i ->
      weights.(i mod qdirs) *. (1.0 +. (0.01 *. float_of_int (i mod 7))))

let direct ~n ~steps f0 =
  let cur = ref (Array.copy f0) in
  let idx i j d = (((i * n) + j) * qdirs) + d in
  for _ = 1 to steps do
    let nxt = Array.make (n * n * qdirs) 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let gathered =
          Array.init qdirs (fun d ->
              let si = (i - dys.(d) + n) mod n in
              let sj = (j - dxs.(d) + n) mod n in
              !cur.(idx si sj d))
        in
        let rho = Array.fold_left ( +. ) 0.0 gathered in
        for d = 0 to qdirs - 1 do
          nxt.(idx i j d) <-
            (gathered.(d) *. (1.0 -. omega)) +. (weights.(d) *. rho *. omega)
        done
      done
    done;
    cur := nxt
  done;
  !cur

let args ~n ~steps ~shell =
  [
    Value.VInt n;
    Value.VInt steps;
    (if shell then Value.VArr (Value.shell F64 [ n; n; qdirs ])
     else Value.VArr (Value.of_floats [ n; n; qdirs ] (input_f ~n)));
    Value.VArr (Value.of_ints [ qdirs ] dxs);
    Value.VArr (Value.of_ints [ qdirs ] dys);
    Value.VArr (Value.of_floats [ qdirs ] weights);
  ]

(* Hand-written LBM: one kernel per step, reading and writing each
   distribution value exactly once (all intermediate state in
   registers), with heavy arithmetic per cell. *)
let ref_counters ~n ~steps : Gpu.Device.counters =
  let c = Gpu.Device.fresh_counters () in
  let vals = float_of_int (n * n * qdirs) *. float_of_int steps in
  c.Gpu.Device.kernels <- steps;
  (* reads the source distributions plus the obstacle/flag field *)
  c.Gpu.Device.kernel_reads <- vals *. 2. *. 8.;
  c.Gpu.Device.kernel_writes <- vals *. 8.;
  c.Gpu.Device.flops <- vals *. 25.;
  c.Gpu.Device.allocs <- 2;
  c

let paper =
  [
    ("A100", "short", (29., 0.84, 0.92, 1.09));
    ("A100", "long", (860., 0.86, 0.95, 1.10));
    ("MI100", "short", (49., 0.65, 1.04, 1.59));
    ("MI100", "long", (1423., 0.63, 1.01, 1.60));
  ]

let grid_paper = 4096

let datasets () =
  List.map
    (fun (label, steps) ->
      {
        Runner.label;
        args = args ~n:grid_paper ~steps ~shell:true;
        ref_counters = Runner.Static (ref_counters ~n:grid_paper ~steps);
      })
    [ ("short", 10); ("long", 300) ]

let table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe () : Runner.outcome =
  Runner.run_table ?options ?reuse ?pack ?pool ?pool_cap ?fail_safe ~trace_args:(args ~n:8 ~steps:3 ~shell:false)
    ~title:"Table IV: LBM performance" ~runs:100 ~prog
    ~datasets:(datasets ()) ~paper ()

let small_args ~n ~steps = args ~n ~steps ~shell:false
let small_direct ~n ~steps = direct ~n ~steps (input_f ~n)
